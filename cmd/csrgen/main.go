// Command csrgen streams a generator family into the on-disk CSR graph
// format (internal/graph/csrfile), deterministically from the workload seed:
// the same -graph/-n/-p/-deg/-seed that locsim and locsimd accept produce a
// file whose graph is identical to what serve.BuildGraph would generate in
// RAM, so `locsim -graphfile` and a generated run of the same parameters
// solve the same instance.
//
// gnp — the one family whose edge count dwarfs n — streams natively
// (graph.GNPConnectedStream + the csrfile counting-sort builder), so peak
// RAM stays O(n) however many edges the sample has. The O(n)-edge families
// (ring, grid, tree, cliques, regular) generate in RAM and stream out.
//
// Usage:
//
//	csrgen -graph gnp -n 8388608 -seed 1 -o g23.csr
//	csrgen -graph ring -n 65536 -o ring.csr
//	locsim -graphfile g23.csr -algo luby -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"randlocal/internal/graph"
	"randlocal/internal/graph/csrfile"
	"randlocal/internal/prng"
	"randlocal/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "csrgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("csrgen", flag.ContinueOnError)
	graphKind := fs.String("graph", "gnp", "graph family: gnp | ring | grid | tree | cliques | regular")
	n := fs.Int("n", 512, "number of nodes (grid rounds to a square)")
	p := fs.Float64("p", 0.0, "edge probability for gnp (0 = 4/n)")
	deg := fs.Int("deg", 3, "degree for regular graphs")
	seed := fs.Uint64("seed", 1, "random seed (the same seed locsim would use)")
	out := fs.String("o", "", "output file (required)")
	verify := fs.Bool("verify", true, "re-read the file and check its checksum after writing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-o is required")
	}
	if err := serve.ValidateGraphSpec(*graphKind, *n, *p, *deg); err != nil {
		return err
	}

	b, err := csrfile.NewBuilder(*out, *n)
	if err != nil {
		return err
	}
	if *graphKind == "gnp" {
		prob := *p
		if prob == 0 {
			prob = 4.0 / float64(*n) // the BuildGraph default
		}
		graph.GNPConnectedStream(*n, prob, prng.New(*seed), b.AddEdge)
	} else {
		g, err := serve.BuildGraph(*graphKind, *n, *p, *deg, *seed)
		if err != nil {
			b.Abort()
			return err
		}
		g.Edges(b.AddEdge)
	}
	hdr, err := b.Finalize()
	if err != nil {
		return err
	}
	note := ""
	if *verify {
		if err := csrfile.Verify(*out); err != nil {
			return err
		}
		note = ", checksum verified"
	}
	fmt.Printf("csrgen: wrote %s: n=%d m=%d halfEdges=%d (%d bytes%s)\n",
		*out, hdr.N, hdr.Edges(), hdr.HalfEdges, hdr.FileSize(), note)
	return nil
}
