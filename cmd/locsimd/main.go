// Command locsimd is the long-running simulation service: an HTTP/JSON
// daemon accepting locsim-equivalent run requests, executing them on a
// bounded worker pool over warm pooled engines, and streaming round-by-round
// progress to clients. SIGTERM/SIGINT drain gracefully: accepted runs finish,
// new submissions bounce with 503, then the listener shuts down.
//
// API (see internal/serve):
//
//	POST /v1/runs              submit a run        → 202 {"id":"r1"}
//	GET  /v1/runs              list runs
//	GET  /v1/runs/{id}         status + outcome
//	GET  /v1/runs/{id}/stream  SSE progress, then the result
//	GET  /healthz              liveness + drain state
//
// Example:
//
//	locsimd -addr 127.0.0.1:8080 &
//	curl -d '{"algo":"luby","n":4096,"seed":1}' localhost:8080/v1/runs
//	curl localhost:8080/v1/runs/r1
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"randlocal/internal/serve"
	"randlocal/internal/sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	jobs := flag.Int("jobs", 0, "concurrent runs (0 = GOMAXPROCS)")
	backlog := flag.Int("backlog", 16, "accepted runs that may queue beyond the workers before 503")
	pool := flag.Bool("pool", true, "keep engine buffers warm across runs (sim.EnginePool)")
	place := flag.String("place", "auto", "default worker placement for parallel runs that leave it unset: auto | pin | none (use none in containers whose CPU quota is below the pool width)")
	graphDir := flag.String("graphdir", "", "directory of prebuilt CSR graph files (cmd/csrgen) that graphFile requests may name; empty rejects file-backed runs")
	flag.Parse()
	log.SetFlags(0)

	placePolicy, err := sim.ParsePlacePolicy(*place)
	if err != nil {
		log.Fatalf("locsimd: %v", err)
	}
	sim.SetDefaultPlace(placePolicy)

	if err := run(*addr, *jobs, *backlog, *pool, *graphDir); err != nil {
		log.Fatalf("locsimd: %v", err)
	}
}

func run(addr string, jobs, backlog int, pool bool, graphDir string) error {
	var engines *sim.EnginePool
	if pool {
		engines = sim.NewEnginePool()
	}
	srv := serve.NewServer(serve.Options{Jobs: jobs, Backlog: backlog, Pool: engines, GraphDir: graphDir})
	hs := &http.Server{Handler: srv.Handler()}

	// Bind before announcing, so "listening on" always names a live port
	// (the smoke script and ephemeral-port users parse this line).
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("locsimd: listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting on the drain

	log.Printf("locsimd: shutdown signal received, draining")
	drained := srv.Drain()
	log.Printf("locsimd: drained %d in-flight run(s)", drained)
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	log.Printf("locsimd: shutdown complete")
	return nil
}
