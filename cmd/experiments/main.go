// Command experiments regenerates the experiment tables recorded in
// EXPERIMENTS.md: one experiment per quantitative claim of the paper (the
// paper itself has no empirical tables — see DESIGN.md §1).
//
// Usage:
//
//	experiments                 # run everything at full scale
//	experiments -quick          # CI-sized run
//	experiments -experiment E3  # one experiment
//	experiments -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"randlocal/internal/experiments"
	"randlocal/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run smaller, faster versions of every experiment")
	seed := fs.Uint64("seed", 2019, "master seed (2019 reproduces EXPERIMENTS.md)")
	exp := fs.String("experiment", "", "run a single experiment by ID (E1..E9)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	scheduler := fs.String("scheduler", "sequential", "simulation engine: sequential | concurrent | parallel")
	workers := fs.Int("workers", 0, "worker-pool size for -scheduler parallel (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sched, err := sim.ParseScheduler(*scheduler)
	if err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	opt := experiments.Options{Quick: *quick, Seed: *seed, Scheduler: sched, Workers: *workers}
	if *exp != "" {
		runner := experiments.ByID(*exp)
		if runner == nil {
			return fmt.Errorf("unknown experiment %q (try -list)", *exp)
		}
		runner(opt).Render(os.Stdout)
		return nil
	}
	experiments.RenderAll(os.Stdout, opt)
	return nil
}
