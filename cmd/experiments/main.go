// Command experiments runs the measurement pipeline behind EXPERIMENTS.md:
// one experiment per quantitative claim of the paper (the paper itself has
// no empirical tables — the experiments operationalize its theorems), each
// expanded into per-(unit, size, trial) specs that run on a trial-level
// worker pool, checkpoint to a JSONL journal, and emit machine-readable
// records (JSON + CSV) next to the rendered text tables.
//
// Usage:
//
//	experiments                          # run everything at full scale, tables to stdout
//	experiments -quick                   # CI-sized run
//	experiments -experiment E3,E11       # a subset of experiments
//	experiments -list                    # list experiment IDs
//	experiments -out runs/full           # checkpoint + records.json/.csv; rerun to resume
//	experiments -out runs/full -md EXPERIMENTS.md  # also write the markdown report
//	experiments -out runs/x -limit 5     # stop after 5 new records (exercises resume)
//	experiments -validate runs/full      # schema-check an emitted records.json
//	experiments -diff a.json b.json      # compare two record sets (stable fields)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"randlocal/internal/experiments"
	"randlocal/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run smaller, faster versions of every experiment")
	seed := fs.Uint64("seed", 2019, "master seed (2019 reproduces EXPERIMENTS.md)")
	exp := fs.String("experiment", "", "comma-separated experiment IDs to run (E1..E13; empty = all)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	scheduler := fs.String("scheduler", "sequential", "simulation engine: sequential | concurrent | parallel")
	workers := fs.Int("workers", 0, "worker-pool size for -scheduler parallel (0 = GOMAXPROCS)")
	reshard := fs.String("reshard", "adaptive", "parallel re-shard policy: adaptive | halving | off")
	outDir := fs.String("out", "", "checkpoint/emission directory (enables resume + records.json/.csv)")
	jobs := fs.Int("jobs", 0, "trial-level worker pool size (0 = GOMAXPROCS)")
	limit := fs.Int("limit", 0, "stop after this many new records (0 = no limit; checkpoint stays resumable)")
	md := fs.String("md", "", "write the markdown report (EXPERIMENTS.md format) to this file")
	validate := fs.String("validate", "", "validate the records.json in this directory (or a records.json path) and exit")
	diff := fs.Bool("diff", false, "compare two records.json files by stable fields: -diff a.json b.json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}
	if *validate != "" {
		return validateRecords(*validate)
	}
	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff needs exactly two records.json paths")
		}
		return diffRecords(fs.Arg(0), fs.Arg(1))
	}

	if *limit > 0 && *outDir == "" {
		return fmt.Errorf("-limit stops a run early so it can be resumed, which needs a checkpoint: pass -out too")
	}
	sched, err := sim.ParseScheduler(*scheduler)
	if err != nil {
		return err
	}
	policy, err := sim.ParseReshardPolicy(*reshard)
	if err != nil {
		return err
	}
	sim.SetDefaultReshard(policy)

	exps, err := selectExperiments(*exp)
	if err != nil {
		return err
	}
	runner := &experiments.Runner{
		Opt:    experiments.Options{Quick: *quick, Seed: *seed, Scheduler: sched, Workers: *workers},
		OutDir: *outDir,
		Jobs:   *jobs,
		Limit:  *limit,
		Log:    os.Stderr,
	}
	rep, err := runner.Run(exps)
	if err != nil {
		return err
	}
	if rep.LimitHit {
		fmt.Fprintf(os.Stderr, "experiments: stopped at -limit after %d new records (%d checkpointed total); rerun with the same -out to resume\n",
			rep.Ran, rep.Ran+rep.Resumed)
		return nil
	}
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			return err
		}
		if err := rep.WriteMarkdown(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", *md, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", *md)
	} else {
		rep.RenderText(os.Stdout)
	}
	if *outDir != "" {
		fmt.Fprintf(os.Stderr, "experiments: records in %s (records.json, records.csv, checkpoint.jsonl)\n", *outDir)
	}
	return nil
}

// selectExperiments resolves a comma-separated ID list ("" = all).
func selectExperiments(ids string) ([]*experiments.Experiment, error) {
	if strings.TrimSpace(ids) == "" {
		return experiments.Registry(), nil
	}
	var out []*experiments.Experiment
	seen := map[string]bool{}
	for _, id := range strings.Split(ids, ",") {
		exp := experiments.ByID(id)
		if exp == nil {
			return nil, fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		if seen[exp.ID] {
			continue // a repeated ID must not run (and journal) its specs twice
		}
		seen[exp.ID] = true
		out = append(out, exp)
	}
	return out, nil
}

// validateRecords schema-checks a records.json (given directly or inside a
// directory).
func validateRecords(path string) error {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, "records.json")
	}
	rs, err := experiments.LoadRecordSet(path)
	if err != nil {
		return err
	}
	if err := rs.Validate(); err != nil {
		return err
	}
	fmt.Printf("%s: %d records, schema %d, seed %d, quick=%v — OK\n",
		path, len(rs.Records), experiments.RecordSchema, rs.Seed, rs.Quick)
	return nil
}

// diffRecords compares two record sets by their stable fields (spec,
// outcome, measurements — not wall time), the checkpoint-resume round-trip
// check.
func diffRecords(a, b string) error {
	ra, err := experiments.LoadRecordSet(a)
	if err != nil {
		return err
	}
	rb, err := experiments.LoadRecordSet(b)
	if err != nil {
		return err
	}
	diffs, err := experiments.DiffStable(ra, rb)
	if err != nil {
		return err
	}
	if len(diffs) > 0 {
		for _, d := range diffs {
			fmt.Fprintln(os.Stderr, d)
		}
		return fmt.Errorf("%d records differ", len(diffs))
	}
	fmt.Printf("%s and %s agree on all %d records (stable fields)\n", a, b, len(ra.Records))
	return nil
}
