// Command locsim runs one algorithm on one generated graph and prints its
// quality parameters and engine accounting — the interactive front door to
// the library.
//
// Usage examples:
//
//	locsim -graph gnp -n 1024 -p 0.004 -algo en
//	locsim -graph ring -n 2000 -algo lowrand -h 2
//	locsim -graph grid -n 1024 -algo sharedrand
//	locsim -graph gnp -n 512 -algo luby
//	locsim -graph gnp -n 256 -algo derand-mis
//	locsim -graph gnp -n 100000 -algo luby -scheduler parallel -workers 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"randlocal/internal/check"
	"randlocal/internal/coloring"
	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/mis"
	"randlocal/internal/orientation"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
	"randlocal/internal/serve"
	"randlocal/internal/sim"
	"randlocal/internal/slocal"
)

// errRejected makes a checker-rejected (or fault-truncated) run exit nonzero
// so scripts and CI can rely on the exit status, while the INVALID/INCOMPLETE
// diagnostics above it keep carrying the detail.
var errRejected = errors.New("run rejected (INVALID or INCOMPLETE under faults)")

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "locsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("locsim", flag.ContinueOnError)
	graphKind := fs.String("graph", "gnp", "graph family: gnp | ring | grid | tree | cliques | regular")
	graphFile := fs.String("graphfile", "", "run on a prebuilt on-disk CSR graph (cmd/csrgen) instead of generating one; overrides -graph/-n/-p/-deg")
	n := fs.Int("n", 512, "number of nodes (grid rounds to a square)")
	p := fs.Float64("p", 0.0, "edge probability for gnp (0 = 4/n)")
	deg := fs.Int("deg", 3, "degree for regular graphs")
	algo := fs.String("algo", "en", "algorithm: en | lowrand | strong37 | sharedrand | shattering | detdecomp | mpx | sinkless | luby | lubybit | coloring | derand-mis | derand-coloring")
	h := fs.Int("h", 2, "bit-holder sparseness for lowrand/strong37")
	seed := fs.Uint64("seed", 1, "random seed")
	scheduler := fs.String("scheduler", "sequential", "simulation engine: sequential | concurrent | parallel")
	workers := fs.Int("workers", 0, "worker-pool size for -scheduler parallel (0 = GOMAXPROCS, clamped to the node count)")
	reshard := fs.String("reshard", "adaptive", "parallel re-shard policy: adaptive | halving | off")
	place := fs.String("place", "auto", "parallel worker placement: auto | pin | none (pin locks workers to OS threads and first-touches their shard windows)")
	telemetry := fs.Bool("telemetry", false, "collect per-round scheduling telemetry and print a summary for the single-simulation algorithms (en, luby, lubybit, coloring); delivery modes are packed (bit planes), dense (plane sweep), sparse (staged-slot walk) and channels (concurrent engine)")
	drop := fs.Float64("drop", 0, "adversary: per-message drop probability (en, luby, coloring)")
	delay := fs.Float64("delay", 0, "adversary: per-message delay probability")
	delayMax := fs.Int("delaymax", 2, "adversary: max extra rounds a delayed message is held")
	crash := fs.Int("crash", 0, "adversary: nodes crash-stopped per round")
	churn := fs.Int("churn", 0, "adversary: edges removed per round")
	heal := fs.Int("heal", 0, "adversary: removed edges restored per round")
	stall := fs.Int("stall", 0, "adversary: nodes denied the round by the scheduler, per round")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sched, err := sim.ParseScheduler(*scheduler)
	if err != nil {
		return err
	}
	policy, err := sim.ParseReshardPolicy(*reshard)
	if err != nil {
		return err
	}
	placePolicy, err := sim.ParsePlacePolicy(*place)
	if err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	sim.SetDefaultScheduler(sched, *workers)
	sim.SetDefaultReshard(policy)
	sim.SetDefaultPlace(placePolicy)
	defer sim.SetDefaultPlace(sim.PlaceAuto)
	sim.SetTelemetry(*telemetry)
	if *telemetry {
		defer sim.SetTelemetry(false)
	}

	// The adversary draws from the key's isolated adversary stream, so the
	// same -seed with and without fault flags replays the same algorithm
	// coins (telemetry is forced on for faulted runs, so the injected-event
	// summary always prints).
	advCfg := sim.AdversaryConfig{
		DropProb: *drop, DelayProb: *delay, DelayMax: *delayMax,
		CrashPerRound: *crash, ChurnPerRound: *churn, HealPerRound: *heal,
		StallPerRound: *stall,
	}
	var adv *sim.Adversary
	if !advCfg.Zero() {
		adv, err = sim.NewAdversary(sim.NewSimulationKey(*seed), advCfg)
		if err != nil {
			return err
		}
		switch *algo {
		case "en", "luby", "lubybit", "coloring":
		default:
			return fmt.Errorf("adversary flags apply to -algo en, luby, lubybit or coloring, not %q", *algo)
		}
	}

	// Graph construction is shared with the locsimd daemon (serve.BuildGraph)
	// so a CLI run and a daemon-submitted request of the same parameters
	// solve the same instance. -graphfile swaps the generator for a
	// read-only mapping of a prebuilt CSR file: same *graph.Graph, same
	// deterministic outcomes, graph size bounded by disk instead of RAM.
	var g *graph.Graph
	if *graphFile != "" {
		var closer io.Closer
		g, closer, err = graph.OpenCSRFile(*graphFile)
		if err != nil {
			return err
		}
		defer closer.Close()
	} else {
		g, err = serve.BuildGraph(*graphKind, *n, *p, *deg, *seed)
		if err != nil {
			return err
		}
	}
	fmt.Printf("graph: %v diameter=%d\n", g, graph.Diameter(g))
	if sched == sim.Parallel && *workers > g.N() {
		// The engine clamps a pool wider than the node count (a shard needs
		// at least one node); say so rather than silently running narrower.
		fmt.Printf("note: -workers %d exceeds n=%d; running %d workers\n", *workers, g.N(), g.N())
		sim.SetDefaultScheduler(sched, g.N())
	}

	switch *algo {
	case "en":
		src := randomness.NewFull(*seed)
		d, res, err := decomp.ElkinNeiman(g, src, nil, decomp.ENConfig{Adversary: adv})
		if err != nil {
			if adv == nil || res == nil {
				return err
			}
			printTelemetry(res.Telemetry)
			fmt.Printf("Elkin–Neiman under faults: INCOMPLETE (%v) rounds=%d\n", err, res.Rounds)
			return errRejected
		}
		printTelemetry(res.Telemetry)
		if adv != nil {
			if verr := d.Validate(g, 0, 0); verr != nil {
				fmt.Printf("Elkin–Neiman under faults: INVALID (%v) rounds=%d messages=%d\n", verr, res.Rounds, res.Messages)
				return errRejected
			}
		}
		return reportDecomp(g, d, "Elkin–Neiman",
			fmt.Sprintf("rounds=%d messages=%d maxMsgBits=%d trueBits=%d",
				res.Rounds, res.Messages, res.MaxMessageBits, src.Ledger().TrueBits()))
	case "lowrand", "strong37":
		holders := decomp.GreedyDominatingSet(g, *h)
		bits := 1
		if *algo == "strong37" {
			bits = 48
		}
		src, err := randomness.NewSparse(holders, bits, *seed)
		if err != nil {
			return err
		}
		cfg := decomp.LowRandConfig{H: *h, BitsPerCluster: 64, RulingAlphaFactor: 4}
		if *algo == "lowrand" {
			res, err := decomp.LowRand(g, src, holders, cfg)
			if err != nil {
				return err
			}
			return reportDecomp(g, res.Decomposition, "LowRand (Thm 3.1)",
				fmt.Sprintf("holders=%d bitsGathered=%d preClusters=%d analyticRounds=%d",
					len(holders), res.BitsGathered, res.DistinctPreClusters(), res.AnalyticRounds))
		}
		res, err := decomp.StrongLowRand(g, src, holders, cfg)
		if err != nil {
			return err
		}
		return reportDecomp(g, res.Decomposition, "StrongLowRand (Thm 3.7)",
			fmt.Sprintf("holders=%d bitsGathered=%d phases=%d analyticRounds=%d",
				len(holders), res.BitsGathered, res.Phases, res.AnalyticRounds))
	case "sharedrand":
		shared := randomness.NewShared(300_000, prng.New(*seed))
		res, err := decomp.SharedRand(g, shared, decomp.SharedRandConfig{})
		if err != nil {
			return err
		}
		return reportDecomp(g, res.Decomposition, "SharedRand (Thm 3.6)",
			fmt.Sprintf("seedBitsUsed=%d phases=%d analyticRounds=%d",
				res.SeedBitsUsed, res.Phases, res.AnalyticRounds))
	case "shattering":
		res, err := decomp.Shattering(g, randomness.NewFull(*seed), decomp.ShatteringConfig{ENPhases: 2})
		if err != nil {
			return err
		}
		if err := res.Decomposition.ValidateWeak(g, 0, 0); err != nil {
			return fmt.Errorf("invalid result: %w", err)
		}
		fmt.Printf("Shattering (Thm 4.2): valid (weak-diameter)\n")
		fmt.Printf("  leftover=%d separated=%d ENrounds=%d detClusters=%d analyticRounds=%d\n",
			res.Leftover, res.SeparatedLeftover, res.ENRounds, res.DeterministicClusters, res.AnalyticRounds)
		return nil
	case "detdecomp":
		d := decomp.DeterministicSequential(g)
		return reportDecomp(g, d, "Deterministic sequential (zero randomness)", "SLOCAL locality O(log n)")
	case "mpx":
		res, err := decomp.MPXPartition(g, randomness.NewFull(*seed), nil)
		if err != nil {
			return err
		}
		fmt.Printf("MPX random-shift partition: maxClusterDiameter=%d cutEdges=%d/%d rounds=%d\n",
			res.MaxClusterDiameter, res.CutEdges, g.M(), res.Rounds)
		return nil
	case "sinkless":
		res, err := orientation.Sinkless(g, randomness.NewFull(*seed), 0)
		if err != nil {
			return err
		}
		if err := res.Orientation.Check(3); err != nil {
			return fmt.Errorf("invalid orientation: %w", err)
		}
		fmt.Printf("Sinkless orientation: valid, rounds=%d retries=%d\n", res.Rounds, res.Retries)
		return nil
	case "luby":
		src := randomness.NewFull(*seed)
		in, res, err := mis.Luby(g, src, nil, mis.LubyConfig{Adversary: adv})
		if err != nil {
			if adv == nil || res == nil {
				return err
			}
			printTelemetry(res.Telemetry)
			fmt.Printf("Luby MIS under faults: INCOMPLETE (%v) rounds=%d\n", err, res.Rounds)
			return errRejected
		}
		if err := check.MIS(g, in); err != nil {
			if adv != nil {
				printTelemetry(res.Telemetry)
				fmt.Printf("Luby MIS under faults: INVALID (%v) rounds=%d\n", err, res.Rounds)
				return errRejected
			}
			return fmt.Errorf("invalid MIS: %w", err)
		}
		size := 0
		for _, b := range in {
			if b {
				size++
			}
		}
		printTelemetry(res.Telemetry)
		fmt.Printf("Luby MIS: valid, |MIS|=%d rounds=%d trueBits=%d\n", size, res.Rounds, src.Ledger().TrueBits())
		return nil
	case "lubybit":
		src := randomness.NewFull(*seed)
		in, res, err := mis.LubyBit(g, src, nil, mis.LubyBitConfig{Adversary: adv})
		if err != nil {
			if adv == nil || res == nil {
				return err
			}
			printTelemetry(res.Telemetry)
			fmt.Printf("LubyBit MIS under faults: INCOMPLETE (%v) rounds=%d\n", err, res.Rounds)
			return errRejected
		}
		if err := check.MIS(g, in); err != nil {
			if adv != nil {
				printTelemetry(res.Telemetry)
				fmt.Printf("LubyBit MIS under faults: INVALID (%v) rounds=%d\n", err, res.Rounds)
				return errRejected
			}
			return fmt.Errorf("invalid MIS: %w", err)
		}
		size := 0
		for _, b := range in {
			if b {
				size++
			}
		}
		printTelemetry(res.Telemetry)
		fmt.Printf("LubyBit MIS (1-bit messages): valid, |MIS|=%d rounds=%d messages=%d bits=%d trueBits=%d\n",
			size, res.Rounds, res.Messages, res.BitsTotal, src.Ledger().TrueBits())
		return nil
	case "coloring":
		src := randomness.NewFull(*seed)
		colors, res, err := coloring.Randomized(g, src, nil, coloring.Config{Adversary: adv})
		if err != nil {
			if adv == nil || res == nil {
				return err
			}
			printTelemetry(res.Telemetry)
			fmt.Printf("(Δ+1)-coloring under faults: INCOMPLETE (%v) rounds=%d\n", err, res.Rounds)
			return errRejected
		}
		if err := check.Coloring(g, colors, g.MaxDegree()+1); err != nil {
			if adv != nil {
				printTelemetry(res.Telemetry)
				fmt.Printf("(Δ+1)-coloring under faults: INVALID (%v) rounds=%d\n", err, res.Rounds)
				return errRejected
			}
			return fmt.Errorf("invalid coloring: %w", err)
		}
		printTelemetry(res.Telemetry)
		fmt.Printf("Randomized (Δ+1)-coloring: valid, Δ+1=%d rounds=%d trueBits=%d\n",
			g.MaxDegree()+1, res.Rounds, src.Ledger().TrueBits())
		return nil
	case "derand-mis":
		res, err := slocal.DerandomizedMIS(g)
		if err != nil {
			return err
		}
		if err := check.MIS(g, res.Outputs); err != nil {
			return fmt.Errorf("invalid MIS: %w", err)
		}
		fmt.Printf("Derandomized MIS: valid, zero randomness, analyticRounds=%d (colors=%d, clusterDiam=%d)\n",
			res.AnalyticRounds, res.Colors, res.MaxClusterDiameter)
		return nil
	case "derand-coloring":
		res, err := slocal.DerandomizedColoring(g)
		if err != nil {
			return err
		}
		if err := check.Coloring(g, res.Outputs, g.MaxDegree()+1); err != nil {
			return fmt.Errorf("invalid coloring: %w", err)
		}
		fmt.Printf("Derandomized (Δ+1)-coloring: valid, zero randomness, analyticRounds=%d\n", res.AnalyticRounds)
		return nil
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
}

// printTelemetry summarizes a run's telemetry record when -telemetry
// enabled collection: pool shape, round count, the compute-time imbalance
// the adaptive re-shard policy watches, the delivery-mode split, and every
// re-shard event.
func printTelemetry(tel *sim.Telemetry) {
	if tel == nil {
		return
	}
	var computeNS, idleNS, wallNS int64
	packed, dense, sparse := 0, 0, 0
	for _, rs := range tel.Rounds {
		wallNS += rs.WallNS
		var maxC int64
		for _, c := range rs.ComputeNS {
			computeNS += c
			if c > maxC {
				maxC = c
			}
		}
		idleNS += maxC*int64(tel.Workers) - sumInt64(rs.ComputeNS)
		for _, m := range rs.Mode {
			switch m {
			case sim.DeliverPacked:
				packed++
			case sim.DeliverDense:
				dense++
			case sim.DeliverSparse:
				sparse++
			}
		}
	}
	fmt.Printf("telemetry: scheduler=%v workers=%d rounds=%d wall=%.1fms compute=%.1fms barrier-idle=%.1fms\n",
		tel.Scheduler, tel.Workers, len(tel.Rounds),
		float64(wallNS)/1e6, float64(computeNS)/1e6, float64(idleNS)/1e6)
	if packed+dense+sparse > 0 {
		fmt.Printf("telemetry: delivery modes: %d packed / %d dense / %d sparse (per worker-round)\n", packed, dense, sparse)
	}
	if len(tel.PoolWidthPerRound) > 0 {
		// The effective pool width per round: the adaptive ledger parks
		// surplus workers through the shattering tail, so min can sit well
		// below the configured worker count.
		minW, maxW := tel.PoolWidthPerRound[0], tel.PoolWidthPerRound[0]
		for _, w := range tel.PoolWidthPerRound {
			if w < minW {
				minW = w
			}
			if w > maxW {
				maxW = w
			}
		}
		fmt.Printf("telemetry: effective pool width: %d configured, %d-%d active per round\n",
			tel.Workers, minW, maxW)
	}
	if len(tel.CrossShardStaged) > 0 {
		var diag, cross int64
		for i, row := range tel.CrossShardStaged {
			for j, c := range row {
				if i == j {
					diag += c
				} else {
					cross += c
				}
			}
		}
		if diag+cross > 0 {
			fmt.Printf("telemetry: cross-shard staging: %d of %d staged messages crossed shards (%.1f%%)\n",
				cross, diag+cross, 100*float64(cross)/float64(diag+cross))
		}
	}
	for _, ev := range tel.Places {
		when := fmt.Sprintf("after round %d", ev.Round)
		if ev.Round < 0 {
			when = "at setup"
		}
		fmt.Printf("telemetry: placement %s: width=%d pinned=%v moved=%d touched=%v\n",
			when, ev.Width, ev.Pinned, ev.Moved, ev.Touched)
	}
	for _, ev := range tel.Reshards {
		fmt.Printf("telemetry: reshard after round %d over %d live nodes (cost %.2fms, imbalance debt %.2fms)\n",
			ev.Round, ev.Live, float64(ev.CostNS)/1e6, float64(ev.WasteNS)/1e6)
	}
	if len(tel.Injected) > 0 {
		totals := map[sim.InjectKind]int{}
		for _, ev := range tel.Injected {
			totals[ev.Kind] += ev.Count
		}
		kinds := []sim.InjectKind{sim.InjectDrop, sim.InjectCut, sim.InjectDelay,
			sim.InjectSupersede, sim.InjectExpire, sim.InjectChurnDown,
			sim.InjectChurnUp, sim.InjectCrash, sim.InjectStall, sim.InjectStallLoss}
		line := ""
		for _, k := range kinds {
			if totals[k] > 0 {
				line += fmt.Sprintf(" %v=%d", k, totals[k])
			}
		}
		fmt.Printf("telemetry: injected faults (%d events):%s\n", len(tel.Injected), line)
	}
}

func sumInt64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

func reportDecomp(g *graph.Graph, d *decomp.Decomposition, name, extra string) error {
	if err := d.Validate(g, 0, 0); err != nil {
		return fmt.Errorf("%s produced an invalid decomposition: %w", name, err)
	}
	st := d.StatsOf(g)
	fmt.Printf("%s: valid strong-diameter decomposition\n", name)
	fmt.Printf("  colors=%d clusters=%d maxDiameter=%d maxSize=%d\n", st.Colors, st.Clusters, st.MaxDiameter, st.MaxSize)
	if extra != "" {
		fmt.Printf("  %s\n", extra)
	}
	return nil
}
