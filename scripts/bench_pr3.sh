#!/usr/bin/env bash
# bench_pr3.sh — record the worklist + arena perf trajectory.
#
# Runs BenchmarkRun, BenchmarkRunParallel and BenchmarkRunStaggered (the
# late-round-dominated workload the active-node worklist targets) and emits
# BENCH_PR3.json at the repo root, next to the frozen pre-worklist baseline
# (commit 2187873: O(n) done-flag sweeps, O(m) delivery sweeps, heap-
# allocated payloads; measured on the same class of machine, -benchtime 2x).
#
# Usage: scripts/bench_pr3.sh [benchtime]   (default 2x)
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

BENCHTIME="${1:-2x}"
OUT="BENCH_PR3.json"

PRE_WORKLIST_BASELINE="BenchmarkRun/n=65536 159226616 1114122 49324480
BenchmarkRun/n=1048576 5324929268 17825802 790348224
BenchmarkRunStaggered/n=65536 173990231 589826 45130112
BenchmarkRunStaggered/n=1048576 5938177341 9437186 723239296
BenchmarkRunParallel/n=65536/workers=2 238886663 1114255 120647552
BenchmarkRunParallel/n=1048576/workers=2 7357513976 17825983 1874628480"

run_benchmarks_isolated "$BENCHTIME" \
	'BenchmarkRun$/^n=65536$' 'BenchmarkRun$/^n=1048576$' \
	'BenchmarkRunStaggered$/^n=65536$' 'BenchmarkRunStaggered$/^n=1048576$' \
	'BenchmarkRunParallel$/^n=65536$' 'BenchmarkRunParallel$/^n=1048576$' |
	bench_to_json "worklist + arena benchmarks; baseline = pre-worklist commit 2187873" "$BENCHTIME" "$PRE_WORKLIST_BASELINE" > "$OUT"

echo "wrote $OUT"
