#!/usr/bin/env bash
# bench_pr10.sh — record the out-of-core CSR trajectory.
#
# Emits BENCH_PR10.json at the repo root. Three stories in one document:
#
#   * BenchmarkLubyPackedFile rows are the headline: the packed 1-bit Luby
#     program executing over the read-only mmap-backed on-disk CSR graph
#     (what `locsim -graphfile` runs). Each row's baseline_* fields are THIS
#     run's sequential BenchmarkLubyPacked row for the same n, so the
#     ns_reduction_pct reads as "what the mapping costs over the in-RAM CSR
#     warm on this machine". Acceptance: the n=2^20 row's overhead must stay
#     within 10%.
#   * BenchmarkStreamBuild documents the out-of-core construction path: one
#     op is a complete n=2^20 streaming build (generator → counting-sort
#     passes → dedup/rev/checksum). Its heapB/node metric is the O(n)
#     peak-RAM story in numbers — the half-edge stream (~50MB here) lives on
#     disk, and the heap carries only per-node counters and fixed buffers.
#     (The hard not-O(m) proof is TestStreamingBuildHeapON's allocation
#     assertion; this row records the absolute costs.)
#   * The engine rows (BenchmarkRun / RunStaggered / RunParallel /
#     RunParallelStaggered / Luby / LubyPacked / RunParallelLubyPacked)
#     carry their BENCH_PR9.json baselines to keep the trend honest — this
#     PR does not touch the engines, so these rows must hold steady.
#
# Usage: scripts/bench_pr10.sh [benchtime]   (default 2x, matching the
#                                             BENCH_PR9.json recording)
# Env:   BENCH_COUNT  runs per benchmark; the min is recorded (default 3,
#                     stripping shared-machine noise like the CI gate does)
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

BENCHTIME="${1:-2x}"
export BENCH_COUNT="${BENCH_COUNT:-3}"
OUT="BENCH_PR10.json"

RAW="$(run_benchmarks_isolated "$BENCHTIME" \
	'BenchmarkRun$/^n=65536$' 'BenchmarkRun$/^n=1048576$' \
	'BenchmarkRunStaggered$/^n=65536$' 'BenchmarkRunStaggered$/^n=1048576$' \
	'BenchmarkRunParallel$/^n=65536$' 'BenchmarkRunParallel$/^n=1048576$' \
	'BenchmarkRunParallelStaggered$/^n=65536$' 'BenchmarkRunParallelStaggered$/^n=1048576$' \
	'BenchmarkLuby$/^n=65536$' 'BenchmarkLuby$/^n=1048576$' \
	'BenchmarkLubyPacked$/^n=65536$' 'BenchmarkLubyPacked$/^n=1048576$' \
	'BenchmarkLubyPackedFile$/^n=65536$' 'BenchmarkLubyPackedFile$/^n=1048576$' \
	'BenchmarkRunParallelLubyPacked$/^n=65536$' 'BenchmarkRunParallelLubyPacked$/^n=1048576$' \
	'BenchmarkFloodMinBit$/^n=65536$' 'BenchmarkFloodMinBit$/^n=1048576$' |
	min_over_runs)"

# The streaming-build row runs in its own package (one op is a full build, so
# benchtime stays at 1x regardless of the engine rows' setting).
STREAM_RAW="$(go test -run NONE -bench 'BenchmarkStreamBuild$' -benchtime 1x \
	-count "$BENCH_COUNT" -benchmem ./internal/graph/csrfile | min_over_runs)"
RAW="$RAW
$STREAM_RAW"

# The file-backed rows' baselines are this run's own in-RAM sequential
# BenchmarkLubyPacked rows: a same-runner, same-binary measurement of the
# mmap-backed graph alone.
FILE_BASE="$(printf '%s\n' "$RAW" | awk '
	/^BenchmarkLubyPacked\// {
		name = $1
		sub(/-[0-9]+$/, "", name)
		sub(/^BenchmarkLubyPacked\//, "", name)
		ns = allocs = bytes = ""
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op")     ns     = $(i-1)
			if ($i == "allocs/op") allocs = $(i-1)
			if ($i == "B/op")      bytes  = $(i-1)
		}
		if (ns != "") pl[name] = ns " " allocs " " bytes
	}
	/^BenchmarkLubyPackedFile\// {
		name = $1
		sub(/-[0-9]+$/, "", name)
		size = name
		sub(/^BenchmarkLubyPackedFile\//, "", size)
		if (size in pl) print name, pl[size]
	}')"

BASELINES="$(baselines_from_json BENCH_PR9.json)
$FILE_BASE"

printf '%s\n' "$RAW" |
	bench_to_json "out-of-core CSR (streaming build, mmap-backed engines); LubyPackedFile baselines = this run's in-RAM sequential BenchmarkLubyPacked rows, all other baselines = BENCH_PR9.json; BenchmarkStreamBuild: one op = a full n=2^20 out-of-core build whose ~50MB half-edge stream lives on disk, so bytes_per_op/n (~100B/node) is the documented O(n) peak-heap measurement; min of $BENCH_COUNT runs" "$BENCHTIME" "$BASELINES" > "$OUT"

echo "wrote $OUT"

# Acceptance: warm file-backed execution at n=2^20 must stay within 10% of
# the same run's in-RAM row. (Negative reduction = overhead.)
printf '%s\n' "$RAW" | awk -v filebase="$FILE_BASE" '
BEGIN {
	nb = split(filebase, lines, "\n")
	for (i = 1; i <= nb; i++) {
		split(lines[i], f, " ")
		if (f[1] != "") bns[f[1]] = f[2]
	}
	fail = 1 # the row must be present: a silently-skipped acceptance is a pass that proves nothing
}
/^BenchmarkLubyPackedFile\/n=1048576/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""
	for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i-1)
	if (ns == "" || !(name in bns)) next
	over = (ns / bns[name] - 1) * 100
	ok = (over <= 10)
	printf "%-45s ns/op %+6.1f%% vs in-RAM LubyPacked  %s\n", name, over, ok ? "ok (<= 10% overhead)" : "OVER BUDGET"
	fail = !ok
}
END { exit fail }
' || { echo "bench_pr10: acceptance FAILED" >&2; exit 1; }
echo "bench_pr10: acceptance ok"
