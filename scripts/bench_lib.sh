# bench_lib.sh — shared machinery for the BENCH_PR*.json recorders
# (bench_pr*.sh) and the CI regression gate (bench_gate.sh).
# Source it; do not execute it.
#
# The JSON shape is stable across PRs: {note, benchtime, benchmarks: [
# {name, ns_per_op, bytes_per_op, allocs_per_op, baseline_*...}]}, where the
# baseline_* and *_reduction_pct fields appear on benchmarks that have a row
# in the baseline spec ("name ns allocs bytes" per line).
#
# Baseline lineage — each committed BENCH_PR*.json was recorded against the
# previous one, so the chain reads as the repo's performance history and the
# CI gate (bench_gate.sh) always compares against the newest link:
#
#   BENCH_FRESH.json  (uncommitted; every gate run writes one)
#     ^ gated against
#   BENCH_PR10.json   out-of-core CSR: mmap-backed engines + streaming build
#     ^ recorded vs
#   BENCH_PR9.json    topology-aware parallel execution (pool width, pinning)
#     ^ recorded vs
#   BENCH_PR7.json    bit-packed message planes (LubyPacked vs unpacked)
#     ^ recorded vs
#   BENCH_PR4.json    zero-alloc programs + adaptive delivery + re-sharding
#     ^ recorded vs
#   BENCH_PR3.json    worklist + arena engine
#     ^ recorded vs
#   BENCH_PR2.json    flat CSR graphs (baseline = pre-CSR commit e48e40f)
#
# When a PR moves performance, record a new BENCH_PR<k>.json with a
# bench_pr<k>.sh that baselines against the previous file, then bump
# bench_gate.sh's default BASELINE and the ci.yml bench-gate step.

# run_benchmarks_isolated <benchtime> <bench-regex>...
# One `go test` process per regex, outputs concatenated. Heavy benchmarks
# measurably pollute the heap/GC state of whatever runs after them in the
# same process (>50% ns/op swings at n=2^20 on small machines), so the
# recorders and the CI gate isolate each benchmark size — regexes may use
# `go test`'s slash syntax to select sub-benchmarks.
run_benchmarks_isolated() {
	local benchtime="$1"
	shift
	local pat
	for pat in "$@"; do
		go test -run NONE -bench "$pat" -benchtime "$benchtime" -count "${BENCH_COUNT:-1}" -benchmem .
	done
}

# min_over_runs
# Collapses repeated runs of the same benchmark (-count > 1) to the single
# run with the lowest ns/op — the standard way to strip scheduler and GC
# noise from a shared machine before comparing against a threshold.
min_over_runs() {
	awk '
	/^Benchmark/ {
		name = $1
		ns = ""
		for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i-1)
		if (ns == "") next
		if (!(name in bestns)) order[++k] = name
		if (!(name in bestns) || ns + 0 < bestns[name]) { bestns[name] = ns + 0; best[name] = $0 }
		next
	}
	END { for (i = 1; i <= k; i++) print best[order[i]] }
	'
}

# bench_to_json <note> <benchtime> [baseline_spec]
# Reads raw benchmark output on stdin and emits the BENCH_PR*.json document.
bench_to_json() {
	awk -v note="$1" -v benchtime="$2" -v baselines="${3:-}" '
	BEGIN {
		nb = split(baselines, lines, "\n")
		for (i = 1; i <= nb; i++) {
			split(lines[i], f, " ")
			if (f[1] != "") base[f[1]] = f[2] " " f[3] " " f[4]
		}
		printf "{\n  \"note\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", note, benchtime
		first = 1
	}
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
		ns = allocs = bytes = ""
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op")     ns     = $(i-1)
			if ($i == "allocs/op") allocs = $(i-1)
			if ($i == "B/op")      bytes  = $(i-1)
		}
		if (ns == "") next
		if (!first) printf ",\n"
		first = 0
		printf "    {\n      \"name\": \"%s\",\n      \"ns_per_op\": %s,\n      \"bytes_per_op\": %s,\n      \"allocs_per_op\": %s", name, ns, bytes, allocs
		if (name in base) {
			split(base[name], b, " ")
			printf ",\n      \"baseline_ns_per_op\": %s,\n      \"baseline_allocs_per_op\": %s,\n      \"baseline_bytes_per_op\": %s", b[1], b[2], b[3]
			printf ",\n      \"allocs_reduction_pct\": %.1f", (1 - allocs / b[2]) * 100
			printf ",\n      \"ns_reduction_pct\": %.1f", (1 - ns / b[1]) * 100
		}
		printf "\n    }"
	}
	END { printf "\n  ]\n}\n" }
	'
}

# baselines_from_json <file>
# Extracts "name ns allocs bytes" rows from a committed BENCH_PR*.json, for
# use as a bench_to_json baseline spec or as the gate's reference. Matches
# only the un-prefixed per-op fields (a leading quote excludes baseline_*).
baselines_from_json() {
	awk '
	/"name":/          { gsub(/[",]/, "", $2); name = $2 }
	/"ns_per_op":/     { gsub(/,/, "", $2); ns = $2 }
	/"bytes_per_op":/  { gsub(/,/, "", $2); bytes = $2 }
	/"allocs_per_op":/ { gsub(/,/, "", $2); print name, ns, $2, bytes }
	' "$1"
}
