#!/usr/bin/env bash
# bench_pr9.sh — record the topology-aware parallel-execution trajectory.
#
# Emits BENCH_PR9.json at the repo root. Three stories in one document:
#
#   * BenchmarkRunParallelStaggered is the headline: under the adaptive
#     policy the pool now sizes itself to the topology — its width is
#     clamped to the runtime's processor count (surplus workers would only
#     time-slice the same CPUs, paying barrier and scatter coordination for
#     zero overlap), the width ledger parks workers through the shattering
#     tail, and pinned runs first-touch their shard windows. On the 1-CPU
#     recorder the multi-worker staggered rows collapse to the sequential
#     schedule and must beat their BENCH_PR7.json numbers by >= 15%;
#     the workers=1 rows take the same path as before and must not regress.
#   * BenchmarkRunParallelLubyPacked rows are new: the packed 1-bit Luby
#     program on the worker pool. Each row's baseline_* fields are THIS
#     run's sequential BenchmarkLubyPacked row for the same n, so the
#     ns_reduction_pct reads as "what the pool costs (or buys) over the
#     sequential packed engine on this machine".
#   * The remaining engine rows (BenchmarkRun / RunStaggered / RunParallel /
#     Luby / LubyPacked / FloodMinBit) carry their BENCH_PR7.json baselines
#     to keep the trend honest. Note: on hosts with fewer processors than
#     workers the BenchmarkRunParallel flood rows may read slower than
#     PR7's — the adaptive clamp trades the flood's staging-locality win on
#     an over-subscribed host for the (much larger) staggered win; on hosts
#     with enough processors the clamp never binds.
#
# Usage: scripts/bench_pr9.sh [benchtime]   (default 2x, matching the
#                                            BENCH_PR7.json recording)
# Env:   BENCH_COUNT  runs per benchmark; the min is recorded (default 3,
#                     stripping shared-machine noise like the CI gate does)
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

BENCHTIME="${1:-2x}"
export BENCH_COUNT="${BENCH_COUNT:-3}"
OUT="BENCH_PR9.json"

RAW="$(run_benchmarks_isolated "$BENCHTIME" \
	'BenchmarkRun$/^n=65536$' 'BenchmarkRun$/^n=1048576$' \
	'BenchmarkRunStaggered$/^n=65536$' 'BenchmarkRunStaggered$/^n=1048576$' \
	'BenchmarkRunParallel$/^n=65536$' 'BenchmarkRunParallel$/^n=1048576$' \
	'BenchmarkRunParallelStaggered$/^n=65536$' 'BenchmarkRunParallelStaggered$/^n=1048576$' \
	'BenchmarkLuby$/^n=65536$' 'BenchmarkLuby$/^n=1048576$' \
	'BenchmarkLubyPacked$/^n=65536$' 'BenchmarkLubyPacked$/^n=1048576$' \
	'BenchmarkRunParallelLubyPacked$/^n=65536$' 'BenchmarkRunParallelLubyPacked$/^n=1048576$' \
	'BenchmarkFloodMinBit$/^n=65536$' 'BenchmarkFloodMinBit$/^n=1048576$' |
	min_over_runs)"

# The pooled packed-Luby rows' baselines are this run's own sequential
# BenchmarkLubyPacked rows, one per worker count: a same-runner, same-binary
# measurement of the worker pool alone on the packed load.
PLUBY_BASE="$(printf '%s\n' "$RAW" | awk '
	/^BenchmarkLubyPacked\// {
		name = $1
		sub(/-[0-9]+$/, "", name)
		sub(/^BenchmarkLubyPacked\//, "", name)
		ns = allocs = bytes = ""
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op")     ns     = $(i-1)
			if ($i == "allocs/op") allocs = $(i-1)
			if ($i == "B/op")      bytes  = $(i-1)
		}
		if (ns != "") pl[name] = ns " " allocs " " bytes
	}
	/^BenchmarkRunParallelLubyPacked\// {
		name = $1
		sub(/-[0-9]+$/, "", name)
		size = name
		sub(/^BenchmarkRunParallelLubyPacked\//, "", size)
		sub(/\/workers=[0-9]+$/, "", size)
		if (size in pl) print name, pl[size]
	}')"

BASELINES="$(baselines_from_json BENCH_PR7.json)
$PLUBY_BASE"

printf '%s\n' "$RAW" |
	bench_to_json "topology-aware parallel execution (adaptive pool width, processor clamp, pinned first-touch placement); RunParallelLubyPacked baselines = this run's sequential BenchmarkLubyPacked rows, all other baselines = BENCH_PR7.json; min of $BENCH_COUNT runs" "$BENCHTIME" "$BASELINES" > "$OUT"

echo "wrote $OUT"

# Acceptance: the staggered n=2^20 multi-worker row must beat its
# BENCH_PR7.json baseline by >= 15%, and the workers=1 row must not regress
# beyond the usual gate threshold (it takes the unchanged sequential path;
# anything past that is machine noise worth investigating, not recording).
printf '%s\n' "$RAW" | awk -v baselines="$(baselines_from_json BENCH_PR7.json)" '
BEGIN {
	nb = split(baselines, lines, "\n")
	for (i = 1; i <= nb; i++) {
		split(lines[i], f, " ")
		if (f[1] != "") bns[f[1]] = f[2]
	}
	fail = 0
}
/^BenchmarkRunParallelStaggered\/n=1048576\// {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""
	for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i-1)
	if (ns == "" || !(name in bns)) next
	red = (1 - ns / bns[name]) * 100
	if (name ~ /workers=1$/) {
		ok = (red >= -15)
		printf "%-55s ns/op %+6.1f%% vs PR7  %s\n", name, red, ok ? "ok (sequential path, no regression)" : "REGRESSION"
		if (!ok) fail = 1
	} else {
		ok = (red >= 15)
		printf "%-55s ns/op %+6.1f%% vs PR7  %s\n", name, red, ok ? "ok (>= 15% win)" : "BELOW TARGET"
		if (!ok) fail = 1
	}
}
END { exit fail }
' || { echo "bench_pr9: acceptance FAILED" >&2; exit 1; }
echo "bench_pr9: acceptance ok"
