#!/usr/bin/env bash
# server_smoke.sh — CI smoke test for the locsimd simulation daemon.
#
# Exercises the service guarantees end to end, over real HTTP:
#   1. The daemon starts, binds, and reports its address.
#   2. A submitted Luby run executes to a valid outcome whose rounds and
#      |MIS| match a direct same-seed `locsim` run (CLI equivalence).
#   3. A faulted Elkin–Neiman run reports the same verdict and rounds the
#      CLI prints — and the CLI exits nonzero on the rejected run.
#   4. A file-backed run (csrgen graph served from -graphdir) reproduces
#      the generated run's outcome exactly — daemon and CLI — and path
#      escapes outside the graph directory are rejected with 400.
#   5. The SSE stream delivers per-round progress events and a terminal
#      done event carrying the telemetry summary.
#   6. SIGTERM drains gracefully: in-flight work finishes, the process
#      logs the drain and exits cleanly.
#
# No jq dependency: JSON fields are extracted with grep/sed.
#
# Usage: scripts/server_smoke.sh [workdir]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-server-smoke-out}"
rm -rf "$OUT"
mkdir -p "$OUT"

DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

json_field() { # json_field <file> <name> — first numeric value of "name":N
  grep -o "\"$2\":[0-9-]*" "$1" | head -1 | cut -d: -f2
}

echo "== build"
go build -o "$OUT/locsim" ./cmd/locsim
go build -o "$OUT/locsimd" ./cmd/locsimd
go build -o "$OUT/csrgen" ./cmd/csrgen

echo "== generate on-disk graph"
mkdir -p "$OUT/graphs"
"$OUT/csrgen" -graph gnp -n 512 -seed 42 -o "$OUT/graphs/g512.csr"

echo "== start daemon"
"$OUT/locsimd" -addr 127.0.0.1:0 -jobs 2 -backlog 4 -graphdir "$OUT/graphs" >"$OUT/daemon.log" 2>&1 &
DAEMON_PID=$!
ADDR=""
for _ in $(seq 1 50); do
  ADDR="$(sed -n 's/^locsimd: listening on //p' "$OUT/daemon.log" | head -1)"
  [[ -n "$ADDR" ]] && break
  kill -0 "$DAEMON_PID" || { echo "daemon died at startup"; cat "$OUT/daemon.log"; exit 1; }
  sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "daemon never reported its address"; cat "$OUT/daemon.log"; exit 1; }
BASE="http://$ADDR"
echo "daemon at $BASE (pid $DAEMON_PID)"
curl -fsS "$BASE/healthz" | grep -q '"status":"ok"'

submit() { # submit <json> — prints run id
  local resp
  resp="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$1" "$BASE/v1/runs")"
  echo "$resp" | grep -o '"id":"[^"]*"' | cut -d'"' -f4
}

poll_done() { # poll_done <id> <outfile> — waits for done/failed status
  local id="$1" out="$2" status=""
  for _ in $(seq 1 300); do
    curl -fsS "$BASE/v1/runs/$id" >"$out"
    status="$(grep -o '"status":"[^"]*"' "$out" | head -1 | cut -d'"' -f4)"
    [[ "$status" == "done" || "$status" == "failed" ]] && { echo "$status"; return; }
    sleep 0.1
  done
  echo "timeout"
}

echo "== Luby run via daemon"
LUBY_ID="$(submit '{"algo":"luby","n":512,"seed":42}')"
[[ -n "$LUBY_ID" ]] || { echo "no id returned"; exit 1; }
STATUS="$(poll_done "$LUBY_ID" "$OUT/luby.json")"
[[ "$STATUS" == "done" ]] || { echo "luby run status: $STATUS"; cat "$OUT/luby.json"; exit 1; }
grep -q '"valid":true' "$OUT/luby.json" || { echo "luby run not valid"; cat "$OUT/luby.json"; exit 1; }
DAEMON_ROUNDS="$(json_field "$OUT/luby.json" rounds)"
DAEMON_MIS="$(grep -o '|MIS|=[0-9]*' "$OUT/luby.json" | head -1 | cut -d= -f2)"

echo "== Luby run via CLI (same seed)"
"$OUT/locsim" -algo luby -n 512 -seed 42 >"$OUT/luby.cli" 2>&1
CLI_ROUNDS="$(grep -o 'rounds=[0-9]*' "$OUT/luby.cli" | head -1 | cut -d= -f2)"
CLI_MIS="$(grep -o '|MIS|=[0-9]*' "$OUT/luby.cli" | head -1 | cut -d= -f2)"
echo "daemon: rounds=$DAEMON_ROUNDS |MIS|=$DAEMON_MIS; cli: rounds=$CLI_ROUNDS |MIS|=$CLI_MIS"
[[ "$DAEMON_ROUNDS" == "$CLI_ROUNDS" && -n "$DAEMON_ROUNDS" ]] || { echo "rounds mismatch"; exit 1; }
[[ "$DAEMON_MIS" == "$CLI_MIS" && -n "$DAEMON_MIS" ]] || { echo "|MIS| mismatch"; exit 1; }

echo "== file-backed Luby run via daemon (same instance from -graphdir)"
# csrgen -graph gnp -n 512 -seed 42 wrote the exact graph the generated run
# above built in RAM, so the file-backed outcome must be identical.
FILE_ID="$(submit '{"algo":"luby","graphFile":"g512.csr","seed":42}')"
[[ -n "$FILE_ID" ]] || { echo "no id returned for file-backed run"; exit 1; }
STATUS="$(poll_done "$FILE_ID" "$OUT/lubyfile.json")"
[[ "$STATUS" == "done" ]] || { echo "file-backed run status: $STATUS"; cat "$OUT/lubyfile.json"; exit 1; }
grep -q '"valid":true' "$OUT/lubyfile.json" || { echo "file-backed run not valid"; cat "$OUT/lubyfile.json"; exit 1; }
FILE_ROUNDS="$(json_field "$OUT/lubyfile.json" rounds)"
FILE_MIS="$(grep -o '|MIS|=[0-9]*' "$OUT/lubyfile.json" | head -1 | cut -d= -f2)"
echo "file-backed: rounds=$FILE_ROUNDS |MIS|=$FILE_MIS; generated: rounds=$DAEMON_ROUNDS |MIS|=$DAEMON_MIS"
[[ "$FILE_ROUNDS" == "$DAEMON_ROUNDS" && -n "$FILE_ROUNDS" ]] || { echo "file-backed rounds diverge from generated run"; exit 1; }
[[ "$FILE_MIS" == "$DAEMON_MIS" && -n "$FILE_MIS" ]] || { echo "file-backed |MIS| diverges from generated run"; exit 1; }
# The status view echoes the client's relative path, not the resolved one.
grep -q '"graphFile":"g512.csr"' "$OUT/lubyfile.json" || { echo "status view missing relative graphFile"; cat "$OUT/lubyfile.json"; exit 1; }

echo "== file-backed Luby run via CLI (same file, same seed)"
"$OUT/locsim" -graphfile "$OUT/graphs/g512.csr" -algo luby -seed 42 >"$OUT/lubyfile.cli" 2>&1
# Byte-identical output modulo the telemetry wall-clock line.
if ! diff <(grep -v '^telemetry' "$OUT/luby.cli") <(grep -v '^telemetry' "$OUT/lubyfile.cli"); then
  echo "locsim -graphfile output diverges from the generated same-seed run"
  exit 1
fi

echo "== graph-directory escapes are rejected"
reject_submit() { # reject_submit <json> <want-substring>
  local code body
  body="$(curl -s -o - -w '\n%{http_code}' -X POST -H 'Content-Type: application/json' -d "$1" "$BASE/v1/runs")"
  code="${body##*$'\n'}"
  [[ "$code" == "400" ]] || { echo "submit $1: got HTTP $code, want 400"; echo "$body"; exit 1; }
  printf '%s' "$body" | grep -q "$2" || { echo "submit $1: 400 body missing '$2'"; echo "$body"; exit 1; }
}
reject_submit '{"algo":"luby","graphFile":"../escape.csr","seed":1}' "escapes"
reject_submit '{"algo":"luby","graphFile":"/etc/passwd","seed":1}' "escapes"
reject_submit '{"algo":"luby","graphFile":"missing.csr","seed":1}' ""
echo "escape and missing-file submissions rejected with 400"

echo "== faulted EN run via daemon"
EN_ID="$(submit '{"algo":"en","n":256,"seed":1,"adversary":{"drop":0.3,"crash":4}}')"
STATUS="$(poll_done "$EN_ID" "$OUT/en.json")"
[[ "$STATUS" == "done" ]] || { echo "faulted EN status: $STATUS"; cat "$OUT/en.json"; exit 1; }
EN_DAEMON_ROUNDS="$(json_field "$OUT/en.json" rounds)"
EN_DAEMON_VALID="$(grep -o '"valid":\(true\|false\)' "$OUT/en.json" | head -1 | cut -d: -f2)"

echo "== faulted EN run via CLI (same seed + budgets)"
set +e
"$OUT/locsim" -algo en -n 256 -seed 1 -drop 0.3 -crash 4 >"$OUT/en.cli" 2>&1
EN_CLI_EXIT=$?
set -e
if grep -q 'INVALID\|INCOMPLETE' "$OUT/en.cli"; then
  EN_CLI_VALID=false
  # A rejected run must exit nonzero — the checker-verdict exit-code contract.
  [[ "$EN_CLI_EXIT" -ne 0 ]] || { echo "CLI rejected the run but exited 0"; exit 1; }
else
  EN_CLI_VALID=true
  [[ "$EN_CLI_EXIT" -eq 0 ]] || { echo "CLI valid run exited $EN_CLI_EXIT"; cat "$OUT/en.cli"; exit 1; }
fi
EN_CLI_ROUNDS="$(grep -o 'rounds=[0-9]*' "$OUT/en.cli" | head -1 | cut -d= -f2)"
echo "daemon: valid=$EN_DAEMON_VALID rounds=$EN_DAEMON_ROUNDS; cli: valid=$EN_CLI_VALID rounds=$EN_CLI_ROUNDS (exit $EN_CLI_EXIT)"
[[ "$EN_DAEMON_VALID" == "$EN_CLI_VALID" ]] || { echo "verdict mismatch"; exit 1; }
[[ "$EN_DAEMON_ROUNDS" == "$EN_CLI_ROUNDS" && -n "$EN_DAEMON_ROUNDS" ]] || { echo "faulted rounds mismatch"; exit 1; }
grep -q '"injected"' "$OUT/en.json" || { echo "faulted outcome missing injected-fault telemetry"; exit 1; }

echo "== progress stream"
curl -fsS -N --max-time 30 "$BASE/v1/runs/$LUBY_ID/stream" >"$OUT/stream.txt" || true
PROGRESS_EVENTS="$(grep -c '^event: progress$' "$OUT/stream.txt" || true)"
grep -q '^event: done$' "$OUT/stream.txt" || { echo "stream missing done event"; cat "$OUT/stream.txt"; exit 1; }
[[ "$PROGRESS_EVENTS" -ge 1 ]] || { echo "stream delivered no progress events"; cat "$OUT/stream.txt"; exit 1; }
[[ "$PROGRESS_EVENTS" == "$DAEMON_ROUNDS" ]] || { echo "stream had $PROGRESS_EVENTS progress events, want one per round ($DAEMON_ROUNDS)"; exit 1; }
grep '^event: done$' -A1 "$OUT/stream.txt" | grep -q '"telemetry"' || { echo "done event missing telemetry"; exit 1; }
echo "stream: $PROGRESS_EVENTS progress events + done with telemetry"

echo "== graceful SIGTERM drain"
# Park a slow run so the drain has something in flight, then signal.
SLOW_ID="$(submit '{"algo":"en","n":4000,"seed":3}')"
kill -TERM "$DAEMON_PID"
WAITED=0
while kill -0 "$DAEMON_PID" 2>/dev/null; do
  sleep 0.2
  WAITED=$((WAITED + 1))
  [[ "$WAITED" -lt 150 ]] || { echo "daemon did not exit after SIGTERM"; cat "$OUT/daemon.log"; exit 1; }
done
set +e
wait "$DAEMON_PID"
DAEMON_EXIT=$?
set -e
DAEMON_PID=""
[[ "$DAEMON_EXIT" -eq 0 ]] || { echo "daemon exited $DAEMON_EXIT"; cat "$OUT/daemon.log"; exit 1; }
grep -q 'draining' "$OUT/daemon.log" || { echo "daemon log missing drain"; cat "$OUT/daemon.log"; exit 1; }
grep -q 'drained [0-9]* in-flight' "$OUT/daemon.log" || { echo "daemon log missing drain count"; cat "$OUT/daemon.log"; exit 1; }
grep -q 'shutdown complete' "$OUT/daemon.log" || { echo "daemon log missing clean shutdown"; cat "$OUT/daemon.log"; exit 1; }
echo "drain: $(grep 'drained' "$OUT/daemon.log") (slow run $SLOW_ID accepted before signal)"

echo "server smoke: OK"
