#!/usr/bin/env bash
# bench_pr7.sh — record the bit-packed message-plane trajectory.
#
# Emits BENCH_PR7.json at the repo root. Three stories in one document:
#
#   * BenchmarkLuby vs BenchmarkLubyPacked is the headline comparison: the
#     identical coin-flip 1-bit Luby program (same graph, same seeds,
#     byte-identical Results — asserted by the equivalence suite) with the
#     message planes unpacked vs packed into []uint64 bitmaps. Both rows are
#     recorded fresh in the same run, and each BenchmarkLubyPacked row's
#     baseline_* fields are THIS run's BenchmarkLuby row, so the
#     ns_reduction_pct is a same-runner, same-binary measurement of the
#     packed representation alone.
#   * BenchmarkFloodMinBit rows (packed vs unpacked sub-rows) put the planes
#     under the densest 1-bit load — every half-edge lane carries a bit
#     every round — recorded to seed future comparisons.
#   * BenchmarkRun / BenchmarkRunStaggered / BenchmarkRunParallel /
#     BenchmarkRunParallelStaggered carry the BENCH_PR4.json baselines:
#     these all-active varint workloads never pack, so their ns/op and
#     allocs/op must NOT regress — that gates the denseDelivery refactor and
#     the packed branches added to the engines' hot paths.
#
# BenchmarkENDecomp is not re-recorded: its program is unpacked and its
# engine path is gated by the rows above; BENCH_PR4.json remains its
# baseline of record.
#
# Usage: scripts/bench_pr7.sh [benchtime]   (default 2x, matching the
#                                            BENCH_PR4.json recording)
# Env:   BENCH_COUNT  runs per benchmark; the min is recorded (default 3,
#                     stripping shared-machine noise like the CI gate does)
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

BENCHTIME="${1:-2x}"
export BENCH_COUNT="${BENCH_COUNT:-3}"
OUT="BENCH_PR7.json"

RAW="$(run_benchmarks_isolated "$BENCHTIME" \
	'BenchmarkRun$/^n=65536$' 'BenchmarkRun$/^n=1048576$' \
	'BenchmarkRunStaggered$/^n=65536$' 'BenchmarkRunStaggered$/^n=1048576$' \
	'BenchmarkRunParallel$/^n=65536$' 'BenchmarkRunParallel$/^n=1048576$' \
	'BenchmarkRunParallelStaggered$/^n=65536$' 'BenchmarkRunParallelStaggered$/^n=1048576$' \
	'BenchmarkLuby$/^n=65536$' 'BenchmarkLuby$/^n=1048576$' \
	'BenchmarkLubyPacked$/^n=65536$' 'BenchmarkLubyPacked$/^n=1048576$' \
	'BenchmarkFloodMinBit$/^n=65536$' 'BenchmarkFloodMinBit$/^n=1048576$' |
	min_over_runs)"

# The packed rows' baselines are this run's own unpacked rows, renamed: the
# ≥25% acceptance claim is a same-runner measurement, not a cross-machine one.
LUBY_BASE="$(printf '%s\n' "$RAW" | awk '
	/^BenchmarkLuby\// {
		name = $1
		sub(/-[0-9]+$/, "", name)
		sub(/^BenchmarkLuby\//, "BenchmarkLubyPacked/", name)
		ns = allocs = bytes = ""
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op")     ns     = $(i-1)
			if ($i == "allocs/op") allocs = $(i-1)
			if ($i == "B/op")      bytes  = $(i-1)
		}
		if (ns != "") print name, ns, allocs, bytes
	}')"

BASELINES="$(baselines_from_json BENCH_PR4.json)
$LUBY_BASE"

printf '%s\n' "$RAW" |
	bench_to_json "bit-packed message planes; LubyPacked baselines = this run's unpacked BenchmarkLuby rows, engine baselines = BENCH_PR4.json; min of $BENCH_COUNT runs" "$BENCHTIME" "$BASELINES" > "$OUT"

echo "wrote $OUT"
