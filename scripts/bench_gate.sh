#!/usr/bin/env bash
# bench_gate.sh — CI benchmark-regression gate.
#
# Reruns the engine and packed-bit-plane benchmarks (the BenchmarkLuby /
# BenchmarkLubyPacked pair keeps both sides of the packed-vs-unpacked
# comparison honest, and BenchmarkLubyPackedFile holds the mmap-backed
# on-disk graph path to its recorded cost) and compares ns/op and allocs/op
# per benchmark against
# a committed BENCH_PR*.json baseline, failing (exit 1)
# when either metric regresses by more than the threshold. Benchmarks
# without a row in the baseline (newly added ones) are recorded but not
# gated. The fresh run is always written to BENCH_FRESH.json so CI can
# upload it as an artifact for trend inspection.
#
# allocs/op is machine-independent and gates exactly. ns/op compares a fresh
# run against numbers recorded on whatever machine produced the baseline
# JSON, so a host much slower than the recording machine can trip it
# spuriously even with min-of-BENCH_COUNT noise stripping — raise
# BENCH_GATE_THRESHOLD_PCT (or re-record the baseline) when moving the gate
# to a slower runner class.
#
# Usage: scripts/bench_gate.sh [--baseline baseline.json] [--benchtime 1x]
#        scripts/bench_gate.sh [baseline.json] [benchtime]
#   --baseline baseline.json  committed BENCH_PR*.json to gate against
#                             (default BENCH_PR10.json — bump this when a PR
#                             records a new baseline)
#   --benchtime 1x            go test -benchtime value; each size runs
#                             BENCH_COUNT times and the gate compares the
#                             min, which strips shared-machine noise
# Env:
#   BENCH_GATE_THRESHOLD_PCT  allowed regression per metric (default 15)
#   BENCH_COUNT               runs per benchmark to take the min of (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

BASELINE="BENCH_PR10.json"
BENCHTIME="1x"
positional=0
while [ $# -gt 0 ]; do
	case "$1" in
	--baseline)
		BASELINE="${2:?bench_gate: --baseline requires a value}"
		shift 2
		;;
	--benchtime)
		BENCHTIME="${2:?bench_gate: --benchtime requires a value}"
		shift 2
		;;
	-h | --help)
		sed -n '2,/^set -euo/p' "$0" | sed '$d' | sed 's/^# \{0,1\}//'
		exit 0
		;;
	--*)
		echo "bench_gate: unknown option $1 (see --help)" >&2
		exit 2
		;;
	*)
		# Positional compatibility: baseline first, then benchtime.
		if [ "$positional" -eq 0 ]; then BASELINE="$1"; else BENCHTIME="$1"; fi
		positional=$((positional + 1))
		shift
		;;
	esac
done
THRESHOLD="${BENCH_GATE_THRESHOLD_PCT:-15}"
export BENCH_COUNT="${BENCH_COUNT:-3}"
OUT="BENCH_FRESH.json"

if [ ! -f "$BASELINE" ]; then
	echo "bench_gate: baseline $BASELINE not found" >&2
	exit 2
fi

raw=$(run_benchmarks_isolated "$BENCHTIME" \
	'BenchmarkRun$/^n=65536$' 'BenchmarkRun$/^n=1048576$' \
	'BenchmarkRunStaggered$/^n=65536$' 'BenchmarkRunStaggered$/^n=1048576$' \
	'BenchmarkRunParallel$/^n=65536$' 'BenchmarkRunParallel$/^n=1048576$' \
	'BenchmarkRunParallelStaggered$/^n=65536$' 'BenchmarkRunParallelStaggered$/^n=1048576$' \
	'BenchmarkLuby$/^n=65536$' 'BenchmarkLuby$/^n=1048576$' \
	'BenchmarkLubyPacked$/^n=65536$' 'BenchmarkLubyPacked$/^n=1048576$' \
	'BenchmarkLubyPackedFile$/^n=65536$' 'BenchmarkLubyPackedFile$/^n=1048576$' \
	'BenchmarkRunParallelLubyPacked$/^n=65536$' 'BenchmarkRunParallelLubyPacked$/^n=1048576$' | min_over_runs)

printf '%s\n' "$raw" |
	bench_to_json "bench-gate run vs $BASELINE" "$BENCHTIME" "$(baselines_from_json "$BASELINE")" > "$OUT"
echo "wrote $OUT"

CORES=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)

printf '%s\n' "$raw" | awk -v thr="$THRESHOLD" -v cores="$CORES" -v baselines="$(baselines_from_json "$BASELINE")" '
BEGIN {
	nb = split(baselines, lines, "\n")
	for (i = 1; i <= nb; i++) {
		split(lines[i], f, " ")
		if (f[1] != "") { bns[f[1]] = f[2]; ball[f[1]] = f[3] }
	}
	fail = 0
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")     ns     = $(i-1)
		if ($i == "allocs/op") allocs = $(i-1)
	}
	if (ns == "") next
	if (!(name in bns)) {
		printf "%-55s (no baseline; not gated)\n", name
		next
	}
	if (name ~ /\/workers=1$/) {
		# A one-worker pool dispatches to the sequential engine, so these
		# rows duplicate BenchmarkRun, which is already gated; they are
		# recorded in the fresh JSON but not compared.
		printf "%-55s (duplicates sequential path; not gated)\n", name
		next
	}
	dns = (ns / bns[name] - 1) * 100
	dal = (allocs / ball[name] - 1) * 100
	# Wall clock of a K-worker benchmark only means something on a host
	# that can run K workers in parallel; on smaller hosts barrier
	# scheduling noise dominates, so gate just the allocations there.
	gateNS = 1
	if (match(name, /workers=[0-9]+$/) && substr(name, RSTART + 8) + 0 > cores + 0) gateNS = 0
	status = "ok"
	if (!gateNS) status = "ok (ns not gated: workers > cores)"
	if ((gateNS && dns > thr) || dal > thr) { status = "REGRESSION"; fail = 1 }
	printf "%-55s ns/op %+8.1f%%  allocs/op %+8.1f%%  %s\n", name, dns, dal, status
}
END {
	if (fail) exit 1
	print "bench_gate: within threshold"
}
' || { echo "bench_gate: FAILED (threshold ${THRESHOLD}%, baseline $BASELINE)" >&2; exit 1; }
