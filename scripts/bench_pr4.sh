#!/usr/bin/env bash
# bench_pr4.sh — record the zero-alloc messaging + adaptive engine trajectory.
#
# Emits BENCH_PR4.json at the repo root. Three stories in one document:
#
#   * BenchmarkENDecomp rows measure the *algorithm-program* migration: the
#     Elkin–Neiman node program used to heap-allocate an outbox and decode
#     slices for every message, so its allocs/op scaled with message count.
#     The baseline rows were recorded at the pre-migration commit 128a373
#     with the identical benchmark (GNP deg 6, RadiusCap 8, -benchtime 1x on
#     the same machine class).
#   * BenchmarkRun / BenchmarkRunStaggered / BenchmarkRunParallel rows carry
#     the committed BENCH_PR3.json baselines. Their allocs/op drop reflects
#     the slab-factory construction idiom these benchmarks now demonstrate
#     (one program slab instead of n per-node allocations — the last
#     n-proportional allocation class); their ns/op must NOT regress, which
#     is what gates the adaptive-delivery and re-sharding engine changes on
#     the dense all-active rows.
#   * BenchmarkRunParallelStaggered rows are new (no baseline): the
#     late-round-dominated workload on the worker pool, i.e. the dynamic
#     re-sharding path, recorded to seed the next PR's comparison.
#
# Usage: scripts/bench_pr4.sh [benchtime]   (default 2x, matching the
#                                            BENCH_PR3.json recording so the
#                                            first-iteration cold start is
#                                            amortized identically; the 2^20
#                                            EN row runs ~1 min per op)
# Env:   BENCH_COUNT  runs per benchmark; the min is recorded (default 3,
#                     stripping shared-machine noise like the CI gate does)
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

BENCHTIME="${1:-2x}"
export BENCH_COUNT="${BENCH_COUNT:-3}"
OUT="BENCH_PR4.json"

# Pre-migration Elkin–Neiman rows (commit 128a373): "name ns allocs bytes".
PRE_MIGRATION_EN="BenchmarkENDecomp/n=65536 10140726498 82783280 2895976376
BenchmarkENDecomp/n=1048576 219842720828 1351572607 46646308200"

BASELINES="$(baselines_from_json BENCH_PR3.json)
$PRE_MIGRATION_EN"

run_benchmarks_isolated "$BENCHTIME" \
	'BenchmarkRun$/^n=65536$' 'BenchmarkRun$/^n=1048576$' \
	'BenchmarkRunStaggered$/^n=65536$' 'BenchmarkRunStaggered$/^n=1048576$' \
	'BenchmarkRunParallel$/^n=65536$' 'BenchmarkRunParallel$/^n=1048576$' \
	'BenchmarkRunParallelStaggered$/^n=65536$' 'BenchmarkRunParallelStaggered$/^n=1048576$' \
	'BenchmarkENDecomp$/^n=65536$' 'BenchmarkENDecomp$/^n=1048576$' |
	min_over_runs |
	bench_to_json "zero-alloc programs + adaptive delivery + re-sharding; EN baseline = pre-migration commit 128a373, engine baselines = BENCH_PR3.json; min of $BENCH_COUNT runs" "$BENCHTIME" "$BASELINES" > "$OUT"

echo "wrote $OUT"
