#!/usr/bin/env bash
# experiments_smoke.sh — CI smoke test for the experiments pipeline.
#
# Exercises the three guarantees the pipeline makes:
#   1. A -quick sweep of a fast experiment subset completes and emits
#      records.json / records.csv next to the rendered tables.
#   2. The emission passes schema validation (-validate) and the CSV has
#      the fixed long-format header.
#   3. The checkpoint/resume round-trip: a run stopped early via -limit
#      (the controlled-interruption hook; torn-journal kills are covered by
#      the package's Go tests) is resumed from its checkpoint and must
#      reproduce the uninterrupted run's records exactly (-diff compares
#      stable fields, ignoring wall-clock metadata).
#
# Usage: scripts/experiments_smoke.sh [outdir]
# Env:   EXPERIMENTS_SMOKE_SUBSET  comma-separated IDs (default E3,E5,E11,E12,E13)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-experiments-smoke-out}"
SUBSET="${EXPERIMENTS_SMOKE_SUBSET:-E3,E5,E11,E12,E13}"
rm -rf "$OUT"
mkdir -p "$OUT"

echo "== full quick run ($SUBSET)"
go run ./cmd/experiments -quick -experiment "$SUBSET" -out "$OUT/full" -md "$OUT/EXPERIMENTS.quick.md"

echo "== schema validation"
go run ./cmd/experiments -validate "$OUT/full"
head -1 "$OUT/full/records.csv" | grep -q '^experiment,unit,n,trial,ok,metric,value$'
[ "$(wc -l <"$OUT/full/records.csv")" -gt 1 ]

echo "== checkpoint/resume round-trip (write, stop, resume, compare)"
go run ./cmd/experiments -quick -experiment "$SUBSET" -out "$OUT/resume" -limit 3
if [ -f "$OUT/resume/records.json" ]; then
	echo "experiments_smoke: interrupted run emitted records.json" >&2
	exit 1
fi
go run ./cmd/experiments -quick -experiment "$SUBSET" -out "$OUT/resume"
go run ./cmd/experiments -diff "$OUT/full/records.json" "$OUT/resume/records.json"

echo "== faulted-sweep checkpoint/resume (E12 interrupted mid-sweep)"
go run ./cmd/experiments -quick -experiment E12 -out "$OUT/e12full"
go run ./cmd/experiments -quick -experiment E12 -out "$OUT/e12resume" -limit 7
go run ./cmd/experiments -quick -experiment E12 -out "$OUT/e12resume"
go run ./cmd/experiments -diff "$OUT/e12full/records.json" "$OUT/e12resume/records.json"

echo "experiments smoke: OK (records in $OUT/full)"
