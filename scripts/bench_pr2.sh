#!/usr/bin/env bash
# bench_pr2.sh — record the engine-scaling perf trajectory.
#
# Runs BenchmarkRun and BenchmarkRunParallel (n=65536 and n=1048576) with
# -benchmem and emits BENCH_PR2.json at the repo root: ns/op, B/op and
# allocs/op per benchmark, next to the frozen pre-CSR baseline (commit
# e48e40f, measured on the same class of machine) and the allocs/op
# reduction the CSR + flat-message-plane refactor bought.
#
# Usage: scripts/bench_pr2.sh [benchtime]   (default 2x)
set -euo pipefail
cd "$(dirname "$0")/.."
. scripts/bench_lib.sh

BENCHTIME="${1:-2x}"
OUT="BENCH_PR2.json"

# Pre-refactor baseline: commit e48e40f ([][]int adjacency, per-node
# inbox/next slices, revPort rebuilt per run), -benchtime 2x.
PRE_CSR_BASELINE="BenchmarkRun/n=65536 430152058 1966346 128189856
BenchmarkRun/n=1048576 15793820320 31461386 2055884016
BenchmarkRunParallel/n=65536/workers=2 595727598 1966479 217318456
BenchmarkRunParallel/n=1048576/workers=2 15546930156 31461567 3410250632"

run_benchmarks_isolated "$BENCHTIME" \
	'BenchmarkRun$/^n=65536$' 'BenchmarkRun$/^n=1048576$' \
	'BenchmarkRunParallel$/^n=65536$' 'BenchmarkRunParallel$/^n=1048576$' |
	bench_to_json "engine-scaling benchmarks; baseline = pre-CSR commit e48e40f" "$BENCHTIME" "$PRE_CSR_BASELINE" > "$OUT"

echo "wrote $OUT"
