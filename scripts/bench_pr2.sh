#!/usr/bin/env bash
# bench_pr2.sh — record the engine-scaling perf trajectory.
#
# Runs BenchmarkRun and BenchmarkRunParallel (n=65536 and n=1048576) with
# -benchmem and emits BENCH_PR2.json at the repo root: ns/op, B/op and
# allocs/op per benchmark, next to the frozen pre-CSR baseline (commit
# e48e40f, measured on the same class of machine) and the allocs/op
# reduction the CSR + flat-message-plane refactor bought.
#
# Usage: scripts/bench_pr2.sh [benchtime]   (default 2x)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2x}"
OUT="BENCH_PR2.json"

raw=$(go test -run NONE -bench 'BenchmarkRun(Parallel)?$' -benchtime "$BENCHTIME" -benchmem .)

echo "$raw" | awk '
BEGIN {
    # Pre-refactor baseline: commit e48e40f ([][]int adjacency, per-node
    # inbox/next slices, revPort rebuilt per run), -benchtime 2x.
    base["BenchmarkRun/n=65536"]                  = "430152058 1966346 128189856"
    base["BenchmarkRun/n=1048576"]                = "15793820320 31461386 2055884016"
    base["BenchmarkRunParallel/n=65536/workers=2"]   = "595727598 1966479 217318456"
    base["BenchmarkRunParallel/n=1048576/workers=2"] = "15546930156 31461567 3410250632"
    printf "{\n  \"note\": \"engine-scaling benchmarks; baseline = pre-CSR commit e48e40f\",\n"
    printf "  \"benchtime\": \"'"$BENCHTIME"'\",\n  \"benchmarks\": [\n"
    first = 1
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip -GOMAXPROCS suffix
    ns = allocs = bytes = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns     = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
        if ($i == "B/op")      bytes  = $(i-1)
    }
    if (ns == "") next
    if (!first) printf ",\n"
    first = 0
    printf "    {\n      \"name\": \"%s\",\n      \"ns_per_op\": %s,\n      \"bytes_per_op\": %s,\n      \"allocs_per_op\": %s", name, ns, bytes, allocs
    if (name in base) {
        split(base[name], b, " ")
        printf ",\n      \"baseline_ns_per_op\": %s,\n      \"baseline_allocs_per_op\": %s,\n      \"baseline_bytes_per_op\": %s", b[1], b[2], b[3]
        printf ",\n      \"allocs_reduction_pct\": %.1f", (1 - allocs / b[2]) * 100
        printf ",\n      \"ns_reduction_pct\": %.1f", (1 - ns / b[1]) * 100
    }
    printf "\n    }"
}
END { printf "\n  ]\n}\n" }
' > "$OUT"

echo "wrote $OUT"
