package randlocal_test

// Godoc examples for the public API. Every example is fully deterministic
// (all randomness flows from explicit seeds), so the locked outputs double
// as regression tests for the algorithms' exact behavior.

import (
	"fmt"

	"randlocal"
)

// Example runs the paper's baseline: the Elkin–Neiman network
// decomposition on a ring, validated and with round accounting.
func Example() {
	g := randlocal.Ring(64)
	d, res, err := randlocal.ElkinNeiman(g, randlocal.NewFullRandomness(7), nil, randlocal.ENConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("valid=%v colors=%d rounds>0=%v\n",
		d.Validate(g, 0, 0) == nil, d.NumColors(), res.Rounds > 0)
	// Output: valid=true colors=9 rounds>0=true
}

// ExampleLuby shows the classic randomized MIS on a clique: exactly one
// node can win.
func ExampleLuby() {
	g := randlocal.Complete(8)
	in, _, err := randlocal.Luby(g, randlocal.NewFullRandomness(1), nil, randlocal.LubyConfig{})
	if err != nil {
		panic(err)
	}
	size := 0
	for _, b := range in {
		if b {
			size++
		}
	}
	fmt.Println("MIS size on K8:", size)
	// Output: MIS size on K8: 1
}

// ExampleSolveSplittingCondExp derandomizes the splitting problem with the
// method of conditional expectations: zero random bits, always correct
// when the degree condition holds.
func ExampleSolveSplittingCondExp() {
	inst := randlocal.RandomSplittingInstance(10, 50, 12, randlocal.NewRNG(3))
	colors, err := randlocal.SolveSplittingCondExp(inst)
	fmt.Println("solved:", err == nil && inst.Check(colors))
	// Output: solved: true
}

// ExampleRulingSet computes a deterministic (3, 3·log n)-ruling set of a
// path: pairwise distance at least 3, everyone dominated.
func ExampleRulingSet() {
	g := randlocal.Path(32)
	rs, err := randlocal.RulingSet(g, nil, 3, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("members:", len(rs.Set), "alpha:", rs.Alpha)
	// Output: members: 8 alpha: 3
}

// ExampleDerandomizedMIS runs the full zero-randomness pipeline: network
// decomposition of G³ + compiled greedy SLOCAL MIS.
func ExampleDerandomizedMIS() {
	g := randlocal.Ring(30)
	res, err := randlocal.DerandomizedMIS(g)
	if err != nil {
		panic(err)
	}
	fmt.Println("valid:", randlocal.CheckMIS(g, res.Outputs) == nil)
	// Output: valid: true
}
