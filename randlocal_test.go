package randlocal

// Integration tests at the public-API level: each test exercises one
// end-to-end story a downstream user would script, across the facade only.

import (
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	g := GNPConnected(256, 4.0/256, NewRNG(1))
	src := NewFullRandomness(7)
	d, res, err := ElkinNeiman(g, src, nil, ENConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(g, 0, 0); err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 || src.Ledger().TrueBits() == 0 {
		t.Error("accounting missing")
	}
	st := d.StatsOf(g)
	ok, err := CheckDecompositionDistrib(g, d, 2*st.MaxDiameter+2)
	if err != nil || !ok {
		t.Fatalf("distributed checker: ok=%v err=%v", ok, err)
	}
}

func TestFacadeSparseRandomnessFlow(t *testing.T) {
	g := Ring(1200)
	holders := GreedyDominatingSet(g, 2)
	src, err := NewSparseRandomness(holders, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LowRand(g, src, holders, LowRandConfig{H: 2, BitsPerCluster: 64, RulingAlphaFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Decomposition.Validate(g, 0, 0); err != nil {
		t.Fatal(err)
	}
	if src.Ledger().TrueBits() != int64(len(holders)) {
		t.Errorf("true bits %d != holders %d", src.Ledger().TrueBits(), len(holders))
	}
}

func TestFacadeSharedSeedFlow(t *testing.T) {
	g := Grid(14, 14)
	shared := NewSharedRandomness(250_000, NewRNG(5))
	res, err := SharedRand(g, shared, SharedRandConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Decomposition.Validate(g, 0, 0); err != nil {
		t.Fatal(err)
	}
	if res.SeedBitsUsed <= 0 {
		t.Error("seed accounting missing")
	}
}

func TestFacadeSymmetryBreaking(t *testing.T) {
	g := GNPConnected(200, 5.0/200, NewRNG(2))
	in, _, err := Luby(g, NewFullRandomness(1), nil, LubyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMIS(g, in); err != nil {
		t.Fatal(err)
	}
	colors, _, err := RandomizedColoring(g, NewFullRandomness(2), nil, ColoringConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckColoring(g, colors, g.MaxDegree()+1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDerandomizationPipeline(t *testing.T) {
	g := GNPConnected(150, 4.0/150, NewRNG(3))
	res, err := DerandomizedMIS(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMIS(g, res.Outputs); err != nil {
		t.Fatal(err)
	}
	cres, err := DerandomizedColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckColoring(g, cres.Outputs, g.MaxDegree()+1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSplittingAndCFMC(t *testing.T) {
	inst := RandomSplittingInstance(40, 200, 30, NewRNG(4))
	gen, err := NewEpsBias(24, NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	colors := SolveSplittingEpsBias(inst, gen)
	if !inst.Check(colors) {
		t.Skip("rare ε-bias failure on this seed; covered statistically in internal tests")
	}
	if err := CheckSplitting(inst.AdjU, colors); err != nil {
		t.Fatal(err)
	}

	h := &Hypergraph{N: 100, Edges: [][]int{{1, 2, 3}, {4, 5}, {6}}}
	sets, _, err := SolveCFMCDeterministic(h, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckConflictFree(h.Edges, sets); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeShatteringFlow(t *testing.T) {
	g := GNPConnected(300, 3.0/300, NewRNG(6))
	res, err := Shattering(g, NewFullRandomness(9), ShatteringConfig{ENPhases: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Decomposition.ValidateWeak(g, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCustomNodeProgram(t *testing.T) {
	// A downstream user writes their own NodeProgram against the facade.
	g := Ring(16)
	cfg := SimConfig{Graph: g, MaxMessageBits: CongestBits(16)}
	res, err := Run(cfg, func(int) NodeProgram[int] { return &hopCounter{limit: 4} })
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range res.Outputs {
		if out != 4 {
			t.Errorf("hop counter output %d", out)
		}
	}
	// And the concurrent engine agrees.
	cres, err := RunConcurrent(cfg, func(int) NodeProgram[int] { return &hopCounter{limit: 4} })
	if err != nil {
		t.Fatal(err)
	}
	for v := range cres.Outputs {
		if cres.Outputs[v] != res.Outputs[v] {
			t.Fatal("engines disagree")
		}
	}
}

// hopCounter counts rounds up to a limit — a minimal NodeProgram, written
// the zero-alloc way: the outbox comes from the engine-owned Outbox scratch
// (via Broadcast) and the payload from the per-round arena (via ctx.Uints),
// so its steady-state rounds allocate nothing.
type hopCounter struct {
	ctx   *NodeCtx
	limit int
	count int
}

func (h *hopCounter) Init(ctx *NodeCtx) { h.ctx = ctx }
func (h *hopCounter) Round(r int, inbox []Message) ([]Message, bool) {
	h.count++
	if h.count >= h.limit {
		return nil, true
	}
	return h.ctx.Broadcast(h.ctx.Uints(1)), false
}
func (h *hopCounter) Output() int { return h.count }

func TestFacadeRulingSet(t *testing.T) {
	g := GNPConnected(100, 0.05, NewRNG(7))
	rs, err := RulingSet(g, nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	if err := VerifyRulingSet(g, all, rs, rs.Alpha*rs.Levels); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSeedSearch(t *testing.T) {
	p := NeighborhoodSplitting(3)
	res, err := SeedSearch(p, AllGraphs(3), func(g *Graph) []uint64 {
		return SequentialIDs(g.N())
	}, 512)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tried != 512 {
		t.Errorf("tried %d", res.Tried)
	}
}

func TestFacadeSLOCAL(t *testing.T) {
	g := GNPConnected(80, 0.07, NewRNG(8))
	out := RunSLOCAL(g, SLOCALGreedyMIS(), nil)
	if err := CheckMIS(g, out); err != nil {
		t.Fatal(err)
	}
	power := PowerGraph(g, 3)
	d := DeterministicDecomposition(power)
	res, err := CompileSLOCAL(g, SLOCALGreedyMIS(), d)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMIS(g, res.Outputs); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeParallelScheduler(t *testing.T) {
	// An end-to-end Luby run must produce the identical MIS and accounting
	// on all three engines: the wrappers dispatch through Execute, so the
	// package-wide default switches every internal simulation at once.
	g := PowerLaw(400, 3, NewRNG(17))
	run := func() ([]bool, *SimResult[LubyOutput]) {
		in, res, err := Luby(g, NewFullRandomness(23), nil, LubyConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckMIS(g, in); err != nil {
			t.Fatal(err)
		}
		return in, res
	}
	wantIn, wantRes := run()
	defer SetDefaultScheduler(SchedulerSequential, 0)
	for _, sched := range []Scheduler{SchedulerConcurrent, SchedulerParallel} {
		SetDefaultScheduler(sched, 0)
		gotIn, gotRes := run()
		for v := range wantIn {
			if gotIn[v] != wantIn[v] {
				t.Fatalf("%v: MIS differs at node %d", sched, v)
			}
		}
		if gotRes.Rounds != wantRes.Rounds || gotRes.Messages != wantRes.Messages || gotRes.BitsTotal != wantRes.BitsTotal {
			t.Errorf("%v: accounting (%d,%d,%d) differs from sequential (%d,%d,%d)",
				sched, gotRes.Rounds, gotRes.Messages, gotRes.BitsTotal,
				wantRes.Rounds, wantRes.Messages, wantRes.BitsTotal)
		}
	}

	// Direct RunParallel through the facade with an explicit worker count.
	cfg := SimConfig{Graph: g, Source: NewFullRandomness(5), MaxMessageBits: CongestBits(g.N())}
	factory := func(int) NodeProgram[LubyOutput] { return NewLubyProgram(LubyConfig{}) }
	seqRes, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := RunParallel(cfg, factory, 4)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.Rounds != seqRes.Rounds || parRes.Messages != seqRes.Messages {
		t.Errorf("RunParallel accounting (%d,%d) differs from Run (%d,%d)",
			parRes.Rounds, parRes.Messages, seqRes.Rounds, seqRes.Messages)
	}
}
