// Package orientation implements sinkless orientation — the problem behind
// the exponential randomized-vs-deterministic separation the paper's
// Section 1.1 recounts ([BFH+16] lower bound, [GS17] Θ(log log n)
// randomized vs Θ(log n) deterministic on constant-degree graphs): orient
// every edge so that no node of degree ≥ minDegree has all incident edges
// pointing inward (no "sink").
//
// The randomized algorithm here is the natural retry process on graphs of
// minimum degree ≥ 3: every edge starts with a fair-coin orientation, and
// in each round every sink re-randomizes its incident edges (the
// lower-endpoint rule arbitrates shared edges). A sink survives a round
// with probability at most 2^{−deg} plus neighbor interference, so the
// process drains geometrically; the experiments measure the round count's
// O(log n)-ish decay on tori. The package also provides the local checker
// (sinklessness is the textbook locally checkable labeling).
package orientation

import (
	"fmt"

	"randlocal/internal/graph"
	"randlocal/internal/randomness"
)

// Orientation assigns each edge a direction: Toward[u][i] = true means the
// i-th incident edge of u (port i) points *toward* u. The two endpoint
// views are kept consistent by construction.
type Orientation struct {
	g      *graph.Graph
	Toward [][]bool
}

// New returns the all-outward orientation holder for g.
func New(g *graph.Graph) *Orientation {
	o := &Orientation{g: g, Toward: make([][]bool, g.N())}
	for v := 0; v < g.N(); v++ {
		o.Toward[v] = make([]bool, g.Degree(v))
	}
	return o
}

// Set orients edge {u, w} toward w (i.e. u→w), updating both views.
func (o *Orientation) Set(u, w int, towardW bool) {
	pu := o.g.PortOf(u, w)
	pw := o.g.PortOf(w, u)
	if pu < 0 || pw < 0 {
		panic(fmt.Sprintf("orientation: {%d,%d} is not an edge", u, w))
	}
	o.Toward[u][pu] = !towardW
	o.Toward[w][pw] = towardW
}

// IsSink reports whether every incident edge of v points toward v.
func (o *Orientation) IsSink(v int) bool {
	if o.g.Degree(v) == 0 {
		return false
	}
	for _, in := range o.Toward[v] {
		if !in {
			return false
		}
	}
	return true
}

// Check validates sinklessness for all nodes of degree >= minDegree and
// the internal consistency of the two endpoint views.
func (o *Orientation) Check(minDegree int) error {
	var err error
	o.g.Edges(func(u, w int) {
		if err != nil {
			return
		}
		pu, pw := o.g.PortOf(u, w), o.g.PortOf(w, u)
		if o.Toward[u][pu] == o.Toward[w][pw] {
			err = fmt.Errorf("orientation: edge {%d,%d} views inconsistent", u, w)
		}
	})
	if err != nil {
		return err
	}
	for v := 0; v < o.g.N(); v++ {
		if o.g.Degree(v) >= minDegree && o.IsSink(v) {
			return fmt.Errorf("orientation: node %d (degree %d) is a sink", v, o.g.Degree(v))
		}
	}
	return nil
}

// Result carries the algorithm's output and accounting.
type Result struct {
	Orientation *Orientation
	Rounds      int
	// Retries counts total sink re-randomization events.
	Retries int
}

// Sinkless runs the randomized retry process: round 0 randomizes every
// edge (the lower endpoint flips the coin); in each later round, every
// current sink redraws its incident edges. maxRounds 0 means 64·⌈log₂ n⌉.
// It requires minimum degree >= 3 among constrained nodes for geometric
// convergence and errors out if sinks survive the round budget.
func Sinkless(g *graph.Graph, src randomness.Source, maxRounds int) (*Result, error) {
	n := g.N()
	if maxRounds == 0 {
		lg := 1
		for 1<<lg < n {
			lg++
		}
		maxRounds = 64 * lg
	}
	o := New(g)
	streams := make([]*randomness.Stream, n)
	for v := 0; v < n; v++ {
		if src.Has(v) {
			streams[v] = src.Stream(v)
		}
	}
	// Round 0: the lower endpoint of each edge orients it randomly.
	g.Edges(func(u, w int) {
		o.Set(u, w, streams[u].Bit() == 1)
	})
	res := &Result{Orientation: o}
	for r := 1; r <= maxRounds; r++ {
		var sinks []int
		for v := 0; v < n; v++ {
			if g.Degree(v) >= 3 && o.IsSink(v) {
				sinks = append(sinks, v)
			}
		}
		if len(sinks) == 0 {
			res.Rounds = r - 1
			return res, nil
		}
		// Each sink redraws its incident edges. Two sinks are never
		// adjacent (a shared edge would point toward both, contradicting
		// antisymmetry), so the redraw sets are edge-disjoint and the
		// sequential loop below equals the parallel round.
		for _, v := range sinks {
			res.Retries++
			for _, w := range g.Neighbors(v) {
				o.Set(v, int(w), streams[v].Bit() == 1)
			}
		}
	}
	return nil, fmt.Errorf("orientation: sinks survived %d rounds", maxRounds)
}
