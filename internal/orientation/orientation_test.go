package orientation

import (
	"math"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

func TestSetAndViews(t *testing.T) {
	g := graph.Path(3)
	o := New(g)
	o.Set(0, 1, true) // 0 -> 1
	if o.Toward[0][g.PortOf(0, 1)] || !o.Toward[1][g.PortOf(1, 0)] {
		t.Error("views inconsistent after Set")
	}
	o.Set(0, 1, false) // 1 -> 0
	if !o.Toward[0][g.PortOf(0, 1)] || o.Toward[1][g.PortOf(1, 0)] {
		t.Error("views inconsistent after flip")
	}
}

func TestSetPanicsOnNonEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set on non-edge did not panic")
		}
	}()
	New(graph.Path(3)).Set(0, 2, true)
}

func TestIsSink(t *testing.T) {
	g := graph.Star(4) // center 0, leaves 1..3
	o := New(g)
	for leaf := 1; leaf <= 3; leaf++ {
		o.Set(leaf, 0, true) // all point to the center
	}
	if !o.IsSink(0) {
		t.Error("center with all-inward edges should be a sink")
	}
	if o.IsSink(1) {
		t.Error("leaf with outward edge is not a sink")
	}
	// Isolated nodes are never sinks.
	iso := New(graph.NewBuilder(1).Graph())
	if iso.IsSink(0) {
		t.Error("isolated node counted as sink")
	}
}

func TestCheckCatchesSink(t *testing.T) {
	g := graph.Complete(4) // 3-regular
	o := New(g)
	for v := 1; v < 4; v++ {
		o.Set(v, 0, true)
	}
	o.Set(1, 2, true)
	o.Set(1, 3, true)
	o.Set(2, 3, true)
	if err := o.Check(3); err == nil {
		t.Error("node 0 is a sink; Check accepted")
	}
	if err := o.Check(4); err != nil {
		t.Errorf("no node has degree >= 4; Check should pass: %v", err)
	}
}

func TestSinklessOnTorus(t *testing.T) {
	// 4-regular torus: the constant-degree family of the separation
	// results.
	for _, side := range []int{8, 16, 24} {
		g := graph.Torus(side, side)
		src := randomness.NewFull(uint64(side))
		res, err := Sinkless(g, src, 0)
		if err != nil {
			t.Fatalf("side %d: %v", side, err)
		}
		if err := res.Orientation.Check(3); err != nil {
			t.Fatalf("side %d: %v", side, err)
		}
		if float64(res.Rounds) > 8*math.Log2(float64(g.N()))+8 {
			t.Errorf("side %d: %d rounds, beyond the O(log n) envelope", side, res.Rounds)
		}
	}
}

func TestSinklessOnRandomRegular(t *testing.T) {
	rng := prng.New(7)
	for _, d := range []int{3, 4, 6} {
		g := graph.RandomRegular(120, d, rng)
		res, err := Sinkless(g, randomness.NewFull(uint64(d)*17), 0)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if err := res.Orientation.Check(3); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestSinklessLowDegreeUnconstrained(t *testing.T) {
	// Paths and rings have max degree 2 < 3: nothing is constrained, the
	// initial random orientation is already fine.
	g := graph.Ring(10)
	res, err := Sinkless(g, randomness.NewFull(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 {
		t.Errorf("rounds = %d on an unconstrained graph", res.Rounds)
	}
}

func TestSinklessRandomnessAccounted(t *testing.T) {
	g := graph.Torus(10, 10)
	src := randomness.NewFull(4)
	res, err := Sinkless(g, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One bit per edge plus 4 per retry.
	wantMin := int64(g.M())
	got := src.Ledger().TrueBits()
	if got < wantMin || got > wantMin+int64(4*res.Retries) {
		t.Errorf("bits = %d, want within [%d, %d]", got, wantMin, wantMin+int64(4*res.Retries))
	}
}

func TestSinklessRoundBudgetError(t *testing.T) {
	// maxRounds = 1 on a dense K4: likely some sink survives round 1 for
	// some seed; find one such seed to exercise the error path.
	g := graph.Complete(4)
	for seed := uint64(0); seed < 200; seed++ {
		_, err := Sinkless(g, randomness.NewFull(seed), 1)
		if err != nil {
			return // error path exercised
		}
	}
	t.Skip("no seed kept a sink past round 1")
}
