package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"randlocal/internal/mis"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

func TestValidate(t *testing.T) {
	ok := RunRequest{Algo: "luby", N: 64, Seed: 1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if ok.Graph != "gnp" {
		t.Fatalf("Validate did not default the graph family: %q", ok.Graph)
	}
	bad := []RunRequest{
		{N: 64},                                  // missing algo
		{Algo: "nope", N: 64},                    // unknown algo
		{Algo: "luby", N: 0},                     // n
		{Algo: "luby", N: MaxN + 1},              // over cap
		{Algo: "luby", N: 64, Graph: "torus"},    // unknown family
		{Algo: "luby", N: 64, P: 1.5},            // p out of range
		{Algo: "luby", N: 64, Scheduler: "gpu"},  // bad scheduler
		{Algo: "luby", N: 64, Reshard: "always"}, // bad policy
		{Algo: "luby", N: 64, Adversary: AdversaryKnobs{Drop: -0.1}},
		{Algo: "luby", N: 64, Deg: -1},                    // negative deg
		{Algo: "luby", N: 3, Graph: "cliques"},            // RingOfCliques(0, 4) would panic
		{Algo: "luby", N: 4, Graph: "regular", Deg: 4},    // deg >= n
		{Algo: "luby", N: 64, Graph: "regular", Deg: 100}, // deg >= n
		{Algo: "luby", N: 5, Graph: "regular", Deg: 3},    // n*deg odd
		{Algo: "luby", N: 5, Graph: "regular"},            // default deg 3, n*deg odd
		{Algo: "luby", N: 64, Graph: "regular", Deg: -2},  // negative deg
	}
	for i, req := range bad {
		if err := req.Validate(); err == nil {
			t.Errorf("bad request %d accepted: %+v", i, req)
		}
	}
	// Feasible shapes of the guarded families still pass.
	for i, req := range []RunRequest{
		{Algo: "luby", N: 4, Seed: 1, Graph: "cliques"},
		{Algo: "luby", N: 64, Seed: 1, Graph: "regular"},
		{Algo: "luby", N: 64, Seed: 1, Graph: "regular", Deg: 4},
	} {
		if err := req.Validate(); err != nil {
			t.Errorf("feasible request %d rejected: %v", i, err)
		}
	}
}

// TestExecuteInfeasibleGraphs: the review's DoS repro and friends — requests
// whose generators would panic must come back as request errors, never reach
// the generator, and never kill the caller.
func TestExecuteInfeasibleGraphs(t *testing.T) {
	for _, req := range []RunRequest{
		{Algo: "luby", Graph: "cliques", N: 3, Seed: 1},
		{Algo: "luby", Graph: "regular", N: 5, Seed: 1},
		{Algo: "en", Graph: "regular", N: 8, Deg: 9, Seed: 1},
	} {
		out, err := Execute(req, sim.ExecOptions{})
		if err == nil {
			t.Errorf("infeasible request %+v executed: %+v", req, out)
		}
	}
}

// TestRunGuarded: a panicking run converts to a failed-run error instead of
// killing the pool worker (and with it the daemon).
func TestRunGuarded(t *testing.T) {
	out, err := runGuarded(func() (*RunOutcome, error) { panic("boom") })
	if out != nil || err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("runGuarded(panic) = %v, %v; want nil, panic error", out, err)
	}
	out, err = runGuarded(func() (*RunOutcome, error) { return &RunOutcome{Valid: true}, nil })
	if err != nil || out == nil || !out.Valid {
		t.Fatalf("runGuarded(ok) = %v, %v", out, err)
	}
}

// TestExecuteMatchesDirect pins the service's CLI-equivalence guarantee: a
// request executed through the service layer reports exactly what the same
// algorithm run directly (same graph construction, same seed) reports.
func TestExecuteMatchesDirect(t *testing.T) {
	const n, seed = 256, 7
	req := RunRequest{Algo: "luby", N: n, Seed: seed}
	out, err := Execute(req, sim.ExecOptions{Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Valid {
		t.Fatalf("fault-free run not valid: %+v", out)
	}
	if out.Telemetry == nil {
		t.Fatal("forced telemetry missing from outcome")
	}

	g, err := BuildGraph("gnp", n, 0, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	in, res, err := mis.Luby(g, randomness.NewFull(seed), nil, mis.LubyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	size := 0
	for _, b := range in {
		if b {
			size++
		}
	}
	if out.Rounds != res.Rounds || out.Messages != res.Messages || out.BitsTotal != res.BitsTotal {
		t.Errorf("service outcome diverged from direct run:\nservice rounds=%d messages=%d bits=%d\ndirect  rounds=%d messages=%d bits=%d",
			out.Rounds, out.Messages, out.BitsTotal, res.Rounds, res.Messages, res.BitsTotal)
	}
	if want := fmt.Sprintf("|MIS|=%d", size); !strings.Contains(out.Summary, want) {
		t.Errorf("summary %q missing %q", out.Summary, want)
	}
}

// TestExecuteFaultedDeterministic: a faulted request is deterministic across
// repeated executions — same verdict, same accounting, same injected-fault
// telemetry — and never surfaces as a request error.
func TestExecuteFaultedDeterministic(t *testing.T) {
	req := RunRequest{
		Algo: "en", N: 192, Seed: 11,
		Adversary: AdversaryKnobs{Drop: 0.1, Crash: 1, Stall: 1},
	}
	a, err := Execute(req, sim.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(req, sim.ExecOptions{Pool: sim.NewEnginePool()})
	if err != nil {
		t.Fatal(err)
	}
	if a.Valid != b.Valid || a.Reject != b.Reject || a.Rounds != b.Rounds ||
		a.Messages != b.Messages || a.BitsTotal != b.BitsTotal {
		t.Errorf("faulted run not deterministic:\ncold: %+v\nwarm: %+v", a, b)
	}
	if a.Telemetry == nil || len(a.Telemetry.Injected) == 0 {
		t.Errorf("faulted outcome missing injected-fault telemetry: %+v", a.Telemetry)
	}
	if !a.Valid && a.Reject == "" {
		t.Errorf("rejected outcome without a reason: %+v", a)
	}
}

func submit(t *testing.T, ts *httptest.Server, req RunRequest) string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func getView(t *testing.T, ts *httptest.Server, id string) runView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d for run %s", resp.StatusCode, id)
	}
	var v runView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitDone(t *testing.T, ts *httptest.Server, id string) runView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if v := getView(t, ts, id); v.Status == "done" || v.Status == "failed" {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s did not finish", id)
	return runView{}
}

func TestServerEndToEnd(t *testing.T) {
	srv := NewServer(Options{Jobs: 2, Backlog: 4, Pool: sim.NewEnginePool()})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := RunRequest{Algo: "luby", N: 300, Seed: 3}
	id := submit(t, ts, req)
	v := waitDone(t, ts, id)
	if v.Status != "done" || v.Outcome == nil || !v.Outcome.Valid {
		t.Fatalf("run did not complete validly: %+v", v)
	}
	if v.Outcome.Telemetry == nil {
		t.Error("daemon outcome missing telemetry summary")
	}

	// The daemon result equals a direct same-request execution.
	direct, err := Execute(req, sim.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Outcome.Rounds != direct.Rounds || v.Outcome.Messages != direct.Messages {
		t.Errorf("daemon outcome diverged from direct execution:\ndaemon: %+v\ndirect: %+v", v.Outcome, direct)
	}

	// Listing and health.
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Runs     []runView `json:"runs"`
		Draining bool      `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Runs) != 1 || list.Runs[0].ID != id || list.Draining {
		t.Errorf("listing wrong: %+v", list)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// TestServerStream: the SSE endpoint replays one progress event per round
// and terminates with a done event carrying the outcome — for subscribers
// arriving after completion too (the replay-log contract).
func TestServerStream(t *testing.T) {
	srv := NewServer(Options{Jobs: 1, Backlog: 1})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id := submit(t, ts, RunRequest{Algo: "luby", N: 400, Seed: 5})
	v := waitDone(t, ts, id) // subscribe after completion: pure replay

	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var progress []progressView
	var done *runView
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "progress":
				var p progressView
				if err := json.Unmarshal([]byte(data), &p); err != nil {
					t.Fatal(err)
				}
				progress = append(progress, p)
			case "done":
				var dv runView
				if err := json.Unmarshal([]byte(data), &dv); err != nil {
					t.Fatal(err)
				}
				done = &dv
			}
		}
		if done != nil {
			break
		}
	}
	if done == nil {
		t.Fatalf("stream ended without a done event (scan err %v)", sc.Err())
	}
	if len(progress) != v.Outcome.Rounds {
		t.Errorf("streamed %d progress events, want one per round (%d)", len(progress), v.Outcome.Rounds)
	}
	for i, p := range progress {
		if p.Round != i+1 {
			t.Fatalf("progress[%d].Round = %d, want %d", i, p.Round, i+1)
		}
	}
	if last := progress[len(progress)-1]; last.Messages != v.Outcome.Messages || last.Running != 0 {
		t.Errorf("final progress %+v does not close out the run %+v", last, v.Outcome)
	}
	if done.Outcome == nil || done.Outcome.Rounds != v.Outcome.Rounds {
		t.Errorf("done event outcome mismatch: %+v vs %+v", done.Outcome, v.Outcome)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	srv := NewServer(Options{Jobs: 1})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"algo":"warp","n":64,"seed":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown algo: status %d", code)
	}
	if code := post(`{"algo":"luby","n":64,"bogus":true}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d", code)
	}
	if code := post(`not json`); code != http.StatusBadRequest {
		t.Errorf("garbage body: status %d", code)
	}
	// The single-request-DoS repro: an infeasible graph shape must bounce
	// with 400, not panic a worker.
	if code := post(`{"algo":"luby","graph":"cliques","n":3,"seed":1}`); code != http.StatusBadRequest {
		t.Errorf("infeasible cliques request: status %d", code)
	}
	if code := post(`{"algo":"luby","graph":"regular","n":5,"seed":1}`); code != http.StatusBadRequest {
		t.Errorf("infeasible regular request: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/runs/r999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing run: status %d", resp.StatusCode)
	}
}

// TestServerBusy: a full backlog bounces submissions with 503 instead of
// blocking the HTTP handler, and accepted runs still complete.
func TestServerBusy(t *testing.T) {
	srv := NewServer(Options{Jobs: 1, Backlog: 0})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the single worker directly through the shared pool so the
	// busy condition is deterministic (Submit blocks until a worker takes
	// the task, so the worker is provably occupied afterwards).
	gate := make(chan struct{})
	if err := srv.pool.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(RunRequest{Algo: "luby", N: 64, Seed: 1})
	var sawBusy bool
	var id string
	for i := 0; i < 3 && !sawBusy; i++ {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			sawBusy = true
		} else if resp.StatusCode == http.StatusAccepted {
			var out struct {
				ID string `json:"id"`
			}
			json.NewDecoder(resp.Body).Decode(&out)
			id = out.ID
		}
		resp.Body.Close()
	}
	if !sawBusy {
		t.Error("no 503 while the worker was occupied and the backlog empty")
	}
	// A bounced submission must not linger in the listing.
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Runs []runView `json:"runs"`
	}
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	for _, v := range list.Runs {
		if v.ID != id {
			t.Errorf("bounced run %s still listed", v.ID)
		}
	}
	close(gate)
	if n := srv.Drain(); n < 0 {
		t.Errorf("drain reported %d", n)
	}
}

// TestServerSubmitWithdrawRace: concurrent submissions while the worker is
// blocked and the backlog is tiny mix accepted and bounced runs; a bounced
// submission must withdraw exactly its own id, so the listing afterwards is
// consistent (every accepted run present, no nil entries panicking view()).
func TestServerSubmitWithdrawRace(t *testing.T) {
	srv := NewServer(Options{Jobs: 1, Backlog: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	if err := srv.pool.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(RunRequest{Algo: "luby", N: 64, Seed: 1})
	const submitters = 16
	accepted := make(chan string, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var out struct {
					ID string `json:"id"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Error(err)
					return
				}
				accepted <- out.ID
			case http.StatusServiceUnavailable:
			default:
				t.Errorf("unexpected submit status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(accepted)
	want := map[string]bool{}
	for id := range accepted {
		want[id] = true
	}

	// The listing must not panic (a dangling order id would nil-deref in
	// view()) and must hold exactly the accepted runs.
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("listing after racy submissions: status %d", resp.StatusCode)
	}
	var list struct {
		Runs []runView `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != len(want) {
		t.Errorf("listing has %d runs, want the %d accepted", len(list.Runs), len(want))
	}
	for _, v := range list.Runs {
		if !want[v.ID] {
			t.Errorf("listing holds unexpected run %q", v.ID)
		}
	}
	close(gate)
	srv.Drain()
}

// TestStreamClientDisconnect: a stream subscriber that goes away while its
// run is idle (no progress appends coming) must release the handler promptly
// — the ctx.Done wakeup must not be lost against the cond.Wait loop.
func TestStreamClientDisconnect(t *testing.T) {
	srv := NewServer(Options{Jobs: 1})
	defer srv.Drain()

	// A hand-planted run stuck in "running" with no progress: the only
	// thing that can wake the stream loop is the disconnect broadcast.
	rn := newRun("r1", RunRequest{Algo: "luby", N: 64, Seed: 1})
	rn.status = "running"
	srv.mu.Lock()
	srv.runs[rn.id] = rn
	srv.order = append(srv.order, rn.id)
	srv.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/v1/runs/r1/stream", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(httptest.NewRecorder(), req)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let the handler park in cond.Wait
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream handler still blocked after client disconnect")
	}
}

// TestServerDrain: Drain waits for in-flight runs, counts them, and flips
// subsequent submissions to 503.
func TestServerDrain(t *testing.T) {
	srv := NewServer(Options{Jobs: 1, Backlog: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hold the single worker so the submitted run is still queued when the
	// drain begins, then release it once the drain is in flight.
	gate := make(chan struct{})
	if err := srv.pool.Submit(func() { <-gate }); err != nil {
		t.Fatal(err)
	}
	id := submit(t, ts, RunRequest{Algo: "luby", N: 500, Seed: 9})
	nCh := make(chan int)
	go func() { nCh <- srv.Drain() }()
	time.Sleep(20 * time.Millisecond)
	close(gate)
	if n := <-nCh; n < 1 {
		t.Errorf("drain saw %d in-flight runs, want >= 1", n)
	}
	// The drained run finished.
	v := getView(t, ts, id)
	if v.Status != "done" || v.Outcome == nil || !v.Outcome.Valid {
		t.Errorf("drained run not completed: %+v", v)
	}
	// New work bounces.
	body, _ := json.Marshal(RunRequest{Algo: "luby", N: 64, Seed: 1})
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submission: status %d, want 503", resp.StatusCode)
	}
	if again := srv.Drain(); again != 0 {
		t.Errorf("second drain counted %d", again)
	}
}
