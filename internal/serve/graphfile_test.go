package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/sim"
)

// writeGraphFile generates the request-equivalent graph in RAM and writes it
// in the on-disk CSR format, returning the file path.
func writeGraphFile(t *testing.T, dir, name, kind string, n int, seed uint64) string {
	t.Helper()
	g, err := BuildGraph(kind, n, 0, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := graph.WriteCSRFile(g, path); err != nil {
		t.Fatal(err)
	}
	return path
}

// assertOutcomeEqual compares everything about two outcomes except wall-clock
// telemetry — the only field allowed to differ between a file-backed and a
// generated run of the same request.
func assertOutcomeEqual(t *testing.T, label string, got, want *RunOutcome) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil outcome (got=%v want=%v)", label, got, want)
	}
	if got.Valid != want.Valid || got.Reject != want.Reject || got.Summary != want.Summary {
		t.Errorf("%s: verdict diverged:\n got: valid=%t reject=%q %q\nwant: valid=%t reject=%q %q",
			label, got.Valid, got.Reject, got.Summary, want.Valid, want.Reject, want.Summary)
	}
	if got.Rounds != want.Rounds || got.Messages != want.Messages ||
		got.BitsTotal != want.BitsTotal || got.MaxMessageBits != want.MaxMessageBits {
		t.Errorf("%s: accounting diverged:\n got: rounds=%d messages=%d bits=%d maxMsg=%d\nwant: rounds=%d messages=%d bits=%d maxMsg=%d",
			label, got.Rounds, got.Messages, got.BitsTotal, got.MaxMessageBits,
			want.Rounds, want.Messages, want.BitsTotal, want.MaxMessageBits)
	}
	if !reflect.DeepEqual(got.ActivePerRound, want.ActivePerRound) {
		t.Errorf("%s: activePerRound diverged", label)
	}
	gt, wt := got.Telemetry, want.Telemetry
	if (gt == nil) != (wt == nil) {
		t.Fatalf("%s: telemetry presence diverged: got=%v want=%v", label, gt, wt)
	}
	if gt == nil {
		return
	}
	if gt.Scheduler != wt.Scheduler || gt.Workers != wt.Workers || gt.Rounds != wt.Rounds ||
		gt.Reshards != wt.Reshards ||
		!reflect.DeepEqual(gt.Modes, wt.Modes) || !reflect.DeepEqual(gt.Injected, wt.Injected) {
		t.Errorf("%s: telemetry diverged (beyond wall clock):\n got: %+v\nwant: %+v", label, gt, wt)
	}
}

// TestValidateGraphFile covers the graphFile branch of request validation:
// the file path replaces the family spec, so family parameters must be unset
// and n is optional.
func TestValidateGraphFile(t *testing.T) {
	ok := []RunRequest{
		{Algo: "luby", GraphFile: "g.csr", Seed: 1},         // n filled from the header
		{Algo: "en", GraphFile: "g.csr", N: 512, Seed: 1},   // n asserted against the header
		{Algo: "coloring", GraphFile: "sub/g.csr", Seed: 1}, // subdirectories are fine
	}
	for i, req := range ok {
		if err := req.Validate(); err != nil {
			t.Errorf("valid graphFile request %d rejected: %v", i, err)
		}
	}
	bad := []RunRequest{
		{Algo: "luby", GraphFile: "g.csr", Graph: "gnp"},   // family and file together
		{Algo: "luby", GraphFile: "g.csr", P: 0.5},         // p is a family knob
		{Algo: "luby", GraphFile: "g.csr", Deg: 3},         // deg is a family knob
		{Algo: "luby", GraphFile: "g.csr", N: -1},          // negative n
		{Algo: "luby", GraphFile: "g.csr", N: MaxN + 1},    // over cap
		{Algo: "bogus", GraphFile: "g.csr"},                // algo still validated
		{Algo: "luby", GraphFile: "g.csr", Scheduler: "x"}, // engine knobs still validated
		{Algo: "luby", GraphFile: "g.csr", Adversary: AdversaryKnobs{Drop: 2}},
	}
	for i, req := range bad {
		if err := req.Validate(); err == nil {
			t.Errorf("bad graphFile request %d accepted: %+v", i, req)
		}
	}
}

// TestExecuteGraphFileMatchesGenerated is the serve-layer half of the
// out-of-core equivalence guarantee: a run on a csrgen-equivalent file
// reports exactly what the generated run of the same request reports —
// clean and faulted, sequential and parallel.
func TestExecuteGraphFileMatchesGenerated(t *testing.T) {
	const n, seed = 600, 3
	path := writeGraphFile(t, t.TempDir(), "g.csr", "gnp", n, seed)

	cases := []struct {
		name string
		req  RunRequest
	}{
		{"luby-sequential", RunRequest{Algo: "luby", N: n, Seed: seed}},
		{"en-parallel", RunRequest{Algo: "en", N: n, Seed: seed, Scheduler: "parallel", Workers: 3}},
		{"coloring-concurrent", RunRequest{Algo: "coloring", N: n, Seed: seed, Scheduler: "concurrent"}},
		{"lubybit-unpacked", RunRequest{Algo: "lubybit", N: n, Seed: seed, Unpacked: true}},
		{"luby-faulted", RunRequest{Algo: "luby", N: n, Seed: seed,
			Adversary: AdversaryKnobs{Drop: 0.1, Crash: 1}}},
		{"en-faulted-parallel", RunRequest{Algo: "en", N: n, Seed: seed,
			Scheduler: "parallel", Workers: 2, Reshard: "halving",
			Adversary: AdversaryKnobs{Drop: 0.15, Stall: 1}}},
		{"n-filled-from-header", RunRequest{Algo: "luby", Seed: seed}}, // N left 0
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gen := tc.req
			gen.N = n // the generated twin always needs the explicit size
			want, err := Execute(gen, sim.ExecOptions{Telemetry: true})
			if err != nil {
				t.Fatal(err)
			}
			fileReq := tc.req
			fileReq.GraphFile = path
			got, err := Execute(fileReq, sim.ExecOptions{Telemetry: true})
			if err != nil {
				t.Fatal(err)
			}
			assertOutcomeEqual(t, tc.name, got, want)
		})
	}
}

// TestExecuteGraphFileErrors: file-level failures surface as request errors.
func TestExecuteGraphFileErrors(t *testing.T) {
	dir := t.TempDir()
	path := writeGraphFile(t, dir, "g.csr", "ring", 128, 1)

	if _, err := Execute(RunRequest{Algo: "luby", GraphFile: filepath.Join(dir, "missing.csr"), Seed: 1}, sim.ExecOptions{}); err == nil {
		t.Error("missing graph file executed")
	}
	_, err := Execute(RunRequest{Algo: "luby", GraphFile: path, N: 64, Seed: 1}, sim.ExecOptions{})
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("n mismatch not rejected: %v", err)
	}
	// A truncated file must fail to open, not run on garbage.
	raw, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	trunc := filepath.Join(dir, "trunc.csr")
	if werr := os.WriteFile(trunc, raw[:len(raw)-4], 0o644); werr != nil {
		t.Fatal(werr)
	}
	if _, err := Execute(RunRequest{Algo: "luby", GraphFile: trunc, Seed: 1}, sim.ExecOptions{}); err == nil {
		t.Error("truncated graph file executed")
	}
}

// writeOversizedHeader plants a header-only CSR file whose n exceeds the
// service cap (half-edge count 0, sparse-truncated to the implied size), to
// prove the daemon rejects it from the header alone without mapping it.
func writeOversizedHeader(t *testing.T, path string) {
	t.Helper()
	hdr := make([]byte, 64)
	copy(hdr, "CSRFILE1")
	binary.LittleEndian.PutUint32(hdr[8:12], 1)               // version
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(MaxN+1)) // n over the cap
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(hdr); err != nil {
		t.Fatal(err)
	}
	// The off array of n+1 zero int64s, as a sparse hole.
	if err := f.Truncate(64 + 8*int64(MaxN+2)); err != nil {
		t.Fatal(err)
	}
}

// TestServerGraphFile: the daemon's -graphdir sandbox end to end — a relative
// path inside the directory runs (matching the direct execution of the same
// file), and every escape or misconfiguration bounces with 400.
func TestServerGraphFile(t *testing.T) {
	dir := t.TempDir()
	const n, seed = 500, 9
	writeGraphFile(t, dir, "g.csr", "gnp", n, seed)
	writeOversizedHeader(t, filepath.Join(dir, "huge.csr"))

	srv := NewServer(Options{Jobs: 1, Backlog: 2, GraphDir: dir})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := RunRequest{Algo: "luby", GraphFile: "g.csr", Seed: seed}
	id := submit(t, ts, req)
	v := waitDone(t, ts, id)
	if v.Status != "done" || v.Outcome == nil || !v.Outcome.Valid {
		t.Fatalf("file-backed run did not complete validly: %+v", v)
	}
	// The stored request keeps the client's relative path, not the resolved one.
	if v.Request.GraphFile != "g.csr" {
		t.Errorf("status API leaked the resolved path: %q", v.Request.GraphFile)
	}
	if v.Request.N != n {
		t.Errorf("accepted request n=%d, want %d from the header", v.Request.N, n)
	}
	// Daemon outcome equals the generated run of the same parameters.
	direct, err := Execute(RunRequest{Algo: "luby", N: n, Seed: seed}, sim.ExecOptions{Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	assertOutcomeEqual(t, "daemon-vs-generated", v.Outcome, direct)

	post := func(req RunRequest) (int, string) {
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}
	rejections := []struct {
		name string
		req  RunRequest
		want string // substring of the 400 body
	}{
		{"absolute-path", RunRequest{Algo: "luby", GraphFile: filepath.Join(dir, "g.csr"), Seed: 1}, "escapes"},
		{"dotdot-escape", RunRequest{Algo: "luby", GraphFile: "../g.csr", Seed: 1}, "escapes"},
		{"nested-dotdot", RunRequest{Algo: "luby", GraphFile: "sub/../../g.csr", Seed: 1}, "escapes"},
		{"missing-file", RunRequest{Algo: "luby", GraphFile: "nope.csr", Seed: 1}, ""},
		{"n-mismatch", RunRequest{Algo: "luby", GraphFile: "g.csr", N: 64, Seed: 1}, "does not match"},
		{"over-cap", RunRequest{Algo: "luby", GraphFile: "huge.csr", Seed: 1}, "cap"},
	}
	for _, tc := range rejections {
		t.Run(tc.name, func(t *testing.T) {
			code, body := post(tc.req)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %q)", code, body)
			}
			if tc.want != "" && !strings.Contains(body, tc.want) {
				t.Errorf("400 body %q missing %q", body, tc.want)
			}
		})
	}

	// A daemon without -graphdir refuses file-backed runs outright.
	bare := NewServer(Options{Jobs: 1})
	defer bare.Drain()
	bts := httptest.NewServer(bare.Handler())
	defer bts.Close()
	body, _ := json.Marshal(RunRequest{Algo: "luby", GraphFile: "g.csr", Seed: 1})
	resp, err := http.Post(bts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(buf.String(), "graphdir") {
		t.Errorf("no-graphdir submission: status %d body %q, want 400 naming -graphdir", resp.StatusCode, buf.String())
	}
}
