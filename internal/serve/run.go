// Package serve is the simulation service layer behind cmd/locsimd: typed
// run requests carrying the same knobs as the locsim CLI, deterministic
// execution of the single-simulation algorithms over warm pooled engines,
// and an HTTP/JSON front end with live round-by-round progress streaming.
// C-POD's remote shared-testbed framing (PAPERS.md) is the model: many
// tenants submit runs to one long-lived process that keeps its engine
// buffers warm across them.
package serve

import (
	"fmt"
	"io"

	"randlocal/internal/check"
	"randlocal/internal/coloring"
	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/mis"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

// MaxN bounds accepted run sizes: large enough for the 2^22 experiment
// scale, small enough that a single request cannot exhaust the host.
const MaxN = 1 << 22

// AdversaryKnobs are the fault-injection budgets of a run request, mirroring
// the locsim -drop/-delay/-crash/-churn/-stall flags.
type AdversaryKnobs struct {
	Drop     float64 `json:"drop,omitempty"`
	Delay    float64 `json:"delay,omitempty"`
	DelayMax int     `json:"delayMax,omitempty"`
	Crash    int     `json:"crash,omitempty"`
	Churn    int     `json:"churn,omitempty"`
	Heal     int     `json:"heal,omitempty"`
	Stall    int     `json:"stall,omitempty"`
}

// Zero reports an all-defaults knob set (no adversary attached).
func (k AdversaryKnobs) Zero() bool {
	return k.Drop == 0 && k.Delay == 0 && k.Crash == 0 && k.Churn == 0 && k.Heal == 0 && k.Stall == 0
}

// RunRequest is one submitted simulation: the same algorithm, graph-family,
// seed, engine and adversary knobs the locsim CLI accepts, as JSON. Zero
// values mean the CLI's defaults, so {"algo":"luby","n":512,"seed":1}
// reproduces `locsim -algo luby -n 512 -seed 1` exactly.
type RunRequest struct {
	// Algo is the algorithm: en | luby | lubybit | coloring — the
	// single-simulation algorithms whose runs a multi-tenant service can
	// account and stream round by round.
	Algo string `json:"algo"`
	// Graph is the family: gnp | ring | grid | tree | cliques | regular
	// ("" = gnp). N, P and Deg parameterize it as in the CLI: P 0 means
	// 4/n for gnp, Deg 0 means 3 for regular, grid rounds to a square.
	Graph string  `json:"graph,omitempty"`
	N     int     `json:"n"`
	P     float64 `json:"p,omitempty"`
	Deg   int     `json:"deg,omitempty"`
	// GraphFile, when set, runs on a prebuilt on-disk CSR graph (cmd/csrgen)
	// instead of a generated family: Graph/P/Deg must be unset and N may be
	// 0 (it is filled from the file's header) or must match it. Over HTTP
	// the path is resolved inside the daemon's -graphdir sandbox; direct
	// Execute callers and the locsim CLI pass any path.
	GraphFile string `json:"graphFile,omitempty"`
	// Seed drives everything: graph construction, the algorithm's coins,
	// and (through the derived SimulationKey) the adversary's. The same
	// request is byte-deterministic across processes.
	Seed uint64 `json:"seed"`
	// Scheduler ("" = sequential), Workers, Reshard ("" = adaptive), Place
	// ("" = auto) and Unpacked select the engine exactly as the CLI flags
	// do. Workers above N is clamped to N (a shard needs a node).
	Scheduler string `json:"scheduler,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	Reshard   string `json:"reshard,omitempty"`
	Place     string `json:"place,omitempty"`
	Unpacked  bool   `json:"unpacked,omitempty"`
	// Adversary attaches fault budgets; the zero value runs fault-free.
	Adversary AdversaryKnobs `json:"adversary,omitempty"`
}

// Validate normalizes defaults in place and rejects requests the executor
// would choke on, so a 400 carries the reason instead of a queued run
// failing late.
func (r *RunRequest) Validate() error {
	switch r.Algo {
	case "en", "luby", "lubybit", "coloring":
	case "":
		return fmt.Errorf("missing algo (want en, luby, lubybit or coloring)")
	default:
		return fmt.Errorf("unknown algo %q (want en, luby, lubybit or coloring)", r.Algo)
	}
	if r.GraphFile != "" {
		// File-backed runs carry their shape in the file's header; the
		// family parameters must not also be set (they would silently lose).
		if r.Graph != "" {
			return fmt.Errorf("graphFile and a graph family are mutually exclusive")
		}
		if r.P != 0 || r.Deg != 0 {
			return fmt.Errorf("p and deg do not apply to a graphFile run")
		}
		if r.N < 0 {
			return fmt.Errorf("n must be nonnegative with graphFile, got %d", r.N)
		}
		if r.N > MaxN {
			return fmt.Errorf("n %d exceeds the service cap %d", r.N, MaxN)
		}
	} else {
		if r.Graph == "" {
			r.Graph = "gnp"
		}
		if err := ValidateGraphSpec(r.Graph, r.N, r.P, r.Deg); err != nil {
			return err
		}
		if r.N > MaxN {
			return fmt.Errorf("n %d exceeds the service cap %d", r.N, MaxN)
		}
	}
	if _, err := sim.ParseScheduler(r.Scheduler); err != nil {
		return err
	}
	if _, err := sim.ParseReshardPolicy(reshardOrDefault(r.Reshard)); err != nil {
		return err
	}
	if _, err := sim.ParsePlacePolicy(r.Place); err != nil {
		return err
	}
	if r.Workers < 0 {
		return fmt.Errorf("workers must be nonnegative, got %d", r.Workers)
	}
	if r.N > 0 && r.Workers > r.N {
		// Normalize rather than reject: the engine would clamp anyway, and
		// the telemetry summary reports the effective width. (A graphFile
		// run with N still 0 clamps once the header fills N in.)
		r.Workers = r.N
	}
	if k := r.Adversary; k.Drop < 0 || k.Drop > 1 || k.Delay < 0 || k.Delay > 1 ||
		k.DelayMax < 0 || k.Crash < 0 || k.Churn < 0 || k.Heal < 0 || k.Stall < 0 {
		return fmt.Errorf("adversary budgets out of range")
	}
	return nil
}

func reshardOrDefault(s string) string {
	if s == "" {
		return "adaptive"
	}
	return s
}

// ValidateGraphSpec rejects family parameters the generators would panic on —
// shared by request validation and csrgen, so every front end turns an
// infeasible shape into an error instead of a crashed worker.
func ValidateGraphSpec(kind string, n int, p float64, deg int) error {
	switch kind {
	case "gnp", "ring", "grid", "tree", "cliques", "regular":
	default:
		return fmt.Errorf("unknown graph family %q", kind)
	}
	if n <= 0 {
		return fmt.Errorf("n must be positive, got %d", n)
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("p %v outside [0, 1]", p)
	}
	if deg < 0 {
		return fmt.Errorf("deg must be nonnegative, got %d", deg)
	}
	switch kind {
	case "cliques":
		if n < 4 {
			return fmt.Errorf("graph cliques needs n >= 4 (one clique of size 4), got n=%d", n)
		}
	case "regular":
		if deg == 0 {
			deg = 3 // the CLI default BuildGraph applies
		}
		if deg >= n {
			return fmt.Errorf("graph regular needs deg < n, got deg=%d n=%d", deg, n)
		}
		if n*deg%2 != 0 {
			return fmt.Errorf("graph regular needs n*deg even, got n=%d deg=%d", n, deg)
		}
	}
	return nil
}

// BuildGraph constructs the request's graph family exactly as the locsim CLI
// does (same generator, same seed discipline), so a daemon-submitted run and
// a CLI run of the same request solve the same instance.
func BuildGraph(kind string, n int, p float64, deg int, seed uint64) (*graph.Graph, error) {
	rng := prng.New(seed)
	switch kind {
	case "gnp":
		if p == 0 {
			p = 4.0 / float64(n)
		}
		return graph.GNPConnected(n, p, rng), nil
	case "ring":
		return graph.Ring(n), nil
	case "grid":
		s := 1
		for (s+1)*(s+1) <= n {
			s++
		}
		return graph.Grid(s, s), nil
	case "tree":
		return graph.RandomTree(n, rng), nil
	case "cliques":
		return graph.RingOfCliques(n/4, 4), nil
	case "regular":
		if deg == 0 {
			deg = 3
		}
		return graph.RandomRegular(n, deg, rng), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", kind)
	}
}

// TelemetrySummary condenses a run's sim.Telemetry for the status API; the
// full per-round trace stays server-side.
type TelemetrySummary struct {
	Scheduler string         `json:"scheduler"`
	Workers   int            `json:"workers"`
	Rounds    int            `json:"rounds"`
	WallMS    float64        `json:"wallMS"`
	ComputeMS float64        `json:"computeMS"`
	Modes     map[string]int `json:"modes,omitempty"`
	Reshards  int            `json:"reshards,omitempty"`
	Injected  map[string]int `json:"injected,omitempty"`
	// Effective pool width of the parallel engine: Workers is the
	// configured pool, PoolWidthMin/Max the smallest and largest active set
	// any round ran with (the adaptive ledger parks surplus workers through
	// the shattering tail). Placements counts placement events (initial
	// pinning plus re-cut reassignments); Pinned reports whether workers
	// were locked to OS threads.
	PoolWidthMin int  `json:"poolWidthMin,omitempty"`
	PoolWidthMax int  `json:"poolWidthMax,omitempty"`
	Placements   int  `json:"placements,omitempty"`
	Pinned       bool `json:"pinned,omitempty"`
}

func summarizeTelemetry(tel *sim.Telemetry) *TelemetrySummary {
	if tel == nil {
		return nil
	}
	out := &TelemetrySummary{
		Scheduler: tel.Scheduler.String(),
		Workers:   tel.Workers,
		Rounds:    len(tel.Rounds),
		Modes:     map[string]int{},
		Reshards:  len(tel.Reshards),
	}
	if len(tel.PoolWidthPerRound) > 0 {
		out.PoolWidthMin, out.PoolWidthMax = tel.PoolWidthPerRound[0], tel.PoolWidthPerRound[0]
		for _, w := range tel.PoolWidthPerRound {
			if w < out.PoolWidthMin {
				out.PoolWidthMin = w
			}
			if w > out.PoolWidthMax {
				out.PoolWidthMax = w
			}
		}
	}
	out.Placements = len(tel.Places)
	for _, ev := range tel.Places {
		if ev.Pinned {
			out.Pinned = true
		}
	}
	var wallNS, computeNS int64
	for _, rs := range tel.Rounds {
		wallNS += rs.WallNS
		for _, c := range rs.ComputeNS {
			computeNS += c
		}
		for _, m := range rs.Mode {
			out.Modes[m.String()]++
		}
	}
	out.WallMS = float64(wallNS) / 1e6
	out.ComputeMS = float64(computeNS) / 1e6
	if len(tel.Injected) > 0 {
		out.Injected = map[string]int{}
		for _, ev := range tel.Injected {
			out.Injected[ev.Kind.String()] += ev.Count
		}
	}
	return out
}

// RunOutcome is the completed run's result: the engine accounting every
// scheduler agrees on byte for byte, the checker verdict, and the telemetry
// summary. A faulted run that ran to completion but failed its checker (or
// exhausted its phases) is an outcome with Valid=false and Reject set — the
// same one-sided-oracle reporting the CLI prints — while configuration and
// engine errors surface as request failures instead.
type RunOutcome struct {
	Valid          bool              `json:"valid"`
	Reject         string            `json:"reject,omitempty"`
	Summary        string            `json:"summary"`
	Rounds         int               `json:"rounds"`
	Messages       int64             `json:"messages"`
	BitsTotal      int64             `json:"bitsTotal"`
	MaxMessageBits int               `json:"maxMsgBits"`
	ActivePerRound []int             `json:"activePerRound"`
	Telemetry      *TelemetrySummary `json:"telemetry,omitempty"`
}

// accounting is the Result slice every algorithm shares.
func outcomeOf[T any](res *sim.Result[T]) *RunOutcome {
	return &RunOutcome{
		Rounds:         res.Rounds,
		Messages:       res.Messages,
		BitsTotal:      res.BitsTotal,
		MaxMessageBits: res.MaxMessageBits,
		ActivePerRound: res.ActivePerRound,
		Telemetry:      summarizeTelemetry(res.Telemetry),
	}
}

// Execute runs one validated request to its outcome. exec carries the host's
// per-run execution wiring — the engine pool, the forced telemetry, the
// progress hook — merged with the request's own scheduler knobs; passing the
// zero ExecOptions runs with package defaults, which is what the
// CLI-equivalence guarantee is stated against.
func Execute(req RunRequest, exec sim.ExecOptions) (*RunOutcome, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	sched, err := sim.ParseScheduler(req.Scheduler)
	if err != nil {
		return nil, err
	}
	if sched == sim.Auto {
		sched = sim.Sequential
	}
	policy, err := sim.ParseReshardPolicy(reshardOrDefault(req.Reshard))
	if err != nil {
		return nil, err
	}
	placePolicy, err := sim.ParsePlacePolicy(req.Place)
	if err != nil {
		return nil, err
	}
	exec.Scheduler = sched
	exec.Workers = req.Workers
	exec.Reshard = policy
	exec.Place = placePolicy
	if req.Unpacked {
		exec.Unpacked = true
	}

	var g *graph.Graph
	if req.GraphFile != "" {
		// File-backed run: the engines execute on the read-only mapping
		// directly; the closer releases it once the run (and its telemetry
		// summarization) is done.
		var closer io.Closer
		g, closer, err = graph.OpenCSRFile(req.GraphFile)
		if err != nil {
			return nil, err
		}
		defer closer.Close()
		if g.N() > MaxN {
			return nil, fmt.Errorf("graph file n=%d exceeds the service cap %d", g.N(), MaxN)
		}
		if req.N != 0 && req.N != g.N() {
			return nil, fmt.Errorf("request n=%d does not match the graph file's n=%d", req.N, g.N())
		}
		req.N = g.N()
		if req.Workers > req.N {
			req.Workers = req.N
		}
		exec.Workers = req.Workers
	} else {
		g, err = BuildGraph(req.Graph, req.N, req.P, req.Deg, req.Seed)
		if err != nil {
			return nil, err
		}
	}
	var adv *sim.Adversary
	if k := req.Adversary; !k.Zero() {
		advCfg := sim.AdversaryConfig{
			DropProb: k.Drop, DelayProb: k.Delay, DelayMax: k.DelayMax,
			CrashPerRound: k.Crash, ChurnPerRound: k.Churn, HealPerRound: k.Heal,
			StallPerRound: k.Stall,
		}
		adv, err = sim.NewAdversary(sim.NewSimulationKey(req.Seed), advCfg)
		if err != nil {
			return nil, err
		}
	}

	// Faulted runs follow the CLI's one-sided-oracle reporting: an
	// incomplete or checker-rejected execution is a Valid=false outcome
	// with the partial accounting, not a request error.
	reject := func(res *RunOutcome, phase string, cause error) *RunOutcome {
		res.Valid = false
		res.Reject = fmt.Sprintf("%s (%v)", phase, cause)
		res.Summary = fmt.Sprintf("%s under faults: %s", req.Algo, res.Reject)
		return res
	}

	switch req.Algo {
	case "en":
		src := randomness.NewFull(req.Seed)
		d, res, err := decomp.ElkinNeiman(g, src, nil, decomp.ENConfig{Adversary: adv, Exec: exec})
		if err != nil {
			if adv == nil || res == nil {
				return nil, err
			}
			return reject(outcomeOf(res), "INCOMPLETE", err), nil
		}
		out := outcomeOf(res)
		if verr := d.Validate(g, 0, 0); verr != nil {
			if adv == nil {
				return nil, fmt.Errorf("invalid decomposition: %w", verr)
			}
			return reject(out, "INVALID", verr), nil
		}
		st := d.StatsOf(g)
		out.Valid = true
		out.Summary = fmt.Sprintf("Elkin–Neiman: valid, colors=%d clusters=%d maxDiameter=%d trueBits=%d",
			st.Colors, st.Clusters, st.MaxDiameter, src.Ledger().TrueBits())
		return out, nil
	case "luby", "lubybit":
		src := randomness.NewFull(req.Seed)
		var in []bool
		var res *sim.Result[mis.LubyOutput]
		if req.Algo == "luby" {
			in, res, err = mis.Luby(g, src, nil, mis.LubyConfig{Adversary: adv, Exec: exec})
		} else {
			in, res, err = mis.LubyBit(g, src, nil, mis.LubyBitConfig{Adversary: adv, Exec: exec})
		}
		if err != nil {
			if adv == nil || res == nil {
				return nil, err
			}
			return reject(outcomeOf(res), "INCOMPLETE", err), nil
		}
		out := outcomeOf(res)
		if cerr := check.MIS(g, in); cerr != nil {
			if adv == nil {
				return nil, fmt.Errorf("invalid MIS: %w", cerr)
			}
			return reject(out, "INVALID", cerr), nil
		}
		size := 0
		for _, b := range in {
			if b {
				size++
			}
		}
		out.Valid = true
		out.Summary = fmt.Sprintf("%s MIS: valid, |MIS|=%d trueBits=%d", req.Algo, size, src.Ledger().TrueBits())
		return out, nil
	case "coloring":
		src := randomness.NewFull(req.Seed)
		colors, res, err := coloring.Randomized(g, src, nil, coloring.Config{Adversary: adv, Exec: exec})
		if err != nil {
			if adv == nil || res == nil {
				return nil, err
			}
			return reject(outcomeOf(res), "INCOMPLETE", err), nil
		}
		out := outcomeOf(res)
		if cerr := check.Coloring(g, colors, g.MaxDegree()+1); cerr != nil {
			if adv == nil {
				return nil, fmt.Errorf("invalid coloring: %w", cerr)
			}
			return reject(out, "INVALID", cerr), nil
		}
		out.Valid = true
		out.Summary = fmt.Sprintf("coloring: valid, palette=%d trueBits=%d", g.MaxDegree()+1, src.Ledger().TrueBits())
		return out, nil
	}
	return nil, fmt.Errorf("unknown algo %q", req.Algo)
}
