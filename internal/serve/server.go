package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"

	"randlocal/internal/experiments"
	"randlocal/internal/graph/csrfile"
	"randlocal/internal/sim"
)

// Options configures a Server.
type Options struct {
	// Jobs is the number of runs executing concurrently (<= 0 means
	// runtime.GOMAXPROCS(0)); Backlog is how many accepted runs may wait
	// beyond that before submissions bounce with 503 (negative clamps
	// to 0: accept only when a worker is idle).
	Jobs    int
	Backlog int
	// Pool is the warm engine-buffer pool runs draw from; nil allocates
	// fresh buffers per run. The server passes it per run (sim.ExecOptions)
	// rather than touching the package-wide default, so co-resident
	// workloads are unaffected.
	Pool *sim.EnginePool
	// GraphDir is the directory of prebuilt CSR graph files (cmd/csrgen)
	// that graphFile requests may name, relative paths only — the daemon's
	// file-backed sandbox. Empty rejects graphFile runs entirely.
	GraphDir string
}

// Server is the simulation service: a bounded TrialPool executing submitted
// runs over warm pooled engines, with per-run progress replay for streaming
// clients. It is the HTTP-facing twin of the experiments Runner — the same
// queue machinery, fed by POSTs instead of sweep specs.
type Server struct {
	pool     *experiments.TrialPool
	engines  *sim.EnginePool
	graphDir string

	mu       sync.Mutex
	runs     map[string]*run
	order    []string // submission order, for listing
	seq      int
	draining bool
}

// run is one submitted simulation's lifecycle: queued → running → done (an
// outcome, valid or checker-rejected) or failed (a request/engine error).
// The progress slice is an append-only replay log: stream subscribers — even
// ones arriving after completion — see every round event in order, then the
// terminal event. cond broadcasts on every append and on completion.
type run struct {
	id  string
	req RunRequest
	// graphPath is the sandbox-resolved location of req.GraphFile; the
	// stored request keeps the client's relative path for the status API.
	graphPath string

	mu       sync.Mutex
	cond     *sync.Cond
	status   string
	progress []sim.Progress
	outcome  *RunOutcome
	err      string
	finished bool
}

func newRun(id string, req RunRequest) *run {
	r := &run{id: id, req: req, status: "queued"}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// observe is the sim.Progress hook; it runs on the engine's coordinator
// goroutine at each round boundary.
func (r *run) observe(p sim.Progress) {
	r.mu.Lock()
	r.progress = append(r.progress, p)
	r.cond.Broadcast()
	r.mu.Unlock()
}

func (r *run) finish(out *RunOutcome, err error) {
	r.mu.Lock()
	if err != nil {
		r.status, r.err = "failed", err.Error()
	} else {
		r.status, r.outcome = "done", out
	}
	r.finished = true
	r.cond.Broadcast()
	r.mu.Unlock()
}

// progressView is the wire form of one sim.Progress update.
type progressView struct {
	Round    int   `json:"round"`
	Active   int   `json:"active"`
	Running  int   `json:"running"`
	Messages int64 `json:"messages"`
}

func toProgressView(p sim.Progress) progressView {
	return progressView{Round: p.Round, Active: p.Active, Running: p.Running, Messages: p.Messages}
}

// runView is the status-API projection of a run.
type runView struct {
	ID       string        `json:"id"`
	Status   string        `json:"status"`
	Request  RunRequest    `json:"request"`
	Rounds   int           `json:"rounds"` // rounds completed so far (or total)
	Progress *progressView `json:"progress,omitempty"`
	Outcome  *RunOutcome   `json:"outcome,omitempty"`
	Error    string        `json:"error,omitempty"`
}

func (r *run) view() runView {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := runView{ID: r.id, Status: r.status, Request: r.req, Outcome: r.outcome, Error: r.err}
	if n := len(r.progress); n > 0 {
		p := toProgressView(r.progress[n-1])
		v.Progress = &p
		v.Rounds = p.Round
	}
	if r.outcome != nil {
		v.Rounds = r.outcome.Rounds
	}
	return v
}

// NewServer starts the service's worker pool. Callers must Drain before
// discarding the server.
func NewServer(opt Options) *Server {
	return &Server{
		pool:     experiments.NewTrialPool(opt.Jobs, opt.Backlog),
		engines:  opt.Pool,
		graphDir: opt.GraphDir,
		runs:     map[string]*run{},
	}
}

// Drain stops accepting new runs, waits for every accepted run to finish,
// and reports how many were still in flight when the drain began. Safe to
// call more than once; later calls return 0 after the first completes.
func (s *Server) Drain() int {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	inflight := 0
	if !already {
		for _, r := range s.runs {
			r.mu.Lock()
			if !r.finished {
				inflight++
			}
			r.mu.Unlock()
		}
	}
	s.mu.Unlock()
	s.pool.Close() // blocks until accepted runs complete; idempotent
	return inflight
}

// Handler returns the service's HTTP API:
//
//	POST /v1/runs         submit a RunRequest → 202 {id} | 400 | 503 when full/draining
//	GET  /v1/runs         list all runs newest-last
//	GET  /v1/runs/{id}    one run's status, progress and outcome
//	GET  /v1/runs/{id}/stream  SSE: every round as an event, then the result
//	GET  /healthz         liveness + drain state
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/runs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	graphPath := ""
	if req.GraphFile != "" {
		var err error
		if graphPath, err = s.resolveGraphFile(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
		return
	}
	s.seq++
	rn := newRun(fmt.Sprintf("r%d", s.seq), req)
	rn.graphPath = graphPath
	s.runs[rn.id] = rn
	s.order = append(s.order, rn.id)
	s.mu.Unlock()

	if err := s.pool.TrySubmit(func() { s.execute(rn) }); err != nil {
		// Busy or closed: the run never started; withdraw it so the
		// listing doesn't show a permanently-queued ghost. Remove the id
		// by value — a concurrent submit may have appended after ours, so
		// truncating the tail could drop someone else's run.
		s.mu.Lock()
		delete(s.runs, rn.id)
		for i := len(s.order) - 1; i >= 0; i-- {
			if s.order[i] == rn.id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": rn.id, "status": "queued"})
}

// execute runs one accepted run on a pool worker: per-run ExecOptions carry
// the warm engine pool, force telemetry (the status API always has the
// summary), and wire the round hook into the run's replay log.
func (s *Server) execute(rn *run) {
	rn.mu.Lock()
	rn.status = "running"
	rn.mu.Unlock()
	req := rn.req
	if rn.graphPath != "" {
		req.GraphFile = rn.graphPath
	}
	out, err := runGuarded(func() (*RunOutcome, error) {
		return Execute(req, sim.ExecOptions{
			Telemetry: true,
			Pool:      s.engines,
			Progress:  rn.observe,
		})
	})
	rn.finish(out, err)
}

// resolveGraphFile maps a submitted graphFile into the daemon's -graphdir
// sandbox and pre-validates its header, so a bad path or oversized graph is
// a 400 at submit time rather than a failed run later. It fills the
// request's N (and worker clamp) from the header.
func (s *Server) resolveGraphFile(req *RunRequest) (string, error) {
	if s.graphDir == "" {
		return "", fmt.Errorf("this server does not accept graphFile runs (start locsimd with -graphdir)")
	}
	clean := filepath.Clean(req.GraphFile)
	if filepath.IsAbs(clean) || clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("graphFile %q escapes the graph directory", req.GraphFile)
	}
	path := filepath.Join(s.graphDir, clean)
	hdr, err := csrfile.ReadHeader(path)
	if err != nil {
		return "", fmt.Errorf("graphFile %q: %w", req.GraphFile, err)
	}
	if hdr.N > MaxN {
		return "", fmt.Errorf("graph file n=%d exceeds the service cap %d", hdr.N, MaxN)
	}
	if req.N != 0 && req.N != hdr.N {
		return "", fmt.Errorf("request n=%d does not match the graph file's n=%d", req.N, hdr.N)
	}
	req.N = hdr.N
	if req.Workers > req.N {
		req.Workers = req.N
	}
	return path, nil
}

// runGuarded invokes fn, converting a panic into a failed-run error. Validate
// rejects known-infeasible requests up front; this backstop keeps anything
// that still slips through from killing the pool worker — one request must
// never take down the daemon.
func runGuarded(fn func() (*RunOutcome, error)) (out *RunOutcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, err = nil, fmt.Errorf("run panicked: %v", p)
		}
	}()
	return fn()
}

func (s *Server) lookup(id string) *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]runView, 0, len(s.order))
	runs := make([]*run, 0, len(s.order))
	for _, id := range s.order {
		runs = append(runs, s.runs[id])
	}
	draining := s.draining
	s.mu.Unlock()
	for _, rn := range runs {
		views = append(views, rn.view())
	}
	writeJSON(w, http.StatusOK, map[string]any{"runs": views, "draining": draining})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	rn := s.lookup(r.PathValue("id"))
	if rn == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no run %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, rn.view())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	n := len(s.runs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": status, "runs": n})
}

// handleStream serves one run as Server-Sent Events: a `progress` event per
// completed round (replayed from the start, so late subscribers see the full
// trajectory) and a terminal `done` event carrying the same JSON as the
// status endpoint. The stream also ends when the client goes away.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	rn := s.lookup(r.PathValue("id"))
	if rn == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no run %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Wake the wait loop when the client disconnects, so the handler does
	// not linger until the run finishes.
	ctx := r.Context()
	go func() {
		<-ctx.Done()
		// Hold rn.mu so the Broadcast is ordered against the wait loop's
		// ctx.Err() check; an unlocked Broadcast can land between that
		// check and cond.Wait and be lost.
		rn.mu.Lock()
		rn.cond.Broadcast()
		rn.mu.Unlock()
	}()

	emit := func(event string, v any) bool {
		b, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	sent := 0
	for {
		rn.mu.Lock()
		for sent == len(rn.progress) && !rn.finished && ctx.Err() == nil {
			rn.cond.Wait()
		}
		batch := rn.progress[sent:len(rn.progress):len(rn.progress)]
		sent = len(rn.progress)
		finished := rn.finished
		rn.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
		for _, p := range batch {
			if !emit("progress", toProgressView(p)) {
				return
			}
		}
		if finished {
			emit("done", rn.view())
			return
		}
	}
}
