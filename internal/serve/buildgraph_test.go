package serve

import (
	"strings"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
)

// TestBuildGraphFamilies is the family coverage table: every RunRequest
// graph family builds a valid graph with its advertised shape, every
// validation error path rejects with a recognizable message, and BuildGraph
// itself refuses unknown families — previously only some families were
// exercised, and only through HTTP tests.
func TestBuildGraphFamilies(t *testing.T) {
	build := []struct {
		name  string
		kind  string
		n     int
		p     float64
		deg   int
		check func(t *testing.T, g *graph.Graph)
	}{
		{"gnp-default-p", "gnp", 300, 0, 0, func(t *testing.T, g *graph.Graph) {
			if _, k := graph.Components(g); k != 1 {
				t.Errorf("gnp graph not connected: %d components", k)
			}
		}},
		{"gnp-explicit-p", "gnp", 200, 0.05, 0, func(t *testing.T, g *graph.Graph) {
			want := graph.GNPConnected(200, 0.05, prng.New(7))
			if !g.Equal(want) {
				t.Error("gnp with explicit p does not match GNPConnected")
			}
		}},
		{"ring", "ring", 100, 0, 0, func(t *testing.T, g *graph.Graph) {
			if g.M() != 100 || g.MaxDegree() != 2 {
				t.Errorf("ring: m=%d Δ=%d, want 100 and 2", g.M(), g.MaxDegree())
			}
		}},
		{"grid-rounds-to-square", "grid", 1000, 0, 0, func(t *testing.T, g *graph.Graph) {
			if g.N() != 31*31 { // largest s with s^2 <= 1000
				t.Errorf("grid n=%d, want %d", g.N(), 31*31)
			}
		}},
		{"tree", "tree", 257, 0, 0, func(t *testing.T, g *graph.Graph) {
			if g.M() != 256 {
				t.Errorf("tree m=%d, want n-1=256", g.M())
			}
			if _, k := graph.Components(g); k != 1 {
				t.Errorf("tree not connected: %d components", k)
			}
		}},
		{"cliques", "cliques", 64, 0, 0, func(t *testing.T, g *graph.Graph) {
			if g.N() != 64 || g.MaxDegree() != 4 { // clique of 4 plus one ring link
				t.Errorf("cliques: n=%d Δ=%d, want 64 and 4", g.N(), g.MaxDegree())
			}
		}},
		{"regular-default-deg", "regular", 64, 0, 0, func(t *testing.T, g *graph.Graph) {
			if g.MinDegree() != 3 || g.MaxDegree() != 3 {
				t.Errorf("regular defaults: degrees [%d, %d], want 3-regular", g.MinDegree(), g.MaxDegree())
			}
		}},
		{"regular-explicit-deg", "regular", 64, 0, 6, func(t *testing.T, g *graph.Graph) {
			if g.MinDegree() != 6 || g.MaxDegree() != 6 {
				t.Errorf("regular deg=6: degrees [%d, %d]", g.MinDegree(), g.MaxDegree())
			}
		}},
	}
	for _, tc := range build {
		t.Run(tc.name, func(t *testing.T) {
			g, err := BuildGraph(tc.kind, tc.n, tc.p, tc.deg, 7)
			if err != nil {
				t.Fatalf("BuildGraph: %v", err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("invalid graph: %v", err)
			}
			// Same parameters, same seed → the same instance (the
			// determinism the daemon/CLI equivalence rests on).
			again, err := BuildGraph(tc.kind, tc.n, tc.p, tc.deg, 7)
			if err != nil {
				t.Fatalf("BuildGraph (again): %v", err)
			}
			if !g.Equal(again) {
				t.Error("BuildGraph is not deterministic for a fixed seed")
			}
			tc.check(t, g)
		})
	}

	if _, err := BuildGraph("torus", 64, 0, 0, 1); err == nil {
		t.Error("BuildGraph accepted an unknown family")
	}

	reject := []struct {
		name string
		kind string
		n    int
		p    float64
		deg  int
		want string // substring of the error
	}{
		{"unknown-family", "torus", 64, 0, 0, "unknown graph family"},
		{"zero-n", "gnp", 0, 0, 0, "n must be positive"},
		{"negative-n", "ring", -1, 0, 0, "n must be positive"},
		{"p-too-big", "gnp", 64, 1.5, 0, "outside [0, 1]"},
		{"p-negative", "gnp", 64, -0.5, 0, "outside [0, 1]"},
		{"negative-deg", "regular", 64, 0, -2, "deg must be nonnegative"},
		{"cliques-too-small", "cliques", 3, 0, 0, "needs n >= 4"},
		{"regular-deg-ge-n", "regular", 4, 0, 4, "needs deg < n"},
		{"regular-odd-product", "regular", 5, 0, 3, "n*deg even"},
		{"regular-default-odd", "regular", 5, 0, 0, "n*deg even"},
	}
	for _, tc := range reject {
		t.Run("reject-"+tc.name, func(t *testing.T) {
			err := ValidateGraphSpec(tc.kind, tc.n, tc.p, tc.deg)
			if err == nil {
				t.Fatalf("ValidateGraphSpec(%q, %d, %v, %d) accepted", tc.kind, tc.n, tc.p, tc.deg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// The same shape through a full request must reject too.
			req := RunRequest{Algo: "luby", Graph: tc.kind, N: tc.n, P: tc.p, Deg: tc.deg, Seed: 1}
			if err := req.Validate(); err == nil {
				t.Fatalf("RunRequest.Validate accepted the %s shape", tc.name)
			}
		})
	}
}
