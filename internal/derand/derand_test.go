package derand

import (
	"testing"

	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

func seqIDs(g *graph.Graph) []uint64 { return sim.SequentialIDs(g.N()) }

func TestAllGraphsCount(t *testing.T) {
	if got := len(AllGraphs(3)); got != 8 {
		t.Errorf("|G3| = %d, want 8", got)
	}
	if got := len(AllGraphs(4)); got != 64 {
		t.Errorf("|G4| = %d, want 64", got)
	}
	for _, g := range AllGraphs(3) {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSeedSearchLemma41Demo(t *testing.T) {
	// Lemma 4.1 at executable scale: one seed that weak-2-colors EVERY
	// labeled 4-node graph. The counting argument guarantees existence as
	// long as the per-instance failure probability is below 1/seedSpace
	// on average; the test exhibits the seed.
	p := NeighborhoodSplitting(3)
	instances := AllGraphs(4)
	res, err := SeedSearch(p, instances, seqIDs, 4096)
	if err != nil {
		t.Fatalf("no universal seed found: %v", err)
	}
	// Re-verify the winner.
	for _, g := range instances {
		out := p.Solve(res.Seed, g, seqIDs(g))
		if !p.Valid(g, seqIDs(g), out) {
			t.Fatalf("winning seed %d fails on %v", res.Seed, g)
		}
	}
	t.Logf("universal seed %d found among %d (instances: %d)", res.Seed, res.Tried, len(instances))
}

func TestSeedSearchFailureSurface(t *testing.T) {
	// A seed space of size 1 cannot cover all instances: seed 0 colors all
	// nodes the same way on some graph. The error path must report the
	// failure distribution.
	p := NeighborhoodSplitting(3)
	instances := AllGraphs(4)
	res, err := SeedSearch(p, instances, seqIDs, 1)
	if err == nil {
		t.Skip("seed 0 happened to be universal; acceptable but unexpected")
	}
	if len(res.PerSeedFailures) != 1 || res.PerSeedFailures[0] == 0 {
		t.Errorf("failure accounting: %+v", res.PerSeedFailures)
	}
}

func TestInflatedENConfigTradeOff(t *testing.T) {
	// Lying about n: the declared size drives the parameters (and hence
	// both the round cost and the error bound).
	small := InflatedENConfig(64)
	big := InflatedENConfig(1 << 20)
	if big.MaxPhases <= small.MaxPhases || big.RadiusCap <= small.RadiusCap {
		t.Errorf("inflation did not grow parameters: %+v vs %+v", small, big)
	}
}

func TestInflatedENRunsOnSmallGraph(t *testing.T) {
	// Run EN on a 64-node ring while declaring N = 4096: rounds grow with
	// log N, and the decomposition is still valid (Theorem 4.3's
	// "cannot distinguish G from a component of G′" argument).
	g := graph.Ring(64)
	cfg := InflatedENConfig(4096)
	d, res, err := decomp.ElkinNeiman(g, randomness.NewFull(3), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(g, 0, 0); err != nil {
		t.Fatal(err)
	}
	baseCfg := decomp.ENConfig{}
	_, baseRes, err := decomp.ElkinNeiman(g, randomness.NewFull(3), nil, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= baseRes.Rounds {
		t.Logf("inflated rounds %d vs base %d (inflation can finish early; phase length still grew)", res.Rounds, baseRes.Rounds)
	}
}

func TestRequiredInflation(t *testing.T) {
	// log2(N) = n²/c: for n=10, c=2 → 50 bits.
	if got := RequiredInflation(10, 2); got != 50 {
		t.Errorf("RequiredInflation(10,2) = %v, want 50", got)
	}
}
