// Package derand implements the paper's Section 4 derandomization devices:
//
//   - Lemma 4.1's counting argument, made executable at small scale:
//     SeedSearch enumerates a bounded seed space against EVERY graph in a
//     family and returns a single seed that succeeds on all of them —
//     which is precisely how an error probability below 2^{-n²} implies a
//     deterministic algorithm (fewer than 2^{n²} graphs exist to fail on).
//
//   - Theorem 4.3/4.6's "lying about n": InflatedENConfig derives the
//     Elkin–Neiman parameters for a declared size N ≥ n, so running on an
//     n-node graph inherits the failure probability δ(N) at cost T(N) —
//     the time-vs-error trade the theorems exploit.
package derand

import (
	"fmt"

	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

// Problem is a locally checkable problem paired with a seeded zero-round
// algorithm, as used by the seed-search demonstration: Solve computes every
// node's output from (seed, node ID) only, and Valid checks the result.
type Problem struct {
	Name  string
	Solve func(seed uint64, g *graph.Graph, ids []uint64) []int
	Valid func(g *graph.Graph, ids []uint64, out []int) bool
}

// SeedSearchResult reports the outcome of the Lemma 4.1 enumeration.
type SeedSearchResult struct {
	// Seed is the first seed that succeeded on every instance.
	Seed uint64
	// Tried is the number of seeds examined.
	Tried int
	// PerSeedFailures[s] counts how many instances seed s failed on —
	// the empirical version of the union bound in the lemma's proof.
	PerSeedFailures []int
}

// SeedSearch enumerates seeds 0..seedSpace-1 against every provided
// instance and returns the first seed valid on all of them. The existence
// of such a seed for a rich enough family is the content of Lemma 4.1: if
// every seed failed somewhere, the algorithm's success probability could
// not exceed 1 − 1/seedSpace on the worst instance.
func SeedSearch(p Problem, instances []*graph.Graph, idsOf func(*graph.Graph) []uint64, seedSpace int) (*SeedSearchResult, error) {
	res := &SeedSearchResult{PerSeedFailures: make([]int, seedSpace)}
	winner := -1
	for s := 0; s < seedSpace; s++ {
		fails := 0
		for _, g := range instances {
			ids := idsOf(g)
			out := p.Solve(uint64(s), g, ids)
			if !p.Valid(g, ids, out) {
				fails++
			}
		}
		res.PerSeedFailures[s] = fails
		if fails == 0 && winner < 0 {
			winner = s
		}
	}
	res.Tried = seedSpace
	if winner < 0 {
		return res, fmt.Errorf("derand: no seed in [0,%d) works on all %d instances — the algorithm's error probability is too high for this seed space",
			seedSpace, len(instances))
	}
	res.Seed = uint64(winner)
	return res, nil
}

// AllGraphs enumerates every labeled simple graph on n nodes (2^C(n,2)
// graphs — keep n tiny). This is the family Gn from the Lemma 4.1 proof,
// restricted to a fixed ID assignment.
func AllGraphs(n int) []*graph.Graph {
	pairs := n * (n - 1) / 2
	out := make([]*graph.Graph, 0, 1<<pairs)
	for mask := 0; mask < 1<<pairs; mask++ {
		b := graph.NewBuilder(n)
		idx := 0
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if mask>>idx&1 == 1 {
					b.AddEdge(u, v)
				}
				idx++
			}
		}
		out = append(out, b.Graph())
	}
	return out
}

// NeighborhoodSplitting is the demonstration problem for SeedSearch, a
// graph-native miniature of the splitting problem: every node whose degree
// is at least minDegree must see BOTH colors among its neighbors. A
// zero-round algorithm colors each node by one seed-derived bit; the
// per-node failure probability is 2^{1-minDegree}, so for rich seed spaces
// a universal seed exists — and, unlike problems constraining low-degree
// nodes (a single edge can never be weak-2-colored in zero rounds), the
// constraint is satisfiable by every balanced coloring.
func NeighborhoodSplitting(minDegree int) Problem {
	return Problem{
		Name: fmt.Sprintf("neighborhood-splitting(d>=%d)", minDegree),
		Solve: func(seed uint64, g *graph.Graph, ids []uint64) []int {
			out := make([]int, g.N())
			// Expand the seed into family coefficients by hashing, so that
			// even small seed spaces explore diverse colorings.
			fam, err := randomness.NewKWiseFromSeed(16, []uint64{
				prng.Hash64(seed),
				prng.Hash64(seed ^ 0xA5A5A5A5),
				prng.Hash64(seed ^ 0x5A5A5A5A),
			})
			if err != nil {
				panic(err) // static parameters; cannot fail
			}
			for v := range out {
				out[v] = int(fam.Bit(ids[v]))
			}
			return out
		},
		Valid: func(g *graph.Graph, ids []uint64, out []int) bool {
			for v := 0; v < g.N(); v++ {
				if g.Degree(v) < minDegree {
					continue
				}
				var saw [2]bool
				for _, w := range g.Neighbors(v) {
					saw[out[w]&1] = true
				}
				if !saw[0] || !saw[1] {
					return false
				}
			}
			return true
		},
	}
}

// InflatedENConfig returns the Elkin–Neiman configuration a non-uniform
// algorithm would use when told the network has declaredN nodes: phase
// count and radius cap scale with log declaredN, so the per-node failure
// probability drops to poly(1/declaredN) while the round complexity grows
// to T(declaredN) — the Theorem 4.3 trade-off, measured by experiment E7.
func InflatedENConfig(declaredN int) decomp.ENConfig {
	lg := 0
	for 1<<lg < declaredN {
		lg++
	}
	return decomp.ENConfig{
		MaxPhases: 12*lg + 8,
		RadiusCap: 2*lg + 4,
	}
}

// RequiredInflation computes the declared size N needed by Theorem 4.3 /
// Lemma 4.1 so that the failure bound δ(N) = N^{-c} falls below 2^{-n²}:
// the smallest N with c·log₂(N) ≥ n². (Astronomically large for real n —
// that is the theorem's point; the function exists so experiments can
// print the trade-off curve.)
func RequiredInflation(n, c int) float64 {
	// log2(N) >= n^2 / c  =>  N = 2^{n²/c}.
	return float64(n*n) / float64(c)
}
