package experiments

import (
	"fmt"
	"os"
	"strings"

	"randlocal/internal/check"
	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/graph/csrfile"
	"randlocal/internal/mis"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

// E11 is the engine-scale sweep the zero-alloc work unlocked: the paper's
// headline claims are asymptotic, so the round/bit columns are recorded as
// *curves* over n up to 2^23 — together with the per-round live-fringe
// trajectory (Result.ActivePerRound), whose geometric collapse is the
// shattering-tail shape the Theorem 4.2 analyses reason about. Each record
// keeps its full ActivePerRound curve in the JSON emission. From
// e11FileBackedMin up, the instance is built out of core: the generator
// streams into a temporary on-disk CSR file (peak heap O(n)) and the
// algorithms execute over the read-only mapping — the same GNPConnectedStream
// ≡ GNPConnected guarantee the csrfile tests pin means the records are
// seed-deterministic either way.

var e11Units = []string{"EN/gnp(4/n)", "Luby/gnp(4/n)"}

// e11FileBackedMin is the size from which E11 builds its instance through the
// out-of-core path instead of in RAM.
const e11FileBackedMin = 1 << 23

func e11Sizes(opt Options) []int {
	if opt.Quick {
		return []int{1 << 10, 1 << 12}
	}
	return []int{1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 23}
}

func e11Trials(opt Options, n int) int {
	if opt.Quick {
		return 1
	}
	if n >= 1<<20 {
		return 1 // one trial per run at engine scale; resume adds more
	}
	return 2
}

// e11RadiusCap matches BenchmarkENDecomp: capping the geometric radius draw
// at 8 keeps a phase at 10 rounds so the 2^20+ sweeps stay tractable while
// the message pattern (top-2 candidate floods on every live port) matches
// the real construction.
const e11RadiusCap = 8

// e11Graph builds the sweep's instance: in RAM below e11FileBackedMin,
// through the streaming builder + mmap loader at and above it. cleanup
// releases the mapping and removes the temporary file; it is non-nil exactly
// when err is nil.
func e11Graph(n int, seed uint64) (*graph.Graph, func(), error) {
	p := 4.0 / float64(n)
	if n < e11FileBackedMin {
		return graph.GNPConnected(n, p, prng.New(seed)), func() {}, nil
	}
	f, err := os.CreateTemp("", "e11-*.csr")
	if err != nil {
		return nil, nil, err
	}
	path := f.Name()
	f.Close()
	b, err := csrfile.NewBuilder(path, n)
	if err != nil {
		os.Remove(path)
		return nil, nil, err
	}
	graph.GNPConnectedStream(n, p, prng.New(seed), b.AddEdge)
	if _, err := b.Finalize(); err != nil {
		os.Remove(path)
		return nil, nil, err
	}
	g, closer, err := graph.OpenCSRFile(path)
	if err != nil {
		os.Remove(path)
		return nil, nil, err
	}
	return g, func() {
		closer.Close()
		os.Remove(path)
	}, nil
}

var E11 = &Experiment{
	ID:    "E11",
	Title: "Scale sweep to n = 2^23: round/bit scaling and the shattering tail",
	Claim: "rounds/log² n (EN) and rounds/log n (Luby) stay flat to n = 2^23; ActivePerRound collapses geometrically (the shattering tail)",
	Specs: func(opt Options) []RunSpec {
		var specs []RunSpec
		for _, n := range e11Sizes(opt) {
			for _, unit := range e11Units {
				for t := 0; t < e11Trials(opt, n); t++ {
					specs = append(specs, RunSpec{Experiment: "E11", Unit: unit, N: n, Trial: t})
				}
			}
		}
		return specs
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		rec := newRecord(spec)
		seed := spec.Seed(opt.Seed)
		n := spec.N
		g, cleanup, err := e11Graph(n, seed)
		if err != nil {
			return rec.fail(err.Error())
		}
		defer cleanup()
		switch {
		case strings.HasPrefix(spec.Unit, "EN/"):
			d, res, err := decomp.ElkinNeiman(g, randomness.NewFull(seed+1), nil, decomp.ENConfig{RadiusCap: e11RadiusCap})
			if err != nil {
				return rec.fail(err.Error())
			}
			if err := d.Validate(g, 0, 0); err != nil {
				return rec.fail(err.Error())
			}
			st := d.StatsOf(g)
			rec.set("colors", float64(st.Colors))
			rec.set("diam", float64(st.MaxDiameter))
			rec.set("rounds", float64(res.Rounds))
			rec.set("messages", float64(res.Messages))
			rec.set("bits", float64(res.BitsTotal))
			rec.set("maxMsgBits", float64(res.MaxMessageBits))
			rec.Curve = res.ActivePerRound
		case strings.HasPrefix(spec.Unit, "Luby/"):
			in, res, err := mis.Luby(g, randomness.NewFull(seed+1), nil, mis.LubyConfig{})
			if err != nil {
				return rec.fail(err.Error())
			}
			if err := check.MIS(g, in); err != nil {
				return rec.fail(err.Error())
			}
			rec.set("rounds", float64(res.Rounds))
			rec.set("messages", float64(res.Messages))
			rec.set("bits", float64(res.BitsTotal))
			rec.set("maxMsgBits", float64(res.MaxMessageBits))
			rec.Curve = res.ActivePerRound
		default:
			return rec.fail("unknown unit " + spec.Unit)
		}
		// Tail shape: the first round where the live fringe is at or below
		// 1% of n, and how many rounds the run then spends in that tail.
		tailStart := len(rec.Curve)
		for r, a := range rec.Curve {
			if a*100 <= n {
				tailStart = r
				break
			}
		}
		rec.set("tailStart", float64(tailStart))
		rec.set("tailRounds", float64(len(rec.Curve)-tailStart))
		return rec
	},
	Table: func(opt Options, rep *Report) *Table {
		t := tableFor("E11", []string{"algo", "n", "rounds", "rnds/lg", "rnds/lg²", "messages", "bits/node", "maxMsg", "act≤1%@r", "tail", "trials", "failures"})
		for _, unit := range e11Units {
			algo := unit[:strings.IndexByte(unit, '/')]
			for _, n := range e11Sizes(opt) {
				recs := rep.trialsOf("E11", unit, n, e11Trials(opt, n))
				if len(recs) == 0 {
					continue
				}
				r := summarize(collect(recs, "rounds"))
				msgs := summarize(collect(recs, "messages"))
				bits := summarize(collect(recs, "bits"))
				maxMsg := summarize(collect(recs, "maxMsgBits"))
				tailStart := summarize(collect(recs, "tailStart"))
				tailRounds := summarize(collect(recs, "tailRounds"))
				t.AddRow(algo, itoa(n), d0(r.mean),
					fmt.Sprintf("%.2f", r.mean/lg2(n)),
					fmt.Sprintf("%.2f", r.mean/(lg2(n)*lg2(n))),
					d0(msgs.mean), f1(bits.mean/float64(n)), d0(maxMsg.max),
					d0(tailStart.mean), d0(tailRounds.mean), itoa(len(recs)), itoa(failures(recs)))
			}
		}
		// Shattering-tail curves: the largest size's live-fringe
		// trajectory, downsampled to at most 24 points per unit.
		for _, unit := range e11Units {
			ns := e11Sizes(opt)
			big := ns[len(ns)-1]
			rec := rep.Get("E11", unit, big, 0)
			if rec == nil || len(rec.Curve) == 0 {
				continue
			}
			t.Notes = append(t.Notes, fmt.Sprintf("ActivePerRound %s n=%d (every %d rounds): %s",
				unit, big, sampleStep(len(rec.Curve), 24), sparkline(rec.Curve, 24)))
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("EN runs with RadiusCap=%d (the BenchmarkENDecomp setting) so a phase is %d rounds; the scaling columns compare like against like across n", e11RadiusCap, e11RadiusCap+2),
			fmt.Sprintf("n >= %d rows run out of core: the instance streams into a temporary on-disk CSR file and the algorithms execute over its read-only mapping", e11FileBackedMin),
			"full per-round curves for every record are in the JSON emission (active_per_round)")
		return t
	},
}

// sampleStep returns the stride that downsamples length points to at most
// maxPoints.
func sampleStep(length, maxPoints int) int {
	step := (length + maxPoints - 1) / maxPoints
	if step < 1 {
		step = 1
	}
	return step
}

// sparkline renders a curve as a short series of sampled counts.
func sparkline(curve []int, maxPoints int) string {
	step := sampleStep(len(curve), maxPoints)
	var b strings.Builder
	for i := 0; i < len(curve); i += step {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", curve[i])
	}
	if (len(curve)-1)%step != 0 {
		fmt.Fprintf(&b, " %d", curve[len(curve)-1])
	}
	return b.String()
}
