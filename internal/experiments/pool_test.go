package experiments

import (
	"fmt"
	"sync/atomic"
	"testing"

	"randlocal/internal/check"
	"randlocal/internal/graph"
	"randlocal/internal/mis"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

func TestTrialPoolRunsEverything(t *testing.T) {
	pool := NewTrialPool(3, 2)
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		if err := pool.Submit(func() { ran.Add(1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	pool.Close()
	if got := ran.Load(); got != 50 {
		t.Fatalf("ran %d tasks, want 50", got)
	}
	if err := pool.Submit(func() {}); err != ErrPoolClosed {
		t.Fatalf("Submit after Close: %v, want ErrPoolClosed", err)
	}
	if err := pool.TrySubmit(func() {}); err != ErrPoolClosed {
		t.Fatalf("TrySubmit after Close: %v, want ErrPoolClosed", err)
	}
	pool.Close() // idempotent
}

func TestTrialPoolTrySubmitBounded(t *testing.T) {
	pool := NewTrialPool(1, 1)
	gate := make(chan struct{})
	var ran atomic.Int64
	blocked := func() { <-gate; ran.Add(1) }
	// First task occupies the single worker; second fills the backlog; the
	// third must bounce instead of blocking.
	if err := pool.TrySubmit(blocked); err != nil {
		t.Fatal(err)
	}
	// The worker may not have picked the first task up yet; feed the backlog
	// until it reports full, which must happen within two acceptances.
	accepted := 1
	for ; accepted < 4; accepted++ {
		if err := pool.TrySubmit(blocked); err == ErrPoolBusy {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if accepted > 2 {
		t.Fatalf("backlog of 1 accepted %d pending tasks", accepted)
	}
	close(gate)
	pool.Close()
	if got := ran.Load(); got != int64(accepted) {
		t.Fatalf("ran %d, want %d (drain must run accepted tasks)", got, accepted)
	}
}

// poolBenchExperiment is a synthetic sweep for the pooled-Runner tests and
// benchmark: each trial builds a GNP instance from the spec's instance seed
// and solves MIS with Luby — the same shape every real experiment has.
func poolBenchExperiment(n, trials int) *Experiment {
	return &Experiment{
		ID:    "EP",
		Title: "pooled-runner probe",
		Specs: func(opt Options) []RunSpec {
			specs := make([]RunSpec, trials)
			for t := range specs {
				specs[t] = RunSpec{Experiment: "EP", Unit: "Luby", N: n, Trial: t}
			}
			return specs
		},
		Run: func(opt Options, spec RunSpec) *RunRecord {
			rec := newRecord(spec)
			g := graph.GNPConnected(spec.N, 4.0/float64(spec.N), prng.New(spec.instanceSeed(opt.Seed)))
			in, res, err := mis.Luby(g, randomness.NewFull(spec.Seed(opt.Seed)), nil, mis.LubyConfig{})
			if err != nil {
				return rec.fail(err.Error())
			}
			if err := check.MIS(g, in); err != nil {
				return rec.fail(err.Error())
			}
			rec.set("rounds", float64(res.Rounds))
			rec.set("messages", float64(res.Messages))
			rec.set("bits", float64(res.BitsTotal))
			return rec
		},
	}
}

// TestRunnerPooledRecordsIdentical proves Options.Pool is purely a
// performance lever: the same sweep with and without a warm engine pool
// produces identical measurements in every record.
func TestRunnerPooledRecordsIdentical(t *testing.T) {
	defer sim.SetDefaultPool(nil)
	const n, trials = 220, 4
	exp := poolBenchExperiment(n, trials)
	run := func(pool *sim.EnginePool) *Report {
		t.Helper()
		r := &Runner{Opt: Options{Seed: 2026, Pool: pool}, Jobs: 2}
		rep, err := r.Run([]*Experiment{exp})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cold := run(nil)
	warm := run(sim.NewEnginePool())
	for trial := 0; trial < trials; trial++ {
		want := cold.Get("EP", "Luby", n, trial)
		got := warm.Get("EP", "Luby", n, trial)
		if want == nil || got == nil {
			t.Fatalf("trial %d: missing record (cold=%v warm=%v)", trial, want != nil, got != nil)
		}
		if want.OK != got.OK || fmt.Sprint(want.Values) != fmt.Sprint(got.Values) {
			t.Errorf("trial %d: pooled record diverged:\ncold: ok=%v %v\nwarm: ok=%v %v",
				trial, want.OK, want.Values, got.OK, got.Values)
		}
	}
}

// BenchmarkRunnerPooled measures the Runner win the engine pool buys on a
// multi-trial sweep: same specs, same records, cold vs warm buffers.
func BenchmarkRunnerPooled(b *testing.B) {
	defer sim.SetDefaultPool(nil)
	exp := poolBenchExperiment(4096, 8)
	bench := func(b *testing.B, pool *sim.EnginePool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := &Runner{Opt: Options{Seed: 2026, Pool: pool}, Jobs: 2}
			if _, err := r.Run([]*Experiment{exp}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cold", func(b *testing.B) { bench(b, nil) })
	b.Run("warm", func(b *testing.B) {
		pool := sim.NewEnginePool()
		bench(b, pool)
	})
}
