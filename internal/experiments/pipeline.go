package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"
)

// checkpointFile is the append-only JSONL journal inside an output
// directory: a header line identifying the run's options, then one
// RunRecord per completed spec. Records are appended as they complete, so
// an interrupted sweep — a crash, a kill, a -limit stop — resumes from
// exactly the trials it finished.
const checkpointFile = "checkpoint.jsonl"

// recordsJSONFile and recordsCSVFile are the machine-readable emissions
// written next to the text tables once a run completes.
const (
	recordsJSONFile = "records.json"
	recordsCSVFile  = "records.csv"
)

// checkpointHeader is the journal's first line; resuming with different
// options would silently mix incompatible records, so a mismatch aborts.
type checkpointHeader struct {
	Schema int    `json:"schema"`
	Seed   uint64 `json:"seed"`
	Quick  bool   `json:"quick"`
}

// Runner executes experiment sweeps as a RunSpec → RunRecord pipeline:
// specs are expanded per experiment, already-checkpointed specs are skipped,
// and the remainder runs on a trial-level worker pool. Every completed
// record is appended to the checkpoint journal immediately, so progress
// survives interruption at (experiment, unit, size, trial) granularity.
type Runner struct {
	// Opt is the experiment options (scale, master seed, engine choice).
	Opt Options
	// OutDir is the checkpoint/emission directory; "" runs fully in
	// memory (no resume, no JSON/CSV).
	OutDir string
	// Jobs is the worker-pool width for independent trials; <= 0 means
	// GOMAXPROCS. Trials are independent by construction (each spec owns
	// its seed), but note each trial may itself start simulations on the
	// engine Opt.Scheduler selects.
	Jobs int
	// Limit, when positive, stops the run after that many *new* records —
	// the controlled-interruption hook the CI smoke job uses to exercise
	// the resume path deterministically. The checkpoint stays valid; a
	// later run with the same OutDir picks up the rest.
	Limit int
	// Log receives progress lines; nil is silent.
	Log io.Writer
}

// Report is the outcome of one Runner.Run: every record (resumed and fresh)
// keyed by spec, plus completion metadata.
type Report struct {
	Opt         Options
	Experiments []*Experiment
	records     map[string]*RunRecord
	// Resumed counts records loaded from the checkpoint, Ran records
	// executed by this process; LimitHit reports an early -limit stop.
	Resumed  int
	Ran      int
	LimitHit bool
}

// Get returns the record of one spec, or nil when it has not run (possible
// only after a Limit stop).
func (rep *Report) Get(id, unit string, n, trial int) *RunRecord {
	return rep.records[RunSpec{Experiment: id, Unit: unit, N: n, Trial: trial}.Key()]
}

// trialsOf collects the records of consecutive trials 0..count-1, skipping
// gaps.
func (rep *Report) trialsOf(id, unit string, n, count int) []*RunRecord {
	var out []*RunRecord
	for t := 0; t < count; t++ {
		if rec := rep.Get(id, unit, n, t); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}

// RecordSet assembles the report's records, sorted for stable emission.
func (rep *Report) RecordSet() *RecordSet {
	recs := make([]*RunRecord, 0, len(rep.records))
	for _, r := range rep.records {
		recs = append(recs, r)
	}
	sortRecords(recs)
	return &RecordSet{Schema: RecordSchema, Seed: rep.Opt.Seed, Quick: rep.Opt.Quick, Records: recs}
}

// Complete reports whether every spec of every experiment has a record.
func (rep *Report) Complete() bool {
	for _, exp := range rep.Experiments {
		for _, spec := range exp.Specs(rep.Opt) {
			if rep.records[spec.Key()] == nil {
				return false
			}
		}
	}
	return true
}

// Run executes the given experiments. It returns the report together with
// any I/O error; trial-level failures never abort the sweep — they land in
// their records' OK/Err fields and surface in the tables.
func (r *Runner) Run(exps []*Experiment) (*Report, error) {
	r.Opt.applyScheduler()
	rep := &Report{Opt: r.Opt, Experiments: exps, records: map[string]*RunRecord{}}

	// Expand the sweep and index spec ownership.
	type job struct {
		spec RunSpec
		exp  *Experiment
	}
	var jobs []job
	for _, exp := range exps {
		for _, spec := range exp.Specs(r.Opt) {
			if spec.Experiment != exp.ID {
				return nil, fmt.Errorf("experiments: %s produced spec %s", exp.ID, spec.Key())
			}
			jobs = append(jobs, job{spec, exp})
		}
	}

	// Resume from the checkpoint journal, then open it for appending.
	var ckpt *os.File
	if r.OutDir != "" {
		if err := os.MkdirAll(r.OutDir, 0o755); err != nil {
			return nil, err
		}
		path := filepath.Join(r.OutDir, checkpointFile)
		loaded, err := loadCheckpoint(path, r.Opt)
		if err != nil {
			return nil, err
		}
		for k, rec := range loaded {
			rep.records[k] = rec
		}
		rep.Resumed = len(loaded)
		ckpt, err = openCheckpoint(path, r.Opt, len(loaded) > 0)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
	}

	// What still needs to run, in sweep order.
	var todo []job
	for _, j := range jobs {
		if rep.records[j.spec.Key()] == nil {
			todo = append(todo, j)
		}
	}
	if r.Limit > 0 && len(todo) > r.Limit {
		todo = todo[:r.Limit]
		rep.LimitHit = true
	}
	r.logf("experiments: %d specs total, %d resumed, %d to run", len(jobs), rep.Resumed, len(todo))

	// The trial pool (shared machinery with the locsimd daemon, see
	// pool.go). Each worker runs specs to records; the collector owns the
	// report map and the checkpoint file.
	workers := r.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(todo) {
		workers = len(todo)
	}
	var mu sync.Mutex
	var ioErr error
	if workers > 1 {
		pool := NewTrialPool(workers, 0)
		var wg sync.WaitGroup
		for _, j := range todo {
			wg.Add(1)
			if err := pool.Submit(func() {
				defer wg.Done()
				rec := runSpec(r.Opt, j)
				mu.Lock()
				r.collect(rep, ckpt, rec, &ioErr)
				mu.Unlock()
			}); err != nil {
				// Unreachable — the Runner owns this pool and never closes it
				// mid-sweep — but never leak the WaitGroup slot.
				wg.Done()
			}
		}
		wg.Wait()
		pool.Close()
	} else {
		for _, j := range todo {
			rec := runSpec(r.Opt, j)
			r.collect(rep, ckpt, rec, &ioErr)
		}
	}
	if ioErr != nil {
		return rep, ioErr
	}

	// Emit the machine-readable outputs only for complete runs: a partial
	// records.json would look exactly like a finished sweep.
	if r.OutDir != "" && !rep.LimitHit && rep.Complete() {
		if err := rep.WriteOutputs(r.OutDir); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// runSpec executes one spec, timing it.
func runSpec(opt Options, j struct {
	spec RunSpec
	exp  *Experiment
}) *RunRecord {
	start := time.Now()
	rec := j.exp.Run(opt, j.spec)
	if rec == nil {
		rec = newRecord(j.spec).fail("experiment returned no record")
	}
	rec.ElapsedNS = time.Since(start).Nanoseconds()
	return rec
}

// collect files one fresh record: into the report, onto the journal.
// Callers serialize access.
func (r *Runner) collect(rep *Report, ckpt *os.File, rec *RunRecord, ioErr *error) {
	rep.records[rec.Spec.Key()] = rec
	rep.Ran++
	if ckpt != nil && *ioErr == nil {
		if err := appendRecord(ckpt, rec); err != nil {
			*ioErr = err
		}
	}
	if d := time.Duration(rec.ElapsedNS); d >= time.Second {
		r.logf("experiments: %s done in %v", rec.Spec.Key(), d.Round(time.Millisecond))
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// WriteOutputs writes records.json and records.csv into dir.
func (rep *Report) WriteOutputs(dir string) error {
	rs := rep.RecordSet()
	jf, err := os.Create(filepath.Join(dir, recordsJSONFile))
	if err != nil {
		return err
	}
	if err := rs.WriteJSON(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	cf, err := os.Create(filepath.Join(dir, recordsCSVFile))
	if err != nil {
		return err
	}
	if err := rs.WriteCSV(cf); err != nil {
		cf.Close()
		return err
	}
	return cf.Close()
}

// loadCheckpoint reads a journal, returning the valid records keyed by
// spec. A missing file means a fresh run. The final line of a killed run
// may be torn; any line that does not parse or validate is skipped — its
// spec simply re-runs.
func loadCheckpoint(path string, opt Options) (map[string]*RunRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, sc.Err() // empty journal: treat as fresh
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("experiments: %s: unreadable header: %w", path, err)
	}
	if hdr.Schema != RecordSchema || hdr.Seed != opt.Seed || hdr.Quick != opt.Quick {
		return nil, fmt.Errorf("experiments: %s was checkpointed with schema=%d seed=%d quick=%v; rerun with matching options or a fresh -out directory",
			path, hdr.Schema, hdr.Seed, hdr.Quick)
	}
	out := map[string]*RunRecord{}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec RunRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn or corrupt line: re-run its spec
		}
		if rec.Validate() != nil {
			continue
		}
		out[rec.Spec.Key()] = &rec
	}
	return out, sc.Err()
}

// openCheckpoint opens the journal for appending, writing the header first
// on a fresh file. A journal whose last line was torn by a mid-write kill
// is terminated with a newline first, so the next append starts a fresh
// line instead of merging into (and corrupting) the torn record.
func openCheckpoint(path string, opt Options, resumed bool) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	switch {
	case st.Size() == 0 && !resumed:
		hdr, _ := json.Marshal(checkpointHeader{Schema: RecordSchema, Seed: opt.Seed, Quick: opt.Quick})
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, err
		}
	case st.Size() > 0:
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, st.Size()-1); err != nil {
			f.Close()
			return nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return f, nil
}

// appendRecord journals one completed record.
func appendRecord(f *os.File, rec *RunRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	_, err = f.Write(append(b, '\n'))
	return err
}
