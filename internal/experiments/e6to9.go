package experiments

import (
	"fmt"

	"randlocal/internal/check"
	"randlocal/internal/coloring"
	"randlocal/internal/decomp"
	"randlocal/internal/derand"
	"randlocal/internal/graph"
	"randlocal/internal/mis"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
	"randlocal/internal/slocal"
	"randlocal/internal/splitting"
)

// --- E6 ---------------------------------------------------------------------

var e6Units = []string{"phases=1", "phases=2", "phases=4", "phases=full"}

func e6Sizes(opt Options) []int {
	if opt.Quick {
		return []int{300, 600}
	}
	return []int{300, 600, 1200}
}

func e6Phases(unit string) int {
	switch unit {
	case "phases=1":
		return 1
	case "phases=2":
		return 2
	case "phases=4":
		return 4
	default:
		return 0 // full strength
	}
}

// E6 measures Theorem 4.2: the shattering construction's leftover set and
// its (2t+1)-separated core, as a function of the strength of the randomized
// first phase. The separated-core size is the quantity the theorem's boosted
// error bound 1−n^{−Ω(K)} controls.
var E6 = &Experiment{
	ID:    "E6",
	Title: "Error-probability boosting by shattering (Thm 4.2)",
	Claim: "the (2t+1)-separated leftover core has size ≤ K with prob 1−n^{−Ω(K)}; the deterministic repair never fails",
	Specs: func(opt Options) []RunSpec {
		return sweep("E6", e6Units, e6Sizes(opt), trials(opt, 10))
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		rec := newRecord(spec)
		seed := spec.Seed(opt.Seed)
		g := graph.GNPConnected(spec.N, 3.0/float64(spec.N), prng.New(seed))
		res, err := decomp.Shattering(g, randomness.NewFull(seed+1), decomp.ShatteringConfig{ENPhases: e6Phases(spec.Unit)})
		if err != nil {
			return rec.fail(err.Error())
		}
		rec.set("repaired", boolVal(res.Decomposition.ValidateWeak(g, 0, 0) == nil))
		rec.set("leftover", float64(res.Leftover))
		rec.set("separated", float64(res.SeparatedLeftover))
		return rec
	},
	Table: func(opt Options, rep *Report) *Table {
		t := tableFor("E6", []string{"n", "ENphases", "trials", "leftover(avg)", "leftover(max)", "separated(avg)", "separated(max)", "repairedOK"})
		tr := trials(opt, 10)
		for _, n := range e6Sizes(opt) {
			for _, unit := range e6Units {
				recs := rep.trialsOf("E6", unit, n, tr)
				l := summarize(collect(recs, "leftover"))
				s := summarize(collect(recs, "separated"))
				repaired := 0
				for _, v := range collect(recs, "repaired") {
					repaired += int(v)
				}
				label := itoa(e6Phases(unit))
				if e6Phases(unit) == 0 {
					label = "full"
				}
				t.AddRow(itoa(n), label, itoa(tr), f1(l.mean), d0(l.max), f1(s.mean), d0(s.max),
					fmt.Sprintf("%d/%d", repaired, tr))
			}
		}
		t.Notes = append(t.Notes,
			"weakening phase one (fewer ENphases) inflates the leftover set; the separated core stays tiny, and the deterministic repair always completes",
			"at full strength the leftover is empty and the error probability is governed solely by Pr[|separated| > K]")
		return t
	},
}

// --- E7 ---------------------------------------------------------------------

var e7LieDeclared = []int{128, 1024, 1 << 14}

func e7LieTrials(opt Options) int { return trials(opt, 20) }

// E7 measures Lemma 4.1 and Theorem 4.3: exhaustive seed search over all
// labeled graphs (the counting argument, executable at n=4), and the
// lying-about-n round-for-error trade on the Elkin–Neiman algorithm.
var E7 = &Experiment{
	ID:    "E7",
	Title: "Derandomization: seed search (Lemma 4.1) and lying about n (Thm 4.3)",
	Claim: "error < 1/|seedspace| on every instance ⇒ some seed works everywhere; declaring N≫n buys error δ(N) at cost T(N)",
	Specs: func(opt Options) []RunSpec {
		specs := []RunSpec{{Experiment: "E7", Unit: "seed-search", N: 4, Trial: 0}}
		for _, declared := range e7LieDeclared {
			for t := 0; t < e7LieTrials(opt); t++ {
				specs = append(specs, RunSpec{Experiment: "E7", Unit: fmt.Sprintf("lie/N=%d", declared), N: 128, Trial: t})
			}
		}
		return specs
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		rec := newRecord(spec)
		if spec.Unit == "seed-search" {
			p := derand.NeighborhoodSplitting(3)
			instances := derand.AllGraphs(4)
			rec.set("instances", float64(len(instances)))
			res, err := derand.SeedSearch(p, instances, func(g *graph.Graph) []uint64 {
				return sim.SequentialIDs(g.N())
			}, 4096)
			if err != nil {
				return rec.fail("no universal seed (unexpected): " + err.Error())
			}
			failing := 0
			for _, f := range res.PerSeedFailures {
				if f > 0 {
					failing++
				}
			}
			rec.set("universalSeed", float64(res.Seed))
			rec.set("failingSeeds", float64(failing))
			rec.set("triedSeeds", float64(res.Tried))
			return rec
		}
		var declared int
		fmt.Sscanf(spec.Unit, "lie/N=%d", &declared)
		if declared == 0 {
			return rec.fail("unknown unit " + spec.Unit)
		}
		seed := spec.Seed(opt.Seed)
		// One graph shared across every declared-N row (and their trials):
		// the round-for-error trade is measured on a fixed instance.
		g := graph.GNPConnected(spec.N, 4.0/float64(spec.N), prng.New(spec.sharedSeed(opt.Seed, "graph")))
		cfg := derand.InflatedENConfig(declared)
		d, sres, err := decomp.ElkinNeiman(g, randomness.NewFull(seed), nil, cfg)
		if err != nil || d.Validate(g, 0, 0) != nil {
			rec.set("success", 0)
			return rec
		}
		rec.set("success", 1)
		rec.set("rounds", float64(sres.Rounds))
		return rec
	},
	Table: func(opt Options, rep *Report) *Table {
		t := tableFor("E7", []string{"probe", "param", "value", "detail"})
		if rec := rep.Get("E7", "seed-search", 4, 0); rec != nil {
			if !rec.OK {
				t.AddRow("seed-search", "instances", d0(rec.val("instances")), "NO universal seed (unexpected)")
			} else {
				t.AddRow("seed-search", "instances", d0(rec.val("instances")), "all labeled 4-node graphs")
				t.AddRow("seed-search", "universal seed", d0(rec.val("universalSeed")),
					fmt.Sprintf("%.0f/%.0f seeds fail somewhere", rec.val("failingSeeds"), rec.val("triedSeeds")))
			}
		}
		for _, declared := range e7LieDeclared {
			tr := e7LieTrials(opt)
			recs := rep.trialsOf("E7", fmt.Sprintf("lie/N=%d", declared), 128, tr)
			fails := 0
			var rounds []float64
			for _, r := range recs {
				if r.OK && r.val("success") == 1 {
					rounds = append(rounds, r.val("rounds"))
				} else {
					fails++
				}
			}
			r := summarize(rounds)
			t.AddRow("lie-about-n", fmt.Sprintf("N=%d", declared), d0(r.mean)+" rounds",
				fmt.Sprintf("failures %d/%d; phaseLen grows with log N", fails, tr))
		}
		t.AddRow("lie-about-n", "required N for 2^{-n^2}", fmt.Sprintf("log2 N = %s", d0(derand.RequiredInflation(128, 2))),
			"Lemma 4.1 threshold at n=128 — astronomically large, as the theorem expects")
		return t
	},
}

// --- E8 ---------------------------------------------------------------------

var e8Units = []string{"MIS", "coloring"}

func e8Sizes(opt Options) []int {
	if opt.Quick {
		return []int{128, 256}
	}
	return []int{128, 256, 512}
}

// E8 measures the P-RLOCAL = P-SLOCAL pipeline: randomized Luby and
// trial-coloring versus their zero-randomness SLOCAL-compiled counterparts,
// with the round accounting of both.
var E8 = &Experiment{
	ID:    "E8",
	Title: "Derandomizing MIS and (Δ+1)-coloring through network decomposition (§1.1, GKM17/GHK18)",
	Claim: "greedy SLOCAL + decomposition of G³ ⇒ deterministic LOCAL MIS/coloring; randomness only buys rounds",
	Specs: func(opt Options) []RunSpec {
		return sweep("E8", e8Units, e8Sizes(opt), 1)
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		rec := newRecord(spec)
		seed := spec.Seed(opt.Seed)
		// MIS and coloring rows at one size compare on the same graph.
		g := graph.GNPConnected(spec.N, 4.0/float64(spec.N), prng.New(spec.sharedSeed(opt.Seed, "graph")))
		switch spec.Unit {
		case "MIS":
			src := randomness.NewFull(seed)
			in, lres, err := mis.Luby(g, src, nil, mis.LubyConfig{})
			if err != nil {
				return rec.fail("luby: " + err.Error())
			}
			dres, err := slocal.DerandomizedMIS(g)
			if err != nil {
				return rec.fail("derandomized MIS: " + err.Error())
			}
			randOK := check.MIS(g, in) == nil
			detOK := check.MIS(g, dres.Outputs) == nil
			if !randOK || !detOK {
				rec.fail(fmt.Sprintf("randomized valid=%v deterministic valid=%v", randOK, detOK))
			}
			rec.set("randRounds", float64(lres.Rounds))
			rec.set("randBits", float64(src.Ledger().TrueBits()))
			rec.set("detRounds", float64(dres.AnalyticRounds))
		case "coloring":
			src := randomness.NewFull(seed)
			colors, cres, err := coloring.Randomized(g, src, nil, coloring.Config{})
			if err != nil {
				return rec.fail("randomized coloring: " + err.Error())
			}
			dcol, err := slocal.DerandomizedColoring(g)
			if err != nil {
				return rec.fail("derandomized coloring: " + err.Error())
			}
			randOK := check.Coloring(g, colors, g.MaxDegree()+1) == nil
			detOK := check.Coloring(g, dcol.Outputs, g.MaxDegree()+1) == nil
			if !randOK || !detOK {
				rec.fail(fmt.Sprintf("randomized valid=%v deterministic valid=%v", randOK, detOK))
			}
			rec.set("randRounds", float64(cres.Rounds))
			rec.set("randBits", float64(src.Ledger().TrueBits()))
			rec.set("detRounds", float64(dcol.AnalyticRounds))
		default:
			return rec.fail("unknown unit " + spec.Unit)
		}
		return rec
	},
	Table: func(opt Options, rep *Report) *Table {
		t := tableFor("E8", []string{"problem", "graph", "n", "rand rounds", "rand bits", "det rounds", "det bits", "both valid"})
		for _, n := range e8Sizes(opt) {
			for _, unit := range e8Units {
				rec := rep.Get("E8", unit, n, 0)
				if rec == nil {
					continue
				}
				t.AddRow(unit, "gnp(4/n)", itoa(n), d0(rec.val("randRounds")), d0(rec.val("randBits")),
					d0(rec.val("detRounds")), "0", yesNo(rec.OK))
			}
		}
		t.Notes = append(t.Notes,
			"det rounds use the sequential-ball-carving decomposition of G³ (the P-SLOCAL-complete step): poly(log n) colors × cluster diameter",
			"a poly(log n)-round LOCAL decomposition here would settle P-LOCAL = P-RLOCAL — the paper's open problem")
		return t
	},
}

// --- E9 ---------------------------------------------------------------------

var e9Units = []string{"Luby", "Elkin–Neiman", "LowRand(3.1)", "SharedRand(3.6)", "EpsBias(3.4)", "SLOCAL-compile"}

func e9N(opt Options) int {
	if opt.Quick {
		return 512
	}
	return 1024
}

// e9Problem maps a unit to its problem column.
func e9Problem(unit string) string {
	switch unit {
	case "Luby", "SLOCAL-compile":
		return "MIS"
	case "EpsBias(3.4)":
		return "splitting"
	default:
		return "netdecomp"
	}
}

// E9 prints the randomness ledger across all algorithms at one size: the
// Section 3 story in one table, from Ω(n·polylog) private bits down to
// O(log n) shared bits and zero.
var E9 = &Experiment{
	ID:    "E9",
	Title: "Randomness ledger across algorithms (Section 3 framing)",
	Claim: "the same problems solved under shrinking randomness budgets: unbounded → 1 bit/ball → poly(log n) shared → 0",
	Specs: func(opt Options) []RunSpec {
		var specs []RunSpec
		for _, unit := range e9Units {
			specs = append(specs, RunSpec{Experiment: "E9", Unit: unit, N: e9N(opt), Trial: 0})
		}
		return specs
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		rec := newRecord(spec)
		seed := spec.Seed(opt.Seed)
		n := spec.N
		switch spec.Unit {
		case "Luby":
			// Luby, Elkin–Neiman and SharedRand rows probe the same graph,
			// so the ledger compares budgets on one instance.
			g := graph.GNPConnected(n, 4.0/float64(n), prng.New(spec.sharedSeed(opt.Seed, "graph")))
			src := randomness.NewFull(seed)
			in, _, err := mis.Luby(g, src, nil, mis.LubyConfig{})
			if err != nil || check.MIS(g, in) != nil {
				rec.fail("invalid MIS")
			}
			rec.set("n", float64(n))
			rec.set("trueBits", float64(src.Ledger().TrueBits()))
			rec.set("derivedBits", float64(src.Ledger().DerivedBits()))
		case "Elkin–Neiman":
			g := graph.GNPConnected(n, 4.0/float64(n), prng.New(spec.sharedSeed(opt.Seed, "graph")))
			src := randomness.NewFull(seed)
			d, _, err := decomp.ElkinNeiman(g, src, nil, decomp.ENConfig{})
			if err != nil || d.Validate(g, 0, 0) != nil {
				rec.fail("invalid decomposition")
			}
			rec.set("n", float64(n))
			rec.set("trueBits", float64(src.Ledger().TrueBits()))
			rec.set("derivedBits", float64(src.Ledger().DerivedBits()))
		case "LowRand(3.1)":
			ring := graph.Ring(2000)
			holders := decomp.GreedyDominatingSet(ring, 2)
			sparse, err := randomness.NewSparse(holders, 1, seed)
			if err != nil {
				return rec.fail(err.Error())
			}
			lres, err := decomp.LowRand(ring, sparse, holders, decomp.LowRandConfig{H: 2, BitsPerCluster: 64, RulingAlphaFactor: 4})
			if err != nil || lres.Decomposition.Validate(ring, 0, 0) != nil {
				rec.fail("invalid decomposition")
			}
			rec.set("n", float64(ring.N()))
			rec.set("trueBits", float64(sparse.Ledger().TrueBits()))
			rec.set("derivedBits", float64(sparse.Ledger().DerivedBits()))
		case "SharedRand(3.6)":
			g := graph.GNPConnected(n, 4.0/float64(n), prng.New(spec.sharedSeed(opt.Seed, "graph")))
			shared := randomness.NewShared(300_000, prng.New(seed))
			sres, err := decomp.SharedRand(g, shared, decomp.SharedRandConfig{})
			if err != nil || sres.Decomposition.Validate(g, 0, 0) != nil {
				rec.fail("invalid decomposition")
			} else {
				rec.set("trueBits", float64(sres.SeedBitsUsed))
			}
			rec.set("n", float64(n))
			rec.set("derivedBits", float64(shared.Ledger().DerivedBits()))
		case "EpsBias(3.4)":
			inst := splitting.RandomInstance(n/8, n/2, 40, prng.New(spec.instanceSeed(opt.Seed)))
			gen, err := randomness.NewEpsBias(24, prng.New(seed))
			if err != nil {
				return rec.fail(err.Error())
			}
			colors := splitting.SolveEpsBias(inst, gen)
			if !inst.Check(colors) {
				rec.fail("splitting check failed")
			}
			rec.set("n", float64(n/2))
			rec.set("trueBits", float64(gen.SeedBits()))
			rec.set("derivedBits", 0)
		case "SLOCAL-compile":
			small := graph.GNPConnected(256, 4.0/256, prng.New(spec.instanceSeed(opt.Seed)))
			dres, err := slocal.DerandomizedMIS(small)
			if err != nil || check.MIS(small, dres.Outputs) != nil {
				rec.fail("invalid MIS")
			}
			rec.set("n", 256)
			rec.set("trueBits", 0)
			rec.set("derivedBits", 0)
		default:
			return rec.fail("unknown unit " + spec.Unit)
		}
		return rec
	},
	Table: func(opt Options, rep *Report) *Table {
		t := tableFor("E9", []string{"algorithm", "problem", "n", "true bits", "bits/node", "derived bits", "valid"})
		for _, unit := range e9Units {
			rec := rep.Get("E9", unit, e9N(opt), 0)
			if rec == nil {
				continue
			}
			nn := rec.val("n")
			perNode := "0.00"
			if nn > 0 {
				perNode = f2(rec.val("trueBits") / nn)
			}
			t.AddRow(unit, e9Problem(unit), d0(nn), d0(rec.val("trueBits")), perNode,
				d0(rec.val("derivedBits")), yesNo(rec.OK))
		}
		return t
	},
}
