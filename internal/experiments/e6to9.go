package experiments

import (
	"fmt"

	"randlocal/internal/check"
	"randlocal/internal/coloring"
	"randlocal/internal/decomp"
	"randlocal/internal/derand"
	"randlocal/internal/graph"
	"randlocal/internal/mis"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
	"randlocal/internal/slocal"
	"randlocal/internal/splitting"
)

// E6Shattering measures Theorem 4.2: the shattering construction's leftover
// set and its (2t+1)-separated core, as a function of the strength of the
// randomized first phase. The separated-core size is the quantity the
// theorem's boosted error bound 1−n^{−Ω(K)} controls.
func E6Shattering(opt Options) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Error-probability boosting by shattering (Thm 4.2)",
		Claim:   "the (2t+1)-separated leftover core has size ≤ K with prob 1−n^{−Ω(K)}; the deterministic repair never fails",
		Columns: []string{"n", "ENphases", "trials", "leftover(avg)", "leftover(max)", "separated(avg)", "separated(max)", "repairedOK"},
	}
	rng := prng.New(opt.Seed + 6)
	ns := []int{300, 600}
	if !opt.Quick {
		ns = append(ns, 1200)
	}
	tr := trials(opt, 10)
	for _, n := range ns {
		for _, phases := range []int{1, 2, 4, 0} { // 0 = full strength
			var lefts, seps []float64
			repaired := 0
			for i := 0; i < tr; i++ {
				g := graph.GNPConnected(n, 3.0/float64(n), rng)
				res, err := decomp.Shattering(g, randomness.NewFull(opt.Seed+uint64(i)*53+uint64(phases)), decomp.ShatteringConfig{ENPhases: phases})
				if err != nil {
					continue
				}
				if res.Decomposition.ValidateWeak(g, 0, 0) == nil {
					repaired++
				}
				lefts = append(lefts, float64(res.Leftover))
				seps = append(seps, float64(res.SeparatedLeftover))
			}
			l, s := summarize(lefts), summarize(seps)
			label := itoa(phases)
			if phases == 0 {
				label = "full"
			}
			t.AddRow(itoa(n), label, itoa(tr), f1(l.mean), d0(l.max), f1(s.mean), d0(s.max),
				fmt.Sprintf("%d/%d", repaired, tr))
		}
	}
	t.Notes = append(t.Notes,
		"weakening phase one (fewer ENphases) inflates the leftover set; the separated core stays tiny, and the deterministic repair always completes",
		"at full strength the leftover is empty and the error probability is governed solely by Pr[|separated| > K]")
	return t
}

// E7Derand measures Lemma 4.1 and Theorem 4.3: exhaustive seed search over
// all labeled graphs (the counting argument, executable at n=4), and the
// lying-about-n round-for-error trade on the Elkin–Neiman algorithm.
func E7Derand(opt Options) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Derandomization: seed search (Lemma 4.1) and lying about n (Thm 4.3)",
		Claim:   "error < 1/|seedspace| on every instance ⇒ some seed works everywhere; declaring N≫n buys error δ(N) at cost T(N)",
		Columns: []string{"probe", "param", "value", "detail"},
	}
	// (a) Lemma 4.1 demo.
	p := derand.NeighborhoodSplitting(3)
	instances := derand.AllGraphs(4)
	res, err := derand.SeedSearch(p, instances, func(g *graph.Graph) []uint64 {
		return sim.SequentialIDs(g.N())
	}, 4096)
	if err != nil {
		t.AddRow("seed-search", "instances", itoa(len(instances)), "NO universal seed (unexpected)")
	} else {
		failing := 0
		for _, f := range res.PerSeedFailures {
			if f > 0 {
				failing++
			}
		}
		t.AddRow("seed-search", "instances", itoa(len(instances)), "all labeled 4-node graphs")
		t.AddRow("seed-search", "universal seed", i64(int64(res.Seed)), fmt.Sprintf("%d/%d seeds fail somewhere", failing, res.Tried))
	}
	// (b) Lying about n: rounds and failure rate vs declared N.
	rng := prng.New(opt.Seed + 7)
	g := graph.GNPConnected(128, 4.0/128, rng)
	tr := trials(opt, 20)
	for _, declared := range []int{128, 1024, 1 << 14} {
		cfg := derand.InflatedENConfig(declared)
		fails := 0
		var rounds []float64
		for i := 0; i < tr; i++ {
			d, sres, err := decomp.ElkinNeiman(g, randomness.NewFull(opt.Seed+uint64(i)*7+uint64(declared)), nil, cfg)
			if err != nil || d.Validate(g, 0, 0) != nil {
				fails++
				continue
			}
			rounds = append(rounds, float64(sres.Rounds))
		}
		r := summarize(rounds)
		t.AddRow("lie-about-n", fmt.Sprintf("N=%d", declared), d0(r.mean)+" rounds",
			fmt.Sprintf("failures %d/%d; phaseLen grows with log N", fails, tr))
	}
	t.AddRow("lie-about-n", "required N for 2^{-n^2}", fmt.Sprintf("log2 N = %s", d0(derand.RequiredInflation(128, 2))),
		"Lemma 4.1 threshold at n=128 — astronomically large, as the theorem expects")
	return t
}

// E8Derandomize measures the P-RLOCAL = P-SLOCAL pipeline: randomized Luby
// and trial-coloring versus their zero-randomness SLOCAL-compiled
// counterparts, with the round accounting of both.
func E8Derandomize(opt Options) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Derandomizing MIS and (Δ+1)-coloring through network decomposition (§1.1, GKM17/GHK18)",
		Claim:   "greedy SLOCAL + decomposition of G³ ⇒ deterministic LOCAL MIS/coloring; randomness only buys rounds",
		Columns: []string{"problem", "graph", "n", "rand rounds", "rand bits", "det rounds", "det bits", "both valid"},
	}
	rng := prng.New(opt.Seed + 8)
	ns := []int{128, 256}
	if !opt.Quick {
		ns = append(ns, 512)
	}
	for _, n := range ns {
		g := graph.GNPConnected(n, 4.0/float64(n), rng)
		// MIS.
		src := randomness.NewFull(opt.Seed + uint64(n))
		in, lres, err := mis.Luby(g, src, nil, mis.LubyConfig{})
		lubyOK := err == nil && check.MIS(g, in) == nil
		dres, err := slocal.DerandomizedMIS(g)
		detOK := err == nil && check.MIS(g, dres.Outputs) == nil
		t.AddRow("MIS", "gnp(4/n)", itoa(n), itoa(lres.Rounds), i64(src.Ledger().TrueBits()),
			itoa(dres.AnalyticRounds), "0", yesNo(lubyOK && detOK))
		// Coloring.
		src2 := randomness.NewFull(opt.Seed + uint64(n) + 1)
		colors, cres, err := coloring.Randomized(g, src2, nil, coloring.Config{})
		colOK := err == nil && check.Coloring(g, colors, g.MaxDegree()+1) == nil
		dcol, err := slocal.DerandomizedColoring(g)
		dcolOK := err == nil && check.Coloring(g, dcol.Outputs, g.MaxDegree()+1) == nil
		t.AddRow("coloring", "gnp(4/n)", itoa(n), itoa(cres.Rounds), i64(src2.Ledger().TrueBits()),
			itoa(dcol.AnalyticRounds), "0", yesNo(colOK && dcolOK))
	}
	t.Notes = append(t.Notes,
		"det rounds use the sequential-ball-carving decomposition of G³ (the P-SLOCAL-complete step): poly(log n) colors × cluster diameter",
		"a poly(log n)-round LOCAL decomposition here would settle P-LOCAL = P-RLOCAL — the paper's open problem")
	return t
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

// E9Ledger prints the randomness ledger across all algorithms at one size:
// the Section 3 story in one table, from Ω(n·polylog) private bits down to
// O(log n) shared bits and zero.
func E9Ledger(opt Options) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Randomness ledger across algorithms (Section 3 framing)",
		Claim:   "the same problems solved under shrinking randomness budgets: unbounded → 1 bit/ball → poly(log n) shared → 0",
		Columns: []string{"algorithm", "problem", "n", "true bits", "bits/node", "derived bits", "valid"},
	}
	n := 1024
	if opt.Quick {
		n = 512
	}
	seed := opt.Seed + 9

	// Luby MIS, full randomness.
	g := graph.GNPConnected(n, 4.0/float64(n), prng.New(seed))
	src := randomness.NewFull(seed)
	in, _, err := mis.Luby(g, src, nil, mis.LubyConfig{})
	t.AddRow("Luby", "MIS", itoa(n), i64(src.Ledger().TrueBits()),
		f1(float64(src.Ledger().TrueBits())/float64(n)), i64(src.Ledger().DerivedBits()),
		yesNo(err == nil && check.MIS(g, in) == nil))

	// Elkin–Neiman, full randomness.
	src = randomness.NewFull(seed + 1)
	d, _, err := decomp.ElkinNeiman(g, src, nil, decomp.ENConfig{})
	t.AddRow("Elkin–Neiman", "netdecomp", itoa(n), i64(src.Ledger().TrueBits()),
		f1(float64(src.Ledger().TrueBits())/float64(n)), i64(src.Ledger().DerivedBits()),
		yesNo(err == nil && d.Validate(g, 0, 0) == nil))

	// Theorem 3.1: one bit per holder on a ring (the family where sparse
	// randomness is meaningful).
	ring := graph.Ring(2000)
	holders := decomp.GreedyDominatingSet(ring, 2)
	sparse, _ := randomness.NewSparse(holders, 1, seed+2)
	lres, err := decomp.LowRand(ring, sparse, holders, decomp.LowRandConfig{H: 2, BitsPerCluster: 64, RulingAlphaFactor: 4})
	ok := err == nil && lres.Decomposition.Validate(ring, 0, 0) == nil
	t.AddRow("LowRand(3.1)", "netdecomp", itoa(ring.N()), i64(sparse.Ledger().TrueBits()),
		f2(float64(sparse.Ledger().TrueBits())/float64(ring.N())), i64(sparse.Ledger().DerivedBits()), yesNo(ok))

	// Theorem 3.6: shared seed only.
	shared := randomness.NewShared(300_000, prng.New(seed+3))
	sres, err := decomp.SharedRand(g, shared, decomp.SharedRandConfig{})
	ok = err == nil && sres.Decomposition.Validate(g, 0, 0) == nil
	used := 0
	if err == nil {
		used = sres.SeedBitsUsed
	}
	t.AddRow("SharedRand(3.6)", "netdecomp", itoa(n), itoa(used),
		f2(float64(used)/float64(n)), i64(shared.Ledger().DerivedBits()), yesNo(ok))

	// Lemma 3.4: splitting from an O(log n)-bit seed.
	inst := splitting.RandomInstance(n/8, n/2, 40, prng.New(seed+4))
	gen, _ := randomness.NewEpsBias(24, prng.New(seed+5))
	colors := splitting.SolveEpsBias(inst, gen)
	t.AddRow("EpsBias(3.4)", "splitting", itoa(n/2), itoa(gen.SeedBits()),
		f2(float64(gen.SeedBits())/float64(n/2)), "0", yesNo(inst.Check(colors)))

	// Zero randomness: the SLOCAL-compiled MIS.
	small := graph.GNPConnected(256, 4.0/256, prng.New(seed+6))
	dres, err := slocal.DerandomizedMIS(small)
	t.AddRow("SLOCAL-compile", "MIS", itoa(256), "0", "0.00", "0",
		yesNo(err == nil && check.MIS(small, dres.Outputs) == nil))
	return t
}
