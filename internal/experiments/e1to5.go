package experiments

import (
	"fmt"
	"strings"

	"randlocal/internal/check"
	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/hypergraph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
	"randlocal/internal/splitting"
)

func sizes(opt Options) []int {
	if opt.Quick {
		return []int{256, 1024}
	}
	return []int{256, 1024, 4096}
}

func trials(opt Options, full int) int {
	if opt.Quick {
		if full > 4 {
			return 4
		}
		return full
	}
	return full
}

// sweep expands a unit × size × trial cross product into specs, sizes
// outermost — the same order the tables present.
func sweep(id string, units []string, ns []int, trialCount int) []RunSpec {
	var specs []RunSpec
	for _, n := range ns {
		for _, unit := range units {
			for t := 0; t < trialCount; t++ {
				specs = append(specs, RunSpec{Experiment: id, Unit: unit, N: n, Trial: t})
			}
		}
	}
	return specs
}

// --- E1 ---------------------------------------------------------------------

var e1Units = []string{"gnp(4/n)", "ring", "tree"}

func e1Trials(opt Options) int { return trials(opt, 8) }

// E1 measures the [EN16] baseline of Section 2: an (O(log n), O(log n))
// strong-diameter decomposition in O(log² n) CONGEST rounds w.h.p. The
// normalized columns (x/log n, rounds/log² n) must stay flat as n grows for
// the claim's shape to hold.
var E1 = &Experiment{
	ID:    "E1",
	Title: "Elkin–Neiman randomized network decomposition (baseline)",
	Claim: "(O(log n), O(log n)) decomposition, O(log² n) CONGEST rounds, w.h.p. [§2, EN16]",
	Specs: func(opt Options) []RunSpec {
		return sweep("E1", e1Units, sizes(opt), e1Trials(opt))
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		rec := newRecord(spec)
		seed := spec.Seed(opt.Seed)
		rng := prng.New(seed)
		var g *graph.Graph
		switch spec.Unit {
		case "gnp(4/n)":
			g = graph.GNPConnected(spec.N, 4.0/float64(spec.N), rng)
		case "ring":
			g = graph.Ring(spec.N)
		case "tree":
			g = graph.RandomTree(spec.N, rng)
		default:
			return rec.fail("unknown unit " + spec.Unit)
		}
		d, res, err := decomp.ElkinNeiman(g, randomness.NewFull(seed+1), nil, decomp.ENConfig{})
		if err != nil {
			return rec.fail(err.Error())
		}
		if err := d.Validate(g, 0, 0); err != nil {
			return rec.fail(err.Error())
		}
		st := d.StatsOf(g)
		rec.set("colors", float64(st.Colors))
		rec.set("diam", float64(st.MaxDiameter))
		rec.set("rounds", float64(res.Rounds))
		return rec
	},
	Table: func(opt Options, rep *Report) *Table {
		t := tableFor("E1", []string{"graph", "n", "colors", "colors/lg", "diam", "diam/lg", "rounds", "rnds/lg²", "failures"})
		for _, n := range sizes(opt) {
			for _, unit := range e1Units {
				recs := rep.trialsOf("E1", unit, n, e1Trials(opt))
				c := summarize(collect(recs, "colors"))
				dm := summarize(collect(recs, "diam"))
				r := summarize(collect(recs, "rounds"))
				t.AddRow(unit, itoa(n), f1(c.mean), ratio(c.mean, n), f1(dm.mean), ratio(dm.mean, n),
					d0(r.mean), fmt.Sprintf("%.2f", r.mean/(lg2(n)*lg2(n))), itoa(failures(recs)))
			}
		}
		return t
	},
}

// tableFor seeds a Table with an experiment's metadata, resolved by ID at
// call time (a direct variable reference from inside the experiment's own
// initializer would be an initialization cycle).
func tableFor(id string, columns []string) *Table {
	exp := ByID(id)
	return &Table{ID: exp.ID, Title: exp.Title, Claim: exp.Claim, Columns: columns}
}

// --- E2 ---------------------------------------------------------------------

var e2Units = []string{"Thm3.1/ring", "Thm3.1/cliques", "Thm3.7/ring", "Thm3.7/cliques"}

func e2Sizes(opt Options) []int {
	if opt.Quick {
		return []int{1000}
	}
	return []int{1000, 2000}
}

// e2Instance reconstructs a unit's graph and configuration.
func e2Instance(unit string, n int) (g *graph.Graph, h int, cfg decomp.LowRandConfig) {
	switch {
	case strings.HasSuffix(unit, "/ring"):
		return graph.Ring(n), 2, decomp.LowRandConfig{H: 2, BitsPerCluster: 64, RulingAlphaFactor: 4}
	default: // "/cliques"
		return graph.RingOfCliques(n/4, 4), 1, decomp.LowRandConfig{H: 1, BitsPerCluster: 24, RulingAlphaFactor: 2}
	}
}

// E2 measures Theorem 3.1/3.7: decompositions from one private bit per
// h-hop ball. The bits column is the total true randomness in the network —
// the resource the theorem says suffices.
var E2 = &Experiment{
	ID:    "E2",
	Title: "One bit of private randomness per poly(log n) hops (Thm 3.1 & 3.7)",
	Claim: "(O(log n), h·polylog n) decomposition from |holders| single bits; Thm 3.7 removes the h factor",
	Specs: func(opt Options) []RunSpec {
		return sweep("E2", e2Units, e2Sizes(opt), 1)
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		rec := newRecord(spec)
		seed := spec.Seed(opt.Seed)
		g, h, cfg := e2Instance(spec.Unit, spec.N)
		holders := decomp.GreedyDominatingSet(g, h)
		rec.set("h", float64(h))
		rec.set("holders", float64(len(holders)))
		if spec.Unit[:6] == "Thm3.1" {
			src, err := randomness.NewSparse(holders, 1, seed)
			if err != nil {
				return rec.fail(err.Error())
			}
			res, err := decomp.LowRand(g, src, holders, cfg)
			if err != nil {
				return rec.fail(err.Error())
			}
			if err := res.Decomposition.Validate(g, 0, 0); err != nil {
				return rec.fail(err.Error())
			}
			rec.set("bits", float64(len(holders)))
			rec.set("colors", float64(res.Decomposition.NumColors()))
			rec.set("maxDiam", float64(res.Decomposition.MaxClusterDiameter(g)))
			rec.set("preClusters", float64(res.DistinctPreClusters()))
			return rec
		}
		src, err := randomness.NewSparse(holders, 48, seed+1)
		if err != nil {
			return rec.fail(err.Error())
		}
		res, err := decomp.StrongLowRand(g, src, holders, cfg)
		if err != nil {
			return rec.fail(err.Error())
		}
		if err := res.Decomposition.Validate(g, 0, 0); err != nil {
			return rec.fail(err.Error())
		}
		rec.set("bits", float64(res.BitsGathered))
		rec.set("colors", float64(res.Decomposition.NumColors()))
		rec.set("maxDiam", float64(res.Decomposition.MaxClusterDiameter(g)))
		return rec
	},
	Table: func(opt Options, rep *Report) *Table {
		t := tableFor("E2", []string{"variant", "graph", "n", "h", "holders", "bits", "colors", "maxDiam", "preClusters", "ok"})
		for _, n := range e2Sizes(opt) {
			for _, unit := range e2Units {
				rec := rep.Get("E2", unit, n, 0)
				if rec == nil {
					continue
				}
				variant, gname := unit[:6], unit[7:]
				pre := "-"
				if rec.OK && variant == "Thm3.1" {
					pre = d0(rec.val("preClusters"))
				}
				// Both unit families build exactly n nodes (Ring(n),
				// RingOfCliques(n/4, 4)); no need to rebuild the graph here.
				t.AddRow(variant, gname, itoa(n), d0(rec.val("h")), d0(rec.val("holders")),
					d0(rec.val("bits")), d0(rec.val("colors")), d0(rec.val("maxDiam")), pre, yesNo(rec.OK))
			}
		}
		t.Notes = append(t.Notes,
			"Thm3.1 rows: exactly one true random bit per holder in the whole network.",
			"Thm3.7 rows: holders carry the poly(log n)-bit budget the theorem gathers per cluster; diameter no longer scales with h'.")
		return t
	},
}

// --- E3 ---------------------------------------------------------------------

var e3Units = []string{"private", "k-wise(16)", "eps-bias", "cond-exp(det)"}

// e3Scales maps the V-side size to the instance shape.
var e3Scales = []struct{ nu, nv, deg int }{{100, 500, 40}, {200, 1000, 60}}

func e3Trials(opt Options, unit string) int {
	if unit == "cond-exp(det)" {
		return 1
	}
	return trials(opt, 200)
}

// e3SeedBits reports the randomness budget column of a unit.
func e3SeedBits(unit string, nv int) int {
	switch unit {
	case "private":
		return nv
	case "k-wise(16)":
		return 16 * 32
	case "eps-bias":
		return 48
	default:
		return 0
	}
}

// E3 measures Lemma 3.4: the splitting problem solved in zero rounds under
// shrinking randomness budgets, from Ω(n) private bits down to O(log n)
// shared bits (the Naor–Naor route).
var E3 = &Experiment{
	ID:    "E3",
	Title: "Splitting in zero rounds vs randomness budget (Lemma 3.4)",
	Claim: "success ≥ 1−1/n with O(log n) shared bits (ε-bias) or O(log² n) (k-wise); zero rounds in all regimes",
	Specs: func(opt Options) []RunSpec {
		var specs []RunSpec
		for _, scale := range e3Scales {
			for _, unit := range e3Units {
				for t := 0; t < e3Trials(opt, unit); t++ {
					specs = append(specs, RunSpec{Experiment: "E3", Unit: unit, N: scale.nv, Trial: t})
				}
			}
		}
		return specs
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		rec := newRecord(spec)
		var scale struct{ nu, nv, deg int }
		for _, s := range e3Scales {
			if s.nv == spec.N {
				scale = s
			}
		}
		if scale.nv == 0 {
			return rec.fail("unknown scale")
		}
		// One instance per scale, shared across every regime and trial —
		// the controlled comparison the rate column implies; only the
		// solver's randomness is per-trial.
		inst := splitting.RandomInstance(scale.nu, scale.nv, scale.deg, prng.New(spec.sharedSeed(opt.Seed, "instance")))
		seed := spec.Seed(opt.Seed)
		var ok bool
		switch spec.Unit {
		case "private":
			ok = inst.Check(splitting.SolvePrivate(inst, randomness.NewFull(seed)))
		case "k-wise(16)":
			fam, err := randomness.NewKWise(16, 32, prng.New(seed))
			ok = err == nil && inst.Check(splitting.SolveKWise(inst, fam))
		case "eps-bias":
			gen, err := randomness.NewEpsBias(24, prng.New(seed))
			ok = err == nil && inst.Check(splitting.SolveEpsBias(inst, gen))
		case "cond-exp(det)":
			colors, err := splitting.ConditionalExpectations(inst)
			ok = err == nil && inst.Check(colors)
		default:
			return rec.fail("unknown unit " + spec.Unit)
		}
		rec.set("success", boolVal(ok))
		rec.set("deg", float64(scale.deg))
		return rec
	},
	Table: func(opt Options, rep *Report) *Table {
		t := tableFor("E3", []string{"regime", "n(V)", "deg", "seed bits", "trials", "successes", "rate"})
		for _, scale := range e3Scales {
			for _, unit := range e3Units {
				tr := e3Trials(opt, unit)
				recs := rep.trialsOf("E3", unit, scale.nv, tr)
				succ := 0
				for _, v := range collect(recs, "success") {
					succ += int(v)
				}
				t.AddRow(unit, itoa(scale.nv), itoa(scale.deg), itoa(e3SeedBits(unit, scale.nv)),
					itoa(tr), itoa(succ), f2(float64(succ)/float64(tr)))
			}
		}
		t.Notes = append(t.Notes, "all regimes run in zero communication rounds: colors are functions of (seed, own ID) only")
		return t
	},
}

// --- E4 ---------------------------------------------------------------------

var e4MarkKs = []int{2, 8, 32, 96}
var e4RadiiKs = []int{2, 8, 64}

func e4RadiiN(opt Options) int {
	if opt.Quick {
		return 256
	}
	return 512
}

// e4Hypergraph builds the fixed marking instance every CFMC trial probes.
func e4Hypergraph(opt Options, n int) *hypergraph.Hypergraph {
	rng := prng.New(RunSpec{Experiment: "E4", Unit: "hypergraph", N: n}.Seed(opt.Seed))
	h := &hypergraph.Hypergraph{N: n}
	for e := 0; e < 25; e++ {
		size := 64 + rng.Intn(64)
		perm := rng.Perm(n)
		h.Edges = append(h.Edges, append([]int(nil), perm[:size]...))
	}
	return h
}

// E4 measures Theorem 3.5: poly(log n)-wise independence suffices. Two
// probes: (a) the conflict-free multi-coloring pipeline's marking step as a
// function of k, and (b) the Elkin–Neiman decomposition with radii drawn
// from a k-wise family instead of fresh coins.
var E4 = &Experiment{
	ID:    "E4",
	Title: "Limited independence suffices (Thm 3.5)",
	Claim: "Θ(log² n)-wise independent bits suffice for CFMC marking and for the decomposition itself",
	Specs: func(opt Options) []RunSpec {
		var specs []RunSpec
		for _, k := range e4MarkKs {
			for t := 0; t < trials(opt, 30); t++ {
				specs = append(specs, RunSpec{Experiment: "E4", Unit: fmt.Sprintf("CFMC-mark/k=%d", k), N: 600, Trial: t})
			}
		}
		for _, k := range e4RadiiKs {
			for t := 0; t < trials(opt, 10); t++ {
				specs = append(specs, RunSpec{Experiment: "E4", Unit: fmt.Sprintf("EN-radii/k=%d", k), N: e4RadiiN(opt), Trial: t})
			}
		}
		return specs
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		rec := newRecord(spec)
		seed := spec.Seed(opt.Seed)
		var k int
		switch {
		case len(spec.Unit) > 12 && spec.Unit[:12] == "CFMC-mark/k=":
			fmt.Sscanf(spec.Unit[12:], "%d", &k)
			h := e4Hypergraph(opt, spec.N)
			fam, err := randomness.NewKWise(k, 64, prng.New(seed))
			if err != nil {
				return rec.fail(err.Error())
			}
			res, err := hypergraph.Solve(h, fam, 8, 12)
			ok := err == nil && check.ConflictFree(h.Edges, res.ColorSets) == nil
			rec.set("success", boolVal(ok))
			if ok {
				rec.set("markedMin", float64(res.MarkedMin))
				rec.set("markedMax", float64(res.MarkedMax))
			}
			return rec
		case len(spec.Unit) > 11 && spec.Unit[:11] == "EN-radii/k=":
			fmt.Sscanf(spec.Unit[11:], "%d", &k)
			g := graph.GNPConnected(spec.N, 4.0/float64(spec.N), prng.New(seed))
			fam, err := randomness.NewKWise(k, 64, prng.New(seed+1))
			if err != nil {
				return rec.fail(err.Error())
			}
			lg := 0
			for 1<<lg < spec.N {
				lg++
			}
			cap := 2*lg + 4
			cfg := decomp.ENConfig{}
			cfg.Radius = func(v, phase int) int {
				for j := 0; j < cap; j++ {
					if fam.Bit(uint64(v)*4096+uint64(phase)*64+uint64(j)) == 0 {
						return j + 1
					}
				}
				return cap
			}
			d, _, err := decomp.ElkinNeiman(g, randomness.NewFull(1), nil, cfg)
			rec.set("success", boolVal(err == nil && d.Validate(g, 0, 0) == nil))
			return rec
		}
		return rec.fail("unknown unit " + spec.Unit)
	},
	Table: func(opt Options, rep *Report) *Table {
		t := tableFor("E4", []string{"probe", "n", "k", "trials", "successes", "rate", "detail"})
		for _, k := range e4MarkKs {
			tr := trials(opt, 30)
			recs := rep.trialsOf("E4", fmt.Sprintf("CFMC-mark/k=%d", k), 600, tr)
			succ := 0
			minMark, maxMark := 1<<30, 0
			for _, r := range recs {
				if r.OK && r.val("success") == 1 {
					succ++
					if m := int(r.val("markedMin")); m < minMark {
						minMark = m
					}
					if m := int(r.val("markedMax")); m > maxMark {
						maxMark = m
					}
				}
			}
			detail := "-"
			if succ > 0 {
				detail = fmt.Sprintf("marked∈[%d,%d]", minMark, maxMark)
			}
			t.AddRow("CFMC-mark", itoa(600), itoa(k), itoa(tr), itoa(succ), f2(float64(succ)/float64(tr)), detail)
		}
		for _, k := range e4RadiiKs {
			tr := trials(opt, 10)
			recs := rep.trialsOf("E4", fmt.Sprintf("EN-radii/k=%d", k), e4RadiiN(opt), tr)
			succ := 0
			for _, v := range collect(recs, "success") {
				succ += int(v)
			}
			t.AddRow("EN-radii", itoa(e4RadiiN(opt)), itoa(k), itoa(tr), itoa(succ), f2(float64(succ)/float64(tr)), "-")
		}
		t.Notes = append(t.Notes, "even tiny k often succeeds on random instances; the theorem guarantees Θ(log² n) against every graph")
		return t
	},
}

// --- E5 ---------------------------------------------------------------------

var e5Units = []string{"gnp(3/n)", "grid"}

func e5Sizes(opt Options) []int {
	if opt.Quick {
		return []int{256, 512}
	}
	return []int{256, 512, 1024}
}

// E5 measures Theorem 3.6: decomposition from poly(log n) shared bits only,
// in the CONGEST model.
var E5 = &Experiment{
	ID:    "E5",
	Title: "Shared randomness only (Thm 3.6)",
	Claim: "(O(log n), O(log² n)) decomposition with congestion 1 from poly(log n) shared bits, no private randomness",
	Specs: func(opt Options) []RunSpec {
		return sweep("E5", e5Units, e5Sizes(opt), 1)
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		rec := newRecord(spec)
		seed := spec.Seed(opt.Seed)
		var g *graph.Graph
		switch spec.Unit {
		case "gnp(3/n)":
			g = graph.GNPConnected(spec.N, 3.0/float64(spec.N), prng.New(seed))
		case "grid":
			s := isqrt(spec.N)
			g = graph.Grid(s, s)
		default:
			return rec.fail("unknown unit " + spec.Unit)
		}
		shared := randomness.NewShared(300_000, prng.New(seed+1))
		res, err := decomp.SharedRand(g, shared, decomp.SharedRandConfig{})
		if err != nil {
			return rec.fail(err.Error())
		}
		if err := res.Decomposition.Validate(g, 0, 0); err != nil {
			return rec.fail(err.Error())
		}
		rec.set("n", float64(g.N()))
		rec.set("seedBits", float64(res.SeedBitsUsed))
		rec.set("colors", float64(res.Decomposition.NumColors()))
		rec.set("maxDiam", float64(res.Decomposition.MaxClusterDiameter(g)))
		rec.set("phases", float64(res.Phases))
		return rec
	},
	Table: func(opt Options, rep *Report) *Table {
		t := tableFor("E5", []string{"graph", "n", "seedBits", "colors", "colors/lg", "maxDiam", "diam/lg²", "phases", "ok"})
		for _, n := range e5Sizes(opt) {
			for _, unit := range e5Units {
				rec := rep.Get("E5", unit, n, 0)
				if rec == nil {
					continue
				}
				nn := int(rec.val("n"))
				if nn == 0 {
					nn = n
				}
				t.AddRow(unit, itoa(nn), d0(rec.val("seedBits")), d0(rec.val("colors")),
					ratio(rec.val("colors"), nn), d0(rec.val("maxDiam")),
					fmt.Sprintf("%.2f", rec.val("maxDiam")/(lg2(nn)*lg2(nn))), d0(rec.val("phases")), yesNo(rec.OK))
			}
		}
		return t
	},
}

func isqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
