package experiments

import (
	"fmt"

	"randlocal/internal/check"
	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/hypergraph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
	"randlocal/internal/splitting"
)

func sizes(opt Options) []int {
	if opt.Quick {
		return []int{256, 1024}
	}
	return []int{256, 1024, 4096}
}

func trials(opt Options, full int) int {
	if opt.Quick {
		if full > 4 {
			return 4
		}
		return full
	}
	return full
}

// E1ElkinNeiman measures the [EN16] baseline of Section 2: an
// (O(log n), O(log n)) strong-diameter decomposition in O(log² n) CONGEST
// rounds w.h.p. The normalized columns (x/log n, rounds/log² n) must stay
// flat as n grows for the claim's shape to hold.
func E1ElkinNeiman(opt Options) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "Elkin–Neiman randomized network decomposition (baseline)",
		Claim:   "(O(log n), O(log n)) decomposition, O(log² n) CONGEST rounds, w.h.p. [§2, EN16]",
		Columns: []string{"graph", "n", "colors", "colors/lg", "diam", "diam/lg", "rounds", "rnds/lg²", "failures"},
	}
	rng := prng.New(opt.Seed + 1)
	for _, n := range sizes(opt) {
		for _, fam := range []struct {
			name string
			make func() *graph.Graph
		}{
			{"gnp(4/n)", func() *graph.Graph { return graph.GNPConnected(n, 4.0/float64(n), rng) }},
			{"ring", func() *graph.Graph { return graph.Ring(n) }},
			{"tree", func() *graph.Graph { return graph.RandomTree(n, rng) }},
		} {
			var colors, diams, rounds []float64
			failures := 0
			tr := trials(opt, 8)
			for trial := 0; trial < tr; trial++ {
				g := fam.make()
				d, res, err := decomp.ElkinNeiman(g, randomness.NewFull(opt.Seed+uint64(trial)*131), nil, decomp.ENConfig{})
				if err != nil {
					failures++
					continue
				}
				if err := d.Validate(g, 0, 0); err != nil {
					failures++
					continue
				}
				st := d.StatsOf(g)
				colors = append(colors, float64(st.Colors))
				diams = append(diams, float64(st.MaxDiameter))
				rounds = append(rounds, float64(res.Rounds))
			}
			c, dm, r := summarize(colors), summarize(diams), summarize(rounds)
			t.AddRow(fam.name, itoa(n), f1(c.mean), ratio(c.mean, n), f1(dm.mean), ratio(dm.mean, n),
				d0(r.mean), fmt.Sprintf("%.2f", r.mean/(lg2(n)*lg2(n))), itoa(failures))
		}
	}
	return t
}

// E2LowRand measures Theorem 3.1/3.7: decompositions from one private bit
// per h-hop ball. The bits column is the total true randomness in the
// network — the resource the theorem says suffices.
func E2LowRand(opt Options) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "One bit of private randomness per poly(log n) hops (Thm 3.1 & 3.7)",
		Claim:   "(O(log n), h·polylog n) decomposition from |holders| single bits; Thm 3.7 removes the h factor",
		Columns: []string{"variant", "graph", "n", "h", "holders", "bits", "colors", "maxDiam", "preClusters", "ok"},
	}
	type inst struct {
		name string
		g    *graph.Graph
		h    int
		cfg  decomp.LowRandConfig
	}
	mk := func(n int) []inst {
		return []inst{
			{"ring", graph.Ring(n), 2, decomp.LowRandConfig{H: 2, BitsPerCluster: 64, RulingAlphaFactor: 4}},
			{"ringOfCliques", graph.RingOfCliques(n/4, 4), 1, decomp.LowRandConfig{H: 1, BitsPerCluster: 24, RulingAlphaFactor: 2}},
		}
	}
	ns := []int{1000, 2000}
	if opt.Quick {
		ns = []int{1000}
	}
	for _, n := range ns {
		for _, in := range mk(n) {
			holders := decomp.GreedyDominatingSet(in.g, in.h)
			// Theorem 3.1 variant.
			src, err := randomness.NewSparse(holders, 1, opt.Seed+uint64(n))
			ok := "yes"
			var colors, diam, pre int
			if err == nil {
				res, lErr := decomp.LowRand(in.g, src, holders, in.cfg)
				if lErr != nil || res.Decomposition.Validate(in.g, 0, 0) != nil {
					ok = "NO"
				} else {
					colors = res.Decomposition.NumColors()
					diam = res.Decomposition.MaxClusterDiameter(in.g)
					pre = res.DistinctPreClusters()
				}
			} else {
				ok = "NO"
			}
			t.AddRow("Thm3.1", in.name, itoa(in.g.N()), itoa(in.h), itoa(len(holders)),
				itoa(len(holders)), itoa(colors), itoa(diam), itoa(pre), ok)

			// Theorem 3.7 variant (strong diameter O(log² n)); holders
			// carry the poly(log n) per-cluster budget.
			src37, err := randomness.NewSparse(holders, 48, opt.Seed+uint64(n)+1)
			ok = "yes"
			colors, diam = 0, 0
			bits := 0
			if err == nil {
				res, sErr := decomp.StrongLowRand(in.g, src37, holders, in.cfg)
				if sErr != nil || res.Decomposition.Validate(in.g, 0, 0) != nil {
					ok = "NO"
				} else {
					colors = res.Decomposition.NumColors()
					diam = res.Decomposition.MaxClusterDiameter(in.g)
					bits = res.BitsGathered
				}
			} else {
				ok = "NO"
			}
			t.AddRow("Thm3.7", in.name, itoa(in.g.N()), itoa(in.h), itoa(len(holders)),
				itoa(bits), itoa(colors), itoa(diam), "-", ok)
		}
	}
	t.Notes = append(t.Notes,
		"Thm3.1 rows: exactly one true random bit per holder in the whole network.",
		"Thm3.7 rows: holders carry the poly(log n)-bit budget the theorem gathers per cluster; diameter no longer scales with h'.")
	return t
}

// E3Splitting measures Lemma 3.4: the splitting problem solved in zero
// rounds under shrinking randomness budgets, from Ω(n) private bits down to
// O(log n) shared bits (the Naor–Naor route).
func E3Splitting(opt Options) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Splitting in zero rounds vs randomness budget (Lemma 3.4)",
		Claim:   "success ≥ 1−1/n with O(log n) shared bits (ε-bias) or O(log² n) (k-wise); zero rounds in all regimes",
		Columns: []string{"regime", "n(V)", "deg", "seed bits", "trials", "successes", "rate"},
	}
	rng := prng.New(opt.Seed + 3)
	tr := trials(opt, 200)
	for _, scale := range []struct{ nu, nv, deg int }{{100, 500, 40}, {200, 1000, 60}} {
		inst := splitting.RandomInstance(scale.nu, scale.nv, scale.deg, rng)
		// Private coins: nv true bits.
		succ := 0
		for i := 0; i < tr; i++ {
			if inst.Check(splitting.SolvePrivate(inst, randomness.NewFull(opt.Seed+uint64(i)))) {
				succ++
			}
		}
		t.AddRow("private", itoa(scale.nv), itoa(scale.deg), itoa(scale.nv), itoa(tr), itoa(succ), f2(float64(succ)/float64(tr)))
		// k-wise: k·m seed bits.
		succ = 0
		k, m := 16, uint(32)
		for i := 0; i < tr; i++ {
			fam, err := randomness.NewKWise(k, m, prng.New(opt.Seed+uint64(i)*77+5))
			if err == nil && inst.Check(splitting.SolveKWise(inst, fam)) {
				succ++
			}
		}
		t.AddRow("k-wise(16)", itoa(scale.nv), itoa(scale.deg), itoa(k*int(m)), itoa(tr), itoa(succ), f2(float64(succ)/float64(tr)))
		// ε-bias: 2m seed bits.
		succ = 0
		for i := 0; i < tr; i++ {
			gen, err := randomness.NewEpsBias(24, prng.New(opt.Seed+uint64(i)*91+11))
			if err == nil && inst.Check(splitting.SolveEpsBias(inst, gen)) {
				succ++
			}
		}
		t.AddRow("eps-bias", itoa(scale.nv), itoa(scale.deg), "48", itoa(tr), itoa(succ), f2(float64(succ)/float64(tr)))
		// Method of conditional expectations: zero randomness, SLOCAL
		// locality 1 — the pessimistic-estimator derandomization.
		if colors, err := splitting.ConditionalExpectations(inst); err == nil && inst.Check(colors) {
			t.AddRow("cond-exp(det)", itoa(scale.nv), itoa(scale.deg), "0", "1", "1", "1.00")
		} else {
			t.AddRow("cond-exp(det)", itoa(scale.nv), itoa(scale.deg), "0", "1", "0", "0.00")
		}
	}
	t.Notes = append(t.Notes, "all regimes run in zero communication rounds: colors are functions of (seed, own ID) only")
	return t
}

// E4KWise measures Theorem 3.5: poly(log n)-wise independence suffices.
// Two probes: (a) the conflict-free multi-coloring pipeline's marking step
// as a function of k, and (b) the Elkin–Neiman decomposition with radii
// drawn from a k-wise family instead of fresh coins.
func E4KWise(opt Options) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Limited independence suffices (Thm 3.5)",
		Claim:   "Θ(log² n)-wise independent bits suffice for CFMC marking and for the decomposition itself",
		Columns: []string{"probe", "n", "k", "trials", "successes", "rate", "detail"},
	}
	tr := trials(opt, 30)
	// (a) Hypergraph marking with varying independence.
	n := 600
	rng := prng.New(opt.Seed + 4)
	h := &hypergraph.Hypergraph{N: n}
	for e := 0; e < 25; e++ {
		size := 64 + rng.Intn(64)
		perm := rng.Perm(n)
		h.Edges = append(h.Edges, append([]int(nil), perm[:size]...))
	}
	for _, k := range []int{2, 8, 32, 96} {
		succ := 0
		minMark, maxMark := 1<<30, 0
		for i := 0; i < tr; i++ {
			fam, err := randomness.NewKWise(k, 64, prng.New(opt.Seed+uint64(i)*13+uint64(k)))
			if err != nil {
				continue
			}
			res, err := hypergraph.Solve(h, fam, 8, 12)
			if err == nil && check.ConflictFree(h.Edges, res.ColorSets) == nil {
				succ++
				if res.MarkedMin < minMark {
					minMark = res.MarkedMin
				}
				if res.MarkedMax > maxMark {
					maxMark = res.MarkedMax
				}
			}
		}
		detail := "-"
		if succ > 0 {
			detail = fmt.Sprintf("marked∈[%d,%d]", minMark, maxMark)
		}
		t.AddRow("CFMC-mark", itoa(n), itoa(k), itoa(tr), itoa(succ), f2(float64(succ)/float64(tr)), detail)
	}
	// (b) EN with k-wise radii.
	for _, k := range []int{2, 8, 64} {
		succ := 0
		gN := 512
		if opt.Quick {
			gN = 256
		}
		for i := 0; i < trials(opt, 10); i++ {
			g := graph.GNPConnected(gN, 4.0/float64(gN), prng.New(opt.Seed+uint64(i)))
			fam, err := randomness.NewKWise(k, 64, prng.New(opt.Seed+uint64(i)*31+uint64(k)*7))
			if err != nil {
				continue
			}
			cap := 0
			cfg := decomp.ENConfig{}
			// Derive the default cap for the radius function.
			capFor := func(n int) int {
				lg := 0
				for 1<<lg < n {
					lg++
				}
				return 2*lg + 4
			}
			cap = capFor(gN)
			cfg.Radius = func(v, phase int) int {
				for j := 0; j < cap; j++ {
					if fam.Bit(uint64(v)*4096+uint64(phase)*64+uint64(j)) == 0 {
						return j + 1
					}
				}
				return cap
			}
			d, _, err := decomp.ElkinNeiman(g, randomness.NewFull(1), nil, cfg)
			if err == nil && d.Validate(g, 0, 0) == nil {
				succ++
			}
		}
		t.AddRow("EN-radii", itoa(512), itoa(k), itoa(trials(opt, 10)), itoa(succ), f2(float64(succ)/float64(trials(opt, 10))), "-")
	}
	t.Notes = append(t.Notes, "even tiny k often succeeds on random instances; the theorem guarantees Θ(log² n) against every graph")
	return t
}

// E5SharedRand measures Theorem 3.6: decomposition from poly(log n) shared
// bits only, in the CONGEST model.
func E5SharedRand(opt Options) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Shared randomness only (Thm 3.6)",
		Claim:   "(O(log n), O(log² n)) decomposition with congestion 1 from poly(log n) shared bits, no private randomness",
		Columns: []string{"graph", "n", "seedBits", "colors", "colors/lg", "maxDiam", "diam/lg²", "phases", "ok"},
	}
	rng := prng.New(opt.Seed + 5)
	ns := []int{256, 512}
	if !opt.Quick {
		ns = append(ns, 1024)
	}
	for _, n := range ns {
		for _, fam := range []struct {
			name string
			make func() *graph.Graph
		}{
			{"gnp(3/n)", func() *graph.Graph { return graph.GNPConnected(n, 3.0/float64(n), rng) }},
			{"grid", func() *graph.Graph { s := isqrt(n); return graph.Grid(s, s) }},
		} {
			g := fam.make()
			shared := randomness.NewShared(300_000, prng.New(opt.Seed+uint64(n)*3))
			res, err := decomp.SharedRand(g, shared, decomp.SharedRandConfig{})
			ok := "yes"
			var colors, diam, phases, seed int
			if err != nil || res.Decomposition.Validate(g, 0, 0) != nil {
				ok = "NO"
			} else {
				colors = res.Decomposition.NumColors()
				diam = res.Decomposition.MaxClusterDiameter(g)
				phases = res.Phases
				seed = res.SeedBitsUsed
			}
			nn := g.N()
			t.AddRow(fam.name, itoa(nn), itoa(seed), itoa(colors), ratio(float64(colors), nn),
				itoa(diam), fmt.Sprintf("%.2f", float64(diam)/(lg2(nn)*lg2(nn))), itoa(phases), ok)
		}
	}
	return t
}

func isqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
