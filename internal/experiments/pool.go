package experiments

import (
	"errors"
	"runtime"
	"sync"
)

// ErrPoolClosed reports a submission to a TrialPool that has begun (or
// finished) draining; ErrPoolBusy a TrySubmit that found the backlog full.
var (
	ErrPoolClosed = errors.New("experiments: trial pool closed")
	ErrPoolBusy   = errors.New("experiments: trial pool backlog full")
)

// TrialPool is the shared trial-execution machinery: a fixed set of workers
// draining a bounded task queue. The experiments Runner feeds it a sweep's
// independent trials; the locsimd daemon feeds it HTTP-submitted runs — one
// pool bounds the process's simulation concurrency either way.
//
// Semantics: Submit blocks while the backlog is full (the Runner's
// throttling); TrySubmit never blocks and reports ErrPoolBusy instead (the
// daemon's 503). After Close, both report ErrPoolClosed. Close drains: every
// task accepted before Close runs to completion before Close returns.
type TrialPool struct {
	// mu serializes submissions against Close: submitters hold the read
	// side across the channel send, so Close's write lock cannot close the
	// channel while a send is in flight (the send-on-closed-channel race).
	// Workers never take the lock, so a Submit blocked on a full backlog
	// always unblocks.
	mu      sync.RWMutex
	tasks   chan func()
	wg      sync.WaitGroup
	closed  bool
	workers int
}

// NewTrialPool starts a pool of `workers` goroutines (<= 0 means
// runtime.GOMAXPROCS(0)) over a queue holding `backlog` pending tasks
// (negative is clamped to 0, meaning submissions hand off directly).
func NewTrialPool(workers, backlog int) *TrialPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if backlog < 0 {
		backlog = 0
	}
	p := &TrialPool{tasks: make(chan func(), backlog), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Workers reports the pool's width.
func (p *TrialPool) Workers() int { return p.workers }

// Submit enqueues one task, blocking while the backlog is full. It returns
// ErrPoolClosed (and does not run the task) after Close.
func (p *TrialPool) Submit(task func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	p.tasks <- task
	return nil
}

// TrySubmit enqueues one task without blocking: ErrPoolBusy when the backlog
// is full, ErrPoolClosed after Close.
func (p *TrialPool) TrySubmit(task func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- task:
		return nil
	default:
		return ErrPoolBusy
	}
}

// Close stops accepting tasks, drains everything already accepted, and waits
// for the workers to exit. Safe to call more than once.
func (p *TrialPool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
