package experiments

import (
	"fmt"
	"strings"

	"randlocal/internal/check"
	"randlocal/internal/coloring"
	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/mis"
	"randlocal/internal/sim"
)

// E12 exercises the adversary layer: the paper's algorithms are analyzed in
// a fault-free synchronous model, so the claims carry no robustness — this
// experiment measures how fast each guarantee degrades under message drops,
// delays, crash-stops, edge churn and adversarial scheduling, and verifies
// the Definition 2.2 checkers as one-sided oracles on faulted networks: a
// checker over a lossy network may false-reject a valid solution, but every
// invalid one is still caught (each forced "no" is computed from locally
// held inputs no fault can take away).

// e12Regimes are the fault budgets each algorithm unit is swept over; the
// clean regime is the control arm (by stream isolation it reproduces the
// fault-free run bit for bit).
var e12Regimes = []struct {
	name string
	cfg  sim.AdversaryConfig
}{
	{"clean", sim.AdversaryConfig{}},
	{"drop=0.02", sim.AdversaryConfig{DropProb: 0.02}},
	{"drop=0.10", sim.AdversaryConfig{DropProb: 0.10}},
	{"delay=0.10", sim.AdversaryConfig{DelayProb: 0.10, DelayMax: 3}},
	{"crash=1", sim.AdversaryConfig{CrashPerRound: 1}},
	{"stall=2", sim.AdversaryConfig{StallPerRound: 2}},
	{"churn=2", sim.AdversaryConfig{ChurnPerRound: 2, HealPerRound: 1}},
}

var e12Algos = []string{"Luby", "EN", "Coloring"}

// e12OracleUnits run each distributed checker itself over a faulted network
// (drop=0.10 + stall=2), on a valid and on a corrupted solution.
var e12OracleUnits = []string{"oracle/MIS", "oracle/coloring", "oracle/decomp", "oracle/splitting"}

var e12OracleBudget = sim.AdversaryConfig{DropProb: 0.10, StallPerRound: 2}

func e12Sizes(opt Options) []int {
	if opt.Quick {
		return []int{256}
	}
	return []int{512, 2048}
}

func e12Trials(opt Options) int {
	if opt.Quick {
		return 1
	}
	return 3
}

// e12Graph builds the unit-shared instance: all regimes of all units
// compare on one graph per size, drawn from the workload stream of a key
// every unit derives identically.
func e12Graph(opt Options, spec RunSpec, n int) *graph.Graph {
	key := sim.SimulationKey(spec.sharedSeed(opt.Seed, "graph"))
	return graph.GNPConnected(n, 4.0/float64(n), key.RNG().Workload())
}

var E12 = &Experiment{
	ID:    "E12",
	Title: "Faulty, churning, adversarially scheduled executions",
	Claim: "fault-free guarantees degrade at measurable rates under drops/delays/crashes/churn/stalls, every violation is caught by the distributed checkers, and faulted checkers stay one-sided oracles (false-rejects only)",
	Specs: func(opt Options) []RunSpec {
		var specs []RunSpec
		for _, n := range e12Sizes(opt) {
			for _, algo := range e12Algos {
				for _, reg := range e12Regimes {
					for t := 0; t < e12Trials(opt); t++ {
						specs = append(specs, RunSpec{Experiment: "E12", Unit: algo + "/" + reg.name, N: n, Trial: t})
					}
				}
			}
			for _, unit := range e12OracleUnits {
				for t := 0; t < e12Trials(opt); t++ {
					specs = append(specs, RunSpec{Experiment: "E12", Unit: unit, N: n, Trial: t})
				}
			}
		}
		return specs
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		if strings.HasPrefix(spec.Unit, "oracle/") {
			return e12RunOracle(opt, spec)
		}
		return e12RunAlgo(opt, spec)
	},
	Table: e12Table,
}

// e12Adversary builds the spec's adversary from its partitioned key: the
// fault coins come from the key's adversary stream, the algorithm coins
// from its algorithm stream, so the clean and faulted arms of a trial share
// the exact private-coin sequences.
func e12Adversary(key sim.SimulationKey, cfg sim.AdversaryConfig) *sim.Adversary {
	adv, err := sim.NewAdversary(key, cfg)
	if err != nil {
		panic(err) // static budgets; validated by construction
	}
	return adv
}

func e12RunAlgo(opt Options, spec RunSpec) *RunRecord {
	rec := newRecord(spec)
	algo, regime, _ := strings.Cut(spec.Unit, "/")
	var cfg sim.AdversaryConfig
	found := false
	for _, reg := range e12Regimes {
		if reg.name == regime {
			cfg, found = reg.cfg, true
		}
	}
	if !found {
		return rec.fail("unknown regime " + regime)
	}
	g := e12Graph(opt, spec, spec.N)
	key := spec.SimKey(opt.Seed)
	adv := e12Adversary(key, cfg)
	src := key.FullSource()

	var res interface {
		Accounting() (rounds int, messages int64, tel *sim.Telemetry)
	}
	switch algo {
	case "Luby":
		in, r, err := mis.Luby(g, src, nil, mis.LubyConfig{Adversary: adv})
		if r == nil {
			return rec.fail(err.Error())
		}
		res = accountingOf{r.Rounds, r.Messages, r.Telemetry}
		rec.set("completed", boolVal(err == nil))
		valid := err == nil && check.MIS(g, in) == nil
		rec.set("valid", boolVal(valid))
		// Every completed-but-invalid output must be caught by the
		// fault-free distributed checker (Definition 2.2 as an oracle).
		if err == nil && !valid {
			all, _, cerr := check.MISDistributed(g, in)
			if cerr != nil {
				return rec.fail(cerr.Error())
			}
			if all {
				return rec.fail("distributed checker missed an invalid MIS")
			}
			rec.set("caught", 1)
		}
	case "EN":
		d, r, err := decomp.ElkinNeiman(g, src, nil, decomp.ENConfig{RadiusCap: e11RadiusCap, Adversary: adv})
		if r == nil {
			return rec.fail(err.Error())
		}
		res = accountingOf{r.Rounds, r.Messages, r.Telemetry}
		rec.set("completed", boolVal(err == nil))
		rec.set("valid", boolVal(err == nil && d.Validate(g, 0, 0) == nil))
	case "Coloring":
		colors, r, err := coloring.Randomized(g, src, nil, coloring.Config{Adversary: adv})
		if r == nil {
			return rec.fail(err.Error())
		}
		res = accountingOf{r.Rounds, r.Messages, r.Telemetry}
		rec.set("completed", boolVal(err == nil))
		valid := err == nil && check.Coloring(g, colors, 0) == nil
		rec.set("valid", boolVal(valid))
		if err == nil && !valid {
			all, _, cerr := check.ColoringDistributed(g, colors, 0)
			if cerr != nil {
				return rec.fail(cerr.Error())
			}
			if all {
				return rec.fail("distributed checker missed an improper coloring")
			}
			rec.set("caught", 1)
		}
	default:
		return rec.fail("unknown algorithm " + algo)
	}

	rounds, messages, tel := res.Accounting()
	rec.set("rounds", float64(rounds))
	rec.set("messages", float64(messages))
	if tel != nil {
		counts := map[sim.InjectKind]int{}
		for _, ev := range tel.Injected {
			counts[ev.Kind] += ev.Count
		}
		rec.set("lost", float64(counts[sim.InjectDrop]+counts[sim.InjectCut]+
			counts[sim.InjectSupersede]+counts[sim.InjectExpire]))
		rec.set("delayed", float64(counts[sim.InjectDelay]))
		rec.set("crashed", float64(counts[sim.InjectCrash]))
		rec.set("stalls", float64(counts[sim.InjectStall]))
		rec.set("churned", float64(counts[sim.InjectChurnDown]))
	}
	return rec
}

// accountingOf adapts the three wrappers' differently-typed Results to the
// few fields E12 reads.
type accountingOf struct {
	rounds   int
	messages int64
	tel      *sim.Telemetry
}

func (a accountingOf) Accounting() (int, int64, *sim.Telemetry) {
	return a.rounds, a.messages, a.tel
}

// e12RunOracle runs one distributed checker over a faulted network, once on
// a valid solution (measuring the false-reject rate) and once on a
// corrupted one (which must be rejected — a false accept fails the record).
func e12RunOracle(opt Options, spec RunSpec) *RunRecord {
	rec := newRecord(spec)
	g := e12Graph(opt, spec, spec.N)
	n := g.N()
	key := spec.SimKey(opt.Seed)
	checkOpt := check.Options{Adversary: e12Adversary(key, e12OracleBudget)}

	// Deterministic valid solutions on the shared instance.
	inMIS := make([]bool, n)
	colors := make([]int, n)
	for v := 0; v < n; v++ {
		ok := true
		used := map[int]bool{}
		for _, w := range g.Neighbors(v) {
			if inMIS[w] {
				ok = false
			}
			if int(w) < v {
				used[colors[w]] = true
			}
		}
		inMIS[v] = ok
		for used[colors[v]] {
			colors[v]++
		}
	}

	var acceptValid, acceptInvalid bool
	switch spec.Unit {
	case "oracle/MIS":
		av, _, err := check.MISDistributedOpts(g, inMIS, checkOpt)
		if err != nil {
			return rec.fail(err.Error())
		}
		bad := append([]bool(nil), inMIS...)
		bad[n/2] = !bad[n/2]
		ai, _, err := check.MISDistributedOpts(g, bad, checkOpt)
		if err != nil {
			return rec.fail(err.Error())
		}
		acceptValid, acceptInvalid = av, ai
	case "oracle/coloring":
		av, _, err := check.ColoringDistributedOpts(g, colors, 0, checkOpt)
		if err != nil {
			return rec.fail(err.Error())
		}
		bad := append([]int(nil), colors...)
		v := n / 2
		bad[v] = bad[g.Neighbors(v)[0]] // force one monochromatic edge
		ai, _, err := check.ColoringDistributedOpts(g, bad, 0, checkOpt)
		if err != nil {
			return rec.fail(err.Error())
		}
		acceptValid, acceptInvalid = av, ai
	case "oracle/decomp":
		// Singleton clusters with a proper coloring form a radius-1-checkable
		// valid decomposition; equating the colors of one edge's endpoints
		// corrupts it.
		clusters := make([]int, n)
		for v := range clusters {
			clusters[v] = v
		}
		d := &decomp.Decomposition{Cluster: clusters, Color: colors}
		av, err := check.DecompositionDistributedOpts(g, d, 1, checkOpt)
		if err != nil {
			return rec.fail(err.Error())
		}
		badColors := append([]int(nil), colors...)
		v := n / 2
		badColors[v] = badColors[g.Neighbors(v)[0]]
		ai, err := check.DecompositionDistributedOpts(g, &decomp.Decomposition{Cluster: clusters, Color: badColors}, 1, checkOpt)
		if err != nil {
			return rec.fail(err.Error())
		}
		acceptValid, acceptInvalid = av, ai
	case "oracle/splitting":
		nu, nv := n/2, n/2+n%2
		adjU := make([][]int, nu)
		for u := range adjU {
			adjU[u] = []int{(2 * u) % nv, (2*u + 1) % nv}
		}
		split := make([]int, nv)
		for v := range split {
			split[v] = v % 2
		}
		// The canonical wiring pairs an even with an odd V-node per U-node
		// when nv is even; force that so the valid arm is truly valid.
		if nv%2 == 1 {
			for u := range adjU {
				adjU[u] = []int{0, 1}
			}
		}
		av, err := check.SplittingDistributedOpts(adjU, nv, split, checkOpt)
		if err != nil {
			return rec.fail(err.Error())
		}
		ai, err := check.SplittingDistributedOpts(adjU, nv, make([]int, nv), checkOpt)
		if err != nil {
			return rec.fail(err.Error())
		}
		acceptValid, acceptInvalid = av, ai
	default:
		return rec.fail("unknown oracle unit " + spec.Unit)
	}

	rec.set("acceptValid", boolVal(acceptValid))
	rec.set("acceptInvalid", boolVal(acceptInvalid))
	if acceptInvalid {
		return rec.fail("faulted checker accepted an invalid solution (oracle property violated)")
	}
	return rec
}

func e12Table(opt Options, rep *Report) *Table {
	t := tableFor("E12", []string{"unit", "n", "done", "valid", "rounds", "messages", "lost", "delayed", "crashed", "stalls", "churned", "trials", "failures"})
	for _, algo := range e12Algos {
		for _, reg := range e12Regimes {
			unit := algo + "/" + reg.name
			for _, n := range e12Sizes(opt) {
				recs := rep.trialsOf("E12", unit, n, e12Trials(opt))
				if len(recs) == 0 {
					continue
				}
				done := summarize(collect(recs, "completed"))
				valid := summarize(collect(recs, "valid"))
				rounds := summarize(collect(recs, "rounds"))
				msgs := summarize(collect(recs, "messages"))
				t.AddRow(unit, itoa(n),
					fmt.Sprintf("%.0f%%", 100*done.mean),
					fmt.Sprintf("%.0f%%", 100*valid.mean),
					d0(rounds.mean), d0(msgs.mean),
					d0(summarize(collect(recs, "lost")).mean),
					d0(summarize(collect(recs, "delayed")).mean),
					d0(summarize(collect(recs, "crashed")).mean),
					d0(summarize(collect(recs, "stalls")).mean),
					d0(summarize(collect(recs, "churned")).mean),
					itoa(len(recs)), itoa(failures(recs)))
			}
		}
	}
	for _, unit := range e12OracleUnits {
		for _, n := range e12Sizes(opt) {
			recs := rep.trialsOf("E12", unit, n, e12Trials(opt))
			if len(recs) == 0 {
				continue
			}
			av := summarize(collect(recs, "acceptValid"))
			ai := summarize(collect(recs, "acceptInvalid"))
			t.AddRow(unit, itoa(n),
				"-", fmt.Sprintf("ok:%.0f%% bad:%.0f%%", 100*av.mean, 100*ai.mean),
				"-", "-", "-", "-", "-", "-", "-",
				itoa(len(recs)), itoa(failures(recs)))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("all units of a size share one gnp(4/n) instance; faults draw from the adversary stream of each trial's key (oracle units run under drop=%.2f + stall=%d)", e12OracleBudget.DropProb, e12OracleBudget.StallPerRound),
		"clean is the control arm: stream isolation makes it bit-identical to a fault-free run",
		"done = run finished with every surviving node decided; valid = output passes the global validator on the original graph; every completed-but-invalid output was re-checked by the fault-free distributed checker (a miss fails the record)",
		"oracle rows: ok = faulted checker accepted the valid solution (false-reject rate is 100% minus this); bad = accepted the corrupted one (must be 0% — one-sided oracle)",
		fmt.Sprintf("EN runs with RadiusCap=%d as in E11", e11RadiusCap))
	return t
}
