package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"randlocal/internal/sim"
)

// RecordSchema is the format version stamped on every emitted RunRecord;
// consumers (the -validate CLI mode, the CI smoke job) reject records whose
// version they do not know.
const RecordSchema = 1

// RunSpec identifies one unit of experimental work: one trial of one
// experiment's unit (a graph family, a parameter setting, a probe) at one
// size. Specs are the pipeline's checkpoint granularity — a completed spec
// is never re-run on resume — and the sole source of a trial's randomness:
// Seed derives the trial's seed from the spec's identity alone, so records
// are independent of execution order and of which trials ran in the same
// process.
type RunSpec struct {
	// Experiment is the experiment ID, e.g. "E1".
	Experiment string `json:"experiment"`
	// Unit names the row group within the experiment: a graph family
	// ("gnp(4/n)"), a parameter setting ("phases=2"), or a probe label.
	Unit string `json:"unit"`
	// N is the instance size the unit is swept over (0 when the unit has
	// a single fixed size of its own).
	N int `json:"n"`
	// Trial indexes independent repetitions of the same (Experiment,
	// Unit, N).
	Trial int `json:"trial"`
}

// Key is the spec's unique identity, used for checkpoint lookups.
func (s RunSpec) Key() string {
	return s.Experiment + "|" + s.Unit + "|" + strconv.Itoa(s.N) + "|" + strconv.Itoa(s.Trial)
}

// SimKey derives the spec's partitioned simulation key from the master
// seed: SimulationKey.Derive over the spec's identity. Everything a trial
// randomizes — the instance (workload stream), the algorithm's coins, any
// adversary — hangs off this one key, so records are independent of
// execution order and of which trials ran in the same process.
func (s RunSpec) SimKey(master uint64) sim.SimulationKey {
	return sim.NewSimulationKey(master).Derive(s.Key())
}

// Seed is the spec's key as a raw seed. Derive is bit-identical to the
// pipeline's historical FNV-1a derivation (pinned by the sim package's
// golden tests), so every checked-in record stays reproducible.
func (s RunSpec) Seed(master uint64) uint64 {
	return uint64(s.SimKey(master))
}

// instanceSeed derives the seed shared by every trial of the same
// (experiment, unit, size): experiments that fix one instance per unit and
// repeat randomized solving trials over it draw the instance from this and
// the per-trial randomness from Seed.
func (s RunSpec) instanceSeed(master uint64) uint64 {
	return RunSpec{Experiment: s.Experiment, Unit: s.Unit, N: s.N}.Seed(master)
}

// sharedSeed derives a seed shared by every unit of the experiment at the
// same size, under a neutral label: experiments that compare several
// regimes *on the same instance* (E3's splitting instance across
// randomness budgets, E8's graph across MIS and coloring) build the
// instance from this, so the comparison stays controlled while per-trial
// randomness still comes from Seed.
func (s RunSpec) sharedSeed(master uint64, label string) uint64 {
	return RunSpec{Experiment: s.Experiment, Unit: label, N: s.N}.Seed(master)
}

// RunRecord is the measured outcome of one RunSpec — the pipeline's unit of
// checkpointing, emission and aggregation.
type RunRecord struct {
	// Schema is the record format version (RecordSchema).
	Schema int `json:"schema"`
	// Spec identifies what was run.
	Spec RunSpec `json:"spec"`
	// OK reports whether the trial met its experiment's validity check;
	// Err carries the failure reason when it did not abort silently.
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Values holds the trial's named scalar measurements (rounds, colors,
	// bits, ...); each experiment's Table function knows its own keys.
	Values map[string]float64 `json:"values,omitempty"`
	// Curve is the live-fringe trajectory (Result.ActivePerRound) for
	// experiments that record it — the shattering-tail shape.
	Curve []int `json:"active_per_round,omitempty"`
	// ElapsedNS is the trial's wall time. It is measurement metadata:
	// excluded from resume-equality comparison (see EqualStable).
	ElapsedNS int64 `json:"elapsed_ns"`
}

// newRecord starts a successful record for spec; Run functions flip OK off
// via fail.
func newRecord(spec RunSpec) *RunRecord {
	return &RunRecord{Schema: RecordSchema, Spec: spec, OK: true, Values: map[string]float64{}}
}

// set stores one named measurement.
func (r *RunRecord) set(name string, v float64) *RunRecord {
	r.Values[name] = v
	return r
}

// fail marks the record failed with a reason.
func (r *RunRecord) fail(reason string) *RunRecord {
	r.OK = false
	r.Err = reason
	return r
}

// val returns a named measurement (0 when absent).
func (r *RunRecord) val(name string) float64 { return r.Values[name] }

// Validate checks the record's schema: version, a well-formed spec, finite
// values. It is what the -validate CLI mode and the CI smoke job run over
// every emitted record.
func (r *RunRecord) Validate() error {
	if r.Schema != RecordSchema {
		return fmt.Errorf("record %s: schema %d, want %d", r.Spec.Key(), r.Schema, RecordSchema)
	}
	if r.Spec.Experiment == "" || r.Spec.Unit == "" {
		return fmt.Errorf("record %q: empty experiment or unit", r.Spec.Key())
	}
	if r.Spec.N < 0 || r.Spec.Trial < 0 {
		return fmt.Errorf("record %s: negative size or trial", r.Spec.Key())
	}
	if !r.OK && r.Err == "" {
		return fmt.Errorf("record %s: failed without a reason", r.Spec.Key())
	}
	for k, v := range r.Values {
		if k == "" {
			return fmt.Errorf("record %s: empty value name", r.Spec.Key())
		}
		if v != v || v > 1e300 || v < -1e300 {
			return fmt.Errorf("record %s: value %q = %v is not finite", r.Spec.Key(), k, v)
		}
	}
	for i, a := range r.Curve {
		if a < 0 {
			return fmt.Errorf("record %s: active_per_round[%d] = %d < 0", r.Spec.Key(), i, a)
		}
	}
	if r.ElapsedNS < 0 {
		return fmt.Errorf("record %s: negative elapsed time", r.Spec.Key())
	}
	return nil
}

// EqualStable reports whether two records agree on everything a re-run must
// reproduce — spec, outcome and measurements — ignoring wall-clock metadata.
// It is the comparison the checkpoint-resume round-trip check uses.
func (r *RunRecord) EqualStable(o *RunRecord) bool {
	if r.Spec != o.Spec || r.OK != o.OK || r.Err != o.Err {
		return false
	}
	if len(r.Values) != len(o.Values) || len(r.Curve) != len(o.Curve) {
		return false
	}
	for k, v := range r.Values {
		ov, ok := o.Values[k]
		if !ok || ov != v {
			return false
		}
	}
	for i, a := range r.Curve {
		if o.Curve[i] != a {
			return false
		}
	}
	return true
}

// RecordSet is an emitted collection of records plus the run metadata needed
// to reproduce it — the content of records.json.
type RecordSet struct {
	Schema  int          `json:"schema"`
	Seed    uint64       `json:"seed"`
	Quick   bool         `json:"quick"`
	Records []*RunRecord `json:"records"`
}

// Validate checks the set header and every record, including key uniqueness.
func (rs *RecordSet) Validate() error {
	if rs.Schema != RecordSchema {
		return fmt.Errorf("record set: schema %d, want %d", rs.Schema, RecordSchema)
	}
	seen := make(map[string]bool, len(rs.Records))
	for _, rec := range rs.Records {
		if rec == nil {
			return fmt.Errorf("record set: nil record")
		}
		if err := rec.Validate(); err != nil {
			return err
		}
		k := rec.Spec.Key()
		if seen[k] {
			return fmt.Errorf("record set: duplicate record %s", k)
		}
		seen[k] = true
	}
	return nil
}

// LoadRecordSet reads a records.json emission.
func LoadRecordSet(path string) (*RecordSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rs RecordSet
	if err := json.NewDecoder(f).Decode(&rs); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", path, err)
	}
	return &rs, nil
}

// DiffStable compares two record sets on their stable fields — spec,
// outcome and measurements, not wall time — returning a description of
// every disagreement. Two runs of the same sweep with the same seed must
// produce stably-equal sets regardless of interruption, resume, pool width
// or execution order; the CI smoke job holds the pipeline to that.
func DiffStable(a, b *RecordSet) ([]string, error) {
	if a.Seed != b.Seed || a.Quick != b.Quick {
		return nil, fmt.Errorf("experiments: diffing runs with different options (seed %d/%d, quick %v/%v)",
			a.Seed, b.Seed, a.Quick, b.Quick)
	}
	index := make(map[string]*RunRecord, len(b.Records))
	for _, rec := range b.Records {
		index[rec.Spec.Key()] = rec
	}
	var diffs []string
	for _, ra := range a.Records {
		k := ra.Spec.Key()
		rb, ok := index[k]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: only in first set", k))
			continue
		}
		delete(index, k)
		if !ra.EqualStable(rb) {
			diffs = append(diffs, fmt.Sprintf("%s: stable fields differ", k))
		}
	}
	for k := range index {
		diffs = append(diffs, fmt.Sprintf("%s: only in second set", k))
	}
	sort.Strings(diffs)
	return diffs, nil
}

// sortRecords orders records for stable emission: by experiment ID (natural
// E1 < E2 < ... < E10 < E11 order), then unit, then size, then trial.
func sortRecords(recs []*RunRecord) {
	order := make(map[string]int, len(experimentOrder))
	for i, id := range experimentOrder {
		order[id] = i
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i].Spec, recs[j].Spec
		if oa, ob := order[a.Experiment], order[b.Experiment]; oa != ob {
			return oa < ob
		}
		if a.Experiment != b.Experiment { // unknown IDs: fall back to string order
			return a.Experiment < b.Experiment
		}
		if a.Unit != b.Unit {
			return a.Unit < b.Unit
		}
		if a.N != b.N {
			return a.N < b.N
		}
		return a.Trial < b.Trial
	})
}

// WriteJSON emits the set as indented JSON.
func (rs *RecordSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(rs)
}

// WriteCSV emits the set's measurements in long format — one row per
// (spec, metric) — which keeps the column set fixed across experiments with
// disjoint measurement names: experiment,unit,n,trial,ok,metric,value.
func (rs *RecordSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"experiment", "unit", "n", "trial", "ok", "metric", "value"}); err != nil {
		return err
	}
	for _, rec := range rs.Records {
		base := []string{rec.Spec.Experiment, rec.Spec.Unit,
			strconv.Itoa(rec.Spec.N), strconv.Itoa(rec.Spec.Trial), strconv.FormatBool(rec.OK)}
		names := make([]string, 0, len(rec.Values))
		for k := range rec.Values {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			row := append(append([]string(nil), base...), k, strconv.FormatFloat(rec.Values[k], 'g', -1, 64))
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
