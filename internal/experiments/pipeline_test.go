package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stubExperiment is a tiny deterministic experiment for pipeline tests:
// 2 units × 2 sizes × 2 trials, each record a pure function of its spec
// seed, with a curve to exercise the ActivePerRound emission path.
func stubExperiment() *Experiment {
	return &Experiment{
		ID:    "S1",
		Title: "pipeline stub",
		Claim: "records are a pure function of the spec",
		Specs: func(opt Options) []RunSpec {
			var specs []RunSpec
			for _, unit := range []string{"alpha", "beta"} {
				for _, n := range []int{8, 16} {
					for tr := 0; tr < 2; tr++ {
						specs = append(specs, RunSpec{Experiment: "S1", Unit: unit, N: n, Trial: tr})
					}
				}
			}
			return specs
		},
		Run: func(opt Options, spec RunSpec) *RunRecord {
			rec := newRecord(spec)
			seed := spec.Seed(opt.Seed)
			rec.set("value", float64(seed%1000))
			rec.set("n", float64(spec.N))
			rec.Curve = []int{spec.N, spec.N / 2, 1}
			return rec
		},
		Table: func(opt Options, rep *Report) *Table {
			t := &Table{ID: "S1", Title: "stub", Claim: "stub", Columns: []string{"unit", "n", "value"}}
			for _, unit := range []string{"alpha", "beta"} {
				for _, n := range []int{8, 16} {
					for _, rec := range rep.trialsOf("S1", unit, n, 2) {
						t.AddRow(unit, itoa(n), d0(rec.val("value")))
					}
				}
			}
			return t
		},
	}
}

func runStub(t *testing.T, runner *Runner) *Report {
	t.Helper()
	rep, err := runner.Run([]*Experiment{stubExperiment()})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestPipelineEmission checks the output files of a complete run: a valid
// records.json, a parseable long-format CSV with one row per (record,
// metric), and a checkpoint journal with a header plus one line per record.
func TestPipelineEmission(t *testing.T) {
	dir := t.TempDir()
	rep := runStub(t, &Runner{Opt: Options{Seed: 7}, OutDir: dir})
	if !rep.Complete() || rep.Ran != 8 || rep.Resumed != 0 {
		t.Fatalf("fresh run: ran %d resumed %d complete %v", rep.Ran, rep.Resumed, rep.Complete())
	}
	rs, err := LoadRecordSet(filepath.Join(dir, recordsJSONFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rs.Records) != 8 {
		t.Fatalf("records.json holds %d records", len(rs.Records))
	}
	for _, rec := range rs.Records {
		if len(rec.Curve) != 3 {
			t.Errorf("record %s lost its curve", rec.Spec.Key())
		}
	}
	cf, err := os.Open(filepath.Join(dir, recordsCSVFile))
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	rows, err := csv.NewReader(cf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := "experiment,unit,n,trial,ok,metric,value"
	if got := strings.Join(rows[0], ","); got != wantHeader {
		t.Errorf("csv header %q, want %q", got, wantHeader)
	}
	if len(rows) != 1+8*2 { // 2 metrics per record
		t.Errorf("csv rows = %d, want %d", len(rows), 1+8*2)
	}
	ckpt, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimRight(string(ckpt), "\n"), "\n") + 1; lines != 1+8 {
		t.Errorf("checkpoint lines = %d, want header + 8 records", lines)
	}
}

// TestPipelineCheckpointResume is the write → stop → resume → compare
// round-trip: a -limit interrupted run plus a resume must reproduce exactly
// the records of an uninterrupted run (stable fields).
func TestPipelineCheckpointResume(t *testing.T) {
	full := runStub(t, &Runner{Opt: Options{Seed: 7}, OutDir: t.TempDir()})

	dir := t.TempDir()
	part := runStub(t, &Runner{Opt: Options{Seed: 7}, OutDir: dir, Limit: 3})
	if !part.LimitHit || part.Ran != 3 || part.Complete() {
		t.Fatalf("limit run: ran %d, limitHit %v, complete %v", part.Ran, part.LimitHit, part.Complete())
	}
	if _, err := os.Stat(filepath.Join(dir, recordsJSONFile)); !os.IsNotExist(err) {
		t.Error("interrupted run emitted records.json")
	}

	resumed := runStub(t, &Runner{Opt: Options{Seed: 7}, OutDir: dir})
	if resumed.Resumed != 3 || resumed.Ran != 5 || !resumed.Complete() {
		t.Fatalf("resume: resumed %d ran %d complete %v", resumed.Resumed, resumed.Ran, resumed.Complete())
	}
	diffs, err := DiffStable(full.RecordSet(), resumed.RecordSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("resumed run differs from uninterrupted run: %v", diffs)
	}
}

// TestPipelineTornCheckpoint simulates a kill mid-append: the journal's
// last line is truncated. Resume must drop the torn record, re-run it, and
// still converge to the uninterrupted result.
func TestPipelineTornCheckpoint(t *testing.T) {
	full := runStub(t, &Runner{Opt: Options{Seed: 7}, OutDir: t.TempDir()})

	dir := t.TempDir()
	runStub(t, &Runner{Opt: Options{Seed: 7}, OutDir: dir, Limit: 4})
	path := filepath.Join(dir, checkpointFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-17], 0o644); err != nil { // tear the last record
		t.Fatal(err)
	}

	// First resume appends after the tear: it must terminate the torn line
	// first, so the record it appends stays parseable by later resumes.
	partial := runStub(t, &Runner{Opt: Options{Seed: 7}, OutDir: dir, Limit: 1})
	if partial.Resumed != 3 || partial.Ran != 1 {
		t.Fatalf("post-tear limited resume: resumed %d ran %d", partial.Resumed, partial.Ran)
	}
	resumed := runStub(t, &Runner{Opt: Options{Seed: 7}, OutDir: dir})
	if resumed.Resumed != 4 {
		t.Errorf("resumed %d records; the record appended after the torn tail was lost", resumed.Resumed)
	}
	if !resumed.Complete() {
		t.Fatal("resume did not complete")
	}
	diffs, err := DiffStable(full.RecordSet(), resumed.RecordSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("torn-checkpoint resume differs: %v", diffs)
	}
}

// TestPipelineCheckpointOptionMismatch: resuming under different options
// must refuse rather than silently mix incompatible records.
func TestPipelineCheckpointOptionMismatch(t *testing.T) {
	dir := t.TempDir()
	runStub(t, &Runner{Opt: Options{Seed: 7}, OutDir: dir, Limit: 2})
	_, err := (&Runner{Opt: Options{Seed: 8}, OutDir: dir}).Run([]*Experiment{stubExperiment()})
	if err == nil || !strings.Contains(err.Error(), "checkpointed with") {
		t.Fatalf("seed mismatch not rejected: %v", err)
	}
	_, err = (&Runner{Opt: Options{Seed: 7, Quick: true}, OutDir: dir}).Run([]*Experiment{stubExperiment()})
	if err == nil {
		t.Fatal("quick mismatch not rejected")
	}
}

// TestPipelinePoolDeterminism: a wide trial pool must produce stably
// identical records to a serial run — specs own their seeds, so execution
// order cannot matter.
func TestPipelinePoolDeterminism(t *testing.T) {
	serial := runStub(t, &Runner{Opt: Options{Seed: 7}, Jobs: 1})
	pooled := runStub(t, &Runner{Opt: Options{Seed: 7}, Jobs: 8})
	diffs, err := DiffStable(serial.RecordSet(), pooled.RecordSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("pooled run differs from serial run: %v", diffs)
	}
}

// TestPipelineRealExperimentResume runs a real (quick) experiment through
// the interruption round-trip, so determinism of the actual experiment code
// — not just the stub — is held to the resume contract.
func TestPipelineRealExperimentResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real trials")
	}
	opt := Options{Quick: true, Seed: 3}
	exps := []*Experiment{E5}
	full, err := (&Runner{Opt: opt}).Run(exps)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := (&Runner{Opt: opt, OutDir: dir, Limit: 2}).Run(exps); err != nil {
		t.Fatal(err)
	}
	resumed, err := (&Runner{Opt: opt, OutDir: dir}).Run(exps)
	if err != nil {
		t.Fatal(err)
	}
	diffs, err := DiffStable(full.RecordSet(), resumed.RecordSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Errorf("real-experiment resume differs: %v", diffs)
	}
}

// TestRecordValidate exercises the schema checks -validate relies on.
func TestRecordValidate(t *testing.T) {
	good := newRecord(RunSpec{Experiment: "E1", Unit: "ring", N: 8, Trial: 0}).set("x", 1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	bad := *good
	bad.Schema = 99
	if (&bad).Validate() == nil {
		t.Error("wrong schema accepted")
	}
	bad = *good
	bad.Spec.Unit = ""
	if (&bad).Validate() == nil {
		t.Error("empty unit accepted")
	}
	bad = *good
	bad.OK = false
	if (&bad).Validate() == nil {
		t.Error("failure without reason accepted")
	}
	bad = *good
	bad.Values = map[string]float64{"nan": nan()}
	if (&bad).Validate() == nil {
		t.Error("non-finite value accepted")
	}
	// Duplicate keys are a set-level error.
	rs := &RecordSet{Schema: RecordSchema, Records: []*RunRecord{good, good}}
	if rs.Validate() == nil {
		t.Error("duplicate records accepted")
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestDiffStable(t *testing.T) {
	mk := func(v float64) *RecordSet {
		rec := newRecord(RunSpec{Experiment: "E1", Unit: "u", N: 4, Trial: 0}).set("x", v)
		rec.ElapsedNS = int64(v * 1e6) // must be ignored
		return &RecordSet{Schema: RecordSchema, Seed: 1, Records: []*RunRecord{rec}}
	}
	if diffs, err := DiffStable(mk(1), mk(1)); err != nil || len(diffs) != 0 {
		t.Errorf("identical sets diff: %v %v", diffs, err)
	}
	if diffs, _ := DiffStable(mk(1), mk(2)); len(diffs) != 1 {
		t.Errorf("value change missed: %v", diffs)
	}
	a := mk(1)
	a.Records[0].ElapsedNS = 999 // wall time must not matter
	if diffs, _ := DiffStable(a, mk(1)); len(diffs) != 0 {
		t.Errorf("elapsed time treated as stable: %v", diffs)
	}
	b := mk(1)
	b.Seed = 2
	if _, err := DiffStable(a, b); err == nil {
		t.Error("option mismatch not rejected")
	}
	var missing string
	c := mk(1)
	c.Records = nil
	if diffs, _ := DiffStable(a, c); len(diffs) == 1 {
		missing = diffs[0]
	}
	if !strings.Contains(missing, "only in first set") {
		t.Errorf("missing record not reported: %q", missing)
	}
}
