// Package experiments regenerates every experiment table in EXPERIMENTS.md.
// The paper is a theory paper with no empirical tables of its own, so each
// experiment operationalizes one quantitative claim (see DESIGN.md §3):
// the measured columns sit next to the paper's bound so the "shape" of each
// theorem — who wins, what scales like what — is directly visible.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"randlocal/internal/sim"
)

// Options controls experiment scale.
type Options struct {
	// Quick shrinks sizes and trial counts for CI-speed runs.
	Quick bool
	// Seed is the master seed; experiments derive per-trial seeds from it.
	Seed uint64
	// Scheduler selects the simulation engine every experiment's inner
	// simulations run on (sim.Auto keeps the sequential default); all
	// three engines produce identical tables for the same seed.
	Scheduler sim.Scheduler
	// Workers is the pool size for the parallel engine; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
}

// applyScheduler installs the options' engine choice as the package-wide
// default so the algorithm wrappers the experiments call pick it up.
func (o Options) applyScheduler() {
	sim.SetDefaultScheduler(o.Scheduler, o.Workers)
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being exercised
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned plain text (also valid Markdown when
// pasted into a code block).
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// stats summarizes a sample.
type stats struct {
	mean, max, min float64
}

func summarize(xs []float64) stats {
	if len(xs) == 0 {
		return stats{}
	}
	s := stats{min: math.Inf(1), max: math.Inf(-1)}
	total := 0.0
	for _, x := range xs {
		total += x
		if x > s.max {
			s.max = x
		}
		if x < s.min {
			s.min = x
		}
	}
	s.mean = total / float64(len(xs))
	return s
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func d0(x float64) string { return fmt.Sprintf("%.0f", x) }
func itoa(x int) string   { return fmt.Sprintf("%d", x) }
func i64(x int64) string  { return fmt.Sprintf("%d", x) }
func lg2(n int) float64   { return math.Log2(float64(n)) }
func ratio(x float64, n int) string {
	return fmt.Sprintf("%.2f", x/lg2(n))
}

// All runs every experiment in order.
func All(opt Options) []*Table {
	opt.applyScheduler()
	tables := []*Table{
		E1ElkinNeiman(opt),
		E2LowRand(opt),
		E3Splitting(opt),
		E4KWise(opt),
		E5SharedRand(opt),
		E6Shattering(opt),
		E7Derand(opt),
		E8Derandomize(opt),
		E9Ledger(opt),
		E10Ablations(opt),
	}
	return tables
}

// RenderAll renders every experiment to w.
func RenderAll(w io.Writer, opt Options) {
	for _, t := range All(opt) {
		t.Render(w)
	}
}

// ByID returns the experiment runner for an id like "E3", or nil.
func ByID(id string) func(Options) *Table {
	m := map[string]func(Options) *Table{
		"E1":  E1ElkinNeiman,
		"E2":  E2LowRand,
		"E3":  E3Splitting,
		"E4":  E4KWise,
		"E5":  E5SharedRand,
		"E6":  E6Shattering,
		"E7":  E7Derand,
		"E8":  E8Derandomize,
		"E9":  E9Ledger,
		"E10": E10Ablations,
	}
	fn := m[strings.ToUpper(id)]
	if fn == nil {
		return nil
	}
	return func(opt Options) *Table {
		opt.applyScheduler()
		return fn(opt)
	}
}

// IDs lists the experiment identifiers in order.
func IDs() []string {
	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"}
	sort.Strings(ids)
	return ids
}
