// Package experiments is the measurement pipeline behind EXPERIMENTS.md.
// The paper is a theory paper with no empirical tables of its own, so each
// experiment operationalizes one quantitative claim: the measured columns
// sit next to the paper's bound so the "shape" of each theorem — who wins,
// what scales like what — is directly visible.
//
// Work is structured as a typed RunSpec → RunRecord pipeline: every
// experiment expands into per-(unit, size, trial) specs, each spec runs to
// a record of named measurements (deterministically — a spec's seed is a
// function of its identity and the master seed alone), and the tables are
// pure aggregations over records. The Runner executes specs on a
// trial-level worker pool, checkpoints each completed record to a JSONL
// journal so interrupted sweeps resume where they stopped, and emits the
// full record set as JSON and CSV next to the rendered text tables.
package experiments

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"randlocal/internal/sim"
)

// Options controls experiment scale.
type Options struct {
	// Quick shrinks sizes and trial counts for CI-speed runs.
	Quick bool
	// Seed is the master seed; every spec derives its own stream from it
	// (RunSpec.Seed), so records are independent of execution order.
	Seed uint64
	// Scheduler selects the simulation engine every experiment's inner
	// simulations run on (sim.Auto keeps the sequential default); all
	// three engines produce identical records for the same seed.
	Scheduler sim.Scheduler
	// Workers is the pool size for the parallel engine; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Pool, when non-nil, is the warm engine-buffer pool every simulation
	// of the sweep draws from (sim.EnginePool): multi-trial sweeps stop
	// re-allocating planes and worklists per trial. Purely a performance
	// lever — records are byte-identical pooled or not.
	Pool *sim.EnginePool
}

// applyScheduler installs the options' engine choice and engine pool as the
// package-wide defaults so the algorithm wrappers the experiments call pick
// them up.
func (o Options) applyScheduler() {
	sim.SetDefaultScheduler(o.Scheduler, o.Workers)
	sim.SetDefaultPool(o.Pool)
}

// Experiment is one measurement: a sweep of specs, a per-spec runner, and a
// table aggregation. Run must be deterministic given the spec (derive all
// randomness from spec.Seed/spec.instanceSeed) and safe to call from
// multiple pool workers at once.
type Experiment struct {
	ID    string
	Title string
	Claim string // the paper's claim being exercised
	// Specs expands the experiment into its (unit, size, trial) sweep.
	Specs func(opt Options) []RunSpec
	// Run executes one spec to a record.
	Run func(opt Options, spec RunSpec) *RunRecord
	// Table aggregates the experiment's records (rep.Get / rep.trialsOf)
	// into the rendered table.
	Table func(opt Options, rep *Report) *Table
}

// experimentOrder fixes the presentation (and record-sort) order.
var experimentOrder = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"}

// registry is populated by init rather than a var initializer: experiment
// Table closures look their own metadata up through ByID, which would
// otherwise be an initialization cycle.
var registry []*Experiment

func init() {
	registry = []*Experiment{E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12, E13}
}

// Registry returns every experiment in order.
func Registry() []*Experiment { return registry }

// ByID returns the experiment with the given ID ("E3", case-insensitive),
// or nil.
func ByID(id string) *Experiment {
	id = strings.ToUpper(strings.TrimSpace(id))
	for _, exp := range Registry() {
		if exp.ID == id {
			return exp
		}
	}
	return nil
}

// IDs lists the experiment identifiers in order.
func IDs() []string { return append([]string(nil), experimentOrder...) }

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being exercised
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned plain text (also valid Markdown when
// pasted into a code block).
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Tables aggregates every experiment of the report into its rendered table,
// in registry order.
func (rep *Report) Tables() []*Table {
	tables := make([]*Table, 0, len(rep.Experiments))
	for _, exp := range rep.Experiments {
		tables = append(tables, exp.Table(rep.Opt, rep))
	}
	return tables
}

// RenderText writes every table as plain text.
func (rep *Report) RenderText(w io.Writer) {
	for _, t := range rep.Tables() {
		t.Render(w)
	}
}

// WriteMarkdown writes the report as EXPERIMENTS.md: a reproduction header,
// then one fenced table per experiment. The first write error is returned —
// a truncated report must not look like success.
func (rep *Report) WriteMarkdown(out io.Writer) error {
	bw := bufio.NewWriter(out)
	w := io.Writer(bw)
	fmt.Fprintf(w, "# EXPERIMENTS\n\n")
	fmt.Fprintf(w, "Measurement tables for the paper's quantitative claims, one experiment\n")
	fmt.Fprintf(w, "per claim, regenerated by the `cmd/experiments` pipeline.\n\n")
	mode := "full scale"
	if rep.Opt.Quick {
		mode = "quick (CI-sized)"
	}
	fmt.Fprintf(w, "- generated by: `go run ./cmd/experiments -seed %d` (%s)\n", rep.Opt.Seed, mode)
	fmt.Fprintf(w, "- scheduler: %s\n", rep.Opt.Scheduler)
	fmt.Fprintf(w, "- records: machine-readable copies of every measurement are emitted as\n")
	fmt.Fprintf(w, "  `records.json` / `records.csv` in the `-out` directory (checked in as\n")
	fmt.Fprintf(w, "  `EXPERIMENTS.json` for this run); sweeps checkpoint per\n")
	fmt.Fprintf(w, "  (experiment, unit, size, trial) and resume after interruption.\n\n")
	for _, t := range rep.Tables() {
		fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title)
		fmt.Fprintf(w, "```\n")
		t.Render(w)
		fmt.Fprintf(w, "```\n\n")
	}
	return bw.Flush()
}

// --- Aggregation helpers ----------------------------------------------------

// stats summarizes a sample.
type stats struct {
	mean, max, min float64
}

func summarize(xs []float64) stats {
	if len(xs) == 0 {
		return stats{}
	}
	s := stats{min: math.Inf(1), max: math.Inf(-1)}
	total := 0.0
	for _, x := range xs {
		total += x
		if x > s.max {
			s.max = x
		}
		if x < s.min {
			s.min = x
		}
	}
	s.mean = total / float64(len(xs))
	return s
}

// collect pulls one named value out of the OK records in recs.
func collect(recs []*RunRecord, name string) []float64 {
	var out []float64
	for _, r := range recs {
		if r.OK {
			out = append(out, r.val(name))
		}
	}
	return out
}

// failures counts the non-OK records.
func failures(recs []*RunRecord) int {
	n := 0
	for _, r := range recs {
		if !r.OK {
			n++
		}
	}
	return n
}

func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
func d0(x float64) string { return fmt.Sprintf("%.0f", x) }
func itoa(x int) string   { return fmt.Sprintf("%d", x) }
func i64(x int64) string  { return fmt.Sprintf("%d", x) }
func lg2(n int) float64   { return math.Log2(float64(n)) }
func ratio(x float64, n int) string {
	return fmt.Sprintf("%.2f", x/lg2(n))
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
