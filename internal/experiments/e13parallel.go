package experiments

import (
	"fmt"

	"randlocal/internal/check"
	"randlocal/internal/graph"
	"randlocal/internal/mis"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

// E13 is the multi-core execution-policy matrix deferred since the parallel
// engine landed: every combination of re-shard policy (adaptive / halving /
// off) and placement policy (pin / none) runs the *same* Luby instance with
// the same coins, so the table demonstrates the engine's core invariant —
// Results are byte-identical across execution policies; policy moves wall
// clock only — and records which policy actually wins on this host.
//
// The wall-clock column reads RunRecord.ElapsedNS, which is measurement
// metadata excluded from checkpoint-resume equality (EqualStable) and from
// the CI smoke diff; the stable Values are the counters the invariant pins
// (rounds, messages, bits, MIS size), identical across all six units by
// construction.

// e13Workers is the configured pool width. Four keeps the sweep meaningful
// on multi-core hosts while the adaptive policy's processor clamp (see
// sim.ReshardAdaptive) collapses it honestly on smaller ones — the
// poolWidth column records what the engine actually ran.
const e13Workers = 4

type e13Config struct {
	unit    string
	reshard sim.ReshardPolicy
	place   sim.PlacePolicy
}

var e13Configs = []e13Config{
	{"adaptive/pin", sim.ReshardAdaptive, sim.PlacePin},
	{"adaptive/none", sim.ReshardAdaptive, sim.PlaceNone},
	{"halving/pin", sim.ReshardHalving, sim.PlacePin},
	{"halving/none", sim.ReshardHalving, sim.PlaceNone},
	{"off/pin", sim.ReshardOff, sim.PlacePin},
	{"off/none", sim.ReshardOff, sim.PlaceNone},
}

func e13ConfigOf(unit string) *e13Config {
	for i := range e13Configs {
		if e13Configs[i].unit == unit {
			return &e13Configs[i]
		}
	}
	return nil
}

func e13Sizes(opt Options) []int {
	if opt.Quick {
		return []int{1 << 10}
	}
	return []int{1 << 14, 1 << 16}
}

func e13Trials(opt Options) int {
	if opt.Quick {
		return 1
	}
	return 3
}

var E13 = &Experiment{
	ID:    "E13",
	Title: "Parallel execution-policy matrix: re-shard × placement on one Luby instance",
	Claim: "execution policy is a wall-clock lever only — rounds/messages/bits are byte-identical across adaptive/halving/off × pin/none at every size",
	Specs: func(opt Options) []RunSpec {
		var specs []RunSpec
		for _, n := range e13Sizes(opt) {
			for _, cfg := range e13Configs {
				for t := 0; t < e13Trials(opt); t++ {
					specs = append(specs, RunSpec{Experiment: "E13", Unit: cfg.unit, N: n, Trial: t})
				}
			}
		}
		return specs
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		rec := newRecord(spec)
		cfg := e13ConfigOf(spec.Unit)
		if cfg == nil {
			return rec.fail("unknown unit " + spec.Unit)
		}
		n := spec.N
		// Shared instance and shared per-trial coins: all six policy units
		// at the same (n, trial) solve the identical problem with the
		// identical randomness, so any divergence in the stable counters
		// would be an engine-equivalence bug, not noise.
		g := graph.GNPConnected(n, 4.0/float64(n), prng.New(spec.sharedSeed(opt.Seed, "instance")))
		coins := spec.sharedSeed(opt.Seed, fmt.Sprintf("coins/trial=%d", spec.Trial))
		in, res, err := mis.Luby(g, randomness.NewFull(coins), nil, mis.LubyConfig{
			Exec: sim.ExecOptions{
				Scheduler: sim.Parallel,
				Workers:   e13Workers,
				Reshard:   cfg.reshard,
				Place:     cfg.place,
				Telemetry: true,
			},
		})
		if err != nil {
			return rec.fail(err.Error())
		}
		if err := check.MIS(g, in); err != nil {
			return rec.fail(err.Error())
		}
		size := 0
		for _, b := range in {
			if b {
				size++
			}
		}
		rec.set("rounds", float64(res.Rounds))
		rec.set("messages", float64(res.Messages))
		rec.set("bits", float64(res.BitsTotal))
		rec.set("misSize", float64(size))
		if res.Telemetry != nil {
			// The width the engine actually ran: the adaptive policy clamps
			// the configured pool to the host's processor count (collapsing
			// to the sequential engine at width 1), so this is
			// host-dependent but deterministic per host.
			rec.set("poolWidth", float64(res.Telemetry.Workers))
		}
		return rec
	},
	Table: func(opt Options, rep *Report) *Table {
		t := tableFor("E13", []string{"reshard", "place", "n", "rounds", "messages", "bits/node", "|MIS|", "width", "wall ms", "identical", "trials", "failures"})
		for _, n := range e13Sizes(opt) {
			// Reference counters from the first unit: the "identical"
			// column checks every other unit against them, trial by trial.
			ref := rep.trialsOf("E13", e13Configs[0].unit, n, e13Trials(opt))
			for _, cfg := range e13Configs {
				recs := rep.trialsOf("E13", cfg.unit, n, e13Trials(opt))
				if len(recs) == 0 {
					continue
				}
				r := summarize(collect(recs, "rounds"))
				msgs := summarize(collect(recs, "messages"))
				bits := summarize(collect(recs, "bits"))
				misSize := summarize(collect(recs, "misSize"))
				width := summarize(collect(recs, "poolWidth"))
				var wallNS float64
				for _, rec := range recs {
					wallNS += float64(rec.ElapsedNS)
				}
				wallNS /= float64(len(recs))
				identical := len(recs) == len(ref)
				for i := range recs {
					if identical && i < len(ref) {
						identical = recs[i].val("rounds") == ref[i].val("rounds") &&
							recs[i].val("messages") == ref[i].val("messages") &&
							recs[i].val("bits") == ref[i].val("bits") &&
							recs[i].val("misSize") == ref[i].val("misSize")
					}
				}
				slash := 0
				for i := range cfg.unit {
					if cfg.unit[i] == '/' {
						slash = i
						break
					}
				}
				t.AddRow(cfg.unit[:slash], cfg.unit[slash+1:], itoa(n),
					d0(r.mean), d0(msgs.mean), f1(bits.mean/float64(n)), d0(misSize.mean),
					d0(width.mean), f1(wallNS/1e6), yesNo(identical),
					itoa(len(recs)), itoa(failures(recs)))
			}
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("all units run mis.Luby on the same gnp(4/n) instance with the same coins, scheduler=parallel workers=%d", e13Workers),
			"width is the pool the engine actually ran: the adaptive policy clamps to the host's processor count and collapses to the sequential engine at width 1, so it is host-dependent (recorded, not compared)",
			"wall ms averages RunRecord.ElapsedNS — measurement metadata, excluded from resume/diff stability; the stable columns (rounds/messages/bits/|MIS|) must read identical down every size block")
		return t
	},
}
