package experiments

import (
	"fmt"

	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/orientation"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

var e10SinklessSides = []int{12, 24, 48}

func e10Sides(opt Options) []int {
	if opt.Quick {
		return e10SinklessSides[:2]
	}
	return e10SinklessSides
}

// E10 runs the design-choice ablations: (a) engine equivalence is asserted
// directly by the sim test suites; (b) MPX single-pass partition versus EN's
// gap-rule carving; (c) the ABCP96 re-coloring transform; (d) sinkless
// orientation's round scaling — the Section 1.1 exponential-separation
// example, whose randomized complexity is Θ(log log n) on constant-degree
// graphs (our simple retry variant decays geometrically, measured here).
var E10 = &Experiment{
	ID:    "E10",
	Title: "Ablations: engines, MPX vs EN, re-coloring, sinkless orientation",
	Claim: "design choices behave as the per-theorem probes predict",
	Specs: func(opt Options) []RunSpec {
		specs := []RunSpec{
			{Experiment: "E10", Unit: "mpx", N: 512, Trial: 0},
			{Experiment: "E10", Unit: "en-carving", N: 512, Trial: 0},
			{Experiment: "E10", Unit: "recolor", N: 512, Trial: 0},
		}
		for _, side := range e10Sides(opt) {
			for t := 0; t < trials(opt, 10); t++ {
				specs = append(specs, RunSpec{Experiment: "E10", Unit: fmt.Sprintf("sinkless/%d", side), N: side * side, Trial: t})
			}
		}
		return specs
	},
	Run: func(opt Options, spec RunSpec) *RunRecord {
		rec := newRecord(spec)
		seed := spec.Seed(opt.Seed)
		switch {
		case spec.Unit == "mpx" || spec.Unit == "en-carving" || spec.Unit == "recolor":
			// The three ablation units compare on one shared graph — the
			// point of mpx-vs-en is same-instance round/quality costs.
			g := graph.GNPConnected(spec.N, 4.0/float64(spec.N), prng.New(spec.sharedSeed(opt.Seed, "graph")))
			switch spec.Unit {
			case "mpx":
				res, err := decomp.MPXPartition(g, randomness.NewFull(seed), nil)
				if err != nil {
					return rec.fail(err.Error())
				}
				rec.set("rounds", float64(res.Rounds))
				rec.set("maxDiam", float64(res.MaxClusterDiameter))
				rec.set("cutEdges", float64(res.CutEdges))
				rec.set("edges", float64(g.M()))
			case "en-carving":
				d, enRes, err := decomp.ElkinNeiman(g, randomness.NewFull(seed), nil, decomp.ENConfig{})
				if err != nil {
					return rec.fail(err.Error())
				}
				rec.set("rounds", float64(enRes.Rounds))
				rec.set("colors", float64(d.NumColors()))
				rec.set("maxDiam", float64(d.MaxClusterDiameter(g)))
			case "recolor":
				waste := &decomp.Decomposition{Cluster: make([]int, g.N()), Color: make([]int, g.N())}
				for v := 0; v < g.N(); v++ {
					waste.Cluster[v] = v
					waste.Color[v] = v
				}
				improved, err := decomp.ImproveColors(g, waste)
				if err != nil {
					return rec.fail(err.Error())
				}
				if err := improved.Validate(g, 0, 0); err != nil {
					return rec.fail(err.Error())
				}
				rec.set("colorsBefore", float64(g.N()))
				rec.set("colorsAfter", float64(improved.NumColors()))
				rec.set("maxDiam", float64(improved.MaxClusterDiameter(g)))
			}
			return rec
		default: // sinkless/<side>
			var side int
			fmt.Sscanf(spec.Unit, "sinkless/%d", &side)
			if side == 0 {
				return rec.fail("unknown unit " + spec.Unit)
			}
			torus := graph.Torus(side, side)
			res, err := orientation.Sinkless(torus, randomness.NewFull(seed), 0)
			if err != nil {
				return rec.fail(err.Error())
			}
			if err := res.Orientation.Check(3); err != nil {
				return rec.fail(err.Error())
			}
			rec.set("rounds", float64(res.Rounds))
			rec.set("retries", float64(res.Retries))
			return rec
		}
	},
	Table: func(opt Options, rep *Report) *Table {
		t := tableFor("E10", []string{"ablation", "setting", "value", "detail"})
		if rec := rep.Get("E10", "mpx", 512, 0); rec != nil && rec.OK {
			t.AddRow("mpx-vs-en", "MPX single pass", fmt.Sprintf("%.0f rounds", rec.val("rounds")),
				fmt.Sprintf("diam=%.0f cutEdges=%.0f/%.0f", rec.val("maxDiam"), rec.val("cutEdges"), rec.val("edges")))
		}
		if rec := rep.Get("E10", "en-carving", 512, 0); rec != nil && rec.OK {
			t.AddRow("mpx-vs-en", "EN full carving", fmt.Sprintf("%.0f rounds", rec.val("rounds")),
				fmt.Sprintf("colors=%.0f diam=%.0f (a full colored decomposition, not just a partition)",
					rec.val("colors"), rec.val("maxDiam")))
		}
		if rec := rep.Get("E10", "recolor", 512, 0); rec != nil && rec.OK {
			t.AddRow("recolor", "singletons → ABCP96", fmt.Sprintf("%.0f → %.0f colors", rec.val("colorsBefore"), rec.val("colorsAfter")),
				fmt.Sprintf("diam=%.0f", rec.val("maxDiam")))
		}
		for _, side := range e10Sides(opt) {
			tr := trials(opt, 10)
			recs := rep.trialsOf("E10", fmt.Sprintf("sinkless/%d", side), side*side, tr)
			r := summarize(collect(recs, "rounds"))
			t.AddRow("sinkless", fmt.Sprintf("torus %dx%d (n=%d)", side, side, side*side),
				fmt.Sprintf("%.1f rounds avg", r.mean),
				fmt.Sprintf("max %d over %d trials; geometric sink decay", int(r.max), tr))
		}
		t.Notes = append(t.Notes,
			"engine-equivalence (sequential ≡ concurrent ≡ parallel given one seed) is asserted directly by the sim and mis test suites",
			"sinkless orientation is the paper's §1.1 example of an exponential randomized/deterministic separation below O(log n)")
		return t
	},
}
