package experiments

import (
	"fmt"

	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/orientation"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

// E10Ablations runs the design-choice ablations DESIGN.md calls out:
// (a) engine equivalence — the goroutine/channel α-synchronizer versus the
// deterministic scheduler on identical seeds; (b) MPX single-pass
// partition versus EN's gap-rule carving; (c) the ABCP96 re-coloring
// transform; (d) sinkless orientation's round scaling — the Section 1.1
// exponential-separation example, whose randomized complexity is
// Θ(log log n) on constant-degree graphs (our simple retry variant decays
// geometrically, measured here).
func E10Ablations(opt Options) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Ablations: engines, MPX vs EN, re-coloring, sinkless orientation",
		Claim:   "design choices behave as DESIGN.md §3 predicts",
		Columns: []string{"ablation", "setting", "value", "detail"},
	}
	rng := prng.New(opt.Seed + 10)

	// (b) MPX vs EN on the same graph.
	g := graph.GNPConnected(512, 4.0/512, rng)
	mpx, err := decomp.MPXPartition(g, randomness.NewFull(opt.Seed), nil)
	if err == nil {
		t.AddRow("mpx-vs-en", "MPX single pass", fmt.Sprintf("%d rounds", mpx.Rounds),
			fmt.Sprintf("diam=%d cutEdges=%d/%d", mpx.MaxClusterDiameter, mpx.CutEdges, g.M()))
	}
	d, enRes, err := decomp.ElkinNeiman(g, randomness.NewFull(opt.Seed), nil, decomp.ENConfig{})
	if err == nil {
		t.AddRow("mpx-vs-en", "EN full carving", fmt.Sprintf("%d rounds", enRes.Rounds),
			fmt.Sprintf("colors=%d diam=%d (a full colored decomposition, not just a partition)",
				d.NumColors(), d.MaxClusterDiameter(g)))
	}

	// (c) ABCP96 re-coloring of a wasteful decomposition.
	waste := &decomp.Decomposition{Cluster: make([]int, g.N()), Color: make([]int, g.N())}
	for v := 0; v < g.N(); v++ {
		waste.Cluster[v] = v
		waste.Color[v] = v
	}
	improved, err := decomp.ImproveColors(g, waste)
	if err == nil && improved.Validate(g, 0, 0) == nil {
		t.AddRow("recolor", "singletons → ABCP96", fmt.Sprintf("%d → %d colors", g.N(), improved.NumColors()),
			fmt.Sprintf("diam=%d", improved.MaxClusterDiameter(g)))
	}

	// (d) Sinkless orientation round scaling on tori.
	for _, side := range []int{12, 24, 48} {
		if opt.Quick && side > 24 {
			break
		}
		torus := graph.Torus(side, side)
		var rounds []float64
		tr := trials(opt, 10)
		for i := 0; i < tr; i++ {
			res, err := orientation.Sinkless(torus, randomness.NewFull(opt.Seed+uint64(i)*3), 0)
			if err != nil {
				continue
			}
			if res.Orientation.Check(3) != nil {
				continue
			}
			rounds = append(rounds, float64(res.Rounds))
		}
		r := summarize(rounds)
		t.AddRow("sinkless", fmt.Sprintf("torus %dx%d (n=%d)", side, side, side*side),
			fmt.Sprintf("%.1f rounds avg", r.mean),
			fmt.Sprintf("max %d over %d trials; geometric sink decay", int(r.max), tr))
	}
	t.Notes = append(t.Notes,
		"engine-equivalence (sequential ≡ concurrent given one seed) is asserted directly by the sim and mis test suites",
		"sinkless orientation is the paper's §1.1 example of an exponential randomized/deterministic separation below O(log n)")
	return t
}
