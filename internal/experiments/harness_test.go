package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	runner := &Runner{Opt: Options{Quick: true, Seed: 1}}
	rep, err := runner.Run(Registry())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatal("quick run left specs unrun")
	}
	tables := rep.Tables()
	if len(tables) != 13 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tab := range tables {
		if tab.ID == "" || tab.Title == "" || tab.Claim == "" {
			t.Errorf("table %q missing metadata", tab.ID)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("table %s has no rows", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("table %s row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
			}
			for _, cell := range row {
				if strings.Contains(cell, "NO") {
					t.Errorf("table %s reports a failure row: %v", tab.ID, row)
				}
			}
		}
		var buf bytes.Buffer
		tab.Render(&buf)
		if !strings.Contains(buf.String(), tab.ID) {
			t.Errorf("render of %s missing its ID", tab.ID)
		}
	}
	// Every record must pass the emission schema, and the failure columns
	// the tables surface must agree with the records.
	if err := rep.RecordSet().Validate(); err != nil {
		t.Errorf("record set invalid: %v", err)
	}
	for _, rec := range rep.RecordSet().Records {
		if !rec.OK {
			t.Errorf("failed record: %s: %s", rec.Spec.Key(), rec.Err)
		}
	}
	// The markdown report renders with every experiment section present.
	var md bytes.Buffer
	if err := rep.WriteMarkdown(&md); err != nil {
		t.Fatalf("WriteMarkdown: %v", err)
	}
	for _, id := range IDs() {
		if !strings.Contains(md.String(), "## "+id+" ") {
			t.Errorf("markdown report missing section for %s", id)
		}
	}
}

func TestByID(t *testing.T) {
	if ByID("E3") == nil || ByID("e3") == nil {
		t.Error("ByID lookup failed")
	}
	if ByID("E42") != nil {
		t.Error("unknown ID resolved")
	}
	if len(IDs()) != 13 {
		t.Error("IDs() wrong length")
	}
	for i, exp := range Registry() {
		if exp.ID != IDs()[i] {
			t.Errorf("registry[%d] = %s, want %s", i, exp.ID, IDs()[i])
		}
		if exp.Specs == nil || exp.Run == nil || exp.Table == nil {
			t.Errorf("%s missing a pipeline hook", exp.ID)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := summarize([]float64{1, 2, 3})
	if s.mean != 2 || s.min != 1 || s.max != 3 {
		t.Errorf("summarize = %+v", s)
	}
	if z := summarize(nil); z.mean != 0 {
		t.Errorf("empty summarize = %+v", z)
	}
}

func TestSpecSeedsIndependent(t *testing.T) {
	a := RunSpec{Experiment: "E1", Unit: "ring", N: 256, Trial: 0}
	b := RunSpec{Experiment: "E1", Unit: "ring", N: 256, Trial: 1}
	c := RunSpec{Experiment: "E1", Unit: "tree", N: 256, Trial: 0}
	if a.Seed(1) == b.Seed(1) || a.Seed(1) == c.Seed(1) {
		t.Error("distinct specs share a seed")
	}
	if a.Seed(1) == a.Seed(2) {
		t.Error("master seed ignored")
	}
	if a.Seed(1) != a.Seed(1) {
		t.Error("seed not deterministic")
	}
	// Trials of one (experiment, unit, size) share their instance seed.
	if a.instanceSeed(1) != b.instanceSeed(1) {
		t.Error("trials of one unit disagree on the instance seed")
	}
	if a.instanceSeed(1) == c.instanceSeed(1) {
		t.Error("different units share an instance seed")
	}
}
