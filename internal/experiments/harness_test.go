package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	opt := Options{Quick: true, Seed: 1}
	tables := All(opt)
	if len(tables) != 10 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tab := range tables {
		if tab.ID == "" || tab.Title == "" || tab.Claim == "" {
			t.Errorf("table %q missing metadata", tab.ID)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("table %s has no rows", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("table %s row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
			}
			for _, cell := range row {
				if strings.Contains(cell, "NO") {
					t.Errorf("table %s reports a failure row: %v", tab.ID, row)
				}
			}
		}
		var buf bytes.Buffer
		tab.Render(&buf)
		if !strings.Contains(buf.String(), tab.ID) {
			t.Errorf("render of %s missing its ID", tab.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if ByID("E3") == nil || ByID("e3") == nil {
		t.Error("ByID lookup failed")
	}
	if ByID("E42") != nil {
		t.Error("unknown ID resolved")
	}
	if len(IDs()) != 10 {
		t.Error("IDs() wrong length")
	}
}

func TestSummarize(t *testing.T) {
	s := summarize([]float64{1, 2, 3})
	if s.mean != 2 || s.min != 1 || s.max != 3 {
		t.Errorf("summarize = %+v", s)
	}
	if z := summarize(nil); z.mean != 0 {
		t.Errorf("empty summarize = %+v", z)
	}
}
