// Package coloring implements (Δ+1)-vertex-coloring: the classic randomized
// trial-color algorithm as a CONGEST node program (the O(log n)-round
// baseline), and the greedy reference used by tests and the SLOCAL
// derandomization pipeline.
package coloring

import (
	"fmt"

	"randlocal/internal/graph"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

const (
	msgCandidate = 1
	msgFinal     = 2
)

// Config parameterizes the randomized coloring program.
type Config struct {
	// MaxPhases caps execution; 0 means 24·⌈log₂ n⌉ + 24.
	MaxPhases int
	// Candidate, when non-nil, overrides the private uniform draw with an
	// injected function of (node, phase, paletteSize) returning an index
	// into the node's current palette — the limited-independence
	// experiments hook in here.
	Candidate func(v, phase, paletteSize int) int
	// Adversary, when non-nil, injects its faults into the execution;
	// attaching one never changes the candidate coins the nodes draw.
	Adversary *sim.Adversary
	// Exec carries the per-run execution knobs (scheduler, workers, re-shard
	// policy, engine pool, telemetry, progress hook); the zero value defers
	// to the package-wide defaults. Multi-tenant hosts set it per run.
	Exec sim.ExecOptions
}

// program is one node of the trial-color algorithm. Each phase takes two
// rounds: undecided nodes draw a uniform candidate from their remaining
// palette and broadcast it; a node keeps its candidate unless an active
// neighbor drew the same one and has a higher identifier. Finalized nodes
// announce their color, which neighbors strike from their palettes.
type program struct {
	cfg       Config
	ctx       *sim.NodeCtx
	palette   []int
	active    []bool
	candidate int
	color     int
	decided   bool
}

func (p *program) Init(ctx *sim.NodeCtx) {
	p.ctx = ctx
	if p.cfg.MaxPhases == 0 {
		lg := 0
		for 1<<lg < ctx.N {
			lg++
		}
		p.cfg.MaxPhases = 24*lg + 24
	}
	// deg+1 colors always suffice for this node.
	p.palette = make([]int, ctx.Degree+1)
	for i := range p.palette {
		p.palette[i] = i
	}
	p.active = make([]bool, ctx.Degree)
	for i := range p.active {
		p.active[i] = true
	}
	p.color = -1
}

func (p *program) strike(color int) {
	for i, c := range p.palette {
		if c == color {
			p.palette = append(p.palette[:i], p.palette[i+1:]...)
			return
		}
	}
}

// broadcastActive fills the engine-owned outbox with payload on the ports
// whose neighbors are still undecided; payloads are carved from the per-round
// arena, so a steady-state phase allocates nothing.
func (p *program) broadcastActive(payload sim.Message) []sim.Message {
	return p.ctx.BroadcastActive(payload, p.active)
}

func (p *program) Round(r int, inbox []sim.Message) ([]sim.Message, bool) {
	phase := r / 2
	t := r % 2
	if phase >= p.cfg.MaxPhases {
		return nil, true // give up; color stays -1
	}
	switch t {
	case 0:
		// FINAL announcements from the previous phase arrive here.
		for port, m := range inbox {
			if m == nil {
				continue
			}
			var vals [2]uint64
			if sim.DecodeUintsInto(m, vals[:]) && vals[0] == msgFinal {
				p.strike(int(vals[1]))
				p.active[port] = false
			}
		}
		if len(p.palette) == 0 {
			// Cannot happen on a correct run: at most deg colors can be
			// struck from a (deg+1)-palette.
			return nil, true
		}
		idx := 0
		if p.cfg.Candidate != nil {
			idx = p.cfg.Candidate(p.ctx.Index, phase, len(p.palette))
			idx = ((idx % len(p.palette)) + len(p.palette)) % len(p.palette)
		} else {
			idx = p.ctx.Rand.Intn(len(p.palette))
		}
		p.candidate = p.palette[idx]
		return p.broadcastActive(p.ctx.Uints(msgCandidate, uint64(p.candidate))), false
	default:
		keep := true
		for port, m := range inbox {
			if m == nil || !p.active[port] {
				continue
			}
			var vals [2]uint64
			if !sim.DecodeUintsInto(m, vals[:]) || vals[0] != msgCandidate {
				continue
			}
			if int(vals[1]) == p.candidate && p.ctx.NeighborIDs[port] > p.ctx.ID {
				keep = false
			}
		}
		if keep {
			p.color = p.candidate
			p.decided = true
			return p.broadcastActive(p.ctx.Uints(msgFinal, uint64(p.color))), true
		}
		return nil, false
	}
}

// Output reports the final color (-1 when undecided).
func (p *program) Output() int { return p.color }

// Randomized runs the trial-color algorithm in the CONGEST model. Every
// node ends with a color in [0, deg(v)+1) ⊆ [0, Δ+1); it errors if any node
// exhausted MaxPhases.
func Randomized(g *graph.Graph, src randomness.Source, ids []uint64, cfg Config) ([]int, *sim.Result[int], error) {
	simCfg := sim.Config{
		Graph:          g,
		IDs:            ids,
		Source:         src,
		MaxMessageBits: sim.CongestBits(g.N()),
		Adversary:      cfg.Adversary,
	}
	cfg.Exec.Apply(&simCfg)
	res, err := sim.Execute(simCfg, func(int) sim.NodeProgram[int] {
		return &program{cfg: cfg}
	})
	if err != nil {
		return nil, nil, err
	}
	undecided := 0
	for _, c := range res.Outputs {
		if c < 0 {
			undecided++
		}
	}
	if undecided > 0 {
		return res.Outputs, res, fmt.Errorf("coloring: %d nodes undecided after all phases", undecided)
	}
	return res.Outputs, res, nil
}

// Greedy colors nodes in the given order (nil = index order) with the
// smallest color unused by already-colored neighbors — the locality-1
// SLOCAL reference.
func Greedy(g *graph.Graph, order []int) []int {
	n := g.N()
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	for _, v := range order {
		used := map[int]bool{}
		for _, w := range g.Neighbors(v) {
			if colors[w] >= 0 {
				used[colors[w]] = true
			}
		}
		for c := 0; ; c++ {
			if !used[c] {
				colors[v] = c
				break
			}
		}
	}
	return colors
}
