package coloring

import (
	"testing"

	"randlocal/internal/check"
	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

func TestRandomizedColoringOnFamilies(t *testing.T) {
	rng := prng.New(3)
	families := map[string]*graph.Graph{
		"ring65":    graph.Ring(65),
		"clique20":  graph.Complete(20),
		"gnp200":    graph.GNPConnected(200, 5.0/200, rng),
		"tree80":    graph.RandomTree(80, rng),
		"grid9":     graph.Grid(9, 9),
		"singleton": graph.NewBuilder(1).Graph(),
		"isolated":  graph.NewBuilder(3).Graph(),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			colors, res, err := Randomized(g, randomness.NewFull(uint64(len(name)*17)), nil, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if err := check.Coloring(g, colors, g.MaxDegree()+1); err != nil {
				t.Fatalf("invalid coloring: %v", err)
			}
			if res.MaxMessageBits > sim.CongestBits(g.N()) {
				t.Errorf("CONGEST violated: %d bits", res.MaxMessageBits)
			}
		})
	}
}

func TestRandomizedColoringPaletteIsDegreePlusOne(t *testing.T) {
	// Stronger than (Δ+1): every node's color is within its own degree+1.
	rng := prng.New(8)
	g := graph.GNPConnected(150, 0.05, rng)
	colors, _, err := Randomized(g, randomness.NewFull(2), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range colors {
		if c > g.Degree(v) {
			t.Errorf("node %d (degree %d) got color %d", v, g.Degree(v), c)
		}
	}
}

func TestRandomizedColoringInjectedCandidates(t *testing.T) {
	// Deterministic candidate injection (here: k-wise family values) must
	// still yield a proper coloring — conflicts just resolve by ID.
	fam, err := randomness.NewKWise(16, 64, prng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Grid(8, 8)
	cfg := Config{Candidate: func(v, phase, size int) int {
		return int(fam.Value(uint64(v)*1024+uint64(phase)) % uint64(size))
	}}
	colors, _, err := Randomized(g, randomness.NewFull(1), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Coloring(g, colors, g.MaxDegree()+1); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyColoring(t *testing.T) {
	rng := prng.New(4)
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(50, 0.12, rng)
		colors := Greedy(g, rng.Perm(50))
		if err := check.Coloring(g, colors, g.MaxDegree()+1); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	colors := Greedy(graph.Path(4), nil)
	want := []int{0, 1, 0, 1}
	for v := range want {
		if colors[v] != want[v] {
			t.Errorf("greedy P4: %v", colors)
			break
		}
	}
}

func TestRandomizedColoringDeterministicGivenSeed(t *testing.T) {
	g := graph.Ring(60)
	a, _, _ := Randomized(g, randomness.NewFull(9), nil, Config{})
	b, _, _ := Randomized(g, randomness.NewFull(9), nil, Config{})
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("coloring not deterministic for a fixed seed")
		}
	}
}

func TestReduceFromIDColoring(t *testing.T) {
	// The trivial n-coloring (color = index) reduced to Δ+1.
	rng := prng.New(31)
	g := graph.GNPConnected(120, 0.05, rng)
	trivial := make([]int, g.N())
	for v := range trivial {
		trivial[v] = v
	}
	res, err := Reduce(g, trivial, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Coloring(g, res.Colors, g.MaxDegree()+1); err != nil {
		t.Fatalf("reduced coloring invalid: %v", err)
	}
	if res.AnalyticRounds != g.N()-(g.MaxDegree()+1) {
		t.Errorf("rounds = %d, want %d", res.AnalyticRounds, g.N()-(g.MaxDegree()+1))
	}
}

func TestReduceNoOpWhenAlreadySmall(t *testing.T) {
	g := graph.Ring(8)
	colors := []int{0, 1, 0, 1, 0, 1, 0, 1}
	res, err := Reduce(g, colors, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.AnalyticRounds != 0 {
		t.Errorf("rounds = %d for an already-small coloring", res.AnalyticRounds)
	}
	for v := range colors {
		if res.Colors[v] != colors[v] {
			t.Error("no-op reduction changed colors")
		}
	}
}

func TestReduceRejectsImproperInput(t *testing.T) {
	g := graph.Path(3)
	if _, err := Reduce(g, []int{0, 0, 1}, 0); err == nil {
		t.Error("improper input coloring accepted")
	}
	if _, err := Reduce(g, []int{0, 1}, 0); err == nil {
		t.Error("short color array accepted")
	}
}

func TestReduceCustomTarget(t *testing.T) {
	g := graph.Path(10) // Δ+1 = 3
	trivial := make([]int, 10)
	for v := range trivial {
		trivial[v] = v
	}
	res, err := Reduce(g, trivial, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Coloring(g, res.Colors, 5); err != nil {
		t.Fatal(err)
	}
}
