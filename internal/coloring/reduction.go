package coloring

import (
	"fmt"

	"randlocal/internal/check"
	"randlocal/internal/graph"
)

// ReduceResult carries the color-reduction output and accounting.
type ReduceResult struct {
	Colors []int
	// AnalyticRounds is the LOCAL round cost: one round per eliminated
	// color class (the classic k → Δ+1 reduction schedule).
	AnalyticRounds int
}

// Reduce performs the classic deterministic color reduction: given a proper
// coloring with k colors, it processes color classes k-1, k-2, …, Δ+1 one
// round each; every node of the processed class re-colors itself with the
// smallest color unused by its neighbors (legal because a color class is an
// independent set, so same-class nodes never conflict during their round).
// The result is a proper coloring with max(Δ+1, target) colors.
//
// This is the standard post-processing step after decomposition- or
// defective-coloring-based algorithms; it is deterministic and costs one
// LOCAL round per removed color.
func Reduce(g *graph.Graph, colors []int, target int) (*ReduceResult, error) {
	n := g.N()
	if len(colors) != n {
		return nil, fmt.Errorf("coloring: %d colors for %d nodes", len(colors), n)
	}
	if err := check.Coloring(g, colors, 0); err != nil {
		return nil, fmt.Errorf("coloring: Reduce requires a proper input coloring: %w", err)
	}
	minTarget := g.MaxDegree() + 1
	if target < minTarget {
		target = minTarget
	}
	k := 0
	for _, c := range colors {
		if c+1 > k {
			k = c + 1
		}
	}
	out := append([]int(nil), colors...)
	rounds := 0
	for class := k - 1; class >= target; class-- {
		rounds++
		for v := 0; v < n; v++ {
			if out[v] != class {
				continue
			}
			used := map[int]bool{}
			for _, w := range g.Neighbors(v) {
				used[out[w]] = true
			}
			for c := 0; ; c++ {
				if !used[c] {
					out[v] = c
					break
				}
			}
		}
	}
	return &ReduceResult{Colors: out, AnalyticRounds: rounds}, nil
}
