package coloring

import (
	"os"
	"testing"

	"randlocal/internal/sim"
)

// TestMain enables the engine's poisoned-Outbox check for the package's
// whole test run (the trial-color program assembles its outbox in the
// NodeCtx.Outbox scratch via BroadcastActive).
func TestMain(m *testing.M) {
	sim.SetDebugOutboxCheck(true)
	os.Exit(m.Run())
}

// TestColoringSteadyStateRoundsAllocNothing measures both halves of a
// trial-color phase under testing.AllocsPerRun: the candidate-broadcast
// round (draw injected, payload carved from the arena, outbox from the
// engine scratch) and the conflict-resolution round (scratch-array decode),
// asserting zero allocations each.
func TestColoringSteadyStateRoundsAllocNothing(t *testing.T) {
	const deg = 5
	nids := []uint64{100, 101, 102, 103, 104}
	ctx, rotate := sim.NewBenchCtx(deg, 42, 1024, nids)
	prog := &program{cfg: Config{Candidate: func(v, phase, paletteSize int) int { return 0 }}}
	prog.Init(ctx)

	// Candidate round: one FINAL announcement in the inbox (struck and its
	// port deactivated on the first call; a no-op on repeats), the rest
	// candidate noise this round ignores.
	inbox := make([]sim.Message, deg)
	inbox[0] = sim.Uints(msgFinal, 5)
	inbox[1] = sim.Uints(msgCandidate, 2)
	avg := testing.AllocsPerRun(100, func() {
		rotate()
		prog.Round(0, inbox)
	})
	if avg != 0 {
		t.Errorf("candidate round allocates %.1f times, want 0", avg)
	}

	// Resolution round: a higher-ID neighbor drew the same candidate, so the
	// node concedes and stays silent — the pure decode path.
	conflict := make([]sim.Message, deg)
	conflict[2] = sim.Uints(msgCandidate, uint64(prog.candidate))
	avg = testing.AllocsPerRun(100, func() {
		rotate()
		prog.Round(1, conflict)
	})
	if avg != 0 {
		t.Errorf("resolution round allocates %.1f times, want 0", avg)
	}
}
