package randomness

import "testing"

func TestPoolSequentialReads(t *testing.T) {
	var p Pool
	for _, b := range []uint64{1, 0, 1, 1, 0} {
		p.Add(b)
	}
	if p.Size() != 5 || p.Remaining() != 5 {
		t.Fatalf("size=%d remaining=%d", p.Size(), p.Remaining())
	}
	want := []uint64{1, 0, 1, 1, 0}
	for i, w := range want {
		if got := p.Bit(); got != w {
			t.Fatalf("bit %d = %d, want %d", i, got, w)
		}
	}
	if p.Remaining() != 0 {
		t.Errorf("remaining = %d", p.Remaining())
	}
}

func TestPoolExhaustionPanics(t *testing.T) {
	var p Pool
	p.Add(1)
	p.Bit()
	defer func() {
		if recover() == nil {
			t.Fatal("reading an empty pool did not panic")
		}
	}()
	p.Bit()
}

func TestPoolAddMasksToOneBit(t *testing.T) {
	var p Pool
	p.Add(0xFF)
	if got := p.Bit(); got != 1 {
		t.Errorf("Add should keep only the low bit, got %d", got)
	}
}

func TestPoolWord(t *testing.T) {
	var p Pool
	// bits 1,1,0,1 little-endian = 0b1011 = 11.
	for _, b := range []uint64{1, 1, 0, 1} {
		p.Add(b)
	}
	if got := p.Word(4); got != 0b1011 {
		t.Errorf("Word(4) = %#b", got)
	}
}

func TestPoolWordPanicsOutOfRange(t *testing.T) {
	var p Pool
	defer func() {
		if recover() == nil {
			t.Fatal("Word(65) did not panic")
		}
	}()
	p.Word(65)
}

func TestPoolGeometric(t *testing.T) {
	var p Pool
	// heads, heads, tail -> value 3.
	for _, b := range []uint64{1, 1, 0} {
		p.Add(b)
	}
	v, ok := p.Geometric(10)
	if !ok || v != 3 {
		t.Errorf("Geometric = (%d, %v), want (3, true)", v, ok)
	}
	// All heads up to the cap.
	var q Pool
	for i := 0; i < 4; i++ {
		q.Add(1)
	}
	v, ok = q.Geometric(4)
	if ok || v != 4 {
		t.Errorf("capped Geometric = (%d, %v), want (4, false)", v, ok)
	}
}
