package randomness

// Pool is a finite pool of explicitly gathered random bits — the object a
// cluster center of Lemma 3.2 ends up holding after the upcast: k single
// bits collected from the holders inside its cluster. Reads are sequential;
// reading past the pool panics with ErrExhausted, because an algorithm that
// consumes more randomness than it gathered has violated the model.
type Pool struct {
	bits []uint64
	pos  int
}

// Add appends one bit (the low bit of b) to the pool.
func (p *Pool) Add(b uint64) { p.bits = append(p.bits, b&1) }

// Size returns the total number of bits ever added.
func (p *Pool) Size() int { return len(p.bits) }

// Remaining returns the number of unread bits.
func (p *Pool) Remaining() int { return len(p.bits) - p.pos }

// Bit returns the next unread bit. It panics with ErrExhausted when empty.
func (p *Pool) Bit() uint64 {
	if p.pos >= len(p.bits) {
		panic(ErrExhausted)
	}
	b := p.bits[p.pos]
	p.pos++
	return b
}

// Word returns the next k bits packed little-endian. It panics when fewer
// than k bits remain.
func (p *Pool) Word(k int) uint64 {
	if k < 0 || k > 64 {
		panic("randomness: Pool.Word width out of range")
	}
	var v uint64
	for i := 0; i < k; i++ {
		v |= p.Bit() << uint(i)
	}
	return v
}

// Geometric draws Pr[X = k] = 2^-k capped at maxFlips, identically to
// Stream.Geometric but from the finite pool.
func (p *Pool) Geometric(maxFlips int) (value int, ok bool) {
	for i := 1; i <= maxFlips; i++ {
		if p.Bit() == 0 {
			return i, true
		}
	}
	return maxFlips, false
}
