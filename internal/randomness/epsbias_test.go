package randomness

import (
	"testing"

	"randlocal/internal/prng"
)

// TestEpsBiasExhaustiveBiasBound verifies the AGHP guarantee exhaustively in
// a small field: over all 2^(2m) seeds of GF(2^6), every non-empty parity of
// the first n=4 output bits has bias at most (n-1)/2^m = 3/64.
func TestEpsBiasExhaustiveBiasBound(t *testing.T) {
	const m = 6
	const n = 4
	size := uint64(1) << m
	total := int(size * size)
	// parityCount[S] counts seeds whose XOR over subset S is 1.
	parityCount := make([]int, 1<<n)
	for x := uint64(0); x < size; x++ {
		for y := uint64(0); y < size; y++ {
			gen, err := NewEpsBiasFromSeed(m, x, y)
			if err != nil {
				t.Fatal(err)
			}
			var bits [n]uint64
			for i := range bits {
				bits[i] = gen.Bit(uint64(i))
			}
			for S := 1; S < 1<<n; S++ {
				var p uint64
				for i := 0; i < n; i++ {
					if S&(1<<i) != 0 {
						p ^= bits[i]
					}
				}
				if p == 1 {
					parityCount[S]++
				}
			}
		}
	}
	bound := float64(n-1) / float64(size)
	for S := 1; S < 1<<n; S++ {
		bias := float64(parityCount[S])/float64(total) - 0.5
		if bias < 0 {
			bias = -bias
		}
		if bias > bound+1e-12 {
			t.Errorf("subset %04b: bias %.4f exceeds bound %.4f", S, bias, bound)
		}
	}
}

func TestEpsBiasSeedBitsAndBias(t *testing.T) {
	gen, err := NewEpsBias(16, prng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if gen.SeedBits() != 32 {
		t.Errorf("SeedBits = %d, want 32", gen.SeedBits())
	}
	if b := gen.Bias(1); b != 0 {
		t.Errorf("Bias(1) = %v, want 0", b)
	}
	if b := gen.Bias(65537); b <= 0 {
		t.Errorf("Bias should be positive for n > 1, got %v", b)
	}
}

func TestEpsBiasBitBalance(t *testing.T) {
	gen, err := NewEpsBias(32, prng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	const n = 4000
	for i := 0; i < n; i++ {
		ones += int(gen.Bit(uint64(i + 1)))
	}
	if ones < n/2-300 || ones > n/2+300 {
		t.Errorf("eps-bias bits: %d ones out of %d", ones, n)
	}
}

func TestEpsBiasUnsupportedField(t *testing.T) {
	if _, err := NewEpsBias(13, prng.New(1)); err == nil {
		t.Error("unsupported field accepted")
	}
	if _, err := NewEpsBiasFromSeed(13, 0, 0); err == nil {
		t.Error("unsupported field accepted from seed")
	}
}

func TestEpsBiasDeterministic(t *testing.T) {
	a, _ := NewEpsBiasFromSeed(16, 0xBEEF, 0xCAFE)
	b, _ := NewEpsBiasFromSeed(16, 0xBEEF, 0xCAFE)
	for i := uint64(0); i < 200; i++ {
		if a.Bit(i) != b.Bit(i) {
			t.Fatalf("same seed diverges at bit %d", i)
		}
	}
}

func TestParity(t *testing.T) {
	cases := []struct {
		in   uint64
		want uint64
	}{{0, 0}, {1, 1}, {3, 0}, {7, 1}, {0xFFFFFFFFFFFFFFFF, 0}, {1 << 63, 1}}
	for _, c := range cases {
		if got := parity(c.in); got != c.want {
			t.Errorf("parity(%#x) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEpsBiasString(t *testing.T) {
	gen, _ := NewEpsBiasFromSeed(16, 1, 2)
	if gen.String() != "epsbias{GF(2^16), seed=32 bits}" {
		t.Errorf("String() = %q", gen.String())
	}
}
