package randomness

import (
	"fmt"
	"sync/atomic"
)

// Ledger accumulates randomness-consumption statistics for one experiment
// run. TrueBits counts bits of genuine randomness (seed material and private
// coin flips); DerivedBits counts pseudo-random bits expanded
// deterministically from seeds (k-wise evaluations, shared-seed reads).
// The distinction is the whole point of Section 3 of the paper: an algorithm
// may *read* poly(n) bits while only poly(log n) of them are true
// randomness. Methods are safe for concurrent use (the concurrent engine
// runs one goroutine per node).
type Ledger struct {
	trueBits    atomic.Int64
	derivedBits atomic.Int64
}

// TrueBits returns the number of true random bits drawn so far.
func (l *Ledger) TrueBits() int64 { return l.trueBits.Load() }

// DerivedBits returns the number of deterministically derived bits read.
func (l *Ledger) DerivedBits() int64 { return l.derivedBits.Load() }

func (l *Ledger) addTrue(n int64) {
	if l != nil {
		l.trueBits.Add(n)
	}
}

func (l *Ledger) addDerived(n int64) {
	if l != nil {
		l.derivedBits.Add(n)
	}
}

// String summarizes the ledger.
func (l *Ledger) String() string {
	return fmt.Sprintf("ledger{true=%d derived=%d}", l.TrueBits(), l.DerivedBits())
}

// ErrExhausted is the panic value used when a budgeted stream runs out of
// bits; algorithms running under the sparse model (one bit per holder) hit
// this if they try to cheat.
var ErrExhausted = fmt.Errorf("randomness: stream exhausted its bit budget")

// Stream is a sequence of accounted random bits for one node. Bits are
// produced lazily by the underlying source; every draw is recorded in the
// ledger. A Stream may carry a hard budget (Sparse holders get budget 1).
type Stream struct {
	next    func() uint64 // returns the next bit in the low bit
	ledger  *Ledger
	derived bool  // derived streams bill to DerivedBits
	budget  int64 // remaining bits; negative means unlimited
	drawn   int64
}

// Drawn returns the number of bits this stream has produced.
func (s *Stream) Drawn() int64 { return s.drawn }

// Remaining returns the remaining budget, or -1 when unlimited.
func (s *Stream) Remaining() int64 {
	if s.budget < 0 {
		return -1
	}
	return s.budget
}

// Bit returns the next random bit (0 or 1). It panics with ErrExhausted when
// a budgeted stream is empty — by design, so model violations fail loudly.
func (s *Stream) Bit() uint64 {
	if s.budget == 0 {
		panic(ErrExhausted)
	}
	if s.budget > 0 {
		s.budget--
	}
	s.drawn++
	if s.derived {
		s.ledger.addDerived(1)
	} else {
		s.ledger.addTrue(1)
	}
	return s.next() & 1
}

// Bits returns the next k bits packed into the low bits of a uint64
// (first-drawn bit is the least significant). It panics for k outside [0,64].
func (s *Stream) Bits(k int) uint64 {
	if k < 0 || k > 64 {
		panic(fmt.Sprintf("randomness: Bits(%d) out of range", k))
	}
	var v uint64
	for i := 0; i < k; i++ {
		v |= s.Bit() << uint(i)
	}
	return v
}

// Intn returns a uniform integer in [0, n) by rejection sampling on
// ceil(log2 n)-bit draws, accounting every consumed bit. It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("randomness: Intn with non-positive n")
	}
	if n == 1 {
		return 0
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for {
		v := int(s.Bits(bits))
		if v < n {
			return v
		}
	}
}

// Bernoulli returns true with probability p, consuming bits one at a time by
// comparing against the binary expansion of p (expected two bits per call,
// at most 53). Out-of-range p is clamped to [0, 1].
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	x := p
	for i := 0; i < 53; i++ {
		x *= 2
		var pBit uint64
		if x >= 1 {
			pBit = 1
			x -= 1
		}
		rBit := s.Bit()
		if rBit < pBit {
			return true
		}
		if rBit > pBit {
			return false
		}
	}
	return false
}

// Geometric samples the geometric distribution Pr[X = k] = 2^-k (k >= 1):
// flip fair coins until the first tail; the index of that flip is the value.
// This is precisely the radius distribution of the Elkin–Neiman construction
// as the paper states it. If maxFlips flips all come up heads, it returns
// (maxFlips, false) — the w.h.p. cap of 10·log n that Lemma 3.3 budgets for.
func (s *Stream) Geometric(maxFlips int) (value int, ok bool) {
	for i := 1; i <= maxFlips; i++ {
		if s.Bit() == 0 {
			return i, true
		}
	}
	return maxFlips, false
}
