package randomness

import (
	"fmt"

	"randlocal/internal/prng"
)

// KWise is a k-wise independent family of m-bit values: the evaluations of a
// uniformly random polynomial of degree < k over GF(2^m) at distinct points
// are uniform and k-wise independent. This is exactly the "standard
// construction" from [AS04] that Theorem 3.5 invokes: the seed is the k
// coefficients (k·m true random bits) and the family exposes up to 2^m
// derived values.
//
// Algorithms index values by an abstract point; DistinctPoint helps encode
// (node, slot) pairs injectively so different nodes and different uses never
// share a point.
type KWise struct {
	field  Field
	coeffs []uint64
}

// NewKWise draws a fresh k-wise independent family over GF(2^m), consuming
// k·m seed bits from rng. It returns an error for k < 1 or unsupported m.
func NewKWise(k int, m uint, rng *prng.SplitMix64) (*KWise, error) {
	if k < 1 {
		return nil, fmt.Errorf("randomness: k-wise independence needs k >= 1, got %d", k)
	}
	field, err := NewField(m)
	if err != nil {
		return nil, err
	}
	coeffs := make([]uint64, k)
	for i := range coeffs {
		coeffs[i] = rng.Uint64() & field.mask
	}
	return &KWise{field: field, coeffs: coeffs}, nil
}

// NewKWiseFromSeed builds the family from explicit seed material: coeffs[i]
// supplies the coefficient of x^i (masked to m bits). Use this to derive a
// k-wise family from a Shared seed, which is how Theorems 3.5/3.6 convert
// poly(log n) shared bits into poly(n) k-wise independent bits.
func NewKWiseFromSeed(m uint, coeffs []uint64) (*KWise, error) {
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("randomness: k-wise family needs at least one coefficient")
	}
	field, err := NewField(m)
	if err != nil {
		return nil, err
	}
	cs := make([]uint64, len(coeffs))
	for i, c := range coeffs {
		cs[i] = c & field.mask
	}
	return &KWise{field: field, coeffs: cs}, nil
}

// K returns the independence parameter (any K() distinct points are jointly
// uniform).
func (f *KWise) K() int { return len(f.coeffs) }

// M returns the output width in bits.
func (f *KWise) M() uint { return f.field.m }

// SeedBits returns the number of true random bits underlying the family.
func (f *KWise) SeedBits() int { return len(f.coeffs) * int(f.field.m) }

// Value returns the m-bit family member at the given point. Points are
// truncated to m bits, so callers must keep points below 2^m to preserve
// distinctness (DistinctPoint enforces this for (node, slot) encodings).
func (f *KWise) Value(point uint64) uint64 {
	return f.field.Eval(f.coeffs, point&f.field.mask)
}

// Bit returns a single k-wise independent bit at the given point.
func (f *KWise) Bit(point uint64) uint64 { return f.Value(point) & 1 }

// Bernoulli reports a k-wise independent {0,1} draw with success probability
// numer/2^t at the given point, by comparing the low t bits of the value
// against numer. It panics if t exceeds the field degree (the value would
// not have enough entropy).
func (f *KWise) Bernoulli(point uint64, numer uint64, t uint) bool {
	if t > f.field.m {
		panic(fmt.Sprintf("randomness: Bernoulli resolution 2^-%d exceeds field degree %d", t, f.field.m))
	}
	var mask uint64 = ^uint64(0)
	if t < 64 {
		mask = (uint64(1) << t) - 1
	}
	return f.Value(point)&mask < numer
}

// DistinctPoint injectively encodes a (node, slot) pair as an evaluation
// point, given the maximum slot count per node. It panics if the encoding
// would overflow the field (caller must pick m large enough; m = 64 always
// suffices for the sizes in this repository).
func (f *KWise) DistinctPoint(node, slot, slotsPerNode int) uint64 {
	if slot < 0 || slot >= slotsPerNode {
		panic(fmt.Sprintf("randomness: slot %d out of range [0,%d)", slot, slotsPerNode))
	}
	p := uint64(node)*uint64(slotsPerNode) + uint64(slot)
	if f.field.m < 64 && p > f.field.mask {
		panic(fmt.Sprintf("randomness: point %d overflows GF(2^%d)", p, f.field.m))
	}
	return p
}
