package randomness

import (
	"testing"

	"randlocal/internal/prng"
)

func TestFullStreamsIndependentAcrossNodes(t *testing.T) {
	src := NewFull(42)
	a := src.Stream(0).Bits(64)
	b := src.Stream(1).Bits(64)
	if a == b {
		t.Error("node 0 and node 1 streams coincide")
	}
}

func TestFullStreamReplayable(t *testing.T) {
	src := NewFull(42)
	a := src.Stream(5).Bits(64)
	b := src.Stream(5).Bits(64)
	if a != b {
		t.Error("the same node's randomness tape should be fixed")
	}
}

func TestFullLedgerCountsTrueBits(t *testing.T) {
	src := NewFull(1)
	s := src.Stream(0)
	s.Bits(10)
	s.Bit()
	if got := src.Ledger().TrueBits(); got != 11 {
		t.Errorf("true bits = %d, want 11", got)
	}
	if got := src.Ledger().DerivedBits(); got != 0 {
		t.Errorf("derived bits = %d, want 0", got)
	}
	if src.SeedBits() != -1 {
		t.Error("Full SeedBits should be -1 (unbounded)")
	}
	if !src.Has(12345) {
		t.Error("Full should have randomness everywhere")
	}
}

func TestStreamBitBalance(t *testing.T) {
	s := NewFull(7).Stream(3)
	ones := 0
	for i := 0; i < 10000; i++ {
		ones += int(s.Bit())
	}
	if ones < 4700 || ones > 5300 {
		t.Errorf("stream ones = %d/10000", ones)
	}
}

func TestStreamIntn(t *testing.T) {
	s := NewFull(9).Stream(0)
	counts := make([]int, 5)
	for i := 0; i < 10000; i++ {
		v := s.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d", v)
		}
		counts[v]++
	}
	for b, c := range counts {
		if c < 1700 || c > 2300 {
			t.Errorf("Intn bucket %d = %d, want ≈2000", b, c)
		}
	}
	if s.Intn(1) != 0 {
		t.Error("Intn(1) must be 0")
	}
}

func TestStreamIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewFull(1).Stream(0).Intn(0)
}

func TestStreamBitsRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bits(65) did not panic")
		}
	}()
	NewFull(1).Stream(0).Bits(65)
}

func TestStreamBernoulliFrequencies(t *testing.T) {
	s := NewFull(11).Stream(0)
	for _, p := range []float64{0.25, 0.5, 0.9} {
		hits := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if s.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if got < p-0.02 || got > p+0.02 {
			t.Errorf("Bernoulli(%v) frequency %v", p, got)
		}
	}
	if s.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !s.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	if s.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) returned true")
	}
	if !s.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) returned false")
	}
}

func TestStreamGeometricDistribution(t *testing.T) {
	s := NewFull(13).Stream(0)
	const n = 40000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		v, ok := s.Geometric(40)
		if !ok {
			t.Fatal("40 heads in a row is absurdly unlikely")
		}
		counts[v]++
	}
	// Pr[X = k] = 2^-k: expect ≈ n/2 at 1, n/4 at 2, n/8 at 3.
	for k := 1; k <= 3; k++ {
		want := float64(n) / float64(int(1)<<k)
		got := float64(counts[k])
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("Geometric mass at %d: %v, want ≈%v", k, got, want)
		}
	}
}

func TestStreamGeometricCap(t *testing.T) {
	// A stream of all-heads (all ones) must hit the cap and report !ok.
	s := &Stream{budget: -1, ledger: &Ledger{}, next: func() uint64 { return 1 }}
	v, ok := s.Geometric(5)
	if ok || v != 5 {
		t.Errorf("Geometric on all-heads = (%d, %v), want (5, false)", v, ok)
	}
	// All-tails gives 1 immediately.
	s2 := &Stream{budget: -1, ledger: &Ledger{}, next: func() uint64 { return 0 }}
	if v, ok := s2.Geometric(5); !ok || v != 1 {
		t.Errorf("Geometric on all-tails = (%d, %v), want (1, true)", v, ok)
	}
}

func TestSharedSeedVisibleToAllNodes(t *testing.T) {
	src := NewShared(128, prng.New(5))
	a := src.Stream(0).Bits(64)
	b := src.Stream(99).Bits(64)
	if a != b {
		t.Error("shared randomness must look identical to every node")
	}
	if !src.Has(0) || !src.Has(10_000) {
		t.Error("all nodes can read the shared seed")
	}
}

func TestSharedSeedBudgetEnforced(t *testing.T) {
	src := NewShared(8, prng.New(5))
	s := src.Stream(0)
	s.Bits(8)
	defer func() {
		if recover() == nil {
			t.Fatal("reading past the shared seed did not panic")
		}
	}()
	s.Bit()
}

func TestSharedLedger(t *testing.T) {
	src := NewShared(100, prng.New(2))
	if got := src.Ledger().TrueBits(); got != 100 {
		t.Errorf("true bits = %d, want 100 (billed at construction)", got)
	}
	src.Stream(0).Bits(10)
	if got := src.Ledger().DerivedBits(); got != 10 {
		t.Errorf("derived bits = %d, want 10", got)
	}
	if src.SeedBits() != 100 {
		t.Errorf("SeedBits = %d", src.SeedBits())
	}
}

func TestSharedSeedBitPanicsOutOfRange(t *testing.T) {
	src := NewShared(10, prng.New(1))
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SeedBit(%d) did not panic", i)
				}
			}()
			src.SeedBit(i)
		}()
	}
}

func TestSharedKWiseFamily(t *testing.T) {
	src := NewShared(1000, prng.New(3))
	fam, next, err := src.KWiseFamily(4, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != 64 {
		t.Errorf("next offset = %d, want 64", next)
	}
	if fam.K() != 4 {
		t.Errorf("K = %d", fam.K())
	}
	// Deterministic: same seed section gives the same family.
	fam2, _, _ := src.KWiseFamily(4, 16, 0)
	for p := uint64(0); p < 50; p++ {
		if fam.Value(p) != fam2.Value(p) {
			t.Fatal("family from identical seed bits differs")
		}
	}
	// Exceeding the seed errors out.
	if _, _, err := src.KWiseFamily(100, 16, 0); err == nil {
		t.Error("oversized family request should fail")
	}
	if _, _, err := src.KWiseFamily(2, 16, 990); err == nil {
		t.Error("offset overflow should fail")
	}
}

func TestSharedEpsBiasSpace(t *testing.T) {
	src := NewShared(64, prng.New(4))
	gen, next, err := src.EpsBiasSpace(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next != 32 {
		t.Errorf("next = %d, want 32", next)
	}
	_ = gen.Bit(3)
	if _, _, err := src.EpsBiasSpace(32, 10); err == nil {
		t.Error("overflowing eps-bias request should fail")
	}
}

func TestSparseHolderBudget(t *testing.T) {
	src, err := NewSparse([]int{2, 5, 7}, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if src.SeedBits() != 3 {
		t.Errorf("SeedBits = %d, want 3", src.SeedBits())
	}
	if src.Holders() != 3 || src.BitsPerHolder() != 1 {
		t.Error("holder accounting wrong")
	}
	if src.Has(3) {
		t.Error("node 3 is not a holder")
	}
	if !src.Has(5) {
		t.Error("node 5 is a holder")
	}
	s := src.Stream(5)
	_ = s.Bit() // the one bit
	defer func() {
		if recover() == nil {
			t.Fatal("second bit from a 1-bit holder did not panic")
		}
	}()
	s.Bit()
}

func TestSparseNonHolderPanics(t *testing.T) {
	src, _ := NewSparse([]int{0}, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Stream for non-holder did not panic")
		}
	}()
	src.Stream(9)
}

func TestSparseErrors(t *testing.T) {
	if _, err := NewSparse([]int{1, 1}, 1, 0); err == nil {
		t.Error("duplicate holders accepted")
	}
	if _, err := NewSparse([]int{1}, 0, 0); err == nil {
		t.Error("zero bits per holder accepted")
	}
}

func TestSparseBitsIndependentAcrossHolders(t *testing.T) {
	// With many holders, their single bits should be balanced.
	holders := make([]int, 2000)
	for i := range holders {
		holders[i] = i
	}
	src, err := NewSparse(holders, 1, 1234)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, h := range holders {
		ones += int(src.Stream(h).Bit())
	}
	if ones < 850 || ones > 1150 {
		t.Errorf("holder bits: %d ones out of 2000", ones)
	}
	if got := src.Ledger().TrueBits(); got != 2000 {
		t.Errorf("ledger true bits = %d", got)
	}
}

func TestSparseReplayable(t *testing.T) {
	src, _ := NewSparse([]int{4}, 8, 7)
	a := src.Stream(4).Bits(8)
	b := src.Stream(4).Bits(8)
	if a != b {
		t.Error("holder tape should be fixed")
	}
}

func TestStreamRemaining(t *testing.T) {
	src, _ := NewSparse([]int{0}, 5, 1)
	s := src.Stream(0)
	if s.Remaining() != 5 {
		t.Errorf("Remaining = %d", s.Remaining())
	}
	s.Bits(3)
	if s.Remaining() != 2 || s.Drawn() != 3 {
		t.Errorf("Remaining = %d Drawn = %d", s.Remaining(), s.Drawn())
	}
	unlimited := NewFull(1).Stream(0)
	if unlimited.Remaining() != -1 {
		t.Error("unlimited stream should report -1")
	}
}

func TestLedgerString(t *testing.T) {
	var l Ledger
	l.addTrue(3)
	l.addDerived(4)
	if l.String() != "ledger{true=3 derived=4}" {
		t.Errorf("String() = %q", l.String())
	}
}
