package randomness

import (
	"fmt"

	"randlocal/internal/prng"
)

// Source hands out per-node randomness streams under one of the paper's
// randomness regimes. The three concrete sources mirror Section 3's three
// formalizations: Full (the standard model: unbounded independent private
// bits), Shared (only b bits of global shared randomness, Section 3.2), and
// Sparse (one private bit at selected holder nodes only, Section 3.1).
type Source interface {
	// Has reports whether node v holds any randomness under this source.
	Has(v int) bool
	// Stream returns the accounted bit stream of node v. It panics if
	// !Has(v): drawing randomness where the model provides none is a bug in
	// the algorithm under test and must fail loudly.
	Stream(v int) *Stream
	// SeedBits returns the total true randomness in the network under this
	// source, or -1 when it is unbounded (the Full model).
	SeedBits() int
	// Ledger returns the consumption ledger shared by all streams.
	Ledger() *Ledger
}

// Full is the standard randomized-LOCAL source: every node owns an unbounded
// stream of independent private bits, derived by splitting one master seed.
type Full struct {
	master uint64
	ledger Ledger
	// streams are created on demand; each node uses an independent
	// SplitMix64 stream keyed by (master, node).
}

// NewFull returns a Full source with the given master seed.
func NewFull(masterSeed uint64) *Full { return &Full{master: masterSeed} }

// Has reports true for every node.
func (f *Full) Has(int) bool { return true }

// SeedBits returns -1: the model grants unbounded randomness.
func (f *Full) SeedBits() int { return -1 }

// Ledger returns the shared consumption ledger.
func (f *Full) Ledger() *Ledger { return &f.ledger }

// Stream returns node v's private stream. Calling Stream twice for the same
// node returns streams with identical contents (the node's randomness tape
// is fixed up front, as in the usual definition of a randomized algorithm);
// accounting still records every read.
func (f *Full) Stream(v int) *Stream {
	rng := prng.New(prng.Hash64(f.master ^ uint64(v)*0x9E3779B97F4A7C15))
	var buf uint64
	var have uint
	return &Stream{
		budget: -1,
		ledger: &f.ledger,
		next: func() uint64 {
			if have == 0 {
				buf = rng.Uint64()
				have = 64
			}
			b := buf & 1
			buf >>= 1
			have--
			return b
		},
	}
}

// Shared is the shared-randomness model of Section 3.2: the entire network
// holds one public seed of SeedBits() true random bits and nothing else.
// Every node may read the same seed bits (reads are billed as derived bits
// after the first touch of each position — the randomness exists once, not
// per node) and may deterministically expand them, e.g. into a k-wise family
// via KWiseFamily or a small-bias space via EpsBiasSpace.
type Shared struct {
	seed   []uint64 // packed seed bits
	nbits  int
	ledger Ledger
}

// NewShared draws a shared seed of nbits true random bits.
func NewShared(nbits int, rng *prng.SplitMix64) *Shared {
	if nbits < 0 {
		panic("randomness: negative shared seed size")
	}
	words := (nbits + 63) / 64
	seed := make([]uint64, words)
	for i := range seed {
		seed[i] = rng.Uint64()
	}
	s := &Shared{seed: seed, nbits: nbits}
	s.ledger.addTrue(int64(nbits))
	return s
}

// Has reports true: every node can read the public seed.
func (s *Shared) Has(int) bool { return true }

// SeedBits returns the size of the public seed.
func (s *Shared) SeedBits() int { return s.nbits }

// Ledger returns the consumption ledger. The seed's true bits are recorded
// at construction time; node reads bill as derived bits.
func (s *Shared) Ledger() *Ledger { return &s.ledger }

// SeedBit returns seed bit i (0-indexed). It panics beyond the seed length:
// the model has exactly nbits bits of randomness and no more.
func (s *Shared) SeedBit(i int) uint64 {
	if i < 0 || i >= s.nbits {
		panic(ErrExhausted)
	}
	return (s.seed[i/64] >> uint(i%64)) & 1
}

// SeedWord returns up to 64 consecutive seed bits starting at position off.
// It panics if [off, off+k) exceeds the seed.
func (s *Shared) SeedWord(off, k int) uint64 {
	if k < 0 || k > 64 {
		panic(fmt.Sprintf("randomness: SeedWord width %d", k))
	}
	var v uint64
	for i := 0; i < k; i++ {
		v |= s.SeedBit(off+i) << uint(i)
	}
	return v
}

// Stream returns node v's view of the seed: a budgeted stream that replays
// the public seed bits in order. All nodes see identical bits — that is the
// defining property of shared randomness.
func (s *Shared) Stream(v int) *Stream {
	pos := 0
	return &Stream{
		budget:  int64(s.nbits),
		ledger:  &s.ledger,
		derived: true, // the true bits were billed once at construction
		next: func() uint64 {
			b := s.SeedBit(pos)
			pos++
			return b
		},
	}
}

// KWiseFamily deterministically expands the shared seed into a k-wise
// independent family over GF(2^m), consuming k·m seed bits starting at
// offset off. It returns the family and the next free offset.
func (s *Shared) KWiseFamily(k int, m uint, off int) (*KWise, int, error) {
	need := k * int(m)
	if off < 0 || off+need > s.nbits {
		return nil, off, fmt.Errorf("randomness: k-wise family needs %d seed bits at offset %d, seed has %d", need, off, s.nbits)
	}
	coeffs := make([]uint64, k)
	for i := range coeffs {
		coeffs[i] = s.SeedWord(off+i*int(m), int(m))
	}
	fam, err := NewKWiseFromSeed(m, coeffs)
	if err != nil {
		return nil, off, err
	}
	return fam, off + need, nil
}

// EpsBiasSpace deterministically expands 2·m seed bits starting at offset
// off into an AGHP small-bias generator. It returns the generator and the
// next free offset.
func (s *Shared) EpsBiasSpace(m uint, off int) (*EpsBias, int, error) {
	need := 2 * int(m)
	if off < 0 || off+need > s.nbits {
		return nil, off, fmt.Errorf("randomness: eps-bias space needs %d seed bits at offset %d, seed has %d", need, off, s.nbits)
	}
	x := s.SeedWord(off, int(m))
	y := s.SeedWord(off+int(m), int(m))
	gen, err := NewEpsBiasFromSeed(m, x, y)
	if err != nil {
		return nil, off, err
	}
	return gen, off + need, nil
}

// Sparse is the model of Theorems 3.1/3.7: a subset of holder nodes each own
// exactly one independent private random bit; every other node owns nothing.
// Holder streams carry a hard budget of bitsPerHolder (1 in the theorem
// statements; the package allows more for ablations) and panic with
// ErrExhausted past it.
type Sparse struct {
	holders       map[int]int // node -> holder index
	bitsPerHolder int
	master        uint64
	ledger        Ledger
}

// NewSparse places bitsPerHolder independent private bits at each listed
// holder node. Duplicate holders are rejected.
func NewSparse(holders []int, bitsPerHolder int, masterSeed uint64) (*Sparse, error) {
	if bitsPerHolder < 1 {
		return nil, fmt.Errorf("randomness: bitsPerHolder must be >= 1, got %d", bitsPerHolder)
	}
	idx := make(map[int]int, len(holders))
	for i, h := range holders {
		if _, dup := idx[h]; dup {
			return nil, fmt.Errorf("randomness: duplicate holder %d", h)
		}
		idx[h] = i
	}
	return &Sparse{holders: idx, bitsPerHolder: bitsPerHolder, master: masterSeed}, nil
}

// Has reports whether v is a holder.
func (s *Sparse) Has(v int) bool {
	_, ok := s.holders[v]
	return ok
}

// Holders returns the number of holder nodes.
func (s *Sparse) Holders() int { return len(s.holders) }

// BitsPerHolder returns the per-holder budget.
func (s *Sparse) BitsPerHolder() int { return s.bitsPerHolder }

// SeedBits returns the total true randomness available in the network.
func (s *Sparse) SeedBits() int { return len(s.holders) * s.bitsPerHolder }

// Ledger returns the consumption ledger.
func (s *Sparse) Ledger() *Ledger { return &s.ledger }

// Stream returns the holder's budgeted stream. It panics for non-holders —
// under this model those nodes simply have no randomness to draw.
func (s *Sparse) Stream(v int) *Stream {
	i, ok := s.holders[v]
	if !ok {
		panic(fmt.Sprintf("randomness: node %d holds no random bits under the sparse model", v))
	}
	rng := prng.New(prng.Hash64(s.master ^ uint64(i)*0xD1B54A32D192ED03))
	var buf uint64
	var have uint
	return &Stream{
		budget: int64(s.bitsPerHolder),
		ledger: &s.ledger,
		next: func() uint64 {
			if have == 0 {
				buf = rng.Uint64()
				have = 64
			}
			b := buf & 1
			buf >>= 1
			have--
			return b
		},
	}
}

var (
	_ Source = (*Full)(nil)
	_ Source = (*Shared)(nil)
	_ Source = (*Sparse)(nil)
)
