package randomness

import (
	"testing"

	"randlocal/internal/prng"
)

// TestKWiseExhaustivePairwise proves pairwise (k=2) independence over
// GF(2^3) exhaustively: over all 2^(2·3) = 64 seeds, the pair of values at
// any two distinct points must take each of the 64 possible value pairs
// exactly once. This is the defining property of the construction (a degree
// <2 polynomial through 2 points is unique).
func TestKWiseExhaustivePairwise(t *testing.T) {
	const m = 3
	points := [][2]uint64{{0, 1}, {1, 2}, {3, 7}, {0, 7}, {5, 6}}
	for _, pts := range points {
		counts := make(map[[2]uint64]int)
		for c0 := uint64(0); c0 < 8; c0++ {
			for c1 := uint64(0); c1 < 8; c1++ {
				fam, err := NewKWiseFromSeed(m, []uint64{c0, c1})
				if err != nil {
					t.Fatal(err)
				}
				counts[[2]uint64{fam.Value(pts[0]), fam.Value(pts[1])}]++
			}
		}
		if len(counts) != 64 {
			t.Fatalf("points %v: %d distinct value pairs, want 64", pts, len(counts))
		}
		for pair, c := range counts {
			if c != 1 {
				t.Fatalf("points %v: value pair %v seen %d times, want 1", pts, pair, c)
			}
		}
	}
}

// TestKWiseExhaustiveTriple proves 3-wise independence over GF(2^3):
// 2^(3·3) = 512 seeds against all value triples at 3 distinct points.
func TestKWiseExhaustiveTriple(t *testing.T) {
	const m = 3
	pts := []uint64{1, 4, 6}
	counts := make(map[[3]uint64]int)
	for c0 := uint64(0); c0 < 8; c0++ {
		for c1 := uint64(0); c1 < 8; c1++ {
			for c2 := uint64(0); c2 < 8; c2++ {
				fam, err := NewKWiseFromSeed(m, []uint64{c0, c1, c2})
				if err != nil {
					t.Fatal(err)
				}
				counts[[3]uint64{fam.Value(pts[0]), fam.Value(pts[1]), fam.Value(pts[2])}]++
			}
		}
	}
	if len(counts) != 512 {
		t.Fatalf("%d distinct value triples, want 512", len(counts))
	}
	for _, c := range counts {
		if c != 1 {
			t.Fatal("value triple multiplicity != 1")
		}
	}
}

// TestKWiseNotFullyIndependent documents the flip side: a 2-wise family over
// a small field is NOT 3-wise independent — three values at distinct points
// are constrained (a degree-1 polynomial is determined by 2 points). The
// experiment layer relies on this distinction being real.
func TestKWiseNotFullyIndependent(t *testing.T) {
	const m = 3
	seen := make(map[[3]uint64]bool)
	for c0 := uint64(0); c0 < 8; c0++ {
		for c1 := uint64(0); c1 < 8; c1++ {
			fam, _ := NewKWiseFromSeed(m, []uint64{c0, c1})
			seen[[3]uint64{fam.Value(0), fam.Value(1), fam.Value(2)}] = true
		}
	}
	if len(seen) == 512 {
		t.Error("2-wise family appears 3-wise independent; construction broken")
	}
	if len(seen) != 64 {
		t.Errorf("2-wise family supports %d triples, want exactly 64", len(seen))
	}
}

func TestKWiseBitBalance(t *testing.T) {
	rng := prng.New(17)
	fam, err := NewKWise(8, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	const n = 20000
	for i := 0; i < n; i++ {
		ones += int(fam.Bit(uint64(i)))
	}
	if ones < n/2-450 || ones > n/2+450 {
		t.Errorf("k-wise bits: %d ones out of %d", ones, n)
	}
}

func TestKWiseBernoulli(t *testing.T) {
	rng := prng.New(23)
	fam, err := NewKWise(16, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	// p = 3/16.
	hits := 0
	const n = 40000
	for i := 0; i < n; i++ {
		if fam.Bernoulli(uint64(i), 3, 4) {
			hits++
		}
	}
	want := float64(n) * 3 / 16
	if f := float64(hits); f < want*0.9 || f > want*1.1 {
		t.Errorf("Bernoulli(3/16): %d hits, want ≈%.0f", hits, want)
	}
}

func TestKWiseBernoulliPanicsOnResolution(t *testing.T) {
	fam, _ := NewKWiseFromSeed(8, []uint64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("Bernoulli with t > m did not panic")
		}
	}()
	fam.Bernoulli(0, 1, 9)
}

func TestKWiseSeedBits(t *testing.T) {
	fam, err := NewKWise(10, 32, prng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if fam.SeedBits() != 320 {
		t.Errorf("SeedBits = %d, want 320", fam.SeedBits())
	}
	if fam.K() != 10 || fam.M() != 32 {
		t.Errorf("K=%d M=%d", fam.K(), fam.M())
	}
}

func TestKWiseErrors(t *testing.T) {
	if _, err := NewKWise(0, 8, prng.New(1)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewKWise(2, 13, prng.New(1)); err == nil {
		t.Error("unsupported field accepted")
	}
	if _, err := NewKWiseFromSeed(8, nil); err == nil {
		t.Error("empty seed accepted")
	}
}

func TestDistinctPoint(t *testing.T) {
	fam, _ := NewKWise(2, 64, prng.New(1))
	seen := make(map[uint64]bool)
	for node := 0; node < 10; node++ {
		for slot := 0; slot < 7; slot++ {
			p := fam.DistinctPoint(node, slot, 7)
			if seen[p] {
				t.Fatalf("point collision at node %d slot %d", node, slot)
			}
			seen[p] = true
		}
	}
}

func TestDistinctPointPanics(t *testing.T) {
	fam, _ := NewKWise(2, 8, prng.New(1))
	t.Run("slot out of range", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		fam.DistinctPoint(0, 7, 7)
	})
	t.Run("field overflow", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		fam.DistinctPoint(1000, 3, 7) // 7003 > 255
	})
}

func TestKWiseDeterministicFromSeed(t *testing.T) {
	a, _ := NewKWiseFromSeed(16, []uint64{0x1234, 0x5678, 0x9abc})
	b, _ := NewKWiseFromSeed(16, []uint64{0x1234, 0x5678, 0x9abc})
	for p := uint64(0); p < 100; p++ {
		if a.Value(p) != b.Value(p) {
			t.Fatalf("same seed diverges at point %d", p)
		}
	}
}
