package randomness

import (
	"testing"
	"testing/quick"
)

// polyDegree returns the degree of a GF(2) polynomial in bits (-1 for 0).
func polyDegree(p uint64) int {
	d := -1
	for p != 0 {
		p >>= 1
		d++
	}
	return d
}

// polyMod reduces a modulo b over GF(2)[x].
func polyMod(a, b uint64) uint64 {
	db := polyDegree(b)
	for {
		da := polyDegree(a)
		if da < db {
			return a
		}
		a ^= b << uint(da-db)
	}
}

// TestTablePolynomialsIrreducible verifies, by trial division against every
// polynomial of degree in [1, m/2], that the small field table entries are
// irreducible. This re-derives the Seroussi table entries we rely on.
func TestTablePolynomialsIrreducible(t *testing.T) {
	for m, low := range lowWeightIrreducible {
		if m > 16 {
			continue // trial division too slow; larger entries are standard
		}
		f := (uint64(1) << m) | low
		for d := uint64(2); polyDegree(d) <= int(m)/2; d++ {
			if polyMod(f, d) == 0 {
				t.Errorf("GF(2^%d) polynomial %#x divisible by %#x", m, f, d)
			}
		}
	}
}

func TestNewFieldUnsupported(t *testing.T) {
	if _, err := NewField(13); err == nil {
		t.Error("NewField(13) should fail: no polynomial on file")
	}
	if _, err := NewField(0); err == nil {
		t.Error("NewField(0) should fail")
	}
}

func TestMustFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustField(13) did not panic")
		}
	}()
	MustField(13)
}

func TestFieldAxiomsSmall(t *testing.T) {
	// Exhaustive check of the field axioms in GF(2^4): commutativity,
	// associativity, distributivity, identity, and no zero divisors.
	f := MustField(4)
	n := uint64(16)
	for a := uint64(0); a < n; a++ {
		for b := uint64(0); b < n; b++ {
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("commutativity fails at %d,%d", a, b)
			}
			if a != 0 && b != 0 && f.Mul(a, b) == 0 {
				t.Fatalf("zero divisor: %d * %d = 0", a, b)
			}
			for c := uint64(0); c < n; c++ {
				if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
					t.Fatalf("associativity fails at %d,%d,%d", a, b, c)
				}
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("distributivity fails at %d,%d,%d", a, b, c)
				}
			}
		}
		if f.Mul(a, 1) != a {
			t.Fatalf("identity fails at %d", a)
		}
	}
}

func TestFieldMultiplicativeGroupOrder(t *testing.T) {
	// In GF(2^m) every nonzero a satisfies a^(2^m - 1) = 1.
	for _, m := range []uint{3, 4, 8} {
		f := MustField(m)
		order := (uint64(1) << m) - 1
		for a := uint64(1); a <= f.mask && a < 1<<m; a++ {
			if got := f.Pow(a, order); got != 1 {
				t.Fatalf("GF(2^%d): %d^%d = %d, want 1", m, a, order, got)
			}
		}
	}
}

func TestFieldPowEdgeCases(t *testing.T) {
	f := MustField(8)
	if f.Pow(0, 0) != 1 {
		t.Error("0^0 should be 1 (empty product)")
	}
	if f.Pow(0, 5) != 0 {
		t.Error("0^5 should be 0")
	}
	if f.Pow(7, 1) != 7 {
		t.Error("a^1 should be a")
	}
}

func TestFieldMul64SpotChecks(t *testing.T) {
	f := MustField(64)
	// x * x = x^2 (no reduction needed).
	if got := f.Mul(2, 2); got != 4 {
		t.Errorf("x*x = %#x, want 4", got)
	}
	// x^63 * x = x^64 ≡ lowPoly (one reduction step).
	if got := f.Mul(1<<63, 2); got != lowWeightIrreducible[64] {
		t.Errorf("x^63 * x = %#x, want %#x", got, lowWeightIrreducible[64])
	}
	// Commutativity and distributivity on random values.
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(a, b, c uint64) bool {
		if f.Mul(a, b) != f.Mul(b, a) {
			return false
		}
		return f.Mul(a, b^c) == f.Mul(a, b)^f.Mul(a, c)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestFieldEvalHorner(t *testing.T) {
	f := MustField(8)
	// p(x) = 3 + 5x + x^2 at x=2 (i.e. the element "x"):
	// x^2 = 4, 5x = Mul(5,2)=10, so p = 3 ^ 10 ^ 4 = 13.
	got := f.Eval([]uint64{3, 5, 1}, 2)
	if got != 13 {
		t.Errorf("Eval = %d, want 13", got)
	}
	// Constant polynomial.
	if f.Eval([]uint64{9}, 77) != 9 {
		t.Error("constant polynomial evaluation wrong")
	}
	// Empty polynomial is zero.
	if f.Eval(nil, 5) != 0 {
		t.Error("empty polynomial should evaluate to 0")
	}
}
