package randomness

import (
	"fmt"

	"randlocal/internal/prng"
)

// EpsBias is a small-bias sample space in the style of Naor–Naor [NN93],
// realized through the "powering" construction of Alon, Goldreich, Håstad
// and Peralta (AGHP): with a seed (x, y) ∈ GF(2^m)², the i-th output bit is
// the inner product ⟨x^i, y⟩ over GF(2). Every non-empty parity of at most
// n output bits has bias at most (n-1)/2^m, so m = Θ(log(n/ε)) gives an
// ε-bias space from only 2m true random bits.
//
// Lemma 3.4 uses such spaces to solve splitting with O(log n) shared bits;
// experiment E3 compares this seed size against the k-wise construction's
// O(log² n) bits.
type EpsBias struct {
	field Field
	x, y  uint64
}

// NewEpsBias draws a seed for the AGHP generator over GF(2^m), consuming 2·m
// true random bits.
func NewEpsBias(m uint, rng *prng.SplitMix64) (*EpsBias, error) {
	field, err := NewField(m)
	if err != nil {
		return nil, err
	}
	return &EpsBias{
		field: field,
		x:     rng.Uint64() & field.mask,
		y:     rng.Uint64() & field.mask,
	}, nil
}

// NewEpsBiasFromSeed builds the generator from explicit seed words.
func NewEpsBiasFromSeed(m uint, x, y uint64) (*EpsBias, error) {
	field, err := NewField(m)
	if err != nil {
		return nil, err
	}
	return &EpsBias{field: field, x: x & field.mask, y: y & field.mask}, nil
}

// SeedBits returns the number of true random bits underlying the space.
func (e *EpsBias) SeedBits() int { return 2 * int(e.field.m) }

// Bias returns the guaranteed bias bound (n-1)/2^m for parities over the
// first n output bits.
func (e *EpsBias) Bias(n int) float64 {
	if n <= 1 {
		return 0
	}
	denom := float64(uint64(1) << min(e.field.m, 62))
	if e.field.m > 62 {
		denom = float64(1<<62) * 4
	}
	return float64(n-1) / denom
}

// Bit returns the i-th output bit ⟨x^i, y⟩.
func (e *EpsBias) Bit(i uint64) uint64 {
	xi := e.field.Pow(e.x, i)
	return parity(e.field.Mul(xi, e.y) & e.field.mask)
}

func parity(v uint64) uint64 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}

// String describes the generator.
func (e *EpsBias) String() string {
	return fmt.Sprintf("epsbias{GF(2^%d), seed=%d bits}", e.field.m, e.SeedBits())
}
