// Package randomness implements the "randomness as a scarce resource" layer
// of the reproduction (Section 3 of the paper): randomness sources with exact
// bit accounting, k-wise independent bit families built from polynomials over
// GF(2^m) (the standard construction of [AS04] the paper invokes), small-bias
// spaces in the spirit of Naor–Naor [NN93], globally shared seeds, and the
// sparse one-bit-per-ball placement of Theorems 3.1/3.7.
//
// Every random bit an algorithm consumes flows through a Stream, and every
// Stream reports to a Ledger, so experiment E9 can print the exact number of
// true random bits (seed bits) and derived bits each algorithm used.
package randomness

import "fmt"

// Field is the finite field GF(2^m) for 1 <= m <= 64, represented as
// polynomials over GF(2) modulo a fixed irreducible polynomial. Elements are
// uint64 values with only the low m bits used.
type Field struct {
	m       uint   // extension degree
	lowPoly uint64 // reduction polynomial minus the x^m term
	mask    uint64 // (1<<m)-1, with m=64 mapping to all-ones
}

// lowWeightIrreducible maps m to the low-order part of a known irreducible
// polynomial x^m + low(x) over GF(2), from Seroussi's table of low-weight
// binary irreducible polynomials (HP Labs HPL-98-135). Irreducibility of the
// small entries is re-verified by trial division in the package tests.
var lowWeightIrreducible = map[uint]uint64{
	1:  1 << 0,                 // x + 1
	2:  1<<1 | 1,               // x^2 + x + 1
	3:  1<<1 | 1,               // x^3 + x + 1
	4:  1<<1 | 1,               // x^4 + x + 1
	5:  1<<2 | 1,               // x^5 + x^2 + 1
	6:  1<<1 | 1,               // x^6 + x + 1
	7:  1<<1 | 1,               // x^7 + x + 1
	8:  1<<4 | 1<<3 | 1<<1 | 1, // x^8 + x^4 + x^3 + x + 1 (AES)
	9:  1<<1 | 1,               // x^9 + x + 1
	10: 1<<3 | 1,               // x^10 + x^3 + 1
	12: 1<<3 | 1,               // x^12 + x^3 + 1
	16: 1<<5 | 1<<3 | 1<<1 | 1, // x^16 + x^5 + x^3 + x + 1
	20: 1<<3 | 1,               // x^20 + x^3 + 1
	24: 1<<4 | 1<<3 | 1<<1 | 1, // x^24 + x^4 + x^3 + x + 1
	32: 1<<7 | 1<<3 | 1<<2 | 1, // x^32 + x^7 + x^3 + x^2 + 1
	48: 1<<5 | 1<<3 | 1<<2 | 1, // x^48 + x^5 + x^3 + x^2 + 1
	64: 1<<4 | 1<<3 | 1<<1 | 1, // x^64 + x^4 + x^3 + x + 1
}

// NewField returns GF(2^m). Only degrees with a known irreducible polynomial
// in the built-in table are supported; it returns an error otherwise.
func NewField(m uint) (Field, error) {
	low, ok := lowWeightIrreducible[m]
	if !ok {
		return Field{}, fmt.Errorf("randomness: no irreducible polynomial on file for GF(2^%d)", m)
	}
	mask := ^uint64(0)
	if m < 64 {
		mask = (uint64(1) << m) - 1
	}
	return Field{m: m, lowPoly: low, mask: mask}, nil
}

// MustField is NewField for degrees known to be in the table; it panics on
// error and exists for package-internal constructions with fixed m.
func MustField(m uint) Field {
	f, err := NewField(m)
	if err != nil {
		panic(err)
	}
	return f
}

// Degree returns m.
func (f Field) Degree() uint { return f.m }

// Mask returns the bitmask covering valid element bits.
func (f Field) Mask() uint64 { return f.mask }

// Add returns a + b (XOR in characteristic 2).
func (f Field) Add(a, b uint64) uint64 { return (a ^ b) & f.mask }

// Mul returns a * b in GF(2^m), by shift-and-add with on-the-fly reduction.
func (f Field) Mul(a, b uint64) uint64 {
	a &= f.mask
	b &= f.mask
	high := uint64(1) << (f.m - 1)
	var p uint64
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		b >>= 1
		carry := a & high
		a = (a << 1) & f.mask
		if carry != 0 {
			a ^= f.lowPoly
		}
	}
	return p & f.mask
}

// Pow returns a^e by square-and-multiply. a^0 = 1 including for a = 0
// (the empty product), matching the usual convention.
func (f Field) Pow(a uint64, e uint64) uint64 {
	result := uint64(1)
	base := a & f.mask
	for e > 0 {
		if e&1 != 0 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// Eval evaluates the polynomial with the given coefficients (coeffs[i] is the
// coefficient of x^i) at point x, via Horner's rule.
func (f Field) Eval(coeffs []uint64, x uint64) uint64 {
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = f.Mul(acc, x) ^ (coeffs[i] & f.mask)
	}
	return acc & f.mask
}
