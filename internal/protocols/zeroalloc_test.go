package protocols

import (
	"os"
	"testing"

	"randlocal/internal/sim"
)

// TestMain enables the engine's poisoned-Outbox check for the package's
// whole test run (FloodMin and the BFS tree assemble their outboxes in the
// NodeCtx.Outbox scratch).
func TestMain(m *testing.M) {
	sim.SetDebugOutboxCheck(true)
	os.Exit(m.Run())
}

// TestFloodMinSteadyStateRoundAllocsNothing measures the canonical flooding
// round — absorb the minima heard, broadcast the new minimum — under
// testing.AllocsPerRun.
func TestFloodMinSteadyStateRoundAllocsNothing(t *testing.T) {
	const deg = 6
	ctx, rotate := sim.NewBenchCtx(deg, 42, 1024, nil)
	prog := NewFloodMin(0)
	prog.Init(ctx)
	inbox := make([]sim.Message, deg)
	for p := range inbox {
		inbox[p] = sim.Uints(uint64(10 + p))
	}
	avg := testing.AllocsPerRun(100, func() {
		rotate()
		prog.Round(1, inbox)
	})
	if avg != 0 {
		t.Errorf("FloodMin steady-state round allocates %.1f times, want 0", avg)
	}
}

// TestBFSTreeRoundsAllocNothing measures the two message-producing BFS
// shapes: the root's wave broadcast (all ports except the parent) and a
// joined node's single-port parent announcement.
func TestBFSTreeRoundsAllocNothing(t *testing.T) {
	const deg = 4
	rootCtx, rotateRoot := sim.NewBenchCtx(deg, 3, 256, nil)
	root := &bfsTree{RootID: 3}
	root.Init(rootCtx)
	waveInbox := make([]sim.Message, deg)
	avg := testing.AllocsPerRun(100, func() {
		rotateRoot()
		root.Round(0, waveInbox)
	})
	if avg != 0 {
		t.Errorf("wave round allocates %.1f times, want 0", avg)
	}

	ctx, rotate := sim.NewBenchCtx(deg, 9, 256, nil)
	node := &bfsTree{RootID: 3}
	node.Init(ctx)
	joinInbox := make([]sim.Message, deg)
	joinInbox[1] = sim.Uints(bfsWave, 0)
	if _, done := node.Round(0, joinInbox); done || node.out.ParentPort != 1 {
		t.Fatal("node did not join the wave")
	}
	// Phase B, round T+1: announce the parent on exactly one port.
	announceInbox := make([]sim.Message, deg)
	T := node.Depth
	avg = testing.AllocsPerRun(100, func() {
		rotate()
		node.Round(T+1, announceInbox)
	})
	if avg != 0 {
		t.Errorf("parent-announcement round allocates %.1f times, want 0", avg)
	}
}

// TestFloodMinBitSteadyStateRoundAllocsNothing is the packed counterpart:
// the AND-flood's absorb-and-broadcast round over bit planes must allocate
// nothing, including when the inbox scan crosses a word boundary.
func TestFloodMinBitSteadyStateRoundAllocsNothing(t *testing.T) {
	const deg = 70
	ctx, setIn, reset := sim.NewPackedBenchCtx(deg, 42, 1024, nil)
	prog := NewFloodMinBit(1, 0)
	prog.Init(ctx)
	avg := testing.AllocsPerRun(100, func() {
		reset()
		setIn(3, 1)
		setIn(66, 1)
		prog.Round(1, nil)
		prog.Bit = 1 // hold the node in steady broadcasting state
	})
	if avg != 0 {
		t.Errorf("FloodMinBit steady-state round allocates %.1f times, want 0", avg)
	}
}
