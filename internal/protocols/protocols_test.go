package protocols

import (
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/sim"
)

func TestElectLeader(t *testing.T) {
	rng := prng.New(3)
	g := graph.GNPConnected(80, 0.05, rng)
	ids := sim.RandomIDs(80, 5, sim.NewSimulationKey(rng.Uint64()))
	minID := ids[0]
	for _, id := range ids {
		if id < minID {
			minID = id
		}
	}
	leaders, res, err := ElectLeader(g, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range leaders {
		if l != minID {
			t.Errorf("node %d elected %d, want %d", v, l, minID)
		}
	}
	if res.MaxMessageBits > sim.CongestBits(80) {
		t.Error("CONGEST violated")
	}
}

func TestElectLeaderPerComponent(t *testing.T) {
	g := graph.Disjoint(graph.Ring(6), graph.Path(5))
	leaders, _, err := ElectLeader(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 6; v++ {
		if leaders[v] != 0 {
			t.Errorf("component 1 node %d: leader %d", v, leaders[v])
		}
	}
	for v := 6; v < 11; v++ {
		if leaders[v] != 6 {
			t.Errorf("component 2 node %d: leader %d", v, leaders[v])
		}
	}
}

func TestBFSTreeOnFamilies(t *testing.T) {
	rng := prng.New(5)
	families := map[string]*graph.Graph{
		"path20": graph.Path(20),
		"ring30": graph.Ring(30),
		"grid6":  graph.Grid(6, 6),
		"gnp60":  graph.GNPConnected(60, 0.08, rng),
		"tree50": graph.RandomTree(50, rng),
		"single": graph.NewBuilder(1).Graph(),
		"star10": graph.Star(10),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			outs, res, err := BFSTree(g, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := Validate(g, 0, outs); err != nil {
				t.Fatal(err)
			}
			if outs[0].SubtreeSize != g.N() {
				t.Errorf("root counted %d nodes, component has %d", outs[0].SubtreeSize, g.N())
			}
			if res.MaxMessageBits > sim.CongestBits(g.N()) {
				t.Error("CONGEST violated")
			}
		})
	}
}

func TestBFSTreeSubtreeSizesAreConsistent(t *testing.T) {
	g := graph.BalancedTree(2, 3) // 15 nodes
	outs, _, err := BFSTree(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// In a complete binary tree of depth 3 rooted at 0, the root's
	// children have subtrees of 7 each.
	if outs[0].SubtreeSize != 15 {
		t.Errorf("root subtree %d", outs[0].SubtreeSize)
	}
	if outs[1].SubtreeSize != 7 || outs[2].SubtreeSize != 7 {
		t.Errorf("children subtrees %d, %d", outs[1].SubtreeSize, outs[2].SubtreeSize)
	}
	// Leaves have subtree 1.
	for v := 7; v < 15; v++ {
		if outs[v].SubtreeSize != 1 {
			t.Errorf("leaf %d subtree %d", v, outs[v].SubtreeSize)
		}
	}
}

func TestBFSTreeDisconnected(t *testing.T) {
	g := graph.Disjoint(graph.Path(4), graph.Ring(4))
	outs, _, err := BFSTree(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Component of the root: counted; other component unreached.
	if outs[0].SubtreeSize != 4 {
		t.Errorf("root counted %d", outs[0].SubtreeSize)
	}
	for v := 4; v < 8; v++ {
		if outs[v].Dist != -1 || outs[v].SubtreeSize != 0 {
			t.Errorf("unreached node %d: %+v", v, outs[v])
		}
	}
}

func TestBFSTreeConcurrentEngineAgrees(t *testing.T) {
	g := graph.GNPConnected(50, 0.1, prng.New(8))
	cfg := sim.Config{Graph: g, MaxMessageBits: sim.CongestBits(g.N())}
	seq, err := sim.Run(cfg, func(int) sim.NodeProgram[BFSOutput] { return &bfsTree{RootID: 0} })
	if err != nil {
		t.Fatal(err)
	}
	con, err := sim.RunConcurrent(cfg, func(int) sim.NodeProgram[BFSOutput] { return &bfsTree{RootID: 0} })
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.Outputs {
		if seq.Outputs[v] != con.Outputs[v] {
			t.Fatalf("node %d: %+v vs %+v", v, seq.Outputs[v], con.Outputs[v])
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := graph.Path(4)
	outs, _, err := BFSTree(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	outs[2].Dist = 7
	if err := Validate(g, 0, outs); err == nil {
		t.Error("corrupted distance accepted")
	}
}

// TestFloodMinBit checks the 1-bit AND-flood: with enough rounds every node
// learns the AND over its component; with a short budget information travels
// exactly as far as the round count allows.
func TestFloodMinBit(t *testing.T) {
	// Two components: a ring carrying one 0 (AND = 0) and a path of all 1s
	// (AND = 1).
	g := graph.Disjoint(graph.Ring(9), graph.Path(5))
	bits := make([]uint64, g.N())
	for v := range bits {
		bits[v] = 1
	}
	bits[4] = 0
	out, res, err := FloodMinBit(g, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 9; v++ {
		if out[v] != 0 {
			t.Errorf("ring node %d bit %d, want 0", v, out[v])
		}
	}
	for v := 9; v < g.N(); v++ {
		if out[v] != 1 {
			t.Errorf("path node %d bit %d, want 1", v, out[v])
		}
	}
	if res.MaxMessageBits != 8 {
		t.Errorf("max message bits = %d, want the canonical 8-bit wire encoding", res.MaxMessageBits)
	}

	// Diameter edge: on a path with the 0 at one end, r rounds inform
	// exactly the nodes within distance r.
	p := graph.Path(10)
	pb := make([]uint64, 10)
	for v := range pb {
		pb[v] = 1
	}
	pb[0] = 0
	out, _, err = FloodMinBit(p, pb, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		want := uint64(1)
		if v <= 3 {
			want = 0
		}
		if out[v] != want {
			t.Errorf("path node %d after 3 rounds: bit %d, want %d", v, out[v], want)
		}
	}
}

// TestFloodMinBitMatchesFloodMin cross-checks the bit flood against the
// general FloodMin on the same instance: with each node's bit in the high
// word of its (distinct) identifier, the component minimum's high word IS
// the AND the bit flood computes.
func TestFloodMinBitMatchesFloodMin(t *testing.T) {
	rng := prng.New(17)
	g := graph.GNPConnected(120, 0.04, rng)
	bits := make([]uint64, g.N())
	ids := make([]uint64, g.N())
	for v := range bits {
		bits[v] = rng.Uint64() & 1
		ids[v] = bits[v]<<32 | uint64(v)
	}
	gotBits, _, err := FloodMinBit(g, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := sim.Run(sim.Config{Graph: g, IDs: ids, MaxMessageBits: sim.CongestBits(g.N())},
		func(int) sim.NodeProgram[uint64] { return NewFloodMin(0) })
	if err != nil {
		t.Fatal(err)
	}
	for v := range gotBits {
		if gotBits[v] != wantRes.Outputs[v]>>32 {
			t.Errorf("node %d: FloodMinBit %d, FloodMin high word %d", v, gotBits[v], wantRes.Outputs[v]>>32)
		}
	}
}
