// Package protocols provides the classic building-block CONGEST protocols
// used throughout the constructions and available to downstream users of
// the simulator: bounded flooding (leader election by minimum identifier),
// BFS-tree construction, and convergecast aggregation along the tree.
// These are exactly the "simple flooding", "parallel BFS explorations" and
// "upcast on the tree" primitives the paper's Lemmas 3.2/3.3 and
// Theorem 4.2 invoke; having them as tested node programs makes the round
// accounting of the composite constructions concrete.
package protocols

import (
	"fmt"

	"randlocal/internal/graph"
	"randlocal/internal/sim"
)

// FloodMinProgram floods the minimum identifier for a fixed number of
// rounds; with rounds ≥ the (component) diameter every node learns the
// component's minimum — leader election under known network size.
type FloodMinProgram struct {
	Rounds int
	ctx    *sim.NodeCtx
	best   uint64
}

// NewFloodMin returns the program; rounds 0 means ctx.N (always enough).
func NewFloodMin(rounds int) *FloodMinProgram { return &FloodMinProgram{Rounds: rounds} }

func (f *FloodMinProgram) Init(ctx *sim.NodeCtx) {
	f.ctx = ctx
	f.best = ctx.ID
	if f.Rounds == 0 {
		f.Rounds = ctx.N
	}
}

// Round implements sim.NodeProgram.
func (f *FloodMinProgram) Round(r int, inbox []sim.Message) ([]sim.Message, bool) {
	for _, m := range inbox {
		if m == nil {
			continue
		}
		if x, _, ok := sim.ReadUint(m); ok && x < f.best {
			f.best = x
		}
	}
	if r >= f.Rounds {
		return nil, true
	}
	return f.ctx.Broadcast(f.ctx.Uints(f.best)), false
}

// Output returns the minimum identifier heard.
func (f *FloodMinProgram) Output() uint64 { return f.best }

// FloodMinBitProgram is the 1-bit restriction of FloodMin: every node holds
// one input bit and floods the global AND (the minimum over bits) for a fixed
// number of rounds — with rounds ≥ the component diameter every node learns
// whether any node of its component holds a 0. It declares PayloadBits() = 1,
// so the sequential and parallel engines run it over packed bit planes, and
// its absorb step is branch-free: a received 0 is a present bit whose value
// bit is clear, so `present &^ value` over each inbox word finds all
// min-lowering arrivals 64 ports at a time.
type FloodMinBitProgram struct {
	Rounds int
	Bit    uint64
	ctx    *sim.NodeCtx
}

// NewFloodMinBit returns the program with the given input bit; rounds 0
// means ctx.N (always enough).
func NewFloodMinBit(bit uint64, rounds int) *FloodMinBitProgram {
	return &FloodMinBitProgram{Rounds: rounds, Bit: bit & 1}
}

// PayloadBits declares the 1-bit payload width that lets the engines pack
// this program's message planes into bitmaps.
func (f *FloodMinBitProgram) PayloadBits() int { return 1 }

func (f *FloodMinBitProgram) Init(ctx *sim.NodeCtx) {
	f.ctx = ctx
	if f.Rounds == 0 {
		f.Rounds = ctx.N
	}
}

// Round implements sim.NodeProgram.
func (f *FloodMinBitProgram) Round(r int, _ []sim.Message) ([]sim.Message, bool) {
	var lowered uint64
	for j := 0; j < f.ctx.BitWords(); j++ {
		pres, val := f.ctx.InBitWord(j)
		lowered |= pres &^ val
	}
	if lowered != 0 {
		f.Bit = 0
	}
	if r >= f.Rounds {
		return nil, true
	}
	return f.ctx.BroadcastBit(f.Bit), false
}

// Output returns the bit after flooding: the AND over the component (given
// enough rounds).
func (f *FloodMinBitProgram) Output() uint64 { return f.Bit }

// BFSOutput is the per-node result of the BFS-tree protocol.
type BFSOutput struct {
	// Dist is the hop distance from the root (-1 when unreached).
	Dist int
	// ParentPort is the port toward the parent (-1 at the root and at
	// unreached nodes).
	ParentPort int
	// SubtreeSize is the number of nodes in this node's subtree (set by
	// the convergecast phase; 0 when unreached).
	SubtreeSize int
}

// bfsTree builds a BFS tree from the node whose identifier equals RootID
// and then convergecasts subtree sizes to the root: the "build a cluster
// around each center and upcast" motif of Lemma 3.2 and Theorem 4.2, as a
// self-contained three-phase program.
//
// Phase A (rounds 0..T): the root wave; each node adopts the first sender
// as parent and forwards. Phase B (round T+1): every node announces its
// parent's identity so nodes learn their children. Phase C: leaves send
// their subtree size (1) up; internal nodes forward once all children have
// reported. All messages are a constant number of varints — CONGEST-sized.
type bfsTree struct {
	RootID   uint64
	Depth    int // wave budget T; 0 means ctx.N
	ctx      *sim.NodeCtx
	out      BFSOutput
	children []int // ports of children
	// reported[p] is the subtree size announced on port p (-1 until it
	// arrives) and nReported counts the ports that have announced — a
	// port-indexed slice instead of a map, so convergecast rounds allocate
	// nothing.
	reported  []int
	nReported int
	sentUp    bool
}

func (b *bfsTree) Init(ctx *sim.NodeCtx) {
	b.ctx = ctx
	if b.Depth == 0 {
		b.Depth = ctx.N
	}
	b.out = BFSOutput{Dist: -1, ParentPort: -1}
	b.reported = make([]int, ctx.Degree)
	for p := range b.reported {
		b.reported[p] = -1
	}
	if ctx.ID == b.RootID {
		b.out.Dist = 0
	}
}

const (
	bfsWave   = 1
	bfsParent = 2
	bfsCount  = 3
)

func (b *bfsTree) Round(r int, inbox []sim.Message) ([]sim.Message, bool) {
	T := b.Depth
	switch {
	case r <= T: // Phase A: wave
		for port, m := range inbox {
			if m == nil {
				continue
			}
			var vals [2]uint64
			if !sim.DecodeUintsInto(m, vals[:]) || vals[0] != bfsWave {
				continue
			}
			if b.out.Dist < 0 {
				b.out.Dist = int(vals[1]) + 1
				b.out.ParentPort = port
			}
		}
		// Forward the wave exactly once, the round after joining.
		joinedAt := b.out.Dist
		if joinedAt >= 0 && r == joinedAt {
			out := b.ctx.Broadcast(b.ctx.Uints(bfsWave, uint64(b.out.Dist)))
			if b.out.ParentPort >= 0 {
				out[b.out.ParentPort] = nil
			}
			return out, false
		}
		return nil, false
	case r == T+1: // Phase B: parent announcement
		if b.out.Dist < 0 {
			return nil, true // unreached; done
		}
		out := b.ctx.Broadcast(nil)
		if b.out.ParentPort >= 0 {
			out[b.out.ParentPort] = b.ctx.Uints(bfsParent)
		}
		return out, false
	case r == T+2: // learn children
		for port, m := range inbox {
			if m == nil {
				continue
			}
			if k, _, ok := sim.ReadUint(m); ok && k == bfsParent {
				b.children = append(b.children, port)
			}
		}
		fallthrough
	default: // Phase C: convergecast
		for port, m := range inbox {
			if m == nil {
				continue
			}
			var vals [2]uint64
			if sim.DecodeUintsInto(m, vals[:]) && vals[0] == bfsCount {
				if b.reported[port] < 0 {
					b.nReported++
				}
				b.reported[port] = int(vals[1])
			}
		}
		if b.nReported == len(b.children) && !b.sentUp {
			size := 1
			for _, c := range b.children {
				size += b.reported[c]
			}
			b.out.SubtreeSize = size
			b.sentUp = true
			if b.out.ParentPort < 0 {
				return nil, true // root: done with the global count
			}
			out := b.ctx.Broadcast(nil)
			out[b.out.ParentPort] = b.ctx.Uints(bfsCount, uint64(size))
			return out, false
		}
		if b.sentUp {
			return nil, true
		}
		return nil, false
	}
}

func (b *bfsTree) Output() BFSOutput { return b.out }

// BFSTree runs the three-phase BFS-tree + convergecast protocol from the
// node with the given identifier and returns the per-node outputs. The
// root's SubtreeSize equals the size of its connected component — a fact
// the tests assert.
func BFSTree(g *graph.Graph, rootID uint64, ids []uint64) ([]BFSOutput, *sim.Result[BFSOutput], error) {
	res, err := sim.Execute(sim.Config{
		Graph:          g,
		IDs:            ids,
		MaxMessageBits: sim.CongestBits(g.N()),
	}, func(int) sim.NodeProgram[BFSOutput] {
		return &bfsTree{RootID: rootID}
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Outputs, res, nil
}

// FloodMinBit floods the global AND of the given input bits for the given
// number of rounds (0 = n, always sufficient) and reports each node's
// resulting bit. Every program declares a 1-bit payload width, so the
// sequential and parallel engines execute the flood over packed bit planes.
func FloodMinBit(g *graph.Graph, bits []uint64, rounds int) ([]uint64, *sim.Result[uint64], error) {
	res, err := sim.Execute(sim.Config{
		Graph:          g,
		MaxMessageBits: sim.CongestBits(g.N()),
	}, func(v int) sim.NodeProgram[uint64] {
		return NewFloodMinBit(bits[v], rounds)
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Outputs, res, nil
}

// ElectLeader floods minimum identifiers for the given number of rounds
// (0 = n, always sufficient) and reports each node's elected leader.
func ElectLeader(g *graph.Graph, ids []uint64, rounds int) ([]uint64, *sim.Result[uint64], error) {
	res, err := sim.Execute(sim.Config{
		Graph:          g,
		IDs:            ids,
		MaxMessageBits: sim.CongestBits(g.N()),
	}, func(int) sim.NodeProgram[uint64] {
		return NewFloodMin(rounds)
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Outputs, res, nil
}

// Validate checks a BFS forest against the graph: parent distances
// decrease by one along parent pointers and distances match true BFS.
func Validate(g *graph.Graph, root int, outs []BFSOutput) error {
	want := g.BFS(root)
	for v, o := range outs {
		if want[v] != o.Dist {
			return fmt.Errorf("protocols: node %d dist %d, want %d", v, o.Dist, want[v])
		}
		if v == root && o.ParentPort != -1 {
			return fmt.Errorf("protocols: root has a parent")
		}
		if o.Dist > 0 {
			if o.ParentPort < 0 || o.ParentPort >= g.Degree(v) {
				return fmt.Errorf("protocols: node %d has bad parent port %d", v, o.ParentPort)
			}
			parent := g.Neighbors(v)[o.ParentPort]
			if outs[parent].Dist != o.Dist-1 {
				return fmt.Errorf("protocols: node %d parent %d at dist %d, want %d",
					v, parent, outs[parent].Dist, o.Dist-1)
			}
		}
	}
	return nil
}
