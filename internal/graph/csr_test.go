package graph

// Invariant tests for the flat compressed-sparse-row core: every generator
// must produce a graph whose offsets, neighbor rows and reverse-port table
// satisfy the CSR contract, ports must round-trip through the precomputed
// reverse table, and the Builder must agree with FromEdges no matter how
// edges are ordered or duplicated.

import (
	"testing"

	"randlocal/internal/prng"
)

// checkCSR asserts the low-level CSR contract directly on the flat arrays,
// beyond what Validate (which is itself under test here) reports.
func checkCSR(t *testing.T, g *Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	off, adj, rev := g.CSR()
	n := g.N()
	if n > 0 {
		if off[0] != 0 || off[n] != int64(len(adj)) {
			t.Fatalf("offsets span [%d, %d] for %d half-edges", off[0], off[n], len(adj))
		}
	}
	if len(rev) != len(adj) {
		t.Fatalf("rev has %d entries, adj has %d", len(rev), len(adj))
	}
	if len(adj) != 2*g.M() {
		t.Fatalf("%d half-edges for M=%d", len(adj), g.M())
	}
	for v := 0; v < n; v++ {
		row := g.Neighbors(v)
		if len(row) != g.Degree(v) {
			t.Fatalf("node %d: row length %d, degree %d", v, len(row), g.Degree(v))
		}
		for p, w := range row {
			i := off[v] + int64(p)
			j := rev[i]
			if adj[j] != int32(v) {
				t.Fatalf("half-edge %d: reverse %d points at %d, want %d", i, j, adj[j], v)
			}
			if rev[j] != int32(i) {
				t.Fatalf("half-edge %d: reverse of reverse is %d", i, rev[j])
			}
			// Port round-trips: through the reverse table and through the
			// binary-search PortOf.
			q := g.ReversePort(v, p)
			if got := g.Neighbors(int(w))[q]; got != int32(v) {
				t.Fatalf("ReversePort(%d,%d)=%d lands on %d", v, p, q, got)
			}
			if g.PortOf(int(w), v) != q {
				t.Fatalf("PortOf(%d,%d)=%d, ReversePort says %d", w, v, g.PortOf(int(w), v), q)
			}
			if g.PortOf(v, int(w)) != p {
				t.Fatalf("PortOf(%d,%d)=%d, want %d", v, w, g.PortOf(v, int(w)), p)
			}
		}
	}
}

func TestCSRInvariantsAcrossGenerators(t *testing.T) {
	rng := prng.New(42)
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"empty", NewBuilder(0).Graph()},
		{"singleton", NewBuilder(1).Graph()},
		{"ring", Ring(17)},
		{"path", Path(9)},
		{"complete", Complete(11)},
		{"star", Star(12)},
		{"grid", Grid(5, 7)},
		{"grid2d-diag", Grid2D(5, 7, true)},
		{"torus", Torus(4, 6)},
		{"gnp", GNP(80, 0.1, rng)},
		{"tree", RandomTree(60, rng)},
		{"regular", RandomRegular(30, 4, rng)},
		{"powerlaw", PowerLaw(70, 3, rng)},
		{"hypercube", Hypercube(5)},
		{"cliques", RingOfCliques(5, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) { checkCSR(t, tc.g) })
	}
}

// TestFromEdgesBuilderEquivalence feeds the same random edge set to
// FromEdges and to a Builder in scrambled order with duplicates and
// self-loops sprinkled in; the resulting graphs must be identical.
func TestFromEdgesBuilderEquivalence(t *testing.T) {
	rng := prng.New(7)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(40)
		want := map[[2]int]bool{}
		var edges [][2]int
		for k := 0; k < rng.Intn(3*n); k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			edges = append(edges, [2]int{u, v})
			if u != v {
				if u > v {
					u, v = v, u
				}
				want[[2]int{u, v}] = true
			}
		}
		ref := FromEdges(n, edges)

		b := NewBuilder(n)
		rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		for _, e := range edges {
			b.AddEdge(e[1], e[0]) // reversed endpoints: {u,v} == {v,u}
			if rng.Intn(2) == 0 {
				b.AddEdge(e[0], e[1]) // duplicate
			}
		}
		got := b.Graph()

		if !ref.Equal(got) || !got.Equal(ref) {
			t.Fatalf("trial %d: builder and FromEdges disagree: %v vs %v", trial, ref, got)
		}
		if ref.M() != len(want) {
			t.Fatalf("trial %d: M=%d, want %d", trial, ref.M(), len(want))
		}
		checkCSR(t, got)
		for e := range want {
			if !got.HasEdge(e[0], e[1]) || !got.HasEdge(e[1], e[0]) {
				t.Fatalf("trial %d: missing edge %v", trial, e)
			}
		}
	}
}

// TestBuilderReuse checks that finalizing a builder, adding more edges, and
// finalizing again yields two independent immutable graphs.
func TestBuilderReuse(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g1 := b.Graph()
	b.AddEdge(2, 3)
	g2 := b.Graph()
	if g1.M() != 1 || g2.M() != 2 {
		t.Fatalf("M: %d then %d, want 1 then 2", g1.M(), g2.M())
	}
	if g1.HasEdge(2, 3) {
		t.Error("first graph mutated by later AddEdge")
	}
	checkCSR(t, g1)
	checkCSR(t, g2)
}

func TestRingValidation(t *testing.T) {
	for _, tc := range []struct{ n, m, maxDeg int }{
		{0, 0, 0}, {1, 0, 0}, {2, 1, 1}, {3, 3, 2}, {10, 10, 2},
	} {
		g := Ring(tc.n)
		if g.N() != tc.n || g.M() != tc.m || g.MaxDegree() != tc.maxDeg {
			t.Errorf("Ring(%d): n=%d m=%d Δ=%d, want n=%d m=%d Δ=%d",
				tc.n, g.N(), g.M(), g.MaxDegree(), tc.n, tc.m, tc.maxDeg)
		}
		checkCSR(t, g)
		if tc.n >= 3 {
			if !IsConnected(g) || g.MinDegree() != 2 {
				t.Errorf("Ring(%d) not 2-regular connected", tc.n)
			}
			if Diameter(g) != tc.n/2 {
				t.Errorf("Ring(%d) diameter %d, want %d", tc.n, Diameter(g), tc.n/2)
			}
		}
	}
}

func TestGrid2DValidation(t *testing.T) {
	const rows, cols = 6, 9
	plain := Grid2D(rows, cols, false)
	if !plain.Equal(Grid(rows, cols)) {
		t.Error("Grid2D without diagonals differs from Grid")
	}
	checkCSR(t, plain)

	king := Grid2D(rows, cols, true)
	checkCSR(t, king)
	wantM := rows*(cols-1) + (rows-1)*cols + 2*(rows-1)*(cols-1)
	if king.N() != rows*cols || king.M() != wantM {
		t.Errorf("king graph: n=%d m=%d, want n=%d m=%d", king.N(), king.M(), rows*cols, wantM)
	}
	if king.MaxDegree() != 8 || king.MinDegree() != 3 {
		t.Errorf("king graph degrees: Δ=%d δ=%d, want 8/3", king.MaxDegree(), king.MinDegree())
	}
	if !IsConnected(king) {
		t.Error("king graph disconnected")
	}
	// An interior node must see all 8 surrounding cells.
	v := 2*cols + 3
	for _, d := range []int{-cols - 1, -cols, -cols + 1, -1, 1, cols - 1, cols, cols + 1} {
		if !king.HasEdge(v, v+d) {
			t.Errorf("interior node %d missing neighbor %d", v, v+d)
		}
	}
	// Degenerate shapes.
	checkCSR(t, Grid2D(1, 8, true))
	checkCSR(t, Grid2D(8, 1, true))
	checkCSR(t, Grid2D(0, 5, true))
	if Grid2D(1, 8, true).M() != 7 {
		t.Error("1×8 king graph must be a path")
	}
}
