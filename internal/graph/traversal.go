package graph

// Unreachable is the distance value reported for nodes not reachable from
// the BFS sources.
const Unreachable = -1

// BFS returns the array of hop distances from src to every node, with
// Unreachable for nodes in other components.
func (g *Graph) BFS(src int) []int {
	return g.MultiBFS([]int{src})
}

// MultiBFS returns hop distances from the nearest of the given sources.
// Duplicate sources are allowed; an empty source set yields all-Unreachable.
func (g *Graph) MultiBFS(srcs []int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int32, 0, len(srcs))
	for _, s := range srcs {
		if s < 0 || s >= g.N() {
			panic("graph: BFS source out of range")
		}
		if dist[s] == Unreachable {
			dist[s] = 0
			queue = append(queue, int32(s))
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.adj[g.off[v]:g.off[v+1]] {
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// MultiBFSOwner runs a multi-source BFS and additionally reports, for every
// reached node, which source claimed it (the nearest source, ties broken by
// BFS queue order, i.e. by order in srcs). This is exactly the "each node
// joins the cluster of the nearest center" primitive used by Lemma 3.2 and
// the ruling-set clusterings; owner is Unreachable for unreached nodes.
func (g *Graph) MultiBFSOwner(srcs []int) (dist, owner []int) {
	dist = make([]int, g.N())
	owner = make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
		owner[i] = Unreachable
	}
	queue := make([]int32, 0, len(srcs))
	for _, s := range srcs {
		if dist[s] == Unreachable {
			dist[s] = 0
			owner[s] = s
			queue = append(queue, int32(s))
		}
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.adj[g.off[v]:g.off[v+1]] {
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				owner[w] = owner[v]
				queue = append(queue, w)
			}
		}
	}
	return dist, owner
}

// Components labels connected components. It returns comp with
// comp[v] ∈ [0, k) and the number of components k. Labels are assigned in
// order of smallest contained node index.
func Components(g *Graph) (comp []int, k int) {
	comp = make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int32, 0, g.N())
	for v := 0; v < g.N(); v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = k
		queue = append(queue[:0], int32(v))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, w := range g.adj[g.off[u]:g.off[u+1]] {
				if comp[w] == -1 {
					comp[w] = k
					queue = append(queue, w)
				}
			}
		}
		k++
	}
	return comp, k
}

// IsConnected reports whether the graph is connected. The empty graph and
// the single node are connected.
func IsConnected(g *Graph) bool {
	if g.N() == 0 {
		return true
	}
	_, k := Components(g)
	return k == 1
}

// Eccentricity returns the maximum distance from v to any node reachable
// from it.
func (g *Graph) Eccentricity(v int) int {
	dist := g.BFS(v)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter of the graph: the maximum eccentricity
// over all nodes, computed per connected component (unreachable pairs are
// ignored). It costs one BFS per node, O(n(n+m)); fine for the experiment
// sizes in this repository. The empty graph has diameter 0.
func Diameter(g *Graph) int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		if e := g.Eccentricity(v); e > diam {
			diam = e
		}
	}
	return diam
}

// BFSWithin returns the set of nodes at distance <= radius from src, in BFS
// order, together with their distances.
func (g *Graph) BFSWithin(src, radius int) (nodes, dist []int) {
	d := make(map[int]int, 16)
	d[src] = 0
	nodes = append(nodes, src)
	dist = append(dist, 0)
	for head := 0; head < len(nodes); head++ {
		v := nodes[head]
		if d[v] == radius {
			continue
		}
		for _, w := range g.adj[g.off[v]:g.off[v+1]] {
			if _, ok := d[int(w)]; !ok {
				d[int(w)] = d[v] + 1
				nodes = append(nodes, int(w))
				dist = append(dist, d[int(w)])
			}
		}
	}
	return nodes, dist
}

// Dist returns the hop distance between u and v (Unreachable if v is in a
// different component). It runs a BFS from u and terminates early.
func (g *Graph) Dist(u, v int) int {
	if u == v {
		return 0
	}
	dist := make(map[int]int, 16)
	dist[u] = 0
	queue := []int{u}
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		for _, w := range g.adj[g.off[x]:g.off[x+1]] {
			if _, ok := dist[int(w)]; !ok {
				dist[int(w)] = dist[x] + 1
				if int(w) == v {
					return dist[int(w)]
				}
				queue = append(queue, int(w))
			}
		}
	}
	return Unreachable
}
