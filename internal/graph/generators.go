package graph

import (
	"fmt"
	"math"

	"randlocal/internal/prng"
)

// GNP returns an Erdős–Rényi random graph G(n, p): every unordered pair is an
// edge independently with probability p. It uses geometric skipping, so the
// expected running time is O(n + m) rather than O(n²) for sparse p.
func GNP(n int, p float64, rng *prng.SplitMix64) *Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: GNP probability %v out of [0,1]", p))
	}
	b := NewBuilder(n)
	if p == 0 || n < 2 {
		return b.Graph()
	}
	if p == 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		return b.Graph()
	}
	// Enumerate pairs (u,v), u<v, as a single index and skip geometrically.
	// skip ~ Geometric(p): number of non-edges before the next edge.
	u, v := 0, 0
	for {
		// Draw skip = floor(log(U)/log(1-p)).
		uniform := rng.Float64()
		for uniform == 0 {
			uniform = rng.Float64()
		}
		skip := int(math.Log(uniform)/math.Log(1-p)) + 1
		// Advance (u,v) by skip positions in row-major pair order.
		v += skip
		for v >= n {
			overflow := v - n
			u++
			v = u + 1 + overflow
			if u >= n-1 {
				return b.Graph()
			}
		}
		b.AddEdge(u, v)
	}
}

// GNPConnected returns a connected G(n, p) sample: it draws G(n, p) and then
// links consecutive components with one extra edge each, chosen between
// random representatives. The result is connected while remaining
// statistically close to G(n, p) for p above the connectivity threshold.
func GNPConnected(n int, p float64, rng *prng.SplitMix64) *Graph {
	g := GNP(n, p, rng)
	comp, k := Components(g)
	if k <= 1 {
		return g
	}
	reps := make([][]int, k)
	for v := 0; v < n; v++ {
		reps[comp[v]] = append(reps[comp[v]], v)
	}
	b := NewBuilder(n)
	g.Edges(func(u, v int) { b.AddEdge(u, v) })
	for c := 1; c < k; c++ {
		u := reps[c-1][rng.Intn(len(reps[c-1]))]
		v := reps[c][rng.Intn(len(reps[c]))]
		b.AddEdge(u, v)
	}
	return b.Graph()
}

// Ring returns the n-cycle C_n (for n >= 3), the single edge for n = 2, and
// an edgeless graph for n < 2.
func Ring(n int) *Graph {
	b := NewBuilder(n)
	if n == 2 {
		b.AddEdge(0, 1)
		return b.Graph()
	}
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	if n >= 3 {
		b.AddEdge(n-1, 0)
	}
	return b.Graph()
}

// Path returns the n-node path P_n.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Graph()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Graph()
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Graph()
}

// Grid returns the rows×cols grid graph. Node (r, c) has index r*cols+c.
func Grid(rows, cols int) *Graph {
	return Grid2D(rows, cols, false)
}

// Grid2D returns the rows×cols grid with 4-connected adjacency or — when
// diagonals is true — the 8-connected "king graph" variant, the classic
// bounded-degree planar-ish topologies for experiments where Δ must stay
// constant as n grows. Node (r, c) has index r*cols+c.
// Grid2D(rows, cols, false) equals Grid(rows, cols).
func Grid2D(rows, cols int, diagonals bool) *Graph {
	if rows < 0 || cols < 0 {
		panic("graph: Grid2D needs rows, cols >= 0")
	}
	b := NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				b.AddEdge(v, v+1)
			}
			if r+1 < rows {
				b.AddEdge(v, v+cols)
				if diagonals {
					if c+1 < cols {
						b.AddEdge(v, v+cols+1)
					}
					if c > 0 {
						b.AddEdge(v, v+cols-1)
					}
				}
			}
		}
	}
	return b.Graph()
}

// Torus returns the rows×cols torus (grid with wraparound), the
// constant-degree workload used for sinkless-orientation-style experiments.
func Torus(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			b.AddEdge(v, r*cols+(c+1)%cols)
			b.AddEdge(v, ((r+1)%rows)*cols+c)
		}
	}
	return b.Graph()
}

// RandomTree returns a uniformly random labelled tree on n nodes, generated
// from a random Prüfer sequence.
func RandomTree(n int, rng *prng.SplitMix64) *Graph {
	if n <= 1 {
		return NewBuilder(n).Graph()
	}
	if n == 2 {
		return FromEdges(2, [][2]int{{0, 1}})
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = rng.Intn(n)
	}
	return TreeFromPrufer(n, prufer)
}

// TreeFromPrufer decodes a Prüfer sequence of length n-2 into the unique
// labelled tree on n nodes it encodes. It panics on malformed input.
func TreeFromPrufer(n int, prufer []int) *Graph {
	if len(prufer) != n-2 {
		panic(fmt.Sprintf("graph: Prüfer sequence length %d for n=%d", len(prufer), n))
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, v := range prufer {
		if v < 0 || v >= n {
			panic(fmt.Sprintf("graph: Prüfer entry %d out of range for n=%d", v, n))
		}
		deg[v]++
	}
	b := NewBuilder(n)
	// ptr/leaf scan gives O(n) decoding.
	ptr := 0
	for deg[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		b.AddEdge(leaf, v)
		deg[v]--
		if deg[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for deg[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	b.AddEdge(leaf, n-1)
	return b.Graph()
}

// BalancedTree returns the complete b-ary tree with the given depth
// (depth 0 is a single root).
func BalancedTree(branching, depth int) *Graph {
	if branching < 1 {
		panic("graph: BalancedTree branching must be >= 1")
	}
	// Count nodes: 1 + b + b^2 + ... + b^depth.
	n := 1
	level := 1
	for d := 0; d < depth; d++ {
		level *= branching
		n += level
	}
	b := NewBuilder(n)
	next := 1
	for parent := 0; parent < n && next < n; parent++ {
		for c := 0; c < branching && next < n; c++ {
			b.AddEdge(parent, next)
			next++
		}
	}
	return b.Graph()
}

// RingOfCliques returns k cliques of size s arranged on a ring, consecutive
// cliques joined by a single edge. This family has both dense local
// structure (cliques) and large diameter (the ring), which makes it the
// canonical stress test for the low-randomness decomposition of Theorem 3.1:
// bit-holders can be placed one per clique, h hops apart.
func RingOfCliques(k, s int) *Graph {
	if k < 1 || s < 1 {
		panic("graph: RingOfCliques needs k, s >= 1")
	}
	b := NewBuilder(k * s)
	for c := 0; c < k; c++ {
		base := c * s
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				b.AddEdge(base+u, base+v)
			}
		}
	}
	for c := 0; c < k; c++ {
		next := (c + 1) % k
		if k == 1 || (k == 2 && c == 1) {
			break
		}
		// Link last node of clique c to first node of the next clique.
		b.AddEdge(c*s+s-1, next*s)
	}
	return b.Graph()
}

// Caterpillar returns a path of length spine with legs pendant nodes attached
// to every spine node, a tree family with many degree-1 nodes.
func Caterpillar(spine, legs int) *Graph {
	n := spine + spine*legs
	b := NewBuilder(n)
	for v := 0; v+1 < spine; v++ {
		b.AddEdge(v, v+1)
	}
	next := spine
	for v := 0; v < spine; v++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(v, next)
			next++
		}
	}
	return b.Graph()
}

// RandomRegular returns a random d-regular graph on n nodes via the
// configuration model with edge-swap repair: a random stub pairing is
// drawn, and any self-loop or parallel edge is removed by switching it with
// a uniformly chosen good pair (the standard repair that keeps the
// distribution close to uniform and, unlike whole-sample rejection, stays
// fast for all constant d). It requires n·d even and d < n.
func RandomRegular(n, d int, rng *prng.SplitMix64) *Graph {
	if d >= n || n*d%2 != 0 {
		panic(fmt.Sprintf("graph: RandomRegular(%d, %d) infeasible", n, d))
	}
	if d == 0 {
		return NewBuilder(n).Graph()
	}
	stubs := make([]int, n*d)
	for i := range stubs {
		stubs[i] = i / d
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	// pairs[p] = {stubs[2p], stubs[2p+1]}.
	numPairs := len(stubs) / 2
	u := func(p int) int { return stubs[2*p] }
	v := func(p int) int { return stubs[2*p+1] }
	key := func(a, b int) [2]int { return [2]int{min(a, b), max(a, b)} }
	count := make(map[[2]int]int, numPairs)
	for p := 0; p < numPairs; p++ {
		count[key(u(p), v(p))]++
	}
	bad := func(p int) bool {
		return u(p) == v(p) || count[key(u(p), v(p))] > 1
	}
	for guard := 0; ; guard++ {
		if guard > 1000*numPairs {
			panic("graph: RandomRegular repair did not converge")
		}
		p := -1
		for q := 0; q < numPairs; q++ {
			if bad(q) {
				p = q
				break
			}
		}
		if p < 0 {
			break
		}
		// Swap one endpoint of the bad pair with a random pair's endpoint.
		q := rng.Intn(numPairs)
		if q == p {
			continue
		}
		count[key(u(p), v(p))]--
		count[key(u(q), v(q))]--
		stubs[2*p+1], stubs[2*q+1] = stubs[2*q+1], stubs[2*p+1]
		count[key(u(p), v(p))]++
		count[key(u(q), v(q))]++
		if bad(p) || bad(q) {
			// Revert if the switch made things no better for q while p
			// stays bad — just try again with a fresh q next iteration.
			continue
		}
	}
	b := NewBuilder(n)
	for p := 0; p < numPairs; p++ {
		b.AddEdge(u(p), v(p))
	}
	return b.Graph()
}

// Hypercube returns the dim-dimensional hypercube on 2^dim nodes.
func Hypercube(dim int) *Graph {
	n := 1 << dim
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < dim; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Graph()
}

// PowerLaw returns a Barabási–Albert preferential-attachment graph: nodes
// arrive one at a time and attach m edges to existing nodes chosen with
// probability proportional to their current degree (sampled as a uniform
// position in the running edge-endpoint list). The degree distribution
// follows a power law — the skewed-hub regime the GNP and regular families
// miss — and the graph is connected for m >= 1. It panics if m < 1.
func PowerLaw(n, m int, rng *prng.SplitMix64) *Graph {
	if m < 1 {
		panic(fmt.Sprintf("graph: PowerLaw attachment count %d < 1", m))
	}
	b := NewBuilder(n)
	if n <= m+1 {
		// Too few nodes for m attachments each: fall back to a clique.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.AddEdge(u, v)
			}
		}
		return b.Graph()
	}
	// Seed with a star on m+1 nodes, then attach each new node to m
	// distinct degree-weighted targets.
	targets := make([]int, 0, 2*m*n)
	for v := 1; v <= m; v++ {
		b.AddEdge(0, v)
		targets = append(targets, 0, v)
	}
	// picked is an order-preserving set: map iteration would randomize the
	// targets list and break same-seed determinism.
	picked := make([]int, 0, m)
	for v := m + 1; v < n; v++ {
		picked = picked[:0]
		for len(picked) < m {
			t := targets[rng.Intn(len(targets))]
			dup := false
			for _, w := range picked {
				if w == t {
					dup = true
					break
				}
			}
			if !dup {
				picked = append(picked, t)
			}
		}
		for _, w := range picked {
			b.AddEdge(v, w)
			targets = append(targets, v, w)
		}
	}
	return b.Graph()
}

// Disjoint returns the disjoint union of the given graphs, relabelling the
// nodes of each successive graph after those of the previous ones. It is
// used by the derandomization experiments that embed a graph inside a larger
// "virtual" network (the lying-about-n technique of Theorem 4.3).
func Disjoint(gs ...*Graph) *Graph {
	n := 0
	for _, g := range gs {
		n += g.N()
	}
	b := NewBuilder(n)
	base := 0
	for _, g := range gs {
		off := base
		g.Edges(func(u, v int) { b.AddEdge(off+u, off+v) })
		base += g.N()
	}
	return b.Graph()
}
