package graph

import (
	"testing"

	"randlocal/internal/prng"
)

// TestGNPConnectedStreamMatches is the golden guarantee behind csrgen's gnp
// streaming: the emitter must reproduce GNPConnected exactly — same rng draw
// order, same linking representatives — for every regime of p.
func TestGNPConnectedStreamMatches(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17, 100, 257} {
		for _, p := range []float64{0, 0.01, 0.5, 1} {
			for seed := uint64(1); seed <= 5; seed++ {
				want := GNPConnected(n, p, prng.New(seed))
				b := NewBuilder(n)
				GNPConnectedStream(n, p, prng.New(seed), b.AddEdge)
				got := b.Graph()
				if !want.Equal(got) {
					t.Fatalf("n=%d p=%v seed=%d: streamed graph differs (want %v, got %v)",
						n, p, seed, want, got)
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("n=%d p=%v seed=%d: %v", n, p, seed, err)
				}
			}
		}
	}
	// The sparse regime the experiments actually use.
	for seed := uint64(1); seed <= 5; seed++ {
		n := 1 << 12
		p := 4.0 / float64(n)
		want := GNPConnected(n, p, prng.New(seed))
		b := NewBuilder(n)
		GNPConnectedStream(n, p, prng.New(seed), b.AddEdge)
		if !want.Equal(b.Graph()) {
			t.Fatalf("n=%d p=4/n seed=%d: streamed graph differs", n, seed)
		}
	}
}

// TestBuilderHalfEdgeOverflowGuard exercises the int32 guard through a
// lowered cap: without it, a ≥ 2^31-half-edge graph would wrap the int32
// conversions and corrupt the CSR tables silently.
func TestBuilderHalfEdgeOverflowGuard(t *testing.T) {
	old := maxHalfEdges
	maxHalfEdges = 6
	defer func() { maxHalfEdges = old }()

	b := NewBuilder(10)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3) // exactly at the cap: fine
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AddEdge past the half-edge cap did not panic")
			}
		}()
		b.AddEdge(3, 4)
	}()
	// The builder is still usable at the cap, and finalizes cleanly.
	if g := b.Graph(); g.M() != 3 {
		t.Fatalf("M() = %d after the guard fired, want 3", g.M())
	}

	// fromHalfEdges guards too, for callers that bypass AddEdge.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("fromHalfEdges past the cap did not panic")
			}
		}()
		fromHalfEdges(10, make([]uint64, 8))
	}()
}
