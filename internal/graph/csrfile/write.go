package csrfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
)

// Write stores an in-RAM CSR triple as a graph file at path: one sequential
// pass that streams the arrays through the checksum, then backfills the
// header. The slices must satisfy the Graph invariants (off ascending from 0
// to len(adj), len(rev) == len(adj)); Write checks only the shape — it is
// the persistence half of graph.WriteCSRFile, not a validator.
func Write(path string, off []int64, adj, rev []int32) error {
	if len(off) == 0 {
		off = []int64{0}
	}
	n := len(off) - 1
	if int64(n) > math.MaxInt32 {
		return fmt.Errorf("csrfile: node count %d exceeds the int32 CSR index range", n)
	}
	if len(adj) != len(rev) {
		return fmt.Errorf("csrfile: adj has %d entries, rev has %d", len(adj), len(rev))
	}
	if int64(len(adj)) > maxHalfEdges {
		return fmt.Errorf("csrfile: %d half-edges exceed the int32 CSR index limit %d", len(adj), maxHalfEdges)
	}
	if off[0] != 0 || off[n] != int64(len(adj)) {
		return fmt.Errorf("csrfile: offsets [%d, %d] do not frame the %d-entry adjacency", off[0], off[n], len(adj))
	}
	hdr := Header{Version: version, N: n, HalfEdges: int64(len(adj))}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.Write(make([]byte, headerSize)); err != nil {
		return err
	}
	crc := crc64.New(crcTable)
	w := io.MultiWriter(bw, crc)
	if err := writeInt64s(w, off); err != nil {
		return err
	}
	if err := writeInt32s(w, adj); err != nil {
		return err
	}
	if err := writeInt32s(w, rev); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	hdr.Checksum = crc.Sum64()
	var hb [headerSize]byte
	encodeHeader(hb[:], hdr)
	if _, err := f.WriteAt(hb[:], 0); err != nil {
		return err
	}
	return f.Close()
}

func writeInt64s(w io.Writer, xs []int64) error {
	var buf [1 << 13]byte
	i := 0
	for i < len(xs) {
		k := 0
		for i < len(xs) && k+8 <= len(buf) {
			binary.LittleEndian.PutUint64(buf[k:], uint64(xs[i]))
			k += 8
			i++
		}
		if _, err := w.Write(buf[:k]); err != nil {
			return err
		}
	}
	return nil
}

func writeInt32s(w io.Writer, xs []int32) error {
	var buf [1 << 13]byte
	i := 0
	for i < len(xs) {
		k := 0
		for i < len(xs) && k+4 <= len(buf) {
			binary.LittleEndian.PutUint32(buf[k:], uint32(xs[i]))
			k += 4
			i++
		}
		if _, err := w.Write(buf[:k]); err != nil {
			return err
		}
	}
	return nil
}
