//go:build !unix || mmap_unsupported

package csrfile

import "os"

// mmapSupported gates tests and callers that rely on the O(n)-heap builder
// passes and the zero-copy loader. This fallback build keeps the format and
// every API working on hosts without a usable mmap, but trades the memory
// guarantee away: files are read into (8-byte-aligned) RAM buffers, so both
// the builder's scatter passes and the loader are O(file) in heap.
const mmapSupported = false

// mapRO reads size bytes of f into an aligned buffer.
func mapRO(f *os.File, size int64) (data []byte, release func([]byte) error, err error) {
	b := alignedBytes(size)
	if size > 0 {
		if _, err := f.ReadAt(b, 0); err != nil {
			return nil, nil, err
		}
	}
	return b, func([]byte) error { return nil }, nil
}

// mapRW reads size bytes of f into an aligned buffer; the release func
// writes the buffer back, which is when the "mapped" stores reach the file.
func mapRW(f *os.File, size int64) (data []byte, release func([]byte) error, err error) {
	b := alignedBytes(size)
	if size > 0 {
		if _, err := f.ReadAt(b, 0); err != nil {
			return nil, nil, err
		}
	}
	release = func(buf []byte) error {
		if len(buf) == 0 {
			return nil
		}
		_, err := f.WriteAt(buf, 0)
		return err
	}
	return b, release, nil
}
