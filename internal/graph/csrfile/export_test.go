package csrfile

// Test-only access to build internals.

// MmapSupported reports whether this build maps files (true on unix builds
// without the mmap_unsupported tag); the O(n)-heap assertion only holds
// there.
const MmapSupported = mmapSupported

// SetMaxHalfEdges lowers the int32 overflow guard so tests can trip it
// without a 16 GiB edge stream. The returned func restores the real limit.
func SetMaxHalfEdges(v int64) (restore func()) {
	old := maxHalfEdges
	maxHalfEdges = v
	return func() { maxHalfEdges = old }
}

// HeaderSize is the fixed header length, for corruption tests that poke at
// specific offsets.
const HeaderSize = headerSize
