//go:build unix && !mmap_unsupported

package csrfile

import (
	"os"
	"syscall"
)

// mmapSupported gates tests and callers that rely on the O(n)-heap builder
// passes and the zero-copy loader, both of which need a real file mapping.
const mmapSupported = true

// mapRO maps size bytes of f read-only. The returned release func must be
// called exactly once when the caller is done with the bytes; after it
// returns the slice is invalid.
func mapRO(f *os.File, size int64) (data []byte, release func([]byte) error, err error) {
	if size == 0 {
		return nil, releaseNothing, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, &os.PathError{Op: "mmap", Path: f.Name(), Err: err}
	}
	return b, syscall.Munmap, nil
}

// mapRW maps size bytes of f read-write and shared: stores land in the page
// cache, so the release func only has to unmap — the builder's scatter
// passes write through the mapping instead of seeking.
func mapRW(f *os.File, size int64) (data []byte, release func([]byte) error, err error) {
	if size == 0 {
		return nil, releaseNothing, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, &os.PathError{Op: "mmap", Path: f.Name(), Err: err}
	}
	return b, syscall.Munmap, nil
}

func releaseNothing([]byte) error { return nil }
