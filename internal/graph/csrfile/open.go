package csrfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"
)

// Mapping is an opened CSR graph file: the header plus the three CSR arrays.
// On little-endian hosts with mmap the slices alias the read-only file
// mapping directly — zero copies, and any accidental store through them
// faults instead of silently corrupting the graph. The arrays stay valid
// until Close.
type Mapping struct {
	Header Header
	Off    []int64
	Adj    []int32
	Rev    []int32

	data    []byte
	release func([]byte) error
	f       *os.File
}

// Close releases the mapping and the underlying file. The CSR slices must
// not be used afterwards.
func (m *Mapping) Close() error {
	var err error
	if m.data != nil && m.release != nil {
		err = m.release(m.data)
		m.data, m.release = nil, nil
	}
	m.Off, m.Adj, m.Rev = nil, nil, nil
	if m.f != nil {
		if cerr := m.f.Close(); err == nil {
			err = cerr
		}
		m.f = nil
	}
	return err
}

// ReadHeader reads and sanity-checks a graph file's header (including the
// exact file size the header implies) without mapping the arrays — the cheap
// pre-validation servers run before accepting a file-backed request.
func ReadHeader(path string) (Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, err
	}
	defer f.Close()
	return readHeader(f, path)
}

func readHeader(f *os.File, path string) (Header, error) {
	var buf [headerSize]byte
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, headerSize), buf[:]); err != nil {
		return Header{}, fmt.Errorf("%s: csrfile: reading header: %w", path, err)
	}
	hdr, err := decodeHeader(buf[:])
	if err != nil {
		return Header{}, fmt.Errorf("%s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return Header{}, err
	}
	if st.Size() != hdr.FileSize() {
		return Header{}, fmt.Errorf("%s: csrfile: file is %d bytes, header implies %d (truncated or corrupt)",
			path, st.Size(), hdr.FileSize())
	}
	return hdr, nil
}

// Open maps a CSR graph file. The header and file size are checked; the
// array bytes are not (use Verify for the full checksum pass — running it on
// every Open would touch the whole file and defeat the lazy mapping).
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr, err := readHeader(f, path)
	if err != nil {
		f.Close()
		return nil, err
	}
	data, release, err := mapRO(f, hdr.FileSize())
	if err != nil {
		f.Close()
		return nil, err
	}
	m := &Mapping{Header: hdr, f: f}
	if nativeLittleEndian {
		m.data, m.release = data, release
		m.Off = aliasInt64(data[hdr.offStart():hdr.adjStart()])
		m.Adj = aliasInt32(data[hdr.adjStart():hdr.revStart()])
		m.Rev = aliasInt32(data[hdr.revStart():])
		return m, nil
	}
	// Big-endian host: decode copies and drop the mapping right away.
	m.Off = make([]int64, hdr.N+1)
	m.Adj = make([]int32, hdr.HalfEdges)
	m.Rev = make([]int32, hdr.HalfEdges)
	for i := range m.Off {
		m.Off[i] = int64(binary.LittleEndian.Uint64(data[hdr.offStart()+8*int64(i):]))
	}
	for i := range m.Adj {
		m.Adj[i] = int32(binary.LittleEndian.Uint32(data[hdr.adjStart()+4*int64(i):]))
		m.Rev[i] = int32(binary.LittleEndian.Uint32(data[hdr.revStart()+4*int64(i):]))
	}
	if err := release(data); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

// Verify checks a graph file's checksum: one sequential pass over every byte
// after the header, compared against the header's CRC-64. Builders run it
// after writing; loaders skip it by design.
func Verify(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr, err := readHeader(f, path)
	if err != nil {
		return err
	}
	if _, err := f.Seek(headerSize, io.SeekStart); err != nil {
		return err
	}
	crc := crc64.New(crcTable)
	if _, err := io.Copy(crc, bufio.NewReaderSize(f, 1<<20)); err != nil {
		return fmt.Errorf("%s: csrfile: checksum pass: %w", path, err)
	}
	if sum := crc.Sum64(); sum != hdr.Checksum {
		return fmt.Errorf("%s: csrfile: checksum mismatch: file %#x, header %#x (corrupt array bytes)",
			path, sum, hdr.Checksum)
	}
	return nil
}
