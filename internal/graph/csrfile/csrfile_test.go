package csrfile_test

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/graph/csrfile"
	"randlocal/internal/prng"
)

// buildStream drives a streaming Builder with the given edges and returns
// the finalized header.
func buildStream(t *testing.T, path string, n int, edges [][2]int) csrfile.Header {
	t.Helper()
	b, err := csrfile.NewBuilder(path, n)
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	hdr, err := b.Finalize()
	if err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return hdr
}

// randomEdges draws count endpoint pairs on n nodes, duplicates and
// self-loops included — both builders must drop/dedup them identically.
func randomEdges(rng *prng.SplitMix64, n, count int) [][2]int {
	edges := make([][2]int, count)
	for i := range edges {
		edges[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	return edges
}

// TestStreamingBuilderMatchesInRAM is the core format equivalence: the
// streaming builder and the in-RAM graph.Builder must produce byte-identical
// files from the same edge multiset, in any AddEdge order.
func TestStreamingBuilderMatchesInRAM(t *testing.T) {
	dir := t.TempDir()
	rng := prng.New(7)
	for _, tc := range []struct{ n, count int }{
		{1, 0}, {2, 1}, {5, 12}, {33, 100}, {257, 2000}, {1000, 500},
	} {
		edges := randomEdges(rng, tc.n, tc.count)

		ramPath := filepath.Join(dir, "ram.csr")
		b := graph.NewBuilder(tc.n)
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		g := b.Graph()
		if err := graph.WriteCSRFile(g, ramPath); err != nil {
			t.Fatalf("n=%d WriteCSRFile: %v", tc.n, err)
		}

		streamPath := filepath.Join(dir, "stream.csr")
		hdr := buildStream(t, streamPath, tc.n, edges)
		if hdr.N != tc.n || hdr.Edges() != int64(g.M()) {
			t.Fatalf("n=%d header {n=%d m=%d}, want {n=%d m=%d}", tc.n, hdr.N, hdr.Edges(), tc.n, g.M())
		}

		// Reversed insertion order must not change a single byte.
		revPath := filepath.Join(dir, "reversed.csr")
		reversed := make([][2]int, len(edges))
		for i, e := range edges {
			reversed[len(edges)-1-i] = [2]int{e[1], e[0]}
		}
		buildStream(t, revPath, tc.n, reversed)

		want, err := os.ReadFile(ramPath)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []string{streamPath, revPath} {
			got, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("n=%d count=%d: %s differs from the in-RAM build", tc.n, tc.count, filepath.Base(p))
			}
			if err := csrfile.Verify(p); err != nil {
				t.Fatalf("Verify(%s): %v", p, err)
			}
		}

		// And the mapping must load back as the same graph.
		gf, closer, err := graph.OpenCSRFile(streamPath)
		if err != nil {
			t.Fatalf("OpenCSRFile: %v", err)
		}
		if !g.Equal(gf) {
			t.Fatalf("n=%d: file-backed graph differs from in-RAM", tc.n)
		}
		if err := gf.Validate(); err != nil {
			t.Fatalf("n=%d: file-backed Validate: %v", tc.n, err)
		}
		if err := closer.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

func TestOpenGNPRoundTrip(t *testing.T) {
	g := graph.GNPConnected(300, 0.02, prng.New(3))
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := graph.WriteCSRFile(g, path); err != nil {
		t.Fatal(err)
	}
	if err := csrfile.Verify(path); err != nil {
		t.Fatal(err)
	}
	gf, closer, err := graph.OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if !g.Equal(gf) {
		t.Fatal("file-backed graph differs")
	}
	off, adj, rev := g.CSR()
	offF, adjF, revF := gf.CSR()
	if len(offF) != len(off) || len(adjF) != len(adj) || len(revF) != len(rev) {
		t.Fatalf("CSR shapes differ: (%d,%d,%d) vs (%d,%d,%d)",
			len(offF), len(adjF), len(revF), len(off), len(adj), len(rev))
	}
	for i := range rev {
		if rev[i] != revF[i] {
			t.Fatalf("rev[%d] = %d, want %d", i, revF[i], rev[i])
		}
	}
}

func TestBuilderErrorPaths(t *testing.T) {
	dir := t.TempDir()

	t.Run("out-of-range", func(t *testing.T) {
		b, err := csrfile.NewBuilder(filepath.Join(dir, "oor.csr"), 4)
		if err != nil {
			t.Fatal(err)
		}
		b.AddEdge(0, 1)
		b.AddEdge(2, 7) // latches
		b.AddEdge(1, 2) // no-op after the error
		if _, err := b.Finalize(); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("Finalize error = %v, want out-of-range", err)
		}
	})

	t.Run("overflow-guard", func(t *testing.T) {
		defer csrfile.SetMaxHalfEdges(6)()
		b, err := csrfile.NewBuilder(filepath.Join(dir, "cap.csr"), 10)
		if err != nil {
			t.Fatal(err)
		}
		b.AddEdge(0, 1)
		b.AddEdge(1, 2)
		b.AddEdge(2, 3) // exactly at the cap: still fine
		if b.Err() != nil {
			t.Fatalf("unexpected error at the cap: %v", b.Err())
		}
		b.AddEdge(3, 4) // past it
		if _, err := b.Finalize(); err == nil || !strings.Contains(err.Error(), "half-edges") {
			t.Fatalf("Finalize error = %v, want the half-edge overflow guard", err)
		}
	})

	t.Run("double-finalize", func(t *testing.T) {
		path := filepath.Join(dir, "twice.csr")
		b, err := csrfile.NewBuilder(path, 3)
		if err != nil {
			t.Fatal(err)
		}
		b.AddEdge(0, 1)
		if _, err := b.Finalize(); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Finalize(); err == nil {
			t.Fatal("second Finalize succeeded")
		}
	})

	t.Run("negative-n", func(t *testing.T) {
		if _, err := csrfile.NewBuilder(filepath.Join(dir, "neg.csr"), -1); err == nil {
			t.Fatal("NewBuilder(-1) succeeded")
		}
	})

	t.Run("abort-removes-temp", func(t *testing.T) {
		sub := filepath.Join(dir, "abort")
		if err := os.Mkdir(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := csrfile.NewBuilder(filepath.Join(sub, "a.csr"), 3)
		if err != nil {
			t.Fatal(err)
		}
		b.AddEdge(0, 1)
		b.Abort()
		ents, err := os.ReadDir(sub)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("Abort left %d files behind", len(ents))
		}
	})
}

func TestOpenRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.csr")
	g := graph.GNPConnected(64, 0.1, prng.New(1))
	if err := graph.WriteCSRFile(g, path); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write := func(b []byte) string {
		p := filepath.Join(dir, "bad.csr")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	mutate := func(mutatefn func(b []byte)) string {
		b := append([]byte(nil), orig...)
		mutatefn(b)
		return write(b)
	}

	for _, tc := range []struct {
		name string
		path string
	}{
		{"bad-magic", mutate(func(b []byte) { b[0] ^= 0xff })},
		{"bad-version", mutate(func(b []byte) { b[8] = 99 })},
		{"nonzero-flags", mutate(func(b []byte) { b[12] = 1 })},
		{"nonzero-reserved", mutate(func(b []byte) { b[50] = 1 })},
		{"odd-half-edges", mutate(func(b []byte) { b[24]++ })},
		{"truncated-header", write(orig[:32])},
		{"truncated-arrays", write(orig[:len(orig)-4])},
		{"trailing-garbage", write(append(append([]byte(nil), orig...), 0))},
	} {
		if _, err := csrfile.Open(tc.path); err == nil {
			t.Errorf("%s: Open succeeded", tc.name)
		}
		if err := csrfile.Verify(tc.path); err == nil {
			t.Errorf("%s: Verify succeeded", tc.name)
		}
	}

	// A flipped array byte passes Open (which by design does not checksum
	// the O(m) payload) but must fail Verify.
	flipped := mutate(func(b []byte) { b[len(b)-1] ^= 0x40 })
	if m, err := csrfile.Open(flipped); err != nil {
		t.Errorf("Open with flipped array byte: %v (header checks should pass)", err)
	} else {
		m.Close()
	}
	if err := csrfile.Verify(flipped); err == nil {
		t.Error("Verify missed a flipped array byte")
	}
}

func TestWriteRejectsBadShapes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.csr")
	if err := csrfile.Write(path, []int64{0, 2}, []int32{1, 0}, []int32{1}); err == nil {
		t.Error("Write accepted mismatched adj/rev lengths")
	}
	if err := csrfile.Write(path, []int64{0, 1}, []int32{1, 0}, []int32{1, 0}); err == nil {
		t.Error("Write accepted offsets that do not frame adj")
	}
}

// TestStreamingBuildHeapON is the out-of-core guarantee: building a graph
// whose edge stream is tens of megabytes must allocate only O(n) heap (the
// counters and fixed buffers), because the edges live in temp files and the
// scatter passes run through file mappings, not Go slices.
func TestStreamingBuildHeapON(t *testing.T) {
	if !csrfile.MmapSupported {
		t.Skip("fallback build buffers files in RAM; the O(n) bound only holds with mmap")
	}
	const n = 2048 // K_n: ~2.1M edges, a ~33 MiB half-edge stream on disk
	path := filepath.Join(t.TempDir(), "kn.csr")

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b, err := csrfile.NewBuilder(path, n)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	hdr, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)

	if want := int64(n) * (n - 1); hdr.HalfEdges != want {
		t.Fatalf("half-edges = %d, want %d", hdr.HalfEdges, want)
	}
	allocated := after.TotalAlloc - before.TotalAlloc
	streamBytes := uint64(8 * n * (n - 1)) // what an in-RAM edge list alone would cost
	if limit := uint64(16 << 20); allocated > limit {
		t.Fatalf("streaming build allocated %d bytes (limit %d; the on-disk stream is %d) — edges are leaking into the heap",
			allocated, limit, streamBytes)
	}
	t.Logf("streaming K_%d build: %d half-edges, %.1f MiB on disk, %.2f MiB heap allocated",
		n, hdr.HalfEdges, float64(streamBytes)/(1<<20), float64(allocated)/(1<<20))
}
