package csrfile_test

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/graph/csrfile"
	"randlocal/internal/prng"
)

// BenchmarkStreamBuild measures the out-of-core construction path end to end:
// GNPConnectedStream feeding the counting-sort builder, through Finalize. One
// iteration is one complete build of the n=2^20 instance (~3.1M edges). The
// heapB/node metric is the allocation proof behind the O(n)-peak-RAM claim:
// it reports the bytes allocated per node across the whole build (dominated
// by the builder's single []int64 degree histogram plus fixed-size I/O
// buffers) and stays flat however many edges the sample has — the ~50MB
// half-edge stream only ever exists on disk. BENCH_PR10.json records the row.
func BenchmarkStreamBuild(b *testing.B) {
	const n = 1 << 20
	p := 4.0 / float64(n)
	dir := b.TempDir()
	b.ReportAllocs()
	var half int64
	for i := 0; i < b.N; i++ {
		path := filepath.Join(dir, fmt.Sprintf("g%d.csr", i))
		bld, err := csrfile.NewBuilder(path, n)
		if err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		graph.GNPConnectedStream(n, p, prng.New(uint64(i)+1), bld.AddEdge)
		hdr, err := bld.Finalize()
		if err != nil {
			b.Fatal(err)
		}
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/float64(n), "heapB/node")
		half = hdr.HalfEdges
		os.Remove(path)
	}
	b.ReportMetric(float64(half), "halfEdges")
}
