package csrfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Builder streams an edge list into a CSR graph file without ever holding
// the edges in RAM. AddEdge appends both directed half-edges of every edge
// to a temporary file; Finalize counting-sorts that stream into (u, v)
// lexicographic order with two sequential-read/scattered-write passes over
// file mappings, then dedups, derives the reverse-port table and checksums
// the result — the exact pipeline graph.Builder runs in RAM, so the same
// edge multiset produces a byte-identical file regardless of which builder
// (or what AddEdge order) emitted it.
//
// Peak heap is O(n): three int64 arrays of per-node counters plus fixed
// buffers. The O(m) traffic lives in the page cache, where the OS can evict
// it. (On builds without mmap the scatter passes degrade to O(m) RAM
// buffers; see mmap_fallback.go.)
//
// Errors are sticky: the first failure (I/O, out-of-range endpoint, or the
// int32 half-edge overflow guard) latches, later AddEdge calls become no-ops
// and Finalize reports it. A Builder must be finished with exactly one
// Finalize or Abort, either of which removes the temporary file.
type Builder struct {
	n    int
	path string
	dir  string

	tmp  *os.File // the packed uint64 edge stream, reused as the pass-2 target
	bw   *bufio.Writer
	deg  []int64  // per-node half-edge counts, duplicates included
	buf  [16]byte // AddEdge scratch; a field so it never escapes per call
	half int64
	err  error
	done bool
}

// NewBuilder starts a streaming build of a graph on n nodes, to be written
// at path. The temporary edge stream lives next to the output file so both
// stay on one filesystem.
func NewBuilder(path string, n int) (*Builder, error) {
	if n < 0 {
		return nil, fmt.Errorf("csrfile: negative node count %d", n)
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("csrfile: node count %d exceeds the int32 CSR index range", n)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".edges-*.tmp")
	if err != nil {
		return nil, err
	}
	return &Builder{
		n:    n,
		path: path,
		dir:  dir,
		tmp:  tmp,
		bw:   bufio.NewWriterSize(tmp, 1<<20),
		deg:  make([]int64, n),
	}, nil
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Err returns the sticky error, if any, without finishing the build.
func (b *Builder) Err() error { return b.err }

// AddEdge records the undirected edge {u, v}. Self-loops are ignored and
// duplicates are allowed (Finalize dedups), mirroring graph.Builder. Out-of-
// range endpoints and half-edge overflow latch the builder's error.
func (b *Builder) AddEdge(u, v int) {
	if b.err != nil || b.done {
		return
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.fail(fmt.Errorf("csrfile: AddEdge(%d, %d) out of range for n=%d", u, v, b.n))
		return
	}
	if u == v {
		return
	}
	if b.half+2 > maxHalfEdges {
		b.fail(fmt.Errorf("csrfile: edge {%d, %d} would push the graph past %d half-edges, which the int32 CSR reverse-port table cannot index",
			u, v, maxHalfEdges))
		return
	}
	binary.LittleEndian.PutUint64(b.buf[0:], uint64(u)<<32|uint64(uint32(v)))
	binary.LittleEndian.PutUint64(b.buf[8:], uint64(v)<<32|uint64(uint32(u)))
	if _, err := b.bw.Write(b.buf[:]); err != nil {
		b.fail(err)
		return
	}
	b.deg[u]++
	b.deg[v]++
	b.half += 2
}

// Abort discards the build and removes the temporary file. Safe to call
// after a failed Finalize; a no-op once the build is finished.
func (b *Builder) Abort() {
	b.cleanup()
}

func (b *Builder) cleanup() {
	b.done = true
	if b.tmp != nil {
		name := b.tmp.Name()
		b.tmp.Close()
		os.Remove(name)
		b.tmp = nil
	}
}

// cursors returns the exclusive prefix sums of deg — the scatter cursors of
// one counting-sort pass. Every AddEdge records each endpoint once as a
// source and once as a target, so the same histogram serves both passes.
func (b *Builder) cursors() []int64 {
	cur := make([]int64, b.n)
	var total int64
	for v, d := range b.deg {
		cur[v] = total
		total += d
	}
	return cur
}

// scatterPass reads packed half-edges sequentially from src and writes each
// to dst at its key's cursor, advancing the cursor: one stable counting-sort
// pass. key selects the sort radix (target v for pass 1, source u for
// pass 2). dst must already have room for every element.
func scatterPass(src, dst *os.File, half int64, cur []int64, key func(uint64) uint64) error {
	out, release, err := mapRW(dst, 8*half)
	if err != nil {
		return err
	}
	if _, err := src.Seek(0, io.SeekStart); err != nil {
		release(out)
		return err
	}
	br := bufio.NewReaderSize(src, 1<<20)
	var e [8]byte
	for i := int64(0); i < half; i++ {
		if _, err := io.ReadFull(br, e[:]); err != nil {
			release(out)
			return fmt.Errorf("csrfile: reading edge stream: %w", err)
		}
		p := binary.LittleEndian.Uint64(e[:])
		k := key(p)
		copy(out[cur[k]*8:cur[k]*8+8], e[:])
		cur[k]++
	}
	return release(out)
}

// Finalize sorts, dedups and writes the graph file, returning its header.
// The builder cannot be reused afterwards.
func (b *Builder) Finalize() (Header, error) {
	if b.done {
		return Header{}, fmt.Errorf("csrfile: builder already finished")
	}
	defer b.cleanup()
	if b.err == nil {
		if err := b.bw.Flush(); err != nil {
			b.fail(err)
		}
	}
	if b.err != nil {
		return Header{}, b.err
	}

	n := int64(b.n)
	if b.half > 0 {
		// Pass 1: counting-sort the AddEdge-ordered stream by target v into
		// a second temporary, then pass 2: sort that stream by source u back
		// into the first. Two stable passes leave the half-edges in (u, v)
		// lexicographic order — rows sorted, duplicates adjacent.
		tmp2, err := os.CreateTemp(b.dir, filepath.Base(b.path)+".sort-*.tmp")
		if err != nil {
			return Header{}, err
		}
		defer func() {
			name := tmp2.Name()
			tmp2.Close()
			os.Remove(name)
		}()
		if err := tmp2.Truncate(8 * b.half); err != nil {
			return Header{}, err
		}
		if err := scatterPass(b.tmp, tmp2, b.half, b.cursors(), func(p uint64) uint64 {
			return uint64(uint32(p))
		}); err != nil {
			return Header{}, err
		}
		if err := scatterPass(tmp2, b.tmp, b.half, b.cursors(), func(p uint64) uint64 {
			return p >> 32
		}); err != nil {
			return Header{}, err
		}
	}

	// Assemble the output through a mapping sized for the worst case (no
	// duplicates); the file is trimmed to the deduped size at the end.
	out, err := os.Create(b.path)
	if err != nil {
		return Header{}, err
	}
	defer out.Close()
	maxSize := headerSize + 8*(n+1) + 8*b.half
	if err := out.Truncate(maxSize); err != nil {
		return Header{}, err
	}
	mo, release, err := mapRW(out, maxSize)
	if err != nil {
		return Header{}, err
	}
	fileErr := func(err error) (Header, error) {
		release(mo)
		return Header{}, err
	}

	// Dedup pass: stream the sorted half-edges, write the surviving targets
	// as adj and count row sizes.
	adjStart := headerSize + 8*(n+1)
	off := make([]int64, n+1)
	var hf int64
	if b.half > 0 {
		if _, err := b.tmp.Seek(0, io.SeekStart); err != nil {
			return fileErr(err)
		}
		br := bufio.NewReaderSize(b.tmp, 1<<20)
		var e [8]byte
		prev := ^uint64(0) // impossible pair: u == v is never recorded
		for i := int64(0); i < b.half; i++ {
			if _, err := io.ReadFull(br, e[:]); err != nil {
				return fileErr(fmt.Errorf("csrfile: reading sorted edge stream: %w", err))
			}
			p := binary.LittleEndian.Uint64(e[:])
			if p == prev {
				continue
			}
			prev = p
			off[(p>>32)+1]++
			binary.LittleEndian.PutUint32(mo[adjStart+4*hf:], uint32(p))
			hf++
		}
	}
	for v := int64(1); v <= n; v++ {
		off[v] += off[v-1]
	}

	// Reverse-port table: scanning adj in global order visits, for each
	// fixed neighbor w, the sources in ascending order — w's own row order —
	// so a per-node cursor hands out the reverse positions (the same O(m)
	// trick as graph.Builder, with the random writes absorbed by the page
	// cache).
	revStart := adjStart + 4*hf
	cur := make([]int64, b.n)
	for i := int64(0); i < hf; i++ {
		w := binary.LittleEndian.Uint32(mo[adjStart+4*i:])
		binary.LittleEndian.PutUint32(mo[revStart+4*i:], uint32(off[w]+cur[w]))
		cur[w]++
	}

	for v := int64(0); v <= n; v++ {
		binary.LittleEndian.PutUint64(mo[headerSize+8*v:], uint64(off[v]))
	}
	hdr := Header{
		Version:   version,
		N:         b.n,
		HalfEdges: hf,
		Checksum:  crc64.Checksum(mo[headerSize:revStart+4*hf], crcTable),
	}
	encodeHeader(mo[:headerSize], hdr)
	if err := release(mo); err != nil {
		return Header{}, err
	}
	if err := out.Truncate(hdr.FileSize()); err != nil {
		return Header{}, err
	}
	if err := out.Close(); err != nil {
		return Header{}, err
	}
	return hdr, nil
}
