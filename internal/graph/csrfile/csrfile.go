// Package csrfile defines the out-of-core on-disk format for the flat CSR
// graph representation: a fixed little-endian header followed by the three
// arrays package graph's engines index by half-edge — offsets (int64),
// neighbors (int32) and the reverse-port table (int32) — laid out exactly as
// they sit in RAM, so a read-only file mapping can back a *graph.Graph with
// zero copies (graph.OpenCSRFile).
//
// Files are produced either from an in-RAM graph (Write) or by the streaming
// Builder, which counting-sorts an on-disk edge stream in two passes so peak
// heap stays O(n) no matter how many edges the graph has — the point of the
// format is graphs whose edge arrays do not fit in RAM.
//
// # Layout
//
//	[0,  64)              header (see below)
//	[64, 64+8(n+1))       off — n+1 little-endian int64 row offsets
//	[.., .. + 4h)         adj — h little-endian int32 neighbor entries
//	[.., .. + 4h)         rev — h little-endian int32 reverse half-edges
//
// where h is the half-edge count (2m). The header is
//
//	[0,  8)   magic "CSRFILE1"
//	[8,  12)  format version (uint32, currently 1)
//	[12, 16)  flags (uint32, must be 0)
//	[16, 24)  n, the node count (uint64)
//	[24, 32)  h, the half-edge count (uint64, even)
//	[32, 40)  CRC-64/ECMA of every byte after the header (uint64)
//	[40, 64)  reserved, must be 0
//
// The file size is fully determined by n and h, which Open checks exactly;
// the checksum is verified only by Verify (an O(file) pass that would defeat
// the zero-copy mapping if Open did it on every load).
package csrfile

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"
	"unsafe"
)

const (
	headerSize = 64
	version    = 1
)

var magic = [8]byte{'C', 'S', 'R', 'F', 'I', 'L', 'E', '1'}

// crcTable is the checksum polynomial; ECMA is the conventional choice for
// 64-bit file checksums in the Go standard library.
var crcTable = crc64.MakeTable(crc64.ECMA)

// maxHalfEdges caps the half-edge count: rev entries are int32, so a graph
// with 2^31 or more half-edges cannot be indexed by the CSR tables at all.
// It is a variable (not a const) only so tests can lower it and exercise the
// overflow path without a 16 GiB edge stream.
var maxHalfEdges = int64(math.MaxInt32)

// Header describes one CSR graph file.
type Header struct {
	Version   uint32
	N         int   // node count
	HalfEdges int64 // 2m, the length of adj and rev
	Checksum  uint64
}

// Edges returns the undirected edge count m.
func (h Header) Edges() int64 { return h.HalfEdges / 2 }

// FileSize returns the exact byte size of a file with this header.
func (h Header) FileSize() int64 {
	return headerSize + 8*(int64(h.N)+1) + 8*h.HalfEdges
}

// array-region offsets within the file.
func (h Header) offStart() int64 { return headerSize }
func (h Header) adjStart() int64 { return headerSize + 8*(int64(h.N)+1) }
func (h Header) revStart() int64 { return h.adjStart() + 4*h.HalfEdges }

func encodeHeader(buf []byte, h Header) {
	for i := range buf[:headerSize] {
		buf[i] = 0
	}
	copy(buf[0:8], magic[:])
	binary.LittleEndian.PutUint32(buf[8:12], h.Version)
	binary.LittleEndian.PutUint32(buf[12:16], 0) // flags
	binary.LittleEndian.PutUint64(buf[16:24], uint64(h.N))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(h.HalfEdges))
	binary.LittleEndian.PutUint64(buf[32:40], h.Checksum)
}

// decodeHeader parses and sanity-checks a header block. The caller still has
// to check the file size against FileSize().
func decodeHeader(buf []byte) (Header, error) {
	if len(buf) < headerSize {
		return Header{}, fmt.Errorf("csrfile: file shorter than the %d-byte header", headerSize)
	}
	if [8]byte(buf[0:8]) != magic {
		return Header{}, fmt.Errorf("csrfile: bad magic %q (not a CSR graph file)", buf[0:8])
	}
	h := Header{
		Version:   binary.LittleEndian.Uint32(buf[8:12]),
		HalfEdges: int64(binary.LittleEndian.Uint64(buf[24:32])),
		Checksum:  binary.LittleEndian.Uint64(buf[32:40]),
	}
	if h.Version != version {
		return Header{}, fmt.Errorf("csrfile: unsupported format version %d (want %d)", h.Version, version)
	}
	if flags := binary.LittleEndian.Uint32(buf[12:16]); flags != 0 {
		return Header{}, fmt.Errorf("csrfile: unknown flags %#x", flags)
	}
	n := binary.LittleEndian.Uint64(buf[16:24])
	if n > math.MaxInt32 {
		return Header{}, fmt.Errorf("csrfile: node count %d exceeds the int32 CSR index range", n)
	}
	h.N = int(n)
	if h.HalfEdges < 0 || h.HalfEdges > int64(math.MaxInt32) {
		return Header{}, fmt.Errorf("csrfile: half-edge count %d exceeds the int32 CSR index range", h.HalfEdges)
	}
	if h.HalfEdges%2 != 0 {
		return Header{}, fmt.Errorf("csrfile: odd half-edge count %d (every undirected edge stores two)", h.HalfEdges)
	}
	for _, b := range buf[40:headerSize] {
		if b != 0 {
			return Header{}, fmt.Errorf("csrfile: reserved header bytes not zero")
		}
	}
	return h, nil
}

// nativeLittleEndian reports whether the host lays uint64s out in the file's
// byte order, which is what lets Open alias the mapping as typed slices
// instead of decoding a copy.
var nativeLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// alignedBytes allocates n bytes with 8-byte base alignment (backed by a
// []uint64), so the fallback loader can alias the buffer as int64s exactly
// like a page-aligned mapping.
func alignedBytes(n int64) []byte {
	if n == 0 {
		return nil
	}
	w := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), n)
}

// aliasInt64 reinterprets a little-endian byte region as []int64 in place.
func aliasInt64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// aliasInt32 reinterprets a little-endian byte region as []int32 in place.
func aliasInt32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}
