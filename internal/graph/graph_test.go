package graph

import (
	"testing"
	"testing/quick"

	"randlocal/internal/prng"
)

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Graph()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
	if !IsConnected(g) {
		t.Error("empty graph should count as connected")
	}
	if d := Diameter(g); d != 0 {
		t.Errorf("empty graph diameter = %d, want 0", d)
	}
}

func TestSingleNode(t *testing.T) {
	g := NewBuilder(1).Graph()
	if g.N() != 1 || g.M() != 0 || g.Degree(0) != 0 {
		t.Fatalf("single node: %v", g)
	}
	if !IsConnected(g) {
		t.Error("single node should be connected")
	}
	if d := g.Dist(0, 0); d != 0 {
		t.Errorf("Dist(0,0) = %d, want 0", d)
	}
}

func TestBuilderDeduplicatesAndDropsSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop
	g := b.Graph()
	if g.M() != 1 {
		t.Fatalf("m = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {0,1} missing")
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop retained")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestHasEdgeOutOfRangeIsFalse(t *testing.T) {
	g := Path(3)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Error("out-of-range HasEdge should be false, not panic")
	}
}

func TestPortOf(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	for i, v := range g.Neighbors(0) {
		if p := g.PortOf(0, int(v)); p != i {
			t.Errorf("PortOf(0,%d) = %d, want %d", v, p, i)
		}
	}
	if p := g.PortOf(1, 2); p != -1 {
		t.Errorf("PortOf(non-edge) = %d, want -1", p)
	}
}

func TestCloneAndEqual(t *testing.T) {
	rng := prng.New(1)
	g := GNP(50, 0.1, rng)
	h := g.Clone()
	if !g.Equal(h) {
		t.Fatal("clone not equal")
	}
	if g.Equal(Path(g.N())) && g.M() != g.N()-1 {
		t.Fatal("Equal claims equality with a path")
	}
	if g.Equal(Path(3)) {
		t.Fatal("Equal across sizes")
	}
}

func TestRingPathCompleteStar(t *testing.T) {
	cases := []struct {
		name       string
		g          *Graph
		n, m, diam int
	}{
		{"ring8", Ring(8), 8, 8, 4},
		{"ring3", Ring(3), 3, 3, 1},
		{"ring2", Ring(2), 2, 1, 1},
		{"ring1", Ring(1), 1, 0, 0},
		{"path5", Path(5), 5, 4, 4},
		{"path1", Path(1), 1, 0, 0},
		{"k5", Complete(5), 5, 10, 1},
		{"k1", Complete(1), 1, 0, 0},
		{"star6", Star(6), 6, 5, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			if tc.g.N() != tc.n || tc.g.M() != tc.m {
				t.Fatalf("n=%d m=%d, want n=%d m=%d", tc.g.N(), tc.g.M(), tc.n, tc.m)
			}
			if d := Diameter(tc.g); d != tc.diam {
				t.Errorf("diameter = %d, want %d", d, tc.diam)
			}
		})
	}
}

func TestGridTorus(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 || g.M() != 3*3+2*4 {
		t.Fatalf("grid 3x4: n=%d m=%d", g.N(), g.M())
	}
	if d := Diameter(g); d != 2+3 {
		t.Errorf("grid diameter = %d, want 5", d)
	}
	tor := Torus(4, 4)
	if tor.N() != 16 || tor.M() != 32 {
		t.Fatalf("torus 4x4: n=%d m=%d", tor.N(), tor.M())
	}
	for v := 0; v < tor.N(); v++ {
		if tor.Degree(v) != 4 {
			t.Fatalf("torus node %d degree %d, want 4", v, tor.Degree(v))
		}
	}
	// Degenerate torus sizes collapse parallel edges.
	small := Torus(2, 2)
	if err := small.Validate(); err != nil {
		t.Fatalf("torus 2x2 invalid: %v", err)
	}
}

func TestGNPExtremes(t *testing.T) {
	rng := prng.New(7)
	if g := GNP(40, 0, rng); g.M() != 0 {
		t.Errorf("GNP p=0 has %d edges", g.M())
	}
	if g := GNP(10, 1, rng); g.M() != 45 {
		t.Errorf("GNP p=1 has %d edges, want 45", g.M())
	}
	if g := GNP(1, 0.5, rng); g.N() != 1 || g.M() != 0 {
		t.Error("GNP n=1 wrong")
	}
	if g := GNP(0, 0.5, rng); g.N() != 0 {
		t.Error("GNP n=0 wrong")
	}
}

func TestGNPEdgeDensity(t *testing.T) {
	// With n=400, p=0.05 the expected edge count is C(400,2)*0.05 = 3990.
	// Standard deviation is ~62; accept ±6σ.
	rng := prng.New(42)
	g := GNP(400, 0.05, rng)
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	want := 0.05 * 400 * 399 / 2
	if f := float64(g.M()); f < want-380 || f > want+380 {
		t.Errorf("GNP edge count %d too far from mean %.0f", g.M(), want)
	}
}

func TestGNPConnected(t *testing.T) {
	rng := prng.New(3)
	for _, n := range []int{2, 10, 100, 300} {
		g := GNPConnected(n, 1.2/float64(n), rng)
		if !IsConnected(g) {
			t.Errorf("GNPConnected(%d) not connected", n)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("invalid: %v", err)
		}
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := prng.New(11)
	for _, n := range []int{1, 2, 3, 10, 100, 500} {
		g := RandomTree(n, rng)
		if g.N() != n {
			t.Fatalf("n=%d got %d", n, g.N())
		}
		if n >= 1 && g.M() != n-1 && n > 1 {
			t.Fatalf("tree on %d nodes has %d edges", n, g.M())
		}
		if !IsConnected(g) {
			t.Fatalf("tree on %d nodes disconnected", n)
		}
	}
}

func TestTreeFromPruferKnown(t *testing.T) {
	// Prüfer sequence (3,3,3,4) on 6 nodes gives star-ish tree:
	// leaves 0,1,2 attach to 3; 3 attaches to 4; 4 attaches to 5.
	g := TreeFromPrufer(6, []int{3, 3, 3, 4})
	want := [][2]int{{0, 3}, {1, 3}, {2, 3}, {3, 4}, {4, 5}}
	if g.M() != 5 {
		t.Fatalf("m=%d", g.M())
	}
	for _, e := range want {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
}

func TestTreeFromPruferPanics(t *testing.T) {
	for _, tc := range []struct {
		n   int
		seq []int
	}{
		{5, []int{0, 1}},  // wrong length
		{4, []int{0, 9}},  // entry out of range
		{4, []int{-1, 0}}, // negative entry
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TreeFromPrufer(%d, %v) did not panic", tc.n, tc.seq)
				}
			}()
			TreeFromPrufer(tc.n, tc.seq)
		}()
	}
}

func TestBalancedTree(t *testing.T) {
	g := BalancedTree(2, 3) // 1+2+4+8 = 15 nodes
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !IsConnected(g) {
		t.Fatal("disconnected")
	}
	if d := Diameter(g); d != 6 {
		t.Errorf("diameter = %d, want 6", d)
	}
	if g := BalancedTree(3, 0); g.N() != 1 {
		t.Error("depth-0 tree should be a single node")
	}
}

func TestRingOfCliques(t *testing.T) {
	g := RingOfCliques(6, 5)
	if g.N() != 30 {
		t.Fatalf("n=%d", g.N())
	}
	if !IsConnected(g) {
		t.Fatal("disconnected")
	}
	// Each clique contributes C(5,2)=10 edges, plus 6 ring edges.
	if g.M() != 6*10+6 {
		t.Errorf("m=%d, want 66", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	single := RingOfCliques(1, 4)
	if single.M() != 6 || !IsConnected(single) {
		t.Error("single clique wrong")
	}
	two := RingOfCliques(2, 3)
	if !IsConnected(two) {
		t.Error("two cliques should be joined")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(5, 3)
	if g.N() != 5+15 || g.M() != 4+15 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !IsConnected(g) {
		t.Fatal("disconnected")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := prng.New(5)
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {50, 3}, {8, 0}} {
		g := RandomRegular(tc.n, tc.d, rng)
		if err := g.Validate(); err != nil {
			t.Fatalf("invalid: %v", err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("RandomRegular(%d,%d): node %d degree %d", tc.n, tc.d, v, g.Degree(v))
			}
		}
	}
}

func TestRandomRegularPanicsInfeasible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd n*d did not panic")
		}
	}()
	RandomRegular(5, 3, prng.New(1))
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if d := Diameter(g); d != 4 {
		t.Errorf("diameter = %d, want 4", d)
	}
}

func TestDisjoint(t *testing.T) {
	g := Disjoint(Ring(4), Path(3), Complete(3))
	if g.N() != 10 || g.M() != 4+2+3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	_, k := Components(g)
	if k != 3 {
		t.Errorf("components = %d, want 3", k)
	}
	// Edges must not cross between parts.
	if g.HasEdge(3, 4) || g.HasEdge(6, 7) {
		t.Error("cross-part edge found")
	}
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	dist := g.BFS(0)
	for v, d := range dist {
		if d != v {
			t.Errorf("dist[%d] = %d, want %d", v, d, v)
		}
	}
	dist = g.BFS(2)
	want := []int{2, 1, 0, 1, 2}
	for v := range want {
		if dist[v] != want[v] {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := Disjoint(Path(2), Path(2))
	dist := g.BFS(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Errorf("unreachable nodes got distances %v", dist)
	}
	if d := g.Dist(0, 3); d != Unreachable {
		t.Errorf("Dist across components = %d", d)
	}
}

func TestMultiBFSOwner(t *testing.T) {
	g := Path(7)
	dist, owner := g.MultiBFSOwner([]int{0, 6})
	wantDist := []int{0, 1, 2, 3, 2, 1, 0}
	for v := range wantDist {
		if dist[v] != wantDist[v] {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], wantDist[v])
		}
	}
	if owner[1] != 0 || owner[5] != 6 {
		t.Errorf("owner = %v", owner)
	}
	// Every owner is one of the sources.
	for v, o := range owner {
		if o != 0 && o != 6 {
			t.Errorf("owner[%d] = %d", v, o)
		}
	}
}

func TestMultiBFSEmptySources(t *testing.T) {
	g := Ring(4)
	dist := g.MultiBFS(nil)
	for v, d := range dist {
		if d != Unreachable {
			t.Errorf("dist[%d] = %d with no sources", v, d)
		}
	}
}

func TestComponents(t *testing.T) {
	g := Disjoint(Ring(3), Ring(3), Path(1))
	comp, k := Components(g)
	if k != 3 {
		t.Fatalf("k=%d", k)
	}
	if comp[0] != comp[1] || comp[0] != comp[2] {
		t.Error("ring 1 split")
	}
	if comp[0] == comp[3] || comp[3] == comp[6] {
		t.Error("components merged")
	}
}

func TestBFSWithin(t *testing.T) {
	g := Grid(5, 5)
	nodes, dist := g.BFSWithin(12, 2) // center of the grid
	if len(nodes) != len(dist) {
		t.Fatal("length mismatch")
	}
	// Ball of radius 2 around the center of a 5x5 grid: 13 nodes (diamond).
	if len(nodes) != 13 {
		t.Errorf("|B(center,2)| = %d, want 13", len(nodes))
	}
	for i, v := range nodes {
		if want := g.Dist(12, v); want != dist[i] {
			t.Errorf("dist to %d = %d, want %d", v, dist[i], want)
		}
		if dist[i] > 2 {
			t.Errorf("node %d at distance %d > radius", v, dist[i])
		}
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := Star(7)
	if e := g.Eccentricity(0); e != 1 {
		t.Errorf("center eccentricity = %d", e)
	}
	if e := g.Eccentricity(1); e != 2 {
		t.Errorf("leaf eccentricity = %d", e)
	}
	if d := Diameter(g); d != 2 {
		t.Errorf("diameter = %d", d)
	}
}

func TestPowerOfPath(t *testing.T) {
	g := Path(6)
	g2 := Power(g, 2)
	// P6^2: each node connects to nodes within 2 hops.
	if !g2.HasEdge(0, 2) || !g2.HasEdge(3, 5) || g2.HasEdge(0, 3) {
		t.Error("P6^2 edges wrong")
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	g1 := Power(g, 1)
	if !g1.Equal(g) {
		t.Error("G^1 != G")
	}
}

func TestPowerDistanceContractionProperty(t *testing.T) {
	// Property: dist_{G^r}(u,v) = ceil(dist_G(u,v)/r) on connected graphs.
	rng := prng.New(99)
	for trial := 0; trial < 10; trial++ {
		g := GNPConnected(40, 0.08, rng)
		r := 2 + trial%3
		gr := Power(g, r)
		u, v := rng.Intn(40), rng.Intn(40)
		dg := g.Dist(u, v)
		dgr := gr.Dist(u, v)
		want := (dg + r - 1) / r
		if dgr != want {
			t.Fatalf("trial %d: dist_G=%d r=%d dist_Gr=%d want %d", trial, dg, r, dgr, want)
		}
	}
}

func TestPowerPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Power(g, 0) did not panic")
		}
	}()
	Power(Path(3), 0)
}

func TestInducedSubgraph(t *testing.T) {
	g := Ring(6)
	sub, orig := InducedSubgraph(g, []int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("n=%d", sub.N())
	}
	// Edges {0,1},{1,2} survive; 4 is isolated among chosen nodes.
	if sub.M() != 2 {
		t.Errorf("m=%d, want 2", sub.M())
	}
	if orig[3] != 4 {
		t.Errorf("origOf[3] = %d", orig[3])
	}
	if sub.Degree(3) != 0 {
		t.Error("node 4 should be isolated in subgraph")
	}
}

func TestInducedSubgraphDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node did not panic")
		}
	}()
	InducedSubgraph(Ring(4), []int{0, 0})
}

func TestContract(t *testing.T) {
	g := Path(6)
	part := []int{0, 0, 1, 1, 2, 2}
	cg := Contract(g, part, 3)
	if cg.N() != 3 || cg.M() != 2 {
		t.Fatalf("cluster graph n=%d m=%d", cg.N(), cg.M())
	}
	if !cg.HasEdge(0, 1) || !cg.HasEdge(1, 2) || cg.HasEdge(0, 2) {
		t.Error("cluster adjacency wrong")
	}
	// Unclustered nodes (negative part) are ignored.
	part2 := []int{0, 0, -1, -1, 1, 1}
	cg2 := Contract(g, part2, 2)
	if cg2.M() != 0 {
		t.Errorf("contract with gap: m=%d, want 0", cg2.M())
	}
}

func TestDegreeHistogram(t *testing.T) {
	hist := DegreeHistogram(Star(5))
	if hist[1] != 4 || hist[4] != 1 {
		t.Errorf("hist = %v", hist)
	}
}

func TestDegreeStats(t *testing.T) {
	g := Star(5)
	if g.MaxDegree() != 4 || g.MinDegree() != 1 {
		t.Errorf("max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
	if got := g.AvgDegree(); got != 2*4.0/5.0 {
		t.Errorf("avg=%v", got)
	}
	empty := NewBuilder(0).Graph()
	if empty.MaxDegree() != 0 || empty.MinDegree() != 0 || empty.AvgDegree() != 0 {
		t.Error("empty graph degree stats")
	}
}

func TestEdgesIteration(t *testing.T) {
	g := Complete(4)
	count := 0
	g.Edges(func(u, v int) {
		if u >= v {
			t.Errorf("edge order violated: (%d,%d)", u, v)
		}
		count++
	})
	if count != 6 {
		t.Errorf("iterated %d edges, want 6", count)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Path(3)
	// Corrupt: rewrite node 0's only neighbor from 1 to 2 in the flat CSR
	// array, making the adjacency asymmetric.
	g.adj[0] = 2
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted asymmetric adjacency")
	}
}

func TestGraphPropertiesQuick(t *testing.T) {
	// Property: every generated GNP graph validates, and BFS distances obey
	// the triangle-ish property dist(u,w) <= dist(u,v)+1 for every edge {v,w}.
	f := func(seed uint64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%60) + 2
		p := float64(pRaw%100) / 100
		g := GNP(n, p, prng.New(seed))
		if g.Validate() != nil {
			return false
		}
		dist := g.BFS(0)
		ok := true
		g.Edges(func(v, w int) {
			dv, dw := dist[v], dist[w]
			if dv == Unreachable || dw == Unreachable {
				if dv != dw {
					ok = false
				}
				return
			}
			if dw > dv+1 || dv > dw+1 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPruferRoundTripQuick(t *testing.T) {
	// Property: every random Prüfer sequence decodes to a tree (n-1 edges,
	// connected).
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 3
		rng := prng.New(seed)
		seq := make([]int, n-2)
		for i := range seq {
			seq[i] = rng.Intn(n)
		}
		g := TreeFromPrufer(n, seq)
		return g.M() == n-1 && IsConnected(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestGNPDeterminism(t *testing.T) {
	a := GNP(100, 0.05, prng.New(123))
	b := GNP(100, 0.05, prng.New(123))
	if !a.Equal(b) {
		t.Error("GNP not deterministic for equal seeds")
	}
}

func TestStringSummary(t *testing.T) {
	s := Ring(5).String()
	if s != "graph{n=5 m=5 Δ=2}" {
		t.Errorf("String() = %q", s)
	}
}

func TestPowerLaw(t *testing.T) {
	rng := prng.New(7)
	g := PowerLaw(500, 3, rng)
	if g.N() != 500 {
		t.Fatalf("n = %d", g.N())
	}
	// m attachments per arriving node plus the m-star seed.
	if want := 3*(500-4) + 3; g.M() != want {
		t.Errorf("m = %d, want %d", g.M(), want)
	}
	if !IsConnected(g) {
		t.Error("power-law graph disconnected")
	}
	if g.MinDegree() < 3 {
		t.Errorf("min degree = %d, want >= 3", g.MinDegree())
	}
	// The hub regime: the maximum degree should far exceed the average.
	if float64(g.MaxDegree()) < 3*g.AvgDegree() {
		t.Errorf("max degree %d not hub-like (avg %.1f)", g.MaxDegree(), g.AvgDegree())
	}

	// Tiny n falls back to a clique.
	if k := PowerLaw(3, 3, prng.New(1)); k.M() != 3 {
		t.Errorf("clique fallback m = %d, want 3", k.M())
	}
}

func TestPowerLawDeterminism(t *testing.T) {
	a := PowerLaw(200, 2, prng.New(99))
	b := PowerLaw(200, 2, prng.New(99))
	if !a.Equal(b) {
		t.Error("PowerLaw not deterministic for equal seeds")
	}
}
