package graph

import (
	"testing"

	"randlocal/internal/prng"
)

func TestShardBoundsInvariants(t *testing.T) {
	rng := prng.New(31)
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"ring", Ring(40)},
		{"gnp", GNPConnected(120, 0.06, rng)},
		{"powerlaw", PowerLaw(150, 3, rng)},
		{"star", FromEdges(50, starEdges(50))},
		{"edgeless", NewBuilder(20).Graph()},
	}
	for _, tg := range graphs {
		n := tg.g.N()
		for _, k := range []int{1, 2, 3, 7, n} {
			bounds := tg.g.ShardBounds(k)
			if len(bounds) != k+1 {
				t.Fatalf("%s k=%d: %d bounds", tg.name, k, len(bounds))
			}
			if bounds[0] != 0 || bounds[k] != n {
				t.Errorf("%s k=%d: bounds span [%d,%d], want [0,%d]", tg.name, k, bounds[0], bounds[k], n)
			}
			for i := 0; i < k; i++ {
				if bounds[i+1] <= bounds[i] {
					t.Errorf("%s k=%d: empty shard %d: [%d,%d)", tg.name, k, i, bounds[i], bounds[i+1])
				}
			}
		}
	}
}

// TestShardBoundsBalanceByHalfEdges checks the point of the helper: on a
// skewed degree distribution the half-edge spans stay near the ideal 2m/k —
// each span overshoots by at most one node's degree — where equal node-count
// shards can be off by orders of magnitude.
func TestShardBoundsBalanceByHalfEdges(t *testing.T) {
	g := PowerLaw(400, 4, prng.New(9))
	off, _, _ := g.CSR()
	h := int64(len(g.adj))
	k := 4
	ideal := h / int64(k)
	bounds := g.ShardBounds(k)
	for i := 0; i < k; i++ {
		span := off[bounds[i+1]] - off[bounds[i]]
		if span > ideal+int64(g.MaxDegree())+1 {
			t.Errorf("shard %d holds %d half-edges, ideal %d, Δ=%d", i, span, ideal, g.MaxDegree())
		}
	}

	// The star graph is the extreme case: node-count sharding gives one
	// shard the hub plus nothing and the other all leaves' half-edges;
	// half-edge sharding isolates the hub.
	star := FromEdges(101, starEdges(101))
	b := star.ShardBounds(2)
	if b[1] != 1 {
		t.Errorf("star boundary = %d, want 1 (hub isolated)", b[1])
	}
}

func TestShardBoundsLiveInvariants(t *testing.T) {
	rng := prng.New(53)
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"ring", Ring(60)},
		{"gnp", GNPConnected(140, 0.05, rng)},
		{"powerlaw", PowerLaw(160, 3, rng)},
		{"star", FromEdges(80, starEdges(80))},
		{"edgeless", NewBuilder(30).Graph()},
	}
	for _, tg := range graphs {
		n := tg.g.N()
		// Several survivor patterns: every third node, a contiguous block,
		// and a random thinning — all ascending, as the engines maintain.
		lives := [][]int32{makeLive(n, func(v int) bool { return v%3 == 0 })}
		lives = append(lives, makeLive(n, func(v int) bool { return v >= n/2 }))
		lives = append(lives, makeLive(n, func(v int) bool { return rng.Intn(4) != 0 }))
		for _, live := range lives {
			for _, k := range []int{1, 2, 3, 5, len(live)} {
				if k > len(live) {
					continue
				}
				bounds := tg.g.ShardBoundsLive(k, live)
				if len(bounds) != k+1 || bounds[0] != 0 || bounds[k] != n {
					t.Fatalf("%s k=%d: bounds %v, want 0..%d in %d cuts", tg.name, k, bounds, n, k)
				}
				li := 0
				for i := 0; i < k; i++ {
					if bounds[i+1] <= bounds[i] {
						t.Errorf("%s k=%d: shard %d is empty: [%d,%d)", tg.name, k, i, bounds[i], bounds[i+1])
					}
					inShard := 0
					for li < len(live) && int(live[li]) < bounds[i+1] {
						inShard++
						li++
					}
					if inShard == 0 {
						t.Errorf("%s k=%d: shard %d [%d,%d) holds no live node", tg.name, k, i, bounds[i], bounds[i+1])
					}
				}
				if li != len(live) {
					t.Errorf("%s k=%d: %d live nodes fell outside all shards", tg.name, k, len(live)-li)
				}
			}
		}
	}
}

// TestShardBoundsLiveBalance checks the re-sharding payoff: when the
// survivors cluster in one corner of the node range, the live half-edge
// spans stay near ideal even though the plain whole-graph cut would give
// one shard everything.
func TestShardBoundsLiveBalance(t *testing.T) {
	g := GNPConnected(300, 0.04, prng.New(17))
	// Survivors: the last sixth of the node range.
	live := makeLive(g.N(), func(v int) bool { return v >= 250 })
	k := 4
	var total int64
	for _, v := range live {
		total += int64(g.Degree(int(v)))
	}
	bounds := g.ShardBoundsLive(k, live)
	ideal := total / int64(k)
	li := 0
	for i := 0; i < k; i++ {
		var span int64
		for li < len(live) && int(live[li]) < bounds[i+1] {
			span += int64(g.Degree(int(live[li])))
			li++
		}
		if span > ideal+int64(g.MaxDegree())+1 {
			t.Errorf("shard %d holds %d live half-edges, ideal %d, Δ=%d", i, span, ideal, g.MaxDegree())
		}
	}
}

func TestShardBoundsLivePanicsOutOfRange(t *testing.T) {
	g := Ring(6)
	live := []int32{1, 3, 5}
	for _, k := range []int{0, -1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardBoundsLive(%d) did not panic", k)
				}
			}()
			g.ShardBoundsLive(k, live)
		}()
	}
}

// TestShardBoundsLiveDegenerate pins the edge cases the engines can feed
// the re-sharding primitive: an empty worklist (no k is valid — the call
// must panic rather than return shards with no live node), a single live
// node, and a worklist made entirely of isolated (zero-degree) nodes, where
// every prefix sum stalls at zero and only the one-node-per-shard clamps
// place the boundaries.
func TestShardBoundsLiveDegenerate(t *testing.T) {
	g := Ring(12)

	// Empty worklist: k <= len(live) can't hold for any positive k.
	for _, k := range []int{1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardBoundsLive(%d, empty) did not panic", k)
				}
			}()
			g.ShardBoundsLive(k, nil)
		}()
	}

	// Single live node: the only valid k is 1, and the one shard must span
	// the whole node range.
	for _, v := range []int32{0, 5, 11} {
		bounds := g.ShardBoundsLive(1, []int32{v})
		if len(bounds) != 2 || bounds[0] != 0 || bounds[1] != g.N() {
			t.Errorf("single live node %d: bounds %v", v, bounds)
		}
	}

	// All-isolated-node worklist: an edgeless graph's live nodes all have
	// degree zero, so the target scan never advances and every boundary
	// comes from the clamps. Shards must still tile [0, n) with at least
	// one live node each.
	edgeless := NewBuilder(20).Graph()
	live := makeLive(20, func(v int) bool { return v%2 == 0 })
	for _, k := range []int{1, 2, 3, len(live)} {
		bounds := edgeless.ShardBoundsLive(k, live)
		if bounds[0] != 0 || bounds[k] != 20 {
			t.Fatalf("edgeless k=%d: bounds %v do not tile [0,20)", k, bounds)
		}
		li := 0
		for i := 0; i < k; i++ {
			if bounds[i+1] <= bounds[i] {
				t.Errorf("edgeless k=%d: empty shard %d: %v", k, i, bounds)
			}
			inShard := 0
			for li < len(live) && int(live[li]) < bounds[i+1] {
				inShard++
				li++
			}
			if inShard == 0 {
				t.Errorf("edgeless k=%d: shard %d [%d,%d) has no live node", k, i, bounds[i], bounds[i+1])
			}
		}
	}

	// Mixed case: isolated live nodes interleaved with connected ones on a
	// disjoint ring + isolated block.
	mixed := Disjoint(Ring(10), NewBuilder(10).Graph())
	liveMixed := makeLive(mixed.N(), func(v int) bool { return v%2 == 1 })
	bounds := mixed.ShardBoundsLive(3, liveMixed)
	if bounds[0] != 0 || bounds[3] != mixed.N() {
		t.Fatalf("mixed: bounds %v", bounds)
	}
	for i := 0; i < 3; i++ {
		if bounds[i+1] <= bounds[i] {
			t.Errorf("mixed: empty shard %d: %v", i, bounds)
		}
	}
}

// TestShardBoundsLiveInto checks the scratch-reusing variant: identical
// bounds to the allocating form, and zero allocations once the scratch has
// reached steady size — the property that makes a frequent re-shard cadence
// cheap.
func TestShardBoundsLiveInto(t *testing.T) {
	g := PowerLaw(200, 3, prng.New(7))
	live := makeLive(g.N(), func(v int) bool { return v%3 != 0 })
	for _, k := range []int{1, 2, 5} {
		want := g.ShardBoundsLive(k, live)
		bounds, prefix := g.ShardBoundsLiveInto(k, live, nil, nil)
		if len(bounds) != len(want) {
			t.Fatalf("k=%d: Into bounds %v != %v", k, bounds, want)
		}
		for i := range want {
			if bounds[i] != want[i] {
				t.Fatalf("k=%d: Into bounds %v != %v", k, bounds, want)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			bounds, prefix = g.ShardBoundsLiveInto(k, live, bounds, prefix)
		})
		if allocs != 0 {
			t.Errorf("k=%d: %v allocs/cut with warm scratch, want 0", k, allocs)
		}
	}
}

func makeLive(n int, keep func(v int) bool) []int32 {
	var live []int32
	for v := 0; v < n; v++ {
		if keep(v) {
			live = append(live, int32(v))
		}
	}
	return live
}

func TestShardBoundsPanicsOutOfRange(t *testing.T) {
	g := Ring(5)
	for _, k := range []int{0, -1, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardBounds(%d) did not panic", k)
				}
			}()
			g.ShardBounds(k)
		}()
	}
}

func starEdges(n int) [][2]int {
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{0, v})
	}
	return edges
}

// TestShardWordBounds checks the word-boundary mapping the packed parallel
// engine hands its workers: ascending, spanning exactly the plane's words,
// and consistent with the node bounds — every half-edge of shard i's nodes
// lives at a word index in [wb[i], wb[i+1]) except the at-most-63 boundary
// slots that shift into the lower shard's last word.
func TestShardWordBounds(t *testing.T) {
	rng := prng.New(71)
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"ring-odd", Ring(67)},
		{"gnp", GNPConnected(130, 0.05, rng)},
		{"powerlaw", PowerLaw(150, 3, rng)},
		{"star", FromEdges(50, starEdges(50))},
		{"edgeless", NewBuilder(20).Graph()},
	}
	for _, tg := range graphs {
		n := tg.g.N()
		off, _, _ := tg.g.CSR()
		planeWords := (len(tg.g.adj) + 63) >> 6
		for _, k := range []int{1, 2, 3, 7, n} {
			bounds := tg.g.ShardBounds(k)
			wb := tg.g.ShardWordBounds(bounds)
			if len(wb) != k+1 {
				t.Fatalf("%s k=%d: %d word bounds", tg.name, k, len(wb))
			}
			if wb[0] != 0 || wb[k] != planeWords {
				t.Errorf("%s k=%d: word span [%d,%d], want [0,%d]", tg.name, k, wb[0], wb[k], planeWords)
			}
			for i := 0; i < k; i++ {
				if wb[i+1] < wb[i] {
					t.Errorf("%s k=%d: descending word bound %d: %d > %d", tg.name, k, i, wb[i], wb[i+1])
				}
				// Consistency: wb[i+1] is the rounded-up word of the node
				// boundary, so no half-edge of shard i sits at or past word
				// wb[i+1] — at most 63 boundary slots shift downward, never up.
				if want := int((off[bounds[i+1]] + 63) >> 6); wb[i+1] != want {
					t.Errorf("%s k=%d: word bound %d = %d, want ⌈off/64⌉ = %d",
						tg.name, k, i+1, wb[i+1], want)
				}
			}
			// Scratch reuse returns identical bounds without reallocating.
			scratch := make([]int, 0, k+1)
			wb2 := tg.g.ShardWordBoundsInto(bounds, scratch)
			for i := range wb {
				if wb2[i] != wb[i] {
					t.Fatalf("%s k=%d: Into mismatch at %d: %d != %d", tg.name, k, i, wb2[i], wb[i])
				}
			}
			if k+1 <= cap(scratch) && &wb2[0] != &scratch[:1][0] {
				t.Errorf("%s k=%d: ShardWordBoundsInto reallocated despite capacity", tg.name, k)
			}
		}
	}
}

// TestAssignShardsAffineIdentity: when the new cut exactly reproduces the old
// ranges and no traffic was measured, every owner keeps its range — warm
// caches and first-touched pages stay where they are.
func TestAssignShardsAffineIdentity(t *testing.T) {
	g := Ring(8)
	bounds := g.ShardBounds(4)
	oldLo := make([]int, 4)
	oldHi := make([]int, 4)
	for w := 0; w < 4; w++ {
		oldLo[w], oldHi[w] = bounds[w], bounds[w+1]
	}
	assign := g.AssignShardsAffine(bounds, oldLo, oldHi, make([]int64, 16), nil)
	for s, w := range assign {
		if w != s {
			t.Errorf("assign[%d] = %d, want identity", s, w)
		}
	}
}

// TestAssignShardsAffineShrink: a 4→2 re-cut hands each new range to an owner
// whose old window overlaps it, uses each owner at most once, and parks the
// surplus.
func TestAssignShardsAffineShrink(t *testing.T) {
	g := Ring(8)
	old := g.ShardBounds(4) // [0 2 4 6 8]
	oldLo := []int{old[0], old[1], old[2], old[3]}
	oldHi := []int{old[1], old[2], old[3], old[4]}
	bounds := []int{0, 4, 8}
	assign := g.AssignShardsAffine(bounds, oldLo, oldHi, make([]int64, 16), nil)
	if len(assign) != 2 {
		t.Fatalf("len(assign) = %d, want 2", len(assign))
	}
	if assign[0] == assign[1] {
		t.Fatalf("owner %d assigned twice", assign[0])
	}
	// New range 0 covers old owners 0 and 1; range 1 covers 2 and 3. Any
	// other owner has zero overlap and must lose.
	if assign[0] != 0 && assign[0] != 1 {
		t.Errorf("assign[0] = %d, want an overlapping owner (0 or 1)", assign[0])
	}
	if assign[1] != 2 && assign[1] != 3 {
		t.Errorf("assign[1] = %d, want an overlapping owner (2 or 3)", assign[1])
	}
}

// TestAssignShardsAffineTraffic: measured staging traffic can out-vote range
// overlap. Two owners overlap the merged range equally, but only one of them
// was the source of every staged message — it owns the destinations, so it
// takes the range.
func TestAssignShardsAffineTraffic(t *testing.T) {
	g := Ring(8)
	oldLo := []int{0, 4}
	oldHi := []int{4, 8}
	bounds := []int{0, 8}
	traffic := make([]int64, 4)
	traffic[1*2+0] = 100 // owner 1 → owner 0's old window
	traffic[1*2+1] = 100 // owner 1 self-delivery
	assign := g.AssignShardsAffine(bounds, oldLo, oldHi, traffic, nil)
	if assign[0] != 1 {
		t.Errorf("assign[0] = %d, want 1 (all traffic originated there)", assign[0])
	}
	// Without traffic the equal-overlap tie breaks to identity.
	assign = g.AssignShardsAffine(bounds, oldLo, oldHi, make([]int64, 4), assign)
	if assign[0] != 0 {
		t.Errorf("assign[0] = %d, want 0 (identity tie-break)", assign[0])
	}
}

// TestAssignShardsAffineDeterministic: same inputs, same assignment — the
// engine's equivalence guarantee rides on re-cuts being reproducible.
func TestAssignShardsAffineDeterministic(t *testing.T) {
	rng := prng.New(77)
	g := PowerLaw(200, 3, rng)
	p := 5
	old := g.ShardBounds(p)
	oldLo := make([]int, p)
	oldHi := make([]int, p)
	for w := 0; w < p; w++ {
		oldLo[w], oldHi[w] = old[w], old[w+1]
	}
	traffic := make([]int64, p*p)
	for i := range traffic {
		traffic[i] = int64(rng.Uint64() % 50)
	}
	for _, k := range []int{1, 2, 3, 5} {
		bounds := g.ShardBounds(k)
		a := g.AssignShardsAffine(bounds, oldLo, oldHi, traffic, nil)
		b := g.AssignShardsAffine(bounds, oldLo, oldHi, traffic, nil)
		seen := make([]bool, p)
		for s := range a {
			if a[s] != b[s] {
				t.Fatalf("k=%d: nondeterministic assign[%d]: %d vs %d", k, s, a[s], b[s])
			}
			if a[s] < 0 || a[s] >= p {
				t.Fatalf("k=%d: assign[%d] = %d out of [0,%d)", k, s, a[s], p)
			}
			if seen[a[s]] {
				t.Fatalf("k=%d: owner %d assigned twice", k, a[s])
			}
			seen[a[s]] = true
		}
	}
}

// TestAssignShardsAffinePanics pins the argument contract.
func TestAssignShardsAffinePanics(t *testing.T) {
	g := Ring(8)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	oldLo := []int{0, 4}
	oldHi := []int{4, 8}
	traffic := make([]int64, 4)
	mustPanic("k=0", func() { g.AssignShardsAffine([]int{0}, oldLo, oldHi, traffic, nil) })
	mustPanic("k>p", func() { g.AssignShardsAffine([]int{0, 2, 4, 8}, oldLo, oldHi, traffic, nil) })
	mustPanic("oldHi len", func() { g.AssignShardsAffine([]int{0, 8}, oldLo, oldHi[:1], traffic, nil) })
	mustPanic("traffic len", func() { g.AssignShardsAffine([]int{0, 8}, oldLo, oldHi, traffic[:3], nil) })
}
