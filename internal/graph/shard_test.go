package graph

import (
	"testing"

	"randlocal/internal/prng"
)

func TestShardBoundsInvariants(t *testing.T) {
	rng := prng.New(31)
	graphs := []struct {
		name string
		g    *Graph
	}{
		{"ring", Ring(40)},
		{"gnp", GNPConnected(120, 0.06, rng)},
		{"powerlaw", PowerLaw(150, 3, rng)},
		{"star", FromEdges(50, starEdges(50))},
		{"edgeless", NewBuilder(20).Graph()},
	}
	for _, tg := range graphs {
		n := tg.g.N()
		for _, k := range []int{1, 2, 3, 7, n} {
			bounds := tg.g.ShardBounds(k)
			if len(bounds) != k+1 {
				t.Fatalf("%s k=%d: %d bounds", tg.name, k, len(bounds))
			}
			if bounds[0] != 0 || bounds[k] != n {
				t.Errorf("%s k=%d: bounds span [%d,%d], want [0,%d]", tg.name, k, bounds[0], bounds[k], n)
			}
			for i := 0; i < k; i++ {
				if bounds[i+1] <= bounds[i] {
					t.Errorf("%s k=%d: empty shard %d: [%d,%d)", tg.name, k, i, bounds[i], bounds[i+1])
				}
			}
		}
	}
}

// TestShardBoundsBalanceByHalfEdges checks the point of the helper: on a
// skewed degree distribution the half-edge spans stay near the ideal 2m/k —
// each span overshoots by at most one node's degree — where equal node-count
// shards can be off by orders of magnitude.
func TestShardBoundsBalanceByHalfEdges(t *testing.T) {
	g := PowerLaw(400, 4, prng.New(9))
	off, _, _ := g.CSR()
	h := int64(len(g.adj))
	k := 4
	ideal := h / int64(k)
	bounds := g.ShardBounds(k)
	for i := 0; i < k; i++ {
		span := off[bounds[i+1]] - off[bounds[i]]
		if span > ideal+int64(g.MaxDegree())+1 {
			t.Errorf("shard %d holds %d half-edges, ideal %d, Δ=%d", i, span, ideal, g.MaxDegree())
		}
	}

	// The star graph is the extreme case: node-count sharding gives one
	// shard the hub plus nothing and the other all leaves' half-edges;
	// half-edge sharding isolates the hub.
	star := FromEdges(101, starEdges(101))
	b := star.ShardBounds(2)
	if b[1] != 1 {
		t.Errorf("star boundary = %d, want 1 (hub isolated)", b[1])
	}
}

func TestShardBoundsPanicsOutOfRange(t *testing.T) {
	g := Ring(5)
	for _, k := range []int{0, -1, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardBounds(%d) did not panic", k)
				}
			}()
			g.ShardBounds(k)
		}()
	}
}

func starEdges(n int) [][2]int {
	edges := make([][2]int, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{0, v})
	}
	return edges
}
