package graph

import (
	"fmt"
	"io"

	"randlocal/internal/graph/csrfile"
)

// WriteCSRFile stores g in the on-disk CSR format (internal/graph/csrfile):
// the flat off/adj/rev arrays behind CSR(), little-endian with a checksummed
// header, so OpenCSRFile can later back a graph by the file instead of RAM.
func WriteCSRFile(g *Graph, path string) error {
	off, adj, rev := g.CSR()
	return csrfile.Write(path, off, adj, rev)
}

// OpenCSRFile opens an on-disk CSR graph as a *Graph backed by a read-only
// file mapping: the slices CSR() exposes alias the mapping directly, so the
// engines, sharding and bit planes run on it unmodified while the OS pages
// the arrays in and out on demand — graph size is bounded by disk, not RAM.
// The returned closer releases the mapping; the graph (and every slice
// handed out by CSR or Neighbors) is invalid after Close.
//
// Open checks the header, the exact file size and the O(n) offset structure;
// it does not checksum the O(m) array bytes (csrfile.Verify does, and
// csrgen runs it after every build).
func OpenCSRFile(path string) (*Graph, io.Closer, error) {
	m, err := csrfile.Open(path)
	if err != nil {
		return nil, nil, err
	}
	g := &Graph{off: m.Off, adj: m.Adj, rev: m.Rev, edges: int(m.Header.Edges())}
	if err := g.checkOffsets(); err != nil {
		m.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, m, nil
}

// checkOffsets is the O(n) structural subset of Validate: offsets ascend
// from 0 and frame the adjacency exactly. It skips the O(m log Δ) symmetry
// and reverse-port checks, which would touch every page of a just-mapped
// file.
func (g *Graph) checkOffsets() error {
	n := g.N()
	if len(g.off) == 0 || g.off[0] != 0 {
		return fmt.Errorf("graph: offsets do not start at 0")
	}
	for v := 0; v < n; v++ {
		if g.off[v+1] < g.off[v] {
			return fmt.Errorf("graph: offsets decrease at node %d", v)
		}
	}
	if g.off[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: offsets end at %d, adjacency has %d half-edges", g.off[n], len(g.adj))
	}
	if len(g.rev) != len(g.adj) {
		return fmt.Errorf("graph: reverse-port table has %d entries for %d half-edges", len(g.rev), len(g.adj))
	}
	return nil
}
