package graph

import (
	"fmt"
	"math"

	"randlocal/internal/prng"
)

// GNPConnectedStream emits exactly the edge multiset of
// GNPConnected(n, p, rng) — the same rng draw sequence, the same
// component-linking edges — without ever materializing a Graph, so streaming
// builders (csrfile.Builder) can construct G(n, p)+connectivity instances
// whose edge arrays exceed RAM. Peak memory is O(n): a union-find forest
// stands in for the BFS component labeling, and the per-component
// representative lists match Components' ordering because both number
// components by their minimum-index member and collect members in ascending
// node order.
//
// Emission order differs from Graph.Edges order, which is fine for any
// order-insensitive consumer (both CSR builders counting-sort and dedup);
// the resulting graph is Equal to GNPConnected's, golden-tested.
func GNPConnectedStream(n int, p float64, rng *prng.SplitMix64, emit func(u, v int)) {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: GNP probability %v out of [0,1]", p))
	}
	d := newDSU(n)
	add := func(u, v int) {
		emit(u, v)
		d.union(u, v)
	}
	// The G(n, p) phase replicates GNP's draw discipline exactly: geometric
	// pair skipping for 0 < p < 1, no draws at the endpoints.
	switch {
	case p == 0 || n < 2:
	case p == 1:
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				add(u, v)
			}
		}
	default:
		u, v := 0, 0
		for u < n-1 {
			uniform := rng.Float64()
			for uniform == 0 {
				uniform = rng.Float64()
			}
			skip := int(math.Log(uniform)/math.Log(1-p)) + 1
			v += skip
			for v >= n {
				overflow := v - n
				u++
				v = u + 1 + overflow
				if u >= n-1 {
					break
				}
			}
			if u >= n-1 {
				break
			}
			add(u, v)
		}
	}
	// Link the components with the same representative choices GNPConnected
	// makes: components numbered by minimum member, members listed in
	// ascending node order, one rng.Intn per endpoint.
	comp := make([]int32, n)
	k := 0
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	for v := 0; v < n; v++ {
		r := d.find(v)
		if label[r] < 0 {
			label[r] = int32(k)
			k++
		}
		comp[v] = label[r]
	}
	if k <= 1 {
		return
	}
	reps := make([][]int, k)
	for v := 0; v < n; v++ {
		reps[comp[v]] = append(reps[comp[v]], v)
	}
	for c := 1; c < k; c++ {
		u := reps[c-1][rng.Intn(len(reps[c-1]))]
		v := reps[c][rng.Intn(len(reps[c]))]
		emit(u, v)
	}
}

// dsu is a union-find forest with union by rank and path halving — the O(n)
// stand-in for Components' BFS labeling during streaming generation.
type dsu struct {
	parent []int32
	rank   []uint8
}

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int32, n), rank: make([]uint8, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

func (d *dsu) find(v int) int {
	for int(d.parent[v]) != v {
		d.parent[v] = d.parent[d.parent[v]] // path halving
		v = int(d.parent[v])
	}
	return v
}

func (d *dsu) union(u, v int) {
	ru, rv := d.find(u), d.find(v)
	if ru == rv {
		return
	}
	if d.rank[ru] < d.rank[rv] {
		ru, rv = rv, ru
	}
	d.parent[rv] = int32(ru)
	if d.rank[ru] == d.rank[rv] {
		d.rank[ru]++
	}
}
