package graph

import "fmt"

// ShardBounds partitions the node range [0, n) into k contiguous shards of
// near-equal half-edge count, returning k+1 ascending boundaries: shard i is
// the node range [bounds[i], bounds[i+1]). Boundary i is the first node at
// or past the ideal half-edge split point i·2m/k, nudged where necessary so
// that every shard holds at least one node.
//
// Sharding by node count balances work only when degrees are uniform; on a
// power-law graph a hub-heavy shard dominates every round barrier. Cutting
// at equal spans of the CSR offsets array balances the quantity the
// simulators actually sweep — half-edges — while keeping shards contiguous,
// which the engines rely on for single-writer inbox windows.
//
// It panics unless 0 < k <= n (callers clamp the worker count first).
func (g *Graph) ShardBounds(k int) []int {
	n := g.N()
	if k <= 0 || k > n {
		panic(fmt.Sprintf("graph: ShardBounds(%d) for n=%d nodes", k, n))
	}
	bounds := make([]int, k+1)
	bounds[k] = n
	h := int64(len(g.adj))
	v := 0
	for i := 1; i < k; i++ {
		target := h * int64(i) / int64(k)
		for v < n && g.off[v] < target {
			v++
		}
		// Keep every shard nonempty: at least one node below this boundary,
		// and enough nodes above it for the k-i shards that remain.
		if lo := bounds[i-1] + 1; v < lo {
			v = lo
		}
		if hi := n - (k - i); v > hi {
			v = hi
		}
		bounds[i] = v
	}
	return bounds
}
