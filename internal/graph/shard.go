package graph

import "fmt"

// ShardBounds partitions the node range [0, n) into k contiguous shards of
// near-equal half-edge count, returning k+1 ascending boundaries: shard i is
// the node range [bounds[i], bounds[i+1]). Boundary i is the first node at
// or past the ideal half-edge split point i·2m/k, nudged where necessary so
// that every shard holds at least one node.
//
// Sharding by node count balances work only when degrees are uniform; on a
// power-law graph a hub-heavy shard dominates every round barrier. Cutting
// at equal spans of the CSR offsets array balances the quantity the
// simulators actually sweep — half-edges — while keeping shards contiguous,
// which the engines rely on for single-writer inbox windows.
//
// It panics unless 0 < k <= n (callers clamp the worker count first).
func (g *Graph) ShardBounds(k int) []int {
	n := g.N()
	if k <= 0 || k > n {
		panic(fmt.Sprintf("graph: ShardBounds(%d) for n=%d nodes", k, n))
	}
	bounds := make([]int, k+1)
	bounds[k] = n
	h := int64(len(g.adj))
	v := 0
	for i := 1; i < k; i++ {
		target := h * int64(i) / int64(k)
		for v < n && g.off[v] < target {
			v++
		}
		// Keep every shard nonempty: at least one node below this boundary,
		// and enough nodes above it for the k-i shards that remain.
		if lo := bounds[i-1] + 1; v < lo {
			v = lo
		}
		if hi := n - (k - i); v > hi {
			v = hi
		}
		bounds[i] = v
	}
	return bounds
}

// ShardWordBounds maps node shard boundaries (as returned by ShardBounds or
// ShardBoundsLive) to word boundaries of a packed half-edge plane that stores
// 64 half-edge lanes per uint64 word: wb[i] = ⌈off[bounds[i]]/64⌉, with
// wb[0] = 0 and wb[k] covering the whole plane. The word ranges
// [wb[i], wb[i+1]) partition the plane's words, so an engine that packs its
// message lanes into bitmaps can give each shard an exclusive word window —
// no two shards ever share a word, hence concurrent scatter needs no atomics
// — at the price of shifting ownership of at most 63 boundary slots per cut
// to the lower shard. wb is ascending because off is; empty word ranges are
// allowed (a shard whose half-edges all sit inside its neighbors' boundary
// words owns no word).
func (g *Graph) ShardWordBounds(bounds []int) []int {
	return g.ShardWordBoundsInto(bounds, nil)
}

// ShardWordBoundsInto is ShardWordBounds with caller-owned scratch, for
// engines that re-cut repeatedly; words is grown as needed and returned.
func (g *Graph) ShardWordBoundsInto(bounds, words []int) []int {
	if cap(words) < len(bounds) {
		words = make([]int, len(bounds))
	} else {
		words = words[:len(bounds)]
	}
	for i, b := range bounds {
		words[i] = int((g.off[b] + 63) >> 6)
	}
	if len(words) > 0 {
		words[0] = 0
	}
	return words
}

// AssignShardsAffine chooses which of p previous shard owners takes each of
// the k new contiguous shard ranges of a re-cut, maximizing measured
// affinity. bounds is the new cut (k+1 ascending node boundaries, as
// returned by ShardBounds or ShardBoundsLive); oldLo/oldHi give each
// candidate owner's previous node range (length p, lo==hi for an owner that
// held nothing); traffic is a flat p×p matrix where traffic[w*p+u] counts
// the messages owner w staged into owner u's previous window since the last
// cut. It returns assign of length k with assign[s] = the owner of new
// range s; owners are used at most once, and with k <= p the surplus owners
// are simply left unassigned (the engine parks them).
//
// The affinity of owner w for new range s combines two fractions: how much
// of s's half-edge window w already owned (its caches and — under pinned
// first-touch — its NUMA node hold those pages), and how much of the
// measured staging traffic w sent into the old windows that s now covers
// (owning the destination turns those cross-worker scatter writes into
// self-delivery). Assignment is greedy max-weight with deterministic
// tie-breaking (identity first, then lower range, then lower owner), so the
// same inputs always produce the same assignment. Like the cut itself this
// is purely a performance decision: the engines' Results are byte-identical
// under every assignment.
//
// It panics unless 0 < k <= p.
func (g *Graph) AssignShardsAffine(bounds []int, oldLo, oldHi []int, traffic []int64, assign []int) []int {
	k := len(bounds) - 1
	p := len(oldLo)
	if k <= 0 || k > p || len(oldHi) != p || len(traffic) != p*p {
		panic(fmt.Sprintf("graph: AssignShardsAffine(k=%d, p=%d, traffic=%d)", k, p, len(traffic)))
	}
	if cap(assign) < k {
		assign = make([]int, k)
	} else {
		assign = assign[:k]
	}
	var totalTraffic int64
	for _, t := range traffic {
		totalTraffic += t
	}
	// weight[w*k+s] is owner w's affinity for new range s.
	weight := make([]float64, p*k)
	for s := 0; s < k; s++ {
		newLo, newHi := g.off[bounds[s]], g.off[bounds[s+1]]
		newSize := newHi - newLo
		for w := 0; w < p; w++ {
			var aff float64
			if newSize > 0 {
				if ovl := overlap(g.off[oldLo[w]], g.off[oldHi[w]], newLo, newHi); ovl > 0 {
					aff += float64(ovl) / float64(newSize)
				}
			}
			if totalTraffic > 0 {
				var sent float64
				for u := 0; u < p; u++ {
					t := traffic[w*p+u]
					if t == 0 {
						continue
					}
					uLo, uHi := g.off[oldLo[u]], g.off[oldHi[u]]
					uSize := uHi - uLo
					if uSize <= 0 {
						continue
					}
					if ovl := overlap(uLo, uHi, newLo, newHi); ovl > 0 {
						sent += float64(t) * float64(ovl) / float64(uSize)
					}
				}
				aff += sent / float64(totalTraffic)
			}
			weight[w*k+s] = aff
		}
	}
	taken := make([]bool, p)
	for s := range assign {
		assign[s] = -1
	}
	for range assign {
		bestW, bestS, bestAff := -1, -1, -1.0
		for s := 0; s < k; s++ {
			if assign[s] >= 0 {
				continue
			}
			for w := 0; w < p; w++ {
				if taken[w] {
					continue
				}
				aff := weight[w*k+s]
				if aff > bestAff || (aff == bestAff && w == s && bestW != bestS) {
					bestW, bestS, bestAff = w, s, aff
				}
			}
		}
		assign[bestS] = bestW
		taken[bestW] = true
	}
	return assign
}

// overlap returns the length of the intersection of [aLo, aHi) and [bLo, bHi).
func overlap(aLo, aHi, bLo, bHi int64) int64 {
	lo, hi := aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// ShardBoundsLive re-cuts the node range [0, n) into k contiguous shards of
// near-equal *surviving* half-edge count: live is the ascending list of node
// indices still running, and each boundary is placed between live nodes so
// that every shard carries a near-equal share of the live nodes' half-edges.
// Like ShardBounds it returns k+1 ascending node boundaries with bounds[0] =
// 0 and bounds[k] = n, so the shards still tile the whole node range —
// halted nodes ride along with whichever shard the cut lands them in, which
// keeps each shard's half-edge window contiguous (the engines' single-writer
// invariant). Every shard contains at least one live node.
//
// This is the re-sharding primitive for the shattering-style tail: once the
// live fringe has shrunk, the initial whole-graph cut can leave most workers
// idle, and re-cutting over the survivors rebalances the pool in O(live + n)
// time. It panics unless 0 < k <= len(live); live must be ascending within
// [0, n) (the engines' worklists are).
func (g *Graph) ShardBoundsLive(k int, live []int32) []int {
	bounds, _ := g.ShardBoundsLiveInto(k, live, nil, nil)
	return bounds
}

// ShardBoundsLiveInto is ShardBoundsLive with caller-owned scratch, for
// engines that re-cut repeatedly: bounds and prefix are grown as needed and
// returned, so a caller that passes back what it received pays no allocation
// per cut once the scratch has reached steady size. The prefix array —
// O(live) — dominates the price of a cut, so recycling it is what makes an
// adaptive re-shard cadence cheap enough to measure honestly. The returned
// bounds slice has length k+1 and the same contract as ShardBoundsLive.
func (g *Graph) ShardBoundsLiveInto(k int, live []int32, bounds []int, prefix []int64) ([]int, []int64) {
	n := g.N()
	if k <= 0 || k > len(live) {
		panic(fmt.Sprintf("graph: ShardBoundsLive(%d) for %d live nodes", k, len(live)))
	}
	// prefix[j] is the half-edge count of live[:j].
	if cap(prefix) < len(live)+1 {
		prefix = make([]int64, len(live)+1)
	} else {
		prefix = prefix[:len(live)+1]
	}
	prefix[0] = 0
	for j, v := range live {
		prefix[j+1] = prefix[j] + (g.off[v+1] - g.off[v])
	}
	total := prefix[len(live)]
	if cap(bounds) < k+1 {
		bounds = make([]int, k+1)
	} else {
		bounds = bounds[:k+1]
	}
	bounds[0] = 0
	bounds[k] = n
	j := 0    // index into live of the first live node of shard i
	prev := 0 // j of the previous boundary, so every shard gets a live node
	for i := 1; i < k; i++ {
		target := total * int64(i) / int64(k)
		for j < len(live) && prefix[j] < target {
			j++
		}
		// Keep at least one live node per shard on both sides of the cut
		// (the scan can stall on zero-degree live nodes or overshoot on a
		// hub, so both clamps are load-bearing).
		if j <= prev {
			j = prev + 1
		}
		if hi := len(live) - (k - i); j > hi {
			j = hi
		}
		bounds[i] = int(live[j])
		prev = j
	}
	return bounds, prefix
}
