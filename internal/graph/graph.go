// Package graph provides the undirected-graph substrate used by every
// simulator and algorithm in this repository: a compact adjacency
// representation, generators for the graph families that the paper's
// constructions are exercised on, traversals, graph powers, and the
// cluster-graph contraction used by network-decomposition algorithms.
//
// Nodes are identified by dense indices 0..N()-1. The separate notion of a
// (possibly adversarial) Θ(log n)-bit identifier lives in package sim, which
// assigns identifiers on top of these indices.
//
// # Memory layout
//
// Graphs are stored in compressed-sparse-row (CSR) form: one flat offsets
// array and one flat neighbor array, so iterating a neighborhood — the inner
// loop of every simulator round and every traversal — is a sequential scan
// over contiguous memory rather than a pointer chase through per-node
// slices. The reverse-port table (for every directed half-edge (v, p), the
// flat index of the opposite half-edge) is a property of the graph, not of a
// simulation run, so it is precomputed here once per graph and shared by
// every engine that runs on it.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Graph is an immutable simple undirected graph in compressed-sparse-row
// form. The zero value is the empty graph with no nodes. Construct graphs
// with a Builder or a generator.
//
// The node indices of every undirected edge {u, v} appear twice in adj, once
// as the directed half-edge u→v and once as v→u. Half-edge i = off[v] + p is
// "port p of node v" — exactly the port numbering the CONGEST/LOCAL node
// programs use to address their neighbors.
type Graph struct {
	off   []int64 // off[v]..off[v+1] frames v's neighbor row in adj; len N()+1
	adj   []int32 // flat neighbor array; every row sorted strictly ascending
	rev   []int32 // rev[i] = flat index of the reverse half-edge of i
	edges int
}

// ErrNodeRange is returned when a node index is outside [0, N()).
var ErrNodeRange = errors.New("graph: node index out of range")

// N returns the number of nodes.
func (g *Graph) N() int {
	if len(g.off) == 0 {
		return 0
	}
	return len(g.off) - 1
}

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return int(g.off[v+1] - g.off[v]) }

// Neighbors returns the sorted neighbor row of v as a subslice of the flat
// CSR array: no allocation, no copy. The returned slice is owned by the
// graph and must not be modified. The element at position p is the node
// behind port p of v.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// CSR exposes the graph's flat arrays — offsets, neighbors, and the
// reverse-half-edge table — for engines that index per-port state by
// half-edge. All three slices are owned by the graph and must be treated as
// read-only. rev satisfies adj[rev[off[v]+p]] == v for every port p of every
// node v: the reverse half-edge of "port p of v" is the port of v in the
// neighbor's own row.
func (g *Graph) CSR() (off []int64, adj, rev []int32) { return g.off, g.adj, g.rev }

// HasEdge reports whether {u, v} is an edge. It runs in O(log deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return false
	}
	return g.PortOf(u, v) >= 0
}

// PortOf returns the index of neighbor v in u's neighbor row, or -1 when
// {u, v} is not an edge. Ports are how CONGEST/LOCAL node programs address
// their neighbors without knowing global indices (the KT0 assumption).
func (g *Graph) PortOf(u, v int) int {
	if v < 0 || v >= g.N() {
		return -1
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= int32(v) })
	if i < len(ns) && ns[i] == int32(v) {
		return i
	}
	return -1
}

// ReversePort returns, for port p of node u, the port of u in that
// neighbor's own row: Neighbors(w)[ReversePort(u, p)] == u for
// w = Neighbors(u)[p]. It is an O(1) lookup in the precomputed table.
func (g *Graph) ReversePort(u, p int) int {
	i := g.off[u] + int64(p)
	return int(int64(g.rev[i]) - g.off[g.adj[i]])
}

// MaxDegree returns the maximum degree Δ, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	d := int64(0)
	for v := 0; v+1 < len(g.off); v++ {
		if deg := g.off[v+1] - g.off[v]; deg > d {
			d = deg
		}
	}
	return int(d)
}

// MinDegree returns the minimum degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	d := g.off[1] - g.off[0]
	for v := 1; v < n; v++ {
		if deg := g.off[v+1] - g.off[v]; deg < d {
			d = deg
		}
	}
	return int(d)
}

// AvgDegree returns the average degree 2M/N, or 0 for the empty graph.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(g.N())
}

// Edges calls fn once per edge with u < v. Iteration order is deterministic.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u+1 < len(g.off); u++ {
		for _, w := range g.adj[g.off[u]:g.off[u+1]] {
			if v := int(w); u < v {
				fn(u, v)
			}
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	return &Graph{
		off:   append([]int64(nil), g.off...),
		adj:   append([]int32(nil), g.adj...),
		rev:   append([]int32(nil), g.rev...),
		edges: g.edges,
	}
}

// Equal reports whether g and h have identical node sets and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for v := 0; v < g.N(); v++ {
		if g.off[v+1]-g.off[v] != h.off[v+1]-h.off[v] {
			return false
		}
	}
	for i := range g.adj {
		if g.adj[i] != h.adj[i] {
			return false
		}
	}
	return true
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.N(), g.M(), g.MaxDegree())
}

// Validate checks internal invariants: well-formed CSR offsets, sorted
// neighbor rows without duplicates or self-loops, symmetric adjacency, a
// consistent edge count, and a reverse-port table that round-trips.
// Generators and Builder always produce valid graphs; Validate exists for
// tests and for defensive checks after hand-built graphs.
func (g *Graph) Validate() error {
	n := g.N()
	if len(g.off) != 0 && g.off[0] != 0 {
		return fmt.Errorf("graph: offsets do not start at 0")
	}
	for v := 0; v < n; v++ {
		if g.off[v+1] < g.off[v] {
			return fmt.Errorf("graph: offsets decrease at node %d", v)
		}
	}
	if n > 0 && g.off[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: offsets end at %d, adjacency has %d half-edges", g.off[n], len(g.adj))
	}
	if len(g.rev) != len(g.adj) {
		return fmt.Errorf("graph: reverse-port table has %d entries for %d half-edges", len(g.rev), len(g.adj))
	}
	for u := 0; u < n; u++ {
		row := g.Neighbors(u)
		for p, w := range row {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d: %w", u, w, ErrNodeRange)
			}
			if int(w) == u {
				return fmt.Errorf("graph: node %d has a self-loop", u)
			}
			if p > 0 && row[p-1] >= w {
				return fmt.Errorf("graph: node %d neighbor row not strictly sorted at port %d", u, p)
			}
			if !g.HasEdge(int(w), u) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", u, w)
			}
			i := g.off[u] + int64(p)
			j := int64(g.rev[i])
			if j < 0 || j >= int64(len(g.adj)) {
				return fmt.Errorf("graph: half-edge %d has out-of-range reverse %d", i, j)
			}
			if int(g.adj[j]) != u || int64(g.rev[j]) != i {
				return fmt.Errorf("graph: reverse-port table does not round-trip at half-edge %d", i)
			}
		}
	}
	if int64(len(g.adj)) != 2*int64(g.edges) {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency half-edges %d", g.edges, len(g.adj))
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self-loops are silently dropped, so generators can over-propose edges.
//
// Internally the builder records packed directed half-edges and finalizes
// them straight into CSR form with two stable counting-sort passes — O(n+m)
// total, one pass over the data per radix, no per-node sort-and-copy.
type Builder struct {
	n     int
	pairs []uint64 // packed half-edges u<<32|v, both directions per AddEdge
}

// NewBuilder returns a builder for a graph on n nodes. It panics if n < 0.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	if n > math.MaxInt32 {
		panic("graph: node count exceeds the int32 CSR index range")
	}
	return &Builder{n: n}
}

// maxHalfEdges caps the builder's half-edge count: rev entries are int32, so
// a graph with 2^31 or more half-edges cannot be indexed by the CSR tables —
// without the guard the int32 conversions below would wrap and corrupt the
// graph silently. A variable (not a const) only so tests can lower it and
// exercise the overflow path without a 16 GiB edge list.
var maxHalfEdges = int64(math.MaxInt32)

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
// It panics if an endpoint is out of range or the graph would exceed the
// int32 half-edge limit (both programming errors in callers; graphs beyond
// the limit are unrepresentable in CSR and need sharding instead).
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range for n=%d", u, v, b.n))
	}
	if u == v {
		return
	}
	if int64(len(b.pairs))+2 > maxHalfEdges {
		panic(fmt.Sprintf("graph: edge {%d, %d} would push the graph past %d half-edges, which the int32 CSR reverse-port table cannot index",
			u, v, maxHalfEdges))
	}
	b.pairs = append(b.pairs, uint64(u)<<32|uint64(uint32(v)), uint64(v)<<32|uint64(uint32(u)))
}

// Graph finalizes the builder into an immutable CSR graph. The builder may
// be reused afterwards; edges added so far remain.
func (b *Builder) Graph() *Graph {
	return fromHalfEdges(b.n, b.pairs)
}

// fromHalfEdges builds a CSR graph from packed directed half-edges (each
// undirected edge present in both directions, duplicates allowed).
func fromHalfEdges(n int, pairs []uint64) *Graph {
	if int64(len(pairs)) > maxHalfEdges {
		panic(fmt.Sprintf("graph: %d half-edges exceed the int32 CSR index limit %d; rev []int32 cannot address them",
			len(pairs), maxHalfEdges))
	}
	// Two stable counting-sort passes — by v, then by u — leave the
	// half-edges in (u, v) lexicographic order, so rows come out sorted and
	// duplicates sit adjacent.
	byV := make([]uint64, len(pairs))
	count := make([]int64, n+1)
	for _, p := range pairs {
		count[uint32(p)+1]++
	}
	for i := 1; i <= n; i++ {
		count[i] += count[i-1]
	}
	for _, p := range pairs {
		k := uint32(p)
		byV[count[k]] = p
		count[k]++
	}
	sorted := make([]uint64, len(pairs))
	for i := range count {
		count[i] = 0
	}
	for _, p := range byV {
		count[(p>>32)+1]++
	}
	for i := 1; i <= n; i++ {
		count[i] += count[i-1]
	}
	for _, p := range byV {
		k := p >> 32
		sorted[count[k]] = p
		count[k]++
	}
	// Dedup while writing the flat neighbor array and per-node row sizes.
	off := make([]int64, n+1)
	adj := make([]int32, 0, len(sorted))
	prev := ^uint64(0) // impossible pair: u == v is never recorded
	for _, p := range sorted {
		if p == prev {
			continue
		}
		prev = p
		off[(p>>32)+1]++
		adj = append(adj, int32(uint32(p)))
	}
	for v := 1; v <= n; v++ {
		off[v] += off[v-1]
	}
	// Reverse-port table in O(m): scanning half-edges (u → w) in global
	// order visits, for each fixed w, the sources u in ascending order —
	// exactly w's own row order — so a per-node cursor hands out the
	// reverse positions.
	rev := make([]int32, len(adj))
	cur := make([]int32, n)
	for u := 0; u < n; u++ {
		for i := off[u]; i < off[u+1]; i++ {
			w := adj[i]
			rev[i] = int32(off[w]) + cur[w]
			cur[w]++
		}
	}
	return &Graph{off: off, adj: adj, rev: rev, edges: len(adj) / 2}
}

// FromEdges builds a graph on n nodes from an explicit edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Graph()
}
