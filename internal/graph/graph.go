// Package graph provides the undirected-graph substrate used by every
// simulator and algorithm in this repository: a compact adjacency
// representation, generators for the graph families that the paper's
// constructions are exercised on, traversals, graph powers, and the
// cluster-graph contraction used by network-decomposition algorithms.
//
// Nodes are identified by dense indices 0..N()-1. The separate notion of a
// (possibly adversarial) Θ(log n)-bit identifier lives in package sim, which
// assigns identifiers on top of these indices.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph. The zero value is the empty
// graph with no nodes. Construct graphs with a Builder or a generator.
type Graph struct {
	adj   [][]int // sorted neighbor lists
	edges int
}

// ErrNodeRange is returned when a node index is outside [0, N()).
var ErrNodeRange = errors.New("graph: node index out of range")

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// HasEdge reports whether {u, v} is an edge. It runs in O(log deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return false
	}
	ns := g.adj[u]
	i := sort.SearchInts(ns, v)
	return i < len(ns) && ns[i] == v
}

// PortOf returns the index of neighbor v in u's neighbor list, or -1 when
// {u, v} is not an edge. Ports are how CONGEST/LOCAL node programs address
// their neighbors without knowing global indices (the KT0 assumption).
func (g *Graph) PortOf(u, v int) int {
	ns := g.adj[u]
	i := sort.SearchInts(ns, v)
	if i < len(ns) && ns[i] == v {
		return i
	}
	return -1
}

// MaxDegree returns the maximum degree Δ, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	d := 0
	for _, ns := range g.adj {
		if len(ns) > d {
			d = len(ns)
		}
	}
	return d
}

// MinDegree returns the minimum degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	d := len(g.adj[0])
	for _, ns := range g.adj[1:] {
		if len(ns) < d {
			d = len(ns)
		}
	}
	return d
}

// AvgDegree returns the average degree 2M/N, or 0 for the empty graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.adj))
}

// Edges calls fn once per edge with u < v. Iteration order is deterministic.
func (g *Graph) Edges(fn func(u, v int)) {
	for u, ns := range g.adj {
		for _, v := range ns {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	adj := make([][]int, len(g.adj))
	for i, ns := range g.adj {
		adj[i] = append([]int(nil), ns...)
	}
	return &Graph{adj: adj, edges: g.edges}
}

// Equal reports whether g and h have identical node sets and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for v := range g.adj {
		a, b := g.adj[v], h.adj[v]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d Δ=%d}", g.N(), g.M(), g.MaxDegree())
}

// Validate checks internal invariants: sorted neighbor lists without
// duplicates or self-loops, symmetric adjacency, and a consistent edge count.
// Generators and Builder always produce valid graphs; Validate exists for
// tests and for defensive checks after hand-built graphs.
func (g *Graph) Validate() error {
	count := 0
	for u, ns := range g.adj {
		for i, v := range ns {
			if v < 0 || v >= len(g.adj) {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d: %w", u, v, ErrNodeRange)
			}
			if v == u {
				return fmt.Errorf("graph: node %d has a self-loop", u)
			}
			if i > 0 && ns[i-1] >= v {
				return fmt.Errorf("graph: node %d neighbor list not strictly sorted at position %d", u, i)
			}
			if !g.HasEdge(v, u) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", u, v)
			}
			count++
		}
	}
	if count != 2*g.edges {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency half-edges %d", g.edges, count)
	}
	return nil
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self-loops are silently dropped, so generators can over-propose edges.
type Builder struct {
	n   int
	adj [][]int
}

// NewBuilder returns a builder for a graph on n nodes. It panics if n < 0.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, adj: make([][]int, n)}
}

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
// It panics if an endpoint is out of range (a programming error in callers).
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) out of range for n=%d", u, v, b.n))
	}
	if u == v {
		return
	}
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
}

// Graph finalizes the builder: it sorts and deduplicates neighbor lists and
// returns the immutable graph. The builder may be reused afterwards; edges
// added so far remain.
func (b *Builder) Graph() *Graph {
	adj := make([][]int, b.n)
	edges := 0
	for v := range b.adj {
		ns := append([]int(nil), b.adj[v]...)
		sort.Ints(ns)
		out := ns[:0]
		for i, w := range ns {
			if i > 0 && ns[i-1] == w {
				continue
			}
			out = append(out, w)
		}
		adj[v] = append([]int(nil), out...)
		edges += len(out)
	}
	return &Graph{adj: adj, edges: edges / 2}
}

// FromEdges builds a graph on n nodes from an explicit edge list.
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Graph()
}
