package graph

// Power returns the r-th power G^r: the graph on the same node set where
// {u, v} is an edge iff 1 <= dist_G(u, v) <= r. Graph powers are the
// workhorse of the SLOCAL→LOCAL derandomization pipeline: a network
// decomposition with poly(log n) parameters of G^r (for r the SLOCAL
// locality) lets clusters be processed color-by-color with no interference
// (see Section 2 of the paper and [GKM17, GHK18]).
//
// It runs a depth-limited BFS from every node, O(n · (n_r + m_r)) where the
// subscripted quantities are ball sizes; exact and deterministic.
func Power(g *Graph, r int) *Graph {
	if r < 1 {
		panic("graph: Power radius must be >= 1")
	}
	if r == 1 {
		return g.Clone()
	}
	b := NewBuilder(g.N())
	for v := 0; v < g.N(); v++ {
		nodes, _ := g.BFSWithin(v, r)
		for _, w := range nodes {
			if w > v {
				b.AddEdge(v, w)
			}
		}
	}
	return b.Graph()
}

// InducedSubgraph returns the subgraph induced by the given node set and the
// mapping from new indices to original indices. Nodes may be listed in any
// order; duplicates are rejected with a panic (caller bug).
func InducedSubgraph(g *Graph, nodes []int) (sub *Graph, origOf []int) {
	newOf := make(map[int]int, len(nodes))
	origOf = make([]int, len(nodes))
	for i, v := range nodes {
		if _, dup := newOf[v]; dup {
			panic("graph: InducedSubgraph duplicate node")
		}
		newOf[v] = i
		origOf[i] = v
	}
	b := NewBuilder(len(nodes))
	for i, v := range nodes {
		for _, w := range g.Neighbors(v) {
			if j, ok := newOf[int(w)]; ok && j > i {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Graph(), origOf
}

// Contract builds the cluster graph of a partition: given part[v] ∈ [0, k)
// for every node (or a negative value for nodes outside every cluster), it
// returns the graph on k cluster-nodes where two clusters are adjacent iff
// some edge of g joins them. This is the "logical cluster graph CG" that
// Lemma 3.3 and Theorem 4.2 run Elkin–Neiman on top of.
func Contract(g *Graph, part []int, k int) *Graph {
	if len(part) != g.N() {
		panic("graph: Contract partition length mismatch")
	}
	b := NewBuilder(k)
	g.Edges(func(u, v int) {
		cu, cv := part[u], part[v]
		if cu >= 0 && cv >= 0 && cu != cv {
			b.AddEdge(cu, cv)
		}
	})
	return b.Graph()
}

// DegreeHistogram returns hist where hist[d] is the number of nodes of
// degree d, for d up to MaxDegree.
func DegreeHistogram(g *Graph) []int {
	hist := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		hist[g.Degree(v)]++
	}
	return hist
}
