package check

import (
	"os"
	"testing"

	"randlocal/internal/prng"
	"randlocal/internal/sim"
	"randlocal/internal/splitting"
)

// TestMain enables the engine's poisoned-Outbox check for the package's
// whole test run (all four distributed checkers assemble their outboxes in
// the NodeCtx.Outbox scratch).
func TestMain(m *testing.M) {
	sim.SetDebugOutboxCheck(true)
	os.Exit(m.Run())
}

// TestCheckerRoundsAllocNothing measures the broadcast round of each 1-round
// checker and the steady-state flood round of the radius-d decomposition
// checker under testing.AllocsPerRun: all outboxes come from the engine
// scratch and all payloads from the per-round arena, so each measured round
// must allocate zero.
func TestCheckerRoundsAllocNothing(t *testing.T) {
	const deg = 5
	empty := make([]sim.Message, deg)

	t.Run("mis", func(t *testing.T) {
		ctx, rotate := sim.NewBenchCtx(deg, 4, 64, nil)
		c := &misChecker{inMIS: true}
		c.Init(ctx)
		if avg := testing.AllocsPerRun(100, func() {
			rotate()
			c.Round(0, empty)
		}); avg != 0 {
			t.Errorf("MIS checker broadcast allocates %.1f times, want 0", avg)
		}
	})

	t.Run("mis-packed", func(t *testing.T) {
		// The checker declares PayloadBits() = 1, so the engines run it over
		// packed planes: both its rounds — bit broadcast and word scan — must
		// stay at zero allocations in that mode too.
		ctx, setIn, reset := sim.NewPackedBenchCtx(70, 4, 64, nil)
		c := &misChecker{inMIS: true}
		c.Init(ctx)
		if avg := testing.AllocsPerRun(100, func() {
			reset()
			c.Round(0, nil)
		}); avg != 0 {
			t.Errorf("packed MIS checker broadcast allocates %.1f times, want 0", avg)
		}
		if avg := testing.AllocsPerRun(100, func() {
			reset()
			setIn(66, 1) // a member neighbor past the first inbox word
			c.Round(1, nil)
			c.answer = true
		}); avg != 0 {
			t.Errorf("packed MIS checker scan allocates %.1f times, want 0", avg)
		}
	})

	t.Run("coloring", func(t *testing.T) {
		ctx, rotate := sim.NewBenchCtx(deg, 4, 64, nil)
		c := &coloringChecker{color: 2, maxColors: 8}
		c.Init(ctx)
		if avg := testing.AllocsPerRun(100, func() {
			rotate()
			c.Round(0, empty)
		}); avg != 0 {
			t.Errorf("coloring checker broadcast allocates %.1f times, want 0", avg)
		}
	})

	t.Run("splitting", func(t *testing.T) {
		ctx, rotate := sim.NewBenchCtx(deg, 4, 64, nil)
		c := &splitChecker{color: 1} // V-side announcer
		c.Init(ctx)
		if avg := testing.AllocsPerRun(100, func() {
			rotate()
			c.Round(0, empty)
		}); avg != 0 {
			t.Errorf("splitting checker broadcast allocates %.1f times, want 0", avg)
		}
	})

	t.Run("splitting-accepts", func(t *testing.T) {
		// The migrated splitting checker still accepts a valid two-coloring
		// on the bipartite communication graph (run under the poisoned-
		// Outbox check via TestMain).
		inst := splitting.RandomInstance(40, 200, 30, prng.New(4))
		colors := make([]int, 200)
		for i := range colors {
			colors[i] = i % 2
		}
		ok, err := SplittingDistributed(inst.AdjU, 200, colors)
		if err != nil || !ok {
			t.Errorf("splitting checker: ok=%v err=%v, want acceptance", ok, err)
		}
	})

	t.Run("decomposition", func(t *testing.T) {
		ctx, rotate := sim.NewBenchCtx(deg, 4, 64, nil)
		c := &decompChecker{cluster: 3, color: 1, rounds: 1 << 20}
		c.Init(ctx)
		inbox := make([]sim.Message, deg)
		inbox[0] = sim.Uints(3, 1, 2) // same cluster: min-flood update
		inbox[1] = sim.Uints(9, 0, 1) // foreign cluster, different color
		if avg := testing.AllocsPerRun(100, func() {
			rotate()
			c.Round(1, inbox)
		}); avg != 0 {
			t.Errorf("decomposition checker flood round allocates %.1f times, want 0", avg)
		}
	})
}
