package check

import (
	"testing"

	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/sim"
)

func faultedOpts(t *testing.T, seed uint64, cfg sim.AdversaryConfig) Options {
	t.Helper()
	adv, err := sim.NewAdversary(sim.NewSimulationKey(seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return Options{Adversary: adv}
}

func greedyMIS(g *graph.Graph) []bool {
	in := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		ok := true
		for _, w := range g.Neighbors(v) {
			if in[w] {
				ok = false
			}
		}
		in[v] = ok
	}
	return in
}

// TestFaultedCheckersNeverFalseAccept is the oracle property the adversary
// layer leans on: a checker run over a faulty network may false-reject a
// valid solution (lost messages look like violations) but can never be
// tricked into accepting an invalid one — every per-node "no" that a
// violation forces is computed from state the node holds locally, which no
// drop, delay, churn or stall can take away. Crashes are excluded by
// design: a crashed node never reports, so its "no" can be lost with the
// node; the experiments treat crashed checker runs as incomplete, not as
// verdicts.
func TestFaultedCheckersNeverFalseAccept(t *testing.T) {
	rng := prng.New(99)
	budgets := []sim.AdversaryConfig{
		{DropProb: 0.25},
		{DelayProb: 0.25, DelayMax: 2},
		{ChurnPerRound: 6},
		{StallPerRound: 5},
		{DropProb: 0.15, DelayProb: 0.15, DelayMax: 3, ChurnPerRound: 3, StallPerRound: 3},
	}
	for trial := 0; trial < 4; trial++ {
		g := graph.GNPConnected(40, 0.1, rng)
		n := g.N()

		in := greedyMIS(g)
		bad := append([]bool(nil), in...)
		bad[trial%n] = !bad[trial%n]

		colors := make([]int, n)
		for v := 0; v < n; v++ { // greedy proper coloring
			used := map[int]bool{}
			for _, w := range g.Neighbors(v) {
				if int(w) < v {
					used[colors[w]] = true
				}
			}
			for used[colors[v]] {
				colors[v]++
			}
		}
		badColors := append([]int(nil), colors...)
		for _, w := range g.Neighbors(trial % n) { // force a monochromatic edge
			badColors[w] = badColors[trial%n]
			break
		}

		for bi, budget := range budgets {
			opt := faultedOpts(t, uint64(trial*100+bi), budget)
			if all, _, err := MISDistributedOpts(g, bad, opt); err != nil {
				t.Fatal(err)
			} else if all {
				t.Errorf("trial %d budget %d: faulted MIS checker accepted an invalid MIS", trial, bi)
			}
			if all, _, err := ColoringDistributedOpts(g, badColors, 0, opt); err != nil {
				t.Fatal(err)
			} else if all {
				t.Errorf("trial %d budget %d: faulted coloring checker accepted an improper coloring", trial, bi)
			}
		}
	}
}

// TestFaultedSplittingCheckerNeverFalseAccept covers the fourth checker on
// its bipartite communication graph.
func TestFaultedSplittingCheckerNeverFalseAccept(t *testing.T) {
	adjU := [][]int{{0, 1}, {1, 2}, {0, 2}}
	bad := []int{0, 0, 0} // every U-node misses color 1
	for bi, budget := range []sim.AdversaryConfig{
		{DropProb: 0.3},
		{StallPerRound: 3},
	} {
		ok, err := SplittingDistributedOpts(adjU, 3, bad, faultedOpts(t, uint64(bi), budget))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("budget %d: faulted splitting checker accepted an invalid split", bi)
		}
	}
}

// TestZeroBudgetOptionsMatchPlainCheckers: attaching a null adversary to a
// checker reproduces the fault-free verdict on both valid and corrupted
// inputs — the stream-isolation guarantee surfacing at the check layer.
func TestZeroBudgetOptionsMatchPlainCheckers(t *testing.T) {
	g := graph.GNPConnected(50, 0.08, prng.New(7))
	opt := faultedOpts(t, 5, sim.AdversaryConfig{})
	in := greedyMIS(g)
	for _, corrupt := range []bool{false, true} {
		if corrupt {
			in[3] = !in[3]
		}
		wantAll, wantAns, err := MISDistributed(g, in)
		if err != nil {
			t.Fatal(err)
		}
		gotAll, gotAns, err := MISDistributedOpts(g, in, opt)
		if err != nil {
			t.Fatal(err)
		}
		if gotAll != wantAll {
			t.Fatalf("corrupt=%v: zero-budget verdict %v != plain %v", corrupt, gotAll, wantAll)
		}
		for v := range wantAns {
			if gotAns[v] != wantAns[v] {
				t.Fatalf("corrupt=%v: node %d answer diverged under a null adversary", corrupt, v)
			}
		}
	}
}

// TestFaultedDecompositionCheckerRejectsLateFlood: the radius-d
// decomposition checker under stalls demonstrates the honest false-reject
// direction — a valid decomposition can fail certification because the
// min-ID flood missed its deadline, but the checker still never errs the
// other way on a color violation.
func TestFaultedDecompositionCheckerOneSided(t *testing.T) {
	g := graph.Path(8)
	// Two clusters of four with the same color on both — an adjacency
	// violation at the {3,4} edge.
	bad := &decomp.Decomposition{
		Cluster: []int{0, 0, 0, 0, 1, 1, 1, 1},
		Color:   []int{0, 0, 0, 0, 0, 0, 0, 0},
	}
	opt := faultedOpts(t, 11, sim.AdversaryConfig{DropProb: 0.2, StallPerRound: 2})
	ok, err := DecompositionDistributedOpts(g, bad, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("faulted decomposition checker accepted adjacent same-color clusters")
	}
}
