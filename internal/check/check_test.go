package check

import (
	"testing"

	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/prng"
)

func TestMISValidator(t *testing.T) {
	g := graph.Path(4)
	if err := MIS(g, []bool{true, false, true, false}); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
	if err := MIS(g, []bool{true, true, false, true}); err == nil {
		t.Error("adjacent members accepted")
	}
	if err := MIS(g, []bool{true, false, false, false}); err == nil {
		t.Error("non-maximal set accepted")
	}
	if err := MIS(g, []bool{true}); err == nil {
		t.Error("short indicator accepted")
	}
}

func TestColoringValidator(t *testing.T) {
	g := graph.Ring(4)
	if err := Coloring(g, []int{0, 1, 0, 1}, 2); err != nil {
		t.Errorf("valid coloring rejected: %v", err)
	}
	if err := Coloring(g, []int{0, 0, 1, 1}, 2); err == nil {
		t.Error("monochromatic edge accepted")
	}
	if err := Coloring(g, []int{0, 1, 0, 5}, 2); err == nil {
		t.Error("palette overflow accepted")
	}
	if err := Coloring(g, []int{0, 1, 0, -1}, 2); err == nil {
		t.Error("uncolored node accepted")
	}
	if err := Coloring(g, []int{0, 1}, 2); err == nil {
		t.Error("short array accepted")
	}
	// maxColors <= 0 skips the palette bound.
	if err := Coloring(g, []int{0, 7, 0, 7}, 0); err != nil {
		t.Errorf("palette bound not skipped: %v", err)
	}
}

func TestSplittingValidator(t *testing.T) {
	adjU := [][]int{{0, 1}, {1, 2}}
	if err := Splitting(adjU, []int{0, 1, 0}); err != nil {
		t.Errorf("valid split rejected: %v", err)
	}
	if err := Splitting(adjU, []int{0, 0, 1}); err == nil {
		t.Error("monochromatic U-node accepted")
	}
	if err := Splitting(adjU, []int{0, 2, 1}); err == nil {
		t.Error("color 2 accepted")
	}
	if err := Splitting([][]int{{5}}, []int{0}); err == nil {
		t.Error("out-of-range V reference accepted")
	}
}

func TestConflictFreeValidator(t *testing.T) {
	edges := [][]int{{0, 1, 2}, {1, 2}}
	// Node 0 has color 7 uniquely in edge 0; node 1 color 3 unique in edge 1.
	sets := [][]int{{7}, {3}, {4}}
	if err := ConflictFree(edges, sets); err != nil {
		t.Errorf("valid multicoloring rejected: %v", err)
	}
	// Both members of edge 1 share every color.
	bad := [][]int{{7}, {3}, {3}}
	if err := ConflictFree(edges, bad); err == nil {
		t.Error("conflicted edge accepted")
	}
	if err := ConflictFree([][]int{{9}}, sets); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := ConflictFree([][]int{{}}, sets); err != nil {
		t.Errorf("empty edge should be vacuously fine: %v", err)
	}
}

func TestMISDistributedAgreesWithValidator(t *testing.T) {
	rng := prng.New(12)
	for trial := 0; trial < 6; trial++ {
		g := graph.GNPConnected(40, 0.1, rng)
		// Build a valid MIS greedily.
		in := make([]bool, g.N())
		for v := 0; v < g.N(); v++ {
			ok := true
			for _, w := range g.Neighbors(v) {
				if in[w] {
					ok = false
				}
			}
			in[v] = ok
		}
		all, answers, err := MISDistributed(g, in)
		if err != nil {
			t.Fatal(err)
		}
		if !all {
			t.Fatalf("trial %d: distributed checker rejected a valid MIS (answers %v)", trial, answers)
		}
		// Corrupt: flip one node.
		in[trial%g.N()] = !in[trial%g.N()]
		all, _, err = MISDistributed(g, in)
		if err != nil {
			t.Fatal(err)
		}
		if all {
			t.Fatalf("trial %d: distributed checker accepted a corrupted MIS", trial)
		}
	}
}

func TestColoringDistributedAgreesWithValidator(t *testing.T) {
	g := graph.Ring(12)
	colors := []int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	all, _, err := ColoringDistributed(g, colors, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !all {
		t.Error("valid 2-coloring of C12 rejected")
	}
	colors[3] = 0 // monochromatic edge {3,4}? C12: 3-4 edge colors 0,0
	all, answers, err := ColoringDistributed(g, colors, 2)
	if err != nil {
		t.Fatal(err)
	}
	if all {
		t.Error("corrupted coloring accepted")
	}
	// Exactly the endpoints of violated edges answer no.
	if answers[3] || answers[2] || answers[4] {
		t.Error("wrong nodes flagged the violation")
	}
	if !answers[0] || !answers[7] {
		t.Error("distant nodes should still answer yes")
	}
}

func TestColoringDistributedPaletteBound(t *testing.T) {
	g := graph.Path(3)
	all, _, err := ColoringDistributed(g, []int{0, 9, 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if all {
		t.Error("out-of-palette color accepted")
	}
}

func TestDecompositionDistributedChecker(t *testing.T) {
	g := graph.Path(8)
	// Two clusters of four, alternating colors, radius <= 3.
	d := &decomp.Decomposition{
		Cluster: []int{0, 0, 0, 0, 1, 1, 1, 1},
		Color:   []int{0, 0, 0, 0, 1, 1, 1, 1},
	}
	ok, err := DecompositionDistributed(g, d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("valid decomposition rejected")
	}
	// Same color across adjacent clusters.
	bad := &decomp.Decomposition{
		Cluster: []int{0, 0, 0, 0, 1, 1, 1, 1},
		Color:   []int{0, 0, 0, 0, 0, 0, 0, 0},
	}
	ok, err = DecompositionDistributed(g, bad, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("same-color adjacency accepted")
	}
	// Radius too small for the flood: checker must reject.
	ok, err = DecompositionDistributed(g, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("radius-1 checker accepted radius-3 clusters")
	}
	// Disconnected cluster: members can never hear the minimum.
	disc := &decomp.Decomposition{
		Cluster: []int{0, 1, 0, 1, 2, 2, 2, 2},
		Color:   []int{0, 1, 0, 1, 2, 2, 2, 2},
	}
	ok, err = DecompositionDistributed(g, disc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("disconnected cluster accepted")
	}
	// Unclustered node.
	un := &decomp.Decomposition{
		Cluster: []int{-1, 0, 0, 0, 1, 1, 1, 1},
		Color:   []int{0, 0, 0, 0, 1, 1, 1, 1},
	}
	ok, err = DecompositionDistributed(g, un, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unclustered node accepted")
	}
}

func TestSplittingDistributedAgreesWithGlobal(t *testing.T) {
	adjU := [][]int{{0, 1, 2}, {1, 2, 3}}
	good := []int{0, 1, 0, 1}
	ok, err := SplittingDistributed(adjU, 4, good)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("valid split rejected by the distributed checker")
	}
	if err := Splitting(adjU, good); err != nil {
		t.Errorf("global validator disagrees: %v", err)
	}
	// U-node 0 sees only color 0.
	bad := []int{0, 0, 0, 1}
	ok, err = SplittingDistributed(adjU, 4, bad)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("monochromatic U-node accepted by the distributed checker")
	}
	// Out-of-range color.
	weird := []int{0, 2, 1, 1}
	ok, err = SplittingDistributed(adjU, 4, weird)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("color 2 accepted by the distributed checker")
	}
}
