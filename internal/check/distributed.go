package check

import (
	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/sim"
)

// This file contains the distributed checkers of Definition 2.2: constant-
// or d(n)-round CONGEST node programs where all nodes answer "yes" iff the
// proposed solution is valid. They exist to demonstrate that the problems
// studied are locally checkable in the paper's sense — the engine runs
// them, and the tests confirm the all-yes ⟺ valid equivalence, including
// on corrupted solutions.

// misChecker is the 1-round checker for MIS: exchange membership; a member
// with a member neighbor says no; a non-member with no member neighbor
// says no. The exchanged membership indicator is a single bit, so the
// checker declares PayloadBits() = 1 and the engines run it over packed
// bit planes; the neighbor scan then ORs whole inbox words — a set value
// bit anywhere means some neighbor is in the set.
type misChecker struct {
	ctx    *sim.NodeCtx
	inMIS  bool
	answer bool
}

// PayloadBits declares the 1-bit payload width that lets the engines pack
// this checker's message planes into bitmaps.
func (c *misChecker) PayloadBits() int { return 1 }

func (c *misChecker) Init(ctx *sim.NodeCtx) { c.ctx = ctx; c.answer = true }

func (c *misChecker) Round(r int, _ []sim.Message) ([]sim.Message, bool) {
	if r == 0 {
		bit := uint64(0)
		if c.inMIS {
			bit = 1
		}
		return c.ctx.BroadcastBit(bit), false
	}
	var in uint64
	for j := 0; j < c.ctx.BitWords(); j++ {
		pres, val := c.ctx.InBitWord(j)
		in |= pres & val
	}
	neighborIn := in != 0
	switch {
	case c.inMIS && neighborIn:
		c.answer = false // independence violated
	case !c.inMIS && !neighborIn:
		c.answer = false // maximality violated
	}
	return nil, true
}

func (c *misChecker) Output() bool { return c.answer }

// Options configures the verification network a distributed checker runs
// on. The zero value is the fault-free default every plain checker entry
// point uses.
type Options struct {
	// Adversary, when non-nil, injects its faults into the checker's own
	// CONGEST execution — the checker becomes the system under test: a
	// valid solution checked over a lossy network may be rejected (a
	// dropped membership bit looks like a maximality violation), but a
	// checker must never be tricked into accepting an invalid solution,
	// because every per-node "no" is computed from locally held inputs.
	// The experiments' E12 family measures exactly this asymmetry.
	Adversary *sim.Adversary
}

func (o Options) config(g *graph.Graph) sim.Config {
	return sim.Config{
		Graph:          g,
		MaxMessageBits: sim.CongestBits(g.N()),
		Adversary:      o.Adversary,
	}
}

// MISDistributed runs the 1-round distributed MIS checker and reports
// whether all nodes answered yes, plus the per-node answers.
func MISDistributed(g *graph.Graph, in []bool) (bool, []bool, error) {
	return MISDistributedOpts(g, in, Options{})
}

// MISDistributedOpts is MISDistributed on a configured network.
func MISDistributedOpts(g *graph.Graph, in []bool, opt Options) (bool, []bool, error) {
	res, err := sim.Execute(opt.config(g), func(v int) sim.NodeProgram[bool] {
		return &misChecker{inMIS: in[v]}
	})
	if err != nil {
		return false, nil, err
	}
	all := true
	for _, yes := range res.Outputs {
		all = all && yes
	}
	return all, res.Outputs, nil
}

// coloringChecker is the 1-round checker for proper coloring.
type coloringChecker struct {
	ctx       *sim.NodeCtx
	color     int
	maxColors int
	answer    bool
}

func (c *coloringChecker) Init(ctx *sim.NodeCtx) { c.ctx = ctx; c.answer = true }

func (c *coloringChecker) Round(r int, inbox []sim.Message) ([]sim.Message, bool) {
	if r == 0 {
		if c.color < 0 || (c.maxColors > 0 && c.color >= c.maxColors) {
			c.answer = false
		}
		// Shift by one to keep -1 encodable.
		return c.ctx.Broadcast(c.ctx.Uints(uint64(c.color + 1))), false
	}
	for _, m := range inbox {
		if m == nil {
			continue
		}
		x, _, ok := sim.ReadUint(m)
		if ok && int(x)-1 == c.color {
			c.answer = false
		}
	}
	return nil, true
}

func (c *coloringChecker) Output() bool { return c.answer }

// ColoringDistributed runs the 1-round distributed coloring checker.
func ColoringDistributed(g *graph.Graph, colors []int, maxColors int) (bool, []bool, error) {
	return ColoringDistributedOpts(g, colors, maxColors, Options{})
}

// ColoringDistributedOpts is ColoringDistributed on a configured network.
func ColoringDistributedOpts(g *graph.Graph, colors []int, maxColors int, opt Options) (bool, []bool, error) {
	res, err := sim.Execute(opt.config(g), func(v int) sim.NodeProgram[bool] {
		return &coloringChecker{color: colors[v], maxColors: maxColors}
	})
	if err != nil {
		return false, nil, err
	}
	all := true
	for _, yes := range res.Outputs {
		all = all && yes
	}
	return all, res.Outputs, nil
}

// decompChecker is the d-round checker for a strong-diameter network
// decomposition with cluster radius at most d (from the minimum-ID member):
// round 0 exchanges (cluster, color) and flags same-color different-cluster
// neighbors; subsequent rounds min-flood the smallest ID within the
// cluster along intra-cluster edges; after d rounds every member must have
// heard the cluster's minimum, which certifies intra-cluster reachability
// within d hops (radius-d soundness; a valid decomposition of diameter d
// always passes, and a passing instance has diameter at most 2d — the
// usual factor-two slack of ball-based local checking).
type decompChecker struct {
	ctx     *sim.NodeCtx
	cluster int
	color   int
	rounds  int
	minSeen uint64
	answer  bool
}

func (c *decompChecker) Init(ctx *sim.NodeCtx) {
	c.ctx = ctx
	c.answer = true
	c.minSeen = ctx.ID
}

func (c *decompChecker) Round(r int, inbox []sim.Message) ([]sim.Message, bool) {
	if c.cluster < 0 {
		c.answer = false
		return nil, true
	}
	// Every round: absorb (cluster, color, minID) from neighbors.
	for _, m := range inbox {
		if m == nil {
			continue
		}
		var vals [3]uint64
		if !sim.DecodeUintsInto(m, vals[:]) {
			continue
		}
		nbCluster, nbColor, nbMin := int(vals[0]), int(vals[1]), vals[2]
		if nbCluster != c.cluster {
			if nbColor == c.color {
				c.answer = false // adjacent same-color clusters
			}
			continue
		}
		if nbMin < c.minSeen {
			c.minSeen = nbMin
		}
	}
	if r >= c.rounds {
		// The flood is complete; nothing more can arrive in time.
		return nil, true
	}
	return c.ctx.Broadcast(c.ctx.Uints(uint64(c.cluster), uint64(c.color), c.minSeen)), false
}

func (c *decompChecker) Output() uint64 { return c.minSeen }

// DecompositionDistributed runs the radius-d distributed decomposition
// checker: it returns allYes = true iff no node saw a same-color foreign
// neighbor and, within every cluster, all members converged to one minimum
// ID within d rounds (certifying strong radius ≤ d from that member).
func DecompositionDistributed(g *graph.Graph, d *decomp.Decomposition, radius int) (bool, error) {
	return DecompositionDistributedOpts(g, d, radius, Options{})
}

// DecompositionDistributedOpts is DecompositionDistributed on a configured
// network.
func DecompositionDistributedOpts(g *graph.Graph, d *decomp.Decomposition, radius int, opt Options) (bool, error) {
	progs := make([]*decompChecker, g.N())
	res, err := sim.Execute(opt.config(g), func(v int) sim.NodeProgram[uint64] {
		p := &decompChecker{cluster: d.Cluster[v], color: d.Color[v], rounds: radius}
		progs[v] = p
		return p
	})
	if err != nil {
		return false, err
	}
	// Conjunction semantics: per-cluster agreement on the minimum plus the
	// local color checks.
	minOf := map[int]uint64{}
	for v := 0; v < g.N(); v++ {
		if !progs[v].answer {
			return false, nil
		}
		c := d.Cluster[v]
		if m, ok := minOf[c]; !ok || res.Outputs[v] < m {
			minOf[c] = res.Outputs[v]
		}
	}
	for v := 0; v < g.N(); v++ {
		if res.Outputs[v] != minOf[d.Cluster[v]] {
			return false, nil // some member did not hear the cluster min in time
		}
	}
	return true, nil
}
