package check

import (
	"randlocal/internal/graph"
	"randlocal/internal/sim"
)

// splitChecker is the 1-round distributed checker for the splitting
// problem, run on the bipartite communication graph: V-side nodes announce
// their color; U-side nodes verify they heard both.
type splitChecker struct {
	ctx    *sim.NodeCtx
	isU    bool
	color  int
	answer bool
}

func (c *splitChecker) Init(ctx *sim.NodeCtx) { c.ctx = ctx; c.answer = true }

func (c *splitChecker) Round(r int, inbox []sim.Message) ([]sim.Message, bool) {
	if r == 0 {
		if c.isU {
			return nil, false
		}
		if c.color != 0 && c.color != 1 {
			c.answer = false
			return nil, true
		}
		return c.ctx.Broadcast(c.ctx.Uints(uint64(c.color))), false
	}
	if c.isU {
		var saw [2]bool
		for _, m := range inbox {
			if m == nil {
				continue
			}
			x, _, ok := sim.ReadUint(m)
			if ok && x <= 1 {
				saw[x] = true
			}
		}
		if !saw[0] || !saw[1] {
			c.answer = false
		}
	}
	return nil, true
}

func (c *splitChecker) Output() bool { return c.answer }

// SplittingDistributed runs the 1-round distributed splitting checker of
// Definition 2.2 on the bipartite communication graph induced by adjU
// (U-nodes get indices [0, |U|), V-nodes [|U|, |U|+nv)). It returns
// whether all nodes answered yes, matching the global Splitting validator.
func SplittingDistributed(adjU [][]int, nv int, colors []int) (bool, error) {
	return SplittingDistributedOpts(adjU, nv, colors, Options{})
}

// SplittingDistributedOpts is SplittingDistributed on a configured network.
func SplittingDistributedOpts(adjU [][]int, nv int, colors []int, opt Options) (bool, error) {
	nu := len(adjU)
	b := graph.NewBuilder(nu + nv)
	for u, ns := range adjU {
		for _, v := range ns {
			b.AddEdge(u, nu+v)
		}
	}
	g := b.Graph()
	res, err := sim.Execute(opt.config(g), func(node int) sim.NodeProgram[bool] {
		if node < nu {
			return &splitChecker{isU: true}
		}
		return &splitChecker{color: colors[node-nu]}
	})
	if err != nil {
		return false, err
	}
	for _, yes := range res.Outputs {
		if !yes {
			return false, nil
		}
	}
	return true, nil
}
