// Package check implements local checkability (Definition 2.2 of the
// paper): for each problem it provides both a direct global validator (used
// pervasively by tests) and a genuine d(n)-round distributed checker node
// program in the CONGEST model whose conjunction-of-"yes" semantics matches
// the definition — all nodes output yes iff the proposed solution is valid.
package check

import (
	"fmt"

	"randlocal/internal/graph"
)

// MIS validates an independent-set indicator globally: no two adjacent
// members, and every non-member has a member neighbor (maximality).
func MIS(g *graph.Graph, in []bool) error {
	if len(in) != g.N() {
		return fmt.Errorf("check: indicator length %d for %d nodes", len(in), g.N())
	}
	var err error
	g.Edges(func(u, v int) {
		if err == nil && in[u] && in[v] {
			err = fmt.Errorf("check: adjacent MIS members %d and %d", u, v)
		}
	})
	if err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if in[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return fmt.Errorf("check: node %d is out of the MIS with no member neighbor", v)
		}
	}
	return nil
}

// Coloring validates a proper vertex coloring with colors in [0, maxColors)
// (maxColors <= 0 skips the palette bound).
func Coloring(g *graph.Graph, colors []int, maxColors int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("check: color array length %d for %d nodes", len(colors), g.N())
	}
	for v, c := range colors {
		if c < 0 {
			return fmt.Errorf("check: node %d is uncolored", v)
		}
		if maxColors > 0 && c >= maxColors {
			return fmt.Errorf("check: node %d uses color %d outside [0,%d)", v, c, maxColors)
		}
	}
	var err error
	g.Edges(func(u, v int) {
		if err == nil && colors[u] == colors[v] {
			err = fmt.Errorf("check: edge {%d,%d} is monochromatic (color %d)", u, v, colors[u])
		}
	})
	return err
}

// Splitting validates the GKM17 splitting problem (Lemma 3.4): given a
// bipartite instance where adjU[u] lists u's V-side neighbors, every U-node
// must see both colors among its neighbors (colors[v] ∈ {0, 1}).
func Splitting(adjU [][]int, colors []int) error {
	for u, ns := range adjU {
		var saw [2]bool
		for _, v := range ns {
			if v < 0 || v >= len(colors) {
				return fmt.Errorf("check: U-node %d references V-node %d out of range", u, v)
			}
			c := colors[v]
			if c != 0 && c != 1 {
				return fmt.Errorf("check: V-node %d has color %d, want 0 or 1", v, c)
			}
			saw[c] = true
		}
		if !saw[0] || !saw[1] {
			return fmt.Errorf("check: U-node %d is monochromatic", u)
		}
	}
	return nil
}

// ConflictFree validates a conflict-free hypergraph multi-coloring: for
// every hyperedge some color is held by exactly one of its members.
// colorSets[v] lists the colors assigned to node v.
func ConflictFree(edges [][]int, colorSets [][]int) error {
	for ei, e := range edges {
		if len(e) == 0 {
			continue
		}
		count := map[int]int{}
		for _, v := range e {
			if v < 0 || v >= len(colorSets) {
				return fmt.Errorf("check: edge %d references node %d out of range", ei, v)
			}
			for _, c := range colorSets[v] {
				count[c]++
			}
		}
		ok := false
		for _, k := range count {
			if k == 1 {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("check: hyperedge %d has no uniquely-held color", ei)
		}
	}
	return nil
}
