// Package core is the canonical entry point to the paper's primary
// contribution: network-decomposition constructions under restricted
// randomness budgets and with boosted success probability. The
// implementations live in internal/decomp (decompositions), with the
// randomness regimes in internal/randomness; this package names the four
// headline constructions after their theorems so that readers navigating
// by the paper find them in one place.
//
//	Theorem31  — one private random bit per poly(log n)-hop ball suffices
//	Theorem36  — poly(log n) globally shared bits suffice (no private coins)
//	Theorem37  — strong O(log² n) diameter under the Theorem 3.1 model
//	Theorem42  — shattering boosts the error to 1 − n^{−2^{ε·log² T}}
//
// Each returns a validated-checkable Decomposition plus the accounting the
// corresponding experiment (E2/E5/E6 in EXPERIMENTS.md) reports.
package core

import (
	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/randomness"
)

// Decomposition re-exports the strong-diameter decomposition type.
type Decomposition = decomp.Decomposition

// Configuration types for the headline constructions.
type (
	// LowRandConfig parameterizes Theorems 3.1 and 3.7.
	LowRandConfig = decomp.LowRandConfig
	// SharedRandConfig parameterizes Theorem 3.6.
	SharedRandConfig = decomp.SharedRandConfig
	// ShatteringConfig parameterizes Theorem 4.2.
	ShatteringConfig = decomp.ShatteringConfig
)

// Theorem31 builds an (O(log n), h·polylog n) strong-diameter network
// decomposition from one private random bit per holder, holders h-dominating.
func Theorem31(g *graph.Graph, src *randomness.Sparse, holders []int, cfg LowRandConfig) (*decomp.LowRandResult, error) {
	return decomp.LowRand(g, src, holders, cfg)
}

// Theorem36 builds an (O(log n), O(log² n)) strong-diameter decomposition
// from poly(log n) shared random bits and no private randomness.
func Theorem36(g *graph.Graph, shared *randomness.Shared, cfg SharedRandConfig) (*decomp.SharedRandResult, error) {
	return decomp.SharedRand(g, shared, cfg)
}

// Theorem37 builds a strong-diameter (O(log n), O(log² n)) decomposition
// under the Theorem 3.1 sparse-randomness model — the h-free variant.
func Theorem37(g *graph.Graph, src *randomness.Sparse, holders []int, cfg LowRandConfig) (*decomp.StrongLowRandResult, error) {
	return decomp.StrongLowRand(g, src, holders, cfg)
}

// Theorem42 runs the shattering construction: a randomized phase whose
// leftover nodes are repaired deterministically, leaving only the
// exponentially-unlikely large-separated-core failure event.
func Theorem42(g *graph.Graph, src randomness.Source, cfg ShatteringConfig) (*decomp.ShatteringResult, error) {
	return decomp.Shattering(g, src, cfg)
}
