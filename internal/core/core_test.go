package core

import (
	"testing"

	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

// TestTheoremEntryPoints exercises each headline construction once through
// the core package naming, asserting validity — the navigational contract
// that the theorem-named functions reach the same implementations as the
// decomp package.
func TestTheoremEntryPoints(t *testing.T) {
	t.Run("Theorem31", func(t *testing.T) {
		g := graph.Ring(1200)
		holders := decomp.GreedyDominatingSet(g, 2)
		src, err := randomness.NewSparse(holders, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Theorem31(g, src, holders, LowRandConfig{H: 2, BitsPerCluster: 64, RulingAlphaFactor: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Decomposition.Validate(g, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("Theorem36", func(t *testing.T) {
		g := graph.Grid(12, 12)
		shared := randomness.NewShared(200_000, prng.New(2))
		res, err := Theorem36(g, shared, SharedRandConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Decomposition.Validate(g, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("Theorem37", func(t *testing.T) {
		g := graph.Ring(1200)
		holders := decomp.GreedyDominatingSet(g, 2)
		src, err := randomness.NewSparse(holders, 48, 3)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Theorem37(g, src, holders, LowRandConfig{H: 2, BitsPerCluster: 64, RulingAlphaFactor: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Decomposition.Validate(g, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("Theorem42", func(t *testing.T) {
		g := graph.GNPConnected(300, 3.0/300, prng.New(4))
		res, err := Theorem42(g, randomness.NewFull(5), ShatteringConfig{ENPhases: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Decomposition.ValidateWeak(g, 0, 0); err != nil {
			t.Fatal(err)
		}
	})
}
