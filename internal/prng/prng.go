// Package prng provides a small, fast, deterministic pseudo-random number
// generator (SplitMix64) used as the machinery underneath every randomness
// source and graph generator in this repository.
//
// We deliberately do not use math/rand: the algorithms here must be
// reproducible bit-for-bit across Go versions (test fixtures and experiment
// tables depend on it), and the randomness-accounting layer in package
// randomness needs direct control over how many raw bits are drawn.
package prng

// SplitMix64 is the splittable 64-bit generator of Steele, Lea and Flood
// (OOPSLA 2014). It passes BigCrush, has period 2^64 and — crucially for the
// simulator — supports cheap deterministic "splitting": Split derives an
// independent child stream, which is how each node of a simulated network
// receives its own private stream from one experiment master seed.
type SplitMix64 struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Split returns a new generator whose stream is statistically independent of
// the parent's future output. The parent advances by one step.
func (s *SplitMix64) Split() *SplitMix64 {
	return &SplitMix64{state: s.Uint64() ^ 0x9E3779B97F4A7C15}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling, with rejection to
	// remove modulo bias entirely.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (s *SplitMix64) Int63() int64 { return int64(s.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform random bit as a bool.
func (s *SplitMix64) Bool() bool { return s.Uint64()&1 == 1 }

// Perm returns a uniform random permutation of [0, n).
func (s *SplitMix64) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs uniformly at random in place.
func (s *SplitMix64) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Hash64 mixes x through the SplitMix64 finalizer. It is a stateless helper
// for deterministic per-(seed,id) derivation: Hash64(seed^id) behaves like an
// independent uniform draw for distinct inputs.
func Hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
