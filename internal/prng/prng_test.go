package prng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between distinct seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and parent streams should not coincide.
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			t.Fatalf("parent/child collide at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnPanicsNonPositive(t *testing.T) {
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared-ish sanity: 6 buckets, 60000 draws, each bucket within
	// 10000±500 (5σ ≈ 456).
	r := New(99)
	buckets := make([]int, 6)
	for i := 0; i < 60000; i++ {
		buckets[r.Intn(6)]++
	}
	for b, c := range buckets {
		if c < 9500 || c > 10500 {
			t.Errorf("bucket %d count %d far from 10000", b, c)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.48 || mean > 0.52 {
		t.Errorf("Float64 mean %v far from 0.5", mean)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(8)
	ones := 0
	for i := 0; i < 10000; i++ {
		if r.Bool() {
			ones++
		}
	}
	if ones < 4700 || ones > 5300 {
		t.Errorf("Bool ones = %d out of 10000", ones)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 50)
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(4)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed multiset sum: %d != %d", got, sum)
	}
}

func TestHash64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Hash64(0x123456789abcdef)
	for bit := 0; bit < 64; bit++ {
		diff := base ^ Hash64(0x123456789abcdef^(1<<bit))
		pop := popcount(diff)
		if pop < 10 || pop > 54 {
			t.Errorf("bit %d: only %d output bits flipped", bit, pop)
		}
	}
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestHash64Stateless(t *testing.T) {
	if Hash64(17) != Hash64(17) {
		t.Error("Hash64 not deterministic")
	}
	if Hash64(17) == Hash64(18) {
		t.Error("Hash64 trivially collides")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
