// Package rulingset implements the deterministic (α, α·log n)-ruling set
// construction of Awerbuch, Goldberg, Luby and Plotkin [AGLP89] that the
// paper's Section 2 and Lemma 3.2 rely on: given U ⊆ V, it selects S ⊆ U
// with pairwise distance at least α such that every node of U has a node of
// S within α·b hops, where b is the identifier length in bits.
//
// The algorithm is the classic ID-bit recursion, evaluated bottom-up: at
// level ℓ the candidates are grouped by the identifier bits above position
// ℓ; within each group, candidates whose bit ℓ is 1 withdraw if a surviving
// candidate with bit ℓ 0 of the same group lies within distance α−1. Each
// level preserves the invariant that same-group survivors are pairwise at
// distance ≥ α, and after the top level all survivors are.
//
// The computation here is centralized but performs only operations with a
// known CONGEST realization — per level, one distance-(α−1) flood from the
// 0-side survivors — and reports the textbook round bound O(α·b) (with
// pipelining, [AGLP89, HKN16]); see AnalyticRounds.
package rulingset

import (
	"fmt"

	"randlocal/internal/graph"
)

// Result is a computed ruling set together with its certified parameters.
type Result struct {
	// Set lists the chosen nodes in increasing index order.
	Set []int
	// InSet marks membership, indexed by node.
	InSet []bool
	// Alpha is the guaranteed pairwise-distance lower bound.
	Alpha int
	// Levels is the number of identifier bits processed (b).
	Levels int
	// AnalyticRounds is the textbook CONGEST round bound α·b for this run.
	AnalyticRounds int
}

// Compute returns an (alpha, alpha·b)-ruling set of g with respect to the
// candidate set U (nil means U = V), using the given identifiers (nil means
// identifiers equal node indices). It requires alpha >= 1; alpha = 1 returns
// U itself (distinct nodes trivially have distance >= 1).
func Compute(g *graph.Graph, U []int, alpha int, ids []uint64) (*Result, error) {
	if alpha < 1 {
		return nil, fmt.Errorf("rulingset: alpha must be >= 1, got %d", alpha)
	}
	n := g.N()
	if ids == nil {
		ids = make([]uint64, n)
		for i := range ids {
			ids[i] = uint64(i)
		}
	}
	if len(ids) != n {
		return nil, fmt.Errorf("rulingset: %d ids for %d nodes", len(ids), n)
	}
	if U == nil {
		U = make([]int, n)
		for i := range U {
			U[i] = i
		}
	}
	inU := make([]bool, n)
	seenID := make(map[uint64]bool, len(U))
	var maxID uint64
	for _, u := range U {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("rulingset: candidate %d out of range", u)
		}
		if inU[u] {
			return nil, fmt.Errorf("rulingset: duplicate candidate %d", u)
		}
		if seenID[ids[u]] {
			return nil, fmt.Errorf("rulingset: duplicate identifier %d among candidates", ids[u])
		}
		seenID[ids[u]] = true
		inU[u] = true
		if ids[u] > maxID {
			maxID = ids[u]
		}
	}
	levels := 1
	for maxID>>uint(levels) > 0 {
		levels++
	}
	res := &Result{
		InSet:          append([]bool(nil), inU...),
		Alpha:          alpha,
		Levels:         levels,
		AnalyticRounds: alpha * levels,
	}
	if alpha == 1 || len(U) == 0 {
		for v := 0; v < n; v++ {
			if res.InSet[v] {
				res.Set = append(res.Set, v)
			}
		}
		return res, nil
	}
	for level := 0; level < levels; level++ {
		// Group survivors by the identifier bits above position `level`.
		groups := map[uint64][]int{}
		for v := 0; v < n; v++ {
			if res.InSet[v] {
				groups[ids[v]>>uint(level+1)] = append(groups[ids[v]>>uint(level+1)], v)
			}
		}
		for _, members := range groups {
			var zeros []int
			for _, v := range members {
				if ids[v]>>uint(level)&1 == 0 {
					zeros = append(zeros, v)
				}
			}
			if len(zeros) == 0 || len(zeros) == len(members) {
				continue // one-sided group: nothing to merge
			}
			// Distance-(alpha-1) exploration from the 0-side survivors;
			// 1-side survivors reached that closely withdraw.
			dist := g.MultiBFS(zeros)
			for _, v := range members {
				if ids[v]>>uint(level)&1 == 1 && dist[v] != graph.Unreachable && dist[v] < alpha {
					res.InSet[v] = false
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if res.InSet[v] {
			res.Set = append(res.Set, v)
		}
	}
	return res, nil
}

// Verify checks the two defining properties against the graph: members are
// pairwise at distance >= alpha, and every candidate of U has a member
// within beta hops. It is used by tests and by the composite algorithms
// that consume ruling sets (failing loudly beats silently wrong clusters).
func Verify(g *graph.Graph, U []int, res *Result, beta int) error {
	if len(res.Set) == 0 && len(U) > 0 {
		return fmt.Errorf("rulingset: empty set for %d candidates", len(U))
	}
	dist := g.MultiBFS(res.Set)
	for _, u := range U {
		if dist[u] == graph.Unreachable || dist[u] > beta {
			return fmt.Errorf("rulingset: candidate %d at distance %d from the set (bound %d)", u, dist[u], beta)
		}
	}
	for i, v := range res.Set {
		for _, w := range res.Set[i+1:] {
			if d := g.Dist(v, w); d != graph.Unreachable && d < res.Alpha {
				return fmt.Errorf("rulingset: members %d and %d at distance %d < α=%d", v, w, d, res.Alpha)
			}
		}
	}
	return nil
}
