package rulingset

import (
	"testing"
	"testing/quick"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
)

func allNodes(n int) []int {
	u := make([]int, n)
	for i := range u {
		u[i] = i
	}
	return u
}

func TestRulingSetOnPath(t *testing.T) {
	g := graph.Path(32)
	res, err := Compute(g, nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, allNodes(32), res, res.Alpha*res.Levels); err != nil {
		t.Fatal(err)
	}
	if len(res.Set) == 0 {
		t.Fatal("empty ruling set")
	}
}

func TestRulingSetSeparationExact(t *testing.T) {
	rng := prng.New(31)
	for _, alpha := range []int{2, 3, 5, 9} {
		g := graph.GNPConnected(80, 0.05, rng)
		res, err := Compute(g, nil, alpha, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range res.Set {
			for _, w := range res.Set[i+1:] {
				if d := g.Dist(v, w); d < alpha {
					t.Fatalf("alpha=%d: members %d,%d at distance %d", alpha, v, w, d)
				}
			}
		}
	}
}

func TestRulingSetDominationBound(t *testing.T) {
	rng := prng.New(17)
	for trial := 0; trial < 8; trial++ {
		g := graph.GNPConnected(60, 0.06, rng)
		alpha := 2 + trial%4
		res, err := Compute(g, nil, alpha, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, allNodes(g.N()), res, alpha*res.Levels); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRulingSetSubsetU(t *testing.T) {
	g := graph.Ring(24)
	U := []int{0, 3, 6, 9, 12, 15, 18, 21}
	res, err := Compute(g, U, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// S ⊆ U.
	inU := map[int]bool{}
	for _, u := range U {
		inU[u] = true
	}
	for _, s := range res.Set {
		if !inU[s] {
			t.Fatalf("member %d not a candidate", s)
		}
	}
	if err := Verify(g, U, res, res.Alpha*res.Levels); err != nil {
		t.Fatal(err)
	}
}

func TestRulingSetAlphaOne(t *testing.T) {
	g := graph.Complete(5)
	res, err := Compute(g, nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 5 {
		t.Errorf("alpha=1 should keep all candidates, got %d", len(res.Set))
	}
}

func TestRulingSetCompleteGraph(t *testing.T) {
	// In K_n all pairwise distances are 1, so alpha=2 forces exactly one
	// survivor.
	g := graph.Complete(17)
	res, err := Compute(g, nil, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 1 {
		t.Errorf("K17 alpha=2: |S| = %d, want 1", len(res.Set))
	}
}

func TestRulingSetEmptyU(t *testing.T) {
	g := graph.Ring(5)
	res, err := Compute(g, []int{}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 0 {
		t.Error("empty U should give empty S")
	}
}

func TestRulingSetErrors(t *testing.T) {
	g := graph.Ring(5)
	if _, err := Compute(g, nil, 0, nil); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := Compute(g, []int{0, 0}, 2, nil); err == nil {
		t.Error("duplicate candidate accepted")
	}
	if _, err := Compute(g, []int{9}, 2, nil); err == nil {
		t.Error("out-of-range candidate accepted")
	}
	if _, err := Compute(g, nil, 2, []uint64{1, 2}); err == nil {
		t.Error("short id array accepted")
	}
	if _, err := Compute(g, nil, 2, []uint64{7, 7, 1, 2, 3}); err == nil {
		t.Error("duplicate identifiers accepted")
	}
}

func TestRulingSetDeterministic(t *testing.T) {
	rng := prng.New(3)
	g := graph.GNPConnected(50, 0.08, rng)
	a, _ := Compute(g, nil, 3, nil)
	b, _ := Compute(g, nil, 3, nil)
	if len(a.Set) != len(b.Set) {
		t.Fatal("non-deterministic size")
	}
	for i := range a.Set {
		if a.Set[i] != b.Set[i] {
			t.Fatal("non-deterministic membership")
		}
	}
}

func TestRulingSetWithCustomIDs(t *testing.T) {
	rng := prng.New(8)
	g := graph.GNPConnected(40, 0.1, rng)
	ids := make([]uint64, 40)
	for i := range ids {
		ids[i] = uint64(1000 + i*3) // larger ID space -> more levels
	}
	res, err := Compute(g, nil, 3, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, allNodes(40), res, res.Alpha*res.Levels); err != nil {
		t.Fatal(err)
	}
}

func TestRulingSetDisconnectedGraph(t *testing.T) {
	g := graph.Disjoint(graph.Ring(10), graph.Ring(10))
	res, err := Compute(g, nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every component must be dominated.
	if err := Verify(g, allNodes(20), res, res.Alpha*res.Levels); err != nil {
		t.Fatal(err)
	}
}

func TestRulingSetPropertyQuick(t *testing.T) {
	f := func(seed uint64, nRaw, aRaw uint8) bool {
		n := int(nRaw%50) + 5
		alpha := int(aRaw%5) + 2
		g := graph.GNPConnected(n, 2.5/float64(n), prng.New(seed))
		res, err := Compute(g, nil, alpha, nil)
		if err != nil {
			return false
		}
		return Verify(g, allNodes(n), res, res.Alpha*res.Levels) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAnalyticRounds(t *testing.T) {
	g := graph.Path(100)
	res, _ := Compute(g, nil, 4, nil)
	if res.AnalyticRounds != 4*res.Levels {
		t.Errorf("AnalyticRounds = %d, want %d", res.AnalyticRounds, 4*res.Levels)
	}
	if res.Levels != 7 { // IDs up to 99 need 7 bits
		t.Errorf("Levels = %d, want 7", res.Levels)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := graph.Path(6)
	// Set {0, 1} violates alpha=3.
	bad := &Result{Set: []int{0, 1}, InSet: []bool{true, true, false, false, false, false}, Alpha: 3, Levels: 3}
	if err := Verify(g, allNodes(6), bad, 9); err == nil {
		t.Error("separation violation accepted")
	}
	// Set {0} with beta=2 leaves node 5 undominated.
	far := &Result{Set: []int{0}, InSet: []bool{true}, Alpha: 3, Levels: 3}
	if err := Verify(g, allNodes(6), far, 2); err == nil {
		t.Error("domination violation accepted")
	}
	// Empty set with non-empty U.
	empty := &Result{Alpha: 2, Levels: 1}
	if err := Verify(g, allNodes(6), empty, 10); err == nil {
		t.Error("empty set accepted")
	}
}
