package mis

import (
	"os"
	"testing"

	"randlocal/internal/sim"
)

// TestMain enables the engine's poisoned-Outbox check for the package's
// whole test run (Luby assembles its outbox in the NodeCtx.Outbox scratch).
func TestMain(m *testing.M) {
	sim.SetDebugOutboxCheck(true)
	os.Exit(m.Run())
}

// TestLubySteadyStateRoundsAllocNothing measures both halves of a Luby
// phase under testing.AllocsPerRun: the priority broadcast (injected draw,
// arena payload, engine-scratch outbox) and the losing comparison round
// (scratch-array decode, no sends), asserting zero allocations each.
func TestLubySteadyStateRoundsAllocNothing(t *testing.T) {
	const deg = 6
	nids := []uint64{100, 101, 102, 103, 104, 105}
	ctx, rotate := sim.NewBenchCtx(deg, 42, 1024, nids)
	prog := &lubyProgram{cfg: LubyConfig{Priority: func(v, phase int) uint64 { return 77 }}}
	prog.Init(ctx)

	empty := make([]sim.Message, deg)
	avg := testing.AllocsPerRun(100, func() {
		rotate()
		prog.Round(0, empty)
	})
	if avg != 0 {
		t.Errorf("priority round allocates %.1f times, want 0", avg)
	}

	// A neighbor with a higher priority: the node loses and stays silent.
	lose := make([]sim.Message, deg)
	lose[3] = sim.Uints(msgPriority, 1000)
	avg = testing.AllocsPerRun(100, func() {
		rotate()
		prog.Round(1, lose)
	})
	if avg != 0 {
		t.Errorf("comparison round allocates %.1f times, want 0", avg)
	}
}
