// Package mis implements maximal-independent-set algorithms: Luby's classic
// randomized algorithm [Lub86, ABI86] as a genuine CONGEST node program —
// the O(log n)-round baseline that Linial's question asks to derandomize —
// a limited-independence variant that draws its priorities from a k-wise
// family, and the derandomized MIS obtained by compiling the greedy SLOCAL
// algorithm through a network decomposition (package slocal), which is the
// P-RLOCAL = P-SLOCAL pipeline the paper builds on.
package mis

import (
	"fmt"

	"randlocal/internal/graph"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

// message types exchanged by the Luby program.
const (
	msgPriority = 1 // carries this phase's random priority
	msgIn       = 2 // "I joined the MIS"
	msgOut      = 3 // "a neighbor of mine joined; I am out"
)

// LubyConfig parameterizes the Luby program.
type LubyConfig struct {
	// PriorityBits is the width of each phase's random priority draw;
	// 0 means 2·⌈log₂ n⌉ + 8, making ties vanishingly rare (ties are
	// still broken deterministically by ID).
	PriorityBits int
	// Priority, when non-nil, overrides the private draw — the k-wise
	// experiments inject family-derived priorities here.
	Priority func(v, phase int) uint64
	// MaxPhases caps execution; 0 means 24·⌈log₂ n⌉ + 24 (the algorithm
	// needs O(log n) w.h.p.).
	MaxPhases int
	// Adversary, when non-nil, injects its faults (drops, delays, crashes,
	// churn, stalls) into the execution. Faults draw only from the
	// adversary stream of a SimulationKey, so attaching one never changes
	// the priority coins the nodes draw.
	Adversary *sim.Adversary
	// Exec carries the per-run execution knobs (scheduler, workers, re-shard
	// policy, engine pool, telemetry, progress hook); the zero value defers
	// to the package-wide defaults. Multi-tenant hosts set it per run.
	Exec sim.ExecOptions
}

// lubyProgram is one node of Luby's algorithm. Each phase takes three
// rounds: broadcast a fresh random priority; joiners (local priority maxima
// among still-active neighbors) announce IN; their neighbors announce OUT.
// IN/OUT announcements double as liveness tracking — a port that announced
// either is removed from the active neighbor set.
type lubyProgram struct {
	cfg        LubyConfig
	ctx        *sim.NodeCtx
	activePort []bool
	priority   uint64
	inMIS      bool
	decided    bool
}

func (p *lubyProgram) Init(ctx *sim.NodeCtx) {
	p.ctx = ctx
	p.cfg = p.cfg.withDefaults(ctx.N)
	p.activePort = make([]bool, ctx.Degree)
	for i := range p.activePort {
		p.activePort[i] = true
	}
}

func (c LubyConfig) withDefaults(n int) LubyConfig {
	lg := 0
	for 1<<lg < n {
		lg++
	}
	if c.PriorityBits == 0 {
		c.PriorityBits = 2*lg + 8
	}
	if c.MaxPhases == 0 {
		c.MaxPhases = 24*lg + 24
	}
	return c
}

func (p *lubyProgram) drawPriority(phase int) uint64 {
	if p.cfg.Priority != nil {
		return p.cfg.Priority(p.ctx.Index, phase)
	}
	return p.ctx.Rand.Bits(p.cfg.PriorityBits)
}

// broadcastActive sends payload on every still-active port, assembling the
// outbox in the engine-owned NodeCtx.Outbox scratch via BroadcastActive, so
// a phase costs no outbox allocation.
func (p *lubyProgram) broadcastActive(payload sim.Message) []sim.Message {
	return p.ctx.BroadcastActive(payload, p.activePort)
}

// absorb processes IN/OUT notifications (arriving at the start of a phase
// or during the decision rounds) and updates the active-port set. It
// returns true if some active neighbor joined the MIS.
func (p *lubyProgram) absorb(inbox []sim.Message) (neighborJoined bool) {
	for port, m := range inbox {
		if m == nil {
			continue
		}
		kind, _, ok := sim.ReadUint(m)
		if !ok {
			continue
		}
		switch kind {
		case msgIn:
			neighborJoined = true
			p.activePort[port] = false
		case msgOut:
			p.activePort[port] = false
		}
	}
	return neighborJoined
}

func (p *lubyProgram) Round(r int, inbox []sim.Message) ([]sim.Message, bool) {
	phase := r / 3
	t := r % 3
	if phase >= p.cfg.MaxPhases {
		return nil, true // give up undecided; the checker will flag it
	}
	switch t {
	case 0:
		// Late OUT notifications from the previous phase arrive here.
		if p.absorb(inbox) {
			// A neighbor joined at the very end of the last phase.
			p.decided = true
			return p.broadcastActive(p.ctx.Uints(msgOut)), true
		}
		p.priority = p.drawPriority(phase)
		return p.broadcastActive(p.ctx.Uints(msgPriority, p.priority)), false
	case 1:
		// Compare against active neighbors' priorities.
		win := true
		for port, m := range inbox {
			if m == nil || !p.activePort[port] {
				continue
			}
			var vals [2]uint64
			if !sim.DecodeUintsInto(m, vals[:]) || vals[0] != msgPriority {
				continue
			}
			theirs := vals[1]
			theirID := p.ctx.NeighborIDs[port]
			if theirs > p.priority || (theirs == p.priority && theirID > p.ctx.ID) {
				win = false
			}
		}
		if win {
			p.inMIS = true
			p.decided = true
			return p.broadcastActive(p.ctx.Uints(msgIn)), true
		}
		return nil, false
	default: // t == 2: process IN announcements
		if p.absorb(inbox) {
			p.decided = true
			return p.broadcastActive(p.ctx.Uints(msgOut)), true
		}
		return nil, false
	}
}

// Output reports (inMIS, decided); undecided nodes signal failure.
func (p *lubyProgram) Output() LubyOutput {
	return LubyOutput{InMIS: p.inMIS, Decided: p.decided}
}

// LubyOutput is the per-node result.
type LubyOutput struct {
	InMIS   bool
	Decided bool
}

// NewProgram returns one node's Luby state machine for direct use with the
// sim engines (the Luby helper wraps this with validation and unpacking).
func NewProgram(cfg LubyConfig) sim.NodeProgram[LubyOutput] {
	return &lubyProgram{cfg: cfg}
}

// Luby runs Luby's MIS algorithm on g in the CONGEST model and returns the
// indicator vector. It errors if any node exhausted MaxPhases undecided.
func Luby(g *graph.Graph, src randomness.Source, ids []uint64, cfg LubyConfig) ([]bool, *sim.Result[LubyOutput], error) {
	simCfg := sim.Config{
		Graph:          g,
		IDs:            ids,
		Source:         src,
		MaxMessageBits: sim.CongestBits(g.N()),
		Adversary:      cfg.Adversary,
	}
	cfg.Exec.Apply(&simCfg)
	res, err := sim.Execute(simCfg, func(int) sim.NodeProgram[LubyOutput] {
		return &lubyProgram{cfg: cfg}
	})
	if err != nil {
		return nil, nil, err
	}
	in := make([]bool, g.N())
	undecided := 0
	for v, out := range res.Outputs {
		in[v] = out.InMIS
		if !out.Decided {
			undecided++
		}
	}
	if undecided > 0 {
		return in, res, fmt.Errorf("mis: %d nodes undecided after all phases", undecided)
	}
	return in, res, nil
}

// Greedy computes the canonical sequential greedy MIS in index order — the
// locality-1 SLOCAL algorithm the paper cites as the motivating example for
// the SLOCAL model. It is the reference implementation for tests and the
// derandomization pipeline.
func Greedy(g *graph.Graph, order []int) []bool {
	n := g.N()
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	in := make([]bool, n)
	for _, v := range order {
		ok := true
		for _, w := range g.Neighbors(v) {
			if in[w] {
				ok = false
				break
			}
		}
		if ok {
			in[v] = true
		}
	}
	return in
}
