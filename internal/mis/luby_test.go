package mis

import (
	"math"
	"testing"

	"randlocal/internal/check"
	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

func TestLubyOnFamilies(t *testing.T) {
	rng := prng.New(55)
	families := map[string]*graph.Graph{
		"ring64":    graph.Ring(64),
		"clique32":  graph.Complete(32),
		"gnp256":    graph.GNPConnected(256, 4.0/256, rng),
		"tree100":   graph.RandomTree(100, rng),
		"grid10":    graph.Grid(10, 10),
		"star50":    graph.Star(50),
		"singleton": graph.NewBuilder(1).Graph(),
		"isolated":  graph.NewBuilder(5).Graph(),
		"disjoint":  graph.Disjoint(graph.Ring(8), graph.Complete(4)),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			in, res, err := Luby(g, randomness.NewFull(uint64(len(name))), nil, LubyConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := check.MIS(g, in); err != nil {
				t.Fatalf("invalid MIS: %v", err)
			}
			if res.MaxMessageBits > sim.CongestBits(g.N()) {
				t.Errorf("CONGEST violated: %d bits", res.MaxMessageBits)
			}
		})
	}
}

func TestLubyLogRounds(t *testing.T) {
	// O(log n) phases w.h.p.: rounds / log n bounded across sizes.
	rng := prng.New(2)
	for _, n := range []int{128, 512, 2048} {
		g := graph.GNPConnected(n, 6.0/float64(n), rng)
		_, res, err := Luby(g, randomness.NewFull(uint64(n)), nil, LubyConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if ratio := float64(res.Rounds) / math.Log2(float64(n)); ratio > 12 {
			t.Errorf("n=%d: rounds=%d, rounds/log n = %.1f", n, res.Rounds, ratio)
		}
	}
}

func TestLubyIsolatedNodesJoin(t *testing.T) {
	g := graph.NewBuilder(4).Graph()
	in, _, err := Luby(g, randomness.NewFull(1), nil, LubyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for v, b := range in {
		if !b {
			t.Errorf("isolated node %d not in MIS", v)
		}
	}
}

func TestLubyAdversarialIDs(t *testing.T) {
	rng := prng.New(9)
	g := graph.GNPConnected(128, 0.05, rng)
	ids := sim.AdversarialDescendingIDs(128)
	in, _, err := Luby(g, randomness.NewFull(3), ids, LubyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.MIS(g, in); err != nil {
		t.Fatal(err)
	}
}

func TestLubyKWisePriorities(t *testing.T) {
	// Limited independence ablation: priorities from a Θ(log n)-wise
	// family instead of fresh private coins. The MIS must still verify.
	rng := prng.New(10)
	g := graph.GNPConnected(256, 5.0/256, rng)
	fam, err := randomness.NewKWise(32, 64, prng.New(123))
	if err != nil {
		t.Fatal(err)
	}
	cfg := LubyConfig{
		Priority: func(v, phase int) uint64 {
			return fam.Value(uint64(v)*4096+uint64(phase)) & 0xFFFFFF
		},
	}
	in, _, err := Luby(g, randomness.NewFull(1), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.MIS(g, in); err != nil {
		t.Fatalf("k-wise MIS invalid: %v", err)
	}
}

func TestLubyDeterministicGivenSeed(t *testing.T) {
	g := graph.Ring(100)
	a, _, err := Luby(g, randomness.NewFull(7), nil, LubyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Luby(g, randomness.NewFull(7), nil, LubyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("Luby not deterministic for a fixed seed")
		}
	}
}

func TestLubyConcurrentEngineAgrees(t *testing.T) {
	rng := prng.New(77)
	g := graph.GNPConnected(80, 0.06, rng)
	cfg := sim.Config{Graph: g, Source: randomness.NewFull(4), MaxMessageBits: sim.CongestBits(g.N())}
	seq, err := sim.Run(cfg, func(int) sim.NodeProgram[LubyOutput] { return &lubyProgram{} })
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Source = randomness.NewFull(4)
	con, err := sim.RunConcurrent(cfg2, func(int) sim.NodeProgram[LubyOutput] { return &lubyProgram{} })
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.Outputs {
		if seq.Outputs[v] != con.Outputs[v] {
			t.Fatalf("node %d: sequential %+v vs concurrent %+v", v, seq.Outputs[v], con.Outputs[v])
		}
	}
}

func TestGreedyMISValid(t *testing.T) {
	rng := prng.New(6)
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(60, 0.1, rng)
		order := rng.Perm(60)
		in := Greedy(g, order)
		if err := check.MIS(g, in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	// Default order.
	in := Greedy(graph.Path(5), nil)
	if err := check.MIS(graph.Path(5), in); err != nil {
		t.Fatal(err)
	}
	if !in[0] || in[1] || !in[2] {
		t.Errorf("greedy on P5 index order = %v", in)
	}
}

func TestLubyRandomnessAccounted(t *testing.T) {
	g := graph.Ring(64)
	src := randomness.NewFull(5)
	_, _, err := Luby(g, src, nil, LubyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if src.Ledger().TrueBits() == 0 {
		t.Error("Luby consumed no accounted randomness")
	}
	// Ω(1) bits per node per phase; sanity upper bound too.
	perNode := float64(src.Ledger().TrueBits()) / 64
	if perNode < 8 || perNode > 4096 {
		t.Errorf("bits per node = %.0f looks wrong", perNode)
	}
}
