package mis

import (
	"testing"

	"randlocal/internal/check"
	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

func TestLubyBitOnFamilies(t *testing.T) {
	rng := prng.New(59)
	families := map[string]*graph.Graph{
		"ring64":    graph.Ring(64),
		"ring-odd":  graph.Ring(67),
		"clique32":  graph.Complete(32),
		"gnp256":    graph.GNPConnected(256, 4.0/256, rng),
		"tree100":   graph.RandomTree(100, rng),
		"grid10":    graph.Grid(10, 10),
		"star50":    graph.Star(50),
		"singleton": graph.NewBuilder(1).Graph(),
		"isolated":  graph.NewBuilder(5).Graph(),
		"disjoint":  graph.Disjoint(graph.Ring(8), graph.Complete(4)),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			in, res, err := LubyBit(g, randomness.NewFull(uint64(len(name))), nil, LubyBitConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := check.MIS(g, in); err != nil {
				t.Fatalf("invalid MIS: %v", err)
			}
			// Every wire message is the canonical 1-bit encoding: one byte.
			if g.M() > 0 && res.MaxMessageBits != 8 {
				t.Errorf("max message bits = %d, want 8", res.MaxMessageBits)
			}
		})
	}
}

// TestLubyBitPackedUnpackedEquivalence is the program-level half of the
// representation-independence proof: the same seed must produce a
// byte-identical Result packed and unpacked, on the sequential and parallel
// schedulers alike (the packed_test.go suite proves the engine-level claim
// with its own probe program).
func TestLubyBitPackedUnpackedEquivalence(t *testing.T) {
	rng := prng.New(61)
	g := graph.GNPConnected(200, 5.0/200, rng)
	run := func(unpacked bool, workers int) *sim.Result[LubyOutput] {
		cfg := sim.Config{
			Graph:          g,
			Source:         randomness.NewFull(11),
			MaxMessageBits: sim.CongestBits(g.N()),
			Unpacked:       unpacked,
		}
		factory := func(int) sim.NodeProgram[LubyOutput] {
			return &lubyBitProgram{cfg: LubyBitConfig{}}
		}
		var res *sim.Result[LubyOutput]
		var err error
		if workers > 0 {
			res, err = sim.RunParallel(cfg, factory, workers)
		} else {
			res, err = sim.Run(cfg, factory)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(true, 0)
	for _, sc := range []struct {
		label    string
		unpacked bool
		workers  int
	}{
		{"sequential/packed", false, 0},
		{"parallel/packed", false, 4},
		{"parallel/unpacked", true, 4},
	} {
		got := run(sc.unpacked, sc.workers)
		if got.Rounds != want.Rounds || got.Messages != want.Messages || got.BitsTotal != want.BitsTotal {
			t.Fatalf("%s: (rounds, messages, bits) = (%d, %d, %d), want (%d, %d, %d)",
				sc.label, got.Rounds, got.Messages, got.BitsTotal, want.Rounds, want.Messages, want.BitsTotal)
		}
		for v := range want.Outputs {
			if got.Outputs[v] != want.Outputs[v] {
				t.Fatalf("%s: node %d output %+v, want %+v", sc.label, v, got.Outputs[v], want.Outputs[v])
			}
		}
	}
}

// TestLubyBitAdversaryEquivalence checks that a faulted LubyBit run is
// representation-independent too: identical Results and injection records
// packed and unpacked. Validity is not asserted — lost announcements can
// break an MIS, which is the adversary layer's point.
func TestLubyBitAdversaryEquivalence(t *testing.T) {
	rng := prng.New(67)
	g := graph.GNPConnected(150, 0.04, rng)
	key := sim.NewSimulationKey(4242)
	run := func(unpacked bool) (*sim.Result[LubyOutput], error) {
		adv, err := sim.NewAdversary(key, sim.AdversaryConfig{DropProb: 0.02, DelayProb: 0.02, DelayMax: 2})
		if err != nil {
			t.Fatal(err)
		}
		cfg := LubyBitConfig{Adversary: adv, Unpacked: unpacked}
		_, res, err := LubyBit(g, key.FullSource(), nil, cfg)
		return res, err
	}
	want, errW := run(true)
	got, errG := run(false)
	if (errW == nil) != (errG == nil) {
		t.Fatalf("error mismatch: unpacked %v, packed %v", errW, errG)
	}
	if got.Rounds != want.Rounds || got.Messages != want.Messages || got.BitsTotal != want.BitsTotal {
		t.Fatalf("faulted packed run diverged: (%d, %d, %d) vs (%d, %d, %d)",
			got.Rounds, got.Messages, got.BitsTotal, want.Rounds, want.Messages, want.BitsTotal)
	}
	for v := range want.Outputs {
		if got.Outputs[v] != want.Outputs[v] {
			t.Fatalf("node %d: faulted outputs diverge packed vs unpacked", v)
		}
	}
	wi, gi := want.Telemetry.Injected, got.Telemetry.Injected
	if len(wi) != len(gi) {
		t.Fatalf("injected records diverge: %d vs %d events", len(wi), len(gi))
	}
	for i := range wi {
		if wi[i] != gi[i] {
			t.Fatalf("injected[%d] = %v, want %v", i, gi[i], wi[i])
		}
	}
}

func TestLubyBitDeterministicGivenSeed(t *testing.T) {
	g := graph.Ring(100)
	a, _, err := LubyBit(g, randomness.NewFull(7), nil, LubyBitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := LubyBit(g, randomness.NewFull(7), nil, LubyBitConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("LubyBit not deterministic for a fixed seed")
		}
	}
}

// TestLubyBitSteadyStateRoundsAllocNothing pins the zero-alloc claim of the
// packed path at the program level: with the coin injected through the Mark
// hook, every phase position of a packed lubyBitProgram round — mark
// broadcast, conflict scan, OUT scan — must allocate nothing.
func TestLubyBitSteadyStateRoundsAllocNothing(t *testing.T) {
	const deg = 70 // two mask words, so the scans cross a word boundary
	nids := make([]uint64, deg)
	for p := range nids {
		nids[p] = uint64(100 + p)
	}
	ctx, setIn, reset := sim.NewPackedBenchCtx(deg, 42, 1024, nids)
	prog := &lubyBitProgram{cfg: LubyBitConfig{Mark: func(v, phase int) bool { return phase%2 == 0 }}}
	prog.Init(ctx)

	r := 0
	avg := testing.AllocsPerRun(300, func() {
		reset()
		setIn(3, 1)  // a neighbor's announcement in word 0
		setIn(66, 0) // and a cleared bit past the word boundary
		prog.Round(r, nil)
		prog.decided = false // hold the node in steady state
		prog.inMIS = false
		r++
	})
	if avg != 0 {
		t.Errorf("packed LubyBit round allocates %.1f times, want 0", avg)
	}
}
