package mis

import (
	"fmt"

	"randlocal/internal/graph"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

// LubyBitConfig parameterizes the coin-flip Luby program (LubyBit).
type LubyBitConfig struct {
	// MaxPhases caps execution; 0 means 32·⌈log₂ n⌉ + 32. The coin-flip
	// variant with static ID tie-breaking needs O(log n) phases in
	// expectation on the bounded-average-degree families under study; the
	// cap is generous and undecided nodes surface as an error.
	MaxPhases int
	// Mark, when non-nil, overrides the private Bernoulli(≈1/2d) coin —
	// deterministic tests and the zero-alloc pins inject outcomes here.
	Mark func(v, phase int) bool
	// Adversary, when non-nil, injects its faults into the execution,
	// drawing only from the adversary stream of its SimulationKey.
	Adversary *sim.Adversary
	// Unpacked opts the run out of packed bit planes (A/B lever; forwarded
	// to sim.Config.Unpacked). Results are identical either way.
	Unpacked bool
	// Exec carries the per-run execution knobs (scheduler, workers, re-shard
	// policy, engine pool, telemetry, progress hook); the zero value defers
	// to the package-wide defaults. Multi-tenant hosts set it per run.
	Exec sim.ExecOptions
}

func (c LubyBitConfig) withDefaults(n int) LubyBitConfig {
	if c.MaxPhases == 0 {
		lg := 0
		for 1<<lg < n {
			lg++
		}
		c.MaxPhases = 32*lg + 32
	}
	return c
}

// lubyBitProgram is one node of the coin-flip variant of Luby's algorithm
// [Lub86, algorithm B shape], restated as a pure 1-bit protocol: every
// message on the wire is a single presence bit, so it declares PayloadBits()
// = 1 and the engines run it over packed bit planes, word-parallel end to
// end. Each phase takes three rounds, and a received bit's *meaning* is
// fixed by its position in the phase (no message-type field is needed):
//
//	t=0: arrivals are OUT announcements from nodes that decided at the end
//	     of the previous phase — drop those ports from the active mask.
//	     Then flip a Bernoulli(1/2^k) coin, k = ⌈log₂(2·max(deg,1))⌉ (≈
//	     1/(2d)); marked nodes broadcast the mark to active neighbors.
//	t=1: arrivals are neighbors' marks. A marked node with no marked
//	     neighbor of larger ID joins the MIS, as does any node whose active
//	     neighborhood has emptied; joiners announce IN to active neighbors
//	     and halt. Ties break on the static IDs (KT1), so two adjacent
//	     marked nodes never both join.
//	t=2: arrivals are IN announcements. A node that hears one goes OUT,
//	     announces OUT to its remaining active neighbors, and halts.
//
// All three decision scans are branch-free word operations over the
// InBitWord accessor: active-mask updates AND-NOT whole words, the join test
// ANDs the arrival words against a precomputed stronger-neighbor mask, and
// the IN test ORs the arrival words — 64 ports per operation.
type lubyBitProgram struct {
	cfg LubyBitConfig
	ctx *sim.NodeCtx
	// activeMask has bit p set while the neighbor on port p is still
	// undecided; strongerMask while that neighbor's ID exceeds ours.
	activeMask   []uint64
	strongerMask []uint64
	markBits     int
	marked       bool
	inMIS        bool
	decided      bool
}

// PayloadBits declares the 1-bit payload width that lets the engines pack
// this program's message planes into bitmaps.
func (p *lubyBitProgram) PayloadBits() int { return 1 }

func (p *lubyBitProgram) Init(ctx *sim.NodeCtx) {
	p.ctx = ctx
	p.cfg = p.cfg.withDefaults(ctx.N)
	nw := ctx.BitWords()
	masks := make([]uint64, 2*nw)
	p.activeMask, p.strongerMask = masks[:nw:nw], masks[nw:]
	for port := 0; port < ctx.Degree; port++ {
		p.activeMask[port>>6] |= 1 << (uint(port) & 63)
		if ctx.NeighborIDs[port] > ctx.ID {
			p.strongerMask[port>>6] |= 1 << (uint(port) & 63)
		}
	}
	d := ctx.Degree
	if d < 1 {
		d = 1
	}
	k := 1
	for 1<<k < 2*d {
		k++
	}
	p.markBits = k
}

func (p *lubyBitProgram) drawMark(phase int) bool {
	if p.cfg.Mark != nil {
		return p.cfg.Mark(p.ctx.Index, phase)
	}
	return p.ctx.Rand.Bits(p.markBits) == 0
}

func (p *lubyBitProgram) Round(r int, _ []sim.Message) ([]sim.Message, bool) {
	phase := r / 3
	if phase >= p.cfg.MaxPhases {
		return nil, true // give up undecided; the wrapper flags it
	}
	switch r % 3 {
	case 0:
		// OUT announcements from the previous phase's t=2 deciders.
		for j := range p.activeMask {
			pres, _ := p.ctx.InBitWord(j)
			p.activeMask[j] &^= pres
		}
		p.marked = p.drawMark(phase)
		if p.marked {
			return p.ctx.BroadcastBitMask(1, p.activeMask), false
		}
		return nil, false
	case 1:
		// Neighbors' marks. Win = marked with no stronger marked neighbor;
		// a node whose active neighborhood emptied (every neighbor went
		// OUT) joins unconditionally — maximality requires it.
		var conflict, activeAny uint64
		for j := range p.activeMask {
			pres, _ := p.ctx.InBitWord(j)
			conflict |= pres & p.strongerMask[j]
			activeAny |= p.activeMask[j]
		}
		if (p.marked && conflict == 0) || activeAny == 0 {
			p.inMIS = true
			p.decided = true
			return p.ctx.BroadcastBitMask(1, p.activeMask), true
		}
		return nil, false
	default:
		// IN announcements: every winner broadcast to all its active
		// neighbors, so hearing any bit means a neighbor joined.
		var joined uint64
		for j := range p.activeMask {
			pres, _ := p.ctx.InBitWord(j)
			joined |= pres
		}
		if joined != 0 {
			p.decided = true
			return p.ctx.BroadcastBitMask(1, p.activeMask), true
		}
		return nil, false
	}
}

// Output reports (inMIS, decided); undecided nodes signal failure.
func (p *lubyBitProgram) Output() LubyOutput {
	return LubyOutput{InMIS: p.inMIS, Decided: p.decided}
}

// NewBitProgram returns one node's coin-flip Luby state machine for direct
// use with the sim engines (LubyBit wraps it with validation and unpacking).
func NewBitProgram(cfg LubyBitConfig) sim.NodeProgram[LubyOutput] {
	return &lubyBitProgram{cfg: cfg}
}

// NewBitProgramSlab returns a factory handing out coin-flip Luby programs
// carved from one pre-allocated contiguous slab — the million-node
// construction idiom (see README "Memory layout"): per-node program structs
// collapse into a single allocation, and the index-ordered round sweep walks
// them in prefetch-friendly order.
func NewBitProgramSlab(n int, cfg LubyBitConfig) func(int) sim.NodeProgram[LubyOutput] {
	slab := make([]lubyBitProgram, n)
	return func(v int) sim.NodeProgram[LubyOutput] {
		slab[v] = lubyBitProgram{cfg: cfg}
		return &slab[v]
	}
}

// LubyBit runs the coin-flip (1-bit-message) variant of Luby's MIS algorithm
// on g in the CONGEST model and returns the indicator vector. Because every
// program declares a 1-bit payload width, the sequential and parallel engines
// execute it over packed bit planes; cfg.Unpacked opts out for A/B runs, with
// a byte-identical Result. Tie-breaking reads neighbor IDs, so the run uses
// the (default) KT1 knowledge. It errors if any node exhausted MaxPhases
// undecided.
func LubyBit(g *graph.Graph, src randomness.Source, ids []uint64, cfg LubyBitConfig) ([]bool, *sim.Result[LubyOutput], error) {
	simCfg := sim.Config{
		Graph:          g,
		IDs:            ids,
		Source:         src,
		MaxMessageBits: sim.CongestBits(g.N()),
		Adversary:      cfg.Adversary,
		Unpacked:       cfg.Unpacked,
	}
	cfg.Exec.Apply(&simCfg)
	res, err := sim.Execute(simCfg, func(int) sim.NodeProgram[LubyOutput] {
		return &lubyBitProgram{cfg: cfg}
	})
	if err != nil {
		return nil, nil, err
	}
	in := make([]bool, g.N())
	undecided := 0
	for v, out := range res.Outputs {
		in[v] = out.InMIS
		if !out.Decided {
			undecided++
		}
	}
	if undecided > 0 {
		return in, res, fmt.Errorf("mis: %d nodes undecided after all phases", undecided)
	}
	return in, res, nil
}
