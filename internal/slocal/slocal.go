// Package slocal implements the sequential local model SLOCAL of Ghaffari,
// Kuhn and Maus [GKM17] that the paper's framework revolves around
// (P-RLOCAL = P-SLOCAL, [GHK18]): an SLOCAL algorithm processes the nodes
// in an arbitrary order, deciding each node's output from the current state
// of its r-hop neighborhood.
//
// The package provides the two canonical locality-1 SLOCAL algorithms
// (greedy MIS and greedy (Δ+1)-coloring), a generic SLOCAL runner, and —
// the centerpiece — Compile, which turns any locality-r SLOCAL algorithm
// into a deterministic LOCAL-model schedule given a network decomposition
// of G^{2r+1}: clusters of the same decomposition color are processed in
// parallel (their r-hop dependency balls cannot collide), nodes within a
// cluster sequentially. This is exactly the derandomization route the paper
// describes in Section 2: a poly(log n) decomposition of a polylog power of
// G derandomizes every poly(log n)-round randomized algorithm.
package slocal

import (
	"fmt"
	"sort"

	"randlocal/internal/decomp"
	"randlocal/internal/graph"
)

// Algorithm is an SLOCAL algorithm with locality Radius: Process is called
// once per node, in schedule order, and may read (via the State accessor)
// the previously recorded outputs within Radius hops; it returns the
// node's output. State returns the recorded output of a node and whether
// it has been processed yet.
type Algorithm[T any] struct {
	Radius  int
	Process func(g *graph.Graph, v int, state func(u int) (T, bool)) T
}

// RunSequential executes the algorithm over the given order (nil = index
// order) as a plain sequential process — the SLOCAL model's own semantics.
func RunSequential[T any](g *graph.Graph, algo Algorithm[T], order []int) []T {
	n := g.N()
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	out := make([]T, n)
	done := make([]bool, n)
	state := func(u int) (T, bool) {
		return out[u], done[u]
	}
	for _, v := range order {
		out[v] = algo.Process(g, v, state)
		done[v] = true
	}
	return out
}

// CompileResult carries the compiled LOCAL execution's accounting.
type CompileResult[T any] struct {
	Outputs []T
	// AnalyticRounds is the LOCAL round cost of the schedule: for each
	// decomposition color, every cluster gathers its topology and boundary
	// state to its center, processes its nodes sequentially at the center,
	// and redistributes — O(colors · (clusterDiameter + radius)) rounds.
	AnalyticRounds int
	// Colors and MaxClusterDiameter echo the decomposition's parameters.
	Colors             int
	MaxClusterDiameter int
}

// Compile executes the SLOCAL algorithm as a deterministic LOCAL schedule
// driven by a network decomposition d of the power graph G^{2·Radius+1}.
// Same-color clusters of d are at mutual distance > 2·Radius+1 in g, so
// processing them in parallel is observationally identical to *some*
// sequential order — which is all an SLOCAL algorithm may assume. The
// decomposition must be valid for the power graph; Compile verifies the
// color-separation property it relies on and fails loudly otherwise.
func Compile[T any](g *graph.Graph, algo Algorithm[T], d *decomp.Decomposition) (*CompileResult[T], error) {
	n := g.N()
	if len(d.Cluster) != n {
		return nil, fmt.Errorf("slocal: decomposition covers %d nodes, graph has %d", len(d.Cluster), n)
	}
	// Verify the separation property on g directly: same-color different
	// clusters must be at distance > 2·Radius+1... equivalently, no two
	// such nodes within 2·Radius+1 hops. (This is what "valid
	// decomposition of G^{2r+1}" gives; checking it here catches callers
	// who pass a decomposition of the wrong power.)
	sep := 2*algo.Radius + 1
	for v := 0; v < n; v++ {
		nodes, _ := g.BFSWithin(v, sep)
		for _, w := range nodes {
			if w != v && d.Color[w] == d.Color[v] && d.Cluster[w] != d.Cluster[v] {
				return nil, fmt.Errorf("slocal: nodes %d and %d share color %d in different clusters within %d hops",
					v, w, d.Color[v], sep)
			}
		}
	}
	// Order colors ascending; within a color, clusters in parallel
	// (simulated here in cluster-label order, which is equivalent by the
	// separation argument); within a cluster, nodes in index order.
	colorOf := map[int][]int{}
	for v := 0; v < n; v++ {
		colorOf[d.Color[v]] = append(colorOf[d.Color[v]], v)
	}
	var colors []int
	for c := range colorOf {
		colors = append(colors, c)
	}
	sort.Ints(colors)

	out := make([]T, n)
	done := make([]bool, n)
	state := func(u int) (T, bool) { return out[u], done[u] }
	for _, c := range colors {
		members := colorOf[c]
		sort.Slice(members, func(i, j int) bool {
			if d.Cluster[members[i]] != d.Cluster[members[j]] {
				return d.Cluster[members[i]] < d.Cluster[members[j]]
			}
			return members[i] < members[j]
		})
		for _, v := range members {
			out[v] = algo.Process(g, v, state)
			done[v] = true
		}
	}
	maxDiam := d.MaxClusterDiameter(g)
	return &CompileResult[T]{
		Outputs:            out,
		AnalyticRounds:     len(colors) * (2*maxDiam + 2*algo.Radius + 2),
		Colors:             len(colors),
		MaxClusterDiameter: maxDiam,
	}, nil
}

// GreedyMIS is the locality-1 SLOCAL algorithm for maximal independent set:
// join unless an already-processed neighbor joined.
func GreedyMIS() Algorithm[bool] {
	return Algorithm[bool]{
		Radius: 1,
		Process: func(g *graph.Graph, v int, state func(int) (bool, bool)) bool {
			for _, w := range g.Neighbors(v) {
				if in, ok := state(int(w)); ok && in {
					return false
				}
			}
			return true
		},
	}
}

// GreedyColoring is the locality-1 SLOCAL algorithm for (Δ+1)-coloring:
// take the smallest color unused by already-processed neighbors.
func GreedyColoring() Algorithm[int] {
	return Algorithm[int]{
		Radius: 1,
		Process: func(g *graph.Graph, v int, state func(int) (int, bool)) int {
			used := map[int]bool{}
			for _, w := range g.Neighbors(v) {
				if c, ok := state(int(w)); ok {
					used[c] = true
				}
			}
			for c := 0; ; c++ {
				if !used[c] {
					return c
				}
			}
		},
	}
}

// DerandomizedMIS runs the full pipeline the paper's framework promises:
// decompose G^{2·1+1} = G³ (here via the deterministic sequential
// construction — swapping in any poly(log n) decomposition of the power
// graph would make the whole pipeline poly(log n)), then Compile greedy
// MIS through it. The output is a valid MIS produced with zero randomness.
func DerandomizedMIS(g *graph.Graph) (*CompileResult[bool], error) {
	algo := GreedyMIS()
	power := graph.Power(g, 2*algo.Radius+1)
	d := decomp.DeterministicSequential(power)
	return Compile(g, algo, d)
}

// DerandomizedColoring is the coloring counterpart of DerandomizedMIS.
func DerandomizedColoring(g *graph.Graph) (*CompileResult[int], error) {
	algo := GreedyColoring()
	power := graph.Power(g, 2*algo.Radius+1)
	d := decomp.DeterministicSequential(power)
	return Compile(g, algo, d)
}
