package slocal

import (
	"testing"

	"randlocal/internal/check"
	"randlocal/internal/decomp"
	"randlocal/internal/graph"
	"randlocal/internal/prng"
)

func TestRunSequentialGreedyMIS(t *testing.T) {
	rng := prng.New(1)
	for trial := 0; trial < 8; trial++ {
		g := graph.GNP(50, 0.1, rng)
		out := RunSequential(g, GreedyMIS(), rng.Perm(50))
		if err := check.MIS(g, out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRunSequentialGreedyColoring(t *testing.T) {
	rng := prng.New(2)
	g := graph.GNPConnected(60, 0.1, rng)
	out := RunSequential(g, GreedyColoring(), nil)
	if err := check.Coloring(g, out, g.MaxDegree()+1); err != nil {
		t.Fatal(err)
	}
}

func TestDerandomizedMIS(t *testing.T) {
	rng := prng.New(3)
	families := map[string]*graph.Graph{
		"ring40":   graph.Ring(40),
		"gnp80":    graph.GNPConnected(80, 0.05, rng),
		"tree60":   graph.RandomTree(60, rng),
		"clique12": graph.Complete(12),
		"single":   graph.NewBuilder(1).Graph(),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			res, err := DerandomizedMIS(g)
			if err != nil {
				t.Fatal(err)
			}
			if err := check.MIS(g, res.Outputs); err != nil {
				t.Fatalf("derandomized MIS invalid: %v", err)
			}
			if res.AnalyticRounds <= 0 && g.N() > 0 {
				t.Error("no round accounting")
			}
		})
	}
}

func TestDerandomizedMISIsDeterministic(t *testing.T) {
	g := graph.GNPConnected(60, 0.06, prng.New(7))
	a, err := DerandomizedMIS(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DerandomizedMIS(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Outputs {
		if a.Outputs[v] != b.Outputs[v] {
			t.Fatal("zero-randomness pipeline gave two answers")
		}
	}
}

func TestDerandomizedColoring(t *testing.T) {
	rng := prng.New(4)
	g := graph.GNPConnected(70, 0.06, rng)
	res, err := DerandomizedColoring(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Coloring(g, res.Outputs, g.MaxDegree()+1); err != nil {
		t.Fatal(err)
	}
}

func TestCompileMatchesSomeSequentialOrder(t *testing.T) {
	// The compiled schedule IS a sequential order (colors, then clusters,
	// then indices); re-running RunSequential with that order must agree.
	g := graph.GNPConnected(50, 0.08, prng.New(5))
	algo := GreedyMIS()
	power := graph.Power(g, 3)
	d := decomp.DeterministicSequential(power)
	res, err := Compile(g, algo, d)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the compile order.
	type key struct{ color, cluster, v int }
	var order []int
	for v := 0; v < g.N(); v++ {
		order = append(order, v)
	}
	// Sort by (color, cluster, index).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j], order[j-1]
			ka := key{d.Color[a], d.Cluster[a], a}
			kb := key{d.Color[b], d.Cluster[b], b}
			if ka.color < kb.color || (ka.color == kb.color && (ka.cluster < kb.cluster || (ka.cluster == kb.cluster && ka.v < kb.v))) {
				order[j], order[j-1] = order[j-1], order[j]
			}
		}
	}
	seq := RunSequential(g, algo, order)
	for v := range seq {
		if seq[v] != res.Outputs[v] {
			t.Fatalf("node %d: compiled %v vs sequential %v", v, res.Outputs[v], seq[v])
		}
	}
}

func TestCompileRejectsWrongPower(t *testing.T) {
	// A decomposition of G itself (power 1) does not satisfy the
	// 2r+1-separation needed by a locality-1 algorithm on most graphs;
	// Compile must detect the violation rather than silently produce a
	// wrong schedule.
	g := graph.Ring(30)
	d := decomp.DeterministicSequential(g) // decomposition of G, not G³
	_, err := Compile(g, GreedyMIS(), d)
	if err == nil {
		t.Skip("this ring decomposition happened to satisfy the separation; acceptable")
	}
}

func TestCompileRejectsSizeMismatch(t *testing.T) {
	g := graph.Ring(10)
	d := &decomp.Decomposition{Cluster: []int{0}, Color: []int{0}}
	if _, err := Compile(g, GreedyMIS(), d); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestGreedyColoringUsesSmallPalette(t *testing.T) {
	g := graph.Complete(6)
	out := RunSequential(g, GreedyColoring(), nil)
	// K6 greedy uses exactly colors 0..5.
	seen := map[int]bool{}
	for _, c := range out {
		seen[c] = true
	}
	if len(seen) != 6 {
		t.Errorf("K6 colors = %v", out)
	}
}
