package splitting

import (
	"testing"

	"randlocal/internal/check"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

func TestRandomInstanceShape(t *testing.T) {
	rng := prng.New(1)
	inst := RandomInstance(20, 100, 15, rng)
	if err := inst.Validate(15); err != nil {
		t.Fatal(err)
	}
	if len(inst.AdjU) != 20 || inst.NV != 100 {
		t.Fatalf("shape: %d U-nodes, %d V-nodes", len(inst.AdjU), inst.NV)
	}
	for u, ns := range inst.AdjU {
		seen := map[int]bool{}
		for _, v := range ns {
			if seen[v] {
				t.Fatalf("U-node %d has duplicate neighbor %d", u, v)
			}
			seen[v] = true
		}
	}
}

func TestValidateRejects(t *testing.T) {
	inst := &Instance{NV: 5, AdjU: [][]int{{0, 1}}}
	if err := inst.Validate(3); err == nil {
		t.Error("degree violation accepted")
	}
	bad := &Instance{NV: 2, AdjU: [][]int{{0, 7}}}
	if err := bad.Validate(1); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
}

func TestSolvePrivateSucceedsWHP(t *testing.T) {
	rng := prng.New(2)
	inst := RandomInstance(50, 300, 30, rng)
	fails := 0
	for trial := 0; trial < 50; trial++ {
		src := randomness.NewFull(uint64(trial))
		colors := SolvePrivate(inst, src)
		if !inst.Check(colors) {
			fails++
		}
	}
	// Per-U failure 2·2^-30; over 50 U-nodes and 50 trials ≈ 0 expected.
	if fails > 0 {
		t.Errorf("private coins failed %d/50 trials", fails)
	}
}

func TestSolveKWiseSucceeds(t *testing.T) {
	rng := prng.New(3)
	inst := RandomInstance(40, 200, 25, rng)
	ok := 0
	for trial := 0; trial < 30; trial++ {
		fam, err := randomness.NewKWise(16, 32, prng.New(uint64(trial)*31+7))
		if err != nil {
			t.Fatal(err)
		}
		colors := SolveKWise(inst, fam)
		if inst.Check(colors) {
			ok++
		}
	}
	if ok < 28 {
		t.Errorf("k-wise solver succeeded only %d/30 times", ok)
	}
}

func TestSolveEpsBiasSucceeds(t *testing.T) {
	rng := prng.New(4)
	inst := RandomInstance(40, 200, 25, rng)
	ok := 0
	for trial := 0; trial < 30; trial++ {
		gen, err := randomness.NewEpsBias(24, prng.New(uint64(trial)*17+3))
		if err != nil {
			t.Fatal(err)
		}
		colors := SolveEpsBias(inst, gen)
		if inst.Check(colors) {
			ok++
		}
	}
	if ok < 28 {
		t.Errorf("eps-bias solver (48 seed bits) succeeded only %d/30 times", ok)
	}
}

func TestSolveFromSharedSeedAccounting(t *testing.T) {
	rng := prng.New(5)
	inst := RandomInstance(30, 150, 20, rng)
	shared := randomness.NewShared(4096, prng.New(9))
	colors, used, err := SolveFromShared(inst, shared, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if used != 16*32 {
		t.Errorf("seed bits used = %d, want 512", used)
	}
	if len(colors) != 150 {
		t.Errorf("colors length %d", len(colors))
	}
	// Only the shared seed is true randomness — ledger agrees.
	if got := shared.Ledger().TrueBits(); got != 4096 {
		t.Errorf("true bits = %d", got)
	}
	// Agreement with the global checker.
	if inst.Check(colors) {
		adjU := inst.AdjU
		if err := check.Splitting(adjU, colors); err != nil {
			t.Errorf("check.Splitting disagrees with Instance.Check: %v", err)
		}
	}
}

func TestSolveFromSharedTooSmallSeed(t *testing.T) {
	inst := RandomInstance(5, 20, 4, prng.New(1))
	shared := randomness.NewShared(10, prng.New(2))
	if _, _, err := SolveFromShared(inst, shared, 16, 32); err == nil {
		t.Error("undersized shared seed accepted")
	}
}

func TestDeterministicSeedScan(t *testing.T) {
	rng := prng.New(6)
	inst := RandomInstance(30, 150, 20, rng)
	colors, tried, err := Deterministic(inst, 24, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Check(colors) {
		t.Fatal("deterministic scan returned an invalid coloring")
	}
	if tried < 1 || tried > 1000 {
		t.Errorf("tried = %d", tried)
	}
	t.Logf("deterministic splitting found a seed after %d candidates", tried)
}

func TestDeterministicExhaustion(t *testing.T) {
	// An unsatisfiable instance: a U-node with a single neighbor can never
	// see two colors.
	inst := &Instance{NV: 3, AdjU: [][]int{{0}}}
	if _, _, err := Deterministic(inst, 16, 50); err == nil {
		t.Error("unsatisfiable instance should exhaust the seed scan")
	}
}

func TestCheckRejectsMonochromatic(t *testing.T) {
	inst := &Instance{NV: 4, AdjU: [][]int{{0, 1, 2}}}
	if inst.Check([]int{1, 1, 1, 0}) {
		t.Error("monochromatic neighborhood accepted")
	}
	if !inst.Check([]int{1, 0, 1, 0}) {
		t.Error("valid split rejected")
	}
}

func TestRandomInstancePanicsOnInfeasibleDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degree > nv did not panic")
		}
	}()
	RandomInstance(2, 3, 5, prng.New(1))
}

func TestConditionalExpectationsAlwaysSucceeds(t *testing.T) {
	rng := prng.New(41)
	for trial := 0; trial < 20; trial++ {
		// deg=16 over 60 U-nodes: initial expectation 60·2^{-15} < 1.
		inst := RandomInstance(60, 300, 16, rng)
		colors, err := ConditionalExpectations(inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !inst.Check(colors) {
			t.Fatalf("trial %d: invalid coloring", trial)
		}
	}
}

func TestConditionalExpectationsIsDeterministic(t *testing.T) {
	inst := RandomInstance(30, 150, 14, prng.New(5))
	a, err := ConditionalExpectations(inst)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConditionalExpectations(inst)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("derandomized algorithm gave two answers")
		}
	}
}

func TestConditionalExpectationsRejectsSmallDegrees(t *testing.T) {
	// 8 U-nodes of degree 2: expectation 8·2^{-1} = 4 >= 1.
	inst := RandomInstance(8, 20, 2, prng.New(6))
	if _, err := ConditionalExpectations(inst); err == nil {
		t.Error("estimator should reject infeasible degrees")
	}
}

func TestConditionalExpectationsBoundaryExpectation(t *testing.T) {
	// One U-node with degree 1: expectation exactly 1 (2·2^{-1}) -> reject.
	inst := &Instance{NV: 2, AdjU: [][]int{{0}}}
	if _, err := ConditionalExpectations(inst); err == nil {
		t.Error("expectation exactly 1 should be rejected")
	}
}

func TestConditionalExpectationsOutOfRange(t *testing.T) {
	inst := &Instance{NV: 1, AdjU: [][]int{{5}}}
	if _, err := ConditionalExpectations(inst); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
}
