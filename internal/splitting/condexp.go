package splitting

import (
	"fmt"
	"math"
)

// ConditionalExpectations derandomizes the zero-round randomized splitting
// algorithm by the method of conditional expectations — the pessimistic-
// estimator argument underlying the P-RLOCAL = P-SLOCAL derandomization
// [GKM17, GHK18] that the paper's framework rests on.
//
// The estimator is the expected number of monochromatic U-nodes when the
// already-processed V-nodes keep their colors and the rest are uniform:
// for a U-node with no red neighbor fixed yet and f free neighbors, the
// probability of ending all-blue is 2^{-f} (and symmetrically). The
// initial estimate is Σ_u 2^{1-deg(u)} < 1 whenever degrees exceed
// log₂(2·|U|); processing V-nodes in any order and giving each the color
// that does not increase the estimator keeps it below 1, so the final —
// integral — count of monochromatic U-nodes is 0.
//
// Crucially this is an SLOCAL algorithm with locality 1: each V-node's
// decision reads only the current state of its own neighborhood. That is
// exactly why splitting is P-SLOCAL-complete while its LOCAL complexity is
// the open question. It returns the coloring, or an error when the initial
// expectation is ≥ 1 (degrees too small for the union bound).
func ConditionalExpectations(in *Instance) ([]int, error) {
	nu := len(in.AdjU)
	// Per-U-node bookkeeping: free-neighbor count and fixed-color counts.
	free := make([]int, nu)
	fixed := make([][2]int, nu)
	// adjV: reverse adjacency, V-node -> incident U-nodes.
	adjV := make([][]int, in.NV)
	for u, ns := range in.AdjU {
		free[u] = len(ns)
		for _, v := range ns {
			if v < 0 || v >= in.NV {
				return nil, fmt.Errorf("splitting: U-node %d references V-node %d out of range", u, v)
			}
			adjV[v] = append(adjV[v], u)
		}
	}
	// estimate(u) = Pr[u ends monochromatic | current fixing].
	estimate := func(u int) float64 {
		e := 0.0
		if fixed[u][0] == 0 { // could still end all-blue
			e += math.Pow(0.5, float64(free[u]))
		}
		if fixed[u][1] == 0 { // could still end all-red
			e += math.Pow(0.5, float64(free[u]))
		}
		return e
	}
	total := 0.0
	for u := 0; u < nu; u++ {
		total += estimate(u)
	}
	if total >= 1 {
		return nil, fmt.Errorf("splitting: initial failure expectation %.3f >= 1; degrees too small for the estimator", total)
	}
	colors := make([]int, in.NV)
	for v := 0; v < in.NV; v++ {
		// Try both colors; keep the one minimizing the estimator over the
		// affected U-nodes (all other terms are unchanged — locality 1).
		before := 0.0
		for _, u := range adjV[v] {
			before += estimate(u)
		}
		deltas := [2]float64{}
		for c := 0; c < 2; c++ {
			after := 0.0
			for _, u := range adjV[v] {
				free[u]--
				fixed[u][c]++
				after += estimate(u)
				fixed[u][c]--
				free[u]++
			}
			deltas[c] = after - before
		}
		choice := 0
		if deltas[1] < deltas[0] {
			choice = 1
		}
		colors[v] = choice
		for _, u := range adjV[v] {
			free[u]--
			fixed[u][choice]++
		}
		total += deltas[choice]
	}
	if !in.Check(colors) {
		// Cannot happen when the initial expectation was < 1: the
		// estimator never increases and ends integral.
		return nil, fmt.Errorf("splitting: estimator invariant violated (internal error)")
	}
	return colors, nil
}
