// Package splitting implements the splitting problem of Ghaffari, Kuhn and
// Maus [GKM17] that Lemma 3.4 of the paper is about: given a bipartite
// graph H = (U, V, E) where every U-node has at least Ω(log^c n) V-side
// neighbors, 2-color V so that every U-node sees both colors. The problem
// is P-SLOCAL-complete, yet randomized algorithms solve it in ZERO rounds —
// each V-node colors itself by a coin flip — which is why it "nicely
// captures the power of randomness".
//
// The three solvers mirror the lemma's three randomness regimes: fresh
// private coins (baseline), a k-wise independent family expanded from
// O(k·log n) shared bits, and a Naor–Naor-style small-bias space from
// O(log n) shared bits. All three are genuinely zero-round: a V-node's
// color is a function of its own identifier and the (shared) seed only.
package splitting

import (
	"fmt"

	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

// Instance is a bipartite splitting instance: AdjU[u] lists the V-side
// neighbors of U-node u; NV is the size of the V side.
type Instance struct {
	NV   int
	AdjU [][]int
}

// Validate checks index ranges and the minimum-degree requirement.
func (in *Instance) Validate(minDegree int) error {
	for u, ns := range in.AdjU {
		if len(ns) < minDegree {
			return fmt.Errorf("splitting: U-node %d has degree %d < required %d", u, len(ns), minDegree)
		}
		for _, v := range ns {
			if v < 0 || v >= in.NV {
				return fmt.Errorf("splitting: U-node %d references V-node %d out of range", u, v)
			}
		}
	}
	return nil
}

// Check reports whether colors solve the instance: every U-node sees both
// colors among its neighbors.
func (in *Instance) Check(colors []int) bool {
	for _, ns := range in.AdjU {
		var saw [2]bool
		for _, v := range ns {
			saw[colors[v]&1] = true
		}
		if !saw[0] || !saw[1] {
			return false
		}
	}
	return true
}

// RandomInstance generates an instance with nu U-nodes, nv V-nodes and
// exactly degree distinct neighbors per U-node, sampled uniformly.
func RandomInstance(nu, nv, degree int, rng *prng.SplitMix64) *Instance {
	if degree > nv {
		panic(fmt.Sprintf("splitting: degree %d exceeds nv %d", degree, nv))
	}
	inst := &Instance{NV: nv, AdjU: make([][]int, nu)}
	for u := range inst.AdjU {
		perm := rng.Perm(nv)
		inst.AdjU[u] = append([]int(nil), perm[:degree]...)
	}
	return inst
}

// SolvePrivate colors every V-node by one fresh private coin — the
// standard zero-round randomized algorithm. It consumes exactly NV true
// random bits from the source.
func SolvePrivate(in *Instance, src randomness.Source) []int {
	colors := make([]int, in.NV)
	for v := range colors {
		colors[v] = int(src.Stream(v).Bit())
	}
	return colors
}

// SolveKWise colors V-node v by the k-wise family bit at point v. With
// k = Θ(log n) the limited-independence Chernoff bound of [SSS95] gives
// the same w.h.p. guarantee as fresh coins, from only k·m seed bits.
func SolveKWise(in *Instance, fam *randomness.KWise) []int {
	colors := make([]int, in.NV)
	for v := range colors {
		colors[v] = int(fam.Bit(uint64(v)))
	}
	return colors
}

// SolveEpsBias colors V-node v by the small-bias generator's bit at
// position v — the Naor–Naor argument of Lemma 3.4 that pushes the seed
// down to O(log n) bits.
func SolveEpsBias(in *Instance, gen *randomness.EpsBias) []int {
	colors := make([]int, in.NV)
	for v := range colors {
		colors[v] = int(gen.Bit(uint64(v)))
	}
	return colors
}

// SolveFromShared derives a k-wise family from the shared seed and solves
// with it, returning the colors and the number of seed bits consumed —
// the exact quantity Lemma 3.4 bounds.
func SolveFromShared(in *Instance, shared *randomness.Shared, k int, m uint) ([]int, int, error) {
	fam, used, err := shared.KWiseFamily(k, m, 0)
	if err != nil {
		return nil, 0, err
	}
	return SolveKWise(in, fam), used, nil
}

// Deterministic solves the instance with zero randomness in poly time by
// the method of conditional expectations over pairwise-independent coins:
// it scans the ε-bias/k-wise seed space candidate-by-candidate and returns
// the first seed whose coloring works, together with the number of seeds
// tried. Lemma 3.4 guarantees a positive fraction of seeds succeed, so the
// scan is short; the existence of this centralized derandomization — and
// the absence of a poly(log n)-round LOCAL one — is exactly the paper's
// point about P-RLOCAL vs P-LOCAL being unlike P vs BPP.
func Deterministic(in *Instance, m uint, maxSeeds int) ([]int, int, error) {
	for trial := 0; trial < maxSeeds; trial++ {
		gen, err := randomness.NewEpsBiasFromSeed(m, uint64(trial)*2654435761, uint64(trial)^0x9E3779B9)
		if err != nil {
			return nil, 0, err
		}
		colors := SolveEpsBias(in, gen)
		if in.Check(colors) {
			return colors, trial + 1, nil
		}
	}
	return nil, maxSeeds, fmt.Errorf("splitting: no working seed among %d candidates", maxSeeds)
}
