package sim

import (
	"errors"
	"fmt"
	mathbits "math/bits"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
)

// bitGossip is the in-package 1-bit exercise program for the packed planes:
// an OR-flood whose nodes halt at staggered rounds. It declares PayloadBits()
// = 1, reads its inbox through every packed accessor (InBitWord, InBit), and
// alternates BroadcastBit with a masked broadcast to stronger-ID neighbors,
// so one run exercises the whole dual-backend accessor surface. The output
// mixes the flooded bit with a count of all presence bits ever heard, which
// makes any divergence in delivery — not just in the final OR — visible.
type bitGossip struct {
	rounds   int
	ctx      *NodeCtx
	stronger []uint64
	bit      uint64
	heard    uint64
}

func (g *bitGossip) PayloadBits() int { return 1 }

func (g *bitGossip) Init(ctx *NodeCtx) {
	g.ctx = ctx
	if ctx.Rand != nil {
		g.bit = ctx.Rand.Bits(1)
	} else {
		g.bit = ctx.ID & 1
	}
	g.stronger = make([]uint64, ctx.BitWords())
	for p := 0; p < ctx.Degree; p++ {
		if ctx.NeighborIDs[p] > ctx.ID {
			g.stronger[p>>6] |= 1 << (uint(p) & 63)
		}
	}
}

func (g *bitGossip) Round(r int, _ []Message) ([]Message, bool) {
	var heardOne uint64
	for j := 0; j < g.ctx.BitWords(); j++ {
		pres, val := g.ctx.InBitWord(j)
		g.heard += uint64(mathbits.OnesCount64(pres))
		heardOne |= pres & val
	}
	if b, ok := g.ctx.InBit(0); ok {
		g.heard += b << 8
	}
	if heardOne != 0 {
		g.bit = 1
	}
	if r >= g.rounds+int(g.ctx.ID%3) {
		return nil, true
	}
	if r%2 == 1 {
		return g.ctx.BroadcastBitMask(g.bit, g.stronger), false
	}
	return g.ctx.BroadcastBit(g.bit), false
}

func (g *bitGossip) Output() uint64 { return g.bit<<32 | g.heard }

// requirePackedModes asserts that a run actually executed over packed planes:
// every telemetry lane of every round must report DeliverPacked. Without this
// the equivalence tests could pass vacuously with packing silently disabled.
func requirePackedModes(t *testing.T, label string, res *Result[uint64]) {
	t.Helper()
	if res.Telemetry == nil {
		t.Fatalf("%s: no telemetry collected", label)
	}
	for r, rs := range res.Telemetry.Rounds {
		for w, m := range rs.Mode {
			if m != DeliverPacked {
				t.Fatalf("%s: round %d lane %d mode %v, want packed", label, r, w, m)
			}
		}
	}
}

// requireStagedSum asserts the telemetry invariant that per-lane staged
// counts sum to Result.Messages — on packed runs the counts are tallied by
// the word-walking harvest, so this pins its accounting.
func requireStagedSum(t *testing.T, label string, res *Result[uint64]) {
	t.Helper()
	sum := 0
	for _, rs := range res.Telemetry.Rounds {
		for _, s := range rs.Staged {
			sum += s
		}
	}
	if int64(sum) != res.Messages {
		t.Fatalf("%s: staged sum %d != messages %d", label, sum, res.Messages)
	}
}

// TestPackedUnpackedEquivalence is the representation-independence proof of
// the bit planes: on every graph family and randomness regime, the packed
// run must produce a byte-identical Result to the unpacked run of the same
// program — across all three schedulers, worker counts, and reshard
// policies. Word-boundary-hostile sizes (odd rings, a star whose hub spans
// multiple words) are in the family on purpose.
func TestPackedUnpackedEquivalence(t *testing.T) {
	defer SetTelemetry(TelemetryEnabled())
	SetTelemetry(true)
	rng := prng.New(2027)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring-odd", graph.Ring(67)},
		{"star", graph.Star(71)},
		{"gnp", graph.GNPConnected(120, 0.04, rng)},
		{"powerlaw", graph.PowerLaw(130, 3, rng)},
	}
	for _, tg := range graphs {
		n := tg.g.N()
		key := NewSimulationKey(uint64(n)*17 + 3)
		ids := RandomIDs(n, n, key)
		factory := func(int) NodeProgram[uint64] { return &bitGossip{rounds: graph.Diameter(tg.g) + 2} }
		for _, regime := range []string{"deterministic", "full"} {
			t.Run(tg.name+"/"+regime, func(t *testing.T) {
				base := Config{Graph: tg.g, IDs: ids, MaxMessageBits: CongestBits(n)}
				prep := func(cfg Config) Config {
					if regime == "full" {
						cfg.Source = key.FullSource()
					}
					return cfg
				}

				unpacked := base
				unpacked.Unpacked = true
				want, err := Run(prep(unpacked), factory)
				if err != nil {
					t.Fatal(err)
				}
				for _, rs := range want.Telemetry.Rounds {
					if rs.Mode[0] == DeliverPacked {
						t.Fatal("Unpacked run reported packed delivery")
					}
				}

				got, err := Run(prep(base), factory)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEqual(t, "sequential/packed", want, got)
				requirePackedModes(t, "sequential/packed", got)
				requireStagedSum(t, "sequential/packed", got)

				got, err = RunConcurrent(prep(base), factory)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEqual(t, "concurrent", want, got)

				for _, workers := range []int{1, 2, 3, 8} {
					for _, policy := range []ReshardPolicy{ReshardAdaptive, ReshardHalving, ReshardOff} {
						for _, unpack := range []bool{false, true} {
							cfg := base
							cfg.Reshard = policy
							cfg.Unpacked = unpack
							got, err := RunParallel(prep(cfg), factory, workers)
							if err != nil {
								t.Fatal(err)
							}
							label := fmt.Sprintf("parallel/workers=%d/%v/unpacked=%v", workers, policy, unpack)
							assertResultsEqual(t, label, want, got)
							if !unpack {
								requirePackedModes(t, label, got)
								requireStagedSum(t, label, got)
							}
						}
					}
				}
			})
		}
	}
}

// TestPackedFaultEquivalence extends the proof to faulted executions: with
// the PR 6 adversary injecting deterministic drop/delay/crash/churn/stall
// schedules, a packed run must match the unpacked run byte-for-byte on every
// Result field and on the injected-event record — fates hash (round, slot)
// and the canonical 1-bit wire encoding is 8 bits in both representations,
// so nothing about the fault schedule may shift.
func TestPackedFaultEquivalence(t *testing.T) {
	rng := prng.New(907)
	g := graph.GNPConnected(120, 0.05, rng)
	n := g.N()
	key := NewSimulationKey(uint64(n)*29 + 7)
	ids := RandomIDs(n, n, key)
	factory := func(int) NodeProgram[uint64] { return &bitGossip{rounds: graph.Diameter(g) + 2} }
	budgets := []struct {
		name string
		cfg  AdversaryConfig
	}{
		{"drop", AdversaryConfig{DropProb: 0.10}},
		{"crash", AdversaryConfig{CrashPerRound: 2}},
		{"kitchen-sink", AdversaryConfig{
			DropProb: 0.05, DelayProb: 0.05, DelayMax: 2,
			CrashPerRound: 1, ChurnPerRound: 2, HealPerRound: 1, StallPerRound: 2,
		}},
	}
	for _, b := range budgets {
		t.Run(b.name, func(t *testing.T) {
			base := Config{
				Graph: g, IDs: ids, MaxMessageBits: CongestBits(n),
				Adversary: mustAdversary(t, key, b.cfg),
			}
			unpacked := base
			unpacked.Unpacked = true
			unpacked.Source = key.FullSource()
			want, err := Run(unpacked, factory)
			if err != nil {
				t.Fatal(err)
			}

			cfg := base
			cfg.Source = key.FullSource()
			got, err := Run(cfg, factory)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, "sequential/packed", want, got)
			assertInjectedEqual(t, "sequential/packed", want.Telemetry, got.Telemetry)

			cfg = base
			cfg.Source = key.FullSource()
			got, err = RunConcurrent(cfg, factory)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, "concurrent", want, got)
			assertInjectedEqual(t, "concurrent", want.Telemetry, got.Telemetry)

			for _, workers := range []int{1, 2, 3, 8} {
				for _, policy := range []ReshardPolicy{ReshardAdaptive, ReshardHalving, ReshardOff} {
					cfg := base
					cfg.Source = key.FullSource()
					cfg.Reshard = policy
					got, err := RunParallel(cfg, factory, workers)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("parallel/workers=%d/%v", workers, policy)
					assertResultsEqual(t, label, want, got)
					assertInjectedEqual(t, label, want.Telemetry, got.Telemetry)
				}
			}
		})
	}
}

// TestPackedGating pins the conditions under which packing may NOT engage:
// a program that never declared a payload width, a mix where one program
// declares more than a bit, and a bandwidth cap below the canonical 8-bit
// wire encoding (which must surface as the unpacked path's BandwidthError,
// not be silently absorbed by a bitmap).
func TestPackedGating(t *testing.T) {
	defer SetTelemetry(TelemetryEnabled())
	SetTelemetry(true)
	g := graph.Ring(40)
	base := Config{Graph: g, MaxMessageBits: CongestBits(g.N())}

	res, err := Run(base, func(int) NodeProgram[uint64] { return &randFlood{rounds: 3} })
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range res.Telemetry.Rounds {
		if rs.Mode[0] == DeliverPacked {
			t.Fatal("undeclared program ran packed")
		}
	}

	res, err = Run(base, func(v int) NodeProgram[uint64] {
		if v == 7 {
			return &wideDeclarer{}
		}
		return &bitGossip{rounds: 3}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range res.Telemetry.Rounds {
		if rs.Mode[0] == DeliverPacked {
			t.Fatal("mixed-width run ran packed")
		}
	}

	narrow := base
	narrow.MaxMessageBits = 4
	_, err = Run(narrow, func(int) NodeProgram[uint64] { return &bitGossip{rounds: 3} })
	var bw *BandwidthError
	if !errors.As(err, &bw) {
		t.Fatalf("MaxMessageBits=4 packed-capable run: got %v, want BandwidthError", err)
	}
}

// wideDeclarer declares a 64-bit payload; its presence in a run must veto
// packing.
type wideDeclarer struct {
	randFlood
}

func (w *wideDeclarer) PayloadBits() int { return 64 }

// TestDenseCutoverUnit pins the shared density cut-off the sequential
// finishRound, the parallel scatter, and both packed sub-paths decide with:
// dense iff denseCutover·staged ≥ window, with the constant at 8.
func TestDenseCutoverUnit(t *testing.T) {
	if denseCutover != 8 {
		t.Fatalf("denseCutover = %d, want 8", denseCutover)
	}
	cases := []struct {
		staged, window int
		want           bool
	}{
		{0, 1, false},
		{1, 8, true},
		{1, 9, false},
		{7, 64, false},
		{8, 64, true},
		{64, 128, true},
	}
	for _, c := range cases {
		if got := denseDelivery(c.staged, c.window); got != c.want {
			t.Errorf("denseDelivery(%d, %d) = %v, want %v", c.staged, c.window, got, c.want)
		}
	}
}

// modeProbe broadcasts every round from a fixed sender set until a fixed
// round, then halts everywhere — a program whose per-round staged count is
// known exactly, so a test can pin which delivery mode a plane window of
// known size must pick.
type modeProbe struct {
	rounds int
	send   bool
	ctx    *NodeCtx
}

func (p *modeProbe) Init(ctx *NodeCtx) { p.ctx = ctx }

func (p *modeProbe) Round(r int, _ []Message) ([]Message, bool) {
	if r >= p.rounds {
		return nil, true
	}
	if !p.send {
		return nil, false
	}
	return p.ctx.Broadcast(p.ctx.Uints(1)), false
}

func (p *modeProbe) Output() uint64 { return 0 }

// TestDenseCutoverPaths drives the two unpacked decision sites — the
// sequential engine's finishRound and the parallel workers' scatter —
// through staged counts on either side of the 8× cut-off and asserts the
// telemetry mode flips exactly there. Ring(64) with two workers gives each
// lane a 64-slot inbox window, so 8 staged arrivals is the dense threshold.
func TestDenseCutoverPaths(t *testing.T) {
	defer SetTelemetry(TelemetryEnabled())
	SetTelemetry(true)
	g := graph.Ring(64)
	run := func(t *testing.T, senders []int, parallel bool) *Result[uint64] {
		t.Helper()
		isSender := make([]bool, g.N())
		for _, v := range senders {
			isSender[v] = true
		}
		cfg := Config{Graph: g, MaxMessageBits: CongestBits(g.N()), Reshard: ReshardOff}
		factory := func(v int) NodeProgram[uint64] { return &modeProbe{rounds: 3, send: isSender[v]} }
		var res *Result[uint64]
		var err error
		if parallel {
			res, err = RunParallel(cfg, factory, 2)
		} else {
			res, err = Run(cfg, factory)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	all := make([]int, 64)
	for v := range all {
		all[v] = v
	}

	// Sequential window = 128 slots: 14 staged stays sparse, 16 flips dense.
	// Senders v send to v±1, so k ring-contiguous senders stage 2k slots.
	for _, c := range []struct {
		k    int
		want DeliveryMode
	}{{7, DeliverSparse}, {8, DeliverDense}} {
		res := run(t, all[:c.k], false)
		for r := 0; r < 3; r++ {
			if got := res.Telemetry.Rounds[r].Mode[0]; got != c.want {
				t.Errorf("sequential k=%d round %d: mode %v, want %v", c.k, r, got, c.want)
			}
		}
	}

	// Parallel, workers=2, ReshardOff: shards are nodes [0,32) and [32,64),
	// each with a 64-slot window. Senders {1,2,3} land 6 arrivals in shard 0
	// (sparse); {1,2,3,4} land 8 (exactly dense). Shard 1 hears nothing and
	// must stay sparse either way.
	for _, c := range []struct {
		senders []int
		want    DeliveryMode
	}{{[]int{1, 2, 3}, DeliverSparse}, {[]int{1, 2, 3, 4}, DeliverDense}} {
		res := run(t, c.senders, true)
		for r := 0; r < 3; r++ {
			if got := res.Telemetry.Rounds[r].Mode[0]; got != c.want {
				t.Errorf("parallel senders=%v round %d: lane 0 mode %v, want %v", c.senders, r, got, c.want)
			}
			if got := res.Telemetry.Rounds[r].Mode[1]; got != DeliverSparse {
				t.Errorf("parallel senders=%v round %d: lane 1 mode %v, want sparse", c.senders, r, got)
			}
		}
	}
}
