package sim

// NewBenchCtx returns a NodeCtx wired the way the sequential engine wires
// one — an engine-owned Outbox scratch and a per-round payload arena — but
// outside any engine, plus a rotate function that advances the arena exactly
// as the engine does between rounds. It exists so a test can drive a single
// node program's Round method directly, in particular under
// testing.AllocsPerRun to assert that a steady-state round of a migrated
// (Outbox + arena) program allocates nothing:
//
//	ctx, rotate := sim.NewBenchCtx(deg, 42, 1<<10, ids)
//	prog.Init(ctx)
//	avg := testing.AllocsPerRun(100, func() {
//		rotate() // recycle the round-before-last's payload buffer
//		prog.Round(r, inbox)
//	})
//
// The inbox handed to Round must be built outside the measured loop (with
// the package-level Uints, not ctx.Uints): rotation recycles arena buffers,
// so arena-carved inbox payloads would be overwritten by the program's own
// carves mid-measurement. ctx.Rand is nil; programs whose measured round
// draws randomness should use their injection hooks (ENConfig.Radius,
// LubyConfig.Priority, coloring.Config.Candidate, ...) instead.
func NewBenchCtx(degree int, id uint64, n int, neighborIDs []uint64) (*NodeCtx, func()) {
	a := &arena{}
	ctx := &NodeCtx{
		ID:          id,
		Degree:      degree,
		N:           n,
		NeighborIDs: neighborIDs,
		Outbox:      make([]Message, degree),
		arena:       a,
	}
	return ctx, a.rotate
}

// NewPackedBenchCtx is NewBenchCtx for packed runs: the returned NodeCtx is
// wired to private bit planes the way the engines wire one when every program
// declares PayloadBits() <= 1, so a test can drive a 1-bit program's Round
// method directly — in particular under testing.AllocsPerRun, where a packed
// steady-state round must measure 0 allocs. setIn(p, bit) plants an incoming
// message carrying bit on port p, and reset clears both planes (what the
// engine's per-node harvest and the next round's delivery would do):
//
//	ctx, setIn, reset := sim.NewPackedBenchCtx(deg, 42, 1<<10, ids)
//	prog.Init(ctx)
//	avg := testing.AllocsPerRun(100, func() {
//		reset()
//		setIn(0, 1)
//		prog.Round(r, nil)
//	})
func NewPackedBenchCtx(degree int, id uint64, n int, neighborIDs []uint64) (ctx *NodeCtx, setIn func(p int, bit uint64), reset func()) {
	in := newBitPlane(degree)
	out := newBitPlane(degree)
	ctx = &NodeCtx{
		ID:          id,
		Degree:      degree,
		N:           n,
		NeighborIDs: neighborIDs,
		packed:      true,
		inBits:      in,
		outBits:     out,
	}
	setIn = func(p int, bit uint64) { in.set(int32(p), bit) }
	reset = func() {
		clear(in.present)
		clear(in.value)
		clear(out.present)
		clear(out.value)
	}
	return ctx, setIn, reset
}
