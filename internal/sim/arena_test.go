package sim

import (
	"bytes"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
)

func TestArenaCarvesAreDisjoint(t *testing.T) {
	a := &arena{}
	a.rotate()
	m1 := a.uints([]uint64{1, 2, 300})
	m2 := a.uints([]uint64{7})
	m3 := a.alloc(4)
	copy(m3, []byte{0xde, 0xad, 0xbe, 0xef})

	if got, _ := DecodeUints(m1, 3); got[0] != 1 || got[1] != 2 || got[2] != 300 {
		t.Errorf("m1 decoded to %v", got)
	}
	if got, _ := DecodeUints(m2, 1); got[0] != 7 {
		t.Errorf("m2 decoded to %v", got)
	}
	// Carves are capacity-capped, so writing one cannot bleed into another.
	m2[0] = 0xff
	if got, ok := DecodeUints(m1, 3); !ok || got[2] != 300 {
		t.Errorf("m1 corrupted by m2 write: %v", got)
	}
	if !bytes.Equal(m3, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Errorf("m3 = %x", m3)
	}
}

// TestArenaRotationLifetime checks the double-buffer contract: a payload
// carved in round r stays intact through round r+1 (when its receiver reads
// it) and its memory is recycled — zeroed for alloc — in round r+2.
func TestArenaRotationLifetime(t *testing.T) {
	a := &arena{}
	a.rotate() // round 0
	m := a.uints([]uint64{12345})
	want := append(Message(nil), m...)

	a.rotate() // round 1: the other buffer; m must survive
	a.uints([]uint64{999})
	if !bytes.Equal(m, want) {
		t.Fatalf("payload clobbered one rotation after carve: %x != %x", m, want)
	}

	a.rotate() // round 2: m's buffer is reset and may be overwritten
	reused := a.alloc(len(want))
	for i, b := range reused {
		if b != 0 {
			t.Fatalf("alloc returned stale byte %#x at %d after reuse", b, i)
		}
	}
}

func TestArenaGrowthKeepsOldCarvesAlive(t *testing.T) {
	a := &arena{}
	a.rotate()
	small := a.uints([]uint64{42})
	// Force several chunk replacements within the same round.
	for i := 0; i < 200; i++ {
		a.alloc(64)
	}
	if got, ok := DecodeUints(small, 1); !ok || got[0] != 42 {
		t.Errorf("carve from pre-growth chunk lost: %v ok=%v", got, ok)
	}
}

// TestNodeCtxArenaFallback checks both halves of the NodeCtx payload API:
// without an engine arena it heap-allocates, and either way the encoding is
// byte-identical to the package-level Uints.
func TestNodeCtxArenaFallback(t *testing.T) {
	bare := &NodeCtx{}
	if got := bare.Uints(5, 600, 1<<40); !bytes.Equal(got, Uints(5, 600, 1<<40)) {
		t.Errorf("bare ctx Uints = %x", got)
	}
	if got := bare.Alloc(8); len(got) != 8 {
		t.Errorf("bare ctx Alloc len = %d", len(got))
	}

	wired := &NodeCtx{arena: &arena{}}
	wired.arena.rotate()
	if got := wired.Uints(5, 600, 1<<40); !bytes.Equal(got, Uints(5, 600, 1<<40)) {
		t.Errorf("arena ctx Uints = %x", got)
	}
	if got := wired.Alloc(3); len(got) != 3 || got[0] != 0 {
		t.Errorf("arena ctx Alloc = %x", got)
	}
	// No values means "send nothing" (nil) on both paths, like Uints().
	if bare.Uints() != nil || wired.Uints() != nil {
		t.Error("empty Uints must be nil on both paths")
	}
	// Alloc(0) is a deliberate zero-byte message: always non-nil, even on a
	// virgin arena, so whether it is delivered never depends on arena state.
	if bare.Alloc(0) == nil || wired.Alloc(0) == nil {
		t.Error("Alloc(0) must be non-nil on both paths")
	}
	virgin := &NodeCtx{arena: &arena{}}
	if virgin.Alloc(0) == nil {
		t.Error("Alloc(0) on a virgin arena must be non-nil")
	}
}

// initCarver carves its payload during Init, sends it in round 0, and in
// round 1 sums what its neighbors sent — while also carving fresh payloads
// in round 1, which would overwrite the Init carves if the engines rotated
// the arena before round 0. Outputs are checked against the graph directly
// and across all three schedulers.
type initCarver struct {
	ctx     *NodeCtx
	payload Message
	sum     uint64
}

func (p *initCarver) Init(ctx *NodeCtx) {
	p.ctx = ctx
	p.payload = ctx.Uints(ctx.ID + 1000)
}

func (p *initCarver) Round(r int, inbox []Message) ([]Message, bool) {
	out := p.ctx.Outbox
	switch r {
	case 0:
		for i := range out {
			out[i] = p.payload
		}
		return out, false
	default:
		churn := p.ctx.Uints(p.ctx.ID) // force arena churn while reading
		for i := range out {
			out[i] = churn
		}
		for _, m := range inbox {
			if x, _, ok := ReadUint(m); ok {
				p.sum += x
			}
		}
		return out, true
	}
}

func (p *initCarver) Output() uint64 { return p.sum }

func TestInitCarvedPayloadsSurviveIntoRoundOne(t *testing.T) {
	// Path(3) is the deterministic trigger: all Init carves share one arena
	// chunk, so a premature round-1 reset would let the churn carves
	// overwrite them in place. The GNP case covers the general shape.
	for _, g := range []*graph.Graph{
		graph.Path(3),
		graph.GNPConnected(80, 0.08, prng.New(11)),
	} {
		want := make([]uint64, g.N())
		for v := range want {
			for _, w := range g.Neighbors(v) {
				want[v] += uint64(w) + 1000
			}
		}
		factory := func(int) NodeProgram[uint64] { return &initCarver{} }
		check := func(label string, res *Result[uint64], err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			for v, got := range res.Outputs {
				if got != want[v] {
					t.Errorf("%s n=%d: node %d sum = %d, want %d", label, g.N(), v, got, want[v])
				}
			}
		}
		cfg := Config{Graph: g}
		res, err := Run(cfg, factory)
		check("sequential", res, err)
		res, err = RunConcurrent(cfg, factory)
		check("concurrent", res, err)
		res, err = RunParallel(cfg, factory, 3)
		check("parallel", res, err)
	}
}
