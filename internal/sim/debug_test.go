package sim

import (
	"errors"
	"os"
	"testing"

	"randlocal/internal/graph"
)

// TestMain enables the poisoned-Outbox check for the whole package's test
// run: every program in this suite that uses NodeCtx.Outbox is thereby
// verified to set or nil every port, every round, on every scheduler.
func TestMain(m *testing.M) {
	SetDebugOutboxCheck(true)
	// Pretend four processors for the whole suite: the adaptive pool-width
	// machinery clamps to numProcs, and on a single-CPU CI runner the real
	// value would collapse every multi-worker engine path — scatter, merge,
	// affinity re-cuts, placement — to width 1 and silently stop testing
	// them. Hardware-sensitive behavior has focused tests that override
	// numProcs per test (setProcs in placement_test.go).
	numProcs = func() int { return 4 }
	os.Exit(m.Run())
}

// stalePortFlood is the footgun the poisoned-Outbox check exists for: it
// returns NodeCtx.Outbox but only sets the even ports, leaving the odd ones
// whatever the scratch held before.
type stalePortFlood struct{ ctx *NodeCtx }

func (s *stalePortFlood) Init(ctx *NodeCtx) { s.ctx = ctx }

func (s *stalePortFlood) Round(r int, inbox []Message) ([]Message, bool) {
	out := s.ctx.Outbox
	for p := 0; p < len(out); p += 2 {
		out[p] = s.ctx.Uints(uint64(r))
	}
	return out, false
}

func (s *stalePortFlood) Output() int { return 0 }

func TestPoisonedOutboxCheckCatchesUnsetPorts(t *testing.T) {
	g := graph.Ring(8) // degree 2: port 1 stays unset every round
	cfg := Config{Graph: g, MaxRounds: 8}
	factory := func(int) NodeProgram[int] { return &stalePortFlood{} }

	var poisonErr *OutboxPortError
	if _, err := Run(cfg, factory); !errors.As(err, &poisonErr) {
		t.Fatalf("sequential: got %v, want OutboxPortError", err)
	}
	if poisonErr.Node != 0 || poisonErr.Port != 1 {
		t.Errorf("sequential reported node=%d port=%d, want node=0 port=1", poisonErr.Node, poisonErr.Port)
	}
	if _, err := RunConcurrent(cfg, factory); !errors.As(err, &poisonErr) {
		t.Fatalf("concurrent: got %v, want OutboxPortError", err)
	}
	if _, err := RunParallel(cfg, factory, 3); !errors.As(err, &poisonErr) {
		t.Fatalf("parallel: got %v, want OutboxPortError", err)
	}
}

// TestPoisonedOutboxCheckAllowsShortAndOwnOutboxes pins the check's
// boundaries: a program that returns its own allocated outbox (even one
// shorter than its degree — the nil-padding convention) must not trip it,
// and neither must an Outbox user that nils ports instead of setting them.
func TestPoisonedOutboxCheckAllowsShortAndOwnOutboxes(t *testing.T) {
	g := graph.Ring(6)
	res, err := Run(Config{Graph: g}, floodFactory(3))
	if err != nil {
		t.Fatalf("own-outbox program tripped the check: %v", err)
	}
	if res.Rounds == 0 {
		t.Error("no rounds ran")
	}
	// outboxFlood sets or nils every port of the engine scratch.
	res2, err := Run(Config{Graph: g}, func(int) NodeProgram[uint64] { return &outboxFlood{rounds: 3} })
	if err != nil {
		t.Fatalf("well-behaved Outbox program tripped the check: %v", err)
	}
	if res2.Rounds == 0 {
		t.Error("no rounds ran")
	}
}

func TestDebugOutboxCheckToggle(t *testing.T) {
	if !DebugOutboxCheckEnabled() {
		t.Fatal("TestMain should have enabled the check")
	}
	// With the check disabled, the stale program runs (incorrectly but
	// silently) — the documented default-off behavior.
	SetDebugOutboxCheck(false)
	defer SetDebugOutboxCheck(true)
	g := graph.Ring(4)
	if _, err := Run(Config{Graph: g, MaxRounds: 4}, func(int) NodeProgram[int] { return &stalePortFlood{} }); err != nil {
		var stuck *StuckError
		if !errors.As(err, &stuck) {
			t.Fatalf("check disabled: got %v, want only the round-cap StuckError", err)
		}
	}
}
