package sim

import "encoding/binary"

// arena is a double-buffered per-round bump allocator for message payloads.
// Carves from one round land in one flat byte buffer; the engine rotates the
// arena once per round — except before round 0, so Init-time carves share
// round 0's buffer — which resets the buffer that served the round before
// last. That is the earliest safe moment to recycle: a payload carved in
// round r is delivered at round r+1 and may be read throughout round r+1's
// compute phase, so it must survive exactly two rotations.
//
// The lifetime contract this imposes on node programs is documented on
// NodeProgram: inbox payloads (and subslices of them) are valid only for the
// duration of the Round call they arrive in.
//
// Each arena has a single owner goroutine (the sequential engine, one
// RunParallel worker, or one RunConcurrent node); readers of carved payloads
// synchronize through the engines' existing delivery barriers, never through
// the arena itself.
type arena struct {
	bufs [2][]byte
	flip int
}

// rotate advances the arena to the next round: subsequent carves come from
// the buffer that served the round before last, reset to length zero. Its
// capacity is retained, so after a few rounds at a steady message volume the
// arena allocates nothing at all.
func (a *arena) rotate() {
	a.flip ^= 1
	a.bufs[a.flip] = a.bufs[a.flip][:0]
}

// touch walks both round buffers' full capacity at page stride with
// idempotent writes — the arena half of the parallel engine's first-touch
// placement pass (see parallelWorker.firstTouch). Owner-only, like every
// arena method; safe while payloads are live because each write stores back
// the byte it read.
func (a *arena) touch() {
	for i := range a.bufs {
		touchBytes(a.bufs[i][:cap(a.bufs[i])])
	}
}

// alloc carves a zeroed n-byte payload from the current round's buffer.
func (a *arena) alloc(n int) Message {
	if n == 0 {
		// Always the canonical non-nil empty payload (matching the arena-less
		// make fallback), never nil: nil means "send nothing", and whether a
		// zero-byte message is sent must not depend on the arena's state.
		return Message{}
	}
	b := a.bufs[a.flip]
	if cap(b)-len(b) < n {
		// Grow by replacing the chunk. The old chunk is not copied: payloads
		// already carved from it keep it alive until their round ends, and
		// only fresh carves come from the new one.
		b = make([]byte, 0, 2*cap(b)+n)
	}
	off := len(b)
	b = b[:off+n]
	a.bufs[a.flip] = b
	m := b[off : off+n : off+n]
	clear(m)
	return m
}

// uints encodes xs as consecutive varints carved from the current round's
// buffer — the arena-backed equivalent of the package-level Uints. Reserving
// the worst-case encoding up front keeps growth on alloc's replace-the-chunk
// path: AppendUvarint never reallocates (which would memcpy the whole
// chunk), and payloads already carved keep the old chunk alive.
func (a *arena) uints(xs []uint64) Message {
	b := a.bufs[a.flip]
	if need := binary.MaxVarintLen64 * len(xs); cap(b)-len(b) < need {
		b = make([]byte, 0, 2*cap(b)+need)
	}
	off := len(b)
	for _, x := range xs {
		b = binary.AppendUvarint(b, x)
	}
	a.bufs[a.flip] = b
	return b[off:len(b):len(b)]
}
