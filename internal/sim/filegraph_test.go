package sim

import (
	"fmt"
	"path/filepath"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
)

// fileBacked round-trips g through the on-disk CSR format and reopens it as a
// mapping-backed graph: every engine run against the result executes over the
// read-only mapped arrays (zero-copy on little-endian hosts), so any engine
// that mutated the CSR in place would fault here rather than corrupt a file.
func fileBacked(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := graph.WriteCSRFile(g, path); err != nil {
		t.Fatal(err)
	}
	fg, closer, err := graph.OpenCSRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cerr := closer.Close(); cerr != nil {
			t.Errorf("closing mapping: %v", cerr)
		}
	})
	return fg
}

// TestFileBackedEquivalence is the engine half of the out-of-core guarantee:
// swapping the in-RAM CSR for the mmap-backed one changes nothing observable.
// Every scheduler, worker count, reshard policy and representation must
// produce a byte-identical Result to the in-RAM sequential baseline — the
// same bar the packed planes are held to.
func TestFileBackedEquivalence(t *testing.T) {
	defer SetTelemetry(TelemetryEnabled())
	SetTelemetry(true)
	rng := prng.New(3041)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring-odd", graph.Ring(67)},
		{"star", graph.Star(71)},
		{"gnp", graph.GNPConnected(120, 0.04, rng)},
		{"powerlaw", graph.PowerLaw(130, 3, rng)},
	}
	for _, tg := range graphs {
		t.Run(tg.name, func(t *testing.T) {
			fg := fileBacked(t, tg.g)
			if !fg.Equal(tg.g) {
				t.Fatal("file round-trip changed the graph")
			}
			n := tg.g.N()
			key := NewSimulationKey(uint64(n)*19 + 5)
			ids := RandomIDs(n, n, key)
			factory := func(int) NodeProgram[uint64] { return &bitGossip{rounds: graph.Diameter(tg.g) + 2} }
			cfg := func(g *graph.Graph) Config {
				return Config{Graph: g, IDs: ids, MaxMessageBits: CongestBits(n), Source: key.FullSource()}
			}

			want, err := Run(cfg(tg.g), factory)
			if err != nil {
				t.Fatal(err)
			}

			got, err := Run(cfg(fg), factory)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, "sequential", want, got)
			requirePackedModes(t, "sequential", got)
			requireStagedSum(t, "sequential", got)

			got, err = RunConcurrent(cfg(fg), factory)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, "concurrent", want, got)

			// Place cycles through the matrix rather than multiplying it:
			// every policy runs over the mapping several times (pinned
			// workers first-touch their windows while the graph pages stay
			// read-only), without tripling the combination count.
			places := []PlacePolicy{PlaceAuto, PlacePin, PlaceNone}
			combo := 0
			for _, workers := range []int{1, 2, 3, 8} {
				for _, policy := range []ReshardPolicy{ReshardAdaptive, ReshardHalving, ReshardOff} {
					for _, unpack := range []bool{false, true} {
						c := cfg(fg)
						c.Reshard = policy
						c.Unpacked = unpack
						c.Place = places[combo%len(places)]
						combo++
						got, err := RunParallel(c, factory, workers)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("parallel/workers=%d/%v/unpacked=%v/place=%v", workers, policy, unpack, c.Place)
						assertResultsEqual(t, label, want, got)
					}
				}
			}
		})
	}
}

// TestFileBackedFaultEquivalence extends the proof to faulted executions: the
// adversary's deterministic schedules hash graph-derived state, so the mapped
// graph must reproduce the in-RAM run's injected-event record exactly — every
// scheduler, every reshard policy, Result and Telemetry.Injected alike.
func TestFileBackedFaultEquivalence(t *testing.T) {
	rng := prng.New(1117)
	g := graph.GNPConnected(120, 0.05, rng)
	fg := fileBacked(t, g)
	n := g.N()
	key := NewSimulationKey(uint64(n)*31 + 11)
	ids := RandomIDs(n, n, key)
	factory := func(int) NodeProgram[uint64] { return &bitGossip{rounds: graph.Diameter(g) + 2} }
	budgets := []struct {
		name string
		cfg  AdversaryConfig
	}{
		{"drop", AdversaryConfig{DropProb: 0.10}},
		{"crash", AdversaryConfig{CrashPerRound: 2}},
		{"kitchen-sink", AdversaryConfig{
			DropProb: 0.05, DelayProb: 0.05, DelayMax: 2,
			CrashPerRound: 1, ChurnPerRound: 2, HealPerRound: 1, StallPerRound: 2,
		}},
	}
	for _, b := range budgets {
		t.Run(b.name, func(t *testing.T) {
			cfg := func(gr *graph.Graph) Config {
				return Config{
					Graph: gr, IDs: ids, MaxMessageBits: CongestBits(n),
					Adversary: mustAdversary(t, key, b.cfg), Source: key.FullSource(),
				}
			}
			want, err := Run(cfg(g), factory)
			if err != nil {
				t.Fatal(err)
			}

			got, err := Run(cfg(fg), factory)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, "sequential", want, got)
			assertInjectedEqual(t, "sequential", want.Telemetry, got.Telemetry)

			got, err = RunConcurrent(cfg(fg), factory)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, "concurrent", want, got)
			assertInjectedEqual(t, "concurrent", want.Telemetry, got.Telemetry)

			for _, workers := range []int{1, 2, 3, 8} {
				for _, policy := range []ReshardPolicy{ReshardAdaptive, ReshardHalving, ReshardOff} {
					c := cfg(fg)
					c.Reshard = policy
					got, err := RunParallel(c, factory, workers)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("parallel/workers=%d/%v", workers, policy)
					assertResultsEqual(t, label, want, got)
					assertInjectedEqual(t, label, want.Telemetry, got.Telemetry)
				}
			}
		})
	}
}
