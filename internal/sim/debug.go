package sim

import (
	"fmt"
	"sync/atomic"
)

// The "poisoned Outbox" debug check guards the footgun documented on
// NodeCtx.Outbox: the engine never clears the scratch between rounds, so a
// program that returns Outbox without setting every port re-sends whatever
// the slot held the round before — a bug that is silent, seed-dependent and
// scheduler-independent, hence miserable to find from outputs alone. With
// the check enabled, every engine fills each node's Outbox window with a
// sentinel payload before calling Round and fails the run with an
// OutboxPortError the moment a returned outbox still carries the sentinel.
//
// The fill costs one write per half-edge per round, so the check is off by
// default and switched on by the test suites (and available to downstream
// users chasing a stale-port bug).

// outboxPoison is the sentinel payload; it is recognized by backing-array
// identity, so no legitimate program-built Message can collide with it.
var outboxPoison = Message{0x5a}

var debugOutboxCheck atomic.Bool

// SetDebugOutboxCheck enables or disables the poisoned-Outbox check for
// subsequent runs on every scheduler. Safe for concurrent use; each run
// latches the setting at start.
func SetDebugOutboxCheck(on bool) { debugOutboxCheck.Store(on) }

// DebugOutboxCheckEnabled reports the current setting.
func DebugOutboxCheckEnabled() bool { return debugOutboxCheck.Load() }

func isPoison(m Message) bool { return len(m) == 1 && &m[0] == &outboxPoison[0] }

// poisonWindow fills one node's Outbox window with the sentinel.
func poisonWindow(win []Message) {
	for i := range win {
		win[i] = outboxPoison
	}
}

// OutboxPortError reports a node that returned NodeCtx.Outbox while leaving
// a port unset that round — the stale-slot footgun the poisoned-Outbox
// check exists to catch. Only surfaced when the check is enabled.
type OutboxPortError struct {
	Node  int
	Round int
	Port  int
}

func (e *OutboxPortError) Error() string {
	return fmt.Sprintf("sim: node %d returned NodeCtx.Outbox with port %d unset in round %d (a program using Outbox must set or nil every port, every round)", e.Node, e.Port, e.Round)
}
