package sim

import (
	"fmt"

	"randlocal/internal/graph"
	"randlocal/internal/randomness"
)

// DefaultMaxRounds caps simulations whose config does not set MaxRounds; it
// is generous relative to the poly(log n) complexities under study, so
// hitting it indicates a livelocked program, not a slow one.
const DefaultMaxRounds = 1 << 20

// Config describes one simulation: the network, identifier assignment,
// randomness regime, bandwidth regime, and termination cap.
type Config struct {
	// Graph is the communication network. Required.
	Graph *graph.Graph
	// IDs assigns the unique identifier of each node; nil means IDs equal
	// node indices. Use the helpers in ids.go for random or adversarial
	// assignments. Must be injective (validated).
	IDs []uint64
	// Source grants randomness; nil runs the network fully
	// deterministically (every NodeCtx.Rand is nil).
	Source randomness.Source
	// DeclaredN is the network size told to the (non-uniform) node
	// programs; 0 means the true size. Values larger than the true size
	// implement the lying-about-n reduction of Theorem 4.3.
	DeclaredN int
	// MaxMessageBits bounds every message's size: 0 means unbounded (the
	// LOCAL model); CongestBits(n) gives the standard CONGEST bound.
	MaxMessageBits int
	// MaxRounds caps execution; 0 means DefaultMaxRounds.
	MaxRounds int
	// KT0 hides neighbor identifiers at time zero (NeighborIDs = nil).
	// The default (false) is the usual KT1 convention, which changes round
	// complexities by at most one round.
	KT0 bool
	// Scheduler selects the engine Execute dispatches to; Auto (the zero
	// value) defers to the package default set by SetDefaultScheduler.
	// Calling Run, RunConcurrent or RunParallel directly ignores it.
	Scheduler Scheduler
	// Workers is the pool size for the Parallel scheduler; 0 means the
	// package default, falling back to runtime.GOMAXPROCS(0).
	Workers int
}

// CongestBits returns the standard CONGEST bandwidth bound used throughout
// the experiments: c·⌈log₂(n+1)⌉ bits with c = 8, comfortably enough for a
// constant number of identifiers and counters per message. The ⌈log₂(n+1)⌉
// factor is floored at 6, so the bound never drops below 48 bits and tiny
// test networks still admit constant-size headers (the model's O(log n)
// bound absorbs such constants).
func CongestBits(n int) int {
	bits := 1
	for 1<<bits < n+1 {
		bits++
	}
	if bits < 6 {
		bits = 6
	}
	return 8 * bits
}

// Result carries the outputs and the accounting of one simulation.
type Result[T any] struct {
	// Outputs holds each node's output, indexed by node.
	Outputs []T
	// Rounds is the number of synchronous rounds executed: the maximum,
	// over all nodes, of the number of Round calls the engine made before
	// that node halted. A network whose every node halts in its first
	// Round call reports Rounds == 1 even if no message was ever sent.
	Rounds int
	// Messages counts non-nil messages delivered.
	Messages int64
	// BitsTotal is the total size of all delivered messages, in bits.
	BitsTotal int64
	// MaxMessageBits is the largest single message observed, in bits.
	MaxMessageBits int
}

type engineState[T any] struct {
	cfg      Config
	g        *graph.Graph
	n        int
	progs    []NodeProgram[T]
	done     []bool
	inbox    [][]Message
	next     [][]Message
	revPort  [][]int // revPort[v][p] = port of v in neighbor's list
	running  int
	rounds   int
	messages int64
	bits     int64
	maxBits  int
}

func newEngineState[T any](cfg Config, factory func(v int) NodeProgram[T]) (*engineState[T], error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("sim: config requires a graph")
	}
	n := cfg.Graph.N()
	ids := cfg.IDs
	if ids == nil {
		ids = make([]uint64, n)
		for i := range ids {
			ids[i] = uint64(i)
		}
	}
	if len(ids) != n {
		return nil, fmt.Errorf("sim: %d IDs for %d nodes", len(ids), n)
	}
	seen := make(map[uint64]int, n)
	for v, id := range ids {
		if prev, dup := seen[id]; dup {
			return nil, fmt.Errorf("sim: duplicate ID %d at nodes %d and %d", id, prev, v)
		}
		seen[id] = v
	}
	declaredN := cfg.DeclaredN
	if declaredN == 0 {
		declaredN = n
	}
	if declaredN < n {
		return nil, fmt.Errorf("sim: declared size %d below true size %d", declaredN, n)
	}
	st := &engineState[T]{
		cfg:     cfg,
		g:       cfg.Graph,
		n:       n,
		progs:   make([]NodeProgram[T], n),
		done:    make([]bool, n),
		inbox:   make([][]Message, n),
		next:    make([][]Message, n),
		revPort: make([][]int, n),
		running: n,
	}
	var shared *randomness.Shared
	if s, ok := cfg.Source.(*randomness.Shared); ok {
		shared = s
	}
	for v := 0; v < n; v++ {
		deg := st.g.Degree(v)
		st.inbox[v] = make([]Message, deg)
		st.next[v] = make([]Message, deg)
		st.revPort[v] = make([]int, deg)
		for p, w := range st.g.Neighbors(v) {
			st.revPort[v][p] = st.g.PortOf(w, v)
		}
		ctx := &NodeCtx{
			Index:  v,
			ID:     ids[v],
			Degree: deg,
			N:      declaredN,
			Shared: shared,
		}
		if !cfg.KT0 {
			ctx.NeighborIDs = make([]uint64, deg)
			for p, w := range st.g.Neighbors(v) {
				ctx.NeighborIDs[p] = ids[w]
			}
		}
		if cfg.Source != nil && cfg.Source.Has(v) {
			ctx.Rand = cfg.Source.Stream(v)
		}
		st.progs[v] = factory(v)
		st.progs[v].Init(ctx)
	}
	return st, nil
}

// step runs the compute phase for node v in round r and stages its outbox
// into neighbors' next-round inboxes. It returns a bandwidth error if v
// violates the CONGEST bound.
func (st *engineState[T]) step(v, r int) error {
	out, nodeDone := st.progs[v].Round(r, st.inbox[v])
	if len(out) > st.g.Degree(v) {
		return fmt.Errorf("sim: node %d produced %d outbox entries for degree %d", v, len(out), st.g.Degree(v))
	}
	for p, msg := range out {
		if msg == nil {
			continue
		}
		if st.cfg.MaxMessageBits > 0 && msg.BitLen() > st.cfg.MaxMessageBits {
			return &BandwidthError{Node: v, Round: r, Bits: msg.BitLen(), Limit: st.cfg.MaxMessageBits}
		}
		w := st.g.Neighbors(v)[p]
		st.next[w][st.revPort[v][p]] = msg
	}
	if nodeDone {
		st.done[v] = true
		st.running--
	}
	return nil
}

// finishRound tallies delivered messages and swaps inboxes for the next
// round. It must run after every node's compute phase for round r.
func (st *engineState[T]) finishRound() {
	for v := 0; v < st.n; v++ {
		for p, msg := range st.next[v] {
			if msg != nil {
				st.messages++
				st.bits += int64(msg.BitLen())
				if msg.BitLen() > st.maxBits {
					st.maxBits = msg.BitLen()
				}
			}
			st.inbox[v][p] = msg
			st.next[v][p] = nil
		}
	}
	st.rounds++
}

func (st *engineState[T]) result() *Result[T] {
	outputs := make([]T, st.n)
	for v := range outputs {
		outputs[v] = st.progs[v].Output()
	}
	return &Result[T]{
		Outputs:        outputs,
		Rounds:         st.rounds,
		Messages:       st.messages,
		BitsTotal:      st.bits,
		MaxMessageBits: st.maxBits,
	}
}

// Run executes the network with the deterministic sequential scheduler:
// within a round, nodes compute in index order, but — as the model requires
// — every message sent in round r is delivered only at round r+1, so the
// schedule is observationally identical to a fully parallel round.
func Run[T any](cfg Config, factory func(v int) NodeProgram[T]) (*Result[T], error) {
	st, err := newEngineState(cfg, factory)
	if err != nil {
		return nil, err
	}
	return st.runSequential(st.maxRounds())
}

// maxRounds resolves the configured round cap.
func (st *engineState[T]) maxRounds() int {
	if st.cfg.MaxRounds == 0 {
		return DefaultMaxRounds
	}
	return st.cfg.MaxRounds
}

// runSequential is the round loop shared by Run and the degenerate
// single-worker case of RunParallel.
func (st *engineState[T]) runSequential(maxRounds int) (*Result[T], error) {
	for r := 0; st.running > 0; r++ {
		if r >= maxRounds {
			return nil, &StuckError{MaxRounds: maxRounds, Running: st.running}
		}
		for v := 0; v < st.n; v++ {
			if st.done[v] {
				continue
			}
			if err := st.step(v, r); err != nil {
				return nil, err
			}
		}
		st.finishRound()
	}
	return st.result(), nil
}
