package sim

import (
	"fmt"
	mathbits "math/bits"
	"time"

	"randlocal/internal/graph"
	"randlocal/internal/randomness"
)

// DefaultMaxRounds caps simulations whose config does not set MaxRounds; it
// is generous relative to the poly(log n) complexities under study, so
// hitting it indicates a livelocked program, not a slow one.
const DefaultMaxRounds = 1 << 20

// Config describes one simulation: the network, identifier assignment,
// randomness regime, bandwidth regime, and termination cap.
type Config struct {
	// Graph is the communication network. Required.
	Graph *graph.Graph
	// IDs assigns the unique identifier of each node; nil means IDs equal
	// node indices. Use the helpers in ids.go for random or adversarial
	// assignments. Must be injective (validated).
	IDs []uint64
	// Source grants randomness; nil runs the network fully
	// deterministically (every NodeCtx.Rand is nil).
	Source randomness.Source
	// DeclaredN is the network size told to the (non-uniform) node
	// programs; 0 means the true size. Values larger than the true size
	// implement the lying-about-n reduction of Theorem 4.3.
	DeclaredN int
	// MaxMessageBits bounds every message's size: 0 means unbounded (the
	// LOCAL model); CongestBits(n) gives the standard CONGEST bound.
	MaxMessageBits int
	// MaxRounds caps execution; 0 means DefaultMaxRounds.
	MaxRounds int
	// KT0 hides neighbor identifiers at time zero (NeighborIDs = nil).
	// The default (false) is the usual KT1 convention, which changes round
	// complexities by at most one round.
	KT0 bool
	// Scheduler selects the engine Execute dispatches to; Auto (the zero
	// value) defers to the package default set by SetDefaultScheduler.
	// Calling Run, RunConcurrent or RunParallel directly ignores it.
	Scheduler Scheduler
	// Workers is the pool size for the Parallel scheduler; 0 means the
	// package default, falling back to runtime.GOMAXPROCS(0).
	Workers int
	// Reshard selects the Parallel scheduler's re-sharding policy:
	// ReshardAuto (the zero value) defers to the package default set by
	// SetDefaultReshard (adaptive out of the box); ReshardAdaptive,
	// ReshardHalving and ReshardOff are explicit choices. Purely a
	// performance lever — Results are identical under every policy — and
	// ignored by the other engines.
	Reshard ReshardPolicy
	// Place selects the Parallel scheduler's worker-placement policy:
	// PlaceAuto (the zero value) defers to the package default set by
	// SetDefaultPlace, which out of the box resolves by hardware (pin on
	// multi-CPU hosts, none on single-CPU ones); PlacePin and PlaceNone are
	// explicit choices. Purely a performance lever — Results and
	// Telemetry.Injected are byte-identical under every policy — and
	// ignored by the other engines.
	Place PlacePolicy
	// Unpacked opts the run out of packed bit planes: even when every node
	// program declares PayloadBits() <= 1 (see PayloadBitsDeclarer), the
	// engines keep the full-width []Message planes. Purely a representation
	// lever for A/B benchmarking and the equivalence suite — Results are
	// identical either way.
	Unpacked bool
	// Adversary, when non-nil, injects faults into the run — message drops
	// and delays, crash-stops, edge churn, adversarial stalls — drawing
	// only from the adversary stream of its SimulationKey, so the
	// algorithm's coins are untouched (see adversary.go). The faulted run
	// stays deterministic and scheduler-equivalent, its injections are
	// recorded in Result.Telemetry.Injected, and a zero-budget adversary
	// reproduces the fault-free Result bit for bit.
	Adversary *Adversary
	// Pool, when non-nil, sources the engine's buffer set (planes, arenas,
	// worklists, per-worker staging) from the pool's warm slab for this
	// graph shape and scheduler, and returns it when the run finishes.
	// Purely an allocation lever — Results are byte-identical warm vs cold.
	// nil defers to the package default (SetDefaultPool), which is unpooled
	// out of the box.
	Pool *EnginePool
	// Telemetry forces telemetry collection for this run regardless of the
	// package-wide SetTelemetry switch — the per-run lever the serving
	// layer uses, where runs of many tenants share one process.
	Telemetry bool
	// Progress, when non-nil, is invoked by the coordinating goroutine at
	// every round boundary with the run's cumulative accounting — the live
	// feed the serving layer streams while a run executes. It must return
	// quickly (it runs on the round's critical path) and must not call back
	// into the engine.
	Progress func(Progress)
}

// Progress is one round-boundary update delivered to Config.Progress.
type Progress struct {
	// Round counts completed rounds; the final update reports the value
	// that becomes Result.Rounds.
	Round int
	// Active is the number of nodes whose Round method ran this round —
	// the entry appended to Result.ActivePerRound.
	Active int
	// Running is the number of nodes still live after the round.
	Running int
	// Messages is the cumulative delivered-message count so far.
	Messages int64
}

// CongestBits returns the standard CONGEST bandwidth bound used throughout
// the experiments: c·⌈log₂(n+1)⌉ bits with c = 8, comfortably enough for a
// constant number of identifiers and counters per message. The ⌈log₂(n+1)⌉
// factor is floored at 6, so the bound never drops below 48 bits and tiny
// test networks still admit constant-size headers (the model's O(log n)
// bound absorbs such constants).
func CongestBits(n int) int {
	bits := 1
	for 1<<bits < n+1 {
		bits++
	}
	if bits < 6 {
		bits = 6
	}
	return 8 * bits
}

// Result carries the outputs and the accounting of one simulation.
type Result[T any] struct {
	// Outputs holds each node's output, indexed by node.
	Outputs []T
	// Rounds is the number of synchronous rounds executed: the maximum,
	// over all nodes, of the number of Round calls the engine made before
	// that node halted. A network whose every node halts in its first
	// Round call reports Rounds == 1 even if no message was ever sent.
	Rounds int
	// ActivePerRound[r] is the number of nodes whose Round method the
	// engine invoked in round r (a node halting in round r still counts as
	// active in r). Its length equals Rounds, and it is identical across
	// schedulers — the live-fringe trajectory the shattering analyses
	// reason about.
	ActivePerRound []int
	// Messages counts non-nil messages delivered.
	Messages int64
	// BitsTotal is the total size of all delivered messages, in bits.
	BitsTotal int64
	// MaxMessageBits is the largest single message observed, in bits.
	MaxMessageBits int
	// Telemetry is the run's scheduling measurement record — per-round
	// per-worker compute times, staged-message counts, delivery-mode
	// choices and re-shard events — collected only when SetTelemetry is
	// enabled, nil otherwise. Unlike every other field its wall-clock
	// content is host- and run-specific, so it is excluded from the
	// scheduler-equivalence guarantees.
	Telemetry *Telemetry
}

// engineState is the shared substrate of all three schedulers. The message
// plane is flat: every per-port quantity lives in a single contiguous array
// indexed by the graph's CSR half-edge index i = off[v] + p ("port p of
// node v"), so a round is one linear sweep over cache-resident buffers
// instead of n small-slice walks, and a run allocates O(1) slices instead
// of O(n). The round loop runs off the active worklist and delivery off
// staged slot lists, so round cost tracks the live fringe, not n.
type engineState[T any] struct {
	cfg   Config
	g     *graph.Graph
	n     int
	off   []int64 // CSR offsets, shared with (and owned by) the graph
	adjf  []int32 // CSR flat neighbor array
	rev   []int32 // CSR reverse half-edge table
	progs []NodeProgram[T]
	// active is the compact worklist of live nodes, in ascending index
	// order; done is its membership bitmap (done[v] ⇔ v is not on the
	// worklist). The round loop iterates active and compacts it in place as
	// nodes halt, so a round costs O(active), not O(n).
	active []int32
	done   []bool
	// inbox[i] is what node v received on port p this round; next[i] is
	// what will arrive there next round. outbox is the engine-owned
	// scratch exposed to programs as NodeCtx.Outbox, one slot per
	// half-edge. Only the sequential round loop double-buffers, so next is
	// allocated lazily by runSequential; RunParallel scatters straight into
	// inbox and RunConcurrent delivers through channels.
	inbox  []Message
	next   []Message
	outbox []Message
	// staged lists the flat slots written into next this round, and
	// inboxSlots the slots currently non-nil in inbox: delivery touches
	// exactly those slots instead of sweeping all 2m, so it costs
	// O(messages), not O(m). Used by the sequential engine; RunParallel
	// keeps the same pair per worker and RunConcurrent delivers through
	// channels.
	staged     []int32
	inboxSlots []int32
	arena      *arena
	ctxs       []NodeCtx
	// packed marks a run whose planes are bitmaps: every program declared
	// PayloadBits() <= 1, the config did not opt out, and the engine supports
	// it (Run and RunParallel do; RunConcurrent always unpacks). inBits and
	// nextBits then replace inbox/next, and outBitsPlane replaces outbox as
	// the programs' write side (RunParallel rewires ctxs to per-worker
	// planes). The staged/inboxSlots slot lists keep their exact unpacked
	// meaning, so the accounting and the adversary see identical slots.
	packed       bool
	inBits       *bitPlane
	nextBits     *bitPlane
	outBitsPlane *bitPlane
	// poison latches the poisoned-Outbox debug setting for this run; see
	// debug.go.
	poison bool
	// tel is the run's telemetry record, nil unless SetTelemetry was
	// enabled when the run started (latched by the engine entry points via
	// initTelemetry) or the run has an adversary, which forces collection.
	tel     *Telemetry
	telInit bool
	// adv is the per-run adversary state, nil for fault-free runs.
	adv *advState
	// slab/pool are set on pooled runs: the warm buffer set this run drew
	// its planes and worklists from, returned (scrubbed) by release.
	slab *engineSlab
	pool *EnginePool

	running     int
	rounds      int
	activeTrace []int
	messages    int64
	bits        int64
	maxBits     int
}

func newEngineState[T any](cfg Config, factory func(v int) NodeProgram[T], sched Scheduler) (*engineState[T], error) {
	return newEngineStateMode(cfg, factory, true, sched)
}

// newEngineStateMode builds the shared engine substrate. allowPacked lets the
// calling engine veto packed bit planes (RunConcurrent does — its frames are
// per-edge channels); when it holds, every program declares PayloadBits() <= 1,
// the config does not opt out, and the bandwidth bound admits the canonical
// 8-bit wire message (MaxMessageBits 0 or >= 8 — a tighter bound would reject
// even the 1-byte encoding, and the unpacked path must be the one to say so),
// the message planes are allocated as packed bitmaps.
//
// sched names the engine that will drive the state; it selects the slab
// shelf when the run is pooled (Config.Pool / SetDefaultPool), in which case
// every buffer below comes warm from the slab instead of make. The engine
// entry points must pair a successful call with exactly one st.release().
func newEngineStateMode[T any](cfg Config, factory func(v int) NodeProgram[T], allowPacked bool, sched Scheduler) (*engineState[T], error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("sim: config requires a graph")
	}
	n := cfg.Graph.N()
	ids := cfg.IDs
	if ids != nil {
		if len(ids) != n {
			return nil, fmt.Errorf("sim: %d IDs for %d nodes", len(ids), n)
		}
		seen := make(map[uint64]int, n)
		for v, id := range ids {
			if prev, dup := seen[id]; dup {
				return nil, fmt.Errorf("sim: duplicate ID %d at nodes %d and %d", id, prev, v)
			}
			seen[id] = v
		}
	}
	declaredN := cfg.DeclaredN
	if declaredN == 0 {
		declaredN = n
	}
	if declaredN < n {
		return nil, fmt.Errorf("sim: declared size %d below true size %d", declaredN, n)
	}
	off, adjf, rev := cfg.Graph.CSR()
	h := len(adjf) // 2m half-edges
	pool := cfg.Pool
	if pool == nil {
		pool = DefaultPool()
	}
	var slab *engineSlab
	if pool != nil {
		slab = pool.acquire(n, h, sched)
	}
	st := &engineState[T]{
		cfg:     cfg,
		g:       cfg.Graph,
		n:       n,
		off:     off,
		adjf:    adjf,
		rev:     rev,
		progs:   make([]NodeProgram[T], n),
		poison:  debugOutboxCheck.Load(),
		running: n,
		slab:    slab,
		pool:    pool,
	}
	if slab != nil {
		// The slab is parked clean (see engineSlab), so these come ready to
		// use; contexts and worklist contents are rewritten below either way.
		st.active = slab.active[:n]
		st.done = slab.done
		st.ctxs = slab.ctxs
		st.arena = &slab.arena
		st.staged = slab.staged
		st.inboxSlots = slab.inboxSlots
		st.activeTrace = slab.activeTrace
	} else {
		st.active = make([]int32, n)
		st.done = make([]bool, n)
		st.ctxs = make([]NodeCtx, n)
		st.arena = &arena{}
	}
	// Programs are constructed before the planes are allocated so their
	// declared payload widths can pick the plane representation; Init runs
	// afterwards, against fully wired contexts.
	packed := allowPacked && !cfg.Unpacked && n > 0 &&
		(cfg.MaxMessageBits == 0 || cfg.MaxMessageBits >= 8)
	for v := 0; v < n; v++ {
		st.progs[v] = factory(v)
		if packed {
			d, ok := st.progs[v].(PayloadBitsDeclarer)
			if !ok || d.PayloadBits() > 1 || d.PayloadBits() < 0 {
				packed = false
			}
		}
	}
	st.packed = packed
	switch {
	case packed && slab != nil:
		st.inBits = slab.plane(&slab.inBits)
		st.outBitsPlane = slab.plane(&slab.outBits)
	case packed:
		st.inBits = newBitPlane(h)
		st.outBitsPlane = newBitPlane(h)
	case slab != nil:
		st.inbox = slab.msgPlane(&slab.inbox)
		st.outbox = slab.msgPlane(&slab.outbox)
	default:
		st.inbox = make([]Message, h)
		st.outbox = make([]Message, h)
	}
	if cfg.Adversary != nil {
		st.adv = cfg.Adversary.newState(off, adjf, rev, st.done)
	}
	for v := range st.active {
		st.active[v] = int32(v)
	}
	var shared *randomness.Shared
	if s, ok := cfg.Source.(*randomness.Shared); ok {
		shared = s
	}
	// Neighbor identifiers live in one flat half-edge-indexed array too;
	// each node's view is a subslice.
	var nids []uint64
	if !cfg.KT0 {
		if slab != nil {
			nids = slab.neighborIDs()
		} else {
			nids = make([]uint64, h)
		}
		if ids == nil {
			for i, w := range adjf {
				nids[i] = uint64(w)
			}
		} else {
			for i, w := range adjf {
				nids[i] = ids[w]
			}
		}
	}
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		id := uint64(v)
		if ids != nil {
			id = ids[v]
		}
		ctx := &st.ctxs[v]
		*ctx = NodeCtx{
			Index:  v,
			ID:     id,
			Degree: int(hi - lo),
			N:      declaredN,
			Shared: shared,
			arena:  st.arena,
		}
		if packed {
			ctx.packed = true
			ctx.inBits = st.inBits
			ctx.outBits = st.outBitsPlane
			ctx.base = lo
		} else {
			ctx.Outbox = st.outbox[lo:hi:hi]
		}
		if !cfg.KT0 {
			ctx.NeighborIDs = nids[lo:hi:hi]
		}
		if cfg.Source != nil && cfg.Source.Has(v) {
			ctx.Rand = cfg.Source.Stream(v)
		}
		st.progs[v].Init(ctx)
	}
	return st, nil
}

// roundFor invokes node v's compute phase for round r against its
// flat-inbox window. Under the poisoned-Outbox debug check the node's
// Outbox window is pre-filled with the sentinel so unset ports are caught
// when the outbox is consumed. A packed run has neither inbox windows nor
// Outbox — programs read and write the bit planes through the NodeCtx
// accessors, and Round receives a nil inbox.
func (st *engineState[T]) roundFor(v, r int) ([]Message, bool) {
	if st.packed {
		return st.progs[v].Round(r, nil)
	}
	lo, hi := st.off[v], st.off[v+1]
	st.ctxs[v].inboxWin = st.inbox[lo:hi:hi]
	if st.poison {
		poisonWindow(st.outbox[lo:hi])
	}
	return st.progs[v].Round(r, st.inbox[lo:hi:hi])
}

// step runs the compute phase for node v in round r and stages its outbox
// into neighbors' next-round slots, recording each staged slot and tallying
// the message as it goes. It returns a bandwidth error if v violates the
// CONGEST bound.
func (st *engineState[T]) step(v, r int) error {
	if st.packed {
		return st.stepPacked(v, r)
	}
	out, nodeDone := st.roundFor(v, r)
	lo := st.off[v]
	if deg := int(st.off[v+1] - lo); len(out) > deg {
		return fmt.Errorf("sim: node %d produced %d outbox entries for degree %d", v, len(out), deg)
	}
	for p, msg := range out {
		if msg == nil {
			continue
		}
		if st.poison && isPoison(msg) {
			return &OutboxPortError{Node: v, Round: r, Port: p}
		}
		b := msg.BitLen()
		if st.cfg.MaxMessageBits > 0 && b > st.cfg.MaxMessageBits {
			return &BandwidthError{Node: v, Round: r, Bits: b, Limit: st.cfg.MaxMessageBits}
		}
		i := st.rev[lo+int64(p)]
		if st.adv != nil {
			switch f, d := st.adv.fate(r, i); f {
			case fateDrop:
				st.adv.roundDrops++
				continue
			case fateCut:
				st.adv.roundCuts++
				continue
			case fateDelay:
				st.adv.roundDelays++
				st.adv.held = append(st.adv.held, holdMsg(i, r, d, msg))
				continue
			}
		}
		st.next[i] = msg
		st.staged = append(st.staged, i)
		// Tally at stage time, while the header is hot: a staged message is
		// delivered unconditionally next round (or the run aborts and the
		// counters are never read), so this matches delivery-time tallying.
		st.messages++
		st.bits += int64(b)
		if b > st.maxBits {
			st.maxBits = b
		}
	}
	if nodeDone {
		st.done[v] = true
		st.running--
	}
	return nil
}

// stepPacked is step for packed runs: the program has already written its
// outgoing bits into its out-plane window (BroadcastBit and friends), so the
// engine harvests that window word-at-a-time — per present bit it resolves
// the destination slot through the reverse half-edge table, consults the
// adversary, stages the bit into nextBits and tallies the canonical 8-bit
// message — then clears the window for the node's next round. There is no
// bandwidth or poison check: the representation cannot express a payload
// over 1 bit or an unset port.
func (st *engineState[T]) stepPacked(v, r int) error {
	_, nodeDone := st.progs[v].Round(r, nil)
	lo, hi := st.off[v], st.off[v+1]
	out := st.outBitsPlane
	whi := int((hi - 1) >> 6)
	for w := int(lo >> 6); lo < hi && w <= whi; w++ {
		pw := out.present[w]
		if pw == 0 {
			continue
		}
		base := int64(w) << 6
		if base < lo {
			pw &= ^uint64(0) << (uint(lo) & 63)
		}
		if base+64 > hi {
			pw &= ^uint64(0) >> (63 - uint(hi-1)&63)
		}
		vv := out.value[w]
		for pw != 0 {
			k := mathbits.TrailingZeros64(pw)
			pw &= pw - 1
			i := st.rev[base+int64(k)]
			bit := vv >> uint(k) & 1
			if st.adv != nil {
				switch f, d := st.adv.fate(r, i); f {
				case fateDrop:
					st.adv.roundDrops++
					continue
				case fateCut:
					st.adv.roundCuts++
					continue
				case fateDelay:
					st.adv.roundDelays++
					st.adv.held = append(st.adv.held, holdMsg(i, r, d, bitWire[bit]))
					continue
				}
			}
			st.nextBits.set(i, bit)
			st.staged = append(st.staged, i)
			st.messages++
			st.bits += 8
			if st.maxBits < 8 {
				st.maxBits = 8
			}
		}
	}
	st.outBitsPlane.clearBitRange(lo, hi)
	if nodeDone {
		st.done[v] = true
		st.running--
	}
	return nil
}

// finishRound makes the round's staged messages the next round's inboxes.
// Each slot is staged at most once per round (one sender per reverse
// half-edge) and accounting happened at stage time, so delivery is pure data
// movement; which strategy runs is a locality decision. A dense round —
// staged slots a sizable fraction of the plane — swaps the inbox and next
// planes outright and memclrs the new next (which holds only last round's
// now-dead inboxes). A sparse round walks the staged slot list (after
// clearing last round's inbox slots individually), so a late round with a
// tiny live fringe costs O(messages), not O(m).
func (st *engineState[T]) finishRound() DeliveryMode {
	if st.packed {
		return st.finishRoundPacked()
	}
	mode := DeliverSparse
	if denseDelivery(len(st.staged), len(st.next)) {
		mode = DeliverDense
		st.inbox, st.next = st.next, st.inbox
		clear(st.next)
	} else {
		for _, i := range st.inboxSlots {
			st.inbox[i] = nil
		}
		for _, i := range st.staged {
			st.inbox[i] = st.next[i]
			st.next[i] = nil
		}
	}
	st.inboxSlots, st.staged = st.staged, st.inboxSlots[:0]
	st.rounds++
	return mode
}

// finishRoundPacked is finishRound over bit planes. The density decision uses
// the same shared cut-off but counts the window in words — the unit the dense
// path actually sweeps — so the vectorized swap pays off 64× earlier than on
// Message planes. The dense path swaps the inner slices of the stable inBits/
// nextBits structs (NodeCtx holds plane pointers, which must survive the
// swap) and memclrs both lanes of the new next; the sparse path moves exactly
// the staged bits. Either way the round reports DeliverPacked: the plane
// representation, not the sub-strategy, is what a telemetry reader needs to
// interpret the lane.
func (st *engineState[T]) finishRoundPacked() DeliveryMode {
	if denseDelivery(len(st.staged), st.nextBits.words()) {
		st.inBits.present, st.nextBits.present = st.nextBits.present, st.inBits.present
		st.inBits.value, st.nextBits.value = st.nextBits.value, st.inBits.value
		clear(st.nextBits.present)
		clear(st.nextBits.value)
	} else {
		for _, i := range st.inboxSlots {
			st.inBits.clearSlot(i)
		}
		for _, i := range st.staged {
			st.inBits.set(i, st.nextBits.bit(i))
			st.nextBits.clearSlot(i)
		}
	}
	st.inboxSlots, st.staged = st.staged, st.inboxSlots[:0]
	st.rounds++
	return DeliverPacked
}

// inboxView returns the adversary boundary's handle on whichever inbox plane
// this run allocated.
func (st *engineState[T]) inboxView() inboxView {
	if st.packed {
		return inboxView{bits: st.inBits}
	}
	return inboxView{msgs: st.inbox}
}

// initTelemetry latches the run's telemetry record once (an adversary or
// Config.Telemetry forces collection — the adversary's injected-event record
// is part of the run's reproducibility contract, and the per-run flag is the
// serving layer's lever) and wires it to the adversary state.
func (st *engineState[T]) initTelemetry(sched Scheduler, workers int) {
	if st.telInit {
		return
	}
	st.telInit = true
	st.tel = newTelemetry(sched, workers, st.adv != nil || st.cfg.Telemetry)
	if st.adv != nil {
		st.adv.tel = st.tel
	}
}

// adversaryBoundary runs the adversary's between-round step for the
// sequential engine and folds its late-delivery tallies and crash-stops
// into the engine state.
func (st *engineState[T]) adversaryBoundary(r int) {
	msgs, bits, maxBits, crashed := st.adv.boundary(r, st.active, st.inboxView(),
		func(slot int32) { st.inboxSlots = append(st.inboxSlots, slot) },
		func(v int32) { st.done[v] = true; st.running-- })
	st.messages += msgs
	st.bits += bits
	if maxBits > st.maxBits {
		st.maxBits = maxBits
	}
	if crashed > 0 {
		live := st.active[:0]
		for _, v := range st.active {
			if !st.done[v] {
				live = append(live, v)
			}
		}
		st.active = live
	}
}

func (st *engineState[T]) result() *Result[T] {
	if st.adv != nil {
		st.adv.finish(st.rounds - 1)
	}
	outputs := make([]T, st.n)
	for v := range outputs {
		outputs[v] = st.progs[v].Output()
	}
	trace := st.activeTrace
	if st.slab != nil {
		// The trace grew in slab scratch, which release hands to the next
		// run; the Result must own its copy.
		trace = append([]int(nil), trace...)
	}
	return &Result[T]{
		Outputs:        outputs,
		Rounds:         st.rounds,
		ActivePerRound: trace,
		Messages:       st.messages,
		BitsTotal:      st.bits,
		MaxMessageBits: st.maxBits,
		Telemetry:      st.tel,
	}
}

// Run executes the network with the deterministic sequential scheduler:
// within a round, nodes compute in index order, but — as the model requires
// — every message sent in round r is delivered only at round r+1, so the
// schedule is observationally identical to a fully parallel round.
func Run[T any](cfg Config, factory func(v int) NodeProgram[T]) (*Result[T], error) {
	st, err := newEngineState(cfg, factory, Sequential)
	if err != nil {
		return nil, err
	}
	defer st.release()
	return st.runSequential(st.maxRounds())
}

// progress delivers one round-boundary update to Config.Progress, if wired.
// Callers invoke it from the coordinating goroutine only, after the round's
// counters (rounds, activeTrace, running, messages) are final.
func (st *engineState[T]) progress() {
	if st.cfg.Progress == nil || len(st.activeTrace) == 0 {
		return
	}
	st.cfg.Progress(Progress{
		Round:    st.rounds,
		Active:   st.activeTrace[len(st.activeTrace)-1],
		Running:  st.running,
		Messages: st.messages,
	})
}

// maxRounds resolves the configured round cap.
func (st *engineState[T]) maxRounds() int {
	if st.cfg.MaxRounds == 0 {
		return DefaultMaxRounds
	}
	return st.cfg.MaxRounds
}

// runSequential is the round loop shared by Run and the degenerate
// single-worker case of RunParallel. It iterates the active worklist —
// compacting it in place as nodes halt — so a late round with a small live
// fringe costs O(active + messages) rather than O(n + m). Under telemetry it
// is one lane: the whole worklist sweep is the round's compute phase.
func (st *engineState[T]) runSequential(maxRounds int) (*Result[T], error) {
	if st.packed {
		if st.nextBits == nil {
			if st.slab != nil {
				st.nextBits = st.slab.plane(&st.slab.nextBits)
			} else {
				st.nextBits = newBitPlane(len(st.adjf))
			}
		}
	} else if st.next == nil {
		if st.slab != nil {
			st.next = st.slab.msgPlane(&st.slab.next)
		} else {
			st.next = make([]Message, len(st.inbox))
		}
	}
	st.initTelemetry(Sequential, 1)
	for r := 0; len(st.active) > 0; r++ {
		if r >= maxRounds {
			return nil, &StuckError{MaxRounds: maxRounds, Running: st.running}
		}
		activeN := len(st.active)
		if st.adv != nil {
			// Stalled nodes stay live but are denied the round: their Round
			// method is not invoked, so they do not count as active.
			activeN -= st.adv.stalledCount()
		}
		st.activeTrace = append(st.activeTrace, activeN)
		if r > 0 {
			// No rotation before round 0: payloads carved during Init share
			// the first buffer with round 0's and live just as long.
			st.arena.rotate()
		}
		var roundStart time.Time
		if st.tel != nil {
			roundStart = time.Now()
		}
		live := st.active[:0]
		for _, v := range st.active {
			if st.adv != nil && st.adv.stalled[v] {
				live = append(live, v)
				continue
			}
			if err := st.step(int(v), r); err != nil {
				return nil, err
			}
			if !st.done[v] {
				live = append(live, v)
			}
		}
		st.active = live
		if st.tel != nil {
			computeNS := time.Since(roundStart).Nanoseconds()
			stagedN := len(st.staged)
			if st.adv != nil {
				// The staged lane counts what programs emitted, including
				// what the adversary then dropped, cut or held.
				stagedN += st.adv.roundDrops + st.adv.roundCuts + st.adv.roundDelays
			}
			mode := st.finishRound()
			st.tel.recordRound(time.Since(roundStart).Nanoseconds(),
				[]int64{computeNS}, []int{stagedN}, []DeliveryMode{mode})
		} else {
			st.finishRound()
		}
		if st.adv != nil {
			st.adversaryBoundary(r)
		}
		st.progress()
	}
	return st.result(), nil
}
