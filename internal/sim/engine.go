package sim

import (
	"fmt"

	"randlocal/internal/graph"
	"randlocal/internal/randomness"
)

// DefaultMaxRounds caps simulations whose config does not set MaxRounds; it
// is generous relative to the poly(log n) complexities under study, so
// hitting it indicates a livelocked program, not a slow one.
const DefaultMaxRounds = 1 << 20

// Config describes one simulation: the network, identifier assignment,
// randomness regime, bandwidth regime, and termination cap.
type Config struct {
	// Graph is the communication network. Required.
	Graph *graph.Graph
	// IDs assigns the unique identifier of each node; nil means IDs equal
	// node indices. Use the helpers in ids.go for random or adversarial
	// assignments. Must be injective (validated).
	IDs []uint64
	// Source grants randomness; nil runs the network fully
	// deterministically (every NodeCtx.Rand is nil).
	Source randomness.Source
	// DeclaredN is the network size told to the (non-uniform) node
	// programs; 0 means the true size. Values larger than the true size
	// implement the lying-about-n reduction of Theorem 4.3.
	DeclaredN int
	// MaxMessageBits bounds every message's size: 0 means unbounded (the
	// LOCAL model); CongestBits(n) gives the standard CONGEST bound.
	MaxMessageBits int
	// MaxRounds caps execution; 0 means DefaultMaxRounds.
	MaxRounds int
	// KT0 hides neighbor identifiers at time zero (NeighborIDs = nil).
	// The default (false) is the usual KT1 convention, which changes round
	// complexities by at most one round.
	KT0 bool
	// Scheduler selects the engine Execute dispatches to; Auto (the zero
	// value) defers to the package default set by SetDefaultScheduler.
	// Calling Run, RunConcurrent or RunParallel directly ignores it.
	Scheduler Scheduler
	// Workers is the pool size for the Parallel scheduler; 0 means the
	// package default, falling back to runtime.GOMAXPROCS(0).
	Workers int
}

// CongestBits returns the standard CONGEST bandwidth bound used throughout
// the experiments: c·⌈log₂(n+1)⌉ bits with c = 8, comfortably enough for a
// constant number of identifiers and counters per message. The ⌈log₂(n+1)⌉
// factor is floored at 6, so the bound never drops below 48 bits and tiny
// test networks still admit constant-size headers (the model's O(log n)
// bound absorbs such constants).
func CongestBits(n int) int {
	bits := 1
	for 1<<bits < n+1 {
		bits++
	}
	if bits < 6 {
		bits = 6
	}
	return 8 * bits
}

// Result carries the outputs and the accounting of one simulation.
type Result[T any] struct {
	// Outputs holds each node's output, indexed by node.
	Outputs []T
	// Rounds is the number of synchronous rounds executed: the maximum,
	// over all nodes, of the number of Round calls the engine made before
	// that node halted. A network whose every node halts in its first
	// Round call reports Rounds == 1 even if no message was ever sent.
	Rounds int
	// Messages counts non-nil messages delivered.
	Messages int64
	// BitsTotal is the total size of all delivered messages, in bits.
	BitsTotal int64
	// MaxMessageBits is the largest single message observed, in bits.
	MaxMessageBits int
}

// engineState is the shared substrate of all three schedulers. The message
// plane is flat: every per-port quantity lives in a single contiguous array
// indexed by the graph's CSR half-edge index i = off[v] + p ("port p of
// node v"), so a round is one linear sweep over cache-resident buffers
// instead of n small-slice walks, and a run allocates O(1) slices instead
// of O(n).
type engineState[T any] struct {
	cfg   Config
	g     *graph.Graph
	n     int
	off   []int64 // CSR offsets, shared with (and owned by) the graph
	adjf  []int32 // CSR flat neighbor array
	rev   []int32 // CSR reverse half-edge table
	progs []NodeProgram[T]
	done  []bool
	// inbox[i] is what node v received on port p this round; next[i] is
	// what will arrive there next round. outbox is the engine-owned
	// scratch exposed to programs as NodeCtx.Outbox, one slot per
	// half-edge.
	inbox  []Message
	next   []Message
	outbox []Message
	ctxs   []NodeCtx

	running  int
	rounds   int
	messages int64
	bits     int64
	maxBits  int
}

func newEngineState[T any](cfg Config, factory func(v int) NodeProgram[T]) (*engineState[T], error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("sim: config requires a graph")
	}
	n := cfg.Graph.N()
	ids := cfg.IDs
	if ids != nil {
		if len(ids) != n {
			return nil, fmt.Errorf("sim: %d IDs for %d nodes", len(ids), n)
		}
		seen := make(map[uint64]int, n)
		for v, id := range ids {
			if prev, dup := seen[id]; dup {
				return nil, fmt.Errorf("sim: duplicate ID %d at nodes %d and %d", id, prev, v)
			}
			seen[id] = v
		}
	}
	declaredN := cfg.DeclaredN
	if declaredN == 0 {
		declaredN = n
	}
	if declaredN < n {
		return nil, fmt.Errorf("sim: declared size %d below true size %d", declaredN, n)
	}
	off, adjf, rev := cfg.Graph.CSR()
	h := len(adjf) // 2m half-edges
	st := &engineState[T]{
		cfg:     cfg,
		g:       cfg.Graph,
		n:       n,
		off:     off,
		adjf:    adjf,
		rev:     rev,
		progs:   make([]NodeProgram[T], n),
		done:    make([]bool, n),
		inbox:   make([]Message, h),
		next:    make([]Message, h),
		outbox:  make([]Message, h),
		ctxs:    make([]NodeCtx, n),
		running: n,
	}
	var shared *randomness.Shared
	if s, ok := cfg.Source.(*randomness.Shared); ok {
		shared = s
	}
	// Neighbor identifiers live in one flat half-edge-indexed array too;
	// each node's view is a subslice.
	var nids []uint64
	if !cfg.KT0 {
		nids = make([]uint64, h)
		if ids == nil {
			for i, w := range adjf {
				nids[i] = uint64(w)
			}
		} else {
			for i, w := range adjf {
				nids[i] = ids[w]
			}
		}
	}
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		id := uint64(v)
		if ids != nil {
			id = ids[v]
		}
		ctx := &st.ctxs[v]
		*ctx = NodeCtx{
			Index:  v,
			ID:     id,
			Degree: int(hi - lo),
			N:      declaredN,
			Shared: shared,
			Outbox: st.outbox[lo:hi:hi],
		}
		if !cfg.KT0 {
			ctx.NeighborIDs = nids[lo:hi:hi]
		}
		if cfg.Source != nil && cfg.Source.Has(v) {
			ctx.Rand = cfg.Source.Stream(v)
		}
		st.progs[v] = factory(v)
		st.progs[v].Init(ctx)
	}
	return st, nil
}

// roundFor invokes node v's compute phase for round r against its
// flat-inbox window.
func (st *engineState[T]) roundFor(v, r int) ([]Message, bool) {
	lo, hi := st.off[v], st.off[v+1]
	return st.progs[v].Round(r, st.inbox[lo:hi:hi])
}

// step runs the compute phase for node v in round r and stages its outbox
// into neighbors' next-round slots. It returns a bandwidth error if v
// violates the CONGEST bound.
func (st *engineState[T]) step(v, r int) error {
	out, nodeDone := st.roundFor(v, r)
	lo := st.off[v]
	if deg := int(st.off[v+1] - lo); len(out) > deg {
		return fmt.Errorf("sim: node %d produced %d outbox entries for degree %d", v, len(out), deg)
	}
	for p, msg := range out {
		if msg == nil {
			continue
		}
		if st.cfg.MaxMessageBits > 0 && msg.BitLen() > st.cfg.MaxMessageBits {
			return &BandwidthError{Node: v, Round: r, Bits: msg.BitLen(), Limit: st.cfg.MaxMessageBits}
		}
		st.next[st.rev[lo+int64(p)]] = msg
	}
	if nodeDone {
		st.done[v] = true
		st.running--
	}
	return nil
}

// deliver moves the staged half-edge window [lo, hi) from next into inbox,
// clearing next and tallying the delivered messages. It is the single
// linear sweep both the sequential engine (whole plane) and each parallel
// shard (its own window) finish a round with.
func deliver(inbox, next []Message, lo, hi int64) (msgs, bits int64, maxBits int) {
	for i := lo; i < hi; i++ {
		msg := next[i]
		if msg != nil {
			msgs++
			b := msg.BitLen()
			bits += int64(b)
			if b > maxBits {
				maxBits = b
			}
		}
		inbox[i] = msg
		next[i] = nil
	}
	return msgs, bits, maxBits
}

// finishRound tallies delivered messages and swaps inboxes for the next
// round. It must run after every node's compute phase for round r.
func (st *engineState[T]) finishRound() {
	msgs, bits, maxBits := deliver(st.inbox, st.next, 0, int64(len(st.next)))
	st.messages += msgs
	st.bits += bits
	if maxBits > st.maxBits {
		st.maxBits = maxBits
	}
	st.rounds++
}

func (st *engineState[T]) result() *Result[T] {
	outputs := make([]T, st.n)
	for v := range outputs {
		outputs[v] = st.progs[v].Output()
	}
	return &Result[T]{
		Outputs:        outputs,
		Rounds:         st.rounds,
		Messages:       st.messages,
		BitsTotal:      st.bits,
		MaxMessageBits: st.maxBits,
	}
}

// Run executes the network with the deterministic sequential scheduler:
// within a round, nodes compute in index order, but — as the model requires
// — every message sent in round r is delivered only at round r+1, so the
// schedule is observationally identical to a fully parallel round.
func Run[T any](cfg Config, factory func(v int) NodeProgram[T]) (*Result[T], error) {
	st, err := newEngineState(cfg, factory)
	if err != nil {
		return nil, err
	}
	return st.runSequential(st.maxRounds())
}

// maxRounds resolves the configured round cap.
func (st *engineState[T]) maxRounds() int {
	if st.cfg.MaxRounds == 0 {
		return DefaultMaxRounds
	}
	return st.cfg.MaxRounds
}

// runSequential is the round loop shared by Run and the degenerate
// single-worker case of RunParallel.
func (st *engineState[T]) runSequential(maxRounds int) (*Result[T], error) {
	for r := 0; st.running > 0; r++ {
		if r >= maxRounds {
			return nil, &StuckError{MaxRounds: maxRounds, Running: st.running}
		}
		for v := 0; v < st.n; v++ {
			if st.done[v] {
				continue
			}
			if err := st.step(v, r); err != nil {
				return nil, err
			}
		}
		st.finishRound()
	}
	return st.result(), nil
}
