package sim

import (
	"errors"
	"fmt"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

// randFlood floods a per-node value for a fixed number of rounds, min-
// combining what it hears. The value mixes the node's private random bits
// (when the regime grants any) with its ID, and nodes halt at staggered
// rounds, so the program exercises randomness plumbing, varint-sized
// messages, and mid-run termination on every scheduler.
type randFlood struct {
	rounds int
	ctx    *NodeCtx
	best   uint64
}

func (f *randFlood) Init(ctx *NodeCtx) {
	f.ctx = ctx
	if ctx.Rand != nil {
		f.best = ctx.Rand.Bits(8)<<32 | ctx.ID
	} else {
		f.best = ctx.ID<<16 | 0xbeef
	}
}

func (f *randFlood) Round(r int, inbox []Message) ([]Message, bool) {
	for _, m := range inbox {
		if m == nil {
			continue
		}
		if x, _, ok := ReadUint(m); ok && x < f.best {
			f.best = x
		}
	}
	if r >= f.rounds+int(f.ctx.ID%3) {
		return nil, true
	}
	out := make([]Message, f.ctx.Degree)
	payload := Uints(f.best)
	for p := range out {
		out[p] = payload
	}
	return out, false
}

func (f *randFlood) Output() uint64 { return f.best }

func assertResultsEqual(t *testing.T, label string, want, got *Result[uint64]) {
	t.Helper()
	if got.Rounds != want.Rounds {
		t.Errorf("%s: rounds = %d, want %d", label, got.Rounds, want.Rounds)
	}
	if len(got.ActivePerRound) != len(want.ActivePerRound) {
		t.Errorf("%s: active trace length = %d, want %d", label, len(got.ActivePerRound), len(want.ActivePerRound))
	} else {
		for r := range want.ActivePerRound {
			if got.ActivePerRound[r] != want.ActivePerRound[r] {
				t.Errorf("%s: active[%d] = %d, want %d", label, r, got.ActivePerRound[r], want.ActivePerRound[r])
				break
			}
		}
	}
	if got.Messages != want.Messages {
		t.Errorf("%s: messages = %d, want %d", label, got.Messages, want.Messages)
	}
	if got.BitsTotal != want.BitsTotal {
		t.Errorf("%s: bits = %d, want %d", label, got.BitsTotal, want.BitsTotal)
	}
	if got.MaxMessageBits != want.MaxMessageBits {
		t.Errorf("%s: maxMessageBits = %d, want %d", label, got.MaxMessageBits, want.MaxMessageBits)
	}
	for v := range want.Outputs {
		if got.Outputs[v] != want.Outputs[v] {
			t.Fatalf("%s: node %d output %d, want %d", label, v, got.Outputs[v], want.Outputs[v])
		}
	}
}

// TestSchedulerEquivalence is the determinism proof of the parallel engine:
// on every graph family and randomness regime, Run, RunConcurrent and
// RunParallel (across worker counts) must agree on every Result field.
func TestSchedulerEquivalence(t *testing.T) {
	rng := prng.New(2019)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPConnected(120, 0.04, rng)},
		{"tree", graph.RandomTree(150, rng)},
		{"powerlaw", graph.PowerLaw(130, 3, rng)},
	}
	regimes := []struct {
		name string
		mk   func(n int) randomness.Source
	}{
		{"deterministic", func(int) randomness.Source { return nil }},
		{"full", func(int) randomness.Source { return randomness.NewFull(7) }},
		{"shared", func(int) randomness.Source { return randomness.NewShared(64, prng.New(5)) }},
		{"sparse", func(n int) randomness.Source {
			holders := make([]int, 0, n/3+1)
			for v := 0; v < n; v += 3 {
				holders = append(holders, v)
			}
			src, err := randomness.NewSparse(holders, 8, 13)
			if err != nil {
				panic(err)
			}
			return src
		}},
	}
	for _, tg := range graphs {
		n := tg.g.N()
		ids := RandomIDs(n, n, NewSimulationKey(uint64(n)))
		factory := func(int) NodeProgram[uint64] { return &randFlood{rounds: graph.Diameter(tg.g) + 1} }
		for _, reg := range regimes {
			t.Run(tg.name+"/"+reg.name, func(t *testing.T) {
				cfg := Config{Graph: tg.g, IDs: ids, MaxMessageBits: CongestBits(n)}
				cfg.Source = reg.mk(n)
				want, err := Run(cfg, factory)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Source = reg.mk(n)
				got, err := RunConcurrent(cfg, factory)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEqual(t, "concurrent", want, got)
				for _, workers := range []int{0, 1, 2, 3, 7, n + 5} {
					cfg.Source = reg.mk(n)
					got, err := RunParallel(cfg, factory, workers)
					if err != nil {
						t.Fatal(err)
					}
					assertResultsEqual(t, fmt.Sprintf("parallel/workers=%d", workers), want, got)
				}
			})
		}
	}
}

// outboxFlood is randFlood rebuilt on the engine-owned NodeCtx.Outbox
// scratch: it assembles every round's outbox in place instead of
// allocating. Running it through the equivalence harness proves the flat
// outbox windows never leak messages across nodes or rounds on any
// scheduler.
type outboxFlood struct {
	rounds int
	ctx    *NodeCtx
	best   uint64
}

func (f *outboxFlood) Init(ctx *NodeCtx) {
	f.ctx = ctx
	f.best = ctx.ID<<16 | 0xbeef
}

func (f *outboxFlood) Round(r int, inbox []Message) ([]Message, bool) {
	for _, m := range inbox {
		if m == nil {
			continue
		}
		if x, _, ok := ReadUint(m); ok && x < f.best {
			f.best = x
		}
	}
	if r >= f.rounds+int(f.ctx.ID%3) {
		return nil, true
	}
	out := f.ctx.Outbox
	payload := Uints(f.best)
	for p := range out {
		out[p] = payload
		if (r+p)%5 == 0 {
			out[p] = nil // exercise stale-slot clearing on reused buffers
		}
	}
	return out, false
}

func (f *outboxFlood) Output() uint64 { return f.best }

// TestSchedulerEquivalenceWithCtxOutbox runs the zero-allocation outbox
// program on every scheduler and demands identical Results, including the
// message and bit accounting that would drift if a reused outbox slot or a
// shared payload were delivered twice.
func TestSchedulerEquivalenceWithCtxOutbox(t *testing.T) {
	rng := prng.New(77)
	for _, g := range []*graph.Graph{
		graph.GNPConnected(140, 0.05, rng),
		graph.Grid2D(9, 13, true),
	} {
		n := g.N()
		ids := RandomIDs(n, n, NewSimulationKey(uint64(n)))
		cfg := Config{Graph: g, IDs: ids, MaxMessageBits: CongestBits(n)}
		factory := func(int) NodeProgram[uint64] { return &outboxFlood{rounds: graph.Diameter(g) + 1} }
		want, err := Run(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunConcurrent(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, "concurrent", want, got)
		for _, workers := range []int{2, 5, n} {
			got, err := RunParallel(cfg, factory, workers)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, fmt.Sprintf("parallel/workers=%d", workers), want, got)
		}
	}
}

// TestRunParallelReshardEquivalence drives the re-sharding path hard: the
// staggered-halting program shrinks the worklist geometrically, so the
// coordinator re-cuts the shards at every halving (roughly log₂ n times per
// run), across graphs with skewed degree distributions where the re-cut
// actually moves boundaries. Results must stay byte-identical to the
// sequential engine through every cut — including the delivery of messages
// staged to nodes that changed shards, and the clearing of inbox slots
// recorded under the old boundaries.
func TestRunParallelReshardEquivalence(t *testing.T) {
	rng := prng.New(404)
	for _, tg := range []struct {
		name string
		g    *graph.Graph
	}{
		{"powerlaw", graph.PowerLaw(400, 3, rng)},
		{"gnp", graph.GNPConnected(350, 0.02, rng)},
		{"two-components", graph.Disjoint(graph.Ring(180), graph.RandomTree(200, rng))},
	} {
		t.Run(tg.name, func(t *testing.T) {
			n := tg.g.N()
			ids := RandomIDs(n, 3, NewSimulationKey(uint64(n)*7+5))
			cfg := Config{Graph: tg.g, IDs: ids, MaxMessageBits: CongestBits(n)}
			factory := func(int) NodeProgram[uint64] { return &staggeredHalt{} }
			want, err := Run(cfg, factory)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3, 8} {
				got, err := RunParallel(cfg, factory, workers)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEqual(t, fmt.Sprintf("workers=%d", workers), want, got)
			}
		})
	}
}

// TestRunParallelSmallNetworks exercises the engine where shards are thinner
// than the pool: the -race runs in CI hammer these paths.
func TestRunParallelSmallNetworks(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5} {
		g := graph.Path(n)
		res, err := RunParallel(Config{Graph: g}, floodFactory(n), 4)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for v, out := range res.Outputs {
			if out != 0 {
				t.Errorf("n=%d node %d: %d", n, v, out)
			}
		}
	}
}

func TestRunParallelBandwidthEnforced(t *testing.T) {
	g := graph.Ring(8)
	cfg := Config{Graph: g, MaxMessageBits: CongestBits(8)}
	_, err := RunParallel(cfg, func(int) NodeProgram[int] { return &bigTalker{} }, 4)
	var bw *BandwidthError
	if !errors.As(err, &bw) {
		t.Fatalf("got %v, want BandwidthError", err)
	}
	// Every node violates in round 0; the engine must deterministically
	// report the lowest-indexed one, exactly like Run.
	if bw.Node != 0 || bw.Bits != 8000 {
		t.Errorf("reported node=%d bits=%d, want node=0 bits=8000", bw.Node, bw.Bits)
	}
}

func TestRunParallelOversizedOutboxRejected(t *testing.T) {
	g := graph.Ring(8)
	if _, err := RunParallel(Config{Graph: g}, func(int) NodeProgram[int] { return &oversender{} }, 3); err == nil {
		t.Error("parallel accepted oversized outbox")
	}
}

func TestRunParallelStuckDetection(t *testing.T) {
	g := graph.Path(6)
	cfg := Config{Graph: g, MaxRounds: 10}
	_, err := RunParallel(cfg, func(int) NodeProgram[int] { return &sleeper{} }, 3)
	var stuck *StuckError
	if !errors.As(err, &stuck) {
		t.Fatalf("got %v, want StuckError", err)
	}
	if stuck.Running != 6 {
		t.Errorf("running = %d", stuck.Running)
	}
}

func TestExecuteDispatch(t *testing.T) {
	g := graph.Ring(12)
	want, err := Run(Config{Graph: g}, floodFactory(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []Scheduler{Auto, Sequential, Concurrent, Parallel} {
		got, err := Execute(Config{Graph: g, Scheduler: sched, Workers: 3}, floodFactory(6))
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		assertResultsEqual(t, "execute/"+sched.String(), want, got)
	}

	// Auto follows the package default.
	SetDefaultScheduler(Parallel, 2)
	defer SetDefaultScheduler(Sequential, 0)
	got, err := Execute(Config{Graph: g}, floodFactory(6))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "execute/default-parallel", want, got)
}

func TestParseScheduler(t *testing.T) {
	for name, want := range map[string]Scheduler{
		"": Auto, "auto": Auto,
		"sequential": Sequential, "seq": Sequential,
		"concurrent": Concurrent,
		"parallel":   Parallel, "par": Parallel,
	} {
		got, err := ParseScheduler(name)
		if err != nil || got != want {
			t.Errorf("ParseScheduler(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseScheduler("bogus"); err == nil {
		t.Error("bogus scheduler accepted")
	}
	if Parallel.String() != "parallel" {
		t.Errorf("String() = %q", Parallel.String())
	}
}
