package sim

import (
	"fmt"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

func mustAdversary(t *testing.T, key SimulationKey, cfg AdversaryConfig) *Adversary {
	t.Helper()
	adv, err := NewAdversary(key, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return adv
}

func assertInjectedEqual(t *testing.T, label string, want, got *Telemetry) {
	t.Helper()
	if want == nil || got == nil {
		t.Fatalf("%s: telemetry missing (want %v, got %v) — an adversary run must force collection", label, want != nil, got != nil)
	}
	if len(got.Injected) != len(want.Injected) {
		t.Fatalf("%s: %d injected events, want %d\ngot:  %v\nwant: %v",
			label, len(got.Injected), len(want.Injected), got.Injected, want.Injected)
	}
	for i := range want.Injected {
		if got.Injected[i] != want.Injected[i] {
			t.Fatalf("%s: injected[%d] = %v, want %v", label, i, got.Injected[i], want.Injected[i])
		}
	}
}

// TestAdversaryZeroBudgetInvariance is the proof that stream isolation
// works end to end: attaching an enabled adversary whose budgets are all
// zero yields a byte-identical Result — outputs, rounds, active trace,
// message/bit counters — to no adversary at all, on every scheduler.
func TestAdversaryZeroBudgetInvariance(t *testing.T) {
	rng := prng.New(31)
	for _, tg := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPConnected(130, 0.04, rng)},
		{"powerlaw", graph.PowerLaw(140, 3, rng)},
	} {
		t.Run(tg.name, func(t *testing.T) {
			n := tg.g.N()
			key := NewSimulationKey(uint64(n) * 11)
			ids := RandomIDs(n, n, key)
			factory := func(int) NodeProgram[uint64] { return &randFlood{rounds: graph.Diameter(tg.g) + 1} }
			base := Config{Graph: tg.g, IDs: ids, MaxMessageBits: CongestBits(n)}

			run := func(cfg Config, sched Scheduler, workers int) *Result[uint64] {
				cfg.Source = key.FullSource()
				var res *Result[uint64]
				var err error
				switch sched {
				case Concurrent:
					res, err = RunConcurrent(cfg, factory)
				case Parallel:
					res, err = RunParallel(cfg, factory, workers)
				default:
					res, err = Run(cfg, factory)
				}
				if err != nil {
					t.Fatal(err)
				}
				return res
			}

			want := run(base, Sequential, 0)
			faulted := base
			faulted.Adversary = mustAdversary(t, key, AdversaryConfig{})
			for _, sc := range []struct {
				label   string
				sched   Scheduler
				workers int
			}{
				{"sequential", Sequential, 0},
				{"concurrent", Concurrent, 0},
				{"parallel/1", Parallel, 1},
				{"parallel/3", Parallel, 3},
				{"parallel/8", Parallel, 8},
			} {
				got := run(faulted, sc.sched, sc.workers)
				assertResultsEqual(t, sc.label, want, got)
				if got.Telemetry == nil {
					t.Fatalf("%s: adversary run did not force telemetry", sc.label)
				}
				if len(got.Telemetry.Injected) != 0 {
					t.Errorf("%s: zero-budget adversary injected %v", sc.label, got.Telemetry.Injected)
				}
			}
		})
	}
}

// TestAdversaryFaultEquivalence extends the scheduler-equivalence suite to
// faulted executions: under deterministic drop/delay/crash/churn/stall
// schedules, Run, RunConcurrent and RunParallel (across worker counts and
// every reshard policy) must agree on every Result field and on the
// injected-event record.
func TestAdversaryFaultEquivalence(t *testing.T) {
	rng := prng.New(505)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPConnected(120, 0.05, rng)},
		{"powerlaw", graph.PowerLaw(130, 3, rng)},
	}
	budgets := []struct {
		name string
		cfg  AdversaryConfig
	}{
		{"drop", AdversaryConfig{DropProb: 0.10}},
		{"delay", AdversaryConfig{DelayProb: 0.10, DelayMax: 3}},
		{"crash", AdversaryConfig{CrashPerRound: 2}},
		{"stall", AdversaryConfig{StallPerRound: 3}},
		{"churn", AdversaryConfig{ChurnPerRound: 4, HealPerRound: 1}},
		{"kitchen-sink", AdversaryConfig{
			DropProb: 0.05, DelayProb: 0.05, DelayMax: 2,
			CrashPerRound: 1, ChurnPerRound: 2, HealPerRound: 1, StallPerRound: 2,
		}},
	}
	for _, tg := range graphs {
		n := tg.g.N()
		key := NewSimulationKey(uint64(n)*13 + 1)
		ids := RandomIDs(n, n, key)
		factory := func(int) NodeProgram[uint64] { return &randFlood{rounds: graph.Diameter(tg.g) + 2} }
		for _, b := range budgets {
			t.Run(tg.name+"/"+b.name, func(t *testing.T) {
				cfg := Config{
					Graph: tg.g, IDs: ids, MaxMessageBits: CongestBits(n),
					Adversary: mustAdversary(t, key, b.cfg),
				}
				cfg.Source = key.FullSource()
				want, err := Run(cfg, factory)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Source = key.FullSource()
				got, err := RunConcurrent(cfg, factory)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEqual(t, "concurrent", want, got)
				assertInjectedEqual(t, "concurrent", want.Telemetry, got.Telemetry)
				for _, workers := range []int{1, 2, 3, 8} {
					for _, policy := range []ReshardPolicy{ReshardAdaptive, ReshardHalving, ReshardOff} {
						cfg.Source = key.FullSource()
						cfg.Reshard = policy
						got, err := RunParallel(cfg, factory, workers)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("parallel/workers=%d/%v", workers, policy)
						assertResultsEqual(t, label, want, got)
						assertInjectedEqual(t, label, want.Telemetry, got.Telemetry)
					}
				}
			})
		}
	}
}

// TestAdversaryAlgorithmStreamUntouched is the engine-level golden
// isolation check: a faulted run consumes adversary coins, yet the
// algorithm coins each node draws are the exact sequence of the fault-free
// run — node outputs that depend only on private coins (not on messages)
// are bit-identical with and without an active adversary.
func TestAdversaryAlgorithmStreamUntouched(t *testing.T) {
	g := graph.GNPConnected(150, 0.05, prng.New(8))
	key := NewSimulationKey(77)
	// Each node outputs a pure function of its private coins, drawn over
	// several rounds; messages (all subject to drops) don't affect it.
	factory := func(int) NodeProgram[uint64] { return &coinEcho{rounds: 6} }
	cfg := Config{Graph: g, MaxMessageBits: CongestBits(g.N())}

	cfg.Source = key.FullSource()
	clean, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Source = key.FullSource()
	cfg.Adversary = mustAdversary(t, key, AdversaryConfig{DropProb: 0.5, ChurnPerRound: 3})
	faulted, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	for v := range clean.Outputs {
		if clean.Outputs[v] != faulted.Outputs[v] {
			t.Fatalf("node %d drew different algorithm coins under faults: %x != %x",
				v, faulted.Outputs[v], clean.Outputs[v])
		}
	}
	if faulted.Messages >= clean.Messages {
		t.Errorf("drops did not reduce deliveries: %d >= %d", faulted.Messages, clean.Messages)
	}
}

// coinEcho draws private coins each round, broadcasts a constant, and
// outputs only the coin digest — so faults can change its inbox but never
// its output unless the coin stream itself was perturbed.
type coinEcho struct {
	rounds int
	ctx    *NodeCtx
	digest uint64
}

func (c *coinEcho) Init(ctx *NodeCtx) { c.ctx = ctx }

func (c *coinEcho) Round(r int, inbox []Message) ([]Message, bool) {
	c.digest = c.digest*0x100000001B3 ^ c.ctx.Rand.Bits(16)
	if r >= c.rounds {
		return nil, true
	}
	return c.ctx.Broadcast(c.ctx.Uints(1)), false
}

func (c *coinEcho) Output() uint64 { return c.digest }

// TestAdversaryTelemetryReconciliation checks the faulted accounting
// identity on every scheduler: the telemetry's staged (emitted) sums equal
// delivered Messages plus every recorded loss (drops, cuts, supersedes,
// expiries — stall losses and crashes destroy already-delivered messages,
// so they do not enter the identity), and the injected-event record is
// ordered: non-decreasing in round, strictly increasing per kind.
func TestAdversaryTelemetryReconciliation(t *testing.T) {
	rng := prng.New(606)
	g := graph.GNPConnected(140, 0.05, rng)
	n := g.N()
	key := NewSimulationKey(999)
	ids := RandomIDs(n, n, key)
	factory := func(int) NodeProgram[uint64] { return &randFlood{rounds: graph.Diameter(g) + 2} }
	cfg := Config{
		Graph: g, IDs: ids, MaxMessageBits: CongestBits(n),
		Adversary: mustAdversary(t, key, AdversaryConfig{
			DropProb: 0.08, DelayProb: 0.08, DelayMax: 4,
			CrashPerRound: 1, ChurnPerRound: 2, StallPerRound: 2,
		}),
	}
	for _, sc := range []struct {
		label string
		run   func() (*Result[uint64], error)
	}{
		{"sequential", func() (*Result[uint64], error) { cfg.Source = key.FullSource(); return Run(cfg, factory) }},
		{"concurrent", func() (*Result[uint64], error) { cfg.Source = key.FullSource(); return RunConcurrent(cfg, factory) }},
		{"parallel", func() (*Result[uint64], error) { cfg.Source = key.FullSource(); return RunParallel(cfg, factory, 4) }},
	} {
		t.Run(sc.label, func(t *testing.T) {
			res, err := sc.run()
			if err != nil {
				t.Fatal(err)
			}
			tel := res.Telemetry
			if tel == nil {
				t.Fatal("adversary run did not force telemetry")
			}
			var staged int64
			for _, rs := range tel.Rounds {
				for _, s := range rs.Staged {
					staged += int64(s)
				}
			}
			losses := map[InjectKind]int64{}
			for _, ev := range tel.Injected {
				losses[ev.Kind] += int64(ev.Count)
			}
			want := res.Messages + losses[InjectDrop] + losses[InjectCut] +
				losses[InjectSupersede] + losses[InjectExpire]
			if staged != want {
				t.Errorf("staged sum %d != messages %d + drops %d + cuts %d + supersedes %d + expiries %d",
					staged, res.Messages, losses[InjectDrop], losses[InjectCut],
					losses[InjectSupersede], losses[InjectExpire])
			}
			if losses[InjectDrop] == 0 || losses[InjectDelay] == 0 || losses[InjectCrash] == 0 {
				t.Errorf("expected some drops/delays/crashes, got %v", losses)
			}

			lastRound := -1
			lastPerKind := map[InjectKind]int{}
			for _, ev := range tel.Injected {
				if ev.Round < lastRound {
					t.Fatalf("injected events not ordered: %v", tel.Injected)
				}
				lastRound = ev.Round
				if prev, seen := lastPerKind[ev.Kind]; seen && ev.Round <= prev {
					t.Fatalf("kind %v not strictly increasing in round: %v", ev.Kind, tel.Injected)
				}
				lastPerKind[ev.Kind] = ev.Round
				if ev.Count <= 0 {
					t.Fatalf("empty injected event recorded: %v", ev)
				}
				if ev.Round >= res.Rounds {
					t.Fatalf("event round %d beyond executed rounds %d", ev.Round, res.Rounds)
				}
			}
		})
	}
}

// TestAdversaryForcesTelemetryOffSwitch double-checks the latch logic: with
// SetTelemetry off, a fault-free run carries nil telemetry and an adversary
// run still carries a record.
func TestAdversaryForcesTelemetry(t *testing.T) {
	if TelemetryEnabled() {
		t.Fatal("test expects the global telemetry switch to be off")
	}
	g := graph.Ring(20)
	clean, err := Run(Config{Graph: g}, floodFactory(4))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Telemetry != nil {
		t.Error("fault-free run collected telemetry with the switch off")
	}
	adv := mustAdversary(t, NewSimulationKey(1), AdversaryConfig{DropProb: 0.3})
	faulted, err := Run(Config{Graph: g, Adversary: adv}, floodFactory(4))
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Telemetry == nil {
		t.Error("adversary run did not force telemetry")
	}
}

// TestAdversaryConfigValidation rejects out-of-range budgets.
func TestAdversaryConfigValidation(t *testing.T) {
	key := NewSimulationKey(3)
	for _, bad := range []AdversaryConfig{
		{DropProb: -0.1},
		{DropProb: 1.5},
		{DelayProb: 2},
		{DropProb: 0.7, DelayProb: 0.7},
		{CrashPerRound: -1},
		{StallPerRound: -2},
	} {
		if _, err := NewAdversary(key, bad); err == nil {
			t.Errorf("accepted invalid config %+v", bad)
		}
	}
	adv := mustAdversary(t, key, AdversaryConfig{DelayProb: 0.1})
	if adv.Config().DelayMax != 1 {
		t.Errorf("DelayMax not normalized to 1: %d", adv.Config().DelayMax)
	}
	if !(AdversaryConfig{}).Zero() {
		t.Error("zero config not reported as Zero")
	}
}

// TestAdversaryDeterministicReuse runs one Adversary value twice and
// demands identical faulted Results — the Adversary is immutable and every
// run derives fresh per-run state from it.
func TestAdversaryDeterministicReuse(t *testing.T) {
	g := graph.GNPConnected(100, 0.06, prng.New(4))
	key := NewSimulationKey(55)
	adv := mustAdversary(t, key, AdversaryConfig{DropProb: 0.1, CrashPerRound: 1, StallPerRound: 1})
	factory := func(int) NodeProgram[uint64] { return &randFlood{rounds: graph.Diameter(g) + 2} }
	cfg := Config{Graph: g, MaxMessageBits: CongestBits(g.N()), Adversary: adv}
	cfg.Source = key.FullSource()
	a, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Source = key.FullSource()
	b, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "reuse", a, b)
	assertInjectedEqual(t, "reuse", a.Telemetry, b.Telemetry)
}

// TestAdversarySmallNetworks hammers the degenerate paths: single node,
// empty graph, a crash budget exceeding the population, stall fairness on a
// two-node path.
func TestAdversarySmallNetworks(t *testing.T) {
	key := NewSimulationKey(12)
	for _, n := range []int{0, 1, 2, 3} {
		g := graph.Path(n)
		adv := mustAdversary(t, key, AdversaryConfig{
			DropProb: 0.3, CrashPerRound: 5, StallPerRound: 5, ChurnPerRound: 3,
		})
		for _, sc := range []struct {
			label string
			run   func(Config) (*Result[uint64], error)
		}{
			{"sequential", func(c Config) (*Result[uint64], error) { return Run(c, floodFactory(n+2)) }},
			{"concurrent", func(c Config) (*Result[uint64], error) { return RunConcurrent(c, floodFactory(n+2)) }},
			{"parallel", func(c Config) (*Result[uint64], error) { return RunParallel(c, floodFactory(n+2), 4) }},
		} {
			if _, err := sc.run(Config{Graph: g, Adversary: adv}); err != nil {
				t.Errorf("%s n=%d: %v", sc.label, n, err)
			}
		}
	}
}

// TestAdversaryRandomnessSourceIndependence checks the zero-budget
// invariance under the shared and sparse regimes too — the adversary must
// not interact with any source type.
func TestAdversaryRandomnessSourceIndependence(t *testing.T) {
	g := graph.GNPConnected(90, 0.06, prng.New(21))
	n := g.N()
	key := NewSimulationKey(1010)
	holders := make([]int, 0, n/2)
	for v := 0; v < n; v += 2 {
		holders = append(holders, v)
	}
	for _, reg := range []struct {
		name string
		mk   func() randomness.Source
	}{
		{"shared", func() randomness.Source { return key.SharedSource(64) }},
		{"sparse", func() randomness.Source {
			src, err := key.SparseSource(holders, 8)
			if err != nil {
				t.Fatal(err)
			}
			return src
		}},
	} {
		t.Run(reg.name, func(t *testing.T) {
			factory := func(int) NodeProgram[uint64] { return &randFlood{rounds: graph.Diameter(g) + 1} }
			cfg := Config{Graph: g, MaxMessageBits: CongestBits(n)}
			cfg.Source = reg.mk()
			want, err := Run(cfg, factory)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Source = reg.mk()
			cfg.Adversary = mustAdversary(t, key, AdversaryConfig{})
			got, err := Run(cfg, factory)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, reg.name, want, got)
		})
	}
}
