package sim

import (
	"fmt"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
)

// TestEnginePoolWarmColdEquivalence is the correctness proof of the engine
// pool: on every scheduler, re-shard policy and plane representation, a run
// drawing its buffers from a warm slab — one a previous run of the same shape
// already dirtied — must produce a Result byte-identical to the cold
// (unpooled) run. The pooled run executes twice so the second pass really
// reuses a parked slab rather than building a fresh one.
func TestEnginePoolWarmColdEquivalence(t *testing.T) {
	defer SetTelemetry(TelemetryEnabled())
	SetTelemetry(true)
	rng := prng.New(8081)
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPConnected(130, 0.04, rng)},
		{"powerlaw", graph.PowerLaw(140, 3, rng)},
		{"ring-odd", graph.Ring(67)},
	}
	for _, tg := range graphs {
		n := tg.g.N()
		key := NewSimulationKey(uint64(n)*31 + 11)
		ids := RandomIDs(n, n, key)
		factory := func(int) NodeProgram[uint64] { return &bitGossip{rounds: graph.Diameter(tg.g) + 2} }
		t.Run(tg.name, func(t *testing.T) {
			pool := NewEnginePool()
			check := func(t *testing.T, label string, cfg Config, run func(Config) (*Result[uint64], error)) {
				t.Helper()
				cfg.Source = key.FullSource()
				want, err := run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for pass := 1; pass <= 2; pass++ {
					warm := cfg
					warm.Pool = pool
					warm.Source = key.FullSource()
					got, err := run(warm)
					if err != nil {
						t.Fatalf("%s pooled pass %d: %v", label, pass, err)
					}
					assertResultsEqual(t, fmt.Sprintf("%s/pooled-pass-%d", label, pass), want, got)
				}
			}
			base := Config{Graph: tg.g, IDs: ids, MaxMessageBits: CongestBits(n)}
			for _, unpack := range []bool{false, true} {
				cfg := base
				cfg.Unpacked = unpack
				check(t, fmt.Sprintf("sequential/unpacked=%v", unpack), cfg,
					func(c Config) (*Result[uint64], error) { return Run(c, factory) })
			}
			check(t, "concurrent", base,
				func(c Config) (*Result[uint64], error) { return RunConcurrent(c, factory) })
			for _, workers := range []int{1, 2, 3, 8} {
				for _, policy := range []ReshardPolicy{ReshardAdaptive, ReshardHalving, ReshardOff} {
					for _, unpack := range []bool{false, true} {
						cfg := base
						cfg.Reshard = policy
						cfg.Unpacked = unpack
						label := fmt.Sprintf("parallel/workers=%d/%v/unpacked=%v", workers, policy, unpack)
						check(t, label, cfg,
							func(c Config) (*Result[uint64], error) { return RunParallel(c, factory, workers) })
					}
				}
			}
			if pool.idle() == 0 {
				t.Error("pool retained no slabs after pooled runs")
			}
		})
	}
}

// TestEnginePoolFaultedEquivalence extends the warm-vs-cold proof to faulted
// executions: the adversary's injected-event record — part of the run's
// reproducibility contract — must also match exactly, so a dirty slab can
// never shift a fault schedule.
func TestEnginePoolFaultedEquivalence(t *testing.T) {
	rng := prng.New(919)
	g := graph.GNPConnected(120, 0.05, rng)
	n := g.N()
	key := NewSimulationKey(uint64(n)*37 + 13)
	ids := RandomIDs(n, n, key)
	factory := func(int) NodeProgram[uint64] { return &bitGossip{rounds: graph.Diameter(g) + 2} }
	adv := mustAdversary(t, key, AdversaryConfig{
		DropProb: 0.05, DelayProb: 0.05, DelayMax: 2,
		CrashPerRound: 1, ChurnPerRound: 2, HealPerRound: 1, StallPerRound: 2,
	})
	base := Config{Graph: g, IDs: ids, MaxMessageBits: CongestBits(n), Adversary: adv}
	pool := NewEnginePool()
	check := func(label string, cfg Config, run func(Config) (*Result[uint64], error)) {
		t.Helper()
		cfg.Source = key.FullSource()
		want, err := run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for pass := 1; pass <= 2; pass++ {
			warm := cfg
			warm.Pool = pool
			warm.Source = key.FullSource()
			got, err := run(warm)
			if err != nil {
				t.Fatalf("%s pooled pass %d: %v", label, pass, err)
			}
			plabel := fmt.Sprintf("%s/pooled-pass-%d", label, pass)
			assertResultsEqual(t, plabel, want, got)
			assertInjectedEqual(t, plabel, want.Telemetry, got.Telemetry)
		}
	}
	check("sequential", base, func(c Config) (*Result[uint64], error) { return Run(c, factory) })
	check("concurrent", base, func(c Config) (*Result[uint64], error) { return RunConcurrent(c, factory) })
	for _, workers := range []int{2, 3, 8} {
		for _, policy := range []ReshardPolicy{ReshardAdaptive, ReshardHalving, ReshardOff} {
			cfg := base
			cfg.Reshard = policy
			check(fmt.Sprintf("parallel/workers=%d/%v", workers, policy), cfg,
				func(c Config) (*Result[uint64], error) { return RunParallel(c, factory, workers) })
		}
	}
}

// TestEnginePoolShapeMismatch pins the pool's keying discipline: runs of
// different graph shapes (or schedulers) must never share a slab — a stale
// plane sized for another graph would corrupt delivery — and two same-shape
// graphs with different structure may share one, because everything
// content-like is rewritten per run.
func TestEnginePoolShapeMismatch(t *testing.T) {
	pool := NewEnginePool()
	ring := graph.Ring(40) // 40 nodes, 80 half-edges
	path := graph.Path(40) // 40 nodes, 78 half-edges: same n, different h
	runOn := func(g *graph.Graph) *Result[uint64] {
		t.Helper()
		res, err := Run(Config{Graph: g, Pool: pool}, floodFactory(4))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	runOn(ring)
	if got := pool.idle(); got != 1 {
		t.Fatalf("after first run: %d idle slabs, want 1", got)
	}
	// Different half-edge count: a second key, not a reuse of the ring slab.
	runOn(path)
	if got := pool.idle(); got != 2 {
		t.Fatalf("after mismatched-shape run: %d idle slabs, want 2", got)
	}
	// Same shape, same key: reuse, no third slab.
	runOn(ring)
	if got := pool.idle(); got != 2 {
		t.Fatalf("after same-shape rerun: %d idle slabs, want 2", got)
	}
	// Same shape on another scheduler: scheduler is part of the key.
	if _, err := RunParallel(Config{Graph: ring, Pool: pool}, floodFactory(4), 2); err != nil {
		t.Fatal(err)
	}
	if got := pool.idle(); got != 3 {
		t.Fatalf("after other-scheduler run: %d idle slabs, want 3", got)
	}

	// Equal shape, different run: a longer program on the slab the short
	// floods dirtied must still match its cold run.
	want, err := Run(Config{Graph: ring}, floodFactory(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Config{Graph: ring, Pool: pool}, floodFactory(7))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "same-shape reuse", want, got)
}

// TestEnginePoolPerKeyCap pins the retention bound: releases beyond the
// per-key cap drop the slab for the GC instead of growing the pool without
// limit.
func TestEnginePoolPerKeyCap(t *testing.T) {
	pool := NewEnginePool()
	g := graph.Ring(16)
	key := slabKey{n: 16, h: 32, sched: Sequential}
	// Hold more slabs live than the cap, then release them all.
	var slabs []*engineSlab
	for i := 0; i < pool.perKey+3; i++ {
		slabs = append(slabs, pool.acquire(key.n, key.h, key.sched))
	}
	for _, s := range slabs {
		s.scrub()
		pool.park(s)
	}
	if got := pool.idle(); got != pool.perKey {
		t.Fatalf("idle = %d, want the per-key cap %d", got, pool.perKey)
	}
	// And the capped pool still serves correct runs.
	want, err := Run(Config{Graph: g}, floodFactory(3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Config{Graph: g, Pool: pool}, floodFactory(3))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "capped pool", want, got)
}

// TestDefaultPool pins the package-default plumbing: a Config that never
// mentions pools draws from SetDefaultPool's pool, an explicit Config.Pool
// wins over it, and nil restores the historical allocate-fresh behavior.
func TestDefaultPool(t *testing.T) {
	defer SetDefaultPool(nil)
	g := graph.Ring(24)
	want, err := Run(Config{Graph: g}, floodFactory(4))
	if err != nil {
		t.Fatal(err)
	}

	shared := NewEnginePool()
	SetDefaultPool(shared)
	got, err := Run(Config{Graph: g}, floodFactory(4))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "default pool", want, got)
	if shared.idle() != 1 {
		t.Fatalf("default pool retained %d slabs, want 1", shared.idle())
	}

	own := NewEnginePool()
	if _, err := Run(Config{Graph: g, Pool: own}, floodFactory(4)); err != nil {
		t.Fatal(err)
	}
	if own.idle() != 1 || shared.idle() != 1 {
		t.Fatalf("explicit pool did not win: own=%d shared=%d", own.idle(), shared.idle())
	}

	SetDefaultPool(nil)
	if _, err := Run(Config{Graph: g}, floodFactory(4)); err != nil {
		t.Fatal(err)
	}
	if own.idle() != 1 || shared.idle() != 1 {
		t.Fatalf("nil default still pooled: own=%d shared=%d", own.idle(), shared.idle())
	}
}

// TestEnginePoolSteadyStateAllocs is the allocation pin of the pool: once a
// slab is warm, a whole pooled run allocates O(1) — the engine-state struct,
// the program table and the Result — independent of n and m. The probe
// program set lives in a preallocated slab itself, so what the pin measures
// is the engine, not the caller.
func TestEnginePoolSteadyStateAllocs(t *testing.T) {
	was := TelemetryEnabled()
	SetTelemetry(false)
	defer SetTelemetry(was)
	g := graph.Ring(512)
	n := g.N()
	probes := make([]modeProbe, n)
	factory := func(v int) NodeProgram[uint64] {
		probes[v] = modeProbe{rounds: 4, send: v%3 == 0}
		return &probes[v]
	}
	pool := NewEnginePool()
	cfg := Config{Graph: g, Pool: pool}
	run := func() {
		if _, err := Run(cfg, factory); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the slab
	allocs := testing.AllocsPerRun(20, run)
	// The per-run constant: engineState, progs slice, outputs slice, the
	// Result and its ActivePerRound copy — nothing proportional to the
	// 512-node, 1024-half-edge shape.
	if allocs > 16 {
		t.Errorf("steady-state pooled run: %.1f allocs/run, want <= 16", allocs)
	}
	cold := testing.AllocsPerRun(5, func() {
		if _, err := Run(Config{Graph: g}, factory); err != nil {
			t.Fatal(err)
		}
	})
	if cold < 4*allocs {
		t.Errorf("cold run allocates %.1f vs warm %.1f — pool not actually saving allocations", cold, allocs)
	}
}

// BenchmarkPooledRun measures the pool's win on the per-run setup cost: the
// same small-graph workload cold (every run allocates its planes) and warm
// (every run reuses one slab), on the sequential and parallel engines. Small
// graphs and short programs maximize the relative weight of setup, which is
// exactly the serving-layer profile the pool exists for.
func BenchmarkPooledRun(b *testing.B) {
	rng := prng.New(42)
	g := graph.GNPConnected(4096, 0.002, rng)
	factory := func(int) NodeProgram[uint64] { return &modeProbe{rounds: 4, send: true} }
	bench := func(b *testing.B, cfg Config, workers int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			if workers > 0 {
				_, err = RunParallel(cfg, factory, workers)
			} else {
				_, err = Run(cfg, factory)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential/cold", func(b *testing.B) { bench(b, Config{Graph: g}, 0) })
	b.Run("sequential/warm", func(b *testing.B) { bench(b, Config{Graph: g, Pool: NewEnginePool()}, 0) })
	b.Run("parallel2/cold", func(b *testing.B) { bench(b, Config{Graph: g, Reshard: ReshardOff}, 2) })
	b.Run("parallel2/warm", func(b *testing.B) {
		bench(b, Config{Graph: g, Reshard: ReshardOff, Pool: NewEnginePool()}, 2)
	})
}

// TestProgressHook pins the Config.Progress contract on every scheduler: one
// update per round from the coordinating goroutine, with the cumulative
// counters matching the final Result exactly.
func TestProgressHook(t *testing.T) {
	g := graph.Ring(48)
	for _, sched := range []Scheduler{Sequential, Concurrent, Parallel} {
		t.Run(sched.String(), func(t *testing.T) {
			var got []Progress
			cfg := Config{
				Graph:     g,
				Scheduler: sched,
				Workers:   3,
				Progress:  func(p Progress) { got = append(got, p) },
			}
			res, err := Execute(cfg, floodFactory(5))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != res.Rounds {
				t.Fatalf("%d progress updates for %d rounds", len(got), res.Rounds)
			}
			for i, p := range got {
				if p.Round != i+1 {
					t.Errorf("update %d: round %d", i, p.Round)
				}
				if p.Active != res.ActivePerRound[i] {
					t.Errorf("update %d: active %d, want %d", i, p.Active, res.ActivePerRound[i])
				}
			}
			last := got[len(got)-1]
			if last.Running != 0 {
				t.Errorf("final update: %d still running", last.Running)
			}
			if last.Messages != res.Messages {
				t.Errorf("final update: %d messages, want %d", last.Messages, res.Messages)
			}
		})
	}
}

// TestConfigTelemetryForce pins the per-run telemetry lever the serving layer
// uses: Config.Telemetry collects a full record even when the package-wide
// switch is off, without flipping any global state.
func TestConfigTelemetryForce(t *testing.T) {
	was := TelemetryEnabled()
	SetTelemetry(false)
	defer SetTelemetry(was)
	g := graph.Ring(32)
	res, err := Run(Config{Graph: g}, floodFactory(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Fatal("telemetry collected with switch off and no per-run force")
	}
	res, err = Run(Config{Graph: g, Telemetry: true}, floodFactory(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("Config.Telemetry did not force collection")
	}
	if len(res.Telemetry.Rounds) != res.Rounds {
		t.Fatalf("forced telemetry recorded %d rounds, want %d", len(res.Telemetry.Rounds), res.Rounds)
	}
}
