package sim

import (
	"testing"

	"randlocal/internal/randomness"
)

// first32 drains the first 32 bits of a randomness stream into one word,
// most significant first.
func first32(s *randomness.Stream) uint64 {
	var bits uint64
	for i := 0; i < 32; i++ {
		bits = bits<<1 | s.Bit()
	}
	return bits
}

// TestAlgorithmStreamGolden pins the algorithm coin stream to its
// pre-partitioning values: NewSimulationKey(s).FullSource() must reproduce
// randomness.NewFull(s) bit for bit. The constants were captured from the
// historical construction; if this test fails, every checked-in experiment
// record and golden run in the repository is invalidated.
func TestAlgorithmStreamGolden(t *testing.T) {
	golden := map[int]uint64{0: 0x204E08A6, 7: 0xF0B482AD}
	key := NewSimulationKey(42)
	if key.Subseed(StreamAlgorithm) != 42 {
		t.Fatalf("algorithm subseed %d, want the master seed unchanged", key.Subseed(StreamAlgorithm))
	}
	for v, want := range golden {
		if got := first32(key.FullSource().Stream(v)); got != want {
			t.Errorf("key-derived algorithm stream, node %d: 0x%08X, want golden 0x%08X", v, got, want)
		}
		if got := first32(randomness.NewFull(42).Stream(v)); got != want {
			t.Errorf("raw NewFull stream, node %d: 0x%08X, want golden 0x%08X", v, got, want)
		}
	}
}

// TestDeriveGolden pins SimulationKey.Derive to the experiments pipeline's
// historical FNV-1a RunSpec seed derivation (constants computed
// independently of this code base).
func TestDeriveGolden(t *testing.T) {
	cases := []struct {
		label  string
		master uint64
		want   uint64
	}{
		{"E3|private|n=512|t=0", 7, 0xa6e11188d82b647f},
		{"E12|Luby/drop=0.02|n=256|t=1", 2019, 0x22e10c27273d8f67},
	}
	for _, c := range cases {
		if got := uint64(NewSimulationKey(c.master).Derive(c.label)); got != c.want {
			t.Errorf("Derive(%q) under master %d: 0x%016x, want 0x%016x", c.label, c.master, got, c.want)
		}
	}
}

// TestStreamIsolation is the heart of the partitioned-randomness contract:
// draining arbitrarily many coins from the adversary (or workload) stream
// leaves the algorithm stream bit-identical, and all subsystem streams are
// pairwise distinct.
func TestStreamIsolation(t *testing.T) {
	key := NewSimulationKey(1234)

	clean := key.RNG()
	var cleanAlgo [64]uint64
	for i := range cleanAlgo {
		cleanAlgo[i] = clean.Algorithm().Uint64()
	}

	drained := key.RNG()
	for i := 0; i < 10_000; i++ {
		drained.Adversary().Uint64()
		drained.Workload().Uint64()
		drained.ShardJitter().Uint64()
	}
	for i := range cleanAlgo {
		if got := drained.Algorithm().Uint64(); got != cleanAlgo[i] {
			t.Fatalf("algorithm draw %d perturbed by other subsystems: %x != %x", i, got, cleanAlgo[i])
		}
	}

	subs := []Subsystem{StreamAlgorithm, StreamAdversary, StreamWorkload, StreamShardJitter}
	seeds := map[uint64]Subsystem{}
	for _, s := range subs {
		seed := key.Subseed(s)
		if prev, dup := seeds[seed]; dup {
			t.Fatalf("subsystems %v and %v share seed %x", prev, s, seed)
		}
		seeds[seed] = s
	}
}

// TestSourceHelpers checks that the key's source constructors are
// deterministic in the key and draw only from the algorithm subsystem.
func TestSourceHelpers(t *testing.T) {
	key := NewSimulationKey(99)
	if a, b := first32(key.SharedSource(64).Stream(0)), first32(key.SharedSource(64).Stream(5)); a != b {
		t.Errorf("shared source streams differ across nodes: %x vs %x", a, b)
	}
	sp1, err := key.SparseSource([]int{2, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := key.SparseSource([]int{2, 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := sp1.Stream(2).Bits(8), sp2.Stream(2).Bits(8); a != b {
		t.Errorf("sparse source not deterministic in the key: %x vs %x", a, b)
	}
	if sp1.Has(3) {
		t.Error("non-holder reported as holder")
	}
}

// TestRandomIDsWorkloadStream checks the fixed RandomIDs signature: the
// assignment is a pure function of the key, injective, and independent of
// algorithm-stream consumption by construction (the key carries no shared
// state at all).
func TestRandomIDsWorkloadStream(t *testing.T) {
	key := NewSimulationKey(5)
	a := RandomIDs(300, 4, key)
	b := RandomIDs(300, 4, key)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RandomIDs not deterministic in the key at %d", i)
		}
	}
	c := RandomIDs(300, 4, NewSimulationKey(6))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different keys produced identical ID assignments")
	}
}
