package sim

import (
	"fmt"
	"sync"
)

// RunConcurrent executes the network with one goroutine per node and one
// buffered channel per directed edge — an α-synchronizer: synchrony is
// achieved purely by every node sending exactly one frame (possibly empty)
// per neighbor per round and blocking until it has received one frame from
// every neighbor. A small coordinator only handles start/stop and global
// termination detection; all payload traffic flows node-to-node.
//
// The per-edge channels live in one flat array indexed by the graph's CSR
// half-edge index: node v receives port p's frame on chans[off[v]+p] and
// sends to a neighbor by addressing the reverse half-edge, chans[rev[i]] —
// the same indexing discipline the other two engines use for their flat
// message planes.
//
// Given the same Config (in particular the same randomness source seed), the
// outputs are identical to Run's: node programs are deterministic state
// machines and the synchronous schedule delivers the same inboxes. The test
// suite asserts this equivalence property on random networks.
func RunConcurrent[T any](cfg Config, factory func(v int) NodeProgram[T]) (*Result[T], error) {
	st, err := newEngineState(cfg, factory)
	if err != nil {
		return nil, err
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	n := st.n

	// chans[off[v]+p] is the channel on which node v receives from port p.
	chans := make([]chan Message, len(st.adjf))
	for i := range chans {
		chans[i] = make(chan Message, 1)
	}

	type report struct {
		node    int
		done    bool
		msgs    int64
		bits    int64
		maxBits int
		err     error
	}
	cont := make([]chan bool, n)
	for v := range cont {
		cont[v] = make(chan bool, 1)
	}
	reports := make(chan report, n)

	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			prog := st.progs[v]
			lo := st.off[v]
			deg := int(st.off[v+1] - lo)
			// The node's inbox window of the engine's flat message plane;
			// only this goroutine touches it.
			inbox := st.inbox[lo : lo+int64(deg) : lo+int64(deg)]
			done := false
			for r := 0; <-cont[v]; r++ {
				var out []Message
				var sendErr error
				if !done {
					var nodeDone bool
					out, nodeDone = prog.Round(r, inbox)
					if nodeDone {
						done = true
					}
					if len(out) > deg {
						sendErr = fmt.Errorf("sim: node %d produced %d outbox entries for degree %d", v, len(out), deg)
					}
				}
				rep := report{node: v, done: done}
				// Send exactly one frame per neighbor (nil when silent),
				// addressed to the reverse half-edge's channel.
				for p := 0; p < deg; p++ {
					var msg Message
					if sendErr == nil && p < len(out) {
						msg = out[p]
					}
					if msg != nil && cfg.MaxMessageBits > 0 && msg.BitLen() > cfg.MaxMessageBits {
						rep.err = &BandwidthError{Node: v, Round: r, Bits: msg.BitLen(), Limit: cfg.MaxMessageBits}
						msg = nil // stay frame-synchronized despite the violation
					}
					if msg != nil {
						rep.msgs++
						rep.bits += int64(msg.BitLen())
						if msg.BitLen() > rep.maxBits {
							rep.maxBits = msg.BitLen()
						}
					}
					chans[st.rev[lo+int64(p)]] <- msg
				}
				if sendErr != nil && rep.err == nil {
					rep.err = sendErr
				}
				// Receive exactly one frame per neighbor.
				for p := 0; p < deg; p++ {
					inbox[p] = <-chans[lo+int64(p)]
				}
				reports <- rep
			}
		}(v)
	}

	stop := func() {
		for v := 0; v < n; v++ {
			cont[v] <- false
		}
		wg.Wait()
	}

	var firstErr error
	running := n
	for r := 0; ; r++ {
		if r >= maxRounds {
			stop()
			return nil, &StuckError{MaxRounds: maxRounds, Running: running}
		}
		for v := 0; v < n; v++ {
			cont[v] <- true
		}
		allDone := true
		running = 0
		for i := 0; i < n; i++ {
			rep := <-reports
			st.messages += rep.msgs
			st.bits += rep.bits
			if rep.maxBits > st.maxBits {
				st.maxBits = rep.maxBits
			}
			if rep.err != nil && firstErr == nil {
				firstErr = rep.err
			}
			if !rep.done {
				allDone = false
				running++
			}
		}
		st.rounds++
		if firstErr != nil {
			stop()
			return nil, firstErr
		}
		if allDone {
			break
		}
	}
	stop()
	return st.result(), nil
}
