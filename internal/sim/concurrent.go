package sim

import (
	"fmt"
	"sync"
	"time"
)

// RunConcurrent executes the network with one goroutine per node and one
// buffered channel per directed edge — an α-synchronizer: synchrony is
// achieved purely by every node sending exactly one frame (possibly empty)
// per neighbor per round and blocking until it has received one frame from
// every neighbor. A small coordinator only handles start/stop and global
// termination detection; all payload traffic flows node-to-node.
//
// The per-edge channels live in one flat array indexed by the graph's CSR
// half-edge index: node v receives port p's frame on chans[off[v]+p] and
// sends to a neighbor by addressing the reverse half-edge, chans[rev[i]] —
// the same indexing discipline the other two engines use for their flat
// message planes.
//
// Halted nodes leave the synchronizer entirely: a node's goroutine exits in
// the round it reports done, the coordinator drops it from the active
// worklist, and from the next round on its neighbors skip both the send and
// the receive on the shared edges (reading the halted flag is safe — the
// coordinator updates it only between rounds, and the per-round start
// signals establish the ordering). Late rounds therefore cost O(active
// nodes + their edges), not O(n + m), matching the other two engines.
//
// Given the same Config (in particular the same randomness source seed), the
// outputs are identical to Run's: node programs are deterministic state
// machines and the synchronous schedule delivers the same inboxes. The test
// suite asserts this equivalence property on random networks.
func RunConcurrent[T any](cfg Config, factory func(v int) NodeProgram[T]) (*Result[T], error) {
	// Always unpacked: this engine's messages are per-edge channel frames,
	// not plane slots, so there is nothing for a bit plane to pack. Programs
	// declaring PayloadBits() run through their unpacked accessor backends
	// and produce the same Result (the accounting is representation-blind).
	st, err := newEngineStateMode(cfg, factory, false, Concurrent)
	if err != nil {
		return nil, err
	}
	defer st.release()
	maxRounds := st.maxRounds()
	n := st.n

	// Every node gets its own payload arena: compute phases overlap across
	// nodes, so the shared engine arena cannot be carved concurrently. A
	// pooled run draws the per-node arenas from the slab so their capacity
	// survives between runs. The inbox window of the bit accessors is fixed
	// for the whole run here (this engine never swaps planes), so it too is
	// wired once.
	for v := 0; v < n; v++ {
		if st.slab != nil {
			st.ctxs[v].arena = st.slab.nodeArena(v)
		} else {
			st.ctxs[v].arena = &arena{}
		}
		lo, hi := st.off[v], st.off[v+1]
		st.ctxs[v].inboxWin = st.inbox[lo:hi:hi]
	}

	// chans[off[v]+p] is the channel on which node v receives from port p.
	chans := make([]chan Message, len(st.adjf))
	for i := range chans {
		chans[i] = make(chan Message, 1)
	}

	type report struct {
		node    int
		done    bool
		msgs    int64
		bits    int64
		maxBits int
		drops   int
		cuts    int
		delays  int
		held    []heldMsg
		err     error
	}
	// Per-round start commands: stop ends the goroutine (normal shutdown or
	// an adversary crash-stop), run is a normal round, stall is a round the
	// adversarial scheduler denies the node — it stays frame-synchronized
	// with its neighbors (sending nil frames) but its Round method is not
	// invoked and its pending inbox goes unobserved.
	const (
		nodeStop uint8 = iota
		nodeRun
		nodeStall
	)
	cont := make([]chan uint8, n)
	for v := range cont {
		cont[v] = make(chan uint8, 1)
	}
	reports := make(chan report, n)

	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			prog := st.progs[v]
			a := st.ctxs[v].arena
			lo := st.off[v]
			deg := int(st.off[v+1] - lo)
			row := st.adjf[lo : lo+int64(deg)]
			// The node's inbox window of the engine's flat message plane;
			// only this goroutine touches it (likewise its Outbox window
			// below, so the poison fill is race-free).
			inbox := st.inbox[lo : lo+int64(deg) : lo+int64(deg)]
			outWin := st.outbox[lo : lo+int64(deg)]
			for r := 0; ; r++ {
				cmd := <-cont[v]
				if cmd == nodeStop {
					return
				}
				if r > 0 {
					// Not before round 0: Init carves share round 0's buffer.
					a.rotate()
				}
				var out []Message
				nodeDone := false
				var sendErr error
				if cmd != nodeStall {
					if st.poison {
						poisonWindow(outWin)
					}
					out, nodeDone = prog.Round(r, inbox)
					if len(out) > deg {
						sendErr = fmt.Errorf("sim: node %d produced %d outbox entries for degree %d", v, len(out), deg)
					}
				}
				rep := report{node: v, done: nodeDone}
				// Send exactly one frame per live neighbor (nil when
				// silent), addressed to the reverse half-edge's channel.
				// Frames for halted neighbors are skipped — they would never
				// be read — but their accounting (a halted destination still
				// counts as a delivery, as in the other engines) and the
				// bandwidth check are unaffected, because a halted node
				// stopped sending, not receiving, under the model.
				for p := 0; p < deg; p++ {
					var msg Message
					if sendErr == nil && p < len(out) {
						msg = out[p]
					}
					if st.poison && msg != nil && isPoison(msg) {
						if rep.err == nil {
							rep.err = &OutboxPortError{Node: v, Round: r, Port: p}
						}
						msg = nil // stay frame-synchronized despite the violation
					}
					if msg != nil && cfg.MaxMessageBits > 0 && msg.BitLen() > cfg.MaxMessageBits {
						if rep.err == nil {
							rep.err = &BandwidthError{Node: v, Round: r, Bits: msg.BitLen(), Limit: cfg.MaxMessageBits}
						}
						msg = nil // stay frame-synchronized despite the violation
					}
					if msg != nil && st.adv != nil {
						// In-transit fate: a pure hash of (round, slot), so
						// every engine agrees without coordination. A doomed
						// message still sends its (nil) frame — synchrony is
						// the synchronizer's, not the adversary's.
						switch f, d := st.adv.fate(r, st.rev[lo+int64(p)]); f {
						case fateDrop:
							rep.drops++
							msg = nil
						case fateCut:
							rep.cuts++
							msg = nil
						case fateDelay:
							rep.delays++
							rep.held = append(rep.held, holdMsg(st.rev[lo+int64(p)], r, d, msg))
							msg = nil
						}
					}
					if msg != nil {
						rep.msgs++
						rep.bits += int64(msg.BitLen())
						if msg.BitLen() > rep.maxBits {
							rep.maxBits = msg.BitLen()
						}
					}
					if !st.done[row[p]] {
						chans[st.rev[lo+int64(p)]] <- msg
					}
				}
				if sendErr != nil && rep.err == nil {
					rep.err = sendErr
				}
				// Receive exactly one frame per live neighbor; a halted
				// neighbor sends nothing, exactly as a nil frame would say.
				for p := 0; p < deg; p++ {
					if st.done[row[p]] {
						inbox[p] = nil
						continue
					}
					inbox[p] = <-chans[lo+int64(p)]
				}
				reports <- rep
				if nodeDone {
					return
				}
			}
		}(v)
	}

	// stop releases the node goroutines still parked on their start signal;
	// halted nodes have already exited on their own.
	stop := func() {
		for _, v := range st.active {
			cont[v] <- nodeStop
		}
		wg.Wait()
	}

	st.initTelemetry(Concurrent, 1)
	var firstErr error
	doneNow := make([]int32, 0, 16)
	for r := 0; len(st.active) > 0; r++ {
		if r >= maxRounds {
			stop()
			return nil, &StuckError{MaxRounds: maxRounds, Running: len(st.active)}
		}
		activeN := len(st.active)
		if st.adv != nil {
			activeN -= st.adv.stalledCount()
		}
		st.activeTrace = append(st.activeTrace, activeN)
		var roundStart time.Time
		var roundEmitted int64
		if st.tel != nil {
			roundStart = time.Now()
		}
		for _, v := range st.active {
			cmd := nodeRun
			if st.adv != nil && st.adv.stalled[v] {
				cmd = nodeStall
			}
			cont[v] <- cmd
		}
		doneNow = doneNow[:0]
		for i := 0; i < len(st.active); i++ {
			rep := <-reports
			roundEmitted += rep.msgs + int64(rep.drops+rep.cuts+rep.delays)
			st.messages += rep.msgs
			st.bits += rep.bits
			if rep.maxBits > st.maxBits {
				st.maxBits = rep.maxBits
			}
			if st.adv != nil {
				st.adv.mergeRound(rep.drops, rep.cuts, rep.delays, rep.held)
			}
			if rep.err != nil && firstErr == nil {
				firstErr = rep.err
			}
			if rep.done {
				doneNow = append(doneNow, int32(rep.node))
			}
		}
		// Only now — after every active node finished the round — may the
		// halted flags flip: mid-round, neighbors still exchange frames with
		// a node that is about to report done.
		for _, v := range doneNow {
			st.done[v] = true
		}
		live := st.active[:0]
		for _, v := range st.active {
			if !st.done[v] {
				live = append(live, v)
			}
		}
		st.active = live
		st.rounds++
		if st.tel != nil {
			// One lane: node goroutines interleave compute and channel
			// delivery, so the coordinator's round wall time is both the
			// compute and the delivery measurement.
			wall := time.Since(roundStart).Nanoseconds()
			st.tel.recordRound(wall, []int64{wall}, []int{int(roundEmitted)},
				[]DeliveryMode{DeliverChannels})
		}
		if firstErr != nil {
			stop()
			return nil, firstErr
		}
		if st.adv != nil {
			// Every surviving goroutine is parked on its start signal (its
			// report is in), so the boundary's inbox writes are published to
			// it by the next command send. A crash-stop releases the victim
			// with nodeStop — from its neighbors' view it simply halted.
			msgs, bits, maxBits, crashed := st.adv.boundary(r, st.active, st.inboxView(), nil,
				func(v int32) { st.done[v] = true; cont[v] <- nodeStop })
			st.messages += msgs
			st.bits += bits
			if maxBits > st.maxBits {
				st.maxBits = maxBits
			}
			if crashed > 0 {
				live := st.active[:0]
				for _, v := range st.active {
					if !st.done[v] {
						live = append(live, v)
					}
				}
				st.active = live
			}
		}
		// This engine tracks liveness through the worklist, not st.running;
		// sync the counter so the progress hook reports the real number.
		st.running = len(st.active)
		st.progress()
	}
	stop()
	return st.result(), nil
}
