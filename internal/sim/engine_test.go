package sim

import (
	"errors"
	"testing"
	"testing/quick"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

// floodMin is the classic leader-election-by-flooding program: every node
// repeatedly broadcasts the smallest identifier it has heard, for a fixed
// number of rounds. It exercises messaging, inbox delivery and termination.
type floodMin struct {
	rounds int
	ctx    *NodeCtx
	best   uint64
}

func (f *floodMin) Init(ctx *NodeCtx) { f.ctx = ctx; f.best = ctx.ID }

func (f *floodMin) Round(r int, inbox []Message) ([]Message, bool) {
	for _, m := range inbox {
		if m == nil {
			continue
		}
		x, _, ok := ReadUint(m)
		if ok && x < f.best {
			f.best = x
		}
	}
	if r >= f.rounds {
		return nil, true
	}
	out := make([]Message, f.ctx.Degree)
	payload := Uints(f.best)
	for p := range out {
		out[p] = payload
	}
	return out, false
}

func (f *floodMin) Output() uint64 { return f.best }

func floodFactory(rounds int) func(int) NodeProgram[uint64] {
	return func(int) NodeProgram[uint64] { return &floodMin{rounds: rounds} }
}

func TestFloodMinSequential(t *testing.T) {
	g := graph.Ring(10)
	res, err := Run(Config{Graph: g}, floodFactory(graph.Diameter(g)+1))
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if out != 0 {
			t.Errorf("node %d learned min %d, want 0", v, out)
		}
	}
	if res.Rounds != graph.Diameter(g)+2 {
		t.Errorf("rounds = %d", res.Rounds)
	}
	if res.Messages == 0 || res.BitsTotal == 0 {
		t.Error("no messages accounted")
	}
}

func TestFloodMinRespectsComponents(t *testing.T) {
	g := graph.Disjoint(graph.Ring(5), graph.Ring(5))
	res, err := Run(Config{Graph: g}, floodFactory(10))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if res.Outputs[v] != 0 {
			t.Errorf("component 1 node %d: %d", v, res.Outputs[v])
		}
	}
	for v := 5; v < 10; v++ {
		if res.Outputs[v] != 5 {
			t.Errorf("component 2 node %d: %d, want 5", v, res.Outputs[v])
		}
	}
}

func TestFloodMinWithCustomIDs(t *testing.T) {
	g := graph.Path(6)
	ids := AdversarialDescendingIDs(6)
	res, err := Run(Config{Graph: g, IDs: ids}, floodFactory(6))
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if out != 0 {
			t.Errorf("node %d: %d", v, out)
		}
	}
}

func TestSequentialConcurrentEquivalence(t *testing.T) {
	rng := prng.New(5)
	for trial := 0; trial < 5; trial++ {
		g := graph.GNPConnected(60, 0.06, rng)
		ids := RandomIDs(g.N(), g.N(), NewSimulationKey(rng.Uint64()))
		rounds := graph.Diameter(g) + 1
		cfg := Config{Graph: g, IDs: ids}
		seqRes, err := Run(cfg, floodFactory(rounds))
		if err != nil {
			t.Fatal(err)
		}
		conRes, err := RunConcurrent(cfg, floodFactory(rounds))
		if err != nil {
			t.Fatal(err)
		}
		if seqRes.Rounds != conRes.Rounds {
			t.Errorf("trial %d: rounds %d vs %d", trial, seqRes.Rounds, conRes.Rounds)
		}
		if seqRes.Messages != conRes.Messages || seqRes.BitsTotal != conRes.BitsTotal {
			t.Errorf("trial %d: accounting differs (%d,%d) vs (%d,%d)",
				trial, seqRes.Messages, seqRes.BitsTotal, conRes.Messages, conRes.BitsTotal)
		}
		for v := range seqRes.Outputs {
			if seqRes.Outputs[v] != conRes.Outputs[v] {
				t.Fatalf("trial %d: node %d output %d vs %d", trial, v, seqRes.Outputs[v], conRes.Outputs[v])
			}
		}
	}
}

// neighborIDCheck verifies that the engine delivers each message to the
// correct port: each node sends its ID on every port in round 0 and checks
// in round 1 that port p delivered NeighborIDs[p].
type neighborIDCheck struct {
	ctx *NodeCtx
	ok  bool
}

func (c *neighborIDCheck) Init(ctx *NodeCtx) { c.ctx = ctx; c.ok = true }

func (c *neighborIDCheck) Round(r int, inbox []Message) ([]Message, bool) {
	switch r {
	case 0:
		out := make([]Message, c.ctx.Degree)
		for p := range out {
			out[p] = Uints(c.ctx.ID)
		}
		return out, false
	default:
		for p, m := range inbox {
			x, _, ok := ReadUint(m)
			if !ok || x != c.ctx.NeighborIDs[p] {
				c.ok = false
			}
		}
		return nil, true
	}
}

func (c *neighborIDCheck) Output() bool { return c.ok }

func TestPortDeliveryMatchesNeighborIDs(t *testing.T) {
	rng := prng.New(10)
	g := graph.GNPConnected(40, 0.15, rng)
	ids := RandomIDs(g.N(), 7, NewSimulationKey(rng.Uint64()))
	for name, run := range map[string]func(Config, func(int) NodeProgram[bool]) (*Result[bool], error){
		"sequential": Run[bool], "concurrent": RunConcurrent[bool],
	} {
		res, err := run(Config{Graph: g, IDs: ids}, func(int) NodeProgram[bool] { return &neighborIDCheck{} })
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v, ok := range res.Outputs {
			if !ok {
				t.Errorf("%s: node %d saw wrong port delivery", name, v)
			}
		}
	}
}

// bigTalker sends one oversized message to trigger the CONGEST check.
type bigTalker struct{ deg int }

func (b *bigTalker) Init(ctx *NodeCtx) { b.deg = ctx.Degree }
func (b *bigTalker) Round(r int, inbox []Message) ([]Message, bool) {
	out := make([]Message, b.deg)
	out[0] = make(Message, 1000)
	return out, true
}
func (b *bigTalker) Output() int { return 0 }

func TestCongestBandwidthEnforced(t *testing.T) {
	g := graph.Ring(4)
	cfg := Config{Graph: g, MaxMessageBits: CongestBits(4)}
	_, err := Run(cfg, func(int) NodeProgram[int] { return &bigTalker{} })
	var bw *BandwidthError
	if !errors.As(err, &bw) {
		t.Fatalf("sequential: got %v, want BandwidthError", err)
	}
	if bw.Bits != 8000 {
		t.Errorf("reported bits = %d", bw.Bits)
	}
	_, err = RunConcurrent(cfg, func(int) NodeProgram[int] { return &bigTalker{} })
	if !errors.As(err, &bw) {
		t.Fatalf("concurrent: got %v, want BandwidthError", err)
	}
}

func TestLocalModeAllowsBigMessages(t *testing.T) {
	g := graph.Ring(4)
	res, err := Run(Config{Graph: g}, func(int) NodeProgram[int] { return &bigTalker{} })
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMessageBits != 8000 {
		t.Errorf("max message = %d bits", res.MaxMessageBits)
	}
}

// sleeper never halts.
type sleeper struct{}

func (s *sleeper) Init(*NodeCtx) {}
func (s *sleeper) Round(int, []Message) ([]Message, bool) {
	return nil, false
}
func (s *sleeper) Output() int { return 0 }

func TestStuckDetection(t *testing.T) {
	g := graph.Path(3)
	cfg := Config{Graph: g, MaxRounds: 10}
	_, err := Run(cfg, func(int) NodeProgram[int] { return &sleeper{} })
	var stuck *StuckError
	if !errors.As(err, &stuck) {
		t.Fatalf("got %v, want StuckError", err)
	}
	if stuck.Running != 3 {
		t.Errorf("running = %d", stuck.Running)
	}
	if _, err := RunConcurrent(cfg, func(int) NodeProgram[int] { return &sleeper{} }); !errors.As(err, &stuck) {
		t.Fatalf("concurrent: got %v, want StuckError", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, func(int) NodeProgram[int] { return &sleeper{} }); err == nil {
		t.Error("nil graph accepted")
	}
	g := graph.Path(3)
	if _, err := Run(Config{Graph: g, IDs: []uint64{1, 2}}, func(int) NodeProgram[int] { return &sleeper{} }); err == nil {
		t.Error("short ID list accepted")
	}
	if _, err := Run(Config{Graph: g, IDs: []uint64{1, 1, 2}}, func(int) NodeProgram[int] { return &sleeper{} }); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := Run(Config{Graph: g, DeclaredN: 2}, func(int) NodeProgram[int] { return &sleeper{} }); err == nil {
		t.Error("declared size below true size accepted")
	}
}

// oversender produces more outbox entries than its degree.
type oversender struct{ deg int }

func (o *oversender) Init(ctx *NodeCtx) { o.deg = ctx.Degree }
func (o *oversender) Round(int, []Message) ([]Message, bool) {
	return make([]Message, o.deg+5), true
}
func (o *oversender) Output() int { return 0 }

func TestOversizedOutboxRejected(t *testing.T) {
	g := graph.Ring(4)
	if _, err := Run(Config{Graph: g}, func(int) NodeProgram[int] { return &oversender{} }); err == nil {
		t.Error("sequential accepted oversized outbox")
	}
	if _, err := RunConcurrent(Config{Graph: g}, func(int) NodeProgram[int] { return &oversender{} }); err == nil {
		t.Error("concurrent accepted oversized outbox")
	}
}

// randConsumer draws a few random bits and halts, outputting the first.
type randConsumer struct{ ctx *NodeCtx }

func (rc *randConsumer) Init(ctx *NodeCtx) { rc.ctx = ctx }
func (rc *randConsumer) Round(int, []Message) ([]Message, bool) {
	return nil, true
}
func (rc *randConsumer) Output() uint64 {
	if rc.ctx.Rand == nil {
		return 99
	}
	return rc.ctx.Rand.Bit()
}

func TestRandomnessSourcePlumbing(t *testing.T) {
	g := graph.Path(4)
	src := randomness.NewFull(7)
	res, err := Run(Config{Graph: g, Source: src}, func(int) NodeProgram[uint64] { return &randConsumer{} })
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if out == 99 {
			t.Errorf("node %d had no randomness under Full", v)
		}
	}
	if src.Ledger().TrueBits() != 4 {
		t.Errorf("ledger true bits = %d, want 4", src.Ledger().TrueBits())
	}

	// Sparse: only node 2 holds a bit; others must see Rand == nil.
	sparse, _ := randomness.NewSparse([]int{2}, 1, 1)
	res, err = Run(Config{Graph: g, Source: sparse}, func(int) NodeProgram[uint64] { return &randConsumer{} })
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range res.Outputs {
		if v == 2 && out == 99 {
			t.Error("holder node 2 should have a stream")
		}
		if v != 2 && out != 99 {
			t.Errorf("non-holder %d has a stream", v)
		}
	}
}

func TestSharedSourceExposedViaCtx(t *testing.T) {
	g := graph.Path(3)
	shared := randomness.NewShared(32, prng.New(3))
	type probe struct {
		NodeProgram[uint64]
	}
	_ = probe{}
	res, err := Run(Config{Graph: g, Source: shared}, func(int) NodeProgram[uint64] {
		return &sharedProbe{}
	})
	if err != nil {
		t.Fatal(err)
	}
	// All nodes read the same first seed word.
	for v := 1; v < len(res.Outputs); v++ {
		if res.Outputs[v] != res.Outputs[0] {
			t.Error("shared seed differs across nodes")
		}
	}
}

type sharedProbe struct{ ctx *NodeCtx }

func (p *sharedProbe) Init(ctx *NodeCtx) { p.ctx = ctx }
func (p *sharedProbe) Round(int, []Message) ([]Message, bool) {
	return nil, true
}
func (p *sharedProbe) Output() uint64 {
	if p.ctx.Shared == nil {
		return 0
	}
	return p.ctx.Shared.SeedWord(0, 32)
}

func TestKT0HidesNeighborIDs(t *testing.T) {
	g := graph.Path(3)
	res, err := Run(Config{Graph: g, KT0: true}, func(int) NodeProgram[bool] { return &kt0Probe{} })
	if err != nil {
		t.Fatal(err)
	}
	for v, sawNil := range res.Outputs {
		if !sawNil {
			t.Errorf("node %d saw neighbor IDs under KT0", v)
		}
	}
}

type kt0Probe struct{ sawNil bool }

func (p *kt0Probe) Init(ctx *NodeCtx) { p.sawNil = ctx.NeighborIDs == nil }
func (p *kt0Probe) Round(int, []Message) ([]Message, bool) {
	return nil, true
}
func (p *kt0Probe) Output() bool { return p.sawNil }

func TestDeclaredNPropagation(t *testing.T) {
	g := graph.Path(2)
	res, err := Run(Config{Graph: g, DeclaredN: 1000}, func(int) NodeProgram[int] { return &nProbe{} })
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range res.Outputs {
		if out != 1000 {
			t.Errorf("declared n = %d, want 1000", out)
		}
	}
}

type nProbe struct{ n int }

func (p *nProbe) Init(ctx *NodeCtx) { p.n = ctx.N }
func (p *nProbe) Round(int, []Message) ([]Message, bool) {
	return nil, true
}
func (p *nProbe) Output() int { return p.n }

func TestEmptyNetwork(t *testing.T) {
	g := graph.NewBuilder(0).Graph()
	res, err := Run(Config{Graph: g}, floodFactory(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 0 || len(res.Outputs) != 0 {
		t.Errorf("empty network: rounds=%d outputs=%d", res.Rounds, len(res.Outputs))
	}
}

func TestSingleNodeNetwork(t *testing.T) {
	g := graph.NewBuilder(1).Graph()
	res, err := Run(Config{Graph: g}, floodFactory(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[0] != 0 || res.Rounds != 1 {
		t.Errorf("single node: out=%d rounds=%d", res.Outputs[0], res.Rounds)
	}
}

func TestCongestBits(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 48}, {2, 48}, {15, 48}, {1000, 80}, {1 << 16, 8 * 17},
	} {
		if got := CongestBits(tc.n); got != tc.want {
			t.Errorf("CongestBits(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestMessageCodec(t *testing.T) {
	m := Uints(0, 1, 127, 128, 1<<40)
	vals, ok := DecodeUints(m, 5)
	if !ok {
		t.Fatal("decode failed")
	}
	want := []uint64{0, 1, 127, 128, 1 << 40}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("vals[%d] = %d, want %d", i, vals[i], want[i])
		}
	}
	all, ok := DecodeAllUints(m)
	if !ok || len(all) != 5 {
		t.Errorf("DecodeAllUints: %v %v", all, ok)
	}
	if _, ok := DecodeUints(m, 6); ok {
		t.Error("decoding past the end should fail")
	}
	if _, _, ok := ReadUint(nil); ok {
		t.Error("ReadUint(nil) should fail")
	}
	// Malformed: a continuation byte with no terminator.
	if _, ok := DecodeAllUints(Message{0x80}); ok {
		t.Error("malformed varint accepted")
	}
}

func TestRandomIDsInjective(t *testing.T) {
	ids := RandomIDs(500, 3, NewSimulationKey(1))
	seen := map[uint64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate ID")
		}
		if id >= 1500 {
			t.Fatalf("ID %d out of range", id)
		}
		seen[id] = true
	}
	// spread < 1 is clamped.
	ids = RandomIDs(10, 0, NewSimulationKey(2))
	if len(ids) != 10 {
		t.Error("clamped spread failed")
	}
}

func TestMessageCodecRoundTripQuick(t *testing.T) {
	f := func(xs []uint64) bool {
		m := Uints(xs...)
		got, ok := DecodeAllUints(m)
		if !ok {
			return false
		}
		if len(got) != len(xs) {
			// Uints(nil) encodes to an empty payload that decodes to nil.
			return len(xs) == 0 && len(got) == 0
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
