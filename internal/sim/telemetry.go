package sim

import "sync/atomic"

// Telemetry is the optional per-run measurement record the engines attach to
// Result.Telemetry when collection is enabled (SetTelemetry). It answers the
// scheduling questions the round/message counters cannot: how was each
// round's compute time distributed over the pool, how many messages did each
// worker stage, which delivery strategy did each shard pick, and when (and at
// what price) did the parallel coordinator re-cut its shards.
//
// Collection follows the same pattern as the poisoned-Outbox debug check: a
// package-level switch latched once at run start, with near-zero cost when
// off (the only always-on cost is the parallel workers' per-phase clock
// reads, which the adaptive re-shard policy needs regardless).
//
// Wall-clock fields are measurements of this host's execution, not model
// quantities: unlike every other Result field they are not identical across
// schedulers or repeated runs.
type Telemetry struct {
	// Scheduler is the engine that produced this record.
	Scheduler Scheduler
	// Workers is the number of telemetry lanes per round: the pool width
	// for the parallel engine, 1 for the sequential and concurrent engines
	// (the concurrent engine's per-node goroutines are not individually
	// metered; its lane records the coordinator's view).
	Workers int
	// Rounds holds one entry per executed round, aligned with
	// Result.ActivePerRound.
	Rounds []RoundStats
	// Reshards lists the parallel coordinator's shard re-cuts, in execution
	// order (strictly increasing Round). Empty for the other engines and
	// under ReshardOff.
	Reshards []ReshardEvent
	// Injected lists the adversary's fault injections (see adversary.go),
	// aggregated per round and kind, non-decreasing in Round (strictly
	// increasing per Kind). Unlike the wall-clock fields, identical across
	// schedulers for the same Config. A run with a Config.Adversary always
	// collects telemetry (the injected record is part of the run's
	// reproducibility story), even when SetTelemetry is off.
	Injected []InjectedEvent
	// CrossShardStaged is the parallel engine's cumulative staging matrix:
	// CrossShardStaged[src][dst] counts the messages worker src staged into
	// worker dst's shard window over the whole run. The off-diagonal mass is
	// the cross-shard traffic the placement-aware re-cut minimizes; the
	// diagonal is self-delivery, which scatter serves from the owner's own
	// cache. Dimensions are Workers×Workers; nil for the other engines and
	// for single-worker runs.
	CrossShardStaged [][]int64
	// PoolWidthPerRound[r] is the number of workers that actually ran round
	// r — the adaptive pool ledger parks excess workers through the
	// shattering tail, so this can drop below (and climb back toward)
	// Workers. Length equals len(Rounds); nil for the other engines.
	PoolWidthPerRound []int
	// Places lists the parallel coordinator's placement events — the
	// initial wiring plus every re-cut's shard→worker assignment — in
	// execution order. Empty for the other engines.
	Places []PlaceEvent
}

// PlaceEvent records one shard→worker (re)assignment of the parallel
// coordinator: the initial wiring (Round −1) and each re-cut.
type PlaceEvent struct {
	// Round is the index of the round after which the assignment ran; −1
	// marks the initial wiring before round 0.
	Round int
	// Width is the pool width in force after the event — how many workers
	// own a (non-empty) shard.
	Width int
	// Pinned reports whether the run's workers are locked to OS threads
	// (PlacePin, or PlaceAuto resolved to pin).
	Pinned bool
	// Moved counts the workers whose shard range changed in this event; 0
	// on a re-cut that reproduced the previous assignment.
	Moved int
	// Touched reports whether a first-touch pass ran over the new windows
	// (pinned runs only; warm slab reuse with an unchanged assignment
	// skips it).
	Touched bool
}

// RoundStats is one round's measurement across the telemetry lanes. All
// slices have length Telemetry.Workers.
type RoundStats struct {
	// WallNS is the wall time of the whole round — compute, delivery and
	// barriers — as seen by the coordinator.
	WallNS int64
	// ComputeNS[w] is the time lane w spent in the round's compute phase
	// (calling Round methods and staging outboxes). The spread between
	// lanes is the barrier imbalance the adaptive re-shard policy acts on.
	ComputeNS []int64
	// Staged[w] is the number of messages lane w staged this round.
	Staged []int
	// Mode[w] is the delivery strategy lane w used for this round's
	// messages.
	Mode []DeliveryMode
}

// DeliveryMode names the delivery strategy a lane chose for one round.
type DeliveryMode uint8

const (
	// DeliverSparse walks the staged slot list — O(messages).
	DeliverSparse DeliveryMode = iota
	// DeliverDense swaps or memclrs the whole plane window — the
	// vectorized sweep dense rounds take.
	DeliverDense
	// DeliverChannels is the concurrent engine's per-edge channel
	// delivery (no per-round strategy choice exists there).
	DeliverChannels
	// DeliverPacked is delivery over packed bit planes (every program
	// declared PayloadBits() <= 1, see PayloadBitsDeclarer): staged bits are
	// OR-ed into []uint64 words, and the dense/sparse choice — made with the
	// same shared cut-off, but against a 64×-smaller window — happens inside
	// the packed path, so the lane reports the representation rather than
	// the sub-strategy.
	DeliverPacked
)

// String returns a short human-readable name.
func (m DeliveryMode) String() string {
	switch m {
	case DeliverSparse:
		return "sparse"
	case DeliverDense:
		return "dense"
	case DeliverChannels:
		return "channels"
	case DeliverPacked:
		return "packed"
	default:
		return "unknown"
	}
}

// ReshardEvent records one shard re-cut of the parallel coordinator.
type ReshardEvent struct {
	// Round is the index of the round after which the re-cut ran; events
	// are strictly increasing in Round.
	Round int
	// Live is the live worklist size the shards were re-balanced over.
	Live int
	// CostNS is the measured price of the re-cut itself.
	CostNS int64
	// WasteNS is the barrier-imbalance debt (summed idle worker time at
	// the compute barrier) accumulated since the previous re-cut; it is
	// what the adaptive policy weighed against the re-cut price. Zero
	// under ReshardHalving, whose trigger ignores imbalance.
	WasteNS int64
}

var telemetryEnabled atomic.Bool

// SetTelemetry enables or disables telemetry collection for subsequent runs
// on every scheduler. Safe for concurrent use; each run latches the setting
// at start, and an enabled run returns its record as Result.Telemetry.
func SetTelemetry(on bool) { telemetryEnabled.Store(on) }

// TelemetryEnabled reports the current setting.
func TelemetryEnabled() bool { return telemetryEnabled.Load() }

// newTelemetry returns a fresh record when collection is enabled (or forced
// — runs with an adversary always collect), else nil. Engines call it once
// at run start; a nil receiver disables every record method, so the hot
// loops guard with a single pointer test.
func newTelemetry(sched Scheduler, workers int, force bool) *Telemetry {
	if !force && !telemetryEnabled.Load() {
		return nil
	}
	return &Telemetry{Scheduler: sched, Workers: workers}
}

// recordRound appends one round's stats. The slices are copied, so callers
// may reuse their scratch.
func (t *Telemetry) recordRound(wallNS int64, computeNS []int64, staged []int, mode []DeliveryMode) {
	if t == nil {
		return
	}
	t.Rounds = append(t.Rounds, RoundStats{
		WallNS:    wallNS,
		ComputeNS: append([]int64(nil), computeNS...),
		Staged:    append([]int(nil), staged...),
		Mode:      append([]DeliveryMode(nil), mode...),
	})
}

// recordInjected appends one aggregated fault-injection event.
func (t *Telemetry) recordInjected(round int, kind InjectKind, count int) {
	if t == nil {
		return
	}
	t.Injected = append(t.Injected, InjectedEvent{Round: round, Kind: kind, Count: count})
}

// recordReshard appends one re-cut event.
func (t *Telemetry) recordReshard(round, live int, costNS, wasteNS int64) {
	if t == nil {
		return
	}
	t.Reshards = append(t.Reshards, ReshardEvent{Round: round, Live: live, CostNS: costNS, WasteNS: wasteNS})
}

// recordWidth appends one round's effective pool width.
func (t *Telemetry) recordWidth(width int) {
	if t == nil {
		return
	}
	t.PoolWidthPerRound = append(t.PoolWidthPerRound, width)
}

// recordPlace appends one placement event.
func (t *Telemetry) recordPlace(round, width int, pinned bool, moved int, touched bool) {
	if t == nil {
		return
	}
	t.Places = append(t.Places, PlaceEvent{Round: round, Width: width, Pinned: pinned, Moved: moved, Touched: touched})
}

// setCrossShard installs the run's cumulative staging matrix from the
// coordinator's flat workers×workers scratch.
func (t *Telemetry) setCrossShard(workers int, flat []int64) {
	if t == nil || workers < 2 {
		return
	}
	m := make([][]int64, workers)
	for i := range m {
		m[i] = append([]int64(nil), flat[i*workers:(i+1)*workers]...)
	}
	t.CrossShardStaged = m
}
