package sim

import (
	"fmt"
	"sort"

	"randlocal/internal/prng"
)

// AdversaryConfig sets the per-round fault budgets of an Adversary. The zero
// value is the null adversary: enabled but injecting nothing (useful as the
// control arm — by stream isolation it reproduces the fault-free run bit for
// bit, which adversary_test.go asserts across all three schedulers).
type AdversaryConfig struct {
	// DropProb is the probability that any one sent message is silently
	// lost in transit (the receiver sees nothing; the sender is not told).
	DropProb float64
	// DelayProb is the probability that a sent message is held back and
	// injected 1..DelayMax rounds late. A late message loses to anything
	// newer: if the slot it targets holds a fresher message when it comes
	// due, it is superseded and lost.
	DelayProb float64
	// DelayMax bounds the extra rounds a delayed message is held; values
	// below 1 are treated as 1 when DelayProb > 0.
	DelayMax int
	// CrashPerRound crash-stops that many uniformly chosen live nodes at
	// each round boundary. A crashed node stops computing and sending
	// forever (crash-stop, not crash-recovery) but its neighbors are not
	// notified — exactly a halt the program did not choose.
	CrashPerRound int
	// ChurnPerRound removes that many uniformly chosen live edges at each
	// round boundary; messages on a removed edge are lost in both
	// directions from the next round on.
	ChurnPerRound int
	// HealPerRound restores that many previously removed edges at each
	// round boundary (no-op while no edge is down).
	HealPerRound int
	// StallPerRound suspends that many uniformly chosen live nodes for the
	// next round — an adversarial scheduler that denies them the round
	// entirely: no compute, no sends, and the messages that arrived for the
	// stalled round are never observed. At least one live node is always
	// left unstalled, so progress (if the protocol makes any) survives.
	StallPerRound int
}

func (c AdversaryConfig) validate() error {
	if c.DropProb < 0 || c.DropProb > 1 {
		return fmt.Errorf("sim: adversary DropProb %v outside [0,1]", c.DropProb)
	}
	if c.DelayProb < 0 || c.DelayProb > 1 {
		return fmt.Errorf("sim: adversary DelayProb %v outside [0,1]", c.DelayProb)
	}
	if c.DropProb+c.DelayProb > 1 {
		return fmt.Errorf("sim: adversary DropProb+DelayProb %v exceeds 1", c.DropProb+c.DelayProb)
	}
	if c.CrashPerRound < 0 || c.ChurnPerRound < 0 || c.HealPerRound < 0 || c.StallPerRound < 0 {
		return fmt.Errorf("sim: negative adversary budget")
	}
	return nil
}

// Zero reports whether every budget is zero (the null adversary).
func (c AdversaryConfig) Zero() bool {
	return c.DropProb == 0 && c.DelayProb == 0 && c.CrashPerRound == 0 &&
		c.ChurnPerRound == 0 && c.HealPerRound == 0 && c.StallPerRound == 0
}

// Adversary is an immutable fault-injection plan: a budget configuration
// plus the adversary subseed of a SimulationKey. Attach one via
// Config.Adversary; the same Adversary may be reused across runs (each run
// instantiates its own mutable state) and, because every decision draws only
// from the adversary stream, attaching it never changes which coins the
// algorithm sees.
//
// Determinism contract: for a fixed Config (graph, IDs, source seed,
// adversary), the faulted Result — outputs, rounds, ActivePerRound, message
// and bit counters — and the injected-event record are identical across all
// three schedulers and every reshard policy. Message-level decisions are
// pure hashes of (adversary seed, round, destination slot), which no engine
// reorders; node- and edge-level decisions (crashes, churn, stalls) are made
// single-threaded at round boundaries from one coordinator stream.
type Adversary struct {
	cfg  AdversaryConfig
	seed uint64
}

// NewAdversary builds an adversary from the key's adversary subsystem
// stream and the given budgets.
func NewAdversary(key SimulationKey, cfg AdversaryConfig) (*Adversary, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.DelayProb > 0 && cfg.DelayMax < 1 {
		cfg.DelayMax = 1
	}
	return &Adversary{cfg: cfg, seed: key.Subseed(StreamAdversary)}, nil
}

// Config returns the (normalized) budgets.
func (a *Adversary) Config() AdversaryConfig { return a.cfg }

// InjectKind names one category of injected fault event.
type InjectKind uint8

const (
	// InjectDrop counts messages lost in transit by the drop budget.
	InjectDrop InjectKind = iota
	// InjectCut counts messages lost because their edge was churned away.
	InjectCut
	// InjectDelay counts messages held back for late delivery.
	InjectDelay
	// InjectSupersede counts delayed messages that came due but were never
	// observed: their slot held a fresher message, or their receiver had
	// halted in the meantime.
	InjectSupersede
	// InjectExpire counts delayed messages still in flight when the run
	// ended.
	InjectExpire
	// InjectChurnDown counts edges removed.
	InjectChurnDown
	// InjectChurnUp counts edges restored.
	InjectChurnUp
	// InjectCrash counts nodes crash-stopped.
	InjectCrash
	// InjectStall counts node-rounds suspended by the adversarial
	// scheduler.
	InjectStall
	// InjectStallLoss counts messages that had been delivered for a round
	// their receiver was stalled through — they are never observed (their
	// delivery was already tallied, so Result.Messages is not adjusted).
	InjectStallLoss
)

// String returns a short human-readable name.
func (k InjectKind) String() string {
	switch k {
	case InjectDrop:
		return "drop"
	case InjectCut:
		return "cut"
	case InjectDelay:
		return "delay"
	case InjectSupersede:
		return "supersede"
	case InjectExpire:
		return "expire"
	case InjectChurnDown:
		return "churn-down"
	case InjectChurnUp:
		return "churn-up"
	case InjectCrash:
		return "crash"
	case InjectStall:
		return "stall"
	case InjectStallLoss:
		return "stall-loss"
	default:
		return "unknown"
	}
}

// InjectedEvent is one aggregated fault record in Result.Telemetry: Count
// injections of one Kind at the boundary after round Round. Events are
// non-decreasing in Round overall and strictly increasing in Round per Kind,
// and — unlike the telemetry's wall-clock fields — identical across
// schedulers.
type InjectedEvent struct {
	Round int
	Kind  InjectKind
	Count int
}

// messageFate is the in-transit outcome of one sent message.
type messageFate uint8

const (
	fateDeliver messageFate = iota
	fateDrop
	fateCut
	fateDelay
)

// heldMsg is one delayed message: the destination slot, the round it was
// staged, the first round whose compute may observe it, and a private copy
// of the payload (the original lives in a per-round arena whose buffer is
// recycled long before a late delivery).
type heldMsg struct {
	slot    int32
	staged  int32
	deliver int32
	msg     Message
}

// advState is the mutable per-run state of an Adversary. Engines create one
// per run; the shared Adversary stays immutable. Methods fall in two groups:
// fate/hold run inside compute phases (fate is a pure hash; hold touches
// only caller-owned accumulators), everything else runs single-threaded at
// round boundaries while all workers are parked.
type advState struct {
	cfg  AdversaryConfig
	seed uint64
	rng  *prng.SplitMix64 // coordinator stream: crashes, churn, stalls
	off  []int64
	adjf []int32
	rev  []int32
	done []bool // the engine's halted flags (shared, read at boundaries)

	// edgeDead[i] marks half-edge i (and always also rev[i]) as churned
	// away; deadEdges lists each dead edge once by its lower half-edge
	// index, for uniform heal draws.
	edgeDead  []bool
	deadEdges []int32

	held []heldMsg

	// stalled[v] suspends node v for the upcoming round; refreshed at every
	// boundary. stalledN = len(stalledList) is subtracted from the active
	// trace (a stalled node's Round method is not invoked).
	stalled     []bool
	stalledList []int32

	// Per-round send-side counters. The sequential engine increments them
	// directly; the concurrent and parallel engines accumulate per
	// goroutine/worker and merge via mergeRound before the boundary.
	roundDrops  int
	roundCuts   int
	roundDelays int

	liveScratch []int32
	tel         *Telemetry
}

// newState instantiates the per-run state: the engine's CSR tables for
// edge-level bookkeeping and its (live, shared) halted flags.
func (a *Adversary) newState(off []int64, adjf, rev []int32, done []bool) *advState {
	n := len(off) - 1
	return &advState{
		cfg:      a.cfg,
		seed:     a.seed,
		rng:      prng.New(prng.Hash64(a.seed ^ 0xC2B2AE3D27D4EB4F)),
		off:      off,
		adjf:     adjf,
		rev:      rev,
		done:     done,
		edgeDead: make([]bool, len(rev)),
		stalled:  make([]bool, n),
	}
}

func (s *advState) stalledCount() int { return len(s.stalledList) }

// fate decides the in-transit outcome of the round-r message addressed to
// destination slot (a flat half-edge index). It is a pure function of
// (seed, round, slot) — the slot is engine-invariant, so every scheduler
// computes the same outcome regardless of staging order — and is safe to
// call concurrently. The returned delay is the number of extra rounds a
// fateDelay message is held (>= 1).
func (s *advState) fate(r int, slot int32) (messageFate, int) {
	if s.edgeDead[slot] {
		return fateCut, 0
	}
	dp, yp := s.cfg.DropProb, s.cfg.DelayProb
	if dp == 0 && yp == 0 {
		return fateDeliver, 0
	}
	h := prng.Hash64(s.seed ^ (uint64(r)<<32 | uint64(uint32(slot))))
	u := float64(h>>11) / (1 << 53)
	switch {
	case u < dp:
		return fateDrop, 0
	case u < dp+yp:
		d := 1
		if s.cfg.DelayMax > 1 {
			d = 1 + int(prng.Hash64(h^0x9E3779B97F4A7C15)%uint64(s.cfg.DelayMax))
		}
		return fateDelay, d
	default:
		return fateDeliver, 0
	}
}

// holdMsg builds the held entry for a fateDelay outcome, copying the payload
// out of its arena.
func holdMsg(slot int32, r, d int, msg Message) heldMsg {
	return heldMsg{
		slot:    slot,
		staged:  int32(r),
		deliver: int32(r + 1 + d),
		msg:     append(Message(nil), msg...),
	}
}

// mergeRound folds one worker's (or one node goroutine's) per-round fault
// accumulators into the coordinator state. The concurrent engine merges in
// report-arrival order; that is safe because the counters are sums and the
// held list is re-sorted deterministically at injection time.
func (s *advState) mergeRound(drops, cuts, delays int, held []heldMsg) {
	s.roundDrops += drops
	s.roundCuts += cuts
	s.roundDelays += delays
	s.held = append(s.held, held...)
}

func (s *advState) record(r int, kind InjectKind, count int) {
	if count > 0 {
		s.tel.recordInjected(r, kind, count)
	}
}

// boundary is the adversary's single-threaded step between rounds, run by
// every engine's coordinator right after round r's delivery with all workers
// parked. In fixed order it: records the round's send-side losses, injects
// delayed messages that came due, churns edges, crash-stops nodes, and picks
// the next round's stalls. live is the post-round live worklist (ascending);
// crash(v) must mark v halted in the engine's structures (the engine
// compacts its worklists afterwards when crashed > 0). onInject(slot), if
// non-nil, lets the engine account a written inbox slot. iv is the engine's
// current inbox plane behind a representation-neutral view (see inboxView):
// the boundary's decisions depend only on slot occupancy, so a packed run
// makes exactly the supersede/injection choices of its unpacked twin. The
// returned msgs/bits/maxBits are the late-delivery tallies to fold into the
// Result counters.
func (s *advState) boundary(r int, live []int32, iv inboxView, onInject func(int32), crash func(int32)) (msgs int64, bits int64, maxBits int, crashed int) {
	s.record(r, InjectDrop, s.roundDrops)
	s.record(r, InjectCut, s.roundCuts)
	s.record(r, InjectDelay, s.roundDelays)
	s.roundDrops, s.roundCuts, s.roundDelays = 0, 0, 0

	// Late deliveries: among due messages, newest wins — both against the
	// fresh message already in the slot (supersede) and among due entries
	// for the same slot (sorted newest first, so the older one finds the
	// slot taken). The sort also makes the outcome independent of the
	// order reports merged held entries.
	if len(s.held) > 0 {
		due := s.takeDue(r + 1)
		if len(due) > 0 {
			sort.Slice(due, func(i, j int) bool {
				if due[i].staged != due[j].staged {
					return due[i].staged > due[j].staged
				}
				return due[i].slot < due[j].slot
			})
			superseded := 0
			for _, h := range due {
				// A receiver that halted (or crashed) no longer observes its
				// inbox, and the engines disagree on what its abandoned window
				// still holds — so the decision must not read it: a late
				// message to a halted node is always superseded.
				if s.done[s.adjf[s.rev[h.slot]]] {
					superseded++
					continue
				}
				if iv.occupied(h.slot) {
					superseded++
					continue
				}
				iv.inject(h.slot, h.msg)
				if onInject != nil {
					onInject(h.slot)
				}
				b := h.msg.BitLen()
				msgs++
				bits += int64(b)
				if b > maxBits {
					maxBits = b
				}
			}
			s.record(r, InjectSupersede, superseded)
		}
	}

	// Edge churn. Kills draw uniformly over half-edges, skipping dead ones
	// (bounded retries, so a nearly disconnected graph cannot livelock the
	// boundary); heals draw uniformly over the dead-edge list.
	if s.cfg.ChurnPerRound > 0 && len(s.edgeDead) > 0 {
		down := 0
		for j := 0; j < s.cfg.ChurnPerRound; j++ {
			for t := 0; t < 32; t++ {
				i := int32(s.rng.Intn(len(s.edgeDead)))
				if s.edgeDead[i] {
					continue
				}
				ri := s.rev[i]
				s.edgeDead[i], s.edgeDead[ri] = true, true
				if ri < i {
					i = ri
				}
				s.deadEdges = append(s.deadEdges, i)
				down++
				break
			}
		}
		s.record(r, InjectChurnDown, down)
	}
	if s.cfg.HealPerRound > 0 && len(s.deadEdges) > 0 {
		up := 0
		for j := 0; j < s.cfg.HealPerRound && len(s.deadEdges) > 0; j++ {
			di := s.rng.Intn(len(s.deadEdges))
			i := s.deadEdges[di]
			s.deadEdges[di] = s.deadEdges[len(s.deadEdges)-1]
			s.deadEdges = s.deadEdges[:len(s.deadEdges)-1]
			s.edgeDead[i], s.edgeDead[s.rev[i]] = false, false
			up++
		}
		s.record(r, InjectChurnUp, up)
	}

	// Crash-stops, then next round's stalls, drawn from the same shrinking
	// pool so a node is never crashed and stalled at once.
	if s.cfg.CrashPerRound > 0 || s.cfg.StallPerRound > 0 {
		for _, v := range s.stalledList {
			s.stalled[v] = false
		}
		s.stalledList = s.stalledList[:0]

		s.liveScratch = append(s.liveScratch[:0], live...)
		pool := s.liveScratch
		k := s.cfg.CrashPerRound
		if k > len(pool) {
			k = len(pool)
		}
		for j := 0; j < k; j++ {
			i := s.rng.Intn(len(pool))
			v := pool[i]
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			crash(v)
		}
		s.record(r, InjectCrash, k)
		crashed = k

		sk := s.cfg.StallPerRound
		if sk > len(pool)-1 {
			sk = len(pool) - 1 // always leave one node unstalled
		}
		for j := 0; j < sk; j++ {
			i := s.rng.Intn(len(pool))
			v := pool[i]
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			s.stalled[v] = true
			s.stalledList = append(s.stalledList, v)
		}
		s.record(r, InjectStall, len(s.stalledList))

		// Messages already delivered for the stalled round are never
		// observed (the round's fresh deliveries replace them before the
		// node runs again); count them.
		lost := 0
		for _, v := range s.stalledList {
			lost += iv.occupiedInRange(s.off[v], s.off[v+1])
		}
		s.record(r, InjectStallLoss, lost)
	}
	return msgs, bits, maxBits, crashed
}

// takeDue partitions s.held in place: entries due at round `due` are
// returned (in a fresh slice), the rest remain compacted in s.held.
func (s *advState) takeDue(due int) []heldMsg {
	kept := s.held[:0]
	var dueList []heldMsg
	for _, h := range s.held {
		if int(h.deliver) == due {
			dueList = append(dueList, h)
		} else {
			kept = append(kept, h)
		}
	}
	// Clear the tail so superseded payloads are not retained.
	for i := len(kept); i < len(s.held); i++ {
		s.held[i] = heldMsg{}
	}
	s.held = kept
	return dueList
}

// finish flushes end-of-run records: delayed messages still in flight when
// the network halted expire undelivered. finalRound is the last executed
// round index.
func (s *advState) finish(finalRound int) {
	if len(s.held) > 0 {
		s.record(finalRound, InjectExpire, len(s.held))
		s.held = s.held[:0]
	}
}
