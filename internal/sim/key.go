package sim

import (
	"hash/fnv"
	"io"

	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

// SimulationKey is the single reproducibility handle of a run: every random
// choice a simulation makes — the algorithm's coins, the adversary's coins,
// workload generation (random IDs, random graphs), and scheduling jitter —
// is derived from one key through per-subsystem one-way subseeds, so the
// streams are mutually isolated. Consuming any amount of one subsystem's
// randomness never perturbs another's: an injected fault can never shift the
// algorithm's coin sequence, which is what makes faulted runs diffable
// against their fault-free twins (and is proven by the golden tests in
// key_test.go and the zero-budget invariance suite in adversary_test.go).
type SimulationKey uint64

// NewSimulationKey wraps a master seed as a run key. The algorithm subsystem
// uses the master seed unchanged, so NewSimulationKey(s).FullSource() is
// bit-identical to the historical randomness.NewFull(s) — old seeds keep
// reproducing old runs.
func NewSimulationKey(master uint64) SimulationKey { return SimulationKey(master) }

// Subsystem names one isolated randomness stream of a run.
type Subsystem uint8

const (
	// StreamAlgorithm seeds the algorithm's randomness.Source — the coins
	// the paper's model grants the node programs.
	StreamAlgorithm Subsystem = iota
	// StreamAdversary seeds every fault-injection decision (drops, delays,
	// crashes, churn, stalls).
	StreamAdversary
	// StreamWorkload seeds instance generation: random IDs, random graphs,
	// random inputs.
	StreamWorkload
	// StreamShardJitter is reserved for randomized scheduling decisions of
	// the engines themselves (e.g. jittered shard cuts); no engine draws
	// from it yet, but the slot is part of the key contract.
	StreamShardJitter

	numSubsystems
)

// subsystemSalt separates the subseeds. StreamAlgorithm's salt is unused
// (its subseed is the key itself, for backward bit-compatibility); the
// others pass through the SplitMix64 finalizer with distinct odd constants.
var subsystemSalt = [numSubsystems]uint64{
	StreamAdversary:   0xB5AD4ECEDA1CE2A9,
	StreamWorkload:    0x2545F4914F6CDD1D,
	StreamShardJitter: 0x9E6C63D0876A9A99,
}

// Subseed derives the 64-bit seed of one subsystem. The algorithm subseed is
// the key itself — the pre-partitioning engines seeded their sources with
// the raw master seed, and keeping that stream bit-identical is the golden
// contract of the refactor. Every other subsystem applies the one-way
// SplitMix64 finalizer to the salted key, so no subsystem's seed reveals (or
// collides with) another's stream.
func (k SimulationKey) Subseed(s Subsystem) uint64 {
	if s == StreamAlgorithm {
		return uint64(k)
	}
	return prng.Hash64(uint64(k) ^ subsystemSalt[s])
}

// Derive returns the child key for a labeled unit of work — one experiment
// trial, one scenario of a sweep. The derivation (FNV-1a of the label,
// folded with the golden-ratio multiple of the parent key) is byte-identical
// to the experiments pipeline's historical RunSpec seed derivation, so
// checked-in experiment records remain reproducible.
func (k SimulationKey) Derive(label string) SimulationKey {
	h := fnv.New64a()
	io.WriteString(h, label)
	return SimulationKey(h.Sum64() ^ (uint64(k) * 0x9e3779b97f4a7c15))
}

// RNG returns a PartitionedRNG over this key with no stream yet
// instantiated.
func (k SimulationKey) RNG() *PartitionedRNG { return &PartitionedRNG{key: k} }

// FullSource returns the full-randomness source (the standard model) seeded
// from the key's algorithm subsystem. Bit-identical to
// randomness.NewFull(master) for a key built by NewSimulationKey(master).
func (k SimulationKey) FullSource() *randomness.Full {
	return randomness.NewFull(k.Subseed(StreamAlgorithm))
}

// SharedSource draws an nbits shared seed (Section 3.2's model) from the
// key's algorithm subsystem.
func (k SimulationKey) SharedSource(nbits int) *randomness.Shared {
	return randomness.NewShared(nbits, prng.New(k.Subseed(StreamAlgorithm)))
}

// SparseSource places bitsPerHolder private bits at each holder (Section
// 3.1's model), seeded from the key's algorithm subsystem.
func (k SimulationKey) SparseSource(holders []int, bitsPerHolder int) (*randomness.Sparse, error) {
	return randomness.NewSparse(holders, bitsPerHolder, k.Subseed(StreamAlgorithm))
}

// PartitionedRNG hands out the per-subsystem SplitMix64 streams of one
// SimulationKey. Streams are created lazily and independently: drawing any
// amount from one never advances, reseeds or otherwise perturbs another, so
// a consumer may drain the adversary stream dry and the algorithm stream
// still yields the exact sequence it would have in a fault-free run.
type PartitionedRNG struct {
	key     SimulationKey
	streams [numSubsystems]*prng.SplitMix64
}

// Key returns the key the streams derive from.
func (p *PartitionedRNG) Key() SimulationKey { return p.key }

// Stream returns the lazily-created generator of one subsystem.
func (p *PartitionedRNG) Stream(s Subsystem) *prng.SplitMix64 {
	if p.streams[s] == nil {
		p.streams[s] = prng.New(p.key.Subseed(s))
	}
	return p.streams[s]
}

// Algorithm returns the algorithm-coins stream. Prefer the Source
// constructors on SimulationKey for seeding node programs; this accessor
// exists for callers that need raw draws under the algorithm budget.
func (p *PartitionedRNG) Algorithm() *prng.SplitMix64 { return p.Stream(StreamAlgorithm) }

// Adversary returns the fault-injection stream.
func (p *PartitionedRNG) Adversary() *prng.SplitMix64 { return p.Stream(StreamAdversary) }

// Workload returns the instance-generation stream.
func (p *PartitionedRNG) Workload() *prng.SplitMix64 { return p.Stream(StreamWorkload) }

// ShardJitter returns the scheduling-jitter stream.
func (p *PartitionedRNG) ShardJitter() *prng.SplitMix64 { return p.Stream(StreamShardJitter) }
