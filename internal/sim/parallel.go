package sim

import (
	"fmt"
	mathbits "math/bits"
	"runtime"
	"sync"
	"time"
)

// stagedMsg is one message in flight between the compute and scatter phases
// of RunParallel: the flat half-edge index of the destination slot (the
// reverse half-edge of the sending port) and the payload.
type stagedMsg struct {
	idx int32
	msg Message
}

// parallelWorker is the per-shard state of one pool worker. Each worker owns
// the contiguous node range [lo, hi) — and with it the contiguous half-edge
// window off[lo]:off[hi] of the flat message plane: only the owner calls
// those nodes' Round methods, writes their done flags, and delivers into
// their inbox slots, so no field here or in engineState is ever written by
// two goroutines.
type parallelWorker struct {
	lo, hi int
	// active is the shard's compact worklist of live nodes in ascending
	// order, compacted in place as nodes halt; activeN snapshots its length
	// at the top of each compute phase for the Result's ActivePerRound.
	active  []int32
	activeN int
	// arena is the shard's per-round payload arena (see arena.go); it is
	// rotated at the top of each compute phase, which recycles the buffer
	// whose payloads were read in the previous round.
	arena *arena
	// outbox[s] stages the messages this worker's nodes addressed to nodes
	// of shard s during the compute phase; shard s applies them during the
	// scatter phase. Reused (truncated, not freed) across rounds.
	outbox [][]stagedMsg
	// Packed-run counterparts (nil on unpacked runs). out is this worker's
	// private full-length out plane — its nodes' NodeCtx.outBits — harvested
	// and cleared inside the compute phase, so workers never write a shared
	// word. pout[s] stages the packed messages addressed to shard s's word
	// range as slot|bit<<31 entries; wlo/whi is this shard's exclusive word
	// window [wlo, whi) of the inbox plane (word-rounded shard bounds, see
	// graph.ShardWordBounds), which makes the packed scatter race-free
	// without atomics even though adjacent shards' slot ranges share
	// boundary words.
	out      *bitPlane
	pout     [][]uint32
	wlo, whi int
	// inboxSlots lists the slots of this shard's inbox window that are
	// currently non-nil, so a sparse scatter phase clears and refills
	// exactly the touched slots instead of sweeping the whole window.
	// denseInbox records that the previous scatter took the dense path —
	// it delivered without recording slots, so the next clear must memclr
	// the whole window.
	inboxSlots []int32
	denseInbox bool
	// Per-round partial counters, merged by the coordinator in worker order
	// after the scatter barrier. Sums and max are order-independent, so the
	// merged totals equal the sequential scheduler's exactly.
	msgs    int64
	bits    int64
	maxBits int
	halted  int
	// Per-round adversary accumulators (fault-free runs never touch them):
	// counts of messages the adversary dropped, cut or held from this
	// shard's senders, and the held entries themselves, merged by the
	// coordinator before the round boundary.
	drops  int
	cuts   int
	delays int
	held   []heldMsg
	// computeNS is the wall time of this worker's last compute phase. The
	// spread across the pool is the barrier imbalance the adaptive
	// re-shard policy weighs against the re-cut price; two clock reads per
	// worker per round cost nothing next to the phase itself, so it is
	// measured unconditionally.
	computeNS int64
	// err is the shard's first error by node index. Shards are contiguous,
	// so the erroring worker with the lowest node range holds the same
	// error Run would have returned — the coordinator scans its range-
	// ordered active set, because placement-aware re-cuts permute which
	// worker owns which range.
	err error
}

const (
	phaseCompute = iota
	phaseScatter
	// phaseTouch is the placement phase of pinned runs: each worker walks
	// its shard's plane windows (and its arena) with page-stride idempotent
	// writes from its own locked thread, so the backing pages fault in on —
	// or migrate their cache lines toward — the owning thread's node. Run
	// once at setup and after every re-cut; never during a round.
	phaseTouch
)

// touchPageWords is the touch stride over []uint64 planes (4 KiB pages of
// 8-byte words); touchPageMsgs the stride over []Message planes (16-byte
// interface headers).
const (
	touchPageWords = 512
	touchPageMsgs  = 256
)

// touchWords walks p[lo:hi] at page stride with idempotent load+store pairs.
// Rewriting a slot's current value is safe at any time — the plane may hold
// live messages after a re-cut — while still dirtying the page, which is
// what makes an untouched page fault in on the calling thread (a pure read
// would merely map the shared zero page) and pulls a touched one's cache
// lines toward it.
func touchWords(p []uint64, lo, hi int) {
	for i := lo; i < hi; i += touchPageWords {
		v := p[i]
		p[i] = v
	}
	if hi > lo {
		v := p[hi-1]
		p[hi-1] = v
	}
}

// touchMsgs is touchWords over a Message plane window.
func touchMsgs(p []Message, lo, hi int64) {
	for i := lo; i < hi; i += touchPageMsgs {
		v := p[i]
		p[i] = v
	}
	if hi > lo {
		v := p[hi-1]
		p[hi-1] = v
	}
}

// touchBytes is the touch walk over one arena buffer's full capacity.
func touchBytes(p []byte) {
	for i := 0; i < len(p); i += 1 << 12 {
		v := p[i]
		p[i] = v
	}
	if len(p) > 0 {
		v := p[len(p)-1]
		p[len(p)-1] = v
	}
}

// firstTouch is the worker body of phaseTouch: page-stride idempotent writes
// over everything this worker owns — its inbox window (unpacked plane or
// packed word window), its private out plane's window, and its arena's
// retained buffers. Owner-exclusive by the same single-writer invariant the
// round phases rely on, and barrier-separated from them, so it is race-free
// and cannot change any Result: every write stores back the value it read.
func (w *parallelWorker) firstTouch(st *engineStateCore) {
	if st.packed {
		touchWords(st.inBits.present, w.wlo, w.whi)
		touchWords(st.inBits.value, w.wlo, w.whi)
		if w.out != nil && w.hi > w.lo {
			plo, phi := int(st.off[w.lo]>>6), int((st.off[w.hi]+63)>>6)
			touchWords(w.out.present, plo, phi)
			touchWords(w.out.value, plo, phi)
		}
	} else {
		touchMsgs(st.inbox, st.off[w.lo], st.off[w.hi])
	}
	w.arena.touch()
}

type phaseCmd struct {
	phase int
	round int
}

// compute runs the compute half of round r for every node on the shard's
// worklist, staging outgoing messages into per-destination-shard outboxes
// and compacting the worklist as nodes halt.
func (w *parallelWorker) compute(st *engineStateCore, r int) {
	start := time.Now()
	defer func() { w.computeNS = time.Since(start).Nanoseconds() }()
	w.msgs, w.bits, w.maxBits, w.halted = 0, 0, 0, 0
	w.drops, w.cuts, w.delays, w.held = 0, 0, 0, w.held[:0]
	w.err = nil
	if r > 0 {
		// Not before round 0: Init-time carves (which land in the engine
		// arena, wired before the shards override it) and round-0 carves
		// must both survive into round 1.
		w.arena.rotate()
	}
	for s := range w.outbox {
		w.outbox[s] = w.outbox[s][:0]
	}
	for s := range w.pout {
		w.pout[s] = w.pout[s][:0]
	}
	w.activeN = len(w.active)
	live := w.active[:0]
	for _, v32 := range w.active {
		v := int(v32)
		if st.adv != nil && st.adv.stalled[v] {
			// Denied the round by the adversarial scheduler: stays live,
			// does not compute, does not count as active.
			w.activeN--
			live = append(live, v32)
			continue
		}
		out, nodeDone := st.round(v, r)
		if st.packed {
			// The program wrote its bits into this worker's private out
			// plane; harvest them into the per-destination-shard staging
			// lists (no bandwidth/poison/degree checks — the representation
			// cannot express a violation).
			w.stagePacked(st, v, r)
			if nodeDone {
				st.done[v] = true
				w.halted++
			} else {
				live = append(live, v32)
			}
			continue
		}
		lo := st.off[v]
		if deg := int(st.off[v+1] - lo); len(out) > deg {
			if w.err == nil {
				w.err = fmt.Errorf("sim: node %d produced %d outbox entries for degree %d", v, len(out), deg)
			}
			live = append(live, v32)
			continue
		}
		for p, msg := range out {
			if msg == nil {
				continue
			}
			if st.poison && isPoison(msg) {
				if w.err == nil {
					w.err = &OutboxPortError{Node: v, Round: r, Port: p}
				}
				break
			}
			b := msg.BitLen()
			if st.maxMessageBits > 0 && b > st.maxMessageBits {
				if w.err == nil {
					w.err = &BandwidthError{Node: v, Round: r, Bits: b, Limit: st.maxMessageBits}
				}
				break
			}
			i := lo + int64(p)
			if st.adv != nil {
				switch f, d := st.adv.fate(r, st.rev[i]); f {
				case fateDrop:
					w.drops++
					continue
				case fateCut:
					w.cuts++
					continue
				case fateDelay:
					w.delays++
					w.held = append(w.held, holdMsg(st.rev[i], r, d, msg))
					continue
				}
			}
			s := st.shardOf[st.adj[i]]
			w.outbox[s] = append(w.outbox[s], stagedMsg{idx: st.rev[i], msg: msg})
			// Tally at stage time, while the header is hot: the counters
			// merge order-independently across workers, so totals match the
			// sequential engine whether tallied by sender or by receiver.
			w.msgs++
			w.bits += int64(b)
			if b > w.maxBits {
				w.maxBits = b
			}
		}
		if nodeDone {
			st.done[v] = true
			w.halted++
		} else {
			live = append(live, v32)
		}
	}
	w.active = live
}

// scatter delivers every message addressed to this shard — gathered from all
// workers' outboxes — straight into the shard's inbox window, after clearing
// what the previous round delivered into it. Accounting happened at stage
// time, so the phase is pure data movement, and — like the sequential
// engine's finishRound — which strategy runs is an adaptive locality
// decision made per shard per round: a dense round (messages a sizable
// fraction of the window) skips slot bookkeeping and relies on a whole-
// window memclr, which the runtime vectorizes, while a sparse round walks
// exactly the touched slots, so a shattering tail costs O(messages touching
// the shard), not O(half-edges of the shard).
func (w *parallelWorker) scatter(st *engineStateCore, self int, workers []*parallelWorker) {
	if w.denseInbox {
		clear(st.inbox[st.off[w.lo]:st.off[w.hi]])
	} else {
		for _, i := range w.inboxSlots {
			st.inbox[i] = nil
		}
	}
	w.inboxSlots = w.inboxSlots[:0]
	total := 0
	for _, src := range workers {
		total += len(src.outbox[self])
	}
	// Same shared density cut-off as the sequential engine's plane swap.
	if w.denseInbox = denseDelivery(total, int(st.off[w.hi]-st.off[w.lo])); w.denseInbox {
		for _, src := range workers {
			for _, sm := range src.outbox[self] {
				st.inbox[sm.idx] = sm.msg
			}
		}
		return
	}
	for _, src := range workers {
		for _, sm := range src.outbox[self] {
			st.inbox[sm.idx] = sm.msg
			w.inboxSlots = append(w.inboxSlots, sm.idx)
		}
	}
}

// stagePacked harvests node v's freshly written out-plane window: per present
// bit it resolves the destination slot, consults the adversary, routes the
// bit to the shard owning the destination's *word* (st.wordShardOf — word
// ownership, not node ownership, is what keeps the packed scatter race-free)
// and tallies the canonical 8-bit message; then clears the window. Mirrors
// engineState.stepPacked slot for slot, so the staged order — and with it
// every counter and adversary fate — matches the sequential engine.
func (w *parallelWorker) stagePacked(st *engineStateCore, v, r int) {
	lo, hi := st.off[v], st.off[v+1]
	if lo == hi {
		return
	}
	out := w.out
	whi := int((hi - 1) >> 6)
	for wd := int(lo >> 6); wd <= whi; wd++ {
		pw := out.present[wd]
		if pw == 0 {
			continue
		}
		base := int64(wd) << 6
		if base < lo {
			pw &= ^uint64(0) << (uint(lo) & 63)
		}
		if base+64 > hi {
			pw &= ^uint64(0) >> (63 - uint(hi-1)&63)
		}
		vv := out.value[wd]
		for pw != 0 {
			k := mathbits.TrailingZeros64(pw)
			pw &= pw - 1
			i := st.rev[base+int64(k)]
			bit := vv >> uint(k) & 1
			if st.adv != nil {
				switch f, d := st.adv.fate(r, i); f {
				case fateDrop:
					w.drops++
					continue
				case fateCut:
					w.cuts++
					continue
				case fateDelay:
					w.delays++
					w.held = append(w.held, holdMsg(i, r, d, bitWire[bit]))
					continue
				}
			}
			s := st.wordShardOf[i>>6]
			w.pout[s] = append(w.pout[s], uint32(i)|uint32(bit)<<31)
			w.msgs++
			w.bits += 8
			if w.maxBits < 8 {
				w.maxBits = 8
			}
		}
	}
	out.clearBitRange(lo, hi)
}

// scatterPacked is scatter over the packed inbox plane: the worker clears its
// exclusive word window [wlo, whi) — whole-window memclr after a dense round,
// staged-slot walk after a sparse one — then ORs in every bit addressed to
// it. The density decision is the same shared cut-off as everywhere else,
// counted in words (the unit the dense memclr sweeps).
func (w *parallelWorker) scatterPacked(st *engineStateCore, self int, workers []*parallelWorker) {
	ib := st.inBits
	if w.denseInbox {
		ib.clearWords(w.wlo, w.whi)
	} else {
		for _, i := range w.inboxSlots {
			ib.clearSlot(i)
		}
	}
	w.inboxSlots = w.inboxSlots[:0]
	total := 0
	for _, src := range workers {
		total += len(src.pout[self])
	}
	if w.denseInbox = denseDelivery(total, w.whi-w.wlo); w.denseInbox {
		for _, src := range workers {
			for _, pm := range src.pout[self] {
				ib.set(int32(pm&0x7fffffff), uint64(pm>>31))
			}
		}
		return
	}
	for _, src := range workers {
		for _, pm := range src.pout[self] {
			slot := int32(pm & 0x7fffffff)
			ib.set(slot, uint64(pm>>31))
			w.inboxSlots = append(w.inboxSlots, slot)
		}
	}
}

// engineStateCore is the type-independent slice of engineState the workers
// need; keeping it non-generic lets the phase methods live on plain structs.
type engineStateCore struct {
	off            []int64 // CSR offsets
	adj            []int32 // CSR flat neighbor array
	rev            []int32 // CSR reverse half-edge table
	done           []bool
	inbox          []Message // flat half-edge-indexed message plane
	shardOf        []int32
	maxMessageBits int
	// Packed-run fields (zero on unpacked runs): the packed inbox plane and
	// the word-ownership table — wordShardOf[wd] is the shard whose scatter
	// phase owns word wd of the plane, rebuilt on every re-cut. packed
	// staging routes by it, not by shardOf: the two disagree exactly on the
	// boundary slots a word-rounded cut shifted to the lower shard.
	packed      bool
	inBits      *bitPlane
	wordShardOf []int32
	poison      bool // poisoned-Outbox debug check (see debug.go)
	// adv is the run's adversary state (nil when fault-free). Workers call
	// only its pure fate hash and read stalled flags, both stable within a
	// round; every mutation happens at the coordinator's round boundary.
	adv   *advState
	round func(v, r int) ([]Message, bool)
	// src is the pool's current *active* worker set — the scatter phase
	// gathers staged messages from exactly these workers. The coordinator
	// rewrites it between rounds as the adaptive pool ledger parks and
	// wakes workers; the phase-command sends publish it to the pool.
	src []*parallelWorker
}

// RunParallel executes the network with a sharded worker-pool engine: nodes
// are partitioned into `workers` contiguous shards of near-equal half-edge
// count (graph.ShardBounds — equal node counts would let one hub-heavy shard
// of a power-law graph dominate every barrier), and a fixed pool of
// `workers` goroutines (default runtime.GOMAXPROCS(0) when workers <= 0)
// drives each round in two barrier-separated phases. In the compute phase
// every worker runs its shard's live worklist against the current inboxes
// and stages outgoing messages into a per-destination-shard outbox; in the
// scatter phase every worker delivers the messages addressed to its shard
// into its window of the engine's flat inbox array and tallies the delivery
// counters. Because shards are contiguous node ranges, each worker's slice
// of the flat message plane is a contiguous half-edge window; worklists and
// staged-slot delivery make a late round cost O(active + messages) rather
// than O(n + m), and no per-node goroutines or per-edge channels are
// allocated, so the engine scales to million-node graphs where
// RunConcurrent's goroutine-per-node synchronizer collapses.
//
// Two adaptations keep the pool busy across a run's whole lifetime. Per
// round and per shard, the scatter phase chooses between a staged-slot walk
// and a whole-window memclr by comparing message count against window size
// (the same density cut-off as the sequential engine's plane swap), so dense
// all-active rounds take the vectorized sweep and sparse tail rounds touch
// only live slots. And the coordinator re-cuts the shards over the live
// worklist by surviving half-edge spans (graph.ShardBoundsLiveInto), so the
// shattering tail — where the initial whole-graph cut would leave most
// workers idle — stays balanced. *When* a re-cut runs is governed by
// cfg.Reshard: under the ReshardAdaptive default the coordinator accumulates
// the barrier imbalance it actually observes (summed idle worker time,
// computed from per-worker compute-phase clocks) and re-cuts once that debt
// exceeds reshardPayoff × the measured price of a cut; ReshardHalving is the
// fixed legacy rule (re-cut at every worklist halving) kept for A/B runs,
// and ReshardOff pins the initial cut. The policy changes wall clock only,
// never the Result.
//
// On top of *when*, the engine is topology-aware about *where* and *how
// wide*. Where: under cfg.Place (PlacePin, or PlaceAuto on a multi-CPU
// host) every worker locks its OS thread for the run and first-touches its
// shard's plane windows and arena from that thread at setup and after every
// re-cut, so pages land on the owning thread's NUMA node; and each re-cut
// assigns the new shard ranges to workers by measured affinity
// (graph.AssignShardsAffine over the cross-shard staged-message matrix the
// coordinator accumulates at the staging sites), so workers keep the
// windows — and the traffic — they already own instead of being dealt
// ranges by pool order. How wide: under ReshardAdaptive the same debt
// ledger carries a pool-width model (poolModel): when the live worklist
// shrinks below the measured per-worker profitability threshold, the
// coordinator re-cuts to fewer shards and parks the surplus workers on
// their command channels — the shattering tail stops paying P-way barrier
// and scatter costs for one worker's work — and wakes them if the workload
// re-grows. Because per-worker wall clocks cannot see processor
// oversubscription (time-sliced workers all measure the full round span),
// the width model is additionally clamped to the host's processor count:
// under ReshardAdaptive a pool wider than GOMAXPROCS starts at hardware
// width, and a pool that collapses to width 1 dispatches to the sequential
// engine outright (a one-wide pool still pays the stage-and-scatter copy
// the sequential path avoids). Explicit policies (ReshardHalving,
// ReshardOff) treat the configured worker count as a contract and never
// resize. All of it changes wall clock only: Results and
// Telemetry.Injected are byte-identical across place policies × reshard
// policies × worker counts, as the equivalence suite asserts.
//
// Every mutable location has a single writer (the shard owner), phases are
// separated by barriers, and counters merge over order-independent sums and
// maxima, so for a given Config and seed the Result — outputs, rounds,
// active trajectory, message count, bit total, and max message size — is
// identical to Run's and RunConcurrent's. The test suite asserts this
// equivalence on random GNP, tree and power-law networks under every
// randomness regime.
func RunParallel[T any](cfg Config, factory func(v int) NodeProgram[T], workers int) (*Result[T], error) {
	st, err := newEngineState(cfg, factory, Parallel)
	if err != nil {
		return nil, err
	}
	defer st.release()
	if workers <= 0 {
		workers = numProcs()
	}
	if workers > st.n {
		workers = st.n
	}
	maxRounds := st.maxRounds()
	if workers <= 1 {
		// A one-worker pool is the sequential schedule; skip the barriers,
		// but keep the telemetry labeled with the engine the caller asked
		// for (one lane; cfg.Reshard and cfg.Place are moot without shards).
		st.initTelemetry(Parallel, 1)
		return st.runSequential(maxRounds)
	}

	// Placement: PlaceAuto resolves through the package default and then by
	// hardware — pinning pays only when the runtime actually has more than
	// one CPU to place workers on; on a single-CPU host (1-core containers,
	// CI quota) a locked thread just adds affinity churn.
	place := cfg.Place
	if place == PlaceAuto {
		place = DefaultPlace()
	}
	if place == PlaceAuto {
		if numProcs() >= 2 {
			place = PlacePin
		} else {
			place = PlaceNone
		}
	}
	pin := place == PlacePin

	// The re-shard policy is resolved up front because it also governs the
	// pool's starting width: under the adaptive policy a pool wider than
	// the runtime's concurrency limit starts clamped to it — the surplus
	// workers would only time-slice the same processors, paying barrier and
	// scatter coordination for zero overlap, and on a staggered workload
	// the expensive early rounds are exactly the ones a late measurement-
	// driven park would miss. The explicit policies run the configured
	// width untouched: their contract is "do what I said".
	policy := cfg.Reshard
	if policy == ReshardAuto {
		policy = DefaultReshard()
	}
	width := workers
	if policy == ReshardAdaptive {
		if p := numProcs(); p < width {
			width = p
		}
	}
	if width <= 1 {
		// The topology clamp collapsed the pool to one worker: a one-wide
		// pool still pays the stage-and-scatter machinery (every message
		// copied through a staging list it never needed), so run the
		// sequential schedule outright, exactly like a configured
		// one-worker pool.
		st.initTelemetry(Parallel, 1)
		return st.runSequential(maxRounds)
	}

	// Contiguous shards balanced by half-edge count: worker i owns
	// [bounds[i], bounds[i+1]) for i < width; workers beyond the starting
	// width begin parked (empty range, blocked on their command channel)
	// and cost nothing until the pool-width ledger wakes them. A pooled run
	// draws the workers, ownership tables and scratch from the slab — the
	// structure (arenas, worklist and staging capacity, private out planes)
	// survives between runs; everything content-like is rewired below.
	bounds := st.g.ShardBounds(width)
	var shardOf []int32
	var pool []*parallelWorker
	if st.slab != nil {
		shardOf = st.slab.shardTable()
		pool = st.slab.parWorkers(workers, st.packed)
	} else {
		shardOf = make([]int32, st.n)
		pool = make([]*parallelWorker, workers)
		for i := range pool {
			pool[i] = &parallelWorker{arena: &arena{}}
			if st.packed {
				// Each worker gets a private out plane (its nodes write bits
				// there during compute, no shared words) and per-shard packed
				// staging lists; the []Message staging machinery stays nil.
				pool[i].out = newBitPlane(len(st.adjf))
				pool[i].pout = make([][]uint32, workers)
			} else {
				pool[i].outbox = make([][]stagedMsg, workers)
			}
		}
	}
	for i, w := range pool {
		w.lo, w.hi = 0, 0
		w.wlo, w.whi = 0, 0
		w.active = w.active[:0]
		if i >= width {
			continue
		}
		lo, hi := bounds[i], bounds[i+1]
		w.lo, w.hi = lo, hi
		for v := lo; v < hi; v++ {
			shardOf[v] = int32(i)
			w.active = append(w.active, int32(v))
			st.ctxs[v].arena = w.arena
			if st.packed {
				st.ctxs[v].outBits = w.out
			}
		}
	}
	core := &engineStateCore{
		off:            st.off,
		adj:            st.adjf,
		rev:            st.rev,
		done:           st.done,
		inbox:          st.inbox,
		shardOf:        shardOf,
		maxMessageBits: cfg.MaxMessageBits,
		poison:         st.poison,
		adv:            st.adv,
		round:          st.roundFor,
		packed:         st.packed,
		inBits:         st.inBits,
		src:            pool,
	}
	// act is the active worker set — the pool indices that own a shard and
	// run the phases — in ascending pool order; actW the same workers in
	// ascending *node-range* order. Affinity re-cuts permute which worker
	// owns which range, and everything that must replay the sequential
	// engine's node order — counter merges, held-message queues, the live
	// gathers feeding the adversary and ShardBoundsLiveInto (whose contract
	// requires an ascending worklist) — walks actW, while phase commands
	// and telemetry lanes go by pool index. Initially the starting width in
	// identity order; every mutation happens between rounds and is
	// published to the workers by the next phase-command sends.
	act := make([]int, width, workers)
	actW := make([]*parallelWorker, width, workers)
	for i := 0; i < width; i++ {
		act[i] = i
		actW[i] = pool[i]
	}
	core.src = actW
	// Word-rounded scatter windows: the worker owning range s of the cut
	// holds the exclusive word range [wlo, whi) of the packed inbox plane
	// (graph.ShardWordBounds), so adjacent shards whose slot ranges share a
	// boundary word never write the same word concurrently. assign maps cut
	// range → owning pool index (identity at setup, affinity-chosen at
	// re-cuts).
	var wordBoundsScratch []int
	applyWordBounds := func(bounds []int, assign []int) {
		wordBoundsScratch = st.g.ShardWordBoundsInto(bounds, wordBoundsScratch)
		for s := 0; s+1 < len(wordBoundsScratch); s++ {
			w := pool[assign[s]]
			w.wlo, w.whi = wordBoundsScratch[s], wordBoundsScratch[s+1]
			for wd := w.wlo; wd < w.whi; wd++ {
				core.wordShardOf[wd] = int32(assign[s])
			}
		}
	}
	if st.packed {
		if st.slab != nil {
			core.wordShardOf = st.slab.wordShardTable(st.inBits.words())
		} else {
			core.wordShardOf = make([]int32, st.inBits.words())
		}
		applyWordBounds(bounds, act)
	}

	cmds := make([]chan phaseCmd, workers)
	for i := range cmds {
		cmds[i] = make(chan phaseCmd, 1)
	}
	var barrier, lifetime sync.WaitGroup
	lifetime.Add(workers)
	for i, w := range pool {
		go func(i int, w *parallelWorker) {
			defer lifetime.Done()
			if pin {
				// Pinned run: the goroutine keeps one OS thread for its
				// lifetime, so the pages its phaseTouch passes fault in stay
				// with the thread that owns the windows.
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			for c := range cmds[i] {
				switch c.phase {
				case phaseCompute:
					w.compute(core, c.round)
				case phaseScatter:
					if core.packed {
						w.scatterPacked(core, i, core.src)
					} else {
						w.scatter(core, i, core.src)
					}
				case phaseTouch:
					w.firstTouch(core)
				}
				barrier.Done()
			}
		}(i, w)
	}
	// runPhase broadcasts one phase to the active workers and blocks until
	// every one finishes it; the WaitGroup plus the command-channel sends
	// give the scatter phase a happens-before view of every worker's staged
	// outboxes (and of every coordinator mutation since the last barrier).
	// Parked workers stay blocked on their channel, costing nothing.
	runPhase := func(c phaseCmd) {
		barrier.Add(len(act))
		for _, i := range act {
			cmds[i] <- c
		}
		barrier.Wait()
	}
	stop := func() {
		for i := range cmds {
			close(cmds[i])
		}
		lifetime.Wait()
	}

	// Coordinator scratch for re-cuts: the live-worklist gather and the
	// surviving-slot collection (warm from the slab on pooled runs, handed
	// back before release scrubs), plus the bounds/prefix scratch that
	// ShardBoundsLiveInto recycles so a steady cut cadence allocates
	// nothing.
	var liveScratch, slotScratch []int32
	if s := st.slab; s != nil {
		// The coordinator's big gather buffers come warm from the slab; hand
		// the (possibly grown) headers back before release scrubs them.
		liveScratch, slotScratch = s.liveScratch[:0], s.slotScratch[:0]
		defer func() { s.liveScratch, s.slotScratch = liveScratch, slotScratch }()
	} else {
		liveScratch = make([]int32, 0, st.n)
	}
	var boundsScratch []int
	var prefixScratch []int64
	// Cross-shard staging matrices, flat workers×workers, src-major:
	// crossTel accumulates over the whole run (Telemetry.CrossShardStaged),
	// crossCut since the last cut (the affinity input of the next one).
	// Counted at the staging lists the scatter phase just drained — O(k²)
	// int adds per round. Skipped entirely under ReshardOff with telemetry
	// off, where nobody would read them.
	st.initTelemetry(Parallel, workers)
	var crossTel, crossCut []int64
	if st.tel != nil || policy != ReshardOff {
		crossTel = make([]int64, workers*workers)
		crossCut = make([]int64, workers*workers)
	}
	oldLo := make([]int, workers)
	oldHi := make([]int, workers)
	var assignScratch []int
	// reshard re-cuts target contiguous shards over the live worklist and
	// assigns them to workers by measured affinity. target may differ from
	// the current width: the pool-width ledger shrinks the cut through the
	// shattering tail (surplus workers park on their command channels) and
	// re-grows it if the workload recovers. It runs between rounds, while
	// every worker is parked, so moving worklist entries, node ownership
	// (shardOf), arena wiring and recorded inbox slots is plain
	// single-threaded code; the next phase commands publish it to the pool.
	// Arenas stay with their workers and every active arena still rotates
	// once per round, so payloads carved before the cut remain live exactly
	// as long as the retention rule promises (a parked worker's arena is
	// simply frozen — its last payloads age out before it can be woken).
	// It returns how many workers' ranges changed, for the placement event.
	reshard := func(live []int32, target int) int {
		var bounds []int
		bounds, prefixScratch = st.g.ShardBoundsLiveInto(target, live, boundsScratch, prefixScratch)
		boundsScratch = bounds
		// Choose owners: greedy max-affinity over window overlap plus the
		// staged-traffic matrix accumulated since the last cut, so workers
		// keep the windows whose pages and traffic they already hold.
		for i, w := range pool {
			oldLo[i], oldHi[i] = w.lo, w.hi
		}
		assignScratch = st.g.AssignShardsAffine(bounds, oldLo, oldHi, crossCut, assignScratch)
		assign := assignScratch
		// Collect every recorded inbox slot before the windows move; a
		// worker whose last scatter was dense has no slot list, so scan its
		// (old) window for survivors. Parked workers own no window.
		slots := slotScratch[:0]
		for _, w := range actW {
			if w.denseInbox {
				if st.packed {
					// A dense packed scatter left no slot list either; scan
					// the (old) word window's present bits for survivors.
					for wd := w.wlo; wd < w.whi; wd++ {
						pw := st.inBits.present[wd]
						for pw != 0 {
							k := mathbits.TrailingZeros64(pw)
							pw &= pw - 1
							slots = append(slots, int32(wd<<6+k))
						}
					}
				} else {
					for i := st.off[w.lo]; i < st.off[w.hi]; i++ {
						if st.inbox[i] != nil {
							slots = append(slots, int32(i))
						}
					}
				}
				w.denseInbox = false
			} else {
				slots = append(slots, w.inboxSlots...)
			}
			w.inboxSlots = w.inboxSlots[:0]
		}
		slotScratch = slots
		// Park everyone, then hand out the new node ranges, worklist
		// segments and arenas (and, packed, the live nodes' out-plane
		// wiring — a migrated node must write its bits where its new owner
		// harvests) to the assigned owners.
		for _, w := range pool {
			w.lo, w.hi = 0, 0
			w.wlo, w.whi = 0, 0
			w.active = w.active[:0]
		}
		li := 0
		moved := 0
		for s := 0; s < target; s++ {
			w := pool[assign[s]]
			lo, hi := bounds[s], bounds[s+1]
			if oldLo[assign[s]] != lo || oldHi[assign[s]] != hi {
				moved++
			}
			w.lo, w.hi = lo, hi
			seg := w.active[:0]
			for ; li < len(live) && int(live[li]) < hi; li++ {
				seg = append(seg, live[li])
			}
			w.active = seg
			for v := lo; v < hi; v++ {
				shardOf[v] = int32(assign[s])
			}
			for _, v := range w.active {
				st.ctxs[v].arena = w.arena
				if st.packed {
					st.ctxs[v].outBits = w.out
				}
			}
		}
		if st.packed {
			applyWordBounds(bounds, assign)
		}
		// Re-own the surviving inbox slots: on Message planes slot i belongs
		// to node adj[rev[i]]'s owner; on packed planes to whichever worker
		// owns the slot's word (the two differ only on word-rounded boundary
		// slots).
		for _, i := range slots {
			var owner *parallelWorker
			if st.packed {
				owner = pool[core.wordShardOf[i>>6]]
			} else {
				owner = pool[shardOf[st.adjf[st.rev[i]]]]
			}
			owner.inboxSlots = append(owner.inboxSlots, i)
		}
		// Rebuild the active sets and publish them: act by pool index (phase
		// commands), actW by node range — range s of the cut belongs to
		// pool[assign[s]] and ranges ascend with s, so walking the
		// assignment yields the sequential engine's node order.
		act = act[:0]
		for i, w := range pool {
			if w.hi > w.lo {
				act = append(act, i)
			}
		}
		actW = actW[:0]
		for s := 0; s < target; s++ {
			actW = append(actW, pool[assign[s]])
		}
		core.src = actW
		clear(crossCut)
		return moved
	}
	var computeScratch []int64
	var stagedScratch []int
	var modeScratch []DeliveryMode
	if st.tel != nil {
		computeScratch = make([]int64, workers)
		stagedScratch = make([]int, workers)
		modeScratch = make([]DeliveryMode, workers)
	}

	// First-touch at setup, with the slab's placement memory: workers take
	// shards in pool order here, so a warm slab whose last pinned run
	// started from identical bounds already has every window's pages where
	// this run wants them, and the pass is skipped.
	if pin {
		touched := true
		if s := st.slab; s != nil {
			if s.placePinned && equalBounds(s.placeBounds, bounds) {
				touched = false
			}
			s.placePinned = true
			s.placeBounds = append(s.placeBounds[:0], bounds...)
		}
		if touched {
			runPhase(phaseCmd{phase: phaseTouch})
		}
		st.tel.recordPlace(-1, width, true, width, touched)
	} else {
		st.tel.recordPlace(-1, width, false, width, false)
	}

	// Re-shard policy state (see policy.go): the halving trigger tracks
	// the live size at the last cut, the cost model the imbalance debt, and
	// — adaptive only — the pool-width ledger the per-worker profitability.
	// ReshardAuto (the zero value) defers to the package default
	// (SetDefaultReshard), adaptive out of the box; an explicit policy is
	// never overridden.
	lastReshard := st.n
	model := newReshardModel(width, st.n)
	pm := newPoolModel(workers)
	if width != workers {
		pm.resized(width)
	}

	for r := 0; st.running > 0; r++ {
		if r >= maxRounds {
			stop()
			return nil, &StuckError{MaxRounds: maxRounds, Running: st.running}
		}
		// Measured unconditionally: the pool-width ledger needs the round
		// wall time even when telemetry is off.
		roundStart := time.Now()
		runPhase(phaseCmd{phase: phaseCompute, round: r})
		// actW ascends by node range, so the first erroring worker holds
		// the error of the lowest-indexed erroring node — the same error
		// the sequential scheduler reports (pool order would not do: an
		// affinity re-cut permutes which worker owns which range). Like
		// Run, surface it before any of the round's deliveries are tallied.
		for _, w := range actW {
			if w.err != nil {
				stop()
				return nil, w.err
			}
		}
		runPhase(phaseCmd{phase: phaseScatter, round: r})
		// Cross-shard traffic: the staging lists the scatter just drained
		// still hold their lengths until the next compute truncates them.
		if crossTel != nil {
			for _, wi := range act {
				w := pool[wi]
				if st.packed {
					for s := range w.pout {
						c := int64(len(w.pout[s]))
						crossTel[wi*workers+s] += c
						crossCut[wi*workers+s] += c
					}
				} else {
					for s := range w.outbox {
						c := int64(len(w.outbox[s]))
						crossTel[wi*workers+s] += c
						crossCut[wi*workers+s] += c
					}
				}
			}
		}
		activeN, liveN := 0, 0
		var maxComputeNS, sumComputeNS int64
		for _, w := range actW {
			activeN += w.activeN
			liveN += len(w.active)
			st.running -= w.halted
			st.messages += w.msgs
			st.bits += w.bits
			if w.maxBits > st.maxBits {
				st.maxBits = w.maxBits
			}
			if st.adv != nil {
				st.adv.mergeRound(w.drops, w.cuts, w.delays, w.held)
			}
			if w.computeNS > maxComputeNS {
				maxComputeNS = w.computeNS
			}
			sumComputeNS += w.computeNS
		}
		st.activeTrace = append(st.activeTrace, activeN)
		st.rounds++
		if st.tel != nil {
			// Lanes always span the configured pool; a parked worker's lane
			// reads zero (its stale counters describe an older round).
			for i := range computeScratch {
				computeScratch[i] = 0
				stagedScratch[i] = 0
				if st.packed {
					modeScratch[i] = DeliverPacked
				} else {
					modeScratch[i] = DeliverSparse
				}
			}
			for _, wi := range act {
				w := pool[wi]
				computeScratch[wi] = w.computeNS
				// The staged lane counts what the shard's programs emitted,
				// including what the adversary then dropped, cut or held.
				stagedScratch[wi] = int(w.msgs) + w.drops + w.cuts + w.delays
				switch {
				case st.packed:
					modeScratch[wi] = DeliverPacked
				case w.denseInbox:
					modeScratch[wi] = DeliverDense
				default:
					modeScratch[wi] = DeliverSparse
				}
			}
			st.tel.recordRound(time.Since(roundStart).Nanoseconds(), computeScratch, stagedScratch, modeScratch)
		}
		st.tel.recordWidth(len(act))
		if st.adv != nil {
			// Round boundary: all workers are parked on their command
			// channels, so the adversary's inbox writes, crash-stops and
			// stall picks are single-threaded; the next phase commands
			// publish them to the pool.
			var advLive []int32
			if st.adv.cfg.CrashPerRound > 0 || st.adv.cfg.StallPerRound > 0 {
				lv := liveScratch[:0]
				for _, w := range actW {
					lv = append(lv, w.active...)
				}
				liveScratch = lv
				advLive = lv
			}
			msgs, bits, maxBits, crashed := st.adv.boundary(r, advLive, st.inboxView(),
				func(slot int32) {
					var owner *parallelWorker
					if st.packed {
						owner = pool[core.wordShardOf[slot>>6]]
					} else {
						owner = pool[shardOf[st.adjf[st.rev[slot]]]]
					}
					if !owner.denseInbox {
						owner.inboxSlots = append(owner.inboxSlots, slot)
					}
				},
				func(v int32) {
					st.done[v] = true
					st.running--
				})
			st.messages += msgs
			st.bits += bits
			if maxBits > st.maxBits {
				st.maxBits = maxBits
			}
			if crashed > 0 {
				for _, w := range actW {
					liveSeg := w.active[:0]
					for _, v := range w.active {
						if !st.done[v] {
							liveSeg = append(liveSeg, v)
						}
					}
					w.active = liveSeg
				}
				liveN -= crashed
			}
		}
		// Re-shard decision: when, and at what width. The halving rule
		// compares the live size against the last cut; the cost model
		// charges this round's barrier imbalance — the idle worker time
		// implied by the compute-phase spread — to a debt that must
		// out-weigh the (measured) price of a cut before one is taken, and
		// the pool-width ledger asks whether the measured per-node compute
		// can still keep the current width profitably busy. An imbalance
		// cut also requires the worklist to have shrunk since the last one
		// — re-cutting an unchanged worklist would reproduce the same
		// bounds and pay the price for nothing — while a width change is
		// worth a cut on its own.
		if policy != ReshardOff && liveN > 0 {
			cur := len(act)
			target := cur
			doCut := false
			if policy == ReshardHalving {
				doCut = liveN >= cur && liveN*2 <= lastReshard
			} else {
				model.charge(maxComputeNS, sumComputeNS)
				pm.charge(time.Since(roundStart).Nanoseconds(), maxComputeNS, sumComputeNS, activeN)
				if t := pm.desiredWidth(liveN); t != cur {
					if t > liveN {
						t = liveN
					}
					target = t
					doCut = target != cur
				}
				if !doCut {
					doCut = liveN >= cur && model.shouldCut(liveN)
				}
			}
			if doCut {
				live := liveScratch[:0]
				for _, w := range actW {
					live = append(live, w.active...)
				}
				liveScratch = live
				cutStart := time.Now()
				moved := reshard(live, target)
				cost := time.Since(cutStart).Nanoseconds()
				if pin {
					// Re-place: pages that have not faulted yet will land
					// with their new owners; already-placed ones at least
					// pull their cache lines over.
					runPhase(phaseCmd{phase: phaseTouch})
				}
				st.tel.recordReshard(r, liveN, cost, model.wasteNS)
				st.tel.recordPlace(r, target, pin, moved, pin)
				model.cutDone(liveN, cost)
				model.workers = target
				pm.resized(target)
				lastReshard = liveN
			}
		}
		st.progress()
	}
	stop()
	if st.tel != nil {
		st.tel.setCrossShard(workers, crossTel)
	}
	return st.result(), nil
}

// equalBounds reports whether two shard cuts are identical.
func equalBounds(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
