package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// stagedMsg is one message in flight between the compute and scatter phases
// of RunParallel: the flat half-edge index of the destination slot (the
// reverse half-edge of the sending port) and the payload.
type stagedMsg struct {
	idx int32
	msg Message
}

// parallelWorker is the per-shard state of one pool worker. Each worker owns
// the contiguous node range [lo, hi) — and with it the contiguous half-edge
// window off[lo]:off[hi] of the flat message plane: only the owner calls
// those nodes' Round methods, writes their done flags, and delivers into
// their inbox slots, so no field here or in engineState is ever written by
// two goroutines.
type parallelWorker struct {
	lo, hi int
	// outbox[s] stages the messages this worker's nodes addressed to nodes
	// of shard s during the compute phase; shard s applies them during the
	// scatter phase. Reused (truncated, not freed) across rounds.
	outbox [][]stagedMsg
	// Per-round partial counters, merged by the coordinator in worker order
	// after the scatter barrier. Sums and max are order-independent, so the
	// merged totals equal the sequential scheduler's exactly.
	msgs    int64
	bits    int64
	maxBits int
	halted  int
	// err is the shard's first error by node index; because shards are
	// contiguous and ascending, the lowest-indexed erroring worker holds
	// the same error Run would have returned.
	err error
}

const (
	phaseCompute = iota
	phaseScatter
)

type phaseCmd struct {
	phase int
	round int
}

// compute runs the compute half of round r for every live node of the shard,
// staging outgoing messages into per-destination-shard outboxes.
func (w *parallelWorker) compute(st *engineStateCore, r int) {
	w.msgs, w.bits, w.maxBits, w.halted = 0, 0, 0, 0
	w.err = nil
	for s := range w.outbox {
		w.outbox[s] = w.outbox[s][:0]
	}
	for v := w.lo; v < w.hi; v++ {
		if st.done[v] {
			continue
		}
		out, nodeDone := st.round(v, r)
		lo := st.off[v]
		if deg := int(st.off[v+1] - lo); len(out) > deg {
			if w.err == nil {
				w.err = fmt.Errorf("sim: node %d produced %d outbox entries for degree %d", v, len(out), deg)
			}
			continue
		}
		for p, msg := range out {
			if msg == nil {
				continue
			}
			if st.maxMessageBits > 0 && msg.BitLen() > st.maxMessageBits {
				if w.err == nil {
					w.err = &BandwidthError{Node: v, Round: r, Bits: msg.BitLen(), Limit: st.maxMessageBits}
				}
				break
			}
			i := lo + int64(p)
			s := st.shardOf[st.adj[i]]
			w.outbox[s] = append(w.outbox[s], stagedMsg{idx: st.rev[i], msg: msg})
		}
		if nodeDone {
			st.done[v] = true
			w.halted++
		}
	}
}

// scatter delivers every message addressed to this shard — gathered from all
// workers' outboxes — into the shard's next-round slots, then tallies and
// swaps the shard's flat inbox/next window exactly as finishRound does for
// the whole network.
func (w *parallelWorker) scatter(st *engineStateCore, self int, workers []*parallelWorker) {
	for _, src := range workers {
		for _, sm := range src.outbox[self] {
			st.next[sm.idx] = sm.msg
		}
	}
	w.msgs, w.bits, w.maxBits = deliver(st.inbox, st.next, st.off[w.lo], st.off[w.hi])
}

// engineStateCore is the type-independent slice of engineState the workers
// need; keeping it non-generic lets the phase methods live on plain structs.
type engineStateCore struct {
	off            []int64 // CSR offsets
	adj            []int32 // CSR flat neighbor array
	rev            []int32 // CSR reverse half-edge table
	done           []bool
	inbox          []Message // flat half-edge-indexed message plane
	next           []Message
	shardOf        []int32
	maxMessageBits int
	round          func(v, r int) ([]Message, bool)
}

// RunParallel executes the network with a sharded worker-pool engine: nodes
// are partitioned into `workers` contiguous shards, and a fixed pool of
// `workers` goroutines (default runtime.GOMAXPROCS(0) when workers <= 0)
// drives each round in two barrier-separated phases. In the compute phase
// every worker runs its own shard's node programs against the current
// inboxes and stages outgoing messages into a per-destination-shard outbox;
// in the scatter phase every worker delivers the messages addressed to its
// shard into the engine's flat double-buffered inbox/next arrays and tallies
// the delivery counters. Because shards are contiguous node ranges, each
// worker's slice of the flat message plane is a contiguous half-edge window:
// the scatter sweep is sequential cache-line traffic, and no per-node
// goroutines or per-edge channels are allocated, so the engine scales to
// million-node graphs where RunConcurrent's goroutine-per-node synchronizer
// collapses.
//
// Every mutable location has a single writer (the shard owner), phases are
// separated by barriers, and counters merge over order-independent sums and
// maxima, so for a given Config and seed the Result — outputs, rounds,
// message count, bit total, and max message size — is identical to Run's and
// RunConcurrent's. The test suite asserts this equivalence on random GNP,
// tree and power-law networks under every randomness regime.
func RunParallel[T any](cfg Config, factory func(v int) NodeProgram[T], workers int) (*Result[T], error) {
	st, err := newEngineState(cfg, factory)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > st.n {
		workers = st.n
	}
	maxRounds := st.maxRounds()
	if workers <= 1 {
		// A one-worker pool is the sequential schedule; skip the barriers.
		return st.runSequential(maxRounds)
	}

	// Contiguous shards: worker i owns [i·n/W, (i+1)·n/W).
	shardOf := make([]int32, st.n)
	pool := make([]*parallelWorker, workers)
	for i := 0; i < workers; i++ {
		lo, hi := i*st.n/workers, (i+1)*st.n/workers
		pool[i] = &parallelWorker{lo: lo, hi: hi, outbox: make([][]stagedMsg, workers)}
		for v := lo; v < hi; v++ {
			shardOf[v] = int32(i)
		}
	}
	core := &engineStateCore{
		off:            st.off,
		adj:            st.adjf,
		rev:            st.rev,
		done:           st.done,
		inbox:          st.inbox,
		next:           st.next,
		shardOf:        shardOf,
		maxMessageBits: cfg.MaxMessageBits,
		round:          st.roundFor,
	}

	cmds := make([]chan phaseCmd, workers)
	for i := range cmds {
		cmds[i] = make(chan phaseCmd, 1)
	}
	var barrier, lifetime sync.WaitGroup
	lifetime.Add(workers)
	for i, w := range pool {
		go func(i int, w *parallelWorker) {
			defer lifetime.Done()
			for c := range cmds[i] {
				switch c.phase {
				case phaseCompute:
					w.compute(core, c.round)
				case phaseScatter:
					w.scatter(core, i, pool)
				}
				barrier.Done()
			}
		}(i, w)
	}
	// runPhase broadcasts one phase and blocks until every worker finishes
	// it; the WaitGroup plus the command-channel sends give the scatter
	// phase a happens-before view of every worker's staged outboxes.
	runPhase := func(c phaseCmd) {
		barrier.Add(workers)
		for i := range cmds {
			cmds[i] <- c
		}
		barrier.Wait()
	}
	stop := func() {
		for i := range cmds {
			close(cmds[i])
		}
		lifetime.Wait()
	}

	for r := 0; st.running > 0; r++ {
		if r >= maxRounds {
			stop()
			return nil, &StuckError{MaxRounds: maxRounds, Running: st.running}
		}
		runPhase(phaseCmd{phase: phaseCompute, round: r})
		// Shards ascend by node index, so the first erroring worker holds
		// the error of the lowest-indexed erroring node — the same error
		// the sequential scheduler reports. Like Run, surface it before
		// any of the round's deliveries are tallied.
		for _, w := range pool {
			if w.err != nil {
				stop()
				return nil, w.err
			}
		}
		runPhase(phaseCmd{phase: phaseScatter, round: r})
		for _, w := range pool {
			st.running -= w.halted
			st.messages += w.msgs
			st.bits += w.bits
			if w.maxBits > st.maxBits {
				st.maxBits = w.maxBits
			}
		}
		st.rounds++
	}
	stop()
	return st.result(), nil
}
