package sim

import (
	"fmt"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
)

// setProcs overrides the runtime concurrency limit the pool-width machinery
// sees (numProcs) for one test, restoring the suite-wide TestMain value on
// cleanup.
func setProcs(t *testing.T, n int) {
	t.Helper()
	old := numProcs
	numProcs = func() int { return n }
	t.Cleanup(func() { numProcs = old })
}

// TestPoolModel unit-tests the adaptive pool-width ledger's arithmetic with
// synthetic measurements — no clocks, no engine.
func TestPoolModel(t *testing.T) {
	setProcs(t, 16) // the processor clamp has its own checks below
	m := newPoolModel(4)
	// Under two samples the ledger refuses to move off the configured width.
	if got := m.desiredWidth(10); got != 4 {
		t.Fatalf("desiredWidth before samples = %d, want 4", got)
	}
	// Profitable rounds: 4000ns of compute over 40 nodes (100ns/node), only
	// 400ns of coordination (100ns per worker). 10 live nodes keep
	// 10*100/(2*100) = 5 -> clamped to 4 workers busy.
	for i := 0; i < 3; i++ {
		m.charge(1400, 1000, 4000, 40)
	}
	if m.perNodeNS != 100 {
		t.Fatalf("perNodeNS = %d, want 100", m.perNodeNS)
	}
	if m.overheadNS != 100 {
		t.Fatalf("overheadNS = %d, want 100", m.overheadNS)
	}
	if got := m.desiredWidth(40); got != 4 {
		t.Errorf("desiredWidth(40) = %d, want 4 (profitable)", got)
	}
	// A shattered worklist of 3 nodes only funds 3*100/(2*100) = 1 worker —
	// but the resize waits out the widthHold hysteresis.
	if got := m.desiredWidth(3); got != 4 {
		t.Errorf("first disagreeing round resized immediately: %d", got)
	}
	if got := m.desiredWidth(3); got != 1 {
		t.Errorf("desiredWidth(3) after hold = %d, want 1", got)
	}
	m.resized(1)
	if m.width != 1 || m.disagree != 0 {
		t.Fatalf("post-resize model = %+v", m)
	}
	// Width-1 rounds must not decay the remembered multi-worker overhead:
	// near-zero coordination at width 1 would otherwise talk the ledger
	// into re-growing the pool it just parked.
	m.charge(300, 300, 300, 3)
	if m.overheadNS != 100 {
		t.Errorf("width-1 round charged overhead: %d", m.overheadNS)
	}
	// A recovered worklist re-grows the pool (after the hold).
	if got := m.desiredWidth(100); got != 1 {
		t.Errorf("first re-grow request resized immediately: %d", got)
	}
	if got := m.desiredWidth(100); got != 4 {
		t.Errorf("desiredWidth(100) = %d, want 4 (re-grown, capped)", got)
	}
	// Raw clamps: never below 1, never above maxWorkers or liveN.
	if got := m.rawDesired(0); got != 1 {
		t.Errorf("rawDesired(0) = %d", got)
	}
	// A model whose per-node compute dwarfs the coordination overhead wants
	// every worker it can get — but a shard needs a live node, so liveN caps
	// the request below maxWorkers.
	m2 := newPoolModel(8)
	m2.charge(1000, 900, 90_000, 9)
	m2.charge(1000, 900, 90_000, 9)
	if got := m2.rawDesired(2); got != 2 {
		t.Errorf("rawDesired(2) = %d, want 2 (liveN cap)", got)
	}
	if got := m2.rawDesired(1000); got != 8 {
		t.Errorf("rawDesired(1000) = %d, want 8 (maxWorkers cap)", got)
	}
	// The processor clamp: per-worker compute times are goroutine wall
	// clocks, so time-sliced workers look perfectly overlapped to the
	// ledger — only the processor count can say the hardware cannot run
	// them concurrently. A model created under a 2-CPU runtime never asks
	// for more than 2, however profitable the arithmetic looks.
	setProcs(t, 2)
	m3 := newPoolModel(8)
	m3.charge(1000, 900, 90_000, 9)
	m3.charge(1000, 900, 90_000, 9)
	if got := m3.rawDesired(1000); got != 2 {
		t.Errorf("rawDesired(1000) = %d, want 2 (processor cap)", got)
	}
}

// TestParsePlacePolicy pins the flag surface and the package default's
// semantics: unlike SetDefaultReshard, SetDefaultPlace stores Auto as-is —
// the engine resolves it by hardware at run time.
func TestParsePlacePolicy(t *testing.T) {
	for name, want := range map[string]PlacePolicy{
		"": PlaceAuto, "auto": PlaceAuto,
		"pin":  PlacePin,
		"none": PlaceNone, "off": PlaceNone,
	} {
		got, err := ParsePlacePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePlacePolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParsePlacePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	if PlaceAuto.String() != "auto" || PlacePin.String() != "pin" || PlaceNone.String() != "none" {
		t.Error("PlacePolicy.String names drifted")
	}
	SetDefaultPlace(PlaceNone)
	defer SetDefaultPlace(PlaceAuto)
	if got := DefaultPlace(); got != PlaceNone {
		t.Fatalf("DefaultPlace() = %v after SetDefaultPlace(None)", got)
	}
	SetDefaultPlace(PlaceAuto)
	if got := DefaultPlace(); got != PlaceAuto {
		t.Errorf("DefaultPlace() = %v after SetDefaultPlace(Auto), want auto (hardware-resolved per run)", got)
	}
}

// TestPlacePolicyEquivalence is the topology-aware engine's determinism
// proof: across place policies × re-shard policies × worker counts, on both
// plane representations, clean and faulted, the Result — and the injected-
// fault record under an adversary — must be byte-identical to the sequential
// engine's. Placement and pool-width adaptation may only ever change wall
// clock.
func TestPlacePolicyEquivalence(t *testing.T) {
	rng := prng.New(909)
	g := graph.PowerLaw(400, 3, rng)
	n := g.N()
	diam := graph.Diameter(g)
	key := NewSimulationKey(uint64(n)*11 + 3)
	ids := RandomIDs(n, 3, key)

	type variant struct {
		name    string
		cfg     Config
		factory func(int) NodeProgram[uint64]
	}
	variants := []variant{
		{
			name:    "unpacked/clean",
			cfg:     Config{Graph: g, IDs: ids, MaxMessageBits: CongestBits(n)},
			factory: func(int) NodeProgram[uint64] { return &staggeredHalt{} },
		},
		{
			name: "packed/clean",
			cfg:  Config{Graph: g, IDs: ids},
			factory: func(int) NodeProgram[uint64] {
				return &bitGossip{rounds: diam + 1}
			},
		},
		{
			name: "unpacked/faulted",
			cfg: Config{
				Graph: g, IDs: ids, MaxMessageBits: CongestBits(n),
				Adversary: mustAdversary(t, key, AdversaryConfig{
					DropProb: 0.05, DelayProb: 0.05, DelayMax: 2,
					CrashPerRound: 1, StallPerRound: 2,
				}),
			},
			factory: func(int) NodeProgram[uint64] { return &staggeredHalt{} },
		},
		{
			name: "packed/faulted",
			cfg: Config{
				Graph: g, IDs: ids,
				Adversary: mustAdversary(t, key, AdversaryConfig{DropProb: 0.08, StallPerRound: 2}),
			},
			factory: func(int) NodeProgram[uint64] {
				return &bitGossip{rounds: diam + 1}
			},
		},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			want, err := Run(v.cfg, v.factory)
			if err != nil {
				t.Fatal(err)
			}
			for _, place := range []PlacePolicy{PlaceAuto, PlacePin, PlaceNone} {
				for _, policy := range []ReshardPolicy{ReshardAdaptive, ReshardHalving, ReshardOff} {
					for _, workers := range []int{2, 4} {
						cfg := v.cfg
						cfg.Place = place
						cfg.Reshard = policy
						got, err := RunParallel(cfg, v.factory, workers)
						if err != nil {
							t.Fatal(err)
						}
						label := fmt.Sprintf("place=%v/%v/workers=%d", place, policy, workers)
						assertResultsEqual(t, label, want, got)
						if v.cfg.Adversary != nil {
							assertInjectedEqual(t, label, want.Telemetry, got.Telemetry)
						}
					}
				}
			}
		})
	}
}

// TestPlacePolicyPooledEquivalence runs pinned pooled runs back to back on
// one slab: the second run must hit the slab's placement memory (identical
// initial bounds skip the touch pass) and still produce a byte-identical
// Result, and a cold run must match both.
func TestPlacePolicyPooledEquivalence(t *testing.T) {
	rng := prng.New(910)
	g := graph.GNPConnected(300, 0.03, rng)
	n := g.N()
	ids := RandomIDs(n, 3, NewSimulationKey(uint64(n)))
	cfg := Config{Graph: g, IDs: ids, MaxMessageBits: CongestBits(n), Place: PlacePin}
	factory := func(int) NodeProgram[uint64] { return &staggeredHalt{} }
	want, err := RunParallel(cfg, factory, 4)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := cfg
	pcfg.Pool = NewEnginePool()
	pcfg.Telemetry = true
	first, err := RunParallel(pcfg, factory, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "pooled/cold-slab", want, first)
	second, err := RunParallel(pcfg, factory, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "pooled/warm-slab", want, second)
	// The warm run re-acquired a slab whose pages were placed by the first:
	// its initial placement event must record the skipped touch pass.
	if len(second.Telemetry.Places) == 0 {
		t.Fatal("warm pinned run recorded no placement events")
	}
	if ev := second.Telemetry.Places[0]; ev.Round != -1 || !ev.Pinned || ev.Touched {
		t.Errorf("warm initial placement = %+v, want round=-1 pinned touch-skipped", ev)
	}
}

// TestTelemetryPoolWidth pins the new telemetry surface: PoolWidthPerRound
// spans every round with widths in [1, Workers], placement events are
// recorded (the initial one at round -1 first), and the cross-shard matrix
// is Workers×Workers with every staged message accounted on its source row.
func TestTelemetryPoolWidth(t *testing.T) {
	rng := prng.New(911)
	g := graph.PowerLaw(400, 3, rng)
	n := g.N()
	ids := RandomIDs(n, 3, NewSimulationKey(uint64(n)*5))
	const workers = 4
	withTelemetry(t, func() {
		for _, place := range []PlacePolicy{PlacePin, PlaceNone} {
			cfg := Config{Graph: g, IDs: ids, MaxMessageBits: CongestBits(n), Place: place}
			res, err := RunParallel(cfg, func(int) NodeProgram[uint64] { return &staggeredHalt{} }, workers)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("place=%v", place)
			tel := res.Telemetry
			if len(tel.PoolWidthPerRound) != res.Rounds {
				t.Fatalf("%s: %d width samples for %d rounds", label, len(tel.PoolWidthPerRound), res.Rounds)
			}
			for r, w := range tel.PoolWidthPerRound {
				if w < 1 || w > workers {
					t.Fatalf("%s: round %d pool width %d outside [1, %d]", label, r, w, workers)
				}
			}
			if len(tel.Places) == 0 {
				t.Fatalf("%s: no placement events", label)
			}
			first := tel.Places[0]
			if first.Round != -1 || first.Width != workers {
				t.Errorf("%s: initial placement = %+v", label, first)
			}
			if first.Pinned != (place == PlacePin) {
				t.Errorf("%s: initial placement pinned=%v", label, first.Pinned)
			}
			if len(tel.CrossShardStaged) != workers {
				t.Fatalf("%s: cross-shard matrix has %d rows", label, len(tel.CrossShardStaged))
			}
			var total int64
			for i, row := range tel.CrossShardStaged {
				if len(row) != workers {
					t.Fatalf("%s: cross-shard row %d has %d cells", label, i, len(row))
				}
				for j, c := range row {
					if c < 0 {
						t.Fatalf("%s: cross-shard[%d][%d] = %d", label, i, j, c)
					}
					total += c
				}
			}
			// Every staged delivery has a source shard and a destination
			// shard; the adversary's own injections (none here) are the only
			// messages the matrix would not see.
			if total != res.Messages {
				t.Errorf("%s: cross-shard total %d != messages %d", label, total, res.Messages)
			}
		}
	})
}

// TestRunParallelProgressHook asserts the Progress feed under the parallel
// engine with adaptive re-sharding and pool-width changes active: the hook
// must fire exactly once per round, in order, with the cumulative counters
// the final Result confirms. CI runs this under -race, which would catch the
// hook racing the worker pool.
func TestRunParallelProgressHook(t *testing.T) {
	rng := prng.New(912)
	g := graph.PowerLaw(500, 3, rng)
	n := g.N()
	ids := RandomIDs(n, 3, NewSimulationKey(uint64(n)*9+1))
	var updates []Progress
	cfg := Config{
		Graph: g, IDs: ids, MaxMessageBits: CongestBits(n),
		Reshard:  ReshardAdaptive,
		Place:    PlacePin,
		Progress: func(p Progress) { updates = append(updates, p) },
	}
	res, err := RunParallel(cfg, func(int) NodeProgram[uint64] { return &staggeredHalt{} }, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) != res.Rounds {
		t.Fatalf("%d progress updates for %d rounds", len(updates), res.Rounds)
	}
	running := n
	var lastMsgs int64
	for i, p := range updates {
		if p.Round != i+1 {
			t.Fatalf("update %d reports round %d, want %d (each round exactly once, in order)", i, p.Round, i+1)
		}
		if p.Active != res.ActivePerRound[i] {
			t.Errorf("update %d active = %d, want %d", i, p.Active, res.ActivePerRound[i])
		}
		if p.Running > running {
			t.Errorf("update %d running %d grew from %d", i, p.Running, running)
		}
		running = p.Running
		if p.Messages < lastMsgs {
			t.Errorf("update %d messages %d shrank from %d", i, p.Messages, lastMsgs)
		}
		lastMsgs = p.Messages
	}
	final := updates[len(updates)-1]
	if final.Round != res.Rounds || final.Running != 0 || final.Messages != res.Messages {
		t.Errorf("final update %+v disagrees with Result (rounds=%d messages=%d)", final, res.Rounds, res.Messages)
	}
}

// TestAdaptiveWidthProcessorClamp pins the topology clamp: under the
// adaptive policy a pool wider than the runtime's concurrency limit starts
// (and stays) clamped to it — time-sliced workers pay coordination for zero
// overlap — while the explicit policies run the configured width untouched.
// Results are byte-identical either way.
func TestAdaptiveWidthProcessorClamp(t *testing.T) {
	rng := prng.New(913)
	g := graph.PowerLaw(400, 3, rng)
	n := g.N()
	ids := RandomIDs(n, 3, NewSimulationKey(uint64(n)*7+5))
	factory := func(int) NodeProgram[uint64] { return &staggeredHalt{} }
	cfg := Config{Graph: g, IDs: ids, MaxMessageBits: CongestBits(n)}
	want, err := Run(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	withTelemetry(t, func() {
		// A single-processor runtime collapses the adaptive pool to the
		// sequential schedule outright — one telemetry lane, no pool, no
		// placement, exactly like a configured one-worker pool.
		setProcs(t, 1)
		acfg := cfg
		acfg.Reshard = ReshardAdaptive
		res, err := RunParallel(acfg, factory, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, "procs=1", want, res)
		if res.Telemetry.Workers != 1 {
			t.Fatalf("procs=1: telemetry reports %d lanes, want the sequential 1", res.Telemetry.Workers)
		}
		// Two processors clamp a four-wide request to a two-wide pool.
		setProcs(t, 2)
		res, err = RunParallel(acfg, factory, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, "procs=2", want, res)
		tel := res.Telemetry
		if tel.Workers != 4 {
			t.Fatalf("procs=2: telemetry reports %d workers, want the configured 4", tel.Workers)
		}
		if len(tel.Places) == 0 || tel.Places[0].Width != 2 {
			t.Errorf("procs=2: initial placement %+v, want width 2", tel.Places)
		}
		for r, w := range tel.PoolWidthPerRound {
			if w > 2 {
				t.Fatalf("procs=2: round %d ran width %d beyond the processor limit", r, w)
			}
		}
		// ReshardOff is a contract, not a suggestion: the configured width
		// runs even on hardware that will time-slice it.
		setProcs(t, 1)
		ocfg := cfg
		ocfg.Reshard = ReshardOff
		res, err = RunParallel(ocfg, factory, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsEqual(t, "off/procs=1", want, res)
		for r, w := range res.Telemetry.PoolWidthPerRound {
			if w != 4 {
				t.Fatalf("off/procs=1: round %d width %d, want the configured 4", r, w)
			}
		}
	})
}
