// Package sim implements the LOCAL and CONGEST models of distributed
// computing as defined in Section 2 of the paper: an n-node network where
// computation proceeds in synchronous rounds, each node exchanges one message
// per neighbor per round, nodes start knowing only their own identifier,
// degree and (for non-uniform algorithms) the declared network size, and —
// in the CONGEST model — messages are limited to O(log n) bits.
//
// Three engines execute the same node programs: Run is a deterministic
// sequential scheduler used by tests and experiments, RunConcurrent spawns
// one goroutine per node with a channel per directed edge (an
// α-synchronizer), demonstrating that programs are genuinely local, and
// RunParallel drives contiguous node shards over a fixed worker pool for
// million-node simulations. All three account rounds, message counts and
// message bits identically and enforce the CONGEST bandwidth bound, so the
// paper's round-complexity and bandwidth claims become machine-checked
// assertions; Execute dispatches between them by Config.Scheduler.
//
// All three engines share one flat message plane: inboxes, staged messages
// and the NodeCtx.Outbox scratch are single contiguous arrays indexed by
// the graph's CSR half-edge index (see graph.Graph.CSR), so a round is a
// linear sweep over cache-resident buffers and a run allocates O(1) slices
// rather than O(n). On top of it, every engine drives its round loop off a
// compact worklist of live nodes and delivers through staged slot lists, so
// a late round with a small surviving fringe — the common tail of the
// shattering-style algorithms under study — costs O(active + messages)
// rather than O(n + m); and message payloads can be carved from per-round
// bump arenas (NodeCtx.Uints / NodeCtx.Alloc), removing the last
// O(messages) allocation class.
package sim

import (
	"encoding/binary"
	"fmt"

	"randlocal/internal/randomness"
)

// Message is an opaque message payload. A nil Message means "send nothing on
// this port". Size accounting uses 8·len(m) bits.
type Message []byte

// BitLen returns the size of the message in bits.
func (m Message) BitLen() int { return 8 * len(m) }

// NodeCtx is the information a node holds at time zero, before any
// communication: its identifier, its degree, the declared network size
// (non-uniform algorithms receive n as input, Definition 2.1), and its
// randomness, if the configured source grants it any.
type NodeCtx struct {
	// Index is the dense engine-internal node index in [0, n). Node
	// programs must treat it as opaque; algorithmic decisions must use ID.
	Index int
	// ID is the unique Θ(log n)-bit identifier.
	ID uint64
	// Degree is the number of incident edges (= ports).
	Degree int
	// N is the declared number of nodes handed to non-uniform algorithms.
	// It may exceed the true size — that is exactly the "lying about n"
	// device of Theorem 4.3.
	N int
	// NeighborIDs lists the identifier behind each port when the engine is
	// configured with KT1 knowledge (the default); nil under KT0.
	NeighborIDs []uint64
	// Rand is this node's accounted private random stream, or nil when the
	// randomness source grants this node no private bits.
	Rand *randomness.Stream
	// Outbox is an engine-owned scratch slice of length Degree that the
	// program may fill and return from Round instead of allocating a fresh
	// outbox every round. The engine consumes the returned outbox before
	// the node's next Round call, but never clears it: a program that uses
	// Outbox must set (or nil) every port it returns, every round, and
	// must not mutate a payload after handing it to the engine. All nodes'
	// Outbox windows are subslices of one flat cache-resident buffer.
	Outbox []Message
	// Shared is non-nil when running under the shared-randomness model and
	// exposes the public seed (and its deterministic expansions).
	Shared *randomness.Shared
	// arena is the per-round payload arena this node carves Uints/Alloc
	// payloads from. The engines wire it before Init: the sequential engine
	// shares one arena across all nodes, RunParallel uses one per worker
	// shard, and RunConcurrent one per node — in every case it has a single
	// writer. nil (a hand-built NodeCtx outside an engine) falls back to
	// plain heap allocation.
	arena *arena
	// packed is set when the engine runs this node over packed bit planes
	// (every program declared PayloadBits() <= 1; see PayloadBitsDeclarer):
	// the bit accessors below then read inBits / write outBits word-at-a-
	// time instead of going through Outbox and the inbox window. The fields
	// are engine-wired; programs only ever use the accessors.
	packed  bool
	inBits  *bitPlane // current-inbox plane (read side)
	outBits *bitPlane // this node's out plane (write side; per worker under RunParallel)
	base    int64     // off[v]: the node's first slot in the flat planes
	// inboxWin is the node's window of the flat inbox plane, wired by the
	// engine before each unpacked Round call so the bit accessors can read
	// received bits without the program threading its inbox argument
	// through. It aliases the inbox slice Round receives.
	inboxWin []Message
}

// Uints encodes xs as a single varint payload carved from the engine's
// per-round message arena — the allocation-free counterpart of the
// package-level Uints. The payload is valid until the receiver's Round call
// returns; see the retention rule on NodeProgram. A payload carved during
// Init has round 0's lifetime: it may be returned from Round(0) and is read
// safely by receivers in round 1.
func (c *NodeCtx) Uints(xs ...uint64) Message {
	if c.arena == nil || len(xs) == 0 {
		// Uints(nil...) is nil — "send nothing" — and the arena must agree,
		// not hand out a non-nil empty payload the engine would deliver.
		return Uints(xs...)
	}
	return c.arena.uints(xs)
}

// Alloc returns a zeroed n-byte payload carved from the engine's per-round
// message arena, for programs that assemble payloads with AppendUint-style
// encoders or raw bytes. The same lifetime rule as Uints applies.
func (c *NodeCtx) Alloc(n int) Message {
	if c.arena == nil {
		return make(Message, n)
	}
	return c.arena.alloc(n)
}

// Broadcast fills the engine-owned Outbox window with msg on every port and
// returns it, ready to be returned from Round — the allocation-free
// counterpart of the `out := make([]Message, Degree)` + fill loop that every
// flooding program used to carry. A nil msg yields an all-silent outbox
// (every slot nilled), which is still a valid Outbox return: each port is
// explicitly set each round, as the Outbox contract requires.
func (c *NodeCtx) Broadcast(msg Message) []Message {
	out := c.Outbox
	for p := range out {
		out[p] = msg
	}
	return out
}

// BroadcastActive fills the Outbox window with msg on every port whose entry
// in active is true and nil on the rest, and returns it. active must have
// length Degree; it is the "still-live neighbors" mask that phase-based
// symmetry-breaking programs (Luby, trial-coloring) maintain per port.
func (c *NodeCtx) BroadcastActive(msg Message, active []bool) []Message {
	out := c.Outbox
	for p := range out {
		if active[p] {
			out[p] = msg
		} else {
			out[p] = nil
		}
	}
	return out
}

// bitWire holds the two canonical 1-bit wire messages. They are what the
// unpacked bit accessors put on the wire and what the engines materialize
// when a packed message must exist as a Message (a delayed delivery held by
// the adversary). Each is one byte — the varint encodings of 0 and 1 — so a
// 1-bit payload accounts as 8 bits in both plane representations and the
// packed Result is byte-identical to the unpacked one.
var bitWire = [2]Message{{0}, {1}}

// PayloadBitsDeclarer is the optional NodeProgram capability that declares a
// maximum payload width in bits: a program implementing it promises that
// every message it ever sends carries at most PayloadBits() bits of payload
// (encoded on the wire as the canonical 1-byte varint — use the BroadcastBit
// family, which guarantees it). A program that does not implement the
// interface defaults to full-width messages.
//
// When every program of a run declares a width <= 1, the Run and RunParallel
// engines store the message planes as packed []uint64 bitmaps — 64 half-edge
// lanes per word — and delivery becomes word-parallel (see bitPlane). The
// representation is invisible to the model: rounds, message and bit counts,
// ActivePerRound and adversary injections are byte-identical to the unpacked
// run, which the equivalence suite asserts. Config.Unpacked opts a run out
// (A/B lever); RunConcurrent always runs unpacked (its frames are channels).
type PayloadBitsDeclarer interface {
	PayloadBits() int
}

// BitWords returns the number of 64-bit words the bit accessors use for this
// node's ports: ⌈Degree/64⌉. Port p lives at bit p&63 of word p>>6.
func (c *NodeCtx) BitWords() int { return (c.Degree + 63) >> 6 }

// BroadcastBit stages payload bit b (its low bit) on every port and returns
// the outbox to hand back from Round. In packed mode it sets whole words of
// the engine's out plane and returns nil (the engine harvests the plane); in
// unpacked mode it fills Outbox with the canonical 1-byte wire message. Both
// representations account identically: one 8-bit message per port.
func (c *NodeCtx) BroadcastBit(b uint64) []Message {
	if c.packed {
		setBitRange(c.outBits.present, c.base, c.base+int64(c.Degree))
		if b&1 != 0 {
			setBitRange(c.outBits.value, c.base, c.base+int64(c.Degree))
		}
		return nil
	}
	msg := bitWire[b&1]
	out := c.Outbox
	for p := range out {
		out[p] = msg
	}
	return out
}

// BroadcastBitMask stages payload bit b on every port whose bit is set in
// mask (the BitWords()-word port bitmap the program maintains — the packed
// counterpart of BroadcastActive's []bool) and nothing on the rest, and
// returns the outbox to hand back from Round. Mask bits at or above Degree
// are ignored.
func (c *NodeCtx) BroadcastBitMask(b uint64, mask []uint64) []Message {
	if c.packed {
		for j := 0; j < c.BitWords(); j++ {
			m := mask[j]
			if m == 0 {
				continue
			}
			n := c.Degree - j<<6
			if n > 64 {
				n = 64
			}
			pos := c.base + int64(j)<<6
			orBitsAt(c.outBits.present, pos, m, n)
			if b&1 != 0 {
				orBitsAt(c.outBits.value, pos, m, n)
			}
		}
		return nil
	}
	msg := bitWire[b&1]
	out := c.Outbox
	for p := range out {
		if mask[p>>6]>>(uint(p)&63)&1 != 0 {
			out[p] = msg
		} else {
			out[p] = nil
		}
	}
	return out
}

// InBitWord returns this round's received bits for ports [64j, 64j+64): bit k
// of present is set when port 64j+k received a message, and the matching bit
// of value carries its payload (value ⊆ present). It is the word-at-a-time
// read path of 1-bit programs — in packed mode two shift-combined loads from
// the packed inbox plane, in unpacked mode assembled from the inbox window —
// and must be called from inside Round (the engine wires the window per
// call).
func (c *NodeCtx) InBitWord(j int) (present, value uint64) {
	n := c.Degree - j<<6
	if n <= 0 {
		return 0, 0
	}
	if n > 64 {
		n = 64
	}
	if c.packed {
		pos := c.base + int64(j)<<6
		return readBitsAt(c.inBits.present, pos, n), readBitsAt(c.inBits.value, pos, n)
	}
	win := c.inboxWin[j<<6:]
	for k := 0; k < n; k++ {
		if m := win[k]; m != nil {
			present |= 1 << uint(k)
			if len(m) > 0 && m[0]&1 != 0 {
				value |= 1 << uint(k)
			}
		}
	}
	return present, value
}

// InBit returns the payload bit received on port p this round and whether a
// message arrived there — the single-port convenience over InBitWord.
func (c *NodeCtx) InBit(p int) (bit uint64, ok bool) {
	if c.packed {
		i := c.base + int64(p)
		w, s := int(i>>6), uint(i)&63
		return c.inBits.value[w] >> s & 1, c.inBits.present[w]>>s&1 != 0
	}
	m := c.inboxWin[p]
	if m == nil {
		return 0, false
	}
	if len(m) > 0 {
		bit = uint64(m[0] & 1)
	}
	return bit, true
}

// NodeProgram is a state machine run at one node. Init is called once before
// round 0. In every round the engine calls Round with the messages received
// on each port (inbox[p] is nil when the neighbor on port p sent nothing);
// the program returns the messages to send (outbox[p], nil allowed, and a
// short outbox is treated as nil-padded) and whether it has terminated.
// After a program reports done, Round is never called again and neighbors
// receive nothing from it. Output is read once the whole network has halted.
//
// Retention rule: an inbox payload (or any subslice of it) is valid only
// until the Round call it arrived in returns. Senders may carve payloads
// from the engine's per-round arena (NodeCtx.Uints, NodeCtx.Alloc), whose
// backing memory is recycled two rounds after the carve — exactly one round
// after delivery. A program that needs a received value beyond its round
// must copy the decoded value, never keep the Message.
type NodeProgram[T any] interface {
	Init(ctx *NodeCtx)
	Round(r int, inbox []Message) (outbox []Message, done bool)
	Output() T
}

// --- Message payload codec -------------------------------------------------
//
// Algorithms in this repository encode message fields with unsigned varints,
// so a field of value x costs Θ(log x) bits — which keeps honest CONGEST
// accounting: messages carrying O(1) identifiers and counters of magnitude
// poly(n) measure at O(log n) bits.

// AppendUint appends a varint-encoded unsigned integer to the payload.
func AppendUint(m Message, x uint64) Message {
	return binary.AppendUvarint(m, x)
}

// Uints encodes a sequence of unsigned integers as a single payload.
func Uints(xs ...uint64) Message {
	var m Message
	for _, x := range xs {
		m = AppendUint(m, x)
	}
	return m
}

// ReadUint decodes one varint from the front of the payload, returning the
// value and the remainder. The second return is nil and ok=false on
// malformed input.
func ReadUint(m Message) (x uint64, rest Message, ok bool) {
	x, n := binary.Uvarint(m)
	if n <= 0 {
		return 0, nil, false
	}
	return x, m[n:], true
}

// DecodeUints decodes exactly k varints, returning ok=false on malformed or
// short input.
func DecodeUints(m Message, k int) ([]uint64, bool) {
	out := make([]uint64, 0, k)
	for i := 0; i < k; i++ {
		x, rest, ok := ReadUint(m)
		if !ok {
			return nil, false
		}
		out = append(out, x)
		m = rest
	}
	return out, true
}

// DecodeUintsInto decodes exactly len(dst) varints into dst, returning false
// on malformed or short input (dst's contents are unspecified on failure).
// It is the allocation-free counterpart of DecodeUints: a program that
// decodes fixed-shape messages every round keeps a scratch array in its
// state ([2]uint64 or similar) and decodes into it, so the steady-state
// round loop allocates nothing.
func DecodeUintsInto(m Message, dst []uint64) bool {
	for i := range dst {
		x, rest, ok := ReadUint(m)
		if !ok {
			return false
		}
		dst[i] = x
		m = rest
	}
	return true
}

// DecodeAllUints decodes varints until the payload is exhausted.
func DecodeAllUints(m Message) ([]uint64, bool) {
	var out []uint64
	for len(m) > 0 {
		x, rest, ok := ReadUint(m)
		if !ok {
			return nil, false
		}
		out = append(out, x)
		m = rest
	}
	return out, true
}

// BandwidthError reports a CONGEST bandwidth violation: some node attempted
// to send a message larger than the configured bound. The engine surfaces it
// rather than silently truncating — a violation means the algorithm is not a
// CONGEST algorithm.
type BandwidthError struct {
	Node  int
	Round int
	Bits  int
	Limit int
}

func (e *BandwidthError) Error() string {
	return fmt.Sprintf("sim: node %d exceeded CONGEST bandwidth in round %d: %d bits > limit %d", e.Node, e.Round, e.Bits, e.Limit)
}

// StuckError reports that the round cap was reached before all nodes halted.
type StuckError struct {
	MaxRounds int
	Running   int
}

func (e *StuckError) Error() string {
	return fmt.Sprintf("sim: %d nodes still running after the %d-round cap", e.Running, e.MaxRounds)
}
