package sim

import (
	"fmt"
	"sync"
)

// Scheduler selects which engine executes a simulation. All three produce
// identical Results for the same Config and seed — including the per-round
// active-node trajectory — they differ only in how the synchronous schedule
// is realized on the host machine: one worklist sweep, a goroutine-per-node
// synchronizer over the live fringe, or a half-edge-balanced worker pool.
type Scheduler int

const (
	// Auto defers to the package-wide default (see SetDefaultScheduler);
	// out of the box that is Sequential. It is the zero value, so a Config
	// that never mentions schedulers keeps its historical behavior.
	Auto Scheduler = iota
	// Sequential is the deterministic single-core scheduler of Run.
	Sequential
	// Concurrent is the goroutine-per-node α-synchronizer of RunConcurrent.
	Concurrent
	// Parallel is the sharded worker-pool engine of RunParallel.
	Parallel
)

// String returns the flag-friendly name of the scheduler.
func (s Scheduler) String() string {
	switch s {
	case Auto:
		return "auto"
	case Sequential:
		return "sequential"
	case Concurrent:
		return "concurrent"
	case Parallel:
		return "parallel"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// ParseScheduler parses a -scheduler flag value. It accepts the String
// names plus the short aliases "seq" and "par".
func ParseScheduler(name string) (Scheduler, error) {
	switch name {
	case "", "auto":
		return Auto, nil
	case "sequential", "seq":
		return Sequential, nil
	case "concurrent":
		return Concurrent, nil
	case "parallel", "par":
		return Parallel, nil
	default:
		return Auto, fmt.Errorf("sim: unknown scheduler %q (want sequential, concurrent or parallel)", name)
	}
}

var defaultMu sync.RWMutex
var defaultScheduler = Sequential
var defaultWorkers = 0 // 0 = GOMAXPROCS for the parallel engine
var defaultReshard = ReshardAdaptive
var defaultPlace = PlaceAuto // PlaceAuto = resolve by hardware at run time
var defaultPool *EnginePool  // nil = allocate fresh per run

// SetDefaultScheduler sets the engine used when a Config leaves Scheduler
// as Auto — the lever the command-line front ends use to steer every
// simulation an algorithm wrapper starts internally. Sched Auto resets to
// Sequential. Workers applies to the Parallel engine only; <= 0 means
// runtime.GOMAXPROCS(0).
func SetDefaultScheduler(sched Scheduler, workers int) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if sched == Auto {
		sched = Sequential
	}
	defaultScheduler = sched
	defaultWorkers = workers
}

// DefaultScheduler returns the current package-wide default engine and
// worker count.
func DefaultScheduler() (Scheduler, int) {
	defaultMu.RLock()
	defer defaultMu.RUnlock()
	return defaultScheduler, defaultWorkers
}

// SetDefaultReshard sets the re-shard policy RunParallel uses when a Config
// leaves Reshard as ReshardAuto (the zero value) — the lever the
// command-line front ends use for A/B runs across whole workloads. An
// explicit Config.Reshard always wins; ReshardAuto resets to
// ReshardAdaptive.
func SetDefaultReshard(policy ReshardPolicy) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if policy == ReshardAuto {
		policy = ReshardAdaptive
	}
	defaultReshard = policy
}

// DefaultReshard reports the current package-wide default re-shard policy.
func DefaultReshard() ReshardPolicy {
	defaultMu.RLock()
	defer defaultMu.RUnlock()
	return defaultReshard
}

// SetDefaultPlace sets the placement policy RunParallel uses when a Config
// leaves Place as PlaceAuto (the zero value) — the lever the command-line
// front ends use to steer worker pinning across whole workloads. An explicit
// Config.Place always wins. Unlike SetDefaultReshard, PlaceAuto is a legal
// default in its own right (it resolves by hardware at run time), so it is
// stored as-is rather than being rewritten.
func SetDefaultPlace(policy PlacePolicy) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	defaultPlace = policy
}

// DefaultPlace reports the current package-wide default placement policy.
func DefaultPlace() PlacePolicy {
	defaultMu.RLock()
	defer defaultMu.RUnlock()
	return defaultPlace
}

// SetDefaultPool sets the EnginePool runs draw their buffer slabs from when a
// Config leaves Pool nil — the lever single-tenant front ends (the
// experiments Runner, locsim) use to warm every simulation they start
// internally. nil restores the historical allocate-fresh behavior. An
// explicit Config.Pool always wins. Multi-tenant hosts (the locsimd daemon)
// should prefer the per-run field so concurrent workloads do not share a
// global mutable default.
func SetDefaultPool(p *EnginePool) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	defaultPool = p
}

// DefaultPool reports the current package-wide default engine pool (nil when
// unpooled).
func DefaultPool() *EnginePool {
	defaultMu.RLock()
	defer defaultMu.RUnlock()
	return defaultPool
}

// ExecOptions bundles the per-run execution knobs a front end threads through
// an algorithm wrapper's config: which engine, how many workers, which
// re-shard policy, whether to force the unpacked message planes, which engine
// pool to draw buffers from, whether to record telemetry, and an optional
// per-round progress hook. The zero value defers every choice to the
// package-wide defaults, exactly as before; multi-tenant hosts set these
// per run instead of mutating the global defaults under their feet.
type ExecOptions struct {
	Scheduler Scheduler
	Workers   int
	Reshard   ReshardPolicy
	Place     PlacePolicy
	Unpacked  bool
	Telemetry bool
	Pool      *EnginePool
	Progress  func(Progress)
}

// Apply copies the options onto a Config. Zero-valued fields are themselves
// the "defer to default" encodings of their Config fields, so a wholesale
// copy is correct; the booleans only ever force a behavior on (they cannot
// un-set a config that already asked for it).
func (o ExecOptions) Apply(cfg *Config) {
	cfg.Scheduler = o.Scheduler
	cfg.Workers = o.Workers
	cfg.Reshard = o.Reshard
	cfg.Place = o.Place
	if o.Unpacked {
		cfg.Unpacked = true
	}
	if o.Telemetry {
		cfg.Telemetry = true
	}
	cfg.Pool = o.Pool
	cfg.Progress = o.Progress
}

// Execute runs the simulation on the engine named by cfg.Scheduler,
// resolving Auto through the package default. Every algorithm wrapper in
// this repository executes through it, so one SetDefaultScheduler call (or
// one Config.Scheduler field) switches the whole stack between the
// sequential, concurrent and parallel engines.
func Execute[T any](cfg Config, factory func(v int) NodeProgram[T]) (*Result[T], error) {
	sched, workers := cfg.Scheduler, cfg.Workers
	ds, dw := DefaultScheduler()
	if sched == Auto {
		sched = ds
	}
	if workers == 0 {
		workers = dw
	}
	switch sched {
	case Concurrent:
		return RunConcurrent(cfg, factory)
	case Parallel:
		return RunParallel(cfg, factory, workers)
	default:
		return Run(cfg, factory)
	}
}
