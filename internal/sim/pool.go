package sim

import "sync"

// EnginePool keeps the engines' warm buffer sets — message planes, bit
// planes, worklists, contexts, arenas, and the parallel engine's per-worker
// staging state — alive between runs, keyed by graph shape and scheduler.
// It generalizes the slab-factory idiom of the per-round arenas from one
// run's rounds to a whole workload's runs: the first simulation of a given
// (n, half-edges, scheduler) shape pays the O(n + m) allocations, every
// later one of the same shape reuses the slab and allocates O(1).
//
// The pool never changes Results: a slab is handed back scrubbed (planes
// cleared, worklists truncated, arenas rotated empty), and the warm-vs-cold
// equivalence suite asserts byte-identical Results and Telemetry across all
// three schedulers, every re-shard policy, and both plane representations.
//
// Sharing: a pool is safe for concurrent use by independent runs (the
// experiments trial pool, the locsimd daemon's job workers). Each run holds
// its slab exclusively from acquire to release; concurrent same-shape runs
// simply warm several slabs, retained up to a small per-key cap.
//
// A run opts in through Config.Pool, or globally via SetDefaultPool; the
// default remains unpooled (allocate fresh, exactly the historical
// behavior).
type EnginePool struct {
	mu    sync.Mutex
	slabs map[slabKey][]*engineSlab
	// perKey caps the idle slabs retained per key; further releases are
	// dropped for the GC. Acquire never blocks on the cap.
	perKey int
}

// slabKey is the shape a slab serves: buffer sizes are functions of the node
// and half-edge counts alone, and the scheduler decides which sections exist
// (per-worker staging for Parallel, per-node arenas for Concurrent), so two
// different graphs of equal shape share slabs safely — every per-run content
// (contexts, neighbor IDs, shard cuts) is rewritten by the engine setup.
type slabKey struct {
	n     int
	h     int
	sched Scheduler
}

// NewEnginePool returns an empty pool.
func NewEnginePool() *EnginePool {
	return &EnginePool{slabs: map[slabKey][]*engineSlab{}, perKey: 8}
}

// acquire pops a parked slab of the given shape, or builds a fresh one. The
// caller owns it exclusively until release.
func (p *EnginePool) acquire(n, h int, sched Scheduler) *engineSlab {
	key := slabKey{n: n, h: h, sched: sched}
	p.mu.Lock()
	stack := p.slabs[key]
	if len(stack) > 0 {
		s := stack[len(stack)-1]
		p.slabs[key] = stack[:len(stack)-1]
		p.mu.Unlock()
		return s
	}
	p.mu.Unlock()
	return &engineSlab{
		key:    key,
		active: make([]int32, n),
		done:   make([]bool, n),
		ctxs:   make([]NodeCtx, n),
	}
}

// park returns a scrubbed slab to its stack (the slab must already be clean;
// engineState.release scrubs before parking).
func (p *EnginePool) park(s *engineSlab) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if stack := p.slabs[s.key]; len(stack) < p.perKey {
		p.slabs[s.key] = append(stack, s)
	}
}

// idle reports the number of parked slabs (tests).
func (p *EnginePool) idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, stack := range p.slabs {
		n += len(stack)
	}
	return n
}

// engineSlab is one reusable buffer set. The eager fields (worklist,
// halted bitmap, contexts) exist for every run of the shape; everything else
// is materialized on first use — a packed run never allocates Message
// planes, a sequential run never allocates worker staging — and then kept.
//
// Invariant: a parked slab is clean. Planes hold no messages, the halted
// bitmap is all-false, worklists and slot lists have length zero, arenas are
// empty (capacity retained). engineState.release enforces it; the engines'
// setup code may therefore use slab buffers without re-clearing them.
type engineSlab struct {
	key    slabKey
	active []int32
	done   []bool
	ctxs   []NodeCtx

	// Unpacked message planes and the neighbor-ID table (len h).
	inbox, next, outbox []Message
	nids                []uint64
	// Packed bit planes.
	inBits, nextBits, outBits *bitPlane
	// Sequential staged-slot lists and the active trace (length 0 parked).
	staged, inboxSlots []int32
	activeTrace        []int
	// arena is the sequential/coordinator payload arena; nodeArenas the
	// concurrent engine's per-node arenas.
	arena      arena
	nodeArenas []arena

	// Parallel-engine sections: persistent workers (usedWorkers marks how
	// many the last run wired), the node- and word-ownership tables, and the
	// coordinator's large scratch.
	workers     []*parallelWorker
	usedWorkers int
	shardOf     []int32
	wordShardOf []int32
	liveScratch []int32
	slotScratch []int32

	// Placement memory (survives scrub — it describes where the slab's pages
	// physically live, which outlasts any one run): the initial shard bounds
	// of the last pinned run of this slab. Workers take shards in pool order
	// at setup, so identical bounds mean worker i re-acquires exactly the
	// windows it first-touched last time and the touch pass can be skipped.
	placePinned bool
	placeBounds []int
}

// msgPlane materializes one of the slab's Message planes.
func (s *engineSlab) msgPlane(p *[]Message) []Message {
	if *p == nil {
		*p = make([]Message, s.key.h)
	}
	return *p
}

// plane materializes one of the slab's bit planes.
func (s *engineSlab) plane(p **bitPlane) *bitPlane {
	if *p == nil {
		*p = newBitPlane(s.key.h)
	}
	return *p
}

// neighborIDs materializes the flat neighbor-ID table. Contents are fully
// rewritten by every KT1 run, so no scrub is needed.
func (s *engineSlab) neighborIDs() []uint64 {
	if s.nids == nil {
		s.nids = make([]uint64, s.key.h)
	}
	return s.nids
}

// nodeArena returns node v's persistent arena (concurrent engine).
func (s *engineSlab) nodeArena(v int) *arena {
	if s.nodeArenas == nil {
		s.nodeArenas = make([]arena, s.key.n)
	}
	return &s.nodeArenas[v]
}

// shardTable materializes the node-ownership table of the parallel engine.
func (s *engineSlab) shardTable() []int32 {
	if s.shardOf == nil {
		s.shardOf = make([]int32, s.key.n)
	}
	return s.shardOf
}

// wordShardTable materializes the word-ownership table of packed parallel
// runs.
func (s *engineSlab) wordShardTable(words int) []int32 {
	if len(s.wordShardOf) < words {
		s.wordShardOf = make([]int32, words)
	}
	return s.wordShardOf[:words]
}

// parWorkers hands out `workers` reset parallelWorker structs, growing the
// persistent set as needed. Each worker keeps its arena, worklist capacity,
// staging lists and (packed) private out plane warm across runs; the caller
// re-wires lo/hi, worklist contents and context ownership per run.
func (s *engineSlab) parWorkers(workers int, packed bool) []*parallelWorker {
	for len(s.workers) < workers {
		s.workers = append(s.workers, &parallelWorker{arena: &arena{}})
	}
	s.usedWorkers = workers
	out := s.workers[:workers]
	for _, w := range out {
		if packed {
			if w.out == nil {
				w.out = newBitPlane(s.key.h)
			}
			w.pout = resizeStaging(w.pout, workers)
		} else {
			w.outbox = resizeStaging(w.outbox, workers)
		}
	}
	return out
}

// resizeStaging adjusts a per-destination-shard staging table to the run's
// worker count, truncating every retained lane (inner capacity survives).
func resizeStaging[T any](lists [][]T, workers int) [][]T {
	if cap(lists) < workers {
		grown := make([][]T, workers)
		copy(grown, lists)
		lists = grown
	}
	lists = lists[:workers]
	for i := range lists {
		lists[i] = lists[i][:0]
	}
	return lists
}

// scrub restores the parked-clean invariant after a run. The engines hand
// back the possibly-swapped plane headers through engineState.release, which
// calls this exactly once per acquire — including on error returns.
func (s *engineSlab) scrub() {
	clear(s.done)
	if s.inbox != nil {
		clear(s.inbox)
	}
	if s.next != nil {
		clear(s.next)
	}
	if s.outbox != nil {
		clear(s.outbox)
	}
	for _, b := range []*bitPlane{s.inBits, s.nextBits, s.outBits} {
		if b != nil {
			clear(b.present)
			clear(b.value)
		}
	}
	s.staged = s.staged[:0]
	s.inboxSlots = s.inboxSlots[:0]
	s.activeTrace = s.activeTrace[:0]
	s.arena.reset()
	for i := range s.nodeArenas {
		s.nodeArenas[i].reset()
	}
	for _, w := range s.workers[:s.usedWorkers] {
		w.active = w.active[:0]
		w.inboxSlots = w.inboxSlots[:0]
		w.held = nil
		w.denseInbox = false
		w.err = nil
		for i := range w.outbox {
			w.outbox[i] = w.outbox[i][:0]
		}
		for i := range w.pout {
			w.pout[i] = w.pout[i][:0]
		}
		if w.out != nil {
			clear(w.out.present)
			clear(w.out.value)
		}
		w.arena.reset()
	}
	s.usedWorkers = 0
	s.liveScratch = s.liveScratch[:0]
	s.slotScratch = s.slotScratch[:0]
}

// reset empties both of the arena's round buffers, retaining their capacity
// — the between-runs counterpart of rotate.
func (a *arena) reset() {
	a.bufs[0] = a.bufs[0][:0]
	a.bufs[1] = a.bufs[1][:0]
}

// release scrubs the run's slab and parks it. Safe to call on a run that
// never acquired one (unpooled runs), and idempotent per run.
func (st *engineState[T]) release() {
	if st.slab == nil {
		return
	}
	s, p := st.slab, st.pool
	st.slab, st.pool = nil, nil
	// Write back the headers the run may have grown or swapped: the
	// sequential engine swaps inbox/next wholesale on dense rounds, and the
	// staged/slot lists trade places every round.
	if !st.packed {
		if st.inbox != nil {
			s.inbox = st.inbox
		}
		if st.next != nil {
			s.next = st.next
		}
	}
	s.staged, s.inboxSlots = st.staged, st.inboxSlots
	s.activeTrace = st.activeTrace
	s.active = st.active[:cap(st.active)]
	s.scrub()
	p.park(s)
}
