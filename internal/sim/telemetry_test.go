package sim

import (
	"fmt"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
)

// withTelemetry runs f with telemetry collection enabled, restoring the
// previous setting afterwards.
func withTelemetry(t *testing.T, f func()) {
	t.Helper()
	prev := TelemetryEnabled()
	SetTelemetry(true)
	defer SetTelemetry(prev)
	f()
}

// checkTelemetryInvariants asserts the structural invariants every
// scheduler's record must satisfy: one entry per round aligned with
// ActivePerRound, consistent lane counts, non-negative compute times no
// larger than the round wall time (a lane's compute phase is strictly
// contained in the coordinator's round window, and the clock is monotonic),
// staged counts that sum to the run's message total, and re-shard events
// strictly monotone in round index.
func checkTelemetryInvariants(t *testing.T, label string, res *Result[uint64]) {
	t.Helper()
	tel := res.Telemetry
	if tel == nil {
		t.Fatalf("%s: telemetry enabled but Result.Telemetry is nil", label)
	}
	if tel.Workers <= 0 {
		t.Fatalf("%s: telemetry reports %d workers", label, tel.Workers)
	}
	if len(tel.Rounds) != res.Rounds {
		t.Fatalf("%s: %d round records for %d rounds", label, len(tel.Rounds), res.Rounds)
	}
	var staged int64
	var compute int64
	for r, rs := range tel.Rounds {
		if len(rs.ComputeNS) != tel.Workers || len(rs.Staged) != tel.Workers || len(rs.Mode) != tel.Workers {
			t.Fatalf("%s: round %d lane counts (%d,%d,%d) != workers %d",
				label, r, len(rs.ComputeNS), len(rs.Staged), len(rs.Mode), tel.Workers)
		}
		if rs.WallNS < 0 {
			t.Errorf("%s: round %d wall time %d < 0", label, r, rs.WallNS)
		}
		for w, c := range rs.ComputeNS {
			if c < 0 {
				t.Errorf("%s: round %d lane %d compute %d < 0", label, r, w, c)
			}
			if c > rs.WallNS {
				t.Errorf("%s: round %d lane %d compute %d exceeds round wall %d", label, r, w, c, rs.WallNS)
			}
			compute += c
		}
		for w, s := range rs.Staged {
			if s < 0 {
				t.Errorf("%s: round %d lane %d staged %d < 0", label, r, w, s)
			}
			staged += int64(s)
		}
	}
	if staged != res.Messages {
		t.Errorf("%s: staged counts sum to %d, want Messages = %d", label, staged, res.Messages)
	}
	if res.Rounds > 0 && compute == 0 {
		t.Errorf("%s: every compute-time sample is zero across %d rounds", label, res.Rounds)
	}
	prevRound := -1
	for i, ev := range tel.Reshards {
		if ev.Round <= prevRound {
			t.Errorf("%s: reshard event %d at round %d not after previous round %d", label, i, ev.Round, prevRound)
		}
		prevRound = ev.Round
		if ev.Round >= res.Rounds {
			t.Errorf("%s: reshard event %d at round %d beyond run's %d rounds", label, i, ev.Round, res.Rounds)
		}
		if ev.Live <= 0 {
			t.Errorf("%s: reshard event %d over %d live nodes", label, i, ev.Live)
		}
		if ev.CostNS < 0 || ev.WasteNS < 0 {
			t.Errorf("%s: reshard event %d negative cost %d or waste %d", label, i, ev.CostNS, ev.WasteNS)
		}
	}
}

func TestTelemetryDisabledByDefault(t *testing.T) {
	if TelemetryEnabled() {
		t.Fatal("telemetry enabled at package init")
	}
	g := graph.Ring(32)
	res, err := Run(Config{Graph: g}, floodFactory(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Error("Result.Telemetry non-nil with collection disabled")
	}
}

// TestTelemetryInvariants runs the staggered-termination program — whose
// geometric fringe shrinkage exercises sparse and dense delivery and (on the
// parallel engine) re-sharding — under every scheduler with telemetry on.
func TestTelemetryInvariants(t *testing.T) {
	rng := prng.New(99)
	g := graph.GNPConnected(300, 0.03, rng)
	n := g.N()
	ids := RandomIDs(n, 4, NewSimulationKey(17))
	cfg := Config{Graph: g, IDs: ids, MaxMessageBits: CongestBits(n)}
	factory := func(int) NodeProgram[uint64] { return &staggeredHalt{} }
	withTelemetry(t, func() {
		res, err := Run(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		checkTelemetryInvariants(t, "sequential", res)
		if res.Telemetry.Scheduler != Sequential || res.Telemetry.Workers != 1 {
			t.Errorf("sequential telemetry header = %v/%d", res.Telemetry.Scheduler, res.Telemetry.Workers)
		}
		if len(res.Telemetry.Reshards) != 0 {
			t.Error("sequential engine reported reshard events")
		}

		res, err = RunConcurrent(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		checkTelemetryInvariants(t, "concurrent", res)
		if res.Telemetry.Scheduler != Concurrent {
			t.Errorf("concurrent telemetry scheduler = %v", res.Telemetry.Scheduler)
		}
		for r, rs := range res.Telemetry.Rounds {
			if rs.Mode[0] != DeliverChannels {
				t.Fatalf("concurrent round %d mode = %v", r, rs.Mode[0])
			}
		}

		for _, workers := range []int{2, 4} {
			pcfg := cfg
			pcfg.Reshard = ReshardHalving // deterministic cut schedule
			res, err = RunParallel(pcfg, factory, workers)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("parallel/workers=%d", workers)
			checkTelemetryInvariants(t, label, res)
			tel := res.Telemetry
			if tel.Scheduler != Parallel || tel.Workers != workers {
				t.Errorf("%s: telemetry header = %v/%d", label, tel.Scheduler, tel.Workers)
			}
			// The staggered program halves the fringe round after round, so
			// the halving rule must have cut at least once on this n.
			if len(tel.Reshards) == 0 {
				t.Errorf("%s: no reshard events under ReshardHalving", label)
			}
			for _, ev := range tel.Reshards {
				if ev.WasteNS != 0 {
					t.Errorf("%s: halving-policy event carries imbalance debt %d", label, ev.WasteNS)
				}
				// The cut runs after round ev.Round, over that round's
				// surviving worklist: at most the nodes active then.
				if ev.Live > res.ActivePerRound[ev.Round] {
					t.Errorf("%s: event at round %d over %d live > %d active",
						label, ev.Round, ev.Live, res.ActivePerRound[ev.Round])
				}
			}
		}
	})
}

// TestTelemetryDeliveryModes pins the mode choice on the sequential engine:
// an all-active flood on a dense-enough graph swaps planes (dense), while a
// long sparse tail walks staged slots (sparse).
func TestTelemetryDeliveryModes(t *testing.T) {
	withTelemetry(t, func() {
		// Complete graph, everyone floods: every round but the silent last
		// one stages the full plane, so they must take the dense path.
		res, err := Run(Config{Graph: graph.Complete(24)}, floodFactory(3))
		if err != nil {
			t.Fatal(err)
		}
		tel := res.Telemetry
		for r := 0; r < len(tel.Rounds)-1; r++ {
			if tel.Rounds[r].Mode[0] != DeliverDense {
				t.Errorf("complete-graph round %d mode = %v, want dense", r, tel.Rounds[r].Mode[0])
			}
		}
		// Star where only the hub talks, on one port: one staged slot of
		// 2(n−1) per round — every round must stay sparse.
		res, err = Run(Config{Graph: graph.Star(64)}, func(v int) NodeProgram[uint64] {
			if v == 0 {
				return &singlePortTalker{rounds: 6}
			}
			return &haltNow{}
		})
		if err != nil {
			t.Fatal(err)
		}
		for r, rs := range res.Telemetry.Rounds {
			if rs.Mode[0] != DeliverSparse {
				t.Errorf("star round %d mode = %v, want sparse", r, rs.Mode[0])
			}
		}
	})
}

// singlePortTalker sends one message on port 0 every round (nodes without
// ports stay silent) for a fixed number of rounds.
type singlePortTalker struct {
	ctx    *NodeCtx
	rounds int
}

func (p *singlePortTalker) Init(ctx *NodeCtx) { p.ctx = ctx }

func (p *singlePortTalker) Round(r int, inbox []Message) ([]Message, bool) {
	if r >= p.rounds {
		return nil, true
	}
	out := p.ctx.Broadcast(nil)
	if len(out) > 0 {
		out[0] = p.ctx.Uints(uint64(r))
	}
	return out, false
}

func (p *singlePortTalker) Output() uint64 { return 0 }

// haltNow terminates silently in round 0.
type haltNow struct{}

func (h *haltNow) Init(*NodeCtx)                          {}
func (h *haltNow) Round(int, []Message) ([]Message, bool) { return nil, true }
func (h *haltNow) Output() uint64                         { return 0 }

// TestReshardModel unit-tests the adaptive policy's arithmetic with
// synthetic compute times — no clocks, no engine.
func TestReshardModel(t *testing.T) {
	m := newReshardModel(4, 1000)
	if m.costEstNS != 4*1000+1000 {
		t.Fatalf("initial cost estimate = %d", m.costEstNS)
	}
	// A perfectly balanced round accrues no debt, so no cut is warranted
	// no matter how far the worklist shrank.
	m.charge(100, 400)
	if m.wasteNS != 0 {
		t.Fatalf("balanced round charged %d", m.wasteNS)
	}
	if m.shouldCut(10) {
		t.Error("cut proposed with zero debt")
	}
	// Skewed rounds accrue idle time: one worker at 10000ns, three idle.
	for i := 0; i < 2; i++ {
		m.charge(10_000, 10_000) // 4*10000-10000 = 30000 per round
	}
	if m.wasteNS != 60_000 {
		t.Fatalf("debt = %d, want 60000", m.wasteNS)
	}
	// Debt exceeds 2×5000? No: estimate is 5000, threshold 10000 — yes it
	// does. But an unchanged worklist must still refuse the cut.
	if m.shouldCut(1000) {
		t.Error("cut proposed for an unchanged worklist")
	}
	if !m.shouldCut(999) {
		t.Error("cut refused despite debt 60000 >= 2×5000")
	}
	// After a measured cut the estimate replaces the guess and debt resets.
	m.cutDone(999, 40_000)
	if m.costEstNS != 40_000 || m.wasteNS != 0 || m.lastCutLive != 999 {
		t.Fatalf("post-cut model = %+v", m)
	}
	m.charge(30_000, 30_000) // debt 90000 > 2×40000
	if !m.shouldCut(500) {
		t.Error("cut refused after sufficient new debt")
	}
	// A suspiciously cheap measured cut is floored so the model cannot be
	// talked into cutting every round.
	m.cutDone(500, 0)
	if m.costEstNS != 1000 {
		t.Errorf("cost floor = %d, want 1000", m.costEstNS)
	}
}

// TestReshardPolicyEquivalence extends the equivalence suite across
// re-shard policies: whatever cut schedule a policy produces — fixed
// halving, cost-model, or none — the Result must be byte-identical to the
// sequential engine's.
func TestReshardPolicyEquivalence(t *testing.T) {
	rng := prng.New(505)
	for _, tg := range []struct {
		name string
		g    *graph.Graph
	}{
		{"powerlaw", graph.PowerLaw(400, 3, rng)},
		{"gnp", graph.GNPConnected(350, 0.02, rng)},
	} {
		t.Run(tg.name, func(t *testing.T) {
			n := tg.g.N()
			ids := RandomIDs(n, 3, NewSimulationKey(uint64(n)*7+5))
			cfg := Config{Graph: tg.g, IDs: ids, MaxMessageBits: CongestBits(n)}
			factory := func(int) NodeProgram[uint64] { return &staggeredHalt{} }
			want, err := Run(cfg, factory)
			if err != nil {
				t.Fatal(err)
			}
			for _, policy := range []ReshardPolicy{ReshardAuto, ReshardAdaptive, ReshardHalving, ReshardOff} {
				for _, workers := range []int{2, 3, 8} {
					pcfg := cfg
					pcfg.Reshard = policy
					got, err := RunParallel(pcfg, factory, workers)
					if err != nil {
						t.Fatal(err)
					}
					assertResultsEqual(t, fmt.Sprintf("%v/workers=%d", policy, workers), want, got)
				}
			}
		})
	}
}

func TestParseReshardPolicy(t *testing.T) {
	for name, want := range map[string]ReshardPolicy{
		"": ReshardAuto, "auto": ReshardAuto,
		"adaptive": ReshardAdaptive,
		"halving":  ReshardHalving,
		"off":      ReshardOff, "never": ReshardOff,
	} {
		got, err := ParseReshardPolicy(name)
		if err != nil || got != want {
			t.Errorf("ParseReshardPolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseReshardPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	if ReshardAuto.String() != "auto" || ReshardHalving.String() != "halving" ||
		ReshardAdaptive.String() != "adaptive" || ReshardOff.String() != "off" {
		t.Error("ReshardPolicy.String names drifted")
	}
	// An explicit policy must survive a conflicting package default: the
	// Auto sentinel, not Adaptive, is what defers to SetDefaultReshard.
	SetDefaultReshard(ReshardOff)
	defer SetDefaultReshard(ReshardAuto)
	if got := DefaultReshard(); got != ReshardOff {
		t.Fatalf("DefaultReshard() = %v after SetDefaultReshard(Off)", got)
	}
	SetDefaultReshard(ReshardAuto) // Auto resets to the adaptive default
	if got := DefaultReshard(); got != ReshardAdaptive {
		t.Errorf("DefaultReshard() = %v after SetDefaultReshard(Auto), want adaptive", got)
	}
	if DeliverSparse.String() != "sparse" || DeliverDense.String() != "dense" || DeliverChannels.String() != "channels" {
		t.Error("DeliveryMode.String names drifted")
	}
}
