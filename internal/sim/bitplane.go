package sim

import "math/bits"

// denseCutover is the shared density cut-off of every delivery-strategy
// decision: a round (or, in the parallel engine, one shard's scatter window)
// takes the dense whole-window path — plane swap or memclr, which the runtime
// vectorizes — when denseCutover*staged >= window, and the sparse staged-slot
// walk otherwise. The window is measured in the units the dense path actually
// sweeps: slots for the []Message planes, words for the packed bit planes
// (where one memclr'd word retires 64 slots, so the dense path pays off 64×
// earlier). Both engines and both plane kinds must share this constant: the
// cut-off is a pure performance lever with no effect on Results, and keeping
// it in one place is what the TestDenseCutover* pins assert.
const denseCutover = 8

// denseDelivery is the shared decision: true when the staged-message count
// clears the density cut-off for a window of the given size (in slots for
// Message planes, words for packed planes).
func denseDelivery(staged, window int) bool { return denseCutover*staged >= window }

// bitPlane is the packed counterpart of a []Message half-edge plane for runs
// whose programs declare 1-bit payloads (see PayloadBitsDeclarer): slot i of
// the plane is bit i&63 of word i>>6. present marks slots holding a message
// (the analogue of a non-nil Message) and value carries the payload bit.
// Invariant: value ⊆ present — every clear clears both words, so a delivered
// 0-bit is distinguishable from silence and stale value bits cannot leak into
// a later OR-delivery.
//
// The pointer is what the engines share with NodeCtx: on a dense round the
// sequential engine swaps the inner slices, never the struct, so a wired
// *bitPlane stays valid for the whole run.
type bitPlane struct {
	present []uint64
	value   []uint64
}

// newBitPlane returns a zeroed plane covering the given number of slots.
func newBitPlane(slots int) *bitPlane {
	w := (slots + 63) >> 6
	return &bitPlane{present: make([]uint64, w), value: make([]uint64, w)}
}

// words reports the plane's word count — the dense-path window unit.
func (b *bitPlane) words() int { return len(b.present) }

// set stages payload bit v at slot i. The slot must be clear (the planes'
// delivery discipline guarantees it: every slot is cleared before it is
// re-delivered to, and staged at most once per round).
func (b *bitPlane) set(i int32, v uint64) {
	w, s := int(i)>>6, uint(i)&63
	b.present[w] |= 1 << s
	b.value[w] |= (v & 1) << s
}

// occupied reports whether slot i holds a message.
func (b *bitPlane) occupied(i int32) bool {
	return b.present[int(i)>>6]>>(uint(i)&63)&1 != 0
}

// bit returns slot i's payload bit (0 when the slot is empty).
func (b *bitPlane) bit(i int32) uint64 {
	return b.value[int(i)>>6] >> (uint(i) & 63) & 1
}

// clearSlot empties slot i (present and value).
func (b *bitPlane) clearSlot(i int32) {
	w, s := int(i)>>6, uint(i)&63
	mask := ^(uint64(1) << s)
	b.present[w] &= mask
	b.value[w] &= mask
}

// clearWords memclrs the word range [lo, hi) of both lanes — the dense path
// of a word-owned scatter window.
func (b *bitPlane) clearWords(lo, hi int) {
	clear(b.present[lo:hi])
	clear(b.value[lo:hi])
}

// clearBitRange empties the slot range [lo, hi), mask-aware at the boundary
// words so slots of adjacent ranges sharing a word are untouched.
func (b *bitPlane) clearBitRange(lo, hi int64) {
	if lo >= hi {
		return
	}
	wlo, whi := int(lo>>6), int((hi-1)>>6)
	first := ^uint64(0) << (uint(lo) & 63)
	last := ^uint64(0) >> (63 - uint(hi-1)&63)
	if wlo == whi {
		m := ^(first & last)
		b.present[wlo] &= m
		b.value[wlo] &= m
		return
	}
	b.present[wlo] &= ^first
	b.value[wlo] &= ^first
	clear(b.present[wlo+1 : whi])
	clear(b.value[wlo+1 : whi])
	b.present[whi] &= ^last
	b.value[whi] &= ^last
}

// setBitRange fills the slot range [lo, hi) of one lane, mask-aware at the
// boundary words.
func setBitRange(dst []uint64, lo, hi int64) {
	if lo >= hi {
		return
	}
	wlo, whi := int(lo>>6), int((hi-1)>>6)
	first := ^uint64(0) << (uint(lo) & 63)
	last := ^uint64(0) >> (63 - uint(hi-1)&63)
	if wlo == whi {
		dst[wlo] |= first & last
		return
	}
	dst[wlo] |= first
	for w := wlo + 1; w < whi; w++ {
		dst[w] = ^uint64(0)
	}
	dst[whi] |= last
}

// orBitsAt ORs the low n (1..64) bits of w into dst starting at global bit
// position pos.
func orBitsAt(dst []uint64, pos int64, w uint64, n int) {
	if n < 64 {
		w &= 1<<uint(n) - 1
	}
	i, s := int(pos>>6), uint(pos)&63
	dst[i] |= w << s
	if s != 0 && int(s)+n > 64 {
		dst[i+1] |= w >> (64 - s)
	}
}

// readBitsAt returns the n (1..64) bits of src starting at global position
// pos, in the low bits of the result.
func readBitsAt(src []uint64, pos int64, n int) uint64 {
	i, s := int(pos>>6), uint(pos)&63
	w := src[i] >> s
	if s != 0 && int(s)+n > 64 {
		w |= src[i+1] << (64 - s)
	}
	if n < 64 {
		w &= 1<<uint(n) - 1
	}
	return w
}

// popcountRange counts the set bits of src in the slot range [lo, hi).
func popcountRange(src []uint64, lo, hi int64) int {
	if lo >= hi {
		return 0
	}
	wlo, whi := int(lo>>6), int((hi-1)>>6)
	first := ^uint64(0) << (uint(lo) & 63)
	last := ^uint64(0) >> (63 - uint(hi-1)&63)
	if wlo == whi {
		return bits.OnesCount64(src[wlo] & first & last)
	}
	n := bits.OnesCount64(src[wlo] & first)
	for w := wlo + 1; w < whi; w++ {
		n += bits.OnesCount64(src[w])
	}
	return n + bits.OnesCount64(src[whi]&last)
}

// inboxView is the adversary boundary's uniform handle on the current inbox
// plane of either kind: the boundary's supersede checks, late-delivery
// injections and stall-loss counts must behave identically whether the run
// stores inboxes as Messages or packed bits, so the engines hand it whichever
// plane the run allocated.
type inboxView struct {
	msgs []Message // the []Message plane; nil in packed runs
	bits *bitPlane // the packed plane; nil in unpacked runs
}

// occupied reports whether inbox slot i currently holds a message.
func (iv inboxView) occupied(i int32) bool {
	if iv.bits != nil {
		return iv.bits.occupied(i)
	}
	return iv.msgs[i] != nil
}

// inject writes a (held, canonical-wire) message into slot i. Packed planes
// store its payload bit; the 8-bit accounting happens at the caller.
func (iv inboxView) inject(i int32, m Message) {
	if iv.bits != nil {
		var b uint64
		if len(m) > 0 {
			b = uint64(m[0] & 1)
		}
		iv.bits.set(i, b)
		return
	}
	iv.msgs[i] = m
}

// occupiedInRange counts the occupied slots in [lo, hi) — word-parallel on
// packed planes.
func (iv inboxView) occupiedInRange(lo, hi int64) int {
	if iv.bits != nil {
		return popcountRange(iv.bits.present, lo, hi)
	}
	n := 0
	for i := lo; i < hi; i++ {
		if iv.msgs[i] != nil {
			n++
		}
	}
	return n
}
