package sim

// SequentialIDs assigns identifier v to node v — the default, and the
// friendliest assignment for ID-based symmetry breaking.
func SequentialIDs(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	return ids
}

// RandomIDs assigns a uniformly random injective identifier from
// [0, n·spread) to each node. The paper's model assumes identifiers of
// Θ(log n) bits, i.e. from a polynomial range; spread controls the
// polynomial (spread = n gives the usual [0, n²) range). The draws come
// from the key's workload stream, so an ID assignment never consumes — and
// is never perturbed by — the algorithm's or the adversary's coins.
func RandomIDs(n, spread int, key SimulationKey) []uint64 {
	if spread < 1 {
		spread = 1
	}
	rng := key.RNG().Workload()
	used := make(map[uint64]bool, n)
	ids := make([]uint64, n)
	for i := range ids {
		for {
			id := uint64(rng.Intn(n * spread))
			if !used[id] {
				used[id] = true
				ids[i] = id
				break
			}
		}
	}
	return ids
}

// AdversarialDescendingIDs assigns n-1-v to node v: an adversarial pattern
// for greedy-by-ID algorithms whose wavefronts then travel the "wrong" way.
func AdversarialDescendingIDs(n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(n - 1 - i)
	}
	return ids
}
