package sim

import (
	"fmt"
	"math/bits"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
)

// staggeredHalt is the worklist-correctness protocol: node v floods the
// smallest value it has heard but halts at a round determined by its ID
// alone — trailingZeros(ID+1), capped — so the live fringe shrinks
// geometrically and the expected per-round active counts can be computed
// independently of any engine. Payloads are carved from the per-round arena
// and outboxes assembled in the engine scratch, so the test also exercises
// both allocation-free paths on every scheduler.
type staggeredHalt struct {
	ctx  *NodeCtx
	halt int
	best uint64
}

// staggeredHaltRound is the ID-dependent halting round, capped so runs stay
// short even with wide random IDs.
func staggeredHaltRound(id uint64) int {
	return bits.TrailingZeros64(id+1) % 9
}

func (f *staggeredHalt) Init(ctx *NodeCtx) {
	f.ctx = ctx
	f.best = ctx.ID
	f.halt = staggeredHaltRound(ctx.ID)
}

func (f *staggeredHalt) Round(r int, inbox []Message) ([]Message, bool) {
	for _, m := range inbox {
		if m == nil {
			continue
		}
		if x, _, ok := ReadUint(m); ok && x < f.best {
			f.best = x
		}
	}
	if r >= f.halt {
		return nil, true
	}
	out := f.ctx.Outbox
	payload := f.ctx.Uints(f.best)
	for p := range out {
		out[p] = payload
	}
	return out, false
}

func (f *staggeredHalt) Output() uint64 { return f.best }

// TestWorklistStaggeredTermination checks the active-node worklist on all
// three schedulers: the per-round active counts must equal the prediction
// #{v : haltRound(id[v]) >= r} derived from the halting rule alone, and the
// full Results must stay byte-identical across schedulers, on GNP, tree and
// power-law networks.
func TestWorklistStaggeredTermination(t *testing.T) {
	rng := prng.New(2024)
	for _, tg := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPConnected(160, 0.05, rng)},
		{"tree", graph.RandomTree(170, rng)},
		{"powerlaw", graph.PowerLaw(150, 3, rng)},
	} {
		t.Run(tg.name, func(t *testing.T) {
			n := tg.g.N()
			ids := RandomIDs(n, 4, NewSimulationKey(uint64(n)*3+1))

			// Engine-independent prediction of the live-fringe trajectory.
			maxHalt := 0
			for _, id := range ids {
				if h := staggeredHaltRound(id); h > maxHalt {
					maxHalt = h
				}
			}
			predicted := make([]int, maxHalt+1)
			for _, id := range ids {
				for r := 0; r <= staggeredHaltRound(id); r++ {
					predicted[r]++
				}
			}

			cfg := Config{Graph: tg.g, IDs: ids, MaxMessageBits: CongestBits(n)}
			factory := func(int) NodeProgram[uint64] { return &staggeredHalt{} }
			want, err := Run(cfg, factory)
			if err != nil {
				t.Fatal(err)
			}
			if want.Rounds != maxHalt+1 {
				t.Errorf("rounds = %d, want %d", want.Rounds, maxHalt+1)
			}
			if len(want.ActivePerRound) != len(predicted) {
				t.Fatalf("active trace length %d, want %d", len(want.ActivePerRound), len(predicted))
			}
			for r, p := range predicted {
				if want.ActivePerRound[r] != p {
					t.Errorf("round %d: active = %d, predicted %d", r, want.ActivePerRound[r], p)
				}
			}
			if want.ActivePerRound[0] != n {
				t.Errorf("round 0 active = %d, want all %d nodes", want.ActivePerRound[0], n)
			}

			got, err := RunConcurrent(cfg, factory)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, "concurrent", want, got)
			for _, workers := range []int{2, 3, 8, n} {
				got, err := RunParallel(cfg, factory, workers)
				if err != nil {
					t.Fatal(err)
				}
				assertResultsEqual(t, fmt.Sprintf("parallel/workers=%d", workers), want, got)
			}
		})
	}
}

// TestActivePerRoundUniformTermination pins the trajectory shape when no
// node halts early: every round reports all n nodes active, on every
// scheduler.
func TestActivePerRoundUniformTermination(t *testing.T) {
	g := graph.Ring(24)
	rounds := 5
	want, err := Run(Config{Graph: g}, floodFactory(rounds))
	if err != nil {
		t.Fatal(err)
	}
	if len(want.ActivePerRound) != rounds+1 {
		t.Fatalf("trace length %d, want %d", len(want.ActivePerRound), rounds+1)
	}
	for r, a := range want.ActivePerRound {
		if a != g.N() {
			t.Errorf("round %d: active = %d, want %d", r, a, g.N())
		}
	}
	got, err := RunConcurrent(Config{Graph: g}, floodFactory(rounds))
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "concurrent", want, got)
	got, err = RunParallel(Config{Graph: g}, floodFactory(rounds), 3)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "parallel", want, got)
}
