package sim

import (
	"fmt"
	"runtime"
)

// numProcs reports how many workers the runtime can actually execute
// concurrently. It is a variable so tests can simulate wider (or narrower)
// hardware than the host: the adaptive pool-width machinery and the
// PlaceAuto hardware resolution both read it, and on a single-CPU CI runner
// the real value would collapse every multi-worker code path to width 1.
var numProcs = func() int { return runtime.GOMAXPROCS(0) }

// ReshardPolicy selects when RunParallel re-cuts its shards over the live
// worklist. Re-sharding is purely a performance decision: the Result —
// outputs, rounds, active trajectory and all counters — is identical under
// every policy (the equivalence suite asserts this), so policies exist to be
// A/B-benchmarked, not to change behavior.
type ReshardPolicy uint8

const (
	// ReshardAuto defers to the package-wide default (SetDefaultReshard);
	// out of the box that is ReshardAdaptive. It is the zero value — the
	// same pattern as Scheduler's Auto — so an *explicit* policy in a
	// Config is never silently overridden by the package default.
	ReshardAuto ReshardPolicy = iota
	// ReshardAdaptive is the cost model (and the out-of-the-box default):
	// the coordinator accumulates the barrier imbalance it observes — the
	// idle worker time implied by the spread of per-worker compute times —
	// and re-cuts only once that debt exceeds a multiple of the measured
	// price of the previous re-cut. A balanced run never pays for a cut it
	// does not need; a skewed shattering tail still gets re-balanced as
	// soon as the imbalance has cost more than re-balancing would. The
	// same ledger adapts the pool's width: surplus workers park when the
	// live set shrinks below per-worker profitability, and the pool is
	// clamped to the host's processor count (numProcs) up front — a pool
	// that collapses to width 1 dispatches to the sequential engine. Like
	// re-cut timing this moves wall clock only; Results stay byte-identical.
	ReshardAdaptive
	// ReshardHalving is the fixed legacy rule: re-cut every time the live
	// worklist has halved since the last cut, regardless of how balanced
	// the pool still is. Kept as an explicit override for A/B runs.
	ReshardHalving
	// ReshardOff never re-cuts: the initial whole-graph ShardBounds cut
	// stands for the entire run.
	ReshardOff
)

// String returns the flag-friendly name of the policy.
func (p ReshardPolicy) String() string {
	switch p {
	case ReshardAuto:
		return "auto"
	case ReshardAdaptive:
		return "adaptive"
	case ReshardHalving:
		return "halving"
	case ReshardOff:
		return "off"
	default:
		return fmt.Sprintf("ReshardPolicy(%d)", int(p))
	}
}

// ParseReshardPolicy parses a -reshard flag value.
func ParseReshardPolicy(name string) (ReshardPolicy, error) {
	switch name {
	case "", "auto":
		return ReshardAuto, nil
	case "adaptive":
		return ReshardAdaptive, nil
	case "halving":
		return ReshardHalving, nil
	case "off", "never":
		return ReshardOff, nil
	default:
		return ReshardAuto, fmt.Errorf("sim: unknown re-shard policy %q (want adaptive, halving or off)", name)
	}
}

// PlacePolicy selects whether RunParallel pins its pool workers to OS
// threads and first-touches each worker's shard windows (inbox/next message
// planes, packed bit planes) from the owning goroutine. Like ReshardPolicy,
// placement is purely a performance decision: the Result — outputs, rounds,
// active trajectory, every counter, and Telemetry.Injected under an
// adversary — is byte-identical under every policy (the equivalence suite
// asserts this), so policies exist to be A/B-benchmarked, not to change
// behavior. Placement changes wall clock only.
type PlacePolicy uint8

const (
	// PlaceAuto defers to the package-wide default (SetDefaultPlace); out
	// of the box that resolves by hardware at run time — PlacePin when
	// runtime.GOMAXPROCS(0) >= 2, PlaceNone on single-CPU hosts where
	// pinning buys nothing and costs thread-affinity churn. It is the zero
	// value, so a Config that never mentions placement keeps sensible
	// behavior everywhere.
	PlaceAuto PlacePolicy = iota
	// PlacePin locks every pool worker to its OS thread for the run
	// (runtime.LockOSThread) and first-touches the worker's shard windows
	// from that goroutine at acquisition and after every re-cut, so the
	// backing pages fault in on — and stay local to — the owning thread's
	// NUMA node. Best-effort: Go offers no page-migration API, so re-cut
	// touches only help pages that have not faulted yet plus the caches.
	PlacePin
	// PlaceNone disables pinning and first-touch passes entirely. The
	// right choice in containers and CI runners whose CPU quota is below
	// the pool width: a locked thread that loses its CPU slice stalls the
	// whole barrier until the scheduler hands the thread back.
	PlaceNone
)

// String returns the flag-friendly name of the policy.
func (p PlacePolicy) String() string {
	switch p {
	case PlaceAuto:
		return "auto"
	case PlacePin:
		return "pin"
	case PlaceNone:
		return "none"
	default:
		return fmt.Sprintf("PlacePolicy(%d)", int(p))
	}
}

// ParsePlacePolicy parses a -place flag value.
func ParsePlacePolicy(name string) (PlacePolicy, error) {
	switch name {
	case "", "auto":
		return PlaceAuto, nil
	case "pin":
		return PlacePin, nil
	case "none", "off":
		return PlaceNone, nil
	default:
		return PlaceAuto, fmt.Errorf("sim: unknown placement policy %q (want auto, pin or none)", name)
	}
}

// reshardPayoff is the adaptive policy's pay-off factor: a re-cut runs once
// the accumulated barrier-imbalance debt exceeds reshardPayoff × the
// estimated re-cut price, so a cut must plausibly pay for itself with margin
// before it is taken.
const reshardPayoff = 2

// reshardModel is the adaptive policy's cost model, kept free of clocks and
// engine state so its arithmetic is unit-testable with synthetic inputs. The
// coordinator charges it one set of per-worker compute times per round and
// asks whether the accumulated barrier-imbalance debt now out-weighs the
// price of a re-cut.
type reshardModel struct {
	workers int
	// costEstNS estimates the price of one re-cut: a conservative O(n)
	// guess until the first cut is measured, then the last measurement.
	costEstNS int64
	// wasteNS is the imbalance debt since the last cut: the summed idle
	// worker time at the compute barrier (workers×max − sum of compute
	// times), accumulated round by round.
	wasteNS int64
	// lastCutLive is the live worklist size at the last cut; a new cut
	// requires the worklist to have shrunk since — re-cutting an
	// unchanged worklist would reproduce the same bounds and pay the
	// price for nothing.
	lastCutLive int
}

func newReshardModel(workers, n int) *reshardModel {
	return &reshardModel{workers: workers, costEstNS: int64(n)*4 + 1000, lastCutLive: n}
}

// charge accumulates one round's barrier imbalance: maxNS is the slowest
// worker's compute time and sumNS the pool's total, so the round's idle
// worker time at the barrier is workers×max − sum.
func (m *reshardModel) charge(maxNS, sumNS int64) {
	m.wasteNS += maxNS*int64(m.workers) - sumNS
}

// shouldCut reports whether the accumulated debt justifies a re-cut over a
// live worklist of size liveN.
func (m *reshardModel) shouldCut(liveN int) bool {
	return liveN < m.lastCutLive && m.wasteNS >= reshardPayoff*m.costEstNS
}

// cutDone records a completed re-cut: the measured price replaces the
// estimate (floored so a lucky cheap cut cannot talk the model into
// thrashing) and the debt resets.
func (m *reshardModel) cutDone(liveN int, costNS int64) {
	if m.costEstNS = costNS; m.costEstNS < 1000 {
		m.costEstNS = 1000
	}
	m.lastCutLive = liveN
	m.wasteNS = 0
}

// parkPayoff is the pool-width ledger's pay-off factor: a worker stays in
// the pool only while the compute it would absorb is at least parkPayoff ×
// the per-worker coordination overhead it costs, so the pool shrinks through
// the shattering tail but never parks a worker that is still pulling
// meaningful weight.
const parkPayoff = 2

// widthHold is the hysteresis depth of the pool-width ledger: the desired
// width must disagree with the current width for widthHold consecutive
// rounds before the pool is actually resized. One noisy round — a GC pause,
// a scheduler hiccup — never triggers a re-cut on its own.
const widthHold = 2

// poolModel is the adaptive pool-width ledger, the RunParallel counterpart
// of reshardModel: the same debt bookkeeping, but deciding how *many*
// workers the next rounds should pay for rather than when to re-balance
// them. Like reshardModel it is kept free of clocks and engine state so its
// arithmetic is unit-testable with synthetic inputs. Each round the
// coordinator charges it the measured round wall time, the per-worker
// compute spread and the live population; desiredWidth then answers how
// many workers the measured per-node compute cost can keep profitably busy
// given the measured per-worker coordination overhead (barrier wake, scatter
// merge, coordinator bookkeeping).
type poolModel struct {
	maxWorkers int
	width      int
	// procs is the runtime's concurrency limit at model creation
	// (numProcs). Per-worker compute times are goroutine wall clocks, so on
	// an over-subscribed host the interleaved workers each measure close to
	// the full round span and the overhead EMA reads near zero — the
	// measurements cannot distinguish real parallelism from time-slicing.
	// The processor count can: no width beyond it ever pays, so rawDesired
	// clamps there.
	procs int
	// overheadNS is an EMA of the *per-worker* coordination overhead: the
	// round wall time minus the slowest worker's compute time — everything
	// the round spent on barriers, scatter and merging rather than compute
	// — divided by the pool width that paid it. It is only charged while
	// the pool is at width >= 2: a one-worker round has no barrier spread
	// to measure, and letting its near-zero overhead decay the EMA would
	// talk the model into re-growing a pool it just (correctly) parked —
	// the remembered multi-worker overhead is exactly the price a re-grown
	// pool would pay again.
	overheadNS int64
	// perNodeNS is an EMA of the compute cost of one active node: the
	// pool's summed compute time over the round's active population.
	perNodeNS int64
	// disagree counts consecutive rounds in which desiredWidth differed
	// from width; a resize waits for widthHold of them.
	disagree int
	// lastDesired is the width the previous round asked for, so the
	// hysteresis counter only accumulates while the request is stable.
	lastDesired int
	samples     int
}

func newPoolModel(workers int) *poolModel {
	return &poolModel{maxWorkers: workers, width: workers, lastDesired: workers, procs: numProcs()}
}

// ema folds one sample into a quarter-weight exponential moving average.
func ema(avg, sample int64) int64 {
	if avg == 0 {
		return sample
	}
	return avg + (sample-avg)/4
}

// charge folds one round's measurements into the ledger: wallNS is the
// coordinator-measured round wall time, maxNS the slowest worker's compute
// time, sumNS the pool's summed compute time, activeN the round's active
// population.
func (m *poolModel) charge(wallNS, maxNS, sumNS int64, activeN int) {
	if m.width >= 2 {
		if over := wallNS - maxNS; over > 0 {
			m.overheadNS = ema(m.overheadNS, over/int64(m.width))
		}
	}
	if activeN > 0 && sumNS > 0 {
		per := sumNS / int64(activeN)
		if per < 1 {
			per = 1
		}
		m.perNodeNS = ema(m.perNodeNS, per)
	}
	m.samples++
}

// desiredWidth returns how many workers the ledger wants for a live
// worklist of liveN nodes, with hysteresis already applied: it returns the
// current width until a different width has been profitable for widthHold
// consecutive rounds. The core rule: each worker must absorb at least
// parkPayoff × the measured per-worker coordination overhead in compute, so
// width ≈ liveN·perNodeNS / (parkPayoff·overheadNS), clamped to
// [1, maxWorkers] and to liveN (a shard needs at least one live node).
func (m *poolModel) desiredWidth(liveN int) int {
	if m.samples < 2 {
		return m.width // no measurements yet: keep the configured width
	}
	d := m.rawDesired(liveN)
	if d == m.width {
		m.disagree = 0
		m.lastDesired = d
		return m.width
	}
	if d == m.lastDesired {
		m.disagree++
	} else {
		m.disagree = 1
	}
	m.lastDesired = d
	if m.disagree < widthHold {
		return m.width
	}
	return d
}

// rawDesired is the hysteresis-free profitability computation, clamped to
// [1, min(maxWorkers, procs, liveN)].
func (m *poolModel) rawDesired(liveN int) int {
	if liveN < 1 {
		return 1
	}
	pwo := m.overheadNS
	if pwo < 1 {
		pwo = 1
	}
	d := int(int64(liveN) * m.perNodeNS / (parkPayoff * pwo))
	if d < 1 {
		d = 1
	}
	if d > m.maxWorkers {
		d = m.maxWorkers
	}
	if d > m.procs {
		d = m.procs
	}
	if d > liveN {
		d = liveN
	}
	return d
}

// resized records a completed pool resize.
func (m *poolModel) resized(width int) {
	m.width = width
	m.disagree = 0
	m.lastDesired = width
}
