package sim

import "fmt"

// ReshardPolicy selects when RunParallel re-cuts its shards over the live
// worklist. Re-sharding is purely a performance decision: the Result —
// outputs, rounds, active trajectory and all counters — is identical under
// every policy (the equivalence suite asserts this), so policies exist to be
// A/B-benchmarked, not to change behavior.
type ReshardPolicy uint8

const (
	// ReshardAuto defers to the package-wide default (SetDefaultReshard);
	// out of the box that is ReshardAdaptive. It is the zero value — the
	// same pattern as Scheduler's Auto — so an *explicit* policy in a
	// Config is never silently overridden by the package default.
	ReshardAuto ReshardPolicy = iota
	// ReshardAdaptive is the cost model (and the out-of-the-box default):
	// the coordinator accumulates the barrier imbalance it observes — the
	// idle worker time implied by the spread of per-worker compute times —
	// and re-cuts only once that debt exceeds a multiple of the measured
	// price of the previous re-cut. A balanced run never pays for a cut it
	// does not need; a skewed shattering tail still gets re-balanced as
	// soon as the imbalance has cost more than re-balancing would.
	ReshardAdaptive
	// ReshardHalving is the fixed legacy rule: re-cut every time the live
	// worklist has halved since the last cut, regardless of how balanced
	// the pool still is. Kept as an explicit override for A/B runs.
	ReshardHalving
	// ReshardOff never re-cuts: the initial whole-graph ShardBounds cut
	// stands for the entire run.
	ReshardOff
)

// String returns the flag-friendly name of the policy.
func (p ReshardPolicy) String() string {
	switch p {
	case ReshardAuto:
		return "auto"
	case ReshardAdaptive:
		return "adaptive"
	case ReshardHalving:
		return "halving"
	case ReshardOff:
		return "off"
	default:
		return fmt.Sprintf("ReshardPolicy(%d)", int(p))
	}
}

// ParseReshardPolicy parses a -reshard flag value.
func ParseReshardPolicy(name string) (ReshardPolicy, error) {
	switch name {
	case "", "auto":
		return ReshardAuto, nil
	case "adaptive":
		return ReshardAdaptive, nil
	case "halving":
		return ReshardHalving, nil
	case "off", "never":
		return ReshardOff, nil
	default:
		return ReshardAuto, fmt.Errorf("sim: unknown re-shard policy %q (want adaptive, halving or off)", name)
	}
}

// reshardPayoff is the adaptive policy's pay-off factor: a re-cut runs once
// the accumulated barrier-imbalance debt exceeds reshardPayoff × the
// estimated re-cut price, so a cut must plausibly pay for itself with margin
// before it is taken.
const reshardPayoff = 2

// reshardModel is the adaptive policy's cost model, kept free of clocks and
// engine state so its arithmetic is unit-testable with synthetic inputs. The
// coordinator charges it one set of per-worker compute times per round and
// asks whether the accumulated barrier-imbalance debt now out-weighs the
// price of a re-cut.
type reshardModel struct {
	workers int
	// costEstNS estimates the price of one re-cut: a conservative O(n)
	// guess until the first cut is measured, then the last measurement.
	costEstNS int64
	// wasteNS is the imbalance debt since the last cut: the summed idle
	// worker time at the compute barrier (workers×max − sum of compute
	// times), accumulated round by round.
	wasteNS int64
	// lastCutLive is the live worklist size at the last cut; a new cut
	// requires the worklist to have shrunk since — re-cutting an
	// unchanged worklist would reproduce the same bounds and pay the
	// price for nothing.
	lastCutLive int
}

func newReshardModel(workers, n int) *reshardModel {
	return &reshardModel{workers: workers, costEstNS: int64(n)*4 + 1000, lastCutLive: n}
}

// charge accumulates one round's barrier imbalance: maxNS is the slowest
// worker's compute time and sumNS the pool's total, so the round's idle
// worker time at the barrier is workers×max − sum.
func (m *reshardModel) charge(maxNS, sumNS int64) {
	m.wasteNS += maxNS*int64(m.workers) - sumNS
}

// shouldCut reports whether the accumulated debt justifies a re-cut over a
// live worklist of size liveN.
func (m *reshardModel) shouldCut(liveN int) bool {
	return liveN < m.lastCutLive && m.wasteNS >= reshardPayoff*m.costEstNS
}

// cutDone records a completed re-cut: the measured price replaces the
// estimate (floored so a lucky cheap cut cannot talk the model into
// thrashing) and the debt resets.
func (m *reshardModel) cutDone(liveN int, costNS int64) {
	if m.costEstNS = costNS; m.costEstNS < 1000 {
		m.costEstNS = 1000
	}
	m.lastCutLive = liveN
	m.wasteNS = 0
}
