// Package hypergraph implements conflict-free hypergraph multi-coloring,
// the problem Theorem 3.5 reduces network decomposition to (following
// [GKM17]): multi-color the vertices with poly(log n) colors so that every
// hyperedge has a color held by exactly one of its members.
//
// The structure follows the theorem's proof: hyperedges are bucketed into
// log n size classes; large classes are sparsified by marking nodes with
// probability Θ(log n)/2^i using a Θ(log² n)-wise independent family (the
// theorem's randomness claim), which w.h.p. leaves Θ(log n) marked nodes
// per edge; the reduced small edges are then colored deterministically.
//
// The deterministic small-edge solver substitutes a Reed–Solomon unique-
// position construction for the (considerably more intricate) GKM17
// derandomized algorithm: node v's color set is {(i, P_v(x_i))} for its ID
// polynomial P_v evaluated at t points. Two distinct ID polynomials of
// degree < d agree on at most d−1 points, so with t ≥ (s−1)·(d−1)+1 every
// edge member has a position where its value differs from all other
// members — a uniquely-held color. This is zero-round, deterministic, and
// uses t·2^m = poly(s, log n) colors, which for polylogarithmic edge sizes
// is poly(log n), matching the role the GKM17 solver plays in the theorem.
package hypergraph

import (
	"fmt"

	"randlocal/internal/randomness"
)

// Hypergraph is a hypergraph on N vertices.
type Hypergraph struct {
	N     int
	Edges [][]int
}

// Validate checks vertex ranges and that no edge is empty.
func (h *Hypergraph) Validate() error {
	for i, e := range h.Edges {
		if len(e) == 0 {
			return fmt.Errorf("hypergraph: edge %d is empty", i)
		}
		seen := map[int]bool{}
		for _, v := range e {
			if v < 0 || v >= h.N {
				return fmt.Errorf("hypergraph: edge %d references vertex %d out of range", i, v)
			}
			if seen[v] {
				return fmt.Errorf("hypergraph: edge %d repeats vertex %d", i, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// MaxEdgeSize returns the largest edge cardinality.
func (h *Hypergraph) MaxEdgeSize() int {
	s := 0
	for _, e := range h.Edges {
		if len(e) > s {
			s = len(e)
		}
	}
	return s
}

// rsParams selects the Reed–Solomon parameters for edges of size at most s
// over n possible identifiers: field GF(2^m), ID polynomials of degree < d
// (so q^d ≥ n), and t = (s−1)·(d−1)+1 evaluation points (requiring q ≥ t).
func rsParams(n, s int) (m uint, d, t int, err error) {
	for _, mTry := range []uint{4, 5, 6, 8, 10, 12, 16, 20, 24} {
		q := 1 << mTry
		d = 1
		for pow := q; pow < n; pow *= q {
			d++
		}
		dm1 := d - 1
		if dm1 == 0 {
			dm1 = 1 // distinct constants never agree; one point suffices
		}
		t = (s-1)*dm1 + 1
		if q >= t {
			return mTry, d, t, nil
		}
	}
	return 0, 0, 0, fmt.Errorf("hypergraph: no field on file fits n=%d s=%d", n, s)
}

// SolveSmallDeterministic multi-colors a hypergraph whose edges all have
// size at most s, with zero randomness and zero rounds: each vertex
// computes its own color set from its identifier. Colors are pairs
// (position, value) encoded as position·2^m + value; the color count is
// t·2^m. It returns the per-vertex color sets.
func SolveSmallDeterministic(h *Hypergraph, s int) ([][]int, int, error) {
	if err := h.Validate(); err != nil {
		return nil, 0, err
	}
	if got := h.MaxEdgeSize(); got > s {
		return nil, 0, fmt.Errorf("hypergraph: edge size %d exceeds declared bound %d", got, s)
	}
	if s < 1 {
		s = 1
	}
	m, d, t, err := rsParams(maxInt(h.N, 2), s)
	if err != nil {
		return nil, 0, err
	}
	field := randomness.MustField(m)
	q := uint64(1) << m
	colorSets := make([][]int, h.N)
	for v := 0; v < h.N; v++ {
		// ID polynomial: base-q digits of v as coefficients.
		coeffs := make([]uint64, d)
		x := uint64(v)
		for i := 0; i < d; i++ {
			coeffs[i] = x % q
			x /= q
		}
		set := make([]int, t)
		for i := 0; i < t; i++ {
			val := field.Eval(coeffs, uint64(i))
			set[i] = i*int(q) + int(val)
		}
		colorSets[v] = set
	}
	return colorSets, t * int(q), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SolveResult carries the Theorem 3.5 pipeline's output and accounting.
type SolveResult struct {
	ColorSets [][]int
	// Colors is the total size of the color namespace used.
	Colors int
	// Classes is the number of edge-size classes processed.
	Classes int
	// MarkedPerEdge records min and max marked-node counts over sparsified
	// edges (the Θ(log n) concentration the k-wise Chernoff bound gives).
	MarkedMin, MarkedMax int
	// SeedBits is the true randomness consumed (the k-wise family seed).
	SeedBits int
}

// Solve runs the full Theorem 3.5 construction: size-class bucketing,
// k-wise marking of large classes with probability ≈ markTarget/2^i, and
// the deterministic Reed–Solomon solver on each class. smallThreshold is
// the edge size below which no sparsification is needed (the theorem's
// poly(log n)); markTarget is the Θ(log n) target for marked nodes per
// edge. The marking can fail (an edge ends up with 0 marked nodes); this
// surfaces as an error, whose frequency experiment E4 measures as a
// function of the independence k.
func Solve(h *Hypergraph, fam *randomness.KWise, smallThreshold, markTarget int) (*SolveResult, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if smallThreshold < 2 {
		return nil, fmt.Errorf("hypergraph: smallThreshold must be >= 2")
	}
	if markTarget < 1 {
		return nil, fmt.Errorf("hypergraph: markTarget must be >= 1")
	}
	// Bucket edges into size classes [2^{i-1}, 2^i).
	classes := map[int][][]int{}
	for _, e := range h.Edges {
		i := 1
		for 1<<i <= len(e) {
			i++
		}
		classes[i] = append(classes[i], e)
	}
	res := &SolveResult{
		ColorSets: make([][]int, h.N),
		MarkedMin: 1 << 30,
		SeedBits:  fam.SeedBits(),
	}
	colorBase := 0
	for class := 1; class <= 64; class++ {
		edges, ok := classes[class]
		if !ok {
			continue
		}
		res.Classes++
		classSize := 1 << class // upper bound on edge size in this class
		sub := &Hypergraph{N: h.N, Edges: edges}
		bound := classSize
		if classSize > smallThreshold {
			// Sparsify: mark vertices with probability markTarget/2^{i-1}
			// (relative to the class's minimum size, so expectation is at
			// least markTarget per edge), k-wise independently.
			tBits := uint(1)
			for 1<<tBits < classSize/2 {
				tBits++
			}
			numer := uint64(markTarget) << tBits >> uint(class-1)
			if numer == 0 {
				numer = 1
			}
			marked := make(map[int]bool, h.N)
			for v := 0; v < h.N; v++ {
				point := uint64(class)<<40 | uint64(v)
				if fam.Bernoulli(point, numer, tBits) {
					marked[v] = true
				}
			}
			reduced := make([][]int, len(edges))
			for ei, e := range edges {
				var keep []int
				for _, v := range e {
					if marked[v] {
						keep = append(keep, v)
					}
				}
				if len(keep) == 0 {
					return nil, fmt.Errorf("hypergraph: class %d edge %d has no marked vertex (k-wise marking failed)", class, ei)
				}
				if len(keep) < res.MarkedMin {
					res.MarkedMin = len(keep)
				}
				if len(keep) > res.MarkedMax {
					res.MarkedMax = len(keep)
				}
				reduced[ei] = keep
			}
			sub = &Hypergraph{N: h.N, Edges: reduced}
			bound = sub.MaxEdgeSize()
		}
		sets, colors, err := SolveSmallDeterministic(sub, bound)
		if err != nil {
			return nil, fmt.Errorf("hypergraph: class %d: %w", class, err)
		}
		// Namespace the class's colors and merge. Only vertices that occur
		// in the class's (reduced) edges need the colors.
		needed := map[int]bool{}
		for _, e := range sub.Edges {
			for _, v := range e {
				needed[v] = true
			}
		}
		for v := range needed {
			for _, c := range sets[v] {
				res.ColorSets[v] = append(res.ColorSets[v], colorBase+c)
			}
		}
		colorBase += colors
	}
	res.Colors = colorBase
	if res.MarkedMin == 1<<30 {
		res.MarkedMin = 0
	}
	return res, nil
}
