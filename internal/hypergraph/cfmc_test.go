package hypergraph

import (
	"testing"

	"randlocal/internal/check"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

func randomHypergraph(n, edges, minSize, maxSize int, rng *prng.SplitMix64) *Hypergraph {
	h := &Hypergraph{N: n}
	for e := 0; e < edges; e++ {
		size := minSize + rng.Intn(maxSize-minSize+1)
		perm := rng.Perm(n)
		h.Edges = append(h.Edges, append([]int(nil), perm[:size]...))
	}
	return h
}

func TestValidate(t *testing.T) {
	good := &Hypergraph{N: 3, Edges: [][]int{{0, 1}, {2}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, h := range map[string]*Hypergraph{
		"empty edge":    {N: 3, Edges: [][]int{{}}},
		"out of range":  {N: 3, Edges: [][]int{{0, 5}}},
		"repeat vertex": {N: 3, Edges: [][]int{{1, 1}}},
	} {
		if err := h.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSolveSmallDeterministic(t *testing.T) {
	rng := prng.New(7)
	for trial := 0; trial < 10; trial++ {
		h := randomHypergraph(200, 50, 2, 8, rng)
		sets, colors, err := SolveSmallDeterministic(h, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := check.ConflictFree(h.Edges, sets); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if colors <= 0 {
			t.Error("no colors reported")
		}
	}
}

func TestSolveSmallDeterministicSingletons(t *testing.T) {
	h := &Hypergraph{N: 5, Edges: [][]int{{0}, {4}}}
	sets, _, err := SolveSmallDeterministic(h, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.ConflictFree(h.Edges, sets); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSmallDeterministicRejectsOversize(t *testing.T) {
	h := &Hypergraph{N: 10, Edges: [][]int{{0, 1, 2, 3, 4}}}
	if _, _, err := SolveSmallDeterministic(h, 3); err == nil {
		t.Error("edge larger than declared bound accepted")
	}
}

func TestSolveSmallDeterministicIsZeroRoundAndDeterministic(t *testing.T) {
	// A vertex's color set depends on its own ID only: the same vertex in
	// two different hypergraphs gets the same colors (same n bound).
	h1 := &Hypergraph{N: 50, Edges: [][]int{{3, 4, 5}}}
	h2 := &Hypergraph{N: 50, Edges: [][]int{{3, 9, 20, 31}}}
	s1, _, err := SolveSmallDeterministic(h1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := SolveSmallDeterministic(h2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1[3]) != len(s2[3]) {
		t.Fatal("vertex 3 got different color-set sizes in identical parameter settings")
	}
	for i := range s1[3] {
		if s1[3][i] != s2[3][i] {
			t.Fatal("vertex 3's colors depend on more than its own ID")
		}
	}
}

func TestSolveFullPipeline(t *testing.T) {
	rng := prng.New(11)
	// Mixed sizes: small edges (<= 8) and large ones (~64-128) that need
	// the k-wise sparsification.
	h := randomHypergraph(600, 30, 2, 8, rng)
	big := randomHypergraph(600, 20, 64, 128, rng)
	h.Edges = append(h.Edges, big.Edges...)
	fam, err := randomness.NewKWise(64, 64, prng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(h, fam, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.ConflictFree(h.Edges, res.ColorSets); err != nil {
		t.Fatalf("pipeline produced conflicted coloring: %v", err)
	}
	if res.Classes < 2 {
		t.Errorf("expected multiple size classes, got %d", res.Classes)
	}
	if res.MarkedMin < 1 {
		t.Errorf("marked min = %d", res.MarkedMin)
	}
	if res.SeedBits != 64*64 {
		t.Errorf("seed bits = %d", res.SeedBits)
	}
	t.Logf("pipeline: colors=%d classes=%d marked∈[%d,%d]",
		res.Colors, res.Classes, res.MarkedMin, res.MarkedMax)
}

func TestSolveParamValidation(t *testing.T) {
	h := &Hypergraph{N: 4, Edges: [][]int{{0, 1}}}
	fam, _ := randomness.NewKWise(4, 32, prng.New(1))
	if _, err := Solve(h, fam, 1, 4); err == nil {
		t.Error("smallThreshold < 2 accepted")
	}
	if _, err := Solve(h, fam, 4, 0); err == nil {
		t.Error("markTarget < 1 accepted")
	}
	bad := &Hypergraph{N: 4, Edges: [][]int{{}}}
	if _, err := Solve(bad, fam, 4, 4); err == nil {
		t.Error("invalid hypergraph accepted")
	}
}

func TestMaxEdgeSize(t *testing.T) {
	h := &Hypergraph{N: 9, Edges: [][]int{{0}, {1, 2, 3}, {4, 5}}}
	if h.MaxEdgeSize() != 3 {
		t.Errorf("max edge size = %d", h.MaxEdgeSize())
	}
}

func TestRSParamsFit(t *testing.T) {
	for _, tc := range []struct{ n, s int }{{10, 2}, {1000, 8}, {100000, 16}, {1 << 20, 30}} {
		m, d, tt, err := rsParams(tc.n, tc.s)
		if err != nil {
			t.Fatalf("n=%d s=%d: %v", tc.n, tc.s, err)
		}
		q := 1 << m
		// q^d >= n and q >= t.
		pow := 1
		for i := 0; i < d; i++ {
			pow *= q
		}
		if pow < tc.n {
			t.Errorf("n=%d s=%d: q^d = %d < n", tc.n, tc.s, pow)
		}
		if q < tt {
			t.Errorf("n=%d s=%d: q=%d < t=%d", tc.n, tc.s, q, tt)
		}
	}
}
