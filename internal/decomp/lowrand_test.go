package decomp

import (
	"strings"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
)

// lowRandSetup builds the sparse-randomness world of Theorem 3.1 on g:
// holders form a greedy h-dominating set, each holding one private bit.
func lowRandSetup(t *testing.T, g *graph.Graph, h int, seed uint64) (*randomness.Sparse, []int) {
	t.Helper()
	holders := GreedyDominatingSet(g, h)
	src, err := randomness.NewSparse(holders, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return src, holders
}

func TestGreedyDominatingSet(t *testing.T) {
	g := graph.Ring(30)
	for _, h := range []int{1, 2, 5} {
		set := GreedyDominatingSet(g, h)
		dist := g.MultiBFS(set)
		for v, d := range dist {
			if d > h {
				t.Errorf("h=%d: node %d at distance %d from holders", h, v, d)
			}
		}
	}
	if set := GreedyDominatingSet(graph.NewBuilder(1).Graph(), 3); len(set) != 1 {
		t.Error("singleton graph needs one holder")
	}
}

func TestLowRandOnLongRing(t *testing.T) {
	// Ring(2000), h=2: holders every 5 nodes; k=64 bits per cluster with
	// h' = 4·64·2 = 512 guarantees ≥ 512/5 ≈ 102 ≥ 64 holders per
	// non-isolated cluster.
	g := graph.Ring(2000)
	src, holders := lowRandSetup(t, g, 2, 42)
	res, err := LowRand(g, src, holders, LowRandConfig{H: 2, BitsPerCluster: 64, RulingAlphaFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Decomposition
	if err := d.Validate(g, 0, 0); err != nil {
		t.Fatalf("invalid decomposition: %v", err)
	}
	// The whole point: only |holders| true bits existed in the network.
	if got := src.Ledger().TrueBits(); got > int64(len(holders)) {
		t.Errorf("consumed %d true bits from %d holders", got, len(holders))
	}
	if res.BitsGathered != len(holders) {
		t.Errorf("gathered %d bits from %d holders", res.BitsGathered, len(holders))
	}
	if res.AnalyticRounds <= 0 {
		t.Error("analytic rounds not reported")
	}
	t.Logf("ring2000: %d pre-clusters (%d isolated), colors=%d maxDiam=%d",
		res.DistinctPreClusters(), res.Isolated, d.NumColors(), d.MaxClusterDiameter(g))
}

func TestLowRandOnRingOfCliques(t *testing.T) {
	// The paper's motivating family: dense cliques, sparse randomness.
	g := graph.RingOfCliques(250, 4) // n = 1000
	src, holders := lowRandSetup(t, g, 1, 7)
	res, err := LowRand(g, src, holders, LowRandConfig{H: 1, BitsPerCluster: 24, RulingAlphaFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Decomposition.Validate(g, 0, 0); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if res.DistinctPreClusters() < 2 {
		t.Skip("degenerate single pre-cluster; parameters too coarse")
	}
}

func TestLowRandIsolatedSingleCluster(t *testing.T) {
	// A small graph where h' exceeds the diameter: one isolated
	// pre-cluster, trivially colored 0.
	g := graph.Grid(5, 5)
	src, holders := lowRandSetup(t, g, 1, 3)
	res, err := LowRand(g, src, holders, LowRandConfig{H: 1, BitsPerCluster: 32, RulingAlphaFactor: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Isolated != 1 {
		t.Errorf("isolated = %d, want 1", res.Isolated)
	}
	if res.Decomposition.NumColors() != 1 {
		t.Errorf("colors = %d, want 1", res.Decomposition.NumColors())
	}
	if err := res.Decomposition.Validate(g, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestLowRandRejectsSparseViolation(t *testing.T) {
	// Holders only at node 0 of a long path with h=1: precondition broken.
	g := graph.Path(50)
	src, err := randomness.NewSparse([]int{0}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = LowRand(g, src, []int{0}, LowRandConfig{H: 1})
	if err == nil || !strings.Contains(err.Error(), "no bit-holder") {
		t.Errorf("expected domination violation, got %v", err)
	}
}

func TestLowRandRejectsBadH(t *testing.T) {
	g := graph.Path(5)
	src, _ := randomness.NewSparse([]int{0}, 1, 1)
	if _, err := LowRand(g, src, []int{0}, LowRandConfig{H: 0}); err == nil {
		t.Error("h=0 accepted")
	}
}

func TestLowRandEmptyAndSingleton(t *testing.T) {
	empty := graph.NewBuilder(0).Graph()
	src, _ := randomness.NewSparse([]int{}, 1, 1)
	if _, err := LowRand(empty, src, nil, LowRandConfig{H: 1}); err != nil {
		t.Errorf("empty graph: %v", err)
	}
	single := graph.NewBuilder(1).Graph()
	src2, _ := randomness.NewSparse([]int{0}, 1, 1)
	res, err := LowRand(single, src2, []int{0}, LowRandConfig{H: 1, BitsPerCluster: 4, RulingAlphaFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Decomposition.Validate(single, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestLowRandHolderBudgetIsOneBit(t *testing.T) {
	// After LowRand consumed each holder's single bit, drawing again must
	// panic: the model provides exactly one bit per holder.
	g := graph.Ring(100)
	src, holders := lowRandSetup(t, g, 2, 5)
	_, err := LowRand(g, src, holders, LowRandConfig{H: 2, BitsPerCluster: 16, RulingAlphaFactor: 10})
	if err != nil {
		t.Fatalf("LowRand: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("holder stream should be exhausted after gathering")
		}
	}()
	s := src.Stream(holders[0])
	s.Bit()
	s.Bit() // the stream is replayable but budgeted per Stream; force two
}

func TestSharedRandDecomposition(t *testing.T) {
	rng := prng.New(11)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ring128", graph.Ring(128)},
		{"gnp200", graph.GNPConnected(200, 3.0/200, rng)},
		{"grid12", graph.Grid(12, 12)},
		{"tree150", graph.RandomTree(150, rng)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.g.N()
			shared := randomness.NewShared(200_000, prng.New(uint64(n)))
			res, err := SharedRand(tc.g, shared, SharedRandConfig{})
			if err != nil {
				t.Fatal(err)
			}
			d := res.Decomposition
			lg := float64(log2Ceil(n) + 1)
			maxColors := int(8*lg) + 8
			maxDiam := int(16 * lg * lg) // 2·p·c·lg with margin
			if err := d.Validate(tc.g, maxColors, maxDiam); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			if res.SeedBitsUsed <= 0 || res.SeedBitsUsed > 200_000 {
				t.Errorf("seed bits used = %d", res.SeedBitsUsed)
			}
			// Only the seed is true randomness.
			if got := shared.Ledger().TrueBits(); got != 200_000 {
				t.Errorf("true bits = %d (seed only)", got)
			}
			t.Logf("%s: colors=%d maxDiam=%d phases=%d seedBits=%d",
				tc.name, d.NumColors(), d.MaxClusterDiameter(tc.g), res.Phases, res.SeedBitsUsed)
		})
	}
}

func TestSharedRandSeedTooSmall(t *testing.T) {
	g := graph.Ring(64)
	shared := randomness.NewShared(100, prng.New(1))
	if _, err := SharedRand(g, shared, SharedRandConfig{}); err == nil {
		t.Error("a 100-bit seed cannot feed the k-wise families")
	}
}

func TestSharedRandDeterministicGivenSeed(t *testing.T) {
	g := graph.Ring(64)
	run := func() *Decomposition {
		shared := randomness.NewShared(100_000, prng.New(99))
		res, err := SharedRand(g, shared, SharedRandConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Decomposition
	}
	a, b := run(), run()
	for v := range a.Cluster {
		if a.Cluster[v] != b.Cluster[v] || a.Color[v] != b.Color[v] {
			t.Fatal("SharedRand not deterministic given the seed")
		}
	}
}

func TestSharedRandEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Graph()
	shared := randomness.NewShared(64, prng.New(1))
	if _, err := SharedRand(g, shared, SharedRandConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestStrongLowRand(t *testing.T) {
	g := graph.Ring(1500)
	holders := GreedyDominatingSet(g, 2)
	// Each holder carries several bits here: Theorem 3.7 gathers
	// poly(log n) bits per pre-cluster, and the test keeps h' small, so
	// the per-holder budget stands in for denser holder placement.
	src, err := randomness.NewSparse(holders, 48, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := StrongLowRand(g, src, holders, LowRandConfig{H: 2, BitsPerCluster: 64, RulingAlphaFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Decomposition
	lg := float64(log2Ceil(g.N()) + 1)
	if err := d.Validate(g, int(8*lg)+8, int(16*lg*lg)); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Theorem 3.7's payoff: cluster diameter O(log² n) without the h
	// factor; and only the holders' bits were ever drawn.
	if got := src.Ledger().TrueBits(); got != int64(res.BitsGathered) {
		t.Errorf("ledger %d != gathered %d", got, res.BitsGathered)
	}
	t.Logf("strong: colors=%d maxDiam=%d phases=%d gathered=%d",
		d.NumColors(), d.MaxClusterDiameter(g), res.Phases, res.BitsGathered)
}

func TestStrongLowRandInsufficientBits(t *testing.T) {
	g := graph.Ring(200)
	holders := GreedyDominatingSet(g, 2)
	src, _ := randomness.NewSparse(holders, 1, 1) // one bit each: not enough
	_, err := StrongLowRand(g, src, holders, LowRandConfig{H: 2, BitsPerCluster: 8, RulingAlphaFactor: 1})
	if err == nil {
		t.Error("family construction should fail with too few gathered bits")
	}
}

func TestDeterministicSequential(t *testing.T) {
	rng := prng.New(21)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"ring100", graph.Ring(100)},
		{"gnp150", graph.GNPConnected(150, 0.03, rng)},
		{"grid10", graph.Grid(10, 10)},
		{"clique20", graph.Complete(20)},
		{"path1", graph.Path(1)},
		{"disjoint", graph.Disjoint(graph.Ring(8), graph.Path(9))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := DeterministicSequential(tc.g)
			n := tc.g.N()
			lg := log2Ceil(n) + 1
			if err := d.Validate(tc.g, lg+1, 2*lg); err != nil {
				t.Fatalf("invalid: %v", err)
			}
		})
	}
}

func TestDeterministicSequentialIsDeterministic(t *testing.T) {
	g := graph.GNPConnected(80, 0.05, prng.New(4))
	a := DeterministicSequential(g)
	b := DeterministicSequential(g)
	for v := range a.Cluster {
		if a.Cluster[v] != b.Cluster[v] || a.Color[v] != b.Color[v] {
			t.Fatal("deterministic algorithm gave two different answers")
		}
	}
}

func TestShatteringFullPipeline(t *testing.T) {
	rng := prng.New(31)
	g := graph.GNPConnected(300, 3.0/300, rng)
	// Weaken phase one deliberately so a leftover set actually appears.
	res, err := Shattering(g, randomness.NewFull(17), ShatteringConfig{ENPhases: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Decomposition
	if err := d.ValidateWeak(g, 0, 0); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	t.Logf("shattering: leftover=%d separated=%d ENrounds=%d detClusters=%d",
		res.Leftover, res.SeparatedLeftover, res.ENRounds, res.DeterministicClusters)
	if res.Leftover > 0 && res.SeparatedLeftover == 0 {
		t.Error("leftover nodes but no separated representatives")
	}
	if res.SeparatedLeftover > res.Leftover {
		t.Error("separated set exceeds the leftover set")
	}
}

func TestShatteringNoLeftover(t *testing.T) {
	g := graph.Ring(64)
	res, err := Shattering(g, randomness.NewFull(5), ShatteringConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leftover != 0 {
		t.Skipf("full-strength EN left %d nodes (possible but rare)", res.Leftover)
	}
	if err := res.Decomposition.Validate(g, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestShatteringSeparationBoundEnforced(t *testing.T) {
	rng := prng.New(8)
	g := graph.GNPConnected(300, 3.0/300, rng)
	// With a 1-phase EN, many leftovers: K=0 disables; K=1 likely trips on
	// some seed. Find a seed with separated > 1 to exercise the bound.
	for seed := uint64(0); seed < 20; seed++ {
		res, err := Shattering(g, randomness.NewFull(seed), ShatteringConfig{ENPhases: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.SeparatedLeftover > 1 {
			_, err := Shattering(g, randomness.NewFull(seed), ShatteringConfig{ENPhases: 1, SeparationK: 1})
			if err == nil {
				t.Error("SeparationK bound not enforced")
			}
			return
		}
	}
	t.Skip("no seed produced a separated leftover above 1")
}

func TestShatteringEmpty(t *testing.T) {
	g := graph.NewBuilder(0).Graph()
	if _, err := Shattering(g, randomness.NewFull(1), ShatteringConfig{}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateWeakRejections(t *testing.T) {
	g := graph.Path(4)
	// Disconnected cluster is fine for weak validation if diameter holds.
	d := &Decomposition{Cluster: []int{0, 1, 0, 1}, Color: []int{0, 1, 0, 1}}
	if err := d.ValidateWeak(g, 0, 3); err != nil {
		t.Errorf("weak validation should allow disconnected clusters: %v", err)
	}
	if err := d.ValidateWeak(g, 0, 1); err == nil {
		t.Error("weak diameter bound not enforced")
	}
	bad := &Decomposition{Cluster: []int{0, 1, 0, -1}, Color: []int{0, 1, 0, 1}}
	if err := bad.ValidateWeak(g, 0, 0); err == nil {
		t.Error("unclustered node accepted")
	}
	sameColor := &Decomposition{Cluster: []int{0, 1, 2, 3}, Color: []int{0, 0, 0, 0}}
	if err := sameColor.ValidateWeak(g, 0, 0); err == nil {
		t.Error("adjacent same-color clusters accepted")
	}
}
