package decomp

import (
	"fmt"

	"randlocal/internal/graph"
)

// ImproveColors implements the [ABCP96] transformation the paper leans on
// in Theorem 4.2 and Corollary 4.5: any (d, c)-decomposition can be turned
// into an (O(log n), O(log n·d))-decomposition (in colors and diameter
// respectively) by contracting its clusters and decomposing the cluster
// graph again. Here the second level uses the deterministic sequential
// construction, so the transform adds zero randomness.
//
// Given a valid decomposition d of g, the result has at most ⌈log₂ K⌉+1
// colors (K = number of clusters of d) and strong diameter at most
// (2·⌈log₂ K⌉+1)·(diam(d)+1)·2 in g.
func ImproveColors(g *graph.Graph, d *Decomposition) (*Decomposition, error) {
	n := g.N()
	if len(d.Cluster) != n {
		return nil, fmt.Errorf("decomp: decomposition covers %d nodes, graph has %d", len(d.Cluster), n)
	}
	// Dense-relabel the input clusters.
	idx := map[int]int{}
	for _, c := range d.Cluster {
		if c < 0 {
			return nil, fmt.Errorf("decomp: ImproveColors requires a complete decomposition")
		}
		if _, ok := idx[c]; !ok {
			idx[c] = len(idx)
		}
	}
	part := make([]int, n)
	for v := 0; v < n; v++ {
		part[v] = idx[d.Cluster[v]]
	}
	cg := graph.Contract(g, part, len(idx))
	top := DeterministicSequential(cg)
	out := &Decomposition{Cluster: make([]int, n), Color: make([]int, n)}
	for v := 0; v < n; v++ {
		out.Cluster[v] = top.Cluster[part[v]]
		out.Color[v] = top.Color[part[v]]
	}
	return out, nil
}
