package decomp

import (
	"fmt"
	"os"
	"testing"

	"randlocal/internal/graph"
	"randlocal/internal/prng"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

// TestMain enables the engine's poisoned-Outbox check for this package's
// whole test run, so every decomposition program that assembles its outbox
// in the NodeCtx.Outbox scratch is verified to set or nil every port.
func TestMain(m *testing.M) {
	sim.SetDebugOutboxCheck(true)
	os.Exit(m.Run())
}

// TestENSteadyStateRoundAllocsNothing drives one Elkin–Neiman node through
// its steady-state flood round (merge the top-2 candidates heard, broadcast
// the merged list) with testing.AllocsPerRun: the outbox comes from the
// engine scratch, the payload from the per-round arena and the decode from
// incremental ReadUint, so the measured round must allocate zero.
func TestENSteadyStateRoundAllocsNothing(t *testing.T) {
	const deg = 6
	ctx, rotate := sim.NewBenchCtx(deg, 42, 1024, nil)
	prog := &enProgram{cfg: ENConfig{Radius: func(v, phase int) int { return 3 }}}
	prog.Init(ctx)
	if out, _ := prog.Round(0, make([]sim.Message, deg)); len(out) != deg {
		t.Fatal("round 0 did not broadcast")
	}
	// Steady-state inbox: two-candidate floods from every neighbor, built
	// outside the measured loop (arena rotation would recycle ctx carves).
	inbox := make([]sim.Message, deg)
	for p := range inbox {
		inbox[p] = sim.Uints(2, uint64(100+p), 4, uint64(200+p), 2)
	}
	avg := testing.AllocsPerRun(100, func() {
		rotate()
		prog.Round(1, inbox)
	})
	if avg != 0 {
		t.Errorf("EN steady-state round allocates %.1f times, want 0", avg)
	}
}

// TestMPXGoldenAccounting pins the MPX program's engine accounting to the
// numbers captured from the heap-allocating (pre-migration) implementation
// at commit 128a373 with this exact graph and seed, on every scheduler: the
// zero-alloc rewrite must not change a single message or bit. (The facade's
// golden suite covers the other migrated programs; MPX's public wrapper
// hides the sim.Result, so its golden lives here.)
func TestMPXGoldenAccounting(t *testing.T) {
	g := graph.GNPConnected(200, 4.0/200, prng.New(1))
	cfg := sim.Config{Graph: g, MaxMessageBits: sim.CongestBits(g.N())}
	factory := func(int) sim.NodeProgram[int] { return &mpxProgram{} }
	run := func() (*sim.Result[int], error) {
		cfg.Source = randomness.NewFull(3)
		return sim.Run(cfg, factory)
	}
	want, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if want.Rounds != 22 || want.Messages != 16590 || want.BitsTotal != 271144 || want.MaxMessageBits != 24 {
		t.Errorf("MPX accounting (rounds=%d msgs=%d bits=%d maxbits=%d), want (22, 16590, 271144, 24)",
			want.Rounds, want.Messages, want.BitsTotal, want.MaxMessageBits)
	}
	cfg.Source = randomness.NewFull(3)
	got, err := sim.RunConcurrent(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if got.Messages != want.Messages || got.BitsTotal != want.BitsTotal || got.Rounds != want.Rounds {
		t.Errorf("concurrent MPX accounting differs: (%d,%d,%d) vs (%d,%d,%d)",
			got.Rounds, got.Messages, got.BitsTotal, want.Rounds, want.Messages, want.BitsTotal)
	}
	for _, workers := range []int{2, 5} {
		cfg.Source = randomness.NewFull(3)
		got, err := sim.RunParallel(cfg, factory, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.Messages != want.Messages || got.BitsTotal != want.BitsTotal || got.Rounds != want.Rounds {
			t.Errorf("%s MPX accounting differs: (%d,%d,%d) vs (%d,%d,%d)",
				fmt.Sprintf("parallel/workers=%d", workers),
				got.Rounds, got.Messages, got.BitsTotal, want.Rounds, want.Messages, want.BitsTotal)
		}
	}
}

// TestMPXSteadyStateRoundAllocsNothing does the same for the MPX random-
// shift flood round.
func TestMPXSteadyStateRoundAllocsNothing(t *testing.T) {
	const deg = 5
	ctx, rotate := sim.NewBenchCtx(deg, 7, 512, nil)
	prog := &mpxProgram{}
	prog.Init(ctx)
	prog.best = enEntry{id: 7, val: 3} // what round 0's private draw would set
	inbox := make([]sim.Message, deg)
	for p := range inbox {
		inbox[p] = sim.Uints(uint64(50+p), 5)
	}
	avg := testing.AllocsPerRun(100, func() {
		rotate()
		prog.Round(1, inbox)
	})
	if avg != 0 {
		t.Errorf("MPX steady-state round allocates %.1f times, want 0", avg)
	}
}
