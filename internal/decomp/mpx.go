package decomp

import (
	"fmt"

	"randlocal/internal/graph"
	"randlocal/internal/randomness"
	"randlocal/internal/sim"
)

// This file implements the Miller–Peng–Xu random-shift partition [MPX13]
// that the Elkin–Neiman construction builds on (the paper's Lemma 3.3
// cites both). MPX is the single-pass primitive: every node draws a random
// shift δ_v and node u joins the cluster of the v minimizing
// dist(u, v) − δ_v. The result is a *partition* into low-diameter clusters
// where each edge is cut with probability O(log n / diameter-budget) — not
// yet a colored decomposition. It is included for the E10 ablation:
// the experiments compare EN's phase-by-phase carving against
// chaining MPX partitions.

// MPXResult is a random-shift partition together with its quality numbers.
type MPXResult struct {
	// Cluster[v] is the center whose shifted distance v minimizes.
	Cluster []int
	// CutEdges counts edges whose endpoints landed in different clusters.
	CutEdges int
	// MaxClusterDiameter is the maximum strong diameter over clusters.
	MaxClusterDiameter int
	// Rounds is the engine-measured CONGEST round count.
	Rounds int
}

// mpxEntry and the program below reuse the EN top-1 flooding machinery: a
// single bounded flood of (center, δ − dist) values; each node adopts the
// best. One pass, cap+2 rounds.
type mpxProgram struct {
	cap  int
	ctx  *sim.NodeCtx
	best enEntry
	out  int
}

func (p *mpxProgram) Init(ctx *sim.NodeCtx) {
	p.ctx = ctx
	lg := log2Ceil(ctx.N)
	p.cap = 2*lg + 4
	p.out = -1
}

func (p *mpxProgram) Round(r int, inbox []sim.Message) ([]sim.Message, bool) {
	switch {
	case r == 0:
		delta, _ := p.ctx.Rand.Geometric(p.cap)
		p.best = enEntry{id: p.ctx.ID, val: delta}
		return p.broadcast(), false
	case r <= p.cap:
		for _, m := range inbox {
			if m == nil {
				continue
			}
			var vals [2]uint64
			if !sim.DecodeUintsInto(m, vals[:]) {
				continue
			}
			e := enEntry{id: vals[0], val: int(vals[1]) - 1}
			if e.val >= 0 && e.better(p.best) {
				p.best = e
			}
		}
		return p.broadcast(), false
	default:
		p.out = int(p.best.id)
		return nil, true
	}
}

func (p *mpxProgram) broadcast() []sim.Message {
	return p.ctx.Broadcast(p.ctx.Uints(p.best.id, uint64(p.best.val)))
}

func (p *mpxProgram) Output() int { return p.out }

// MPXPartition runs one random-shift partition pass in the CONGEST model.
// Every node is assigned to exactly one cluster; clusters have strong
// diameter O(log n) w.h.p. and the expected cut fraction is O(log n)/cap.
func MPXPartition(g *graph.Graph, src randomness.Source, ids []uint64) (*MPXResult, error) {
	res, err := sim.Execute(sim.Config{
		Graph:          g,
		IDs:            ids,
		Source:         src,
		MaxMessageBits: sim.CongestBits(g.N()),
	}, func(int) sim.NodeProgram[int] {
		return &mpxProgram{}
	})
	if err != nil {
		return nil, err
	}
	out := &MPXResult{Cluster: res.Outputs, Rounds: res.Rounds}
	for v, c := range out.Cluster {
		if c < 0 {
			return nil, fmt.Errorf("decomp: MPX left node %d unassigned", v)
		}
	}
	g.Edges(func(u, v int) {
		if out.Cluster[u] != out.Cluster[v] {
			out.CutEdges++
		}
	})
	// Strong diameter per cluster.
	members := map[int][]int{}
	for v, c := range out.Cluster {
		members[c] = append(members[c], v)
	}
	for _, ms := range members {
		sub, _ := graph.InducedSubgraph(g, ms)
		if !graph.IsConnected(sub) {
			return nil, fmt.Errorf("decomp: MPX produced a disconnected cluster")
		}
		if d := graph.Diameter(sub); d > out.MaxClusterDiameter {
			out.MaxClusterDiameter = d
		}
	}
	return out, nil
}
