package decomp

import (
	"fmt"

	"randlocal/internal/graph"
	"randlocal/internal/randomness"
	"randlocal/internal/rulingset"
)

// ShatteringConfig parameterizes the Theorem 4.2 construction.
type ShatteringConfig struct {
	// ENPhases bounds the first-phase Elkin–Neiman run. Fewer phases leave
	// more nodes unclustered (a deliberately weakened first phase is how
	// the experiments surface a non-trivial leftover set); 0 means the
	// standard 12·⌈log₂ n⌉ + 8.
	ENPhases int
	// SeparationK, when positive, asserts the Theorem's K bound: the
	// construction fails if the (2t+1)-separated leftover set exceeds it.
	SeparationK int
}

// ShatteringResult carries the Theorem 4.2 decomposition and the quantities
// its probability argument is about.
type ShatteringResult struct {
	Decomposition *Decomposition
	// Leftover is the number of nodes the randomized phase left unclustered
	// (the set V̄ of the proof).
	Leftover int
	// SeparatedLeftover is the size of the (2t+1)-separated ruling subset S
	// of V̄ — the quantity the theorem's error bound controls (≤ K w.h.p.).
	SeparatedLeftover int
	// ENRounds is the measured CONGEST round count t(n) of phase one.
	ENRounds int
	// DeterministicClusters is the number of leftover clusters handled by
	// the deterministic second phase.
	DeterministicClusters int
	// AnalyticRounds adds the PS-style second-phase budget
	// 2^⌈√log₂(K+1)⌉ · maxClusterRadius to the measured first phase.
	AnalyticRounds int
}

// Shattering implements Theorem 4.2: run the randomized Elkin–Neiman
// decomposition (success 1−1/poly(n) per node), and instead of accepting
// its small failure probability, *repair* the leftover set V̄
// deterministically: compute a (2t+1, O(t·log n))-ruling set S of V̄ (its
// size is at most K with probability 1 − n^{−Ω(K)}, because membership of
// (2t+1)-separated nodes in V̄ is independent), cluster V̄ around S, and
// decompose the resulting cluster graph with the deterministic algorithm.
// The deterministic phase never fails, so the only failure event left is
// |S| > K — which is how the construction turns a 1/poly(n) error bound
// into the theorem's 1−n^{−2^{ε·log² T}}.
//
// The leftover clusters may route through already-clustered nodes, so the
// repaired part has weak diameter (congestion 1 via vertex-disjoint BFS
// trees, exactly as in the paper); validate the result with ValidateWeak.
func Shattering(g *graph.Graph, src randomness.Source, cfg ShatteringConfig) (*ShatteringResult, error) {
	n := g.N()
	if n == 0 {
		return &ShatteringResult{Decomposition: &Decomposition{}}, nil
	}
	enCfg := ENConfig{MaxPhases: cfg.ENPhases}

	// Phase 1: randomized decomposition; tolerate unclustered leftovers.
	d, simRes, err := ElkinNeiman(g, src, nil, enCfg)
	var unclustered *ErrUnclustered
	if err != nil && !asUnclustered(err, &unclustered) {
		return nil, err
	}
	res := &ShatteringResult{Decomposition: d, ENRounds: simRes.Rounds}
	var leftover []int
	for v := 0; v < n; v++ {
		if d.Cluster[v] < 0 {
			leftover = append(leftover, v)
		}
	}
	res.Leftover = len(leftover)
	if len(leftover) == 0 {
		res.AnalyticRounds = simRes.Rounds
		return res, nil
	}

	// Phase 2a: (2t+1)-separated ruling set of the leftover set.
	t := simRes.Rounds
	alpha := 2*t + 1
	rs, err := rulingset.Compute(g, leftover, alpha, nil)
	if err != nil {
		return nil, fmt.Errorf("decomp: leftover ruling set: %w", err)
	}
	res.SeparatedLeftover = len(rs.Set)
	if cfg.SeparationK > 0 && len(rs.Set) > cfg.SeparationK {
		return nil, fmt.Errorf("decomp: separated leftover %d exceeds the K=%d bound — the theorem's w.h.p. event failed",
			len(rs.Set), cfg.SeparationK)
	}

	// Phase 2b: cluster V̄ around S by BFS in the full graph (trees may
	// pass through clustered nodes: weak diameter, congestion 1).
	_, owner := g.MultiBFSOwner(rs.Set)
	sIndex := map[int]int{}
	for _, s := range rs.Set {
		sIndex[s] = len(sIndex)
	}
	K := len(rs.Set)
	part := make([]int, n)
	for v := range part {
		part[v] = -1
	}
	for _, v := range leftover {
		part[v] = sIndex[owner[v]]
	}
	// Cluster graph GC: leftover clusters adjacent when members of V̄ are.
	gc := graph.Contract(g, part, K)
	res.DeterministicClusters = K

	// Phase 2c: deterministic decomposition of GC.
	gcDecomp := DeterministicSequential(gc)

	// Merge: leftover node v gets the GC cluster/color of its S-cluster,
	// with labels and colors offset past phase 1's.
	maxColor := 0
	maxCluster := 0
	for v := 0; v < n; v++ {
		if d.Color[v] > maxColor {
			maxColor = d.Color[v]
		}
		if d.Cluster[v] > maxCluster {
			maxCluster = d.Cluster[v]
		}
	}
	for _, v := range leftover {
		d.Cluster[v] = maxCluster + 1 + gcDecomp.Cluster[part[v]]
		d.Color[v] = maxColor + 1 + gcDecomp.Color[part[v]]
	}
	// Second-phase analytic budget: 2^⌈√log₂(K+1)⌉ cluster-graph rounds,
	// each costing the maximum leftover-cluster radius O(t·log n).
	sq := 1
	for sq*sq < log2Ceil(K+1) {
		sq++
	}
	res.AnalyticRounds = simRes.Rounds + (1<<sq)*(alpha*rs.Levels+1)
	return res, nil
}

func asUnclustered(err error, target **ErrUnclustered) bool {
	u, ok := err.(*ErrUnclustered)
	if ok {
		*target = u
	}
	return ok
}

// ValidateWeak checks d as a weak-diameter decomposition of g: every node
// clustered, colors consistent per cluster, adjacent clusters differently
// colored, and every cluster's weak diameter (distance measured in all of
// g) at most maxWeakDiam (0 skips the bound). Cluster connectivity within
// the induced subgraph is NOT required — leftover clusters of the
// Theorem 4.2 construction connect through foreign nodes via their BFS
// trees, which is the congestion-1 notion defined in Section 2.
func (d *Decomposition) ValidateWeak(g *graph.Graph, maxColors, maxWeakDiam int) error {
	n := g.N()
	if len(d.Cluster) != n || len(d.Color) != n {
		return fmt.Errorf("decomp: label arrays sized %d/%d for %d nodes", len(d.Cluster), len(d.Color), n)
	}
	for v := 0; v < n; v++ {
		if d.Cluster[v] < 0 {
			return fmt.Errorf("decomp: node %d is unclustered", v)
		}
	}
	clusterColor := map[int]int{}
	for v := 0; v < n; v++ {
		c := d.Cluster[v]
		if col, ok := clusterColor[c]; ok && col != d.Color[v] {
			return fmt.Errorf("decomp: cluster %d carries colors %d and %d", c, col, d.Color[v])
		} else if !ok {
			clusterColor[c] = d.Color[v]
		}
	}
	var adjErr error
	g.Edges(func(u, v int) {
		if adjErr == nil && d.Cluster[u] != d.Cluster[v] && d.Color[u] == d.Color[v] {
			adjErr = fmt.Errorf("decomp: adjacent clusters %d and %d share color %d", d.Cluster[u], d.Cluster[v], d.Color[u])
		}
	})
	if adjErr != nil {
		return adjErr
	}
	if maxColors > 0 && d.NumColors() > maxColors {
		return fmt.Errorf("decomp: %d colors exceed the bound %d", d.NumColors(), maxColors)
	}
	if maxWeakDiam > 0 {
		for c, members := range d.clusterMembers() {
			for _, u := range members {
				dist := g.BFS(u)
				for _, v := range members {
					if dist[v] == graph.Unreachable || dist[v] > maxWeakDiam {
						return fmt.Errorf("decomp: cluster %d has weak diameter > %d (pair %d,%d)", c, maxWeakDiam, u, v)
					}
				}
			}
		}
	}
	return nil
}
